// pilot_study — reproduces the paper's §5.4 pilot (Fig. 4) end to end.
//
// Streams synthetic ICEBERG LArTPC trigger records from the detector
// through the DAQ network (mode 0, directly on Ethernet), upgrades to the
// age-sensitive + recoverable-loss mode at the Tofino2-class element,
// crosses a lossy WAN span, runs the age check at the Alveo-class element
// and the timeliness check at DTN 2. Prints the per-stage story and the
// three modes observed in flight.
//
//   $ ./pilot_study [loss%]          (default 2)
#include "daq/trigger.hpp"
#include "scenario/pilot.hpp"
#include "telemetry/report.hpp"

#include <cstdio>
#include <cstdlib>

using namespace mmtp;
using namespace mmtp::literals;

int main(int argc, char** argv)
{
    const double loss = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.02;

    scenario::pilot_config cfg;
    cfg.wan_loss = loss;
    cfg.wan_delay = 5_ms;
    auto tb = scenario::make_pilot(cfg);

    // Observe the modes arriving at DTN 2.
    std::vector<std::string> seen_modes;
    tb->dtn2_rx->set_on_datagram([&](const core::delivered_datagram& d) {
        const auto s = to_string(d.hdr.m);
        for (const auto& m : seen_modes)
            if (m == s) return;
        seen_modes.push_back(s);
    });

    daq::iceberg_stream::config icfg;
    icfg.record_limit = 5000;
    daq::iceberg_stream source(tb->net.fork_rng(), icfg);
    std::printf("pilot study: %llu ICEBERG trigger records, %.1f%% WAN loss, "
                "%.0f ms WAN delay\n",
                static_cast<unsigned long long>(icfg.record_limit), loss * 100.0,
                cfg.wan_delay.millis());
    tb->sensor_tx->drive(source);
    tb->net.sim().run();

    telemetry::table t("pilot study results (Fig. 4 topology)");
    t.set_columns({"stage", "metric", "value"});
    t.add_row({"sensor->DTN1 (mode 0, L2)", "messages",
               telemetry::fmt_count(tb->sensor_tx->stats().messages)});
    t.add_row({"DTN1 buffer", "relayed",
               telemetry::fmt_count(tb->dtn1_svc->stats().relayed)});
    t.add_row({"DTN1 buffer", "bytes buffered (peak)",
               telemetry::fmt_count(tb->dtn1_svc->buffer().stats().peak_bytes)});
    t.add_row({"Tofino2 (mode 0->1)", "mode transitions",
               telemetry::fmt_count(tb->tofino2->state().counter("mode_transitions"))});
    t.add_row({"WAN", "NAK requests served",
               telemetry::fmt_count(tb->dtn1_svc->stats().nak_requests)});
    t.add_row({"WAN", "datagrams retransmitted",
               telemetry::fmt_count(tb->dtn1_svc->stats().retransmitted)});
    t.add_row({"DTN2 (mode 2 check)", "delivered",
               telemetry::fmt_count(tb->dtn2_rx->stats().datagrams)});
    t.add_row({"DTN2", "recovered", telemetry::fmt_count(tb->dtn2_rx->stats().recovered)});
    t.add_row({"DTN2", "unrecoverable",
               telemetry::fmt_count(tb->dtn2_rx->stats().given_up)});
    t.add_row({"DTN2", "aged on arrival",
               telemetry::fmt_count(tb->dtn2_rx->stats().aged_on_arrival)});
    t.add_row({"DTN2", "p50 / p99 age",
               telemetry::fmt_duration_us(
                   static_cast<double>(tb->dtn2_rx->stats().age_us.percentile(50)))
                   + " / "
                   + telemetry::fmt_duration_us(static_cast<double>(
                       tb->dtn2_rx->stats().age_us.percentile(99)))});
    t.add_row({"DTN2", "p50 recovery latency",
               telemetry::fmt_duration_us(static_cast<double>(
                   tb->dtn2_rx->stats().recovery_latency_us.percentile(50)))});
    t.print();

    std::printf("\nmodes observed at DTN2: ");
    for (const auto& m : seen_modes) std::printf("%s ", m.c_str());
    std::printf("\n(policy deadline: %u us; NAK retry: %.1f ms)\n",
                tb->policy.deadline_us, tb->policy.suggested_nak_retry.millis());

    const bool ok = tb->dtn2_rx->stats().datagrams == icfg.record_limit
        && tb->dtn2_rx->stats().given_up == 0;
    std::printf("\n%s\n", ok ? "OK: pilot delivered every record exactly once."
                             : "FAILED: pilot lost records!");
    return ok ? 0 : 1;
}
