// pilot_study — reproduces the paper's §5.4 pilot (Fig. 4) end to end.
//
// Streams synthetic ICEBERG LArTPC trigger records from the detector
// through the DAQ network (mode 0, directly on Ethernet), upgrades to the
// age-sensitive + recoverable-loss mode at the Tofino2-class element,
// crosses a lossy WAN span, runs the age check at the Alveo-class element
// and the timeliness check at DTN 2. The control plane is the policy
// engine's static preset — the same compiled plan the closed-loop drills
// start from. Prints the per-stage story and the modes observed in flight.
//
//   $ ./pilot_study [loss%]          (default 2)
#include "scenario/registry.hpp"

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

using namespace mmtp;
using namespace mmtp::literals;

int main(int argc, char** argv)
{
    const double loss = argc > 1 ? std::atof(argv[1]) / 100.0 : 0.02;

    scenario::scenario_spec spec;
    spec.topology = "pilot";
    spec.pilot.pilot.wan_loss = loss;
    spec.pilot.pilot.wan_delay = 5_ms;
    spec.pilot.records = 5000;
    auto dp = scenario::registry::make(spec);
    auto& d = static_cast<scenario::pilot_driver&>(*dp);

    // Observe the modes arriving at DTN 2 — hook the testbed before run.
    d.prepare();
    auto& tb = d.testbed();
    std::vector<std::string> seen_modes;
    tb.dtn2_rx->set_on_datagram([&](const core::delivered_datagram& dd) {
        const auto s = to_string(dd.hdr.m);
        for (const auto& m : seen_modes)
            if (m == s) return;
        seen_modes.push_back(s);
    });

    const int rc = scenario::run_example(d);

    std::printf("\nmodes observed at DTN2: ");
    for (const auto& m : seen_modes) std::printf("%s ", m.c_str());
    std::printf("\n(policy deadline: %u us; NAK retry: %.1f ms; p50/p99 age: "
                "%llu/%llu us)\n",
                tb.policy.deadline_us, tb.policy.suggested_nak_retry.millis(),
                static_cast<unsigned long long>(tb.dtn2_rx->stats().age_us.percentile(50)),
                static_cast<unsigned long long>(
                    tb.dtn2_rx->stats().age_us.percentile(99)));

    const bool ok = tb.dtn2_rx->stats().datagrams == spec.pilot.records
        && tb.dtn2_rx->stats().given_up == 0;
    std::printf("\n%s\n", ok ? "OK: pilot delivered every record exactly once."
                             : "FAILED: pilot lost records!");
    return ok && rc == 0 ? 0 : 1;
}
