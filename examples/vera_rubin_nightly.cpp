// vera_rubin_nightly — the §2.1 traffic mix: the telescope's bulk nightly
// capture shares the Chile→California path with an alert stream that
// "bursts to 5.4 Gbps" and must reach researchers within milliseconds.
//
// Runs the mix twice over the same 100 G path — once with a plain FIFO
// egress and once with the deadline-aware priority queue (§5.3) — and
// prints the alert latency distribution for both. The bulk stream is
// unaffected; the alerts stop queueing behind jumbo bulk frames.
//
//   $ ./vera_rubin_nightly
#include "daq/alerts.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"
#include "telemetry/report.hpp"

#include <cstdio>

using namespace mmtp;
using namespace mmtp::literals;

namespace {

struct run_result {
    std::uint64_t bulk_datagrams{0};
    std::uint64_t alert_msgs{0};
    double bulk_gbps{0};
    std::uint64_t alert_p50_us{0};
    std::uint64_t alert_p99_us{0};
};

run_result run_mix(bool priority_queues)
{
    netsim::network net(99);
    auto& telescope = net.add_host("rubin-summit");
    auto& sw = net.emplace<pnet::programmable_switch>("summit-router");
    auto& archive = net.add_host("us-archive");
    sw.set_id_source(&net.ids());

    netsim::link_config uplink;
    uplink.rate = data_rate::from_gbps(100);
    net.connect(telescope, sw, uplink);

    netsim::link_config longhaul;
    longhaul.rate = data_rate::from_gbps(40); // shared long-haul share
    longhaul.propagation = 35_ms;             // Chile -> California
    longhaul.queue_capacity_bytes = 64ull * 1024 * 1024;
    if (priority_queues) {
        auto q = std::make_unique<netsim::priority_queue_disc>(
            pnet::timeliness_bands, longhaul.queue_capacity_bytes,
            [](const netsim::packet& p) { return pnet::timeliness_band_of(p); });
        net.connect_simplex(sw, archive, longhaul, std::move(q));
    } else {
        net.connect_simplex(sw, archive, longhaul);
    }
    net.connect_simplex(archive, sw, longhaul);
    net.compute_routes();

    core::stack tel_stack(telescope, net.ids());

    // Bulk: the nightly capture, paced at 38 Gbps (capacity planned to
    // fit the share). 30 TB would take hours; simulate a 2-second slice.
    core::sender_config bulk_cfg;
    bulk_cfg.pace = data_rate::from_gbps(38);
    core::sender bulk_tx(tel_stack, archive.address(), bulk_cfg);

    // Alerts: timeliness-marked messages (deadline 80 ms, within which
    // they count as fresh).
    core::sender_config alert_cfg;
    alert_cfg.origin_mode.set(wire::feature::timeliness);
    core::sender alert_tx(tel_stack, archive.address(), alert_cfg);
    // give alert datagrams their timeliness field from the source
    // (the telescope is MMTP-native)
    // -- handled by origin mode + timestamp; deadline set via a rule:
    auto modes = std::make_shared<pnet::mode_transition_stage>();
    pnet::mode_rule rule;
    rule.experiment = wire::experiments::vera_rubin;
    rule.require_bits = wire::feature_bit(wire::feature::timeliness);
    rule.set_bits = wire::feature_bit(wire::feature::timeliness);
    rule.deadline_us = 80000;
    modes->add_rule(rule);
    sw.add_stage(modes);
    sw.add_stage(std::make_shared<pnet::age_update_stage>());

    core::stack rx_stack(archive, net.ids());
    core::receiver rx(rx_stack);
    run_result out;
    histogram alert_latency;
    std::uint64_t bulk_bytes = 0;
    rx.set_on_datagram([&](const core::delivered_datagram& d) {
        if (d.hdr.m.has(wire::feature::timeliness)) {
            out.alert_msgs++;
            if (d.hdr.timestamp_ns) {
                const auto lat_ns = net.sim().now().ns
                    - static_cast<std::int64_t>(*d.hdr.timestamp_ns);
                alert_latency.record(lat_ns > 0 ? lat_ns / 1000 : 0);
            }
        } else {
            out.bulk_datagrams++;
            bulk_bytes += d.total_payload_bytes;
        }
    });

    // Bulk: 2 s of back-to-back 8 KB messages at 38 Gbps.
    daq::steady_source bulk_src(
        wire::make_experiment_id(wire::experiments::vera_rubin, 1), 8192,
        sim_duration{1725}, sim_time{0}, 1100000); // ~38 Gbps for ~1.9 s
    bulk_tx.drive(bulk_src);

    // Alerts: one visit burst (10k alerts of ~100 KB at 5.4 Gbps-ish) in
    // the middle of the bulk transfer.
    daq::alert_burst_source::config acfg;
    acfg.experiment = wire::make_experiment_id(wire::experiments::vera_rubin, 2);
    acfg.alerts_per_visit = 2000;
    acfg.mean_alert_bytes = 100000;
    acfg.intra_burst_gap = 150_us; // ~5.3 Gbps
    acfg.visit_limit = 1;
    daq::alert_burst_source alert_src(net.fork_rng(), acfg);
    // shift the burst into the steady state of the bulk flow
    while (auto tm = alert_src.next()) {
        auto msg = tm->msg;
        const auto at = tm->at + 500_ms;
        msg.timestamp_ns = static_cast<std::uint64_t>(at.ns);
        net.sim().schedule_at(at, [&alert_tx, msg] { alert_tx.send_message(msg); });
    }

    net.sim().run();
    out.bulk_gbps = bulk_bytes * 8.0 / net.sim().now().seconds() / 1e9;
    out.alert_p50_us = alert_latency.percentile(50);
    out.alert_p99_us = alert_latency.percentile(99);
    return out;
}

} // namespace

int main()
{
    std::printf("Vera Rubin nightly mix: 38 Gbps bulk + 5.3 Gbps alert burst over a "
                "40 Gbps long-haul share (35 ms)\n");
    const auto fifo = run_mix(false);
    const auto prio = run_mix(true);

    telemetry::table t("alert latency with and without deadline-aware queueing");
    t.set_columns({"egress queue", "bulk goodput", "alerts", "alert p50", "alert p99"});
    auto row = [&](const char* name, const run_result& r) {
        t.add_row({name, telemetry::fmt_rate(r.bulk_gbps * 1000.0),
                   telemetry::fmt_count(r.alert_msgs),
                   telemetry::fmt_duration_us(static_cast<double>(r.alert_p50_us)),
                   telemetry::fmt_duration_us(static_cast<double>(r.alert_p99_us))});
    };
    row("FIFO", fifo);
    row("deadline-aware priority", prio);
    t.print();

    const bool ok = prio.alert_p99_us < fifo.alert_p99_us && prio.alert_msgs > 0;
    std::printf("\n%s\n",
                ok ? "OK: age-sensitive alerts bypass bulk queueing (Req 3)."
                   : "note: priority queueing did not help here — inspect config.");
    return 0;
}
