// overload_drill — offer the WAN twice its capacity for a sustained
// window, and watch every overload-control layer degrade the transfer
// predictably instead of letting it collapse.
//
// What happens, in order:
//   1. The source offers ~2× the WAN rate. The Tofino upgrades the
//      stream (sequencing, retransmission via buf, a 5 ms deadline) and
//      clones every original into buf's tap buffer.
//   2. The WAN egress queue crosses its high watermark: the
//      backpressure stage engages and signals the source — once per
//      engagement plus severity escalations, never per packet.
//   3. The sender's AIMD schedule cuts its pace multiplicatively per
//      signal, and — after the quiet period — recovers it additively,
//      sawtoothing around the WAN's actual capacity.
//   4. When a band still fills, the queue sheds the entry closest to
//      its deadline rather than the newcomer; the receiver NAKs the
//      gap and buf's copy rides the bulk band (no deadline — it cannot
//      be shed again). Zero give-ups required.
//   5. buf's occupancy crosses its own watermark: the capacity planner
//      gates the storage link, a second flow's admission is deferred,
//      and retention decay later releases the gate — the parked flow is
//      admitted automatically.
//
// Run it twice with the same seed: the telemetry is byte-identical.
#include "scenario/registry.hpp"

#include <cstdio>

int main()
{
    using namespace mmtp;

    scenario::scenario_spec spec;
    spec.topology = "overload";
    auto dp = scenario::registry::make(spec);
    auto rp = scenario::registry::make(spec);
    auto& d = static_cast<scenario::overload_driver&>(*dp);
    auto& rerun = static_cast<scenario::overload_driver&>(*rp);
    const int rc = scenario::run_example(d, &rerun);

    const auto& r = d.result();
    std::printf("\n");
    std::printf("deadline misses: %llu of %llu (%llu ppm), given up: %llu\n",
                static_cast<unsigned long long>(r.missed_deadline),
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<unsigned long long>(r.miss_ppm),
                static_cast<unsigned long long>(r.rx.given_up));
    std::printf("backpressure signals: %llu emitted (%llu suppressed) for %llu "
                "datagrams — O(crossings), not O(packets)\n",
                static_cast<unsigned long long>(r.bp_signals),
                static_cast<unsigned long long>(r.bp_suppressed),
                static_cast<unsigned long long>(r.tx.datagrams));
    std::printf("sender pace: %llu bps at end of run (%s), %llu decrease(s), "
                "%llu recovery step(s)\n",
                static_cast<unsigned long long>(r.final_pace_bps),
                r.pace_recovered ? "recovered" : "STILL SUPPRESSED",
                static_cast<unsigned long long>(r.tx.bp_decreases),
                static_cast<unsigned long long>(r.tx.bp_recovery_steps));
    std::printf("storage pressure: %llu engagement(s), %llu release(s); second "
                "flow %s then %s\n",
                static_cast<unsigned long long>(r.pressure_engagements),
                static_cast<unsigned long long>(r.pressure_releases),
                r.second_flow_deferred ? "deferred" : "NOT deferred",
                r.second_flow_admitted ? "admitted" : "NOT admitted");
    if (r.recovered)
        std::printf("stream whole %.3f ms after the load window (%llu probes)\n",
                    static_cast<double>(r.time_to_recover.ns) / 1e6,
                    static_cast<unsigned long long>(r.probes));
    else
        std::printf("stream NOT whole within the probe deadline\n");

    // Hop-by-hop story of the first deadline-shed message: sequenced at
    // the Tofino, evicted from the WAN egress for being closest to its
    // deadline, NAKed, and re-sent from buf on the bulk band.
    bool timeline_identical = true;
    if (r.traced_sequence != std::uint64_t(-1)) {
        std::printf("\nhop timeline of first shed message (sequence %llu):\n%s",
                    static_cast<unsigned long long>(r.traced_sequence),
                    r.hop_timeline.c_str());
        timeline_identical = r.hop_timeline == rerun.result().hop_timeline;
    } else {
        std::printf("\nno shed message traced\n");
    }

    return rc == 0 && r.recovered && r.rx.given_up == 0 && r.pace_recovered
            && timeline_identical
        ? 0
        : 1;
}
