// campaign_runner — execute declarative .scenario files (or a seeded
// random campaign) across the invariant-checked axis matrix.
//
//   $ ./campaign_runner scenarios/chaos.scenario [more.scenario ...]
//   $ ./campaign_runner --single file.scenario    (one cell, as written)
//   $ ./campaign_runner --random 25 --seed 9      (deterministic fuzz)
//   $ ./campaign_runner --print file.scenario     (parse + re-render)
//   $ ./campaign_runner --list                    (topology names)
//
// Every scenario is re-run across burst {1,32} × policy {closed_loop,
// static} × trace {on,off} × persist {on,off} (axes the topology does
// not support are collapsed), and each cell must end whole (unless the
// file declares lossy), deliver zero duplicates, reconcile per-link
// stats, and reproduce byte-identical telemetry on a same-seed rerun.
// Exit status is the number of failed scenarios (0 = campaign green).
#include "scenario/campaign.hpp"
#include "scenario/registry.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

using namespace mmtp;

namespace {

int run_one(const scenario::scenario_spec& spec,
            const scenario::campaign::options& opt)
{
    std::printf("=== %s (topology %s, seed %llu%s) ===\n",
                spec.name.empty() ? "<unnamed>" : spec.name.c_str(),
                spec.topology.c_str(),
                static_cast<unsigned long long>(spec.seed()),
                spec.lossy ? ", lossy" : "");
    const auto outcome = scenario::campaign::run_scenario(spec, opt);
    for (const auto& cell : outcome.cells) {
        std::printf("  [%s] %s  delivered %llu/%llu dup %llu give-up %llu\n",
                    cell.passed ? "pass" : "FAIL", cell.ax.label().c_str(),
                    static_cast<unsigned long long>(cell.accepted.delivered),
                    static_cast<unsigned long long>(cell.accepted.expected),
                    static_cast<unsigned long long>(cell.accepted.duplicates),
                    static_cast<unsigned long long>(cell.accepted.given_up));
        for (const auto& f : cell.failures) std::printf("      %s\n", f.c_str());
    }
    std::printf("  %zu/%zu cells passed\n", outcome.cells.size()
                    - static_cast<std::size_t>(
                        std::count_if(outcome.cells.begin(), outcome.cells.end(),
                                      [](const auto& c) { return !c.passed; })),
                outcome.cells.size());
    return outcome.passed ? 0 : 1;
}

int usage()
{
    std::fprintf(stderr,
                 "usage: campaign_runner [--single] file.scenario...\n"
                 "       campaign_runner --random N --seed S [--matrix]\n"
                 "       campaign_runner --print file.scenario\n"
                 "       campaign_runner --list\n");
    return 2;
}

} // namespace

int main(int argc, char** argv)
{
    scenario::campaign::options opt;
    std::vector<std::string> files;
    std::uint64_t random_n = 0;
    std::uint64_t seed = 1;
    bool print_only = false;
    bool random_matrix = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto& n : scenario::registry::names())
                std::printf("%s\n", n.c_str());
            return 0;
        } else if (arg == "--single") {
            opt.matrix = false;
        } else if (arg == "--matrix") {
            random_matrix = true;
        } else if (arg == "--print") {
            print_only = true;
        } else if (arg == "--random" && i + 1 < argc) {
            random_n = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--seed" && i + 1 < argc) {
            seed = std::strtoull(argv[++i], nullptr, 10);
        } else if (!arg.empty() && arg.front() == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }
    if (files.empty() && random_n == 0) return usage();

    int failed = 0;
    for (const auto& path : files) {
        const auto parsed = scenario::load_scenario_file(path);
        if (!parsed) {
            std::fprintf(stderr, "%s: %s\n", path.c_str(),
                         parsed.error.to_string().c_str());
            ++failed;
            continue;
        }
        if (print_only) {
            std::fputs(scenario::render_scenario(*parsed.spec).c_str(), stdout);
            continue;
        }
        failed += run_one(*parsed.spec, opt);
    }

    if (random_n > 0) {
        // Each generated spec randomizes its own axes, so the fuzz
        // campaign runs one cell per spec unless --matrix asks for all.
        scenario::campaign::options ropt;
        ropt.matrix = random_matrix;
        for (std::uint64_t i = 0; i < random_n; ++i) {
            const auto spec = scenario::campaign::generate(seed + i);
            if (print_only) {
                std::fputs(scenario::render_scenario(spec).c_str(), stdout);
                std::printf("\n");
                continue;
            }
            failed += run_one(spec, ropt);
        }
    }

    if (!print_only)
        std::printf("\ncampaign: %s (%d scenario%s failed)\n",
                    failed == 0 ? "GREEN" : "RED", failed, failed == 1 ? "" : "s");
    return failed == 0 ? 0 : 1;
}
