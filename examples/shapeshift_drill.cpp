// shapeshift_drill — degrade the WAN span mid-run and watch the
// closed-loop policy engine shift the stream's mode at runtime.
//
// What happens, in order:
//   1. The run starts in the baseline posture (epoch 0): the Tofino
//      upgrades the stream to the age-sensitive + recoverable-loss mode
//      the pilot uses, compiled by the same compile_modes().
//   2. At the burst instant a corruption process poisons roughly half
//      of everything crossing the WAN. The engine's next poll sees the
//      loss-counter delta cross its threshold and plans a shift to the
//      *buffered* posture.
//   3. The shift is make-before-break: epoch 1's rules (no delivery
//      deadline — data arrives late rather than never) are installed
//      ahead of epoch 0's, the sender re-stamps new datagrams with
//      cfg_id 1, and only after the drain window is epoch 0 retired.
//   4. Every corrupted datagram is recovered from DTN1's buffer via
//      NAK; nothing is shed or aged while the span is lossy.
//   5. The burst ends; after the restore hysteresis (consecutive clean
//      polls) the engine returns the flow to baseline under epoch 2.
//
// Run it twice with the same seed: the telemetry is byte-identical.
#include "scenario/registry.hpp"

#include <cstdio>

int main()
{
    using namespace mmtp;

    scenario::scenario_spec spec;
    spec.topology = "shapeshift";
    auto dp = scenario::registry::make(spec);
    auto rp = scenario::registry::make(spec);
    auto& d = static_cast<scenario::shapeshift_driver&>(*dp);
    auto& rerun = static_cast<scenario::shapeshift_driver&>(*rp);
    const int rc = scenario::run_example(d, &rerun);

    const auto& r = d.result();
    std::printf("\n");
    std::printf("mode shifts at the element: %llu (epochs retired: %llu), final "
                "posture %s under epoch %u\n",
                static_cast<unsigned long long>(r.mode_shifts),
                static_cast<unsigned long long>(r.epochs_retired),
                r.final_posture.c_str(), unsigned(r.final_epoch));
    for (const auto& [epoch, count] : r.delivered_by_epoch)
        std::printf("  delivered under epoch %u: %llu datagrams\n", unsigned(epoch),
                    static_cast<unsigned long long>(count));
    std::printf("all %llu messages delivered despite %llu corrupted on the WAN: %s "
                "(recovered %llu, given up %llu)\n",
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<unsigned long long>(r.wan.corrupted),
                r.all_delivered ? "yes" : "NO",
                static_cast<unsigned long long>(r.rx.recovered),
                static_cast<unsigned long long>(r.rx.given_up));

    if (!r.reconfig_timeline.empty())
        std::printf("\nreconfiguration spans:\n%s", r.reconfig_timeline.c_str());

    const bool shifted = r.ctl.reconfigs_committed >= 1 && r.mode_shifts >= 1;
    return rc == 0 && shifted && r.all_delivered ? 0 : 1;
}
