// chaos_replay — record a kill-and-revive chaos run into an archive
// blob, then replay it without re-running the simulation.
//
//   chaos_replay record <blob>            run the drill, write the
//                                         recording plus <blob>.metrics.csv
//   chaos_replay replay <blob> <csv-out>  reopen the recording and write
//                                         the re-derived metrics CSV
//   chaos_replay --diff <a.blob> <b.blob> structural wire-event diff: the
//                                         first divergent event (index,
//                                         site, kind, timestamps), or
//                                         "identical" and exit 0
//
// Record the same seed twice: the blobs are byte-identical. Replay a
// recording: the CSV it re-derives matches the live run's byte-for-byte
// (the CI replay-determinism job diffs exactly that). The blob also
// carries every wire event and the interned site table, so offline
// tools can rebuild a flight recorder and walk message timelines long
// after the run — the recorded-run corpus the ROADMAP asks for.
#include "scenario/chaos.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

bool write_file(const std::string& path, const void* data, std::size_t size)
{
    std::ofstream f(path, std::ios::binary);
    if (!f) return false;
    f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    return static_cast<bool>(f);
}

std::vector<std::uint8_t> read_file(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

int do_record(const std::string& blob_path, std::uint64_t seed)
{
    using namespace mmtp;
    auto cfg = scenario::kill_revive_config();
    cfg.record = true;
    cfg.seed = seed;
    const auto r = scenario::run_chaos_drill(cfg);

    if (!write_file(blob_path, r.recording.data(), r.recording.size())) {
        std::fprintf(stderr, "cannot write %s\n", blob_path.c_str());
        return 1;
    }
    const auto csv_path = blob_path + ".metrics.csv";
    if (!write_file(csv_path, r.metrics_csv.data(), r.metrics_csv.size())) {
        std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
        return 1;
    }
    std::printf("recorded run: %zu bytes -> %s (live metrics -> %s)\n",
                r.recording.size(), blob_path.c_str(), csv_path.c_str());
    std::printf("delivered %llu/%llu, given up %llu, revivals %llu, "
                "recovered from archive %llu\n",
                static_cast<unsigned long long>(r.rx.datagrams),
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<unsigned long long>(r.rx.given_up),
                static_cast<unsigned long long>(r.buf1.revivals),
                static_cast<unsigned long long>(r.buf1.recovered_records));
    return r.recovered2 && r.rx.given_up == 0 ? 0 : 1;
}

int do_replay(const std::string& blob_path, const std::string& csv_out)
{
    using namespace mmtp;
    auto blob = read_file(blob_path);
    if (blob.empty()) {
        std::fprintf(stderr, "cannot read %s\n", blob_path.c_str());
        return 1;
    }
    auto rep = telemetry::run_replayer::open(std::move(blob));
    if (!rep || !rep->verify()) {
        std::fprintf(stderr, "malformed or inconsistent recording\n");
        return 1;
    }
    const auto csv = rep->metrics_csv();
    if (!write_file(csv_out, csv.data(), csv.size())) {
        std::fprintf(stderr, "cannot write %s\n", csv_out.c_str());
        return 1;
    }

    std::uint64_t events = 0;
    rep->replay_wire([&events](const telemetry::replayed_event&) { events++; });
    std::printf("replayed scenario '%s' (seed %llu): %llu wire events, "
                "metrics -> %s\n",
                rep->scenario().c_str(),
                static_cast<unsigned long long>(rep->seed()),
                static_cast<unsigned long long>(events), csv_out.c_str());
    return 0;
}

/// Renders one replayed event for the diff report, resolving the site id
/// through the recording's own interned site table.
std::string fmt_event(const mmtp::telemetry::replayed_event& ev,
                      const mmtp::trace::flight_recorder& fr)
{
    using namespace mmtp;
    std::string site = ev.site < fr.site_count() ? fr.site_name(ev.site)
                                                 : "site#" + std::to_string(ev.site);
    std::string out = "t=" + std::to_string(ev.at_ns) + "ns site=" + site
        + " kind=" + trace::hop_name(ev.kind) + " packet=" + std::to_string(ev.packet_id)
        + " arg=" + std::to_string(ev.arg);
    if (ev.why != trace::reason::none)
        out += std::string(" why=") + trace::reason_name(ev.why);
    return out;
}

int do_diff(const std::string& path_a, const std::string& path_b)
{
    using namespace mmtp;
    struct side {
        std::optional<telemetry::run_replayer> rep;
        std::vector<telemetry::replayed_event> events;
        trace::flight_recorder fr{1};
    };
    side s[2];
    const std::string* paths[2] = {&path_a, &path_b};
    for (int i = 0; i < 2; ++i) {
        auto blob = read_file(*paths[i]);
        if (blob.empty()) {
            std::fprintf(stderr, "cannot read %s\n", paths[i]->c_str());
            return 2;
        }
        s[i].rep = telemetry::run_replayer::open(std::move(blob));
        if (!s[i].rep || !s[i].rep->verify()) {
            std::fprintf(stderr, "%s: malformed or inconsistent recording\n",
                         paths[i]->c_str());
            return 2;
        }
        s[i].events = s[i].rep->wire_events();
        s[i].fr = trace::flight_recorder(s[i].events.size() | 1);
        s[i].rep->rebuild_flight_recorder(s[i].fr);
    }

    std::printf("a: scenario '%s' seed %llu, %zu wire events\n",
                s[0].rep->scenario().c_str(),
                static_cast<unsigned long long>(s[0].rep->seed()),
                s[0].events.size());
    std::printf("b: scenario '%s' seed %llu, %zu wire events\n",
                s[1].rep->scenario().c_str(),
                static_cast<unsigned long long>(s[1].rep->seed()),
                s[1].events.size());

    const std::size_t common = std::min(s[0].events.size(), s[1].events.size());
    for (std::size_t i = 0; i < common; ++i) {
        const auto& a = s[0].events[i];
        const auto& b = s[1].events[i];
        if (a.at_ns == b.at_ns && a.packet_id == b.packet_id && a.arg == b.arg
            && a.site == b.site && a.kind == b.kind && a.why == b.why)
            continue;
        std::printf("first divergence at event %zu:\n", i);
        std::printf("  a: %s\n", fmt_event(a, s[0].fr).c_str());
        std::printf("  b: %s\n", fmt_event(b, s[1].fr).c_str());
        return 1;
    }
    if (s[0].events.size() != s[1].events.size()) {
        const int longer = s[0].events.size() > s[1].events.size() ? 0 : 1;
        std::printf("identical through event %zu, then %c has %zu extra "
                    "event(s); first extra:\n  %c: %s\n",
                    common, longer == 0 ? 'a' : 'b',
                    s[longer].events.size() - common, longer == 0 ? 'a' : 'b',
                    fmt_event(s[longer].events[common], s[longer].fr).c_str());
        return 1;
    }
    std::printf("identical: %zu wire events match\n", common);
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc >= 3 && std::strcmp(argv[1], "record") == 0)
        return do_record(argv[2],
                         argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 42);
    if (argc >= 4 && std::strcmp(argv[1], "replay") == 0)
        return do_replay(argv[2], argv[3]);
    if (argc >= 4 && std::strcmp(argv[1], "--diff") == 0)
        return do_diff(argv[2], argv[3]);
    std::fprintf(stderr,
                 "usage: %s record <blob> [seed]\n"
                 "       %s replay <blob> <csv-out>\n"
                 "       %s --diff <a.blob> <b.blob>\n",
                 argv[0], argv[0], argv[0]);
    return 2;
}
