// chaos_replay — record a kill-and-revive chaos run into an archive
// blob, then replay it without re-running the simulation.
//
//   chaos_replay record <blob>            run the drill, write the
//                                         recording plus <blob>.metrics.csv
//   chaos_replay replay <blob> <csv-out>  reopen the recording and write
//                                         the re-derived metrics CSV
//
// Record the same seed twice: the blobs are byte-identical. Replay a
// recording: the CSV it re-derives matches the live run's byte-for-byte
// (the CI replay-determinism job diffs exactly that). The blob also
// carries every wire event and the interned site table, so offline
// tools can rebuild a flight recorder and walk message timelines long
// after the run — the recorded-run corpus the ROADMAP asks for.
#include "scenario/chaos.hpp"

#include <cstdio>
#include <cstring>
#include <fstream>
#include <iterator>
#include <string>
#include <vector>

namespace {

bool write_file(const std::string& path, const void* data, std::size_t size)
{
    std::ofstream f(path, std::ios::binary);
    if (!f) return false;
    f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
    return static_cast<bool>(f);
}

std::vector<std::uint8_t> read_file(const std::string& path)
{
    std::ifstream f(path, std::ios::binary);
    return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

int do_record(const std::string& blob_path)
{
    using namespace mmtp;
    auto cfg = scenario::kill_revive_config();
    cfg.record = true;
    const auto r = scenario::run_chaos_drill(cfg);

    if (!write_file(blob_path, r.recording.data(), r.recording.size())) {
        std::fprintf(stderr, "cannot write %s\n", blob_path.c_str());
        return 1;
    }
    const auto csv_path = blob_path + ".metrics.csv";
    if (!write_file(csv_path, r.metrics_csv.data(), r.metrics_csv.size())) {
        std::fprintf(stderr, "cannot write %s\n", csv_path.c_str());
        return 1;
    }
    std::printf("recorded run: %zu bytes -> %s (live metrics -> %s)\n",
                r.recording.size(), blob_path.c_str(), csv_path.c_str());
    std::printf("delivered %llu/%llu, given up %llu, revivals %llu, "
                "recovered from archive %llu\n",
                static_cast<unsigned long long>(r.rx.datagrams),
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<unsigned long long>(r.rx.given_up),
                static_cast<unsigned long long>(r.buf1.revivals),
                static_cast<unsigned long long>(r.buf1.recovered_records));
    return r.recovered2 && r.rx.given_up == 0 ? 0 : 1;
}

int do_replay(const std::string& blob_path, const std::string& csv_out)
{
    using namespace mmtp;
    auto blob = read_file(blob_path);
    if (blob.empty()) {
        std::fprintf(stderr, "cannot read %s\n", blob_path.c_str());
        return 1;
    }
    auto rep = telemetry::run_replayer::open(std::move(blob));
    if (!rep || !rep->verify()) {
        std::fprintf(stderr, "malformed or inconsistent recording\n");
        return 1;
    }
    const auto csv = rep->metrics_csv();
    if (!write_file(csv_out, csv.data(), csv.size())) {
        std::fprintf(stderr, "cannot write %s\n", csv_out.c_str());
        return 1;
    }

    std::uint64_t events = 0;
    rep->replay_wire([&events](const telemetry::replayed_event&) { events++; });
    std::printf("replayed scenario '%s' (seed %llu): %llu wire events, "
                "metrics -> %s\n",
                rep->scenario().c_str(),
                static_cast<unsigned long long>(rep->seed()),
                static_cast<unsigned long long>(events), csv_out.c_str());
    return 0;
}

} // namespace

int main(int argc, char** argv)
{
    if (argc >= 3 && std::strcmp(argv[1], "record") == 0) return do_record(argv[2]);
    if (argc >= 4 && std::strcmp(argv[1], "replay") == 0)
        return do_replay(argv[2], argv[3]);
    std::fprintf(stderr,
                 "usage: %s record <blob>\n"
                 "       %s replay <blob> <csv-out>\n",
                 argv[0], argv[0]);
    return 2;
}
