// supernova_alert — the paper's §3 integration scenario (Req 10).
//
// A supernova's neutrinos sweep through DUNE minutes-to-days before its
// photons arrive anywhere; DUNE can therefore tell the Vera Rubin
// telescope where to look. This example models the burst being detected
// in the DAQ stream, a tiny direction alert being emitted, and the
// network duplicating the alert in-flight to Vera Rubin *and* a set of
// researcher sites — no store-and-forward terminations on the path.
//
//   $ ./supernova_alert
#include "daq/alerts.hpp"
#include "daq/trigger.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"
#include "telemetry/report.hpp"

#include <cstdio>

using namespace mmtp;
using namespace mmtp::literals;

int main()
{
    netsim::network net(1234);

    // DUNE's far detector in South Dakota, an ESnet core element, the
    // Rubin observatory relay in Chile, and two researcher campuses.
    auto& dune = net.add_host("dune-daq");
    auto& esnet = net.emplace<pnet::programmable_switch>("esnet-core");
    auto& rubin = net.add_host("vera-rubin");
    auto& campus_a = net.add_host("campus-a");
    auto& campus_b = net.add_host("campus-b");
    esnet.set_id_source(&net.ids());

    netsim::link_config to_core;
    to_core.rate = data_rate::from_gbps(400);
    to_core.propagation = 12_ms; // SD -> core
    net.connect(dune, esnet, to_core);

    netsim::link_config to_chile;
    to_chile.rate = data_rate::from_gbps(100);
    to_chile.propagation = 70_ms; // core -> Chile
    net.connect(esnet, rubin, to_chile);

    netsim::link_config to_campus;
    to_campus.rate = data_rate::from_gbps(100);
    to_campus.propagation = 20_ms;
    net.connect(esnet, campus_a, to_campus);
    net.connect(esnet, campus_b, to_campus);
    net.compute_routes();

    // In-network duplication: anyone subscribed to DUNE alerts gets a
    // copy forked at the core — researchers don't wait for the storage
    // tier (§2.1, Fig. 3 ⑥).
    auto dup = std::make_shared<pnet::duplication_stage>();
    dup->add_subscriber(wire::experiments::dune, campus_a.address());
    dup->add_subscriber(wire::experiments::dune, campus_b.address());
    esnet.add_stage(dup);

    // Endpoints.
    core::stack dune_stack(dune, net.ids());
    core::sender_config scfg;
    scfg.origin_mode.set(wire::feature::duplication); // alert stream opts in
    core::sender tx(dune_stack, rubin.address(), scfg);

    struct site {
        const char* name;
        core::stack stack;
        sim_time alert_at{sim_time::never()};
        daq::supernova_alert_source::alert_body body{};
    };
    site sites[3] = {{"vera-rubin", {rubin, net.ids()}},
                     {"campus-a", {campus_a, net.ids()}},
                     {"campus-b", {campus_b, net.ids()}}};
    for (auto& s : sites) {
        s.stack.set_data_sink([&s, &net](core::delivered_datagram&& d) {
            if (auto b = daq::supernova_alert_source::alert_body::parse(d.payload)) {
                s.alert_at = net.sim().now();
                s.body = *b;
            }
        });
    }

    // The physics: a quiet detector, then a neutrino burst at t=2 s.
    const auto burst_onset = sim_time{(2_s).ns};
    daq::supernova_source::config burst_cfg;
    burst_cfg.experiment = wire::make_experiment_id(wire::experiments::dune, 0);
    burst_cfg.burst_onset = burst_onset;
    burst_cfg.burst_duration = 10_s;
    burst_cfg.message_limit = 3000;
    daq::supernova_source detector(burst_cfg);

    // Trigger logic at the DAQ: the first burst-flagged record emits the
    // direction alert.
    bool alert_sent = false;
    while (auto tm = detector.next()) {
        if (!alert_sent && detector.in_burst(tm->at)) {
            alert_sent = true;
            daq::supernova_alert_source::alert_body body;
            body.ra_udeg = 88'790'000 / 1000;   // Betelgeuse-ish RA
            body.dec_udeg = 7'407'000 / 1000;   // and declination
            body.confidence_permille = 982;
            daq::supernova_alert_source alert(burst_cfg.experiment, tm->at, body);
            tx.drive(alert);
            std::printf("burst detected at t=%.3f s -> alert emitted\n",
                        tm->at.seconds());
        }
    }
    net.sim().run();

    telemetry::table t("supernova early-warning: alert delivery");
    t.set_columns({"site", "alert latency", "RA (udeg)", "dec (udeg)", "confidence"});
    bool all_ok = true;
    for (auto& s : sites) {
        if (s.alert_at.is_never()) {
            t.add_row({s.name, "NEVER ARRIVED", "-", "-", "-"});
            all_ok = false;
            continue;
        }
        const auto lat = s.alert_at - burst_onset;
        char ra[32], dec[32], conf[32];
        std::snprintf(ra, sizeof ra, "%d", s.body.ra_udeg);
        std::snprintf(dec, sizeof dec, "%d", s.body.dec_udeg);
        std::snprintf(conf, sizeof conf, "%.1f%%", s.body.confidence_permille / 10.0);
        t.add_row({s.name, telemetry::fmt_duration_us(lat.micros()), ra, dec, conf});
    }
    t.print();
    std::printf("\nclones forked in-network at esnet-core: %llu\n",
                static_cast<unsigned long long>(esnet.stats().clones));
    std::printf("%s\n", all_ok ? "OK: every site was warned within ~one-way delay."
                               : "FAILED: some site missed the alert!");
    return all_ok ? 0 : 1;
}
