// chaos_drill — kill the primary WAN span AND the primary DTN buffer
// mid-transfer, and watch the protocol put the stream back together.
//
// What happens, in order:
//   1. A DAQ burst is in flight: the Tofino assigns sequence numbers,
//      stamps buf1 as the retransmission buffer, and duplicates every
//      datagram into the buf1 and buf2 tap buffers.
//   2. At the fault instant the primary WAN link goes down (stranding
//      its queued packets), the buf1 feed is severed, and buf1 loses
//      power.
//   3. The health monitor drives the capacity planner: budgets on the
//      dead path are released and the flow is re-admitted onto the
//      registered backup span; the reroute callback repoints the
//      Tofino's route, and a listener prunes buf1 from duplication.
//   4. The receiver's NAKs to buf1 go unanswered, back off
//      exponentially, and fail over to buf2 (learned from buf1's own
//      advert) — which retransmits the stranded sequences.
//
// Run it twice with the same seed: the telemetry is byte-identical.
#include "scenario/registry.hpp"

#include <cstdio>

int main()
{
    using namespace mmtp;

    scenario::scenario_spec spec;
    spec.topology = "chaos";
    auto dp = scenario::registry::make(spec);
    auto rp = scenario::registry::make(spec);
    auto& d = static_cast<scenario::chaos_driver&>(*dp);
    auto& rerun = static_cast<scenario::chaos_driver&>(*rp);
    const int rc = scenario::run_example(d, &rerun);

    const auto& r = d.result();
    std::printf("\n");
    if (r.recovered)
        std::printf("recovered %.3f ms after the fault (%llu probes)\n",
                    static_cast<double>(r.time_to_recover.ns) / 1e6,
                    static_cast<unsigned long long>(r.probes));
    else
        std::printf("NOT recovered within the probe deadline\n");
    std::printf("delivered despite failure: %llu datagrams, given up: %llu\n",
                static_cast<unsigned long long>(r.delivered_despite_failure),
                static_cast<unsigned long long>(r.rx.given_up));

    // Hop-by-hop story of one failed-over message: sequenced at the
    // Tofino, cloned into the taps, NAKed after the fault, re-sent by
    // buf2 and delivered across the backup WAN span.
    bool timeline_identical = true;
    if (r.traced_sequence != std::uint64_t(-1)) {
        std::printf("\nhop timeline of failed-over message (sequence %llu):\n%s",
                    static_cast<unsigned long long>(r.traced_sequence),
                    r.hop_timeline.c_str());
        std::printf("traversed backup span after the fault: %s\n",
                    r.traversed_backup ? "yes" : "NO");
        timeline_identical = r.hop_timeline == rerun.result().hop_timeline;
    } else {
        std::printf("\nno failed-over message traced\n");
    }

    return rc == 0 && r.recovered && r.rx.given_up == 0 && r.traversed_backup
            && timeline_identical
        ? 0
        : 1;
}
