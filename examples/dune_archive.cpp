// dune_archive — transport + storage, end to end (§6 challenge 2).
//
// Runs the Fig. 4 pilot over a lossy WAN with *materialized* LArTPC
// frames (real WIB payload bytes, not virtual bulk), has DTN 2 transcode
// every delivered trigger record into the HDF5-style archival container,
// then reopens the archive and re-validates every WIB frame CRC — the
// full detector → transport → storage → analysis loop.
//
//   $ ./dune_archive
#include "daq/archive.hpp"
#include "daq/trigger.hpp"
#include "daq/wib.hpp"
#include "scenario/pilot.hpp"
#include "telemetry/report.hpp"

#include <cstdio>

using namespace mmtp;
using namespace mmtp::literals;

int main()
{
    scenario::pilot_config cfg;
    cfg.wan_loss = 0.02;
    cfg.wan_delay = 5_ms;
    auto tb = scenario::make_pilot(cfg);

    // DTN 2: archive every delivered record (fragments of one record share
    // a timestamp; this workload keeps records within one datagram).
    daq::archive_writer writer;
    writer.set_attribute("facility", "far-site-archive");
    writer.set_attribute("source", "iceberg-pilot");
    const auto exp = wire::make_experiment_id(wire::experiments::iceberg, 0);
    writer.set_dataset_attribute(exp, "detector", "ICEBERG LArTPC");
    std::uint64_t archived = 0;
    tb->dtn2_rx->set_on_datagram([&](const core::delivered_datagram& d) {
        daq::archived_record rec;
        rec.sequence = d.hdr.sequencing ? d.hdr.sequencing->sequence : archived;
        rec.timestamp_ns = d.hdr.timestamp_ns.value_or(0);
        rec.size_bytes = static_cast<std::uint32_t>(d.total_payload_bytes);
        rec.payload = d.payload;
        writer.append(d.hdr.experiment, std::move(rec));
        archived++;
    });

    // Detector: 400 trigger records of 3 materialized WIB frames each.
    daq::iceberg_stream::config scfg;
    scfg.record_limit = 400;
    scfg.frames_per_record = 3;
    scfg.materialize_frames = true;
    daq::iceberg_stream src(tb->net.fork_rng(), scfg);
    std::printf("streaming %llu materialized ICEBERG records across a %.0f%%-loss "
                "WAN and archiving at DTN2...\n",
                static_cast<unsigned long long>(scfg.record_limit), cfg.wan_loss * 100);
    tb->sensor_tx->drive(src);
    tb->net.sim().run();

    const auto blob = writer.finalize();

    // Re-open and verify everything, like an analysis job would.
    auto reader = daq::archive_reader::open(blob);
    if (!reader) {
        std::printf("FAILED: archive did not validate!\n");
        return 1;
    }
    std::uint64_t frames_ok = 0, frames_bad = 0;
    const auto records = reader->read_all(exp);
    for (const auto& rec : records) {
        for (std::uint32_t f = 0; f < scfg.frames_per_record; ++f) {
            const auto off = daq::daq_header::wire_bytes + f * daq::wib_frame_bytes;
            if (off + daq::wib_frame_bytes > rec.payload.size()) {
                frames_bad++;
                continue;
            }
            const auto frame = daq::wib_frame::parse(
                std::span<const std::uint8_t>(rec.payload)
                    .subspan(off, daq::wib_frame_bytes));
            if (frame)
                frames_ok++;
            else
                frames_bad++;
        }
    }

    telemetry::table t("detector -> MMTP (lossy WAN) -> archive -> analysis");
    t.set_columns({"stage", "value"});
    t.add_row({"records streamed", telemetry::fmt_count(scfg.record_limit)});
    t.add_row({"recovered from DTN1 buffer",
               telemetry::fmt_count(tb->dtn2_rx->stats().recovered)});
    t.add_row({"records archived", telemetry::fmt_count(archived)});
    t.add_row({"archive size", telemetry::fmt_count(blob.size()) + " B"});
    t.add_row({"archive facility attr", reader->attribute("facility").value_or("?")});
    t.add_row({"records read back", telemetry::fmt_count(records.size())});
    t.add_row({"WIB frames CRC-valid", telemetry::fmt_count(frames_ok)});
    t.add_row({"WIB frames corrupt", telemetry::fmt_count(frames_bad)});
    t.print();

    const bool ok = archived == scfg.record_limit && records.size() == archived
        && frames_bad == 0 && frames_ok == scfg.record_limit * scfg.frames_per_record;
    std::printf("\n%s\n",
                ok ? "OK: every frame crossed the lossy WAN and the archive intact."
                   : "FAILED: data corrupted or lost on the way to the archive!");
    return ok ? 0 : 1;
}
