// soak_drill — the facility-scale soak: all five Table-1 experiments
// concurrent over shared WAN spans and DTNs, one million messages,
// admission/teardown churn, and a scripted fault-and-overload storm
// with the closed-loop policy engines active in the same run.
//
// What happens, in order:
//   1. Twenty slice streams (5 experiments × 4 slices) start emission
//      chains toward the shared DTN1 relay; five capacity-planned
//      trunks carry them over wan-primary, and a churn process admits
//      and releases hundreds of short-lived flows alongside.
//   2. DTN1's occupancy crosses its high watermark; storage pressure
//      gates the shared DAQ link, so churn admissions park in the
//      planner's deferred queue until the tail of the run.
//   3. The storm: a corruption burst on the primary span (all five
//      engines degrade to buffered), DTN2 — the duplication-fed tap —
//      is killed and revived from its durable store, the primary span
//      fails hard (health monitor → planner → all five trunks reroute
//      onto wan-backup), and a second burst hits the backup span.
//   4. Every storm loss is NAK-recovered from DTN1. The flush reveals
//      any tail loss; prune_idle retires the completed streams; the
//      deferred churn queue drains when pressure releases.
//
// The run must end whole — zero duplicates, zero give-ups — and two
// same-seed runs produce byte-identical telemetry even though every
// hot-path lookup underneath is hashed. Pass --smoke for the CI-sized
// variant (~10k messages, same storm).
#include "scenario/registry.hpp"

#include <cstdio>
#include <cstring>

int main(int argc, char** argv)
{
    using namespace mmtp;

    const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
    scenario::scenario_spec spec;
    spec.topology = "soak";
    if (smoke) spec.soak = scenario::soak_smoke_config();
    auto dp = scenario::registry::make(spec);
    auto rp = scenario::registry::make(spec);
    auto& d = static_cast<scenario::soak_driver&>(*dp);
    auto& rerun = static_cast<scenario::soak_driver&>(*rp);
    const int rc = scenario::run_example(d, &rerun);

    const auto& r = d.result();
    std::printf("\n");
    std::printf("delivered %llu / %llu messages across 5 concurrent experiments "
                "(duplicates %llu, given up %llu): %s\n",
                static_cast<unsigned long long>(r.delivered),
                static_cast<unsigned long long>(r.messages_sent),
                static_cast<unsigned long long>(r.rx.duplicates),
                static_cast<unsigned long long>(r.rx.given_up),
                r.all_delivered && r.all_experiments_complete ? "whole" : "NOT WHOLE");
    std::printf("storm: %llu corrupted on primary, %llu on backup, %llu trunks "
                "rerouted, DTN2 crashed %llu× and recovered %llu records\n",
                static_cast<unsigned long long>(r.wan_primary.corrupted),
                static_cast<unsigned long long>(r.wan_backup.corrupted),
                static_cast<unsigned long long>(r.planner.flows_rerouted),
                static_cast<unsigned long long>(r.dtn2.crashes),
                static_cast<unsigned long long>(r.dtn2.recovered_records));
    std::printf("control: %llu reconfigs committed across 5 engines "
                "(%llu loss triggers, %llu health triggers, %llu restores)\n",
                static_cast<unsigned long long>(r.reconfigs_committed),
                static_cast<unsigned long long>(r.loss_triggers),
                static_cast<unsigned long long>(r.health_triggers),
                static_cast<unsigned long long>(r.restores));
    std::printf("churn: %llu requests, %llu deferred behind storage pressure, "
                "%llu admitted from the queue; streams retired %llu/%llu, "
                "signal records pruned %llu\n",
                static_cast<unsigned long long>(r.churn_requests),
                static_cast<unsigned long long>(r.planner.admissions_deferred),
                static_cast<unsigned long long>(r.planner.deferred_admitted),
                static_cast<unsigned long long>(r.streams_retired),
                static_cast<unsigned long long>(r.streams_seen),
                static_cast<unsigned long long>(r.signals_pruned));

    const bool storm_exercised = r.rerouted_all_trunks && r.dtn2.revivals >= 1
        && r.reconfigs_committed >= 1;
    return rc == 0 && r.all_delivered && r.all_experiments_complete
            && storm_exercised
        ? 0
        : 1;
}
