// quickstart — the smallest end-to-end MMTP program.
//
// Builds a three-node path (sensor → programmable switch → analysis
// host), lets the control plane compile a mode policy, installs the
// resulting rule on the switch, and streams 1000 detector messages
// across a lossy link. The receiver recovers every loss by NAKing the
// upstream buffer. Run it; it prints what happened at each layer.
//
//   $ ./quickstart
#include "control/policy.hpp"
#include "daq/trigger.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"
#include "telemetry/report.hpp"

#include <cstdio>

using namespace mmtp;
using namespace mmtp::literals;

int main()
{
    // 1. Topology: sensor -> DTN (buffer) -> switch -> lossy WAN -> analysis
    netsim::network net(/*seed=*/7);
    auto& sensor = net.add_host("sensor");
    auto& dtn = net.add_host("dtn");
    auto& sw = net.emplace<pnet::programmable_switch>("switch");
    auto& analysis = net.add_host("analysis");
    sw.set_id_source(&net.ids());

    netsim::link_config lan;
    lan.rate = data_rate::from_gbps(100);
    net.connect(sensor, dtn, lan);
    net.connect(dtn, sw, lan);

    netsim::link_config wan = lan;
    wan.propagation = 5_ms;
    wan.drop_probability = 0.02; // 2% loss to make recovery visible
    net.connect_simplex(sw, analysis, wan);
    netsim::link_config wan_back = lan;
    wan_back.propagation = 5_ms;
    net.connect_simplex(analysis, sw, wan_back);
    net.compute_routes();

    // 2. Control plane: describe the path, compile the mode policy.
    control::resource_map rmap;
    rmap.add({control::resource_kind::retransmission_buffer, dtn.address(),
              "dtn-buffer", 512 * 1024 * 1024, 5_s, "example"});
    control::policy_inputs pin;
    pin.experiment = wire::experiments::iceberg;
    pin.segments = {
        {control::path_segment::kind::daq, 1_us, data_rate::from_gbps(100), false, 0},
        {control::path_segment::kind::wan, 5_ms, data_rate::from_gbps(100), true,
         sw.address()},
    };
    pin.recovery_buffer = dtn.address();
    pin.notify_addr = dtn.address();
    const auto policy = control::compile_modes(pin, rmap);
    std::printf("policy: deadline=%u us, nak_retry=%.1f ms, %zu transition(s)\n",
                policy.deadline_us, policy.suggested_nak_retry.millis(),
                policy.transitions.size());

    // 3. Install the in-network programs on the switch.
    auto modes = std::make_shared<pnet::mode_transition_stage>();
    for (const auto& t : policy.transitions)
        if (t.element == sw.address()) modes->add_rule(t.rule);
    sw.add_stage(modes);
    sw.add_stage(std::make_shared<pnet::age_update_stage>());

    // 4. Endpoints: sensor sends mode 0; DTN buffers+relays; analysis
    //    receives and NAKs the DTN on loss.
    core::stack sensor_stack(sensor, net.ids());
    core::sender_config scfg;
    scfg.origin_mode = policy.origin_mode;
    core::sender tx(sensor_stack, dtn.address(), scfg);

    core::stack dtn_stack(dtn, net.ids());
    core::buffer_service_config bcfg;
    bcfg.next_hop = analysis.address();
    core::buffer_service buffer(dtn_stack, bcfg);
    buffer.attach_as_sink();

    core::stack rx_stack(analysis, net.ids());
    core::receiver_config rcfg;
    rcfg.nak_retry = policy.suggested_nak_retry;
    core::receiver rx(rx_stack, rcfg);

    // 5. Drive a synthetic LArTPC stream and run the simulation.
    daq::iceberg_stream::config icfg;
    icfg.record_limit = 1000;
    daq::iceberg_stream source(net.fork_rng(), icfg);
    tx.drive(source);
    net.sim().run();

    // 6. Report.
    telemetry::table t("quickstart: 1000 records across a 2%-loss WAN");
    t.set_columns({"stage", "metric", "value"});
    t.add_row({"sensor", "messages sent", telemetry::fmt_count(tx.stats().messages)});
    t.add_row({"dtn", "datagrams relayed+buffered",
               telemetry::fmt_count(buffer.stats().relayed)});
    t.add_row({"switch", "mode transitions",
               telemetry::fmt_count(sw.state().counter("mode_transitions"))});
    t.add_row({"analysis", "datagrams delivered",
               telemetry::fmt_count(rx.stats().datagrams)});
    t.add_row({"analysis", "recovered via NAK to DTN",
               telemetry::fmt_count(rx.stats().recovered)});
    t.add_row({"analysis", "NAKs sent", telemetry::fmt_count(rx.stats().naks_sent)});
    t.add_row({"analysis", "unrecoverable", telemetry::fmt_count(rx.stats().given_up)});
    t.add_row({"analysis", "p50 age",
               telemetry::fmt_duration_us(
                   static_cast<double>(rx.stats().age_us.percentile(50)))});
    t.print();

    const bool ok = rx.stats().datagrams == 1000 && rx.stats().given_up == 0;
    std::printf("\n%s\n", ok ? "OK: every record delivered exactly once."
                             : "FAILED: records missing!");
    return ok ? 0 : 1;
}
