// Tests for the HDF5-style archival container (§6 challenge 2):
// round-trips, chunking, checksum validation, attributes, random access,
// and an end-to-end transcode of received MMTP datagrams.
#include "common/rng.hpp"
#include "daq/archive.hpp"
#include "daq/trigger.hpp"
#include "daq/wib.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::daq;

namespace {

archived_record make_record(std::uint64_t seq, std::size_t payload_len = 32)
{
    archived_record r;
    r.sequence = seq;
    r.timestamp_ns = seq * 1000;
    r.size_bytes = static_cast<std::uint32_t>(payload_len + 100);
    r.payload.resize(payload_len);
    for (std::size_t i = 0; i < payload_len; ++i)
        r.payload[i] = static_cast<std::uint8_t>(seq + i);
    return r;
}

} // namespace

TEST(archive, empty_round_trip)
{
    archive_writer w;
    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    EXPECT_TRUE(r->dataset_ids().empty());
}

TEST(archive, single_dataset_round_trip)
{
    archive_writer w;
    const auto exp = wire::make_experiment_id(wire::experiments::dune, 1);
    std::vector<archived_record> originals;
    for (std::uint64_t i = 0; i < 100; ++i) {
        originals.push_back(make_record(i));
        w.append(exp, originals.back());
    }
    EXPECT_EQ(w.records_written(), 100u);
    const auto blob = w.finalize();

    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    ASSERT_EQ(r->dataset_ids().size(), 1u);
    EXPECT_EQ(r->record_count(exp), 100u);
    const auto records = r->read_all(exp);
    ASSERT_EQ(records.size(), 100u);
    for (std::uint64_t i = 0; i < 100; ++i) EXPECT_EQ(records[i], originals[i]) << i;
}

TEST(archive, chunking_respects_limits)
{
    archive_limits limits;
    limits.chunk_records = 16;
    archive_writer w(limits);
    const auto exp = wire::make_experiment_id(1, 0);
    for (std::uint64_t i = 0; i < 50; ++i) w.append(exp, make_record(i));
    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    // 50 records over chunks of 16 => order preserved across chunk seams
    const auto records = r->read_all(exp);
    ASSERT_EQ(records.size(), 50u);
    for (std::uint64_t i = 0; i < 50; ++i) EXPECT_EQ(records[i].sequence, i);
}

TEST(archive, multiple_datasets_are_isolated)
{
    archive_writer w;
    const auto a = wire::make_experiment_id(1, 0);
    const auto b = wire::make_experiment_id(2, 0);
    for (std::uint64_t i = 0; i < 10; ++i) w.append(a, make_record(i));
    for (std::uint64_t i = 100; i < 105; ++i) w.append(b, make_record(i));
    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->record_count(a), 10u);
    EXPECT_EQ(r->record_count(b), 5u);
    EXPECT_EQ(r->read_all(b).front().sequence, 100u);
    EXPECT_EQ(r->record_count(wire::make_experiment_id(3, 0)), 0u);
}

TEST(archive, attributes_round_trip)
{
    archive_writer w;
    const auto exp = wire::make_experiment_id(wire::experiments::iceberg, 0);
    w.set_attribute("facility", "dune-far-site");
    w.set_attribute("schema", "trigger-records-v1");
    w.append(exp, make_record(0));
    w.set_dataset_attribute(exp, "detector", "iceberg-lartpc");
    const auto blob = w.finalize();

    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->attribute("facility").value_or(""), "dune-far-site");
    EXPECT_EQ(r->attribute("schema").value_or(""), "trigger-records-v1");
    EXPECT_FALSE(r->attribute("missing").has_value());
    EXPECT_EQ(r->dataset_attribute(exp, "detector").value_or(""), "iceberg-lartpc");
    EXPECT_FALSE(r->dataset_attribute(exp, "missing").has_value());
}

TEST(archive, random_access_by_index)
{
    archive_limits limits;
    limits.chunk_records = 8;
    archive_writer w(limits);
    const auto exp = wire::make_experiment_id(1, 0);
    for (std::uint64_t i = 0; i < 30; ++i) w.append(exp, make_record(i));
    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    for (std::uint64_t i : {0ull, 7ull, 8ull, 15ull, 29ull}) {
        const auto rec = r->read_at(exp, i);
        ASSERT_TRUE(rec.has_value()) << i;
        EXPECT_EQ(rec->sequence, i);
    }
    EXPECT_FALSE(r->read_at(exp, 30).has_value());
    EXPECT_FALSE(r->read_at(wire::make_experiment_id(9, 0), 0).has_value());
}

TEST(archive, corruption_detected_at_open)
{
    archive_writer w;
    const auto exp = wire::make_experiment_id(1, 0);
    for (std::uint64_t i = 0; i < 20; ++i) w.append(exp, make_record(i));
    auto blob = w.finalize();

    // flip one payload byte inside the chunk area
    auto corrupted = blob;
    corrupted[40] ^= 0x01;
    EXPECT_FALSE(archive_reader::open(corrupted).has_value());

    // truncation
    auto truncated = blob;
    truncated.resize(truncated.size() / 2);
    EXPECT_FALSE(archive_reader::open(truncated).has_value());

    // wrong magic
    auto wrong = blob;
    wrong[0] ^= 0xff;
    EXPECT_FALSE(archive_reader::open(wrong).has_value());

    // pristine blob still opens
    EXPECT_TRUE(archive_reader::open(blob).has_value());
}

TEST(archive_limits, oversize_records_are_rejected_and_counted)
{
    archive_limits limits;
    limits.max_record_bytes = 100;
    archive_writer w(limits);
    const auto exp = wire::make_experiment_id(1, 0);

    EXPECT_TRUE(w.append(exp, make_record(0, 100))); // boundary: accepted
    EXPECT_FALSE(w.append(exp, make_record(1, 101)));
    EXPECT_FALSE(w.append(exp, make_record(2, 4096)));
    EXPECT_EQ(w.stats().appended, 1u);
    EXPECT_EQ(w.stats().rejected_oversize, 2u);
    EXPECT_EQ(w.records_written(), 1u);

    // The writer stays usable and the blob holds only the accepted record.
    EXPECT_TRUE(w.append(exp, make_record(3, 50)));
    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->record_count(exp), 2u);
}

TEST(archive_limits, chunk_cap_bounds_each_dataset)
{
    archive_limits limits;
    limits.chunk_records = 4;
    limits.max_chunks_per_dataset = 2; // 8 records max per dataset
    archive_writer w(limits);
    const auto a = wire::make_experiment_id(1, 0);
    const auto b = wire::make_experiment_id(2, 0);

    for (std::uint64_t i = 0; i < 8; ++i) EXPECT_TRUE(w.append(a, make_record(i)));
    EXPECT_FALSE(w.append(a, make_record(8))); // dataset a is full
    EXPECT_FALSE(w.append(a, make_record(9)));
    EXPECT_EQ(w.stats().rejected_chunk_cap, 2u);

    // Another dataset has its own budget.
    EXPECT_TRUE(w.append(b, make_record(0)));

    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->record_count(a), 8u);
    EXPECT_EQ(r->record_count(b), 1u);
    const auto records = r->read_all(a);
    ASSERT_EQ(records.size(), 8u);
    EXPECT_EQ(records.back().sequence, 7u); // the overflow never landed
}

TEST(archive_limits, dataset_cap_bounds_dataset_creation)
{
    archive_limits limits;
    limits.max_datasets = 2;
    archive_writer w(limits);
    const auto a = wire::make_experiment_id(1, 0);
    const auto b = wire::make_experiment_id(2, 0);
    const auto c = wire::make_experiment_id(3, 0);

    EXPECT_TRUE(w.append(a, make_record(0)));
    EXPECT_TRUE(w.append(b, make_record(0)));
    EXPECT_FALSE(w.append(c, make_record(0))); // would create a third
    EXPECT_EQ(w.stats().rejected_dataset_cap, 1u);
    // Existing datasets still accept.
    EXPECT_TRUE(w.append(a, make_record(1)));

    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->dataset_ids().size(), 2u);
    EXPECT_EQ(r->record_count(c), 0u);
}

TEST(archive_limits, append_accounting_identities_hold)
{
    archive_limits limits;
    limits.chunk_records = 4;
    limits.max_record_bytes = 64;
    limits.max_chunks_per_dataset = 3;
    archive_writer w(limits);
    const auto exp = wire::make_experiment_id(1, 0);

    std::uint64_t accepted = 0;
    for (std::uint64_t i = 0; i < 20; ++i)
        if (w.append(exp, make_record(i, i % 5 == 0 ? 80 : 16))) accepted++;

    const auto& s = w.stats();
    EXPECT_EQ(s.appended, accepted);
    EXPECT_EQ(s.appended, w.records_written());
    EXPECT_EQ(s.appended, w.sealed_records() + w.open_records());
    EXPECT_GT(s.rejected_oversize, 0u);
    EXPECT_GT(s.rejected_chunk_cap, 0u);
    EXPECT_EQ(s.appended + s.rejected_oversize + s.rejected_chunk_cap
                  + s.rejected_dataset_cap,
              20u);

    // Sealing is observable: every full chunk was counted as it sealed,
    // and finalize seals the remainder.
    EXPECT_EQ(s.chunks_sealed, w.sealed_records() / limits.chunk_records);
    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->record_count(exp), accepted);
}

TEST(archive, transcodes_materialized_wib_frames_losslessly)
{
    // end-to-end shape of §6 (2): detector frames -> messages -> archive
    // -> reader -> frames, with every CRC intact.
    iceberg_stream::config cfg;
    cfg.frames_per_record = 3;
    cfg.record_limit = 5;
    cfg.materialize_frames = true;
    iceberg_stream src(rng(99), cfg);

    archive_writer w;
    const auto exp = wire::make_experiment_id(wire::experiments::iceberg, 0);
    while (auto tm = src.next()) {
        archived_record rec;
        rec.sequence = tm->msg.sequence;
        rec.timestamp_ns = tm->msg.timestamp_ns;
        rec.size_bytes = tm->msg.size_bytes;
        rec.payload = tm->msg.inline_payload;
        w.append(exp, std::move(rec));
    }
    const auto blob = w.finalize();
    const auto r = archive_reader::open(blob);
    ASSERT_TRUE(r.has_value());
    const auto records = r->read_all(exp);
    ASSERT_EQ(records.size(), 5u);
    for (const auto& rec : records) {
        // the shared DAQ header parses, and each WIB frame CRC-checks
        const auto dh = daq_header::parse(rec.payload);
        ASSERT_TRUE(dh.has_value());
        for (int f = 0; f < 3; ++f) {
            const auto frame =
                wib_frame::parse(std::span<const std::uint8_t>(rec.payload)
                                     .subspan(daq_header::wire_bytes + f * wib_frame_bytes,
                                              wib_frame_bytes));
            ASSERT_TRUE(frame.has_value());
        }
    }
}

TEST(archive, large_payload_stress)
{
    rng r(7);
    archive_limits limits;
    limits.chunk_records = 32;
    archive_writer w(limits);
    const auto exp = wire::make_experiment_id(1, 0);
    std::vector<std::uint32_t> sizes;
    for (std::uint64_t i = 0; i < 500; ++i) {
        const auto len = r.uniform_int(0, 4096);
        sizes.push_back(static_cast<std::uint32_t>(len));
        w.append(exp, make_record(i, len));
    }
    const auto blob = w.finalize();
    const auto reader = archive_reader::open(blob);
    ASSERT_TRUE(reader.has_value());
    const auto records = reader->read_all(exp);
    ASSERT_EQ(records.size(), 500u);
    for (std::uint64_t i = 0; i < 500; ++i)
        EXPECT_EQ(records[i].payload.size(), sizes[i]) << i;
}
