// Unit tests for the DTN retransmission buffer.
#include "dtn/buffer.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::dtn;
using namespace mmtp::literals;

namespace {

buffered_datagram make_entry(std::uint64_t seq, std::uint32_t size = 1000,
                             wire::experiment_id exp = 42, std::uint16_t epoch = 0)
{
    buffered_datagram d;
    d.sequence = seq;
    d.epoch = epoch;
    d.experiment = exp;
    d.size_bytes = size;
    d.timestamp_ns = seq * 100;
    return d;
}

} // namespace

TEST(buffer, store_fetch_hit_and_miss)
{
    retransmission_buffer buf;
    buf.store(make_entry(5), sim_time{0});
    const auto hit = buf.fetch(42, 0, 5, sim_time{0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->sequence, 5u);
    EXPECT_EQ(hit->timestamp_ns, 500u);
    EXPECT_FALSE(buf.fetch(42, 0, 6, sim_time{0}).has_value());
    EXPECT_FALSE(buf.fetch(43, 0, 5, sim_time{0}).has_value());
    EXPECT_FALSE(buf.fetch(42, 1, 5, sim_time{0}).has_value());
    EXPECT_EQ(buf.stats().hits, 1u);
    EXPECT_EQ(buf.stats().misses, 3u);
}

TEST(buffer, fetch_range_returns_contiguous_present)
{
    retransmission_buffer buf;
    for (std::uint64_t s : {1, 2, 3, 5, 6}) buf.store(make_entry(s), sim_time{0});
    const auto got = buf.fetch_range(42, 0, 2, 5, sim_time{0});
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].sequence, 2u);
    EXPECT_EQ(got[1].sequence, 3u);
    EXPECT_EQ(got[2].sequence, 5u);
}

TEST(buffer, capacity_eviction_oldest_first)
{
    buffer_config cfg;
    cfg.capacity_bytes = 2500;
    retransmission_buffer buf(cfg);
    buf.store(make_entry(1), sim_time{0});
    buf.store(make_entry(2), sim_time{0});
    buf.store(make_entry(3), sim_time{0}); // 3000 bytes: evict seq 1
    EXPECT_EQ(buf.entries(), 2u);
    EXPECT_FALSE(buf.fetch(42, 0, 1, sim_time{0}).has_value());
    EXPECT_TRUE(buf.fetch(42, 0, 3, sim_time{0}).has_value());
    EXPECT_EQ(buf.stats().evicted_capacity, 1u);
    EXPECT_LE(buf.bytes_used(), cfg.capacity_bytes);
}

TEST(buffer, retention_eviction)
{
    buffer_config cfg;
    cfg.retention = 1_s;
    retransmission_buffer buf(cfg);
    buf.store(make_entry(1), sim_time{0});
    buf.store(make_entry(2), sim_time{(500_ms).ns});
    // at t=1.2s, seq 1 is stale but seq 2 is not
    EXPECT_FALSE(buf.fetch(42, 0, 1, sim_time{(1200_ms).ns}).has_value());
    EXPECT_TRUE(buf.fetch(42, 0, 2, sim_time{(1200_ms).ns}).has_value());
    EXPECT_EQ(buf.stats().evicted_retention, 1u);
}

TEST(buffer, replacement_same_key_updates_bytes)
{
    retransmission_buffer buf;
    buf.store(make_entry(7, 1000), sim_time{0});
    buf.store(make_entry(7, 2000), sim_time{0});
    EXPECT_EQ(buf.entries(), 1u);
    EXPECT_EQ(buf.bytes_used(), 2000u);
    const auto hit = buf.fetch(42, 0, 7, sim_time{0});
    ASSERT_TRUE(hit.has_value());
    EXPECT_EQ(hit->size_bytes, 2000u);
}

TEST(buffer, streams_are_isolated_by_experiment)
{
    retransmission_buffer buf;
    buf.store(make_entry(1, 100, 1), sim_time{0});
    buf.store(make_entry(1, 100, 2), sim_time{0});
    EXPECT_EQ(buf.entries(), 2u);
    const auto r1 = buf.fetch_range(1, 0, 0, 10, sim_time{0});
    ASSERT_EQ(r1.size(), 1u);
    EXPECT_EQ(r1[0].experiment, 1u);
}

TEST(buffer, peak_bytes_tracked)
{
    retransmission_buffer buf;
    buf.store(make_entry(1, 3000), sim_time{0});
    buf.store(make_entry(2, 1000), sim_time{0});
    EXPECT_EQ(buf.stats().peak_bytes, 4000u);
}
