// Req 8 / Req 10 tests: instrument partitioning and integration.
// Slices of one experiment are independent streams end to end — separate
// sequence spaces, separate loss recovery, separate delivery accounting —
// and several experiments can share one path and one buffer service
// without interfering.
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/network.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::core;
using namespace mmtp::netsim;
using namespace mmtp::literals;

namespace {

struct sliced_rig {
    network net;
    host* src;
    host* dst;
    std::unique_ptr<stack> s_src;
    std::unique_ptr<stack> s_dst;
    std::unique_ptr<buffer_service> svc;
    std::unique_ptr<receiver> rx;

    explicit sliced_rig(double loss, std::uint64_t seed = 77) : net(seed)
    {
        src = &net.add_host("src");
        dst = &net.add_host("dst");
        link_config fwd;
        fwd.rate = data_rate::from_gbps(10);
        fwd.propagation = 500_us;
        fwd.drop_probability = loss;
        net.connect_simplex(*src, *dst, fwd);
        link_config back = fwd;
        back.drop_probability = 0.0;
        net.connect_simplex(*dst, *src, back);
        net.compute_routes();
        s_src = std::make_unique<stack>(*src, net.ids());
        s_dst = std::make_unique<stack>(*dst, net.ids());
        buffer_service_config bcfg;
        bcfg.next_hop = dst->address();
        bcfg.assign_sequence_locally = true;
        svc = std::make_unique<buffer_service>(*s_src, bcfg);
        receiver_config rcfg;
        rcfg.nak_retry = 3_ms;
        rx = std::make_unique<receiver>(*s_dst, rcfg);
    }

    void feed(wire::experiment_id id, std::uint64_t n)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            delivered_datagram d;
            d.hdr.experiment = id;
            d.hdr.m.set(wire::feature::timestamped);
            d.hdr.timestamp_ns = static_cast<std::uint64_t>(net.sim().now().ns);
            d.total_payload_bytes = 1000;
            svc->relay(d);
        }
    }
};

} // namespace

TEST(slices, tail_loss_recovered_via_stream_flush)
{
    // a 30% lossy link makes tail loss near-certain across 20 streams'
    // final datagrams; without flush these would be silently missing.
    sliced_rig rig(0.30, 123);
    for (std::uint32_t slice = 0; slice < 20; ++slice)
        rig.feed(wire::make_experiment_id(wire::experiments::dune, slice), 10);
    rig.svc->flush();
    rig.net.sim().run();
    EXPECT_EQ(rig.rx->stats().datagrams, 200u);
    EXPECT_EQ(rig.rx->stats().given_up, 0u);
    EXPECT_GT(rig.rx->stats().recovered, 20u);
}

TEST(slices, all_slices_delivered_with_per_slice_accounting)
{
    sliced_rig rig(0.0);
    std::map<std::uint32_t, std::uint64_t> per_slice;
    rig.rx->set_on_datagram([&](const delivered_datagram& d) {
        per_slice[wire::slice_of(d.hdr.experiment)]++;
    });
    for (std::uint32_t slice = 0; slice < 4; ++slice)
        rig.feed(wire::make_experiment_id(wire::experiments::dune, slice),
                 100 + slice * 10);
    rig.net.sim().run();
    for (std::uint32_t slice = 0; slice < 4; ++slice)
        EXPECT_EQ(per_slice[slice], 100 + slice * 10) << "slice " << slice;
}

TEST(slices, loss_recovery_works_across_interleaved_slices)
{
    sliced_rig rig(0.05);
    for (std::uint64_t round = 0; round < 200; ++round) {
        for (std::uint32_t slice = 0; slice < 4; ++slice)
            rig.feed(wire::make_experiment_id(wire::experiments::dune, slice), 1);
    }
    rig.svc->flush(); // end-of-window markers reveal any tail loss
    rig.net.sim().run();
    EXPECT_EQ(rig.rx->stats().datagrams, 800u);
    EXPECT_EQ(rig.rx->stats().given_up, 0u);
    EXPECT_GT(rig.rx->stats().recovered, 0u);
}

TEST(slices, multiple_experiments_share_buffer_without_interference)
{
    sliced_rig rig(0.03);
    std::map<std::uint32_t, std::uint64_t> per_experiment;
    rig.rx->set_on_datagram([&](const delivered_datagram& d) {
        per_experiment[wire::experiment_of(d.hdr.experiment)]++;
    });
    rig.feed(wire::make_experiment_id(wire::experiments::dune, 0), 300);
    rig.feed(wire::make_experiment_id(wire::experiments::vera_rubin, 0), 300);
    rig.feed(wire::make_experiment_id(wire::experiments::mu2e, 0), 300);
    rig.svc->flush();
    rig.net.sim().run();
    EXPECT_EQ(per_experiment[wire::experiments::dune], 300u);
    EXPECT_EQ(per_experiment[wire::experiments::vera_rubin], 300u);
    EXPECT_EQ(per_experiment[wire::experiments::mu2e], 300u);
    EXPECT_EQ(rig.rx->stats().given_up, 0u);
}

TEST(slices, sender_stamps_slice_from_message)
{
    // the slice travels in the experiment-id field from the sensor
    network net(5);
    auto& a = net.add_host("a");
    auto& b = net.add_host("b");
    net.connect(a, b, link_config{});
    net.compute_routes();
    stack sa(a, net.ids());
    stack sb(b, net.ids());
    std::vector<std::uint32_t> slices_seen;
    sb.set_data_sink([&](delivered_datagram&& d) {
        slices_seen.push_back(wire::slice_of(d.hdr.experiment));
    });
    sender_config cfg;
    sender tx(sa, b.address(), cfg);
    for (std::uint32_t slice : {7u, 3u, 7u}) {
        daq::daq_message m;
        m.experiment = wire::make_experiment_id(wire::experiments::dune, slice);
        m.size_bytes = 100;
        tx.send_message(m);
    }
    net.sim().run();
    EXPECT_EQ(slices_seen, (std::vector<std::uint32_t>{7, 3, 7}));
}
