// Unit tests for the control plane: resource map, capacity planner, and
// the mode-policy compiler.
#include "control/planner.hpp"
#include "control/policy.hpp"
#include "control/resource_map.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

using namespace mmtp;
using namespace mmtp::control;
using namespace mmtp::literals;

// ----------------------------------------------------------- resource map

TEST(resource_map, add_find_replace)
{
    resource_map m;
    m.add({resource_kind::retransmission_buffer, 0x0a000001, "buf1", 100, 1_s, "site-a"});
    m.add({resource_kind::programmable_switch, 0x0a000002, "sw1", 0, {}, "site-a"});
    EXPECT_EQ(m.records().size(), 2u);
    auto r = m.find(0x0a000001);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->name, "buf1");
    // same addr replaces
    m.add({resource_kind::retransmission_buffer, 0x0a000001, "buf1-v2", 200, 1_s, "site-a"});
    EXPECT_EQ(m.records().size(), 2u);
    EXPECT_EQ(m.find(0x0a000001)->name, "buf1-v2");
    EXPECT_FALSE(m.find(0xff).has_value());
    EXPECT_EQ(m.count(resource_kind::retransmission_buffer), 1u);
}

TEST(resource_map, nearest_upstream_buffer)
{
    resource_map m;
    m.add({resource_kind::retransmission_buffer, 1, "far", 0, {}, ""});
    m.add({resource_kind::programmable_switch, 2, "sw", 0, {}, ""});
    m.add({resource_kind::retransmission_buffer, 3, "near", 0, {}, ""});
    const std::vector<wire::ipv4_addr> path{1, 2, 3, 4};
    auto r = m.nearest_upstream_buffer(path, 4);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->name, "near"); // the LAST buffer before the receiver
    // restrict to the first two hops
    r = m.nearest_upstream_buffer(path, 2);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->name, "far");
    EXPECT_FALSE(m.nearest_upstream_buffer(path, 0).has_value());
}

TEST(resource_map, ingest_advert)
{
    resource_map m;
    wire::buffer_advert_body b{0x0a000009, 1024, 2000};
    m.ingest_advert(b, "domain-x");
    auto r = m.find(0x0a000009);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->kind, resource_kind::retransmission_buffer);
    EXPECT_EQ(r->capacity_bytes, 1024u);
    EXPECT_EQ(r->retention.ns, (2_s).ns);
    EXPECT_EQ(r->domain, "domain-x");
}

// --------------------------------------------------------------- planner

TEST(planner, admits_within_budget_rejects_beyond)
{
    capacity_planner p;
    p.register_link("wan", data_rate::from_gbps(100), 0.05); // 95G usable
    const std::vector<link_id> path{"wan"};
    auto f1 = p.admit(path, data_rate::from_gbps(60));
    ASSERT_TRUE(f1.has_value());
    EXPECT_FALSE(p.admit(path, data_rate::from_gbps(40)).has_value()); // 60+40 > 95
    auto f2 = p.admit(path, data_rate::from_gbps(30));
    EXPECT_TRUE(f2.has_value());
    EXPECT_NEAR(p.committed("wan").gbps(), 90.0, 0.01);
    EXPECT_NEAR(p.available("wan").gbps(), 5.0, 0.01);
}

TEST(planner, release_frees_capacity)
{
    capacity_planner p;
    p.register_link("l", data_rate::from_gbps(10), 0.0);
    auto f = p.admit({"l"}, data_rate::from_gbps(10));
    ASSERT_TRUE(f.has_value());
    EXPECT_FALSE(p.admit({"l"}, data_rate::from_gbps(1)).has_value());
    p.release(*f);
    EXPECT_TRUE(p.admit({"l"}, data_rate::from_gbps(1)).has_value());
    EXPECT_EQ(p.flow_count(), 1u);
}

TEST(planner, multi_link_paths_must_fit_everywhere)
{
    capacity_planner p;
    p.register_link("a", data_rate::from_gbps(100), 0.0);
    p.register_link("b", data_rate::from_gbps(10), 0.0);
    EXPECT_FALSE(p.admit({"a", "b"}, data_rate::from_gbps(20)).has_value());
    EXPECT_TRUE(p.admit({"a", "b"}, data_rate::from_gbps(10)).has_value());
}

TEST(planner, unknown_link_rejected_but_unchecked_allows_overbooking)
{
    capacity_planner p;
    p.register_link("l", data_rate::from_gbps(1), 0.0);
    EXPECT_FALSE(p.admit({"nope"}, data_rate::from_mbps(1)).has_value());
    // ablation A2: deliberate overbooking
    p.admit_unchecked({"l"}, data_rate::from_gbps(5));
    EXPECT_NEAR(p.committed("l").gbps(), 5.0, 0.01);
    EXPECT_EQ(p.available("l").bits_per_sec, 0u);
}

// The deferred-admission queue under sustained churn: a thousand
// park/reopen cycles against a gated link, with long-lived flows holding
// budget throughout. Every parked request must admit exactly once (FIFO),
// every admitted flow release cleanly, and the budget must return to
// exactly its starting point — no leaked commitment, no double admit.
TEST(planner, thousand_cycle_deferred_churn_is_exact)
{
    capacity_planner p;
    p.register_link("daq", data_rate::from_gbps(100));
    p.register_link("wan", data_rate::from_gbps(100));

    // Long-lived occupants so churn runs against a partially full link.
    const auto trunk1 = p.admit({"daq", "wan"}, data_rate::from_gbps(30));
    const auto trunk2 = p.admit({"daq", "wan"}, data_rate::from_gbps(30));
    ASSERT_TRUE(trunk1 && trunk2);
    const auto baseline = p.committed("wan").bits_per_sec;

    std::vector<flow_id> admitted;
    const auto churn_rate = data_rate::from_mbps(10);
    for (int cycle = 0; cycle < 1000; ++cycle) {
        p.set_admissible("daq", false);
        // Parked behind the gate...
        EXPECT_FALSE(
            p.admit_or_defer({"daq", "wan"}, churn_rate,
                             [&](flow_id id) { admitted.push_back(id); })
                .has_value());
        // ...admitted (FIFO) the moment it reopens.
        p.set_admissible("daq", true);
        ASSERT_EQ(admitted.size(), static_cast<std::size_t>(cycle + 1));
        p.release(admitted.back());
    }

    EXPECT_EQ(p.stats().admissions_deferred, 1000u);
    EXPECT_EQ(p.stats().deferred_admitted, 1000u);
    EXPECT_EQ(p.flow_count(), 2u); // only the trunks remain
    EXPECT_EQ(p.committed("wan").bits_per_sec, baseline);
    EXPECT_EQ(p.committed("daq").bits_per_sec, baseline);

    // Flow ids never repeated: each churn admission was a distinct flow.
    std::vector<flow_id> sorted = admitted;
    std::sort(sorted.begin(), sorted.end());
    EXPECT_TRUE(std::adjacent_find(sorted.begin(), sorted.end()) == sorted.end());
}

// release() must retry the deferred queue: a request parked because the
// link was *full* (not gated) admits as soon as capacity frees up.
TEST(planner, release_drains_deferred_queue)
{
    capacity_planner p;
    p.register_link("wan", data_rate::from_gbps(10));
    const auto big = p.admit({"wan"}, data_rate::from_gbps(9));
    ASSERT_TRUE(big.has_value());

    // Gate, park, reopen while still full: stays parked (budget refusal
    // keeps it queued rather than dropping it).
    p.set_admissible("wan", false);
    std::vector<flow_id> admitted;
    EXPECT_FALSE(p.admit_or_defer({"wan"}, data_rate::from_gbps(5),
                                  [&](flow_id id) { admitted.push_back(id); })
                     .has_value());
    p.set_admissible("wan", true);
    EXPECT_TRUE(admitted.empty());

    p.release(*big);
    ASSERT_EQ(admitted.size(), 1u);
    EXPECT_NE(p.flow(admitted[0]), nullptr);
    EXPECT_EQ(p.stats().deferred_admitted, 1u);
}

// Failure handling is incremental: only flows actually crossing the
// failed link are touched, and the reroute callbacks arrive in ascending
// flow-id order (the per-link crossing index is snapshotted and sorted,
// so the hashed tables never leak iteration order).
TEST(planner, link_down_touches_only_crossing_flows_in_id_order)
{
    capacity_planner p;
    p.register_link("daq", data_rate::from_gbps(100));
    p.register_link("wan-a", data_rate::from_gbps(50));
    p.register_link("wan-b", data_rate::from_gbps(50));

    std::vector<flow_id> on_a, elsewhere;
    for (int i = 0; i < 40; ++i) {
        const auto& target = (i % 2 == 0) ? "wan-a" : "wan-b";
        const auto f = p.admit({"daq", target}, data_rate::from_mbps(100));
        ASSERT_TRUE(f.has_value());
        if (i % 2 == 0) {
            ASSERT_TRUE(p.register_backup_path(*f, {"daq", "wan-b"}));
            on_a.push_back(*f);
        } else {
            elsewhere.push_back(*f);
        }
    }

    std::vector<flow_id> rerouted;
    p.set_reroute_handler(
        [&](const admission& f, bool ok) {
            EXPECT_TRUE(ok);
            rerouted.push_back(f.id);
        });
    p.handle_link_down("wan-a");

    EXPECT_EQ(rerouted, on_a); // exactly the crossing flows, ascending id
    EXPECT_EQ(p.stats().flows_rerouted, on_a.size());
    for (const auto f : elsewhere) {
        ASSERT_NE(p.flow(f), nullptr);
        EXPECT_EQ(p.flow(f)->path.back(), "wan-b"); // untouched
    }
    EXPECT_EQ(p.committed("wan-a").bits_per_sec, 0u);
}

// ---------------------------------------------------------------- policy

namespace {

policy_inputs pilot_like_inputs()
{
    policy_inputs in;
    in.experiment = 6;
    in.segments = {
        {path_segment::kind::daq, 1_us, data_rate::from_gbps(100), false, 0},
        {path_segment::kind::wan, 10_ms, data_rate::from_gbps(100), true, 0x0a000010},
        {path_segment::kind::campus, 1_ms, data_rate::from_gbps(100), false, 0x0a000020},
    };
    in.recovery_buffer = 0x0a000002;
    in.notify_addr = 0x0a000002;
    return in;
}

} // namespace

TEST(policy, pilot_three_mode_structure)
{
    resource_map m;
    const auto plan = compile_modes(pilot_like_inputs(), m);

    EXPECT_EQ(plan.origin_mode.cfg_data, 0u); // mode 0 at the sensor
    ASSERT_EQ(plan.transitions.size(), 2u);

    // WAN boundary: sequencing + recovery + timeliness + backpressure
    const auto& wan = plan.transitions[0];
    EXPECT_EQ(wan.element, 0x0a000010u);
    EXPECT_TRUE(wan.resulting_mode.has(wire::feature::sequencing));
    EXPECT_TRUE(wan.resulting_mode.has(wire::feature::retransmission));
    EXPECT_TRUE(wan.resulting_mode.has(wire::feature::timeliness));
    EXPECT_TRUE(wan.resulting_mode.has(wire::feature::backpressure));
    EXPECT_EQ(wan.rule.buffer_addr.value_or(0), 0x0a000002u);

    // campus boundary: signalling stripped, recovery info kept for DTN2
    const auto& campus = plan.transitions[1];
    EXPECT_EQ(campus.element, 0x0a000020u);
    EXPECT_FALSE(campus.resulting_mode.has(wire::feature::backpressure));
    EXPECT_TRUE(campus.resulting_mode.has(wire::feature::retransmission));
    EXPECT_TRUE(campus.resulting_mode.has(wire::feature::timeliness));
}

TEST(policy, deadline_scales_with_path_latency)
{
    resource_map m;
    auto in = pilot_like_inputs();
    const auto short_plan = compile_modes(in, m);
    in.segments[1].one_way_latency = 100_ms;
    const auto long_plan = compile_modes(in, m);
    EXPECT_GT(long_plan.deadline_us, short_plan.deadline_us);
    // slack x path + allowance: 3 x ~11 ms + 2 ms ≈ 35 ms
    EXPECT_NEAR(static_cast<double>(short_plan.deadline_us), 35000.0, 2000.0);
}

TEST(policy, nak_retry_exceeds_recovery_rtt)
{
    resource_map m;
    const auto plan = compile_modes(pilot_like_inputs(), m);
    // recovery RTT ≈ 2*(10ms+1ms) = 22 ms; retry must exceed it
    EXPECT_GT(plan.suggested_nak_retry.ns, (22_ms).ns);
}

TEST(policy, buffer_from_resource_map_when_not_explicit)
{
    resource_map m;
    m.add({resource_kind::retransmission_buffer, 0x0a000010, "wan-edge-buf", 0, {}, ""});
    auto in = pilot_like_inputs();
    in.recovery_buffer = 0; // let the map decide
    const auto plan = compile_modes(in, m);
    ASSERT_FALSE(plan.transitions.empty());
    EXPECT_EQ(plan.transitions[0].rule.buffer_addr.value_or(0), 0x0a000010u);
}
