// The campaign layer end to end: the checked-in .scenario files
// reproduce the hand-written drivers byte-for-byte, every driver's
// report is a deterministic function of its seed, the invariant-checked
// axis matrix passes on the chaos drill, the seeded random campaign is
// green, and two recordings of different runs diff at a well-defined
// first divergent wire event.
#include "common/crc32c.hpp"
#include "scenario/campaign.hpp"
#include "scenario/chaos.hpp"
#include "scenario/registry.hpp"
#include "telemetry/run_recorder.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::scenario;

#ifndef MMTP_SCENARIO_DIR
#error "MMTP_SCENARIO_DIR must point at the checked-in scenarios/ directory"
#endif

namespace {

struct capture {
    std::string describe;
    std::string report_csv;
    std::string metrics_csv;
};

/// Runs any driver to completion and captures its full telemetry.
capture run_and_capture(driver& d)
{
    capture cap;
    cap.describe = d.describe();
    d.run();
    telemetry::metrics_registry reg;
    cap.report_csv = d.report(reg).csv();
    cap.metrics_csv = reg.to_csv();
    return cap;
}

scenario_spec load_checked_in(const std::string& stem)
{
    const auto out =
        load_scenario_file(std::string(MMTP_SCENARIO_DIR) + "/" + stem + ".scenario");
    EXPECT_TRUE(out) << stem << ": " << out.error.to_string();
    return *out.spec;
}

} // namespace

// -------------------------- scenario files vs hand-written driver configs

// Each checked-in file must be the hand-written drill, just spelled as
// data: running it through the DSL driver and running the concrete
// driver with the C++ config produce byte-identical telemetry.
TEST(campaign_files, pilot_scenario_matches_handwritten_driver)
{
    using namespace mmtp::literals;
    pilot_driver::options opt;
    opt.records = 5000;
    opt.pilot.wan_loss = 0.02;
    opt.pilot.wan_delay = 5_ms;
    pilot_driver hand(opt);
    dsl_driver from_file(load_checked_in("pilot"));
    const auto a = run_and_capture(hand);
    const auto b = run_and_capture(from_file);
    EXPECT_EQ(a.report_csv, b.report_csv);
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

TEST(campaign_files, today_scenario_matches_handwritten_driver)
{
    today_driver hand(today_driver::options{});
    dsl_driver from_file(load_checked_in("today"));
    const auto a = run_and_capture(hand);
    const auto b = run_and_capture(from_file);
    EXPECT_EQ(a.report_csv, b.report_csv);
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

TEST(campaign_files, chaos_scenario_matches_handwritten_driver)
{
    chaos_driver hand(chaos_config{});
    dsl_driver from_file(load_checked_in("chaos"));
    const auto a = run_and_capture(hand);
    const auto b = run_and_capture(from_file);
    EXPECT_EQ(a.report_csv, b.report_csv);
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

TEST(campaign_files, overload_scenario_matches_handwritten_driver)
{
    overload_driver hand(overload_config{});
    dsl_driver from_file(load_checked_in("overload"));
    const auto a = run_and_capture(hand);
    const auto b = run_and_capture(from_file);
    EXPECT_EQ(a.report_csv, b.report_csv);
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

TEST(campaign_files, shapeshift_scenario_matches_handwritten_driver)
{
    shapeshift_driver hand(shapeshift_config{});
    dsl_driver from_file(load_checked_in("shapeshift"));
    const auto a = run_and_capture(hand);
    const auto b = run_and_capture(from_file);
    EXPECT_EQ(a.report_csv, b.report_csv);
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

TEST(campaign_files, soak_scenario_matches_handwritten_driver)
{
    soak_driver hand(soak_smoke_config());
    dsl_driver from_file(load_checked_in("soak"));
    const auto a = run_and_capture(hand);
    const auto b = run_and_capture(from_file);
    EXPECT_EQ(a.report_csv, b.report_csv);
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
}

// ------------------------------------- same-seed reports are byte-stable

// Regression pin for the report()/describe() audit: no wall-clock, no
// locale-dependent formatting — two same-seed runs of every driver
// produce byte-identical describe lines, report CSV and metrics CSV.
TEST(campaign_determinism, every_driver_report_is_byte_identical_across_reruns)
{
    for (const auto& topo : registry::names()) {
        scenario_spec spec;
        spec.topology = topo;
        if (topo == "pilot") spec.pilot.records = 800;
        if (topo == "soak") spec.soak = soak_smoke_config();
        auto first = registry::make(spec);
        auto second = registry::make(spec);
        ASSERT_TRUE(first && second) << topo;
        const auto a = run_and_capture(*first);
        const auto b = run_and_capture(*second);
        EXPECT_EQ(a.describe, b.describe) << topo;
        EXPECT_EQ(a.report_csv, b.report_csv) << topo;
        EXPECT_EQ(a.metrics_csv, b.metrics_csv) << topo;
    }
}

// ------------------------------------------- pre-shard telemetry pins

// CRC-32C + length of each checked-in scenario's report and metrics
// CSV, captured from the build immediately before the sharded engine
// landed. The scheduler seam, run_context and coordinator are allowed
// to change *nothing* about a --shards=1 run: same event order, same
// packet ids, same telemetry bytes. A pin moving means the refactor
// perturbed the single-shard fast path — byte-compare against the old
// build before touching these constants.
TEST(campaign_files, single_shard_telemetry_matches_pre_shard_pins)
{
    struct pin {
        const char* stem;
        std::uint32_t report_crc;
        std::size_t report_len;
        std::uint32_t metrics_crc;
        std::size_t metrics_len;
    };
    static constexpr pin pins[] = {
        {"pilot", 0x0aef9e06u, 209u, 0xed95def2u, 4624u},
        {"today", 0xa501c960u, 93u, 0x18719c6du, 351u},
        {"chaos", 0x50ca8d47u, 755u, 0xc22e55fau, 4866u},
        {"overload", 0x04f8d3ffu, 846u, 0x5b08e7d1u, 4899u},
        {"shapeshift", 0xfd8168a3u, 497u, 0xf83c220au, 4227u},
        {"soak", 0xfe7a9c40u, 1194u, 0x9cec8b26u, 11117u},
    };
    const auto crc_of = [](const std::string& s) {
        return crc32c({reinterpret_cast<const std::uint8_t*>(s.data()), s.size()});
    };
    for (const auto& p : pins) {
        scenario_spec spec = load_checked_in(p.stem);
        ASSERT_EQ(spec.shards(), 1u) << p.stem;
        dsl_driver d(spec);
        const auto cap = run_and_capture(d);
        EXPECT_EQ(cap.report_csv.size(), p.report_len) << p.stem;
        EXPECT_EQ(crc_of(cap.report_csv), p.report_crc) << p.stem;
        EXPECT_EQ(cap.metrics_csv.size(), p.metrics_len) << p.stem;
        EXPECT_EQ(crc_of(cap.metrics_csv), p.metrics_crc) << p.stem;
    }
}

// ----------------------------------------------------- the axis matrix

TEST(campaign_matrix, chaos_scenario_green_across_the_full_matrix)
{
    scenario_spec spec;
    spec.topology = "chaos";
    spec.name = "chaos-matrix";
    const auto out = campaign::run_scenario(spec, campaign::options{});
    // burst {1,32} x trace {on,off} x persist {on,off} x shards {1,2};
    // chaos has no policy axis.
    EXPECT_EQ(out.cells.size(), 16u);
    for (const auto& cell : out.cells) {
        EXPECT_TRUE(cell.passed) << cell.ax.label();
        for (const auto& f : cell.failures) ADD_FAILURE() << f;
        EXPECT_GT(cell.accepted.delivered, 0u);
        EXPECT_EQ(cell.accepted.duplicates, 0u);
    }
    EXPECT_TRUE(out.passed);
}

TEST(campaign_matrix, lossy_scenario_forgives_loss_but_never_duplicates)
{
    scenario_spec spec;
    spec.topology = "today";
    spec.lossy = true;
    const auto out = campaign::run_scenario(spec, campaign::options{});
    EXPECT_EQ(out.cells.size(), 2u); // burst is today's only swept axis
    EXPECT_TRUE(out.passed);
    for (const auto& cell : out.cells)
        EXPECT_EQ(cell.accepted.duplicates, 0u) << cell.ax.label();
}

TEST(campaign_matrix, collapsed_axes_follow_the_spec)
{
    scenario_spec spec;
    spec.topology = "shapeshift";
    spec.shapeshift.policy = control::mode_preset::static_preset;
    spec.shapeshift.trace = false;
    const auto single = campaign::matrix_for(spec, {.matrix = false});
    ASSERT_EQ(single.size(), 1u);
    EXPECT_FALSE(single[0].closed_loop);
    EXPECT_FALSE(single[0].trace);
    // Full matrix: burst {1,32} x policy {cl,static} x trace {on,off}.
    EXPECT_EQ(campaign::matrix_for(spec, campaign::options{}).size(), 8u);
}

// ------------------------------------------------ seeded random campaign

TEST(campaign_random, generated_scenarios_pass_their_invariants)
{
    for (std::uint64_t seed = 9; seed < 14; ++seed) {
        const auto spec = campaign::generate(seed);
        const auto out =
            campaign::run_scenario(spec, campaign::options{.matrix = false});
        EXPECT_TRUE(out.passed) << "seed " << seed << " (" << spec.topology << ")";
        for (const auto& cell : out.cells)
            for (const auto& f : cell.failures)
                ADD_FAILURE() << "seed " << seed << ": " << f;
    }
}

// -------------------------------------------- wire-recording structural diff

// The data layer behind `chaos_replay --diff`: same-seed recordings
// replay identical wire-event streams; different-seed recordings have a
// well-defined first divergent event.
TEST(campaign_diff, recordings_diverge_at_a_first_event_or_not_at_all)
{
    auto record = [](std::uint64_t seed) {
        // kill_revive has corruption bursts, so the seed shapes the
        // wire-event stream (the plain drill's faults are all scripted).
        chaos_config cfg = kill_revive_config();
        cfg.record = true;
        cfg.seed = seed;
        return run_chaos_drill(cfg).recording;
    };
    const auto blob_a = record(42);
    const auto blob_b = record(42);
    const auto blob_c = record(7);

    auto events_of = [](std::vector<std::uint8_t> blob) {
        auto rep = telemetry::run_replayer::open(std::move(blob));
        EXPECT_TRUE(rep && rep->verify());
        return rep->wire_events();
    };
    const auto ea = events_of(blob_a);
    const auto eb = events_of(blob_b);
    const auto ec = events_of(blob_c);
    ASSERT_FALSE(ea.empty());

    auto same = [](const telemetry::replayed_event& x,
                   const telemetry::replayed_event& y) {
        return x.at_ns == y.at_ns && x.packet_id == y.packet_id && x.arg == y.arg
            && x.site == y.site && x.kind == y.kind && x.why == y.why;
    };

    // Same seed: event-for-event identical.
    ASSERT_EQ(ea.size(), eb.size());
    for (std::size_t i = 0; i < ea.size(); ++i)
        ASSERT_TRUE(same(ea[i], eb[i])) << "event " << i;

    // Different seed: some first index disagrees (and every index before
    // it agrees — the definition of "first divergence" --diff prints).
    std::size_t first = 0;
    const std::size_t common = std::min(ea.size(), ec.size());
    while (first < common && same(ea[first], ec[first])) ++first;
    EXPECT_TRUE(first < common || ea.size() != ec.size())
        << "different seeds produced identical recordings";
}
