// Chaos drill acceptance tests: the coordinated WAN + buffer failure
// must be survived (rerouted, failed over, zero given-up sequences, a
// finite time-to-recover) and must be perfectly reproducible (two
// same-seed runs emit byte-identical telemetry).
#include "scenario/chaos.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::scenario;

TEST(chaos_drill, survives_coordinated_wan_and_buffer_failure)
{
    const auto r = run_chaos_drill(chaos_config{});

    // The fault fired as scripted and the control plane saw it.
    EXPECT_EQ(r.faults.link_downs, 2u);      // wan-primary + buf1 feed
    EXPECT_EQ(r.faults.node_blackouts, 1u);  // buf1
    EXPECT_EQ(r.health.downs_observed, 2u);
    EXPECT_EQ(r.planner.flows_rerouted, 1u);
    EXPECT_EQ(r.planner.flows_stranded, 0u);

    // The fault actually created loss to recover from.
    EXPECT_GT(r.stranded_in_primary_queue, 0u);
    EXPECT_GT(r.wan_backup.tx_packets, 0u); // traffic moved to the backup

    // Recovery: NAKs failed over to the surviving buffer, which answered.
    EXPECT_EQ(r.rx.buffer_failovers, 1u);
    EXPECT_GT(r.rx.nak_retries, 0u);
    EXPECT_GT(r.buf2.retransmitted, 0u);
    EXPECT_GT(r.buf1_blackout_dropped, 0u); // the primary never answered

    // Acceptance: nothing abandoned, every message delivered exactly
    // once, and the tracker measured a finite time-to-recover.
    EXPECT_EQ(r.rx.given_up, 0u);
    EXPECT_EQ(r.rx.datagrams, r.messages_sent);
    EXPECT_GT(r.delivered_despite_failure, 0u);
    ASSERT_TRUE(r.recovered);
    EXPECT_GT(r.time_to_recover.ns, 0);
    EXPECT_LT(r.time_to_recover.ns, chaos_config{}.probe_deadline.ns);
}

TEST(chaos_drill, same_seed_runs_emit_byte_identical_telemetry)
{
    const auto a = run_chaos_drill(chaos_config{});
    const auto b = run_chaos_drill(chaos_config{});
    ASSERT_FALSE(a.csv.empty());
    EXPECT_EQ(a.csv, b.csv);
    EXPECT_EQ(a.time_to_recover.ns, b.time_to_recover.ns);
    EXPECT_EQ(a.rx.naks_sent, b.rx.naks_sent);
}

TEST(chaos_drill, duplication_subscriber_pruned_on_feed_failure)
{
    chaos_config cfg;
    auto tb = make_chaos(cfg);
    EXPECT_EQ(tb->duplication->subscriber_count(wire::experiments::iceberg), 2u);
    tb->net.sim().run();
    // The health listener removed buf1 when its feed went down.
    EXPECT_EQ(tb->duplication->subscriber_count(wire::experiments::iceberg), 1u);
    // And the planner's view of the primary span is down, budget-free.
    EXPECT_FALSE(tb->planner.link_up("wan-primary"));
    EXPECT_EQ(tb->planner.available("wan-primary").bits_per_sec, 0u);
    // The rerouted flow now runs on the backup path.
    ASSERT_NE(tb->planner.flow(tb->flow), nullptr);
    EXPECT_EQ(tb->planner.flow(tb->flow)->path,
              (std::vector<control::link_id>{"daq", "wan-backup"}));
}
