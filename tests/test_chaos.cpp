// Chaos drill acceptance tests: the coordinated WAN + buffer failure
// must be survived (rerouted, failed over, zero given-up sequences, a
// finite time-to-recover) and must be perfectly reproducible (two
// same-seed runs emit byte-identical telemetry).
#include "scenario/chaos.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::scenario;

TEST(chaos_drill, survives_coordinated_wan_and_buffer_failure)
{
    const auto r = run_chaos_drill(chaos_config{});

    // The fault fired as scripted and the control plane saw it.
    EXPECT_EQ(r.faults.link_downs, 2u);      // wan-primary + buf1 feed
    EXPECT_EQ(r.faults.node_blackouts, 1u);  // buf1
    EXPECT_EQ(r.health.downs_observed, 2u);
    EXPECT_EQ(r.planner.flows_rerouted, 1u);
    EXPECT_EQ(r.planner.flows_stranded, 0u);

    // The fault actually created loss to recover from.
    EXPECT_GT(r.stranded_in_primary_queue, 0u);
    EXPECT_GT(r.wan_backup.tx_packets, 0u); // traffic moved to the backup

    // Recovery: NAKs failed over to the surviving buffer, which answered.
    EXPECT_EQ(r.rx.buffer_failovers, 1u);
    EXPECT_GT(r.rx.nak_retries, 0u);
    EXPECT_GT(r.buf2.retransmitted, 0u);
    EXPECT_GT(r.buf1_blackout_dropped, 0u); // the primary never answered

    // Acceptance: nothing abandoned, every message delivered exactly
    // once, and the tracker measured a finite time-to-recover.
    EXPECT_EQ(r.rx.given_up, 0u);
    EXPECT_EQ(r.rx.datagrams, r.messages_sent);
    EXPECT_GT(r.delivered_despite_failure, 0u);
    ASSERT_TRUE(r.recovered);
    EXPECT_GT(r.time_to_recover.ns, 0);
    EXPECT_LT(r.time_to_recover.ns, chaos_config{}.probe_deadline.ns);
}

TEST(chaos_drill, same_seed_runs_emit_byte_identical_telemetry)
{
    const auto a = run_chaos_drill(chaos_config{});
    const auto b = run_chaos_drill(chaos_config{});
    ASSERT_FALSE(a.csv.empty());
    EXPECT_EQ(a.csv, b.csv);
    EXPECT_EQ(a.time_to_recover.ns, b.time_to_recover.ns);
    EXPECT_EQ(a.rx.naks_sent, b.rx.naks_sent);
}

// Kill-and-revive acceptance: buf2 dies after taking over, buf1 revives
// from its archive and serves repairs for a second wave riding a
// corruption burst — messages buf2 never saw. Zero loss, zero
// duplicates, and every lifecycle stat lands exactly once.
TEST(chaos_drill, kill_and_revive_recovers_from_archive)
{
    const auto r = run_chaos_drill(kill_revive_config());

    // Phase A is the classic drill: failover to buf2, first recovery.
    EXPECT_EQ(r.rx.buffer_failovers, 1u);
    EXPECT_GT(r.buf2.retransmitted, 0u);
    ASSERT_TRUE(r.recovered);

    // The blackout was a genuine kill: buf1's software crashed, its
    // unsealed archive tail was lost and counted, and the revive
    // reloaded the sealed records.
    EXPECT_EQ(r.buf1.crashes, 1u);
    EXPECT_EQ(r.buf1.revivals, 1u);
    EXPECT_GT(r.buf1.persisted, 0u);
    EXPECT_GT(r.buf1.tail_lost, 0u);
    EXPECT_GT(r.buf1.recovered_records, 0u);
    EXPECT_EQ(r.faults.node_blackouts, 2u); // buf1, then buf2
    EXPECT_EQ(r.faults.node_restores, 1u);  // only buf1 comes back

    // The revived buf1 re-advertised; the receiver failed *back* and the
    // second wave's burst losses were repaired from the archive-backed
    // buffer — buf2 was dark and never saw wave 2.
    EXPECT_EQ(r.rx.buffer_failbacks, 1u);
    EXPECT_GT(r.buf1.retransmitted, 0u);
    ASSERT_TRUE(r.recovered2);
    EXPECT_GT(r.time_to_recover2.ns, 0);

    // Acceptance: both waves whole, nothing duplicated, nothing abandoned.
    EXPECT_EQ(r.messages_sent, kill_revive_config().messages + kill_revive_config().messages2);
    EXPECT_EQ(r.rx.datagrams, r.messages_sent);
    EXPECT_EQ(r.rx.duplicates, 0u);
    EXPECT_EQ(r.rx.given_up, 0u);
}

TEST(chaos_drill, kill_and_revive_same_seed_byte_identical)
{
    const auto a = run_chaos_drill(kill_revive_config());
    const auto b = run_chaos_drill(kill_revive_config());
    ASSERT_FALSE(a.csv.empty());
    EXPECT_EQ(a.csv, b.csv);
    ASSERT_FALSE(a.metrics_csv.empty());
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
    EXPECT_EQ(a.time_to_recover2.ns, b.time_to_recover2.ns);
}

// Record/replay: a recorded run's archive blob re-derives the metrics
// snapshot byte-for-byte without re-running the simulation, and two
// same-seed recordings are bit-identical blobs.
TEST(chaos_drill, recording_replays_byte_identical_metrics)
{
    auto cfg = kill_revive_config();
    cfg.record = true;
    const auto r = run_chaos_drill(cfg);
    ASSERT_FALSE(r.recording.empty());

    auto rep = telemetry::run_replayer::open(r.recording);
    ASSERT_TRUE(rep.has_value());
    EXPECT_TRUE(rep->verify());
    EXPECT_EQ(rep->scenario(), "chaos");
    EXPECT_EQ(rep->seed(), cfg.seed);
    EXPECT_EQ(rep->metrics_csv(), r.metrics_csv);
    EXPECT_EQ(rep->report_csv(), r.csv);

    const auto r2 = run_chaos_drill(cfg);
    EXPECT_EQ(r.recording, r2.recording);
}

// The persistence plumbing must not perturb the classic drill: buf1
// persists every relay, but with the revive phase disabled the archive
// is never read back and no lifecycle event fires.
TEST(chaos_drill, classic_drill_unchanged_by_persistence)
{
    const auto r = run_chaos_drill(chaos_config{});
    EXPECT_GT(r.buf1.persisted, 0u);
    EXPECT_EQ(r.buf1.crashes, 0u);
    EXPECT_EQ(r.buf1.revivals, 0u);
    EXPECT_EQ(r.buf1.recovered_records, 0u);
    EXPECT_EQ(r.rx.buffer_failbacks, 0u);
    EXPECT_FALSE(r.recovered2);
    EXPECT_TRUE(r.recording.empty());
}

TEST(chaos_drill, duplication_subscriber_pruned_on_feed_failure)
{
    chaos_config cfg;
    auto tb = make_chaos(cfg);
    EXPECT_EQ(tb->duplication->subscriber_count(wire::experiments::iceberg), 2u);
    tb->net.sim().run();
    // The health listener removed buf1 when its feed went down.
    EXPECT_EQ(tb->duplication->subscriber_count(wire::experiments::iceberg), 1u);
    // And the planner's view of the primary span is down, budget-free.
    EXPECT_FALSE(tb->planner.link_up("wan-primary"));
    EXPECT_EQ(tb->planner.available("wan-primary").bits_per_sec, 0u);
    // The rerouted flow now runs on the backup path.
    ASSERT_NE(tb->planner.flow(tb->flow), nullptr);
    EXPECT_EQ(tb->planner.flow(tb->flow)->path,
              (std::vector<control::link_id>{"daq", "wan-backup"}));
}
