// Integration tests for the status-quo pipeline (Fig. 2): UDP inside the
// DAQ network, tuned TCP across the WAN, TCP relay toward the campus.
#include "scenario/today.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::scenario;
using namespace mmtp::literals;

TEST(today, udp_ingest_counts_daq_bytes)
{
    today_config cfg;
    auto tb = make_today(cfg);
    daq::steady_source src(wire::make_experiment_id(wire::experiments::dune, 0), 5000,
                           10_us, sim_time{0}, 200);
    const auto scheduled = tb->drive_sensor(src);
    tb->net.sim().run();
    EXPECT_EQ(scheduled, 200u * 5000u);
    EXPECT_EQ(tb->dtn1_received_bytes, scheduled);
    EXPECT_EQ(tb->dtn1_received_datagrams, 200u);
}

TEST(today, tcp_wan_transfer_with_relay_to_campus)
{
    today_config cfg;
    cfg.wan_delay = 5_ms;
    auto tb = make_today(cfg);

    // storage listens; campus listens; a relay at storage forwards
    tcp::connection* at_storage = nullptr;
    tb->storage_tcp->listen(today_testbed::storage_port, tb->wan_tcp_config(),
                            [&](tcp::connection& c) { at_storage = &c; });
    tcp::connection* at_campus = nullptr;
    tb->campus_tcp->listen(today_testbed::campus_port, tb->campus_tcp_config(),
                           [&](tcp::connection& c) { at_campus = &c; });

    auto& wan_conn = tb->dtn1_tcp->connect(tb->storage->address(),
                                           today_testbed::storage_port,
                                           tb->wan_tcp_config());
    const std::uint64_t total = 10 * 1000 * 1000;
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += wan_conn.send(total - queued);
    };
    wan_conn.set_on_connected(pump);
    wan_conn.set_on_writable(pump);

    // once the storage connection exists, stitch the relay
    std::unique_ptr<tcp_relay> relay;
    tcp::connection* campus_conn = nullptr;
    tb->net.sim().run_until(sim_time{(50_ms).ns});
    ASSERT_NE(at_storage, nullptr);
    campus_conn = &tb->storage_tcp->connect(tb->campus->address(),
                                            today_testbed::campus_port,
                                            tb->campus_tcp_config());
    relay = std::make_unique<tcp_relay>(*at_storage, *campus_conn);
    tb->net.sim().run();

    ASSERT_NE(at_campus, nullptr);
    EXPECT_EQ(at_storage->delivered_bytes(), total);
    EXPECT_EQ(relay->relayed(), total);
    EXPECT_EQ(at_campus->delivered_bytes(), total);
}

TEST(today, wan_loss_still_reliable_but_slower)
{
    const std::uint64_t total = 4 * 1000 * 1000;
    double clean_secs = 0, lossy_secs = 0;
    for (const double loss : {0.0, 0.01}) {
        today_config cfg;
        cfg.wan_delay = 10_ms;
        cfg.wan_loss = loss;
        auto tb = make_today(cfg);
        tcp::connection* at_storage = nullptr;
        sim_time done = sim_time::never();
        tb->storage_tcp->listen(today_testbed::storage_port, tb->wan_tcp_config(),
                                [&](tcp::connection& c) {
                                    at_storage = &c;
                                    c.set_on_delivered([&](std::uint64_t got) {
                                        if (got >= total && done.is_never())
                                            done = tb->net.sim().now();
                                    });
                                });
        auto& conn = tb->dtn1_tcp->connect(tb->storage->address(),
                                           today_testbed::storage_port,
                                           tb->wan_tcp_config());
        std::uint64_t queued = 0;
        auto pump = [&] {
            if (queued < total) queued += conn.send(total - queued);
        };
        conn.set_on_connected(pump);
        conn.set_on_writable(pump);
        tb->net.sim().run();
        ASSERT_NE(at_storage, nullptr);
        ASSERT_EQ(at_storage->delivered_bytes(), total) << "loss=" << loss;
        ASSERT_FALSE(done.is_never());
        if (loss == 0.0)
            clean_secs = sim_duration{done.ns}.seconds();
        else
            lossy_secs = sim_duration{done.ns}.seconds();
    }
    EXPECT_GT(lossy_secs, clean_secs); // loss costs time end-to-end
}
