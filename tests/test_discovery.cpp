// Tests for the resource-discovery control plane (§6 challenge 1):
// gossip convergence, split horizon, versioned updates, withdrawal,
// holddown expiry and propagation-radius damping.
#include "control/discovery.hpp"
#include "control/policy.hpp"
#include "netsim/engine.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::control;
using namespace mmtp::literals;

namespace {

resource_record buffer_at(wire::ipv4_addr addr, const char* name)
{
    resource_record r;
    r.kind = resource_kind::retransmission_buffer;
    r.addr = addr;
    r.name = name;
    r.capacity_bytes = 1 << 20;
    return r;
}

directory_config cfg_for(const char* domain)
{
    directory_config c;
    c.domain = domain;
    c.gossip_interval = 100_ms;
    c.holddown = 1_s;
    return c;
}

} // namespace

TEST(discovery, two_domains_converge)
{
    netsim::engine eng;
    domain_directory esnet(eng, cfg_for("esnet"));
    domain_directory geant(eng, cfg_for("geant"));
    esnet.publish(buffer_at(0x0a000001, "esnet-buf"));
    geant.publish(buffer_at(0x0b000001, "geant-buf"));
    domain_directory::peer(esnet, geant);

    eng.run_until(sim_time{(1_s).ns});

    const auto esnet_view = esnet.snapshot();
    const auto geant_view = geant.snapshot();
    EXPECT_EQ(esnet_view.records().size(), 2u);
    EXPECT_EQ(geant_view.records().size(), 2u);
    ASSERT_TRUE(esnet_view.find(0x0b000001).has_value());
    EXPECT_EQ(esnet_view.find(0x0b000001)->domain, "geant");
    ASSERT_TRUE(geant_view.find(0x0a000001).has_value());
    EXPECT_EQ(geant_view.find(0x0a000001)->domain, "esnet");
}

TEST(discovery, transitive_propagation_across_chain)
{
    netsim::engine eng;
    domain_directory a(eng, cfg_for("a"));
    domain_directory b(eng, cfg_for("b"));
    domain_directory c(eng, cfg_for("c"));
    a.publish(buffer_at(1, "a-buf"));
    domain_directory::peer(a, b);
    domain_directory::peer(b, c);

    eng.run_until(sim_time{(1_s).ns});
    // c learns a's buffer via b, with the path length incremented twice
    ASSERT_TRUE(c.snapshot().find(1).has_value());
    EXPECT_EQ(c.entries().at(1).path_length, 2);
}

TEST(discovery, radius_damping_limits_propagation)
{
    netsim::engine eng;
    std::vector<std::unique_ptr<domain_directory>> chain;
    for (int i = 0; i < 6; ++i) {
        auto cfg = cfg_for(("d" + std::to_string(i)).c_str());
        cfg.max_path_length = 3;
        chain.push_back(std::make_unique<domain_directory>(eng, cfg));
    }
    chain[0]->publish(buffer_at(1, "far-buf"));
    for (int i = 0; i + 1 < 6; ++i) domain_directory::peer(*chain[i], *chain[i + 1]);

    eng.run_until(sim_time{(3_s).ns});
    // reachable within 3 hops only
    EXPECT_TRUE(chain[1]->snapshot().find(1).has_value());
    EXPECT_TRUE(chain[2]->snapshot().find(1).has_value());
    EXPECT_TRUE(chain[3]->snapshot().find(1).has_value());
    EXPECT_FALSE(chain[5]->snapshot().find(1).has_value());
}

TEST(discovery, withdrawal_propagates)
{
    netsim::engine eng;
    domain_directory a(eng, cfg_for("a"));
    domain_directory b(eng, cfg_for("b"));
    a.publish(buffer_at(1, "a-buf"));
    domain_directory::peer(a, b);
    eng.run_until(sim_time{(500_ms).ns});
    ASSERT_TRUE(b.snapshot().find(1).has_value());

    a.withdraw(1);
    eng.run_until(sim_time{(1500_ms).ns});
    EXPECT_FALSE(b.snapshot().find(1).has_value());
    EXPECT_FALSE(a.snapshot().find(1).has_value());
}

TEST(discovery, version_updates_replace_older_entries)
{
    netsim::engine eng;
    domain_directory a(eng, cfg_for("a"));
    domain_directory b(eng, cfg_for("b"));
    auto r = buffer_at(1, "a-buf");
    r.capacity_bytes = 100;
    a.publish(r);
    domain_directory::peer(a, b);
    eng.run_until(sim_time{(500_ms).ns});
    ASSERT_EQ(b.snapshot().find(1)->capacity_bytes, 100u);

    r.capacity_bytes = 999; // re-publish with new capacity
    a.publish(r);
    eng.run_until(sim_time{(1_s).ns});
    EXPECT_EQ(b.snapshot().find(1)->capacity_bytes, 999u);
}

TEST(discovery, holddown_expires_unrefreshed_entries)
{
    netsim::engine eng;
    auto cfg_a = cfg_for("a");
    domain_directory a(eng, cfg_a);
    auto cfg_b = cfg_for("b");
    cfg_b.holddown = 300_ms; // b expires quickly
    domain_directory b(eng, cfg_b);
    a.publish(buffer_at(1, "a-buf"));
    domain_directory::peer(a, b);
    eng.run_until(sim_time{(500_ms).ns});
    ASSERT_TRUE(b.snapshot().find(1).has_value());

    // a keeps gossiping, so the entry stays refreshed and alive
    eng.run_until(sim_time{(2_s).ns});
    EXPECT_TRUE(b.snapshot().find(1).has_value());
    EXPECT_GT(b.stats().updates_received, 0u);
}

TEST(discovery, learned_callback_and_in_band_adverts)
{
    netsim::engine eng;
    domain_directory a(eng, cfg_for("a"));
    domain_directory b(eng, cfg_for("b"));
    std::vector<wire::ipv4_addr> learned;
    b.set_on_learned([&](const resource_record& r) { learned.push_back(r.addr); });

    wire::buffer_advert_body advert{0x0a000042, 1ull << 30, 5000};
    a.publish_advert(advert);
    domain_directory::peer(a, b);
    eng.run_until(sim_time{(500_ms).ns});

    ASSERT_EQ(learned.size(), 1u);
    EXPECT_EQ(learned[0], 0x0a000042u);
    const auto r = b.snapshot().find(0x0a000042);
    ASSERT_TRUE(r.has_value());
    EXPECT_EQ(r->kind, resource_kind::retransmission_buffer);
    EXPECT_EQ(r->capacity_bytes, 1ull << 30);
    EXPECT_EQ(r->retention.ns, (5_s).ns);
}

TEST(discovery, snapshot_feeds_policy_compiler)
{
    // end-to-end: a buffer learned over gossip is picked as the recovery
    // point by compile_modes when no explicit buffer is given.
    netsim::engine eng;
    domain_directory daq_site(eng, cfg_for("daq-site"));
    domain_directory wan_op(eng, cfg_for("wan-op"));
    wan_op.publish(buffer_at(0x0a000010, "wan-edge-buffer"));
    domain_directory::peer(daq_site, wan_op);
    eng.run_until(sim_time{(500_ms).ns});

    policy_inputs in;
    in.experiment = 6;
    in.segments = {
        {path_segment::kind::daq, 1_us, data_rate::from_gbps(100), false, 0},
        {path_segment::kind::wan, 10_ms, data_rate::from_gbps(100), true, 0x0a000010},
    };
    in.recovery_buffer = 0; // must come from the discovered map
    const auto plan = compile_modes(in, daq_site.snapshot());
    ASSERT_FALSE(plan.transitions.empty());
    EXPECT_EQ(plan.transitions[0].rule.buffer_addr.value_or(0), 0x0a000010u);
}
