// Hierarchical timing wheel unit tests: the wheel must reproduce exactly
// the (at, seq) total order a stable min-heap would give — across level
// cascades, same-instant ties, late pushes behind the prepared tick, and
// re-anchoring after the wheel drains. Plus the engine-level contracts
// built on it: wheel/heap interleave, far-future overflow into the heap,
// and timer cancellation (handles, stats, reaping).
#include "common/timing_wheel.hpp"
#include "netsim/engine.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

using namespace mmtp;
using namespace mmtp::netsim;

namespace {

struct wkey {
    sim_time at;
    std::uint64_t seq;
    bool operator==(const wkey&) const = default;
};

/// Drains the wheel completely, returning keys in pop order.
std::vector<wkey> drain(timing_wheel<wkey>& w)
{
    std::vector<wkey> out;
    while (w.peek() != nullptr) out.push_back(w.pop());
    return out;
}

std::vector<wkey> sorted_copy(std::vector<wkey> v)
{
    std::stable_sort(v.begin(), v.end(), [](const wkey& a, const wkey& b) {
        if (a.at != b.at) return a.at < b.at;
        return a.seq < b.seq;
    });
    return v;
}

} // namespace

// ------------------------------------------------------------ raw wheel

// Entries straddling every level boundary must come back in time order.
// resolution_bits = 0 makes tick == ns, so the windows are exactly
// L0: [0, 256), L1: [0, 65536), L2: [0, 2^24), L3: [0, 2^32).
TEST(timing_wheel, cascade_boundaries_preserve_order)
{
    timing_wheel<wkey> w(0);
    std::uint64_t seq = 0;
    std::vector<wkey> pushed;
    const std::int64_t edges[] = {
        1,
        255,        256,        257,        // L0 -> L1 edge
        65535,      65536,      65537,      // L1 -> L2 edge
        (1 << 24) - 1, 1 << 24, (1 << 24) + 1, // L2 -> L3 edge
        (1ll << 32) - 1,                    // last tick inside the horizon
    };
    // Push in a scrambled order so placement never sees sorted input.
    const int order[] = {7, 0, 10, 3, 5, 1, 9, 2, 8, 4, 6};
    for (int i : order) pushed.push_back({sim_time{edges[i]}, seq++});
    for (const auto& k : pushed) ASSERT_TRUE(w.push(k, sim_time::zero()));

    EXPECT_EQ(drain(w), sorted_copy(pushed));
    EXPECT_TRUE(w.empty());
}

// Same-instant entries must drain in push (seq) order — the FIFO tie
// contract the engine's same-instant guarantee rests on.
TEST(timing_wheel, same_instant_fifo_order)
{
    timing_wheel<wkey> w; // default 1.024 us resolution
    for (std::uint64_t s = 0; s < 100; ++s)
        ASSERT_TRUE(w.push({sim_time{500000}, s}, sim_time::zero()));
    // A few distinct instants inside the same level-0 tick, out of order.
    ASSERT_TRUE(w.push({sim_time{500900}, 100}, sim_time::zero()));
    ASSERT_TRUE(w.push({sim_time{500100}, 101}, sim_time::zero()));

    const auto got = drain(w);
    ASSERT_EQ(got.size(), 102u);
    for (std::uint64_t s = 0; s < 100; ++s) {
        EXPECT_EQ(got[s].at, sim_time{500000});
        EXPECT_EQ(got[s].seq, s);
    }
    EXPECT_EQ(got[100].seq, 101u); // 500100 before 500900
    EXPECT_EQ(got[101].seq, 100u);
}

// A push that lands at or behind the tick peek() has already prepared
// must still surface in exact (at, seq) position, not at the end.
TEST(timing_wheel, late_push_behind_prepared_tick)
{
    timing_wheel<wkey> w(0);
    ASSERT_TRUE(w.push({sim_time{5000}, 0}, sim_time::zero()));
    ASSERT_NE(w.peek(), nullptr); // advances the wheel position to 5000

    ASSERT_TRUE(w.push({sim_time{5000}, 1}, sim_time{5000})); // same-instant, later seq
    ASSERT_TRUE(w.push({sim_time{4000}, 2}, sim_time{5000})); // behind the position

    const auto got = drain(w);
    ASSERT_EQ(got.size(), 3u);
    EXPECT_EQ(got[0].seq, 2u); // 4000 first despite being pushed last
    EXPECT_EQ(got[1].seq, 0u);
    EXPECT_EQ(got[2].seq, 1u);
}

// Beyond-horizon keys are rejected (the engine keeps them in its heap);
// the wheel state must be untouched by the rejection.
TEST(timing_wheel, far_future_rejected_at_horizon)
{
    timing_wheel<wkey> w(0); // horizon = 2^32 ticks of 1 ns
    EXPECT_FALSE(w.push({sim_time{1ll << 32}, 0}, sim_time::zero()));
    EXPECT_TRUE(w.empty());

    ASSERT_TRUE(w.push({sim_time{(1ll << 32) - 1}, 1}, sim_time::zero()));
    EXPECT_FALSE(w.push({sim_time{1ll << 33}, 2}, sim_time::zero()));
    EXPECT_EQ(w.size(), 1u);
    const auto got = drain(w);
    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].seq, 1u);
}

// A drained wheel re-anchors at the caller's `now`, so the full horizon
// is available again no matter how far simulated time has advanced.
TEST(timing_wheel, reanchors_after_drain)
{
    timing_wheel<wkey> w(0);
    ASSERT_TRUE(w.push({sim_time{10}, 0}, sim_time::zero()));
    drain(w);

    const std::int64_t far = 1ll << 40; // way past the original horizon
    ASSERT_TRUE(w.push({sim_time{far + 100}, 1}, sim_time{far}));
    ASSERT_TRUE(w.push({sim_time{far + (1ll << 31)}, 2}, sim_time{far}));
    EXPECT_FALSE(w.push({sim_time{far + (1ll << 33)}, 3}, sim_time{far}));

    const auto got = drain(w);
    ASSERT_EQ(got.size(), 2u);
    EXPECT_EQ(got[0].seq, 1u);
    EXPECT_EQ(got[1].seq, 2u);
}

// Randomized order check against a stable-sort reference: thousands of
// keys over a span crossing several cascade windows, pushed out of order.
TEST(timing_wheel, randomized_matches_stable_sort_reference)
{
    timing_wheel<wkey> w(0);
    std::mt19937_64 rng(20260807);
    // Heavy tie mass (coarse grid) + a spread across three levels.
    std::uniform_int_distribution<std::int64_t> coarse(0, 99);
    std::uniform_int_distribution<std::int64_t> spread(0, (1 << 20) - 1);

    std::vector<wkey> pushed;
    for (std::uint64_t s = 0; s < 5000; ++s) {
        const std::int64_t at =
            (s % 3 == 0) ? coarse(rng) * 1000 : spread(rng);
        pushed.push_back({sim_time{at}, s});
    }
    for (const auto& k : pushed) ASSERT_TRUE(w.push(k, sim_time::zero()));

    EXPECT_EQ(drain(w), sorted_copy(pushed));
}

// Incremental operation: interleave pushes with pops (push `now` follows
// the last popped time, as the engine does) and verify global order.
TEST(timing_wheel, interleaved_push_pop_keeps_order)
{
    timing_wheel<wkey> w; // default resolution
    std::mt19937_64 rng(7);
    std::uniform_int_distribution<std::int64_t> ahead(1, 5'000'000);

    std::uint64_t seq = 0;
    sim_time now = sim_time::zero();
    for (int i = 0; i < 50; ++i) ASSERT_TRUE(w.push({now + sim_duration{ahead(rng)}, seq++}, now));

    sim_time last = sim_time::zero();
    std::uint64_t popped = 0, pushed = 50;
    while (w.peek() != nullptr) {
        const wkey k = w.pop();
        popped++;
        EXPECT_GE(k.at, last) << "pop went back in time";
        last = k.at;
        now = k.at;
        if (pushed < 3000) {
            // Future work spawned from a firing timer, as the engine does.
            ASSERT_TRUE(w.push({now + sim_duration{ahead(rng)}, seq++}, now));
            pushed++;
            if (pushed % 3 == 0) {
                ASSERT_TRUE(w.push({now + sim_duration{ahead(rng) / 64}, seq++}, now));
                pushed++;
            }
        }
    }
    EXPECT_EQ(popped, pushed);
}

// ------------------------------------------------- engine integration

// Wheel-routed classes (timer/protocol/control) and heap classes
// (generic) scheduled for identical instants must fire in global
// insertion order — the engine merges both structures on (at, seq).
TEST(engine_wheel, wheel_and_heap_interleave_in_insertion_order)
{
    engine e;
    std::vector<int> order;
    int tag = 0;
    for (int i = 0; i < 40; ++i) {
        const sim_duration at{1000 + (i % 5) * 3000};
        const auto cls = (i % 2 == 0) ? task_class::timer : task_class::generic;
        const int t = tag++;
        e.schedule_in(at, cls, [&order, t] { order.push_back(t); });
    }
    e.run();

    ASSERT_EQ(order.size(), 40u);
    // Reference: stable sort of (time, insertion index).
    std::vector<int> expect(40);
    for (int i = 0; i < 40; ++i) expect[static_cast<std::size_t>(i)] = i;
    std::stable_sort(expect.begin(), expect.end(),
                     [](int a, int b) { return (a % 5) < (b % 5); });
    EXPECT_EQ(order, expect);
}

// Timer-class events beyond the wheel horizon (~73 min) silently stay on
// the heap and still fire at the right time, after nearer wheel timers.
TEST(engine_wheel, far_future_timer_falls_back_to_heap)
{
    engine e;
    std::vector<int> order;
    const sim_duration two_hours{2ll * 3600 * 1000000000};
    e.schedule_in(two_hours, task_class::timer, [&] { order.push_back(1); });
    e.schedule_in(sim_duration{5000}, task_class::timer, [&] { order.push_back(0); });
    const auto executed = e.run();

    EXPECT_EQ(executed, 2u);
    EXPECT_EQ(order, (std::vector<int>{0, 1}));
    EXPECT_EQ(e.now(), sim_time{} + two_hours);
}

// ------------------------------------------------------- cancellation

TEST(engine_cancel, cancelled_timer_never_fires_and_is_counted)
{
    engine e;
    int fired = 0;
    auto h = e.schedule_cancellable_in(sim_duration{1000}, task_class::timer,
                                       [&] { fired++; });
    EXPECT_TRUE(h.active());
    EXPECT_TRUE(e.cancel(h));
    EXPECT_FALSE(h.active()); // cancel() deactivates the handle
    EXPECT_FALSE(e.cancel(h)); // double cancel is a no-op

    const auto executed = e.run();
    EXPECT_EQ(fired, 0);
    EXPECT_EQ(executed, 0u); // reaped, not executed
    EXPECT_EQ(e.profile().timers_cancelled, 1u);
}

TEST(engine_cancel, stale_handle_after_fire_is_noop)
{
    engine e;
    int fired = 0;
    auto h = e.schedule_cancellable_in(sim_duration{1000}, task_class::timer,
                                       [&] { fired++; });
    e.run();
    EXPECT_EQ(fired, 1);
    EXPECT_FALSE(e.cancel(h)); // slot already recycled; gen mismatch
    EXPECT_EQ(e.profile().timers_cancelled, 0u);

    // The recycled slot must not be cancellable through the old handle
    // even when a new timer occupies it.
    int fired2 = 0;
    auto h2 = e.schedule_cancellable_in(sim_duration{1000}, task_class::timer,
                                        [&] { fired2++; });
    EXPECT_FALSE(e.cancel(h));
    e.run();
    EXPECT_EQ(fired2, 1);
    (void)h2;
}

TEST(engine_cancel, self_cancel_inside_callback_is_noop)
{
    engine e;
    int fired = 0;
    engine::timer_handle h;
    h = e.schedule_cancellable_in(sim_duration{1000}, task_class::timer, [&] {
        fired++;
        EXPECT_FALSE(e.cancel(h)); // mid-fire: nothing to drop
    });
    e.run();
    EXPECT_EQ(fired, 1);
    EXPECT_EQ(e.profile().timers_cancelled, 0u);
}

// run_until() must not count a cancelled front timer as pending work: the
// dead key is reaped while probing for the next event time.
TEST(engine_cancel, run_until_skips_cancelled_front_timer)
{
    engine e;
    int fired = 0;
    auto front = e.schedule_cancellable_in(sim_duration{1000}, task_class::timer,
                                           [&] { fired += 100; });
    e.schedule_in(sim_duration{2000}, task_class::generic, [&] { fired += 1; });
    EXPECT_TRUE(e.cancel(front));

    const auto first = e.run_until(sim_time{1500});
    EXPECT_EQ(first, 0u); // nothing live before 1500
    const auto second = e.run_until(sim_time{2500});
    EXPECT_EQ(second, 1u);
    EXPECT_EQ(fired, 1);
    EXPECT_TRUE(e.empty());
    EXPECT_EQ(e.profile().timers_cancelled, 1u);
}

// Cancel + reschedule chains (the RTO/pacing supersede pattern) must
// stay leak-free in slots: every cancelled slot is reused.
TEST(engine_cancel, supersede_chain_reuses_slots)
{
    engine e;
    int fired = 0;
    engine::timer_handle pending{};
    for (int i = 0; i < 1000; ++i) {
        e.cancel(pending);
        pending = e.schedule_cancellable_in(sim_duration{10000 + i},
                                            task_class::timer, [&] { fired++; });
    }
    e.run();
    EXPECT_EQ(fired, 1); // only the last survivor fires
    EXPECT_EQ(e.profile().timers_cancelled, 999u);
    EXPECT_EQ(e.profile().executed, 1u);
}
