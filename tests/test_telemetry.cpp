// Tests for the observability layer: the packet flight recorder
// (common/trace.hpp), the metrics registry (telemetry/metrics.hpp),
// engine profiling, the measurement trackers' edge cases, and the
// end-to-end hop timeline the chaos drill extracts.
#include "common/trace.hpp"
#include "netsim/engine.hpp"
#include "scenario/chaos.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::trace;

// ------------------------------------------------------- flight recorder

TEST(flight_recorder, emits_and_reads_back_in_order)
{
    flight_recorder rec(64);
    const auto s = rec.site("link-a");
    rec.emit(100, s, hop::link_enqueue, 7, 1500, reason::none);
    rec.emit(200, s, hop::link_dequeue, 7, 1500, reason::none);

    const auto evs = rec.events();
    ASSERT_EQ(evs.size(), 2u);
    EXPECT_EQ(evs[0].at_ns, 100);
    EXPECT_EQ(evs[0].kind, hop::link_enqueue);
    EXPECT_EQ(evs[1].at_ns, 200);
    EXPECT_EQ(rec.site_name(evs[0].site), "link-a");
    EXPECT_EQ(rec.emitted(), 2u);
    EXPECT_EQ(rec.overwritten(), 0u);
}

TEST(flight_recorder, ring_overwrites_oldest)
{
    flight_recorder rec(4); // power of two, tiny
    for (std::int64_t i = 0; i < 10; ++i)
        rec.emit(i, 0, hop::link_enqueue, static_cast<std::uint64_t>(i), 0, reason::none);
    const auto evs = rec.events();
    ASSERT_EQ(evs.size(), 4u);
    EXPECT_EQ(evs.front().at_ns, 6); // oldest surviving
    EXPECT_EQ(evs.back().at_ns, 9);
    EXPECT_EQ(rec.emitted(), 10u);
    EXPECT_EQ(rec.overwritten(), 6u);
}

TEST(flight_recorder, site_interning_is_idempotent)
{
    flight_recorder rec;
    const auto a = rec.site("x");
    EXPECT_EQ(rec.site("x"), a);
    EXPECT_NE(rec.site("y"), a);
    EXPECT_EQ(rec.site_name(0), "?");
}

TEST(flight_recorder, packet_events_filters_by_id)
{
    flight_recorder rec;
    rec.emit(1, 0, hop::link_enqueue, 5, 0, reason::none);
    rec.emit(2, 0, hop::link_enqueue, 6, 0, reason::none);
    rec.emit(3, 0, hop::link_dequeue, 5, 0, reason::none);
    EXPECT_EQ(rec.packet_events(5).size(), 2u);
    EXPECT_EQ(rec.packet_events(6).size(), 1u);
}

TEST(flight_recorder, message_timeline_chases_bindings)
{
    flight_recorder rec;
    // pkt 10 gets sequence 42, is cloned as pkt 11; pkt 30 is an
    // unrelated packet; a retransmission binds pkt 20 to sequence 42.
    rec.emit(1, 0, hop::sw_seq_insert, 10, 42, reason::none);
    rec.emit(2, 0, hop::sw_clone, 11, 10, reason::none);
    rec.emit(3, 0, hop::link_enqueue, 11, 0, reason::none);
    rec.emit(4, 0, hop::link_enqueue, 30, 0, reason::none);
    rec.emit(5, 0, hop::mmtp_nak, 0, pack_range(40, 5), reason::none);
    rec.emit(6, 0, hop::mmtp_nak, 0, pack_range(50, 5), reason::none); // not covering 42
    rec.emit(7, 0, hop::mmtp_failover, 0, 99, reason::none);
    rec.emit(8, 0, hop::mmtp_retransmit, 20, 42, reason::none);
    rec.emit(9, 0, hop::mmtp_deliver, 20, 42, reason::none);

    const auto tl = rec.message_timeline(42);
    ASSERT_EQ(tl.size(), 7u); // everything except pkt 30 and the 50..55 NAK
    for (const auto& r : tl) EXPECT_NE(r.packet_id, 30u);
    bool has_nak_covering = false, has_failover = false, has_clone = false;
    for (const auto& r : tl) {
        if (r.kind == hop::mmtp_nak) {
            has_nak_covering = true;
            EXPECT_EQ(range_start(r.arg), 40u);
        }
        if (r.kind == hop::mmtp_failover) has_failover = true;
        if (r.kind == hop::sw_clone) has_clone = true;
    }
    EXPECT_TRUE(has_nak_covering);
    EXPECT_TRUE(has_failover);
    EXPECT_TRUE(has_clone);
}

TEST(flight_recorder, traversed_checks_site_and_time)
{
    flight_recorder rec;
    const auto backup = rec.site("backup");
    const auto primary = rec.site("primary");
    rec.emit(1, 0, hop::sw_seq_insert, 10, 7, reason::none);
    rec.emit(2, primary, hop::link_enqueue, 10, 0, reason::none);
    rec.emit(50, backup, hop::link_enqueue, 10, 0, reason::none);

    EXPECT_TRUE(rec.traversed(7, backup));
    EXPECT_TRUE(rec.traversed(7, backup, 50));
    EXPECT_FALSE(rec.traversed(7, backup, 51)); // only before the cutoff
    EXPECT_TRUE(rec.traversed(7, primary));
    EXPECT_FALSE(rec.traversed(8, backup)); // unknown sequence
}

TEST(flight_recorder, scoped_recorder_installs_and_uninstalls)
{
#if !MMTP_TRACING
    GTEST_SKIP() << "tracing compiled out (-DMMTP_DISABLE_TRACING=ON)";
#endif
    EXPECT_FALSE(trace::active());
    {
        flight_recorder rec;
        scoped_recorder in(rec);
        EXPECT_TRUE(trace::active());
        trace::emit(sim_time{5}, 0, hop::link_enqueue, 1);
        EXPECT_EQ(rec.emitted(), 1u);
    }
    EXPECT_FALSE(trace::active());
    // With no recorder installed, emit is a no-op, not a crash.
    trace::emit(sim_time{6}, 0, hop::link_enqueue, 2);
}

TEST(flight_recorder, format_timeline_renders_names_and_ranges)
{
    flight_recorder rec;
    const auto s = rec.site("wan");
    rec.emit(1000, s, hop::link_drop, 3, 64, reason::queue_full);
    rec.emit(2000, 0, hop::mmtp_nak, 0, pack_range(10, 4), reason::none);
    const auto text = rec.format_timeline(rec.events());
    EXPECT_NE(text.find("wan"), std::string::npos);
    EXPECT_NE(text.find("link_drop"), std::string::npos);
    EXPECT_NE(text.find("reason=queue_full"), std::string::npos);
    EXPECT_NE(text.find("seq=[10,+4)"), std::string::npos);
}

// ------------------------------------------------------ metrics registry

TEST(metrics_registry, counters_gauges_histograms_and_probes)
{
    telemetry::metrics_registry reg;
    reg.get_counter("events", {{"kind", "drop"}}).inc(3);
    reg.get_counter("events", {{"kind", "drop"}}).inc(); // same instrument
    reg.get_gauge("depth").set(-7);
    reg.get_histogram("lat_us").record(100);
    reg.get_histogram("lat_us").record(200);
    std::uint64_t source = 41;
    reg.add_probe("probe_val", {}, [&source] { return source; });
    source = 42; // probes sample at snapshot time

    const auto rows = reg.snapshot();
    auto find = [&](const std::string& m, const std::string& f) -> std::int64_t {
        for (const auto& r : rows)
            if (r.metric == m && r.field == f) return r.value;
        ADD_FAILURE() << "missing row " << m << "/" << f;
        return -1;
    };
    EXPECT_EQ(find("events{kind=drop}", "value"), 4);
    EXPECT_EQ(find("depth", "value"), -7);
    EXPECT_EQ(find("lat_us", "count"), 2);
    EXPECT_EQ(find("lat_us", "min"), 100);
    EXPECT_EQ(find("lat_us", "max"), 200);
    EXPECT_EQ(find("probe_val", "value"), 42);
}

TEST(metrics_registry, csv_is_sorted_and_deterministic)
{
    telemetry::metrics_registry reg;
    reg.get_counter("zeta").inc();
    reg.get_counter("alpha").inc(2);
    reg.get_gauge("mid").set(5);
    const auto csv = reg.to_csv();
    EXPECT_EQ(csv, reg.to_csv()); // stable across repeated snapshots
    const auto a = csv.find("alpha");
    const auto m = csv.find("mid");
    const auto z = csv.find("zeta");
    EXPECT_LT(a, m);
    EXPECT_LT(m, z);
    EXPECT_EQ(csv.substr(0, 18), "metric,field,value");
}

TEST(metrics_registry, json_groups_fields_per_metric)
{
    telemetry::metrics_registry reg;
    reg.get_counter("c").inc(7);
    reg.get_histogram("h").record(10);
    const auto json = reg.to_json();
    EXPECT_NE(json.find("\"c\":{\"value\":7}"), std::string::npos);
    EXPECT_NE(json.find("\"h\":{"), std::string::npos);
    EXPECT_NE(json.find("\"count\":1"), std::string::npos);
    EXPECT_EQ(json.front(), '{');
    EXPECT_EQ(json.back(), '}');
}

TEST(metrics_registry, empty_registry_renders_empty_snapshot)
{
    telemetry::metrics_registry reg;
    EXPECT_EQ(reg.to_csv(), "metric,field,value\n");
    EXPECT_EQ(reg.to_json(), "{}");
}

// ----------------------------------------------------- engine profiling

TEST(engine_profile, counts_events_by_class)
{
    netsim::engine e;
    e.schedule_at(sim_time{10}, [] {});                                // generic
    e.schedule_at(sim_time{20}, netsim::task_class::timer, [] {});     // tagged
    e.schedule_in(sim_duration{30}, netsim::task_class::protocol, [] {});
    e.schedule_in(sim_duration{40}, netsim::task_class::protocol, [] {});
    e.run();

    const auto& prof = e.profile();
    EXPECT_EQ(prof.executed, 4u);
    auto count = [&](netsim::task_class tc) {
        return prof.executed_by_class[static_cast<std::size_t>(tc)];
    };
    EXPECT_EQ(count(netsim::task_class::generic), 1u);
    EXPECT_EQ(count(netsim::task_class::timer), 1u);
    EXPECT_EQ(count(netsim::task_class::protocol), 2u);
    EXPECT_EQ(count(netsim::task_class::link_tx), 0u);
    EXPECT_GE(prof.wall_seconds, 0.0);
}

TEST(engine_profile, task_class_names_are_stable)
{
    EXPECT_STREQ(netsim::task_class_name(netsim::task_class::generic), "generic");
    EXPECT_STREQ(netsim::task_class_name(netsim::task_class::link_arrival),
                 "link_arrival");
    EXPECT_STREQ(netsim::task_class_name(netsim::task_class::control), "control");
}

// ------------------------------------------------- tracker edge cases

// Regression: a source timestamp *ahead of* the arrival clock used to be
// recorded as a 0 µs sample, silently dragging every percentile down.
TEST(message_latency_tracker, negative_latency_counted_not_recorded)
{
    netsim::engine e;
    e.schedule_at(sim_time{1000000}, [] {});
    e.run(); // now = 1 ms
    telemetry::message_latency_tracker t(e);

    t.on_arrival(500000);  // 0.5 ms old — normal
    t.on_arrival(2000000); // from the future
    t.on_arrival(1000000); // exactly now: legitimate 0 µs sample

    EXPECT_EQ(t.latency_us().count(), 2u);
    EXPECT_EQ(t.negative_latency(), 1u);
    EXPECT_EQ(t.latency_us().percentile(100), 500u);
}

// Regression: a cumulative counter that regresses (component restart,
// out-of-order reporting) used to rewind delivered() — and could
// un-complete a finished transfer.
TEST(transfer_tracker, regressing_cumulative_counter_is_guarded)
{
    netsim::engine e;
    telemetry::transfer_tracker t(e, 1000);
    t.on_delivered(600);
    t.on_delivered(400); // regression
    EXPECT_EQ(t.delivered(), 600u);
    EXPECT_EQ(t.regressions(), 1u);
    EXPECT_FALSE(t.complete());

    t.on_delivered(1000);
    EXPECT_TRUE(t.complete());
    t.on_delivered(0); // restart after completion must not un-complete
    EXPECT_TRUE(t.complete());
    EXPECT_EQ(t.delivered(), 1000u);
    EXPECT_EQ(t.regressions(), 2u);
}

TEST(recovery_tracker, gives_up_at_deadline_when_health_never_returns)
{
    netsim::engine e;
    telemetry::recovery_tracker t(e, sim_duration{1000});
    t.arm(sim_time{0}, [] { return false; }, sim_time{10000});
    e.run();

    EXPECT_FALSE(t.recovered());
    EXPECT_TRUE(t.gave_up());
    EXPECT_FALSE(t.time_to_recover().has_value());
    // Probes at 1000, 2000, ..., 10000: the next one would overshoot.
    EXPECT_EQ(t.probes(), 10u);
}

TEST(recovery_tracker, recovery_before_deadline_does_not_give_up)
{
    netsim::engine e;
    bool healthy = false;
    e.schedule_at(sim_time{3500}, [&healthy] { healthy = true; });
    telemetry::recovery_tracker t(e, sim_duration{1000});
    t.arm(sim_time{0}, [&healthy] { return healthy; }, sim_time{10000});
    e.run();

    EXPECT_TRUE(t.recovered());
    EXPECT_FALSE(t.gave_up());
    ASSERT_TRUE(t.time_to_recover().has_value());
    EXPECT_EQ(t.time_to_recover()->ns, 4000);
}

// ------------------------------------------- end-to-end: chaos timeline

TEST(chaos_trace, failed_over_message_timeline_crosses_backup_span)
{
#if !MMTP_TRACING
    GTEST_SKIP() << "tracing compiled out (-DMMTP_DISABLE_TRACING=ON)";
#endif
    scenario::chaos_config cfg;
    cfg.messages = 400; // smaller drill, same story
    const auto r = scenario::run_chaos_drill(cfg);

    ASSERT_NE(r.traced_sequence, std::uint64_t(-1));
    EXPECT_TRUE(r.traversed_backup);
    EXPECT_NE(r.hop_timeline.find("seq_insert"), std::string::npos);
    EXPECT_NE(r.hop_timeline.find("failover"), std::string::npos);
    EXPECT_NE(r.hop_timeline.find("retransmit"), std::string::npos);
    EXPECT_NE(r.hop_timeline.find("deliver"), std::string::npos);
    EXPECT_NE(r.hop_timeline.find("wan-backup"), std::string::npos);
    EXPECT_FALSE(r.metrics_csv.empty());

    const auto r2 = scenario::run_chaos_drill(cfg);
    EXPECT_EQ(r.hop_timeline, r2.hop_timeline);
    EXPECT_EQ(r.metrics_csv, r2.metrics_csv);
}

TEST(chaos_trace, tracing_disabled_yields_no_timeline_and_same_outcome)
{
    scenario::chaos_config cfg;
    cfg.messages = 400;
    cfg.trace = false;
    const auto r = scenario::run_chaos_drill(cfg);
    EXPECT_EQ(r.traced_sequence, std::uint64_t(-1));
    EXPECT_TRUE(r.hop_timeline.empty());
    EXPECT_TRUE(r.recovered);
    EXPECT_FALSE(r.metrics_csv.empty()); // metrics don't need the tracer

    scenario::chaos_config cfg2;
    cfg2.messages = 400;
    const auto traced = scenario::run_chaos_drill(cfg2);
    // Observability must not perturb the simulation itself.
    EXPECT_EQ(r.csv, traced.csv);
}
