// Overload-control tests (ctest label `overload`).
//
// Three layers of the PR-4 overload loop are pinned down here:
//   - priority_queue_disc band-full accounting: the identities between
//     would_accept()'s prediction and the dropped/dropped_bytes counters,
//     and the conservation law enqueued = dequeued + live depth;
//   - deadline-aware shedding: who yields (the entry strictly closest to
//     its deadline), who never does (control, no-deadline traffic, ties),
//     and how sheds are counted and observed;
//   - the overload drill itself: 2× sustained offered load must produce a
//     bounded deadline-miss rate, zero recovery give-ups, O(watermark
//     crossings) backpressure signals, a fully recovered AIMD pace, and
//     byte-identical same-seed telemetry.
#include "netsim/queue.hpp"
#include "pnet/stages.hpp"
#include "scenario/overload.hpp"
#include "wire/build.hpp"

#include <gtest/gtest.h>

#include <limits>

using namespace mmtp;
using namespace mmtp::netsim;

namespace {

packet make_pkt(std::uint64_t id, std::uint64_t size)
{
    packet p;
    p.id = id;
    p.virtual_payload = size;
    return p;
}

// Test slack function: the packet id *is* its deadline slack. Capture-less
// (priority_queue_disc::slack_fn is a plain function pointer).
std::int64_t id_slack(const packet& p)
{
    return static_cast<std::int64_t>(p.id);
}

unsigned band_zero(const packet&)
{
    return 0;
}

packet mmtp_packet(const wire::header& h, std::uint64_t payload = 1000)
{
    packet p;
    p.headers = wire::build_mmtp_over_ipv4(0x02, 0x0a000001, 0x0a000002, h, payload);
    p.virtual_payload = payload;
    p.id = 1;
    return p;
}

} // namespace

// ---------------------------------------------- band-full accounting

TEST(priority_queue_overload, tail_drop_accounting_matches_would_accept)
{
    // Without a slack function the queue is a plain tail-dropper, so
    // would_accept() is an exact oracle: replay a mixed workload and
    // demand the dropped/dropped_bytes counters equal the prediction.
    priority_queue_disc q(2, 1000,
                          [](const packet& p) { return static_cast<unsigned>(p.id % 2); });
    std::uint64_t predicted_drops = 0, predicted_drop_bytes = 0, offered = 0;
    std::uint64_t dequeued = 0;
    for (std::uint64_t i = 0; i < 64; ++i) {
        const std::uint64_t size = 100 + (i * 37) % 301;
        packet p = make_pkt(i, size);
        const bool fits = q.would_accept(p);
        const bool ok = q.enqueue(std::move(p));
        EXPECT_EQ(ok, fits) << "packet " << i;
        offered++;
        if (!ok) {
            predicted_drops++;
            predicted_drop_bytes += size;
        }
        if (i % 5 == 4) { // drain a little so both outcomes keep occurring
            packet out;
            if (q.dequeue_into(out)) dequeued++;
        }
    }
    EXPECT_GT(predicted_drops, 0u);
    EXPECT_LT(predicted_drops, offered);

    const auto& st = q.stats();
    EXPECT_EQ(st.dropped, predicted_drops);
    EXPECT_EQ(st.dropped_bytes, predicted_drop_bytes);
    EXPECT_EQ(st.enqueued, offered - predicted_drops);
    EXPECT_EQ(st.shed, 0u); // no slack function: never sheds
    // Conservation: everything accepted is either delivered or still live.
    EXPECT_EQ(st.enqueued, st.dequeued + q.packet_depth());
    // Per-band counters partition the totals.
    EXPECT_EQ(q.band_dropped(0) + q.band_dropped(1), st.dropped);
    EXPECT_EQ(q.band_dropped_bytes(0) + q.band_dropped_bytes(1), st.dropped_bytes);
    EXPECT_EQ(q.band_depth_bytes(0) + q.band_depth_bytes(1), q.byte_depth());

    // Drain to empty: dequeues + live depth still balances.
    packet out;
    while (q.dequeue_into(out)) dequeued++;
    EXPECT_EQ(q.stats().dequeued, dequeued);
    EXPECT_EQ(q.stats().enqueued, dequeued);
    EXPECT_EQ(q.byte_depth(), 0u);
    EXPECT_EQ(q.packet_depth(), 0u);
}

// ---------------------------------------------- deadline-aware shedding

TEST(priority_queue_overload, sheds_entry_closest_to_deadline_for_roomier_newcomer)
{
    priority_queue_disc q(1, 1200, band_zero, id_slack);
    ASSERT_TRUE(q.enqueue(make_pkt(5, 400)));
    ASSERT_TRUE(q.enqueue(make_pkt(1, 400))); // closest to its deadline
    ASSERT_TRUE(q.enqueue(make_pkt(9, 400)));

    // Band full; a newcomer with more slack evicts the slack-1 entry.
    // would_accept() stays conservative — it predicts the tail-drop path
    // and does not promise a shed.
    packet newcomer = make_pkt(7, 400);
    EXPECT_FALSE(q.would_accept(newcomer));
    EXPECT_TRUE(q.enqueue(std::move(newcomer)));

    EXPECT_EQ(q.stats().shed, 1u);
    EXPECT_EQ(q.stats().shed_bytes, 400u);
    EXPECT_EQ(q.band_shed(0), 1u);
    EXPECT_EQ(q.band_shed_bytes(0), 400u);
    EXPECT_EQ(q.stats().dropped, 0u);
    EXPECT_EQ(q.packet_depth(), 3u); // tombstone not counted

    // FIFO order among survivors; the tombstone is skipped silently.
    EXPECT_EQ(q.dequeue()->id, 5u);
    EXPECT_EQ(q.dequeue()->id, 9u);
    EXPECT_EQ(q.dequeue()->id, 7u);
    EXPECT_FALSE(q.dequeue().has_value());
    EXPECT_EQ(q.stats().dequeued, 3u);
}

TEST(priority_queue_overload, ties_and_lower_slack_tail_drop_the_newcomer)
{
    priority_queue_disc q(1, 1200, band_zero, id_slack);
    ASSERT_TRUE(q.enqueue(make_pkt(5, 400)));
    ASSERT_TRUE(q.enqueue(make_pkt(6, 400)));
    ASSERT_TRUE(q.enqueue(make_pkt(7, 400)));

    // Equal slack: nobody is *strictly* closer to a deadline, so the
    // newcomer tail-drops (no churn of equivalent packets).
    EXPECT_FALSE(q.enqueue(make_pkt(5, 400)));
    // Lower slack than everything queued: certainly no victim.
    EXPECT_FALSE(q.enqueue(make_pkt(2, 400)));

    EXPECT_EQ(q.stats().shed, 0u);
    EXPECT_EQ(q.stats().dropped, 2u);
    EXPECT_EQ(q.stats().dropped_bytes, 800u);
    EXPECT_EQ(q.packet_depth(), 3u);
}

TEST(priority_queue_overload, sheds_repeatedly_until_newcomer_fits)
{
    priority_queue_disc q(1, 1000, band_zero, id_slack);
    ASSERT_TRUE(q.enqueue(make_pkt(1, 300)));
    ASSERT_TRUE(q.enqueue(make_pkt(2, 300)));
    ASSERT_TRUE(q.enqueue(make_pkt(3, 300)));

    std::vector<std::uint64_t> shed_ids;
    q.set_shed_observer([&](const packet& p, unsigned band) {
        shed_ids.push_back(p.id);
        EXPECT_EQ(band, 0u);
    });

    // 600 bytes need two evictions: the two lowest-slack entries go, in
    // deadline order.
    EXPECT_TRUE(q.enqueue(make_pkt(10, 600)));
    EXPECT_EQ(shed_ids, (std::vector<std::uint64_t>{1, 2}));
    EXPECT_EQ(q.stats().shed, 2u);
    EXPECT_EQ(q.stats().shed_bytes, 600u);
    EXPECT_EQ(q.packet_depth(), 2u);
    EXPECT_EQ(q.dequeue()->id, 3u);
    EXPECT_EQ(q.dequeue()->id, 10u);
}

TEST(priority_queue_overload, no_deadline_entries_are_never_shed)
{
    // INT64_MAX slack marks no-deadline traffic (control, bulk): a full
    // band of it refuses any newcomer, deadline or not.
    priority_queue_disc q(1, 800, band_zero, id_slack);
    constexpr auto never = std::numeric_limits<std::int64_t>::max();
    ASSERT_TRUE(q.enqueue(make_pkt(static_cast<std::uint64_t>(never), 400)));
    ASSERT_TRUE(q.enqueue(make_pkt(static_cast<std::uint64_t>(never), 400)));

    EXPECT_FALSE(q.enqueue(make_pkt(100, 400)));                              // deadline
    EXPECT_FALSE(q.enqueue(make_pkt(static_cast<std::uint64_t>(never), 400))); // tie
    EXPECT_EQ(q.stats().shed, 0u);
    EXPECT_EQ(q.stats().dropped, 2u);
}

// ------------------------------------------- MMTP slack classification

TEST(timeliness_slack, classifies_mmtp_headers)
{
    constexpr auto never = std::numeric_limits<std::int64_t>::max();

    // Timeliness header: slack = deadline - age.
    wire::header timed;
    timed.experiment = wire::make_experiment_id(6, 0);
    timed.m.set(wire::feature::timeliness);
    wire::timeliness_field t;
    t.deadline_us = 5000;
    t.age_us = 1200;
    timed.timeliness = t;
    EXPECT_EQ(pnet::timeliness_slack_of(mmtp_packet(timed)), 3800);

    // Already past its deadline: negative slack, first in line to shed.
    t.age_us = 6000;
    timed.timeliness = t;
    EXPECT_EQ(pnet::timeliness_slack_of(mmtp_packet(timed)), -1000);

    // Control is never shed, whatever its nominal deadline.
    wire::header ctrl = timed;
    ctrl.m.set(wire::feature::control);
    ctrl.control = wire::control_type::nak;
    EXPECT_EQ(pnet::timeliness_slack_of(mmtp_packet(ctrl)), never);

    // No timeliness extension: no deadline to miss.
    wire::header plain;
    plain.experiment = wire::make_experiment_id(6, 0);
    EXPECT_EQ(pnet::timeliness_slack_of(mmtp_packet(plain)), never);

    // Non-MMTP bytes: opaque, never shed.
    packet opaque;
    opaque.virtual_payload = 100;
    EXPECT_EQ(pnet::timeliness_slack_of(opaque), never);
}

// -------------------------------------------------- the overload drill

TEST(overload_drill, bounded_misses_zero_giveups_and_aimd_recovery)
{
    const scenario::overload_config cfg;
    const auto r = scenario::run_overload_drill(cfg);

    // Nothing was abandoned: every message was delivered exactly once
    // (originals or buf-recovered copies) and the tracker saw the stream
    // become whole within its deadline.
    EXPECT_EQ(r.rx.given_up, 0u);
    EXPECT_EQ(r.rx.datagrams, r.messages_sent);
    EXPECT_EQ(r.rx.duplicates, 0u);
    EXPECT_GT(r.rx.recovered, 0u); // the overload really caused loss
    ASSERT_TRUE(r.recovered);
    EXPECT_GT(r.time_to_recover.ns, 0);
    EXPECT_LT(r.time_to_recover.ns, cfg.probe_deadline.ns);

    // Deadline misses are the drill's headline number: bounded (the
    // documented R3 bound is < 80% at 2× overload; unbounded queues
    // would converge on 100%) and dominated by sheds the policy chose.
    EXPECT_GT(r.band0_shed, 0u);
    EXPECT_GT(r.missed_deadline, 0u);
    EXPECT_LT(r.miss_ppm, 800000u);

    // Backpressure volume is O(watermark crossings + escalations), not
    // O(packets): thousands of datagrams crossed an engaged switch but
    // only a handful of signals left it.
    EXPECT_GT(r.bp_engagements, 0u);
    EXPECT_EQ(r.bp_signals, r.bp_engagements + r.bp_escalations);
    EXPECT_LE(r.bp_signals, 64u);
    EXPECT_GT(r.bp_suppressed, r.bp_signals * 100);

    // AIMD: the pace was cut (floor or not), stepped back up, and ended
    // the run at the configured rate.
    EXPECT_GT(r.tx.bp_decreases, 0u);
    EXPECT_GT(r.tx.bp_recovery_steps, 0u);
    EXPECT_GT(r.tx.bp_recoveries, 0u);
    EXPECT_GT(r.tx.suppressed_ns, 0u);
    EXPECT_TRUE(r.pace_recovered);
    EXPECT_EQ(r.final_pace_bps, cfg.pace.bits_per_sec);

    // Storage watermarks gated the planner: the mid-overload flow was
    // deferred, then admitted once retention decay released the pressure.
    EXPECT_GT(r.pressure_engagements, 0u);
    EXPECT_EQ(r.pressure_releases, r.pressure_engagements);
    EXPECT_TRUE(r.second_flow_deferred);
    EXPECT_TRUE(r.second_flow_admitted);
    EXPECT_GT(r.second_flow_admitted_at.ns, cfg.second_flow_at.ns);
    EXPECT_EQ(r.planner.admissions_deferred, r.planner.deferred_admitted);
}

TEST(overload_drill, same_seed_runs_emit_byte_identical_telemetry)
{
    const auto a = scenario::run_overload_drill(scenario::overload_config{});
    const auto b = scenario::run_overload_drill(scenario::overload_config{});
    ASSERT_FALSE(a.csv.empty());
    EXPECT_EQ(a.csv, b.csv);
    ASSERT_FALSE(a.metrics_csv.empty());
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
    // The traced shed→NAK→recovery story replays byte for byte too.
    EXPECT_EQ(a.traced_sequence, b.traced_sequence);
    EXPECT_EQ(a.hop_timeline, b.hop_timeline);
}

TEST(overload_drill, retransmissions_ride_bulk_band_and_are_never_shed)
{
    const auto r = scenario::run_overload_drill(scenario::overload_config{});
    // buf's recovered copies cross the same WAN in band 1 (no deadline,
    // no shedding) — repairs must not lose a second race. Band 1 sheds
    // would mean the mode rule leaked timeliness onto retransmissions.
    EXPECT_GT(r.buf.retransmitted, 0u);
    EXPECT_EQ(r.wan_queue.shed, r.band0_shed); // every shed was band 0
    // Paced repair kept the recovery burst from re-overloading the WAN:
    // the queue actually built up and drained at the configured pace.
    EXPECT_GT(r.buf.retransmit_queue_peak, 0u);
}
