// Unit tests for src/wire: the MMTP header codec (including an exhaustive
// parameterized sweep over every feature combination), control bodies,
// the L2/L3 codecs and the header-stack builders.
#include "common/bytes.hpp"
#include "common/rng.hpp"
#include "wire/build.hpp"
#include "wire/control.hpp"
#include "wire/header.hpp"
#include "wire/ids.hpp"
#include "wire/lower.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::wire;

namespace {

/// Builds a fully-populated header for a given feature mask.
header make_header(std::uint32_t cfg_data)
{
    header h;
    h.m.cfg_id = 0;
    h.m.cfg_data = cfg_data;
    h.experiment = make_experiment_id(experiments::dune, 7);
    if (h.m.has(feature::sequencing)) h.sequencing = sequencing_field{0x123456789abull, 3};
    if (h.m.has(feature::retransmission))
        h.retransmission = retransmission_field{0x0a000102};
    if (h.m.has(feature::timeliness)) {
        timeliness_field t;
        t.deadline_us = 5000;
        t.age_us = 1200;
        t.flags = timeliness_flag_bit(timeliness_flag::aged);
        t.notify_addr = 0x0a000103;
        h.timeliness = t;
    }
    if (h.m.has(feature::pacing)) h.pacing = pacing_field{40000};
    if (h.m.has(feature::control)) h.control = control_type::nak;
    if (h.m.has(feature::timestamped)) h.timestamp_ns = 0xdeadbeefcafe1234ull;
    return h;
}

} // namespace

// Exhaustive round-trip over all 2^9 feature combinations.
class header_roundtrip : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(header_roundtrip, serialize_parse_identity)
{
    const auto h = make_header(GetParam());
    ASSERT_TRUE(h.consistent());

    byte_writer w;
    ASSERT_TRUE(serialize(h, w));
    EXPECT_EQ(w.size(), h.wire_size());
    EXPECT_EQ(w.size(), header_size_for(h.m));

    const auto parsed = parse(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->m, h.m);
    EXPECT_EQ(parsed->experiment, h.experiment);
    EXPECT_EQ(parsed->sequencing.has_value(), h.sequencing.has_value());
    if (h.sequencing) {
        EXPECT_EQ(parsed->sequencing->sequence, h.sequencing->sequence);
        EXPECT_EQ(parsed->sequencing->epoch, h.sequencing->epoch);
    }
    if (h.retransmission) {
        EXPECT_EQ(parsed->retransmission->buffer_addr, h.retransmission->buffer_addr);
    }
    if (h.timeliness) {
        EXPECT_EQ(parsed->timeliness->deadline_us, h.timeliness->deadline_us);
        EXPECT_EQ(parsed->timeliness->age_us, h.timeliness->age_us);
        EXPECT_EQ(parsed->timeliness->flags, h.timeliness->flags);
        EXPECT_EQ(parsed->timeliness->notify_addr, h.timeliness->notify_addr);
    }
    if (h.pacing) {
        EXPECT_EQ(parsed->pacing->pace_mbps, h.pacing->pace_mbps);
    }
    if (h.control) {
        EXPECT_EQ(*parsed->control, *h.control);
    }
    if (h.timestamp_ns) {
        EXPECT_EQ(*parsed->timestamp_ns, *h.timestamp_ns);
    }
}

TEST_P(header_roundtrip, truncation_always_rejected)
{
    const auto h = make_header(GetParam());
    byte_writer w;
    ASSERT_TRUE(serialize(h, w));
    const auto bytes = w.view();
    for (std::size_t cut = 0; cut < bytes.size(); ++cut) {
        EXPECT_FALSE(parse(bytes.first(cut)).has_value()) << "cut=" << cut;
    }
}

INSTANTIATE_TEST_SUITE_P(all_feature_combinations, header_roundtrip,
                         ::testing::Range(0u, 512u));

TEST(header, nonzero_cfg_id_is_policy_epoch)
{
    // cfg_id carries the control plane's policy epoch; every epoch uses the
    // cfg-0 layout, so any value must parse and round-trip unchanged.
    auto h = make_header(0x17); // a few feature bits, to exercise extensions
    byte_writer w;
    ASSERT_TRUE(serialize(h, w));
    auto bytes = std::vector<std::uint8_t>(w.view().begin(), w.view().end());
    for (std::uint32_t epoch : {1u, 7u, 255u}) {
        bytes[0] = static_cast<std::uint8_t>(epoch);
        const auto parsed = parse(bytes);
        ASSERT_TRUE(parsed.has_value()) << "epoch=" << epoch;
        EXPECT_EQ(parsed->m.cfg_id, epoch);
        EXPECT_EQ(parsed->m.cfg_data, h.m.cfg_data);
    }
}

TEST(header, reserved_feature_bits_rejected)
{
    byte_writer w;
    w.u8(0);
    w.u24(known_feature_mask + 1); // a reserved bit
    w.u32(0);
    EXPECT_FALSE(parse(w.view()).has_value());
}

TEST(header, inconsistent_header_not_serialized)
{
    header h;
    h.m.set(feature::sequencing); // bit set but field missing
    byte_writer w;
    EXPECT_FALSE(serialize(h, w));
    EXPECT_EQ(w.size(), 0u);

    header h2; // field present but bit missing
    h2.sequencing = sequencing_field{1, 0};
    EXPECT_FALSE(serialize(h2, w));
}

TEST(header, parse_core_ignores_extensions)
{
    const auto h = make_header(known_feature_mask);
    byte_writer w;
    ASSERT_TRUE(serialize(h, w));
    const auto core = parse_core(w.view());
    ASSERT_TRUE(core.has_value());
    EXPECT_EQ(core->m, h.m);
    EXPECT_EQ(core->experiment, h.experiment);
}

TEST(header, mode_to_string)
{
    mode m;
    m.set(feature::sequencing).set(feature::timeliness);
    EXPECT_EQ(to_string(m), "cfg0[seq,time]");
    EXPECT_EQ(to_string(mode{}), "cfg0[]");
}

TEST(header, pilot_modes_have_expected_features)
{
    EXPECT_EQ(modes::identification.cfg_data, 0u);
    EXPECT_TRUE(modes::wan_reliable.has(feature::sequencing));
    EXPECT_TRUE(modes::wan_reliable.has(feature::retransmission));
    EXPECT_TRUE(modes::wan_reliable.has(feature::timeliness));
    EXPECT_FALSE(modes::wan_reliable.has(feature::control));
    EXPECT_TRUE(modes::destination_check.has(feature::timeliness));
    EXPECT_FALSE(modes::destination_check.has(feature::retransmission));
}

// ------------------------------------------------------------------- ids

TEST(ids, experiment_slice_packing)
{
    const auto id = make_experiment_id(experiments::dune, 0xabc);
    EXPECT_EQ(experiment_of(id), experiments::dune);
    EXPECT_EQ(slice_of(id), 0xabcu);
    // slice overflow is masked
    const auto id2 = make_experiment_id(3, 0x1fff);
    EXPECT_EQ(slice_of(id2), 0xfffu);
    EXPECT_EQ(experiment_of(id2), 3u);
}

// --------------------------------------------------------------- control

TEST(control, nak_roundtrip)
{
    nak_body b;
    b.epoch = 42;
    b.requester = 0x0a0a0a0a;
    b.ranges = {{5, 9}, {100, 100}, {1ull << 40, (1ull << 40) + 3}};
    byte_writer w;
    serialize(b, w);
    const auto parsed = parse_nak(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
}

TEST(control, nak_range_cap)
{
    nak_body b;
    for (std::uint64_t i = 0; i < 30; ++i) b.ranges.push_back({i * 10, i * 10 + 1});
    byte_writer w;
    serialize(b, w);
    const auto parsed = parse_nak(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->ranges.size(), max_nak_ranges);
}

TEST(control, nak_rejects_inverted_range)
{
    byte_writer w;
    w.u16(0);
    w.u32(0);
    w.u8(1);
    w.u48(10);
    w.u48(5); // last < first
    EXPECT_FALSE(parse_nak(w.view()).has_value());
}

TEST(control, backpressure_roundtrip)
{
    backpressure_body b{200, 0x0a000105, 12345};
    byte_writer w;
    serialize(b, w);
    const auto parsed = parse_backpressure(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
}

TEST(control, deadline_exceeded_roundtrip)
{
    deadline_exceeded_body b{0xabcdef, 3, 15000, 10000, 0x0a0001ff};
    byte_writer w;
    serialize(b, w);
    const auto parsed = parse_deadline_exceeded(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
}

TEST(control, buffer_advert_roundtrip)
{
    buffer_advert_body b{0x0a000102, 1ull << 33, 5000, 0x0a000103};
    byte_writer w;
    serialize(b, w);
    const auto parsed = parse_buffer_advert(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
}

TEST(control, stream_flush_roundtrip)
{
    stream_flush_body b{make_experiment_id(2, 5), 3, 0x1234567890ull};
    byte_writer w;
    serialize(b, w);
    const auto parsed = parse_stream_flush(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
    EXPECT_FALSE(parse_stream_flush(w.view().first(w.size() - 1)).has_value());
}

TEST(control, subscribe_roundtrip)
{
    subscribe_body b{make_experiment_id(5, 1), 0x0a00010a};
    byte_writer w;
    serialize(b, w);
    const auto parsed = parse_subscribe(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, b);
}

TEST(control, truncated_bodies_rejected)
{
    nak_body b;
    b.ranges = {{1, 2}};
    byte_writer w;
    serialize(b, w);
    EXPECT_FALSE(parse_nak(w.view().first(w.size() - 1)).has_value());

    backpressure_body bp;
    byte_writer w2;
    serialize(bp, w2);
    EXPECT_FALSE(parse_backpressure(w2.view().first(w2.size() - 1)).has_value());
}

// ----------------------------------------------------------------- lower

TEST(lower, eth_roundtrip)
{
    eth_header h{0x0000aabbccddeeffull & 0xffffffffffffull, 0x020000000001ull,
                 ethertype_mmtp};
    byte_writer w;
    serialize(h, w);
    EXPECT_EQ(w.size(), eth_header_size);
    byte_reader r(w.view());
    const auto parsed = parse_eth(r);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, h);
}

TEST(lower, ipv4_roundtrip)
{
    ipv4_header h;
    h.dscp = 0x2e;
    h.total_length = 1500;
    h.ttl = 17;
    h.protocol = ipproto_mmtp;
    h.src = 0x0a000001;
    h.dst = 0x0a000002;
    byte_writer w;
    serialize(h, w);
    EXPECT_EQ(w.size(), ipv4_header_size);
    byte_reader r(w.view());
    const auto parsed = parse_ipv4(r);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, h);
}

TEST(lower, udp_roundtrip)
{
    udp_header h{4000, 7000, 512};
    byte_writer w;
    serialize(h, w);
    EXPECT_EQ(w.size(), udp_header_size);
    byte_reader r(w.view());
    const auto parsed = parse_udp(r);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, h);
}

TEST(lower, addr_string_roundtrip)
{
    const ipv4_addr a = 0x0a016322; // 10.1.99.34
    EXPECT_EQ(addr_to_string(a), "10.1.99.34");
    const auto back = addr_from_string("10.1.99.34");
    ASSERT_TRUE(back.has_value());
    EXPECT_EQ(*back, a);
    EXPECT_FALSE(addr_from_string("10.1.99").has_value());
    EXPECT_FALSE(addr_from_string("300.1.1.1").has_value());
    EXPECT_FALSE(addr_from_string("1.2.3.4x").has_value());
}

// ----------------------------------------------------------------- build

TEST(build, mmtp_over_ipv4_stack_parses_back)
{
    header h;
    h.m.set(feature::timestamped);
    h.experiment = make_experiment_id(experiments::iceberg, 0);
    h.timestamp_ns = 12345;
    const auto bytes = build_mmtp_over_ipv4(0x02, 0x0a000001, 0x0a000002, h, 100);

    byte_reader r(bytes);
    const auto eth = parse_eth(r);
    ASSERT_TRUE(eth.has_value());
    EXPECT_EQ(eth->ethertype, ethertype_ipv4);
    const auto ip = parse_ipv4(r);
    ASSERT_TRUE(ip.has_value());
    EXPECT_EQ(ip->protocol, ipproto_mmtp);
    EXPECT_EQ(ip->src, 0x0a000001u);
    EXPECT_EQ(ip->dst, 0x0a000002u);
    EXPECT_EQ(ip->total_length, ipv4_header_size + h.wire_size() + 100);
    const auto parsed =
        parse(std::span<const std::uint8_t>(bytes).subspan(r.position()));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed->timestamp_ns, 12345u);
}

TEST(build, mmtp_over_l2_stack_parses_back)
{
    header h;
    h.experiment = make_experiment_id(experiments::mu2e, 2);
    const auto bytes = build_mmtp_over_l2(0x02, 0x03, h);
    byte_reader r(bytes);
    const auto eth = parse_eth(r);
    ASSERT_TRUE(eth.has_value());
    EXPECT_EQ(eth->ethertype, ethertype_mmtp);
    const auto parsed =
        parse(std::span<const std::uint8_t>(bytes).subspan(r.position()));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->experiment, h.experiment);
}
