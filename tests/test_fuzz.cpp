// Robustness ("fuzz-lite") tests: every parser in the system must either
// reject arbitrary bytes or produce a value that re-serializes to a
// canonical form — never crash, never read out of bounds, never loop.
// Deterministic random inputs keep the suite reproducible.
#include "common/rng.hpp"
#include "daq/archive.hpp"
#include "daq/message.hpp"
#include "daq/wib.hpp"
#include "mmtp/stack.hpp"
#include "netsim/network.hpp"
#include "tcp/segment.hpp"
#include "wire/control.hpp"
#include "wire/header.hpp"
#include "wire/lower.hpp"

#include <gtest/gtest.h>

using namespace mmtp;

namespace {

std::vector<std::uint8_t> random_bytes(rng& r, std::size_t max_len)
{
    std::vector<std::uint8_t> out(r.uniform_int(0, max_len));
    for (auto& b : out) b = static_cast<std::uint8_t>(r.next());
    return out;
}

} // namespace

class fuzz_seeds : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(fuzz_seeds, mmtp_header_parser_total_and_idempotent)
{
    rng r(GetParam());
    for (int i = 0; i < 2000; ++i) {
        const auto bytes = random_bytes(r, 80);
        const auto h = wire::parse(bytes);
        if (!h) continue;
        // anything accepted must be internally consistent and
        // round-trip to an identical parse
        EXPECT_TRUE(h->consistent());
        byte_writer w;
        ASSERT_TRUE(serialize(*h, w));
        const auto again = wire::parse(w.view());
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(again->m, h->m);
        EXPECT_EQ(again->experiment, h->experiment);
    }
}

TEST_P(fuzz_seeds, control_body_parsers_total)
{
    rng r(GetParam() + 1);
    for (int i = 0; i < 2000; ++i) {
        const auto bytes = random_bytes(r, 64);
        // none of these may crash or loop; results are optional
        (void)wire::parse_nak(bytes);
        (void)wire::parse_backpressure(bytes);
        (void)wire::parse_deadline_exceeded(bytes);
        (void)wire::parse_buffer_advert(bytes);
        (void)wire::parse_subscribe(bytes);
    }
    SUCCEED();
}

TEST_P(fuzz_seeds, lower_layer_parsers_total)
{
    rng r(GetParam() + 2);
    for (int i = 0; i < 2000; ++i) {
        const auto bytes = random_bytes(r, 64);
        byte_reader br(bytes);
        if (auto eth = wire::parse_eth(br)) {
            byte_reader br2(bytes);
            (void)wire::parse_eth(br2);
            (void)wire::parse_ipv4(br2);
        }
        byte_reader br3(bytes);
        (void)wire::parse_udp(br3);
    }
    SUCCEED();
}

TEST_P(fuzz_seeds, tcp_segment_parser_total_and_idempotent)
{
    rng r(GetParam() + 3);
    for (int i = 0; i < 2000; ++i) {
        const auto bytes = random_bytes(r, 120);
        const auto seg = tcp::segment_header::parse(bytes);
        if (!seg) continue;
        byte_writer w;
        seg->serialize(w);
        const auto again = tcp::segment_header::parse(w.view());
        ASSERT_TRUE(again.has_value());
        EXPECT_EQ(*again, *seg);
    }
}

TEST_P(fuzz_seeds, wib_frame_parser_rejects_random_bytes)
{
    rng r(GetParam() + 4);
    int accepted = 0;
    for (int i = 0; i < 500; ++i) {
        std::vector<std::uint8_t> bytes(daq::wib_frame_bytes);
        for (auto& b : bytes) b = static_cast<std::uint8_t>(r.next());
        if (daq::wib_frame::parse(bytes)) accepted++;
    }
    // a random 532-byte blob passing a CRC32C check is a ~2^-32 event
    EXPECT_EQ(accepted, 0);
}

TEST_P(fuzz_seeds, daq_header_parser_total)
{
    rng r(GetParam() + 5);
    for (int i = 0; i < 2000; ++i) {
        const auto bytes = random_bytes(r, 48);
        (void)daq::daq_header::parse(bytes);
    }
    SUCCEED();
}

TEST_P(fuzz_seeds, archive_reader_rejects_random_blobs)
{
    rng r(GetParam() + 6);
    for (int i = 0; i < 200; ++i) {
        auto blob = random_bytes(r, 512);
        EXPECT_FALSE(daq::archive_reader::open(std::move(blob)).has_value());
    }
}

TEST_P(fuzz_seeds, archive_reader_survives_bit_flips_of_valid_blob)
{
    rng r(GetParam() + 7);
    daq::archive_writer w;
    const auto exp = wire::make_experiment_id(1, 0);
    for (std::uint64_t i = 0; i < 40; ++i) {
        daq::archived_record rec;
        rec.sequence = i;
        rec.payload = random_bytes(r, 64);
        rec.size_bytes = static_cast<std::uint32_t>(rec.payload.size());
        w.append(exp, std::move(rec));
    }
    const auto blob = w.finalize();
    for (int i = 0; i < 300; ++i) {
        auto mutated = blob;
        const auto pos = r.uniform_int(0, mutated.size() - 1);
        mutated[pos] ^= static_cast<std::uint8_t>(1u << r.uniform_int(0, 7));
        // must either reject, or open with data that still parses
        auto reader = daq::archive_reader::open(std::move(mutated));
        if (reader) {
            // the flip landed in dead space or an attribute; reading must
            // still be safe
            for (const auto id : reader->dataset_ids()) (void)reader->read_all(id);
        }
    }
    SUCCEED();
}

TEST_P(fuzz_seeds, stack_counts_corrupted_control_payloads)
{
    // Truncated/corrupted control bodies dispatched through a real stack
    // must be dropped *and accounted* (stack_stats::control_parse_errors),
    // never crash, and never invoke a typed handler. The oracle is the
    // standalone parser: the stack must agree with it payload for payload.
    rng r(GetParam() + 8);
    netsim::network net(GetParam() + 800);
    auto& a = net.add_host("a");
    auto& b = net.add_host("b");
    net.connect(a, b, {});
    net.compute_routes();
    core::stack sa(a, net.ids());
    core::stack sb(b, net.ids());

    std::uint64_t handled = 0;
    sb.set_nak_handler(
        [&](const wire::nak_body&, wire::experiment_id, wire::ipv4_addr) { handled++; });
    sb.add_backpressure_handler([&](const wire::backpressure_body&) { handled++; });
    sb.set_deadline_handler([&](const wire::deadline_exceeded_body&) { handled++; });
    sb.set_flush_handler([&](const wire::stream_flush_body&) { handled++; });
    sb.set_advert_handler([&](const wire::buffer_advert_body&) { handled++; });

    // A valid specimen of each body, so truncation/bit-flips start from
    // bytes the parser would otherwise accept.
    auto specimen = [&](wire::control_type t) {
        byte_writer w;
        switch (t) {
        case wire::control_type::nak: {
            wire::nak_body nak;
            nak.requester = a.address();
            nak.ranges = {{3, 9}, {20, 21}};
            serialize(nak, w);
            break;
        }
        case wire::control_type::backpressure: {
            wire::backpressure_body bp;
            bp.level = 200;
            bp.origin = a.address();
            serialize(bp, w);
            break;
        }
        case wire::control_type::deadline_exceeded: {
            wire::deadline_exceeded_body d;
            d.sequence = 42;
            serialize(d, w);
            break;
        }
        case wire::control_type::stream_flush: {
            wire::stream_flush_body f;
            f.next_sequence = 77;
            serialize(f, w);
            break;
        }
        default: {
            wire::buffer_advert_body ad;
            ad.buffer_addr = b.address();
            serialize(ad, w);
            break;
        }
        }
        return w.take();
    };
    auto parses = [](wire::control_type t, std::span<const std::uint8_t> bytes) {
        switch (t) {
        case wire::control_type::nak: return wire::parse_nak(bytes).has_value();
        case wire::control_type::backpressure:
            return wire::parse_backpressure(bytes).has_value();
        case wire::control_type::deadline_exceeded:
            return wire::parse_deadline_exceeded(bytes).has_value();
        case wire::control_type::stream_flush:
            return wire::parse_stream_flush(bytes).has_value();
        default: return wire::parse_buffer_advert(bytes).has_value();
        }
    };

    constexpr wire::control_type types[] = {
        wire::control_type::nak,           wire::control_type::backpressure,
        wire::control_type::deadline_exceeded, wire::control_type::stream_flush,
        wire::control_type::buffer_advert,
    };
    std::uint64_t sent = 0, expect_ok = 0, expect_bad = 0;
    for (int i = 0; i < 400; ++i) {
        const auto type = types[r.uniform_int(0, std::size(types) - 1)];
        auto payload = specimen(type);
        switch (r.uniform_int(0, 2)) {
        case 0: // truncate (possibly to empty)
            payload.resize(r.uniform_int(0, payload.size() - 1));
            break;
        case 1: { // bit-flip a byte
            if (!payload.empty()) {
                const auto pos = r.uniform_int(0, payload.size() - 1);
                payload[pos] ^= static_cast<std::uint8_t>(1u << r.uniform_int(0, 7));
            }
            break;
        }
        default: // replace with arbitrary bytes
            payload = random_bytes(r, 48);
            break;
        }
        (parses(type, payload) ? expect_ok : expect_bad)++;
        sa.send_control(b.address(), 7, type, std::move(payload));
        sent++;
    }
    net.sim().run();

    EXPECT_EQ(sb.stats().control_in, sent);
    EXPECT_EQ(sb.stats().control_parse_errors, expect_bad);
    EXPECT_EQ(handled, expect_ok);
    EXPECT_GT(expect_bad, 0u); // the corpus actually exercised the drop path
}

INSTANTIATE_TEST_SUITE_P(seeds, fuzz_seeds, ::testing::Values(1u, 2u, 3u, 4u, 5u));
