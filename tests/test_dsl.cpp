// The declarative scenario format fails closed: every malformed input
// yields a line-anchored diagnostic (never a crash, never a partially
// applied spec), typed values carry unit suffixes, render/parse is a
// fixed point, and the seeded campaign generator is deterministic.
#include "scenario/campaign.hpp"
#include "scenario/registry.hpp"

#include <gtest/gtest.h>
#include <set>
#include <string>

using namespace mmtp;
using namespace mmtp::scenario;

// ------------------------------------------------------- happy-path parses

TEST(dsl_parse, minimal_scenario_takes_topology_defaults)
{
    const auto out = parse_scenario("[scenario]\ntopology = chaos\n");
    ASSERT_TRUE(out) << out.error.to_string();
    EXPECT_EQ(out.spec->topology, "chaos");
    EXPECT_FALSE(out.spec->lossy);
    EXPECT_EQ(out.spec->seed(), chaos_config{}.seed);
    EXPECT_EQ(out.spec->chaos.messages, chaos_config{}.messages);
}

TEST(dsl_parse, typed_values_carry_unit_suffixes)
{
    const auto out = parse_scenario(R"([scenario]
name = unit-check
topology = chaos
seed = 1234
link_burst = 8

[traffic]
messages = 700
message_bytes = 4096
message_interval = 4us

[links]
wan_rate = 10gbps
wan_delay = 2ms
wan_queue = 512kib

[faults]
burst_ber = 0.0025
)");
    ASSERT_TRUE(out) << out.error.to_string();
    const auto& c = out.spec->chaos;
    EXPECT_EQ(out.spec->name, "unit-check");
    EXPECT_EQ(out.spec->seed(), 1234u);
    EXPECT_EQ(out.spec->link_burst(), 8u);
    EXPECT_EQ(c.messages, 700u);
    EXPECT_EQ(c.message_bytes, 4096u);
    EXPECT_EQ(c.message_interval.ns, 4'000);
    EXPECT_EQ(c.wan_rate.bits_per_sec, 10'000'000'000ull);
    EXPECT_EQ(c.wan_delay.ns, 2'000'000);
    EXPECT_EQ(c.wan_queue_bytes, 512u * 1024u);
    EXPECT_NEAR(c.burst_ber, 0.0025, 1e-12);
}

TEST(dsl_parse, scenario_keys_apply_regardless_of_order)
{
    // seed/link_burst are staged and applied after the topology's
    // bindings exist, so they may precede the topology key.
    const auto out = parse_scenario(
        "[scenario]\nseed = 77\nlink_burst = 4\ntopology = overload\n");
    ASSERT_TRUE(out) << out.error.to_string();
    EXPECT_EQ(out.spec->seed(), 77u);
    EXPECT_EQ(out.spec->link_burst(), 4u);
}

TEST(dsl_parse, comments_blank_lines_and_crlf_are_tolerated)
{
    const auto out = parse_scenario(
        "# header comment\r\n\r\n[scenario]\r\ntopology = pilot # trailing\r\n"
        "\r\n[traffic]\r\nrecords = 42\r\n");
    ASSERT_TRUE(out) << out.error.to_string();
    EXPECT_EQ(out.spec->pilot.records, 42u);
}

TEST(dsl_parse, soak_experiment_mix_syntax)
{
    const auto out = parse_scenario(R"([scenario]
topology = soak

[experiments]
cms = on
dune = off
ecce = 250
mu2e = 300 @ 150us
rubin = off
)");
    ASSERT_TRUE(out) << out.error.to_string();
    const auto& c = out.spec->soak;
    EXPECT_EQ(c.experiment_mask, 0b01101u);
    EXPECT_EQ(c.experiment_messages[2], 250u);
    EXPECT_EQ(c.experiment_messages[3], 300u);
    EXPECT_EQ(c.experiment_interval[3].ns, 150'000);
}

// ------------------------------------------ line-anchored fail-closed errors

namespace {

/// Asserts text fails to parse with the given 1-based line (0 = whole
/// file) and a diagnostic containing `needle`.
void expect_error(const std::string& text, unsigned line, const std::string& needle)
{
    const auto out = parse_scenario(text);
    ASSERT_FALSE(out) << "accepted malformed input:\n" << text;
    EXPECT_EQ(out.error.line, line) << out.error.to_string();
    EXPECT_NE(out.error.message.find(needle), std::string::npos)
        << out.error.to_string();
}

} // namespace

TEST(dsl_errors, truncated_file_missing_topology)
{
    expect_error("[scenario]\nname = cut-short\n", 0, "topology");
}

TEST(dsl_errors, truncated_file_missing_scenario_section)
{
    expect_error("", 0, "missing [scenario] section");
    expect_error("# only a comment\n", 0, "missing [scenario] section");
}

TEST(dsl_errors, truncated_mid_section_header)
{
    expect_error("[scenario]\ntopology = chaos\n[tra", 3, "unclosed");
}

TEST(dsl_errors, unknown_key_names_its_line)
{
    expect_error("[scenario]\ntopology = pilot\n\n[traffic]\nrecords = 5\nbogus = 1\n",
                 6, "unknown key 'bogus'");
    expect_error("[scenario]\ntopology = pilot\nbogus = 1\n", 3,
                 "unknown key 'bogus' in [scenario]");
}

TEST(dsl_errors, out_of_range_values)
{
    expect_error("[scenario]\ntopology = chaos\nlink_burst = 99\n", 3,
                 "link_burst must be in [1, ");
    expect_error("[scenario]\ntopology = pilot\n[links]\nwan_loss = 1.5\n", 4,
                 "expected a fraction in [0, 1]");
    expect_error("[scenario]\ntopology = chaos\n[traffic]\nmessages = 0\n", 4,
                 "out of range");
    expect_error(
        "[scenario]\ntopology = chaos\n[traffic]\nmessages = 99999999999999999999\n",
        4, "");
}

TEST(dsl_errors, duplicate_section_names_its_line)
{
    expect_error("[scenario]\ntopology = chaos\n[traffic]\nmessages = 5\n[traffic]\n",
                 5, "duplicate section [traffic]");
}

TEST(dsl_errors, duplicate_key_names_its_line)
{
    expect_error("[scenario]\ntopology = chaos\n[traffic]\nmessages = 5\nmessages = 6\n",
                 5, "duplicate key 'messages'");
}

TEST(dsl_errors, unknown_topology_lists_known_ones)
{
    expect_error("[scenario]\ntopology = banana\n", 2, "unknown topology 'banana'");
}

TEST(dsl_errors, section_unknown_for_topology)
{
    // pilot has no [faults]; the same section is legal under chaos.
    expect_error("[scenario]\ntopology = pilot\n[faults]\n", 3,
                 "unknown section [faults] for topology 'pilot'");
    EXPECT_TRUE(parse_scenario("[scenario]\ntopology = chaos\n[faults]\n"));
}

TEST(dsl_errors, section_before_topology_declared)
{
    expect_error("[scenario]\n[traffic]\ntopology = chaos\n", 2,
                 "declares the topology");
}

TEST(dsl_errors, key_outside_any_section)
{
    expect_error("topology = chaos\n", 1, "outside any section");
}

TEST(dsl_errors, malformed_values)
{
    expect_error("[scenario]\ntopology = chaos\n[traffic]\nmessage_interval = 4\n",
                 4, "expected a duration");
    expect_error("[scenario]\ntopology = chaos\n[traffic]\nmessage_interval = 4parsecs\n",
                 4, "unknown duration unit 'parsecs'");
    expect_error("[scenario]\ntopology = chaos\n[links]\nwan_rate = fast\n", 4,
                 "expected a rate");
    expect_error("[scenario]\ntopology = chaos\n[persistence]\npersist = maybe\n",
                 4, "expected a boolean");
    expect_error("[scenario]\ntopology = chaos\n[traffic]\nmessages =\n", 4,
                 "missing value for 'messages'");
    expect_error("[scenario]\ntopology = chaos\n[traffic]\njust some words\n", 4,
                 "expected 'key = value'");
}

TEST(dsl_errors, control_bytes_rejected)
{
    std::string text = "[scenario]\ntopology = chaos\nname = a";
    text.push_back('\0');
    text += "b\n";
    expect_error(text, 3, "control byte");
}

// ------------------------------------------------- render/parse round trip

TEST(dsl_render, render_parse_is_a_fixed_point_for_every_topology)
{
    for (const auto& topo : registry::names()) {
        scenario_spec spec;
        spec.topology = topo;
        spec.name = topo + "-roundtrip";
        spec.lossy = topo == "today";
        const std::string first = render_scenario(spec);
        const auto parsed = parse_scenario(first);
        ASSERT_TRUE(parsed) << topo << ": " << parsed.error.to_string();
        EXPECT_EQ(parsed.spec->topology, topo);
        EXPECT_EQ(parsed.spec->seed(), spec.seed());
        EXPECT_EQ(parsed.spec->link_burst(), spec.link_burst());
        EXPECT_EQ(render_scenario(*parsed.spec), first)
            << topo << ": render -> parse -> render drifted";
    }
}

// ------------------------------------------------------ campaign generator

TEST(dsl_generate, same_seed_same_scenario)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        const auto a = campaign::generate(seed);
        const auto b = campaign::generate(seed);
        EXPECT_EQ(render_scenario(a), render_scenario(b)) << "seed " << seed;
    }
}

TEST(dsl_generate, generated_scenarios_survive_the_round_trip)
{
    for (std::uint64_t seed = 1; seed <= 32; ++seed) {
        const auto spec = campaign::generate(seed);
        const std::string text = render_scenario(spec);
        const auto parsed = parse_scenario(text);
        ASSERT_TRUE(parsed) << "seed " << seed << ": " << parsed.error.to_string()
                            << "\n" << text;
        EXPECT_EQ(render_scenario(*parsed.spec), text) << "seed " << seed;
    }
}

TEST(dsl_generate, covers_every_topology)
{
    std::set<std::string> seen;
    for (std::uint64_t seed = 1; seed <= 200; ++seed)
        seen.insert(campaign::generate(seed).topology);
    for (const auto& topo : registry::names())
        EXPECT_TRUE(seen.count(topo)) << topo << " never generated";
}

// ----------------------------------------------------------- malformed fuzz

TEST(dsl_fuzz, byte_flips_never_crash_the_parser)
{
    const std::string base = render_scenario(campaign::generate(9));
    ASSERT_FALSE(base.empty());
    const unsigned char masks[] = {0x01, 0x20, 0x80};
    for (std::size_t i = 0; i < base.size(); ++i) {
        for (const unsigned char m : masks) {
            std::string mutated = base;
            mutated[i] = static_cast<char>(mutated[i] ^ m);
            // Must return an outcome (ok or diagnostic) — never crash,
            // never loop. A surviving parse must still name a topology.
            const auto out = parse_scenario(mutated);
            if (out) {
                EXPECT_TRUE(registry::known(out.spec->topology));
            }
        }
    }
}

TEST(dsl_fuzz, every_prefix_truncation_parses_or_fails_cleanly)
{
    const std::string base = render_scenario(campaign::generate(9));
    for (std::size_t len = 0; len <= base.size(); ++len) {
        const auto out = parse_scenario(base.substr(0, len));
        if (!out) {
            EXPECT_FALSE(out.error.message.empty());
        }
    }
}

TEST(dsl_fuzz, binary_garbage_is_rejected_not_crashed)
{
    std::string junk;
    std::uint64_t x = 0x243f6a8885a308d3ull; // deterministic junk stream
    for (int i = 0; i < 4096; ++i) {
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        junk.push_back(static_cast<char>(x & 0xff));
    }
    const auto out = parse_scenario(junk);
    EXPECT_FALSE(out);
    EXPECT_FALSE(out.error.message.empty());
}
