// Unit tests for src/netsim: engine ordering, link timing/loss, queue
// disciplines, host demux and network routing.
#include "netsim/engine.hpp"
#include "netsim/host.hpp"
#include "netsim/link.hpp"
#include "netsim/network.hpp"
#include "netsim/queue.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::netsim;
using namespace mmtp::literals;

// ----------------------------------------------------------------- engine

TEST(engine, executes_in_time_order)
{
    engine e;
    std::vector<int> order;
    e.schedule_at(sim_time{300}, [&] { order.push_back(3); });
    e.schedule_at(sim_time{100}, [&] { order.push_back(1); });
    e.schedule_at(sim_time{200}, [&] { order.push_back(2); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(e.now().ns, 300);
}

TEST(engine, same_time_fifo_order)
{
    engine e;
    std::vector<int> order;
    for (int i = 0; i < 10; ++i)
        e.schedule_at(sim_time{50}, [&order, i] { order.push_back(i); });
    e.run();
    for (int i = 0; i < 10; ++i) EXPECT_EQ(order[i], i);
}

TEST(engine, schedule_in_relative)
{
    engine e;
    sim_time seen{};
    e.schedule_in(5_us, [&] { seen = e.now(); });
    e.run();
    EXPECT_EQ(seen.ns, 5000);
}

TEST(engine, nested_scheduling)
{
    engine e;
    int hits = 0;
    std::function<void()> chain = [&] {
        if (++hits < 5) e.schedule_in(1_us, chain);
    };
    e.schedule_in(1_us, chain);
    e.run();
    EXPECT_EQ(hits, 5);
    EXPECT_EQ(e.now().ns, 5000);
}

TEST(engine, run_until_stops)
{
    engine e;
    int hits = 0;
    e.schedule_at(sim_time{100}, [&] { hits++; });
    e.schedule_at(sim_time{200}, [&] { hits++; });
    e.run_until(sim_time{150});
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(e.now().ns, 150);
    EXPECT_EQ(e.pending(), 1u);
    e.run();
    EXPECT_EQ(hits, 2);
}

TEST(engine, past_schedule_clamped_to_now)
{
    engine e;
    e.schedule_at(sim_time{100}, [&] {
        bool ran = false;
        e.schedule_at(sim_time{50}, [&ran] { ran = true; });
        // runs at now(), not in the past
    });
    e.run();
    EXPECT_EQ(e.now().ns, 100);
}

// ----------------------------------------------------------------- queues

static packet make_pkt(std::uint64_t id, std::uint64_t size)
{
    packet p;
    p.id = id;
    p.virtual_payload = size;
    return p;
}

TEST(drop_tail_queue, fifo_order_and_capacity)
{
    drop_tail_queue q(1000);
    EXPECT_TRUE(q.enqueue(make_pkt(1, 400)));
    EXPECT_TRUE(q.enqueue(make_pkt(2, 400)));
    EXPECT_FALSE(q.enqueue(make_pkt(3, 400))); // over capacity
    EXPECT_EQ(q.stats().dropped, 1u);
    EXPECT_EQ(q.byte_depth(), 800u);
    auto a = q.dequeue();
    ASSERT_TRUE(a.has_value());
    EXPECT_EQ(a->id, 1u);
    EXPECT_TRUE(q.enqueue(make_pkt(4, 400))); // room again
    EXPECT_EQ(q.dequeue()->id, 2u);
    EXPECT_EQ(q.dequeue()->id, 4u);
    EXPECT_FALSE(q.dequeue().has_value());
}

TEST(priority_queue_disc, strict_priority)
{
    // classify odd ids into band 0, even into band 1
    priority_queue_disc q(2, 10000, [](const packet& p) {
        return p.id % 2 == 1 ? 0u : 1u;
    });
    q.enqueue(make_pkt(2, 100));
    q.enqueue(make_pkt(4, 100));
    q.enqueue(make_pkt(1, 100));
    q.enqueue(make_pkt(3, 100));
    EXPECT_EQ(q.dequeue()->id, 1u);
    EXPECT_EQ(q.dequeue()->id, 3u);
    EXPECT_EQ(q.dequeue()->id, 2u);
    EXPECT_EQ(q.dequeue()->id, 4u);
}

TEST(priority_queue_disc, per_band_capacity)
{
    priority_queue_disc q(2, 150, [](const packet& p) { return p.id % 2 == 1 ? 0u : 1u; });
    EXPECT_TRUE(q.enqueue(make_pkt(1, 100)));
    EXPECT_FALSE(q.enqueue(make_pkt(3, 100))); // band 0 full
    EXPECT_TRUE(q.enqueue(make_pkt(2, 100)));  // band 1 has its own budget
    EXPECT_EQ(q.band_depth_bytes(0), 100u);
    EXPECT_EQ(q.band_depth_bytes(1), 100u);
}

// ----------------------------------------------------- link + host timing

namespace {

/// Minimal sink node that records arrivals.
class sink_node final : public node {
public:
    using node::node;
    void receive(packet&& p, unsigned) override
    {
        arrivals.push_back({eng_.now(), p.id, p.corrupted});
    }
    struct arrival {
        sim_time at;
        std::uint64_t id;
        bool corrupted;
    };
    std::vector<arrival> arrivals;
};

} // namespace

TEST(link, serialization_plus_propagation_timing)
{
    network net(1);
    auto& sink = net.emplace<sink_node>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10); // 0.8 ns per byte
    cfg.propagation = 2_us;
    const auto port = net.connect_simplex(src, sink, cfg);

    packet p = make_pkt(7, 1250); // 1 us serialization at 10 Gbps
    src.egress(port).send(std::move(p));
    net.sim().run();
    ASSERT_EQ(sink.arrivals.size(), 1u);
    EXPECT_EQ(sink.arrivals[0].at.ns, 1000 + 2000);
}

TEST(link, back_to_back_packets_serialize_sequentially)
{
    network net(1);
    auto& sink = net.emplace<sink_node>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10);
    cfg.propagation = sim_duration::zero();
    const auto port = net.connect_simplex(src, sink, cfg);

    src.egress(port).send(make_pkt(1, 1250));
    src.egress(port).send(make_pkt(2, 1250));
    net.sim().run();
    ASSERT_EQ(sink.arrivals.size(), 2u);
    EXPECT_EQ(sink.arrivals[0].at.ns, 1000);
    EXPECT_EQ(sink.arrivals[1].at.ns, 2000); // waited for the first
}

TEST(link, mtu_enforced)
{
    network net(1);
    auto& sink = net.emplace<sink_node>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.mtu = 1500;
    const auto port = net.connect_simplex(src, sink, cfg);
    src.egress(port).send(make_pkt(1, 2000));
    net.sim().run();
    EXPECT_TRUE(sink.arrivals.empty());
    EXPECT_EQ(src.egress(port).stats().dropped_oversize, 1u);
}

TEST(link, random_drop_rate_approximate)
{
    network net(99);
    auto& sink = net.emplace<sink_node>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(100);
    cfg.drop_probability = 0.2;
    cfg.queue_capacity_bytes = 1ull << 30;
    const auto port = net.connect_simplex(src, sink, cfg);
    const int n = 5000;
    for (int i = 0; i < n; ++i) src.egress(port).send(make_pkt(i, 100));
    net.sim().run();
    const double delivered = static_cast<double>(sink.arrivals.size()) / n;
    EXPECT_NEAR(delivered, 0.8, 0.03);
}

TEST(link, corruption_marks_but_delivers)
{
    network net(5);
    auto& sink = net.emplace<sink_node>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.bit_error_rate = 1e-5; // 8000-bit packet -> ~8% corruption
    cfg.queue_capacity_bytes = 1ull << 30;
    const auto port = net.connect_simplex(src, sink, cfg);
    const int n = 3000;
    for (int i = 0; i < n; ++i) src.egress(port).send(make_pkt(i, 1000));
    net.sim().run();
    EXPECT_EQ(sink.arrivals.size(), static_cast<std::size_t>(n)); // all delivered
    std::size_t corrupted = 0;
    for (const auto& a : sink.arrivals)
        if (a.corrupted) corrupted++;
    EXPECT_NEAR(static_cast<double>(corrupted) / n, 0.077, 0.03);
}

// ------------------------------------------------------- host + routing

TEST(host, corrupted_packets_dropped_at_host)
{
    network net(1);
    auto& a = net.add_host("a");
    auto& b = net.add_host("b");
    net.connect(a, b, link_config{});
    net.compute_routes();

    packet p = a.make_ipv4_packet(200, b.address());
    p.corrupted = true;
    // deliver directly (bypassing the link's corruption process)
    b.receive(std::move(p), 0);
    EXPECT_EQ(b.drops().corrupted, 1u);
}

TEST(host, protocol_demux_and_not_mine)
{
    network net(1);
    auto& a = net.add_host("a");
    auto& b = net.add_host("b");
    net.connect(a, b, link_config{});
    net.compute_routes();

    int got = 0;
    b.set_protocol_handler(111, [&](packet&&, const wire::ipv4_header& ip, std::size_t) {
        got++;
        EXPECT_EQ(ip.protocol, 111);
    });

    auto p = a.make_ipv4_packet(111, b.address());
    a.send_ipv4(std::move(p), b.address());
    // a packet not addressed to b
    auto p2 = a.make_ipv4_packet(111, 0x01020304);
    a.send_ipv4(std::move(p2), b.address()); // force out same port
    net.sim().run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(b.drops().not_mine, 1u);

    // unclaimed protocol
    auto p3 = a.make_ipv4_packet(222, b.address());
    a.send_ipv4(std::move(p3), b.address());
    net.sim().run();
    EXPECT_EQ(b.drops().unclaimed, 1u);
}

TEST(host, unroutable_counted)
{
    network net(1);
    auto& a = net.add_host("a");
    auto p = a.make_ipv4_packet(6, 0x0a0000ff);
    a.send_ipv4(std::move(p), 0x0a0000ff);
    EXPECT_EQ(a.drops().unroutable, 1u);
}

TEST(network, shortest_path_routing_across_chain)
{
    network net(1);
    auto& a = net.add_host("a");
    auto& m1 = net.emplace<sink_node>("m1"); // not used for forwarding here
    (void)m1;
    auto& b = net.add_host("b");
    auto& c = net.add_host("c");
    net.connect(a, b, link_config{});
    net.connect(b, c, link_config{});
    net.compute_routes();

    // a reaches c via b (port toward b)
    EXPECT_NE(a.route(c.address()), no_port);
    EXPECT_EQ(a.route(c.address()), a.route(b.address()));
    EXPECT_EQ(a.route(0xdeadbeef), no_port);
}

TEST(network, addresses_unique_and_resolvable)
{
    network net(1);
    auto& a = net.add_host("a");
    auto& b = net.add_host("b");
    EXPECT_NE(a.address(), b.address());
    EXPECT_EQ(net.find("a"), &a);
    EXPECT_EQ(net.find_addr(b.address()), &b);
    EXPECT_EQ(net.find("zzz"), nullptr);
}
