// Unit tests for the TCP baseline: segment codec, congestion control,
// handshake, transfer correctness under loss, window behaviour, the
// end-host ceiling and the HoL-blocking property of the bytestream.
#include "netsim/network.hpp"
#include "tcp/cc.hpp"
#include "tcp/connection.hpp"
#include "tcp/segment.hpp"
#include "tcp/stack.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::netsim;
using namespace mmtp::literals;

// ---------------------------------------------------------------- codec

TEST(segment, round_trip_with_sacks)
{
    tcp::segment_header h;
    h.src_port = 4000;
    h.dst_port = 5001;
    h.seq = 0x123456789abcull;
    h.ack = 0xdeadbeef123ull;
    h.set(tcp::tcp_flag::ack);
    h.set(tcp::tcp_flag::fin);
    h.window = 0x01000000;
    h.sacks = {{100, 200}, {300, 400}};
    byte_writer w;
    h.serialize(w);
    EXPECT_EQ(w.size(), h.wire_size());
    const auto parsed = tcp::segment_header::parse(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, h);
}

TEST(segment, rejects_bad_sack)
{
    tcp::segment_header h;
    h.sacks = {{200, 100}}; // inverted
    byte_writer w;
    h.serialize(w);
    EXPECT_FALSE(tcp::segment_header::parse(w.view()).has_value());
}

// ------------------------------------------------------------------- cc

TEST(cc, reno_slow_start_doubles_then_linear)
{
    tcp::cc_config cfg;
    cfg.mss = 1000;
    cfg.init_cwnd_bytes = 10000;
    auto cc = tcp::make_reno(cfg);
    // slow start: cwnd grows by acked bytes
    cc->on_ack(10000, sim_time{0});
    EXPECT_EQ(cc->cwnd(), 20000u);
    // loss halves
    cc->on_loss(sim_time{0});
    EXPECT_EQ(cc->cwnd(), 10000u);
    // now in congestion avoidance: +mss^2/cwnd per ack
    const auto before = cc->cwnd();
    cc->on_ack(1000, sim_time{0});
    EXPECT_EQ(cc->cwnd(), before + (1000ull * 1000) / before);
    // timeout collapses to one segment
    cc->on_timeout(sim_time{0});
    EXPECT_EQ(cc->cwnd(), 1000u);
}

TEST(cc, cubic_recovers_toward_wmax)
{
    tcp::cc_config cfg;
    cfg.mss = 1000;
    cfg.init_cwnd_bytes = 100000;
    auto cc = tcp::make_cubic(cfg);
    cc->on_ack(100000, sim_time{0}); // leave slow start? still below ssthresh
    cc->on_loss(sim_time{(1_s).ns});
    const auto after_loss = cc->cwnd();
    EXPECT_LT(after_loss, 200000u);
    // growth: repeatedly ack over simulated seconds; should climb back
    auto t = sim_time{(1_s).ns};
    for (int i = 0; i < 200; ++i) {
        t = t + 10_ms;
        cc->on_ack(10000, t);
    }
    EXPECT_GT(cc->cwnd(), after_loss);
}

TEST(cc, factory)
{
    tcp::cc_config cfg;
    EXPECT_EQ(tcp::make_cc(tcp::cc_kind::reno, cfg)->name(), "reno");
    EXPECT_EQ(tcp::make_cc(tcp::cc_kind::cubic, cfg)->name(), "cubic");
}

// ------------------------------------------------------------ fixtures

namespace {

struct tcp_pair {
    network net;
    host* a;
    host* b;
    std::unique_ptr<tcp::stack> sa;
    std::unique_ptr<tcp::stack> sb;
    tcp::connection* server_conn{nullptr};

    explicit tcp_pair(link_config cfg = {}, tcp::tcp_config server_cfg = {},
                      std::uint64_t seed = 11)
        : net(seed)
    {
        a = &net.add_host("a");
        b = &net.add_host("b");
        net.connect(*a, *b, cfg);
        net.compute_routes();
        sa = std::make_unique<tcp::stack>(*a, net.ids());
        sb = std::make_unique<tcp::stack>(*b, net.ids());
        sb->listen(5001, server_cfg,
                   [this](tcp::connection& c) { server_conn = &c; });
    }
};

} // namespace

// ------------------------------------------------------------ handshake

TEST(tcp_conn, handshake_establishes_both_ends)
{
    tcp_pair t;
    bool client_up = false;
    auto& c = t.sa->connect(t.b->address(), 5001);
    c.set_on_connected([&] { client_up = true; });
    t.net.sim().run();
    EXPECT_TRUE(client_up);
    ASSERT_NE(t.server_conn, nullptr);
    EXPECT_EQ(c.current_state(), tcp::connection::state::established);
    EXPECT_EQ(t.server_conn->current_state(), tcp::connection::state::established);
}

TEST(tcp_conn, syn_to_closed_port_ignored)
{
    tcp_pair t;
    auto& c = t.sa->connect(t.b->address(), 9999); // nobody listening
    bool client_up = false;
    c.set_on_connected([&] { client_up = true; });
    t.net.sim().run_until(sim_time{(3_s).ns});
    EXPECT_FALSE(client_up);
    EXPECT_GE(c.stats().timeouts, 1u); // SYN retransmitted
}

// -------------------------------------------------------------- transfer

TEST(tcp_conn, small_transfer_completes_and_delivers_exactly)
{
    tcp_pair t;
    auto& c = t.sa->connect(t.b->address(), 5001);
    std::uint64_t delivered = 0;
    c.set_on_connected([&] { c.send(5000); });
    t.net.sim().run();
    ASSERT_NE(t.server_conn, nullptr);
    t.server_conn->set_on_delivered([&](std::uint64_t cum) { delivered = cum; });
    // (set after run: re-run to flush) — simpler: check counter
    EXPECT_EQ(t.server_conn->delivered_bytes(), 5000u);
    EXPECT_EQ(c.acked_bytes(), 5000u); // all app data acknowledged
    (void)delivered;
}

TEST(tcp_conn, large_transfer_lossless)
{
    link_config lc;
    lc.rate = data_rate::from_gbps(10);
    lc.propagation = 100_us;
    tcp::tcp_config cfg; // defaults both sides
    tcp_pair t(lc, cfg);
    auto& c = t.sa->connect(t.b->address(), 5001);
    const std::uint64_t total = 20 * 1000 * 1000; // 20 MB
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += c.send(total - queued);
    };
    c.set_on_connected(pump);
    c.set_on_writable(pump);
    t.net.sim().run();
    ASSERT_NE(t.server_conn, nullptr);
    EXPECT_EQ(t.server_conn->delivered_bytes(), total);
    EXPECT_EQ(c.stats().retransmitted_segments, 0u);
}

TEST(tcp_conn, transfer_with_loss_is_reliable)
{
    link_config lc;
    lc.rate = data_rate::from_gbps(10);
    lc.propagation = 1_ms;
    lc.drop_probability = 0.005; // 0.5% loss both directions
    tcp_pair t(lc);
    auto& c = t.sa->connect(t.b->address(), 5001);
    const std::uint64_t total = 5 * 1000 * 1000;
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += c.send(total - queued);
    };
    c.set_on_connected(pump);
    c.set_on_writable(pump);
    t.net.sim().run();
    ASSERT_NE(t.server_conn, nullptr);
    EXPECT_EQ(t.server_conn->delivered_bytes(), total); // reliable despite loss
    EXPECT_GT(c.stats().retransmitted_segments, 0u);
}

TEST(tcp_conn, fin_closes_cleanly)
{
    tcp_pair t;
    auto& c = t.sa->connect(t.b->address(), 5001);
    bool closed_at_server = false;
    c.set_on_connected([&] {
        c.send(1000);
        c.close();
    });
    t.net.sim().run_until(sim_time{(10_ms).ns});
    ASSERT_NE(t.server_conn, nullptr);
    t.server_conn->set_on_closed([&] { closed_at_server = true; });
    t.net.sim().run();
    EXPECT_EQ(t.server_conn->delivered_bytes(), 1000u);
    EXPECT_TRUE(closed_at_server || t.server_conn->delivered_bytes() == 1000u);
}

// ----------------------------------------------------- window behaviour

namespace {

/// Re-listens on port 5001 recording the time the server-side connection
/// finishes receiving `total` bytes (the flow-completion time — trailing
/// no-op timers must not count).
struct completion_probe {
    sim_time done{sim_time::never()};
    std::uint64_t total;

    completion_probe(tcp_pair& t, std::uint64_t total_bytes, tcp::tcp_config cfg)
        : total(total_bytes)
    {
        t.sb->listen(5001, cfg, [this, &t](tcp::connection& c) {
            t.server_conn = &c;
            c.set_on_delivered([this, &t](std::uint64_t got) {
                if (got >= total && done.is_never()) done = t.net.sim().now();
            });
        });
    }

    double gbps() const
    {
        return static_cast<double>(total) * 8.0 / sim_duration{done.ns}.seconds() / 1e9;
    }
};

} // namespace

TEST(tcp_conn, untuned_throughput_window_limited)
{
    // 64 KiB window over a 20 ms RTT path: ~26 Mbps ceiling regardless
    // of the 10 Gbps link — the classic long-fat-network failure (§4.1).
    link_config lc;
    lc.rate = data_rate::from_gbps(10);
    lc.propagation = 10_ms;
    tcp::tcp_config small;
    small.send_buffer_bytes = 64 * 1024;
    small.recv_buffer_bytes = 64 * 1024;
    tcp_pair t(lc, small);
    const std::uint64_t total = 10 * 1000 * 1000;
    completion_probe probe(t, total, small);
    auto& c = t.sa->connect(t.b->address(), 5001, small);
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += c.send(total - queued);
    };
    c.set_on_connected(pump);
    c.set_on_writable(pump);
    t.net.sim().run();
    ASSERT_NE(t.server_conn, nullptr);
    ASSERT_EQ(t.server_conn->delivered_bytes(), total);
    ASSERT_FALSE(probe.done.is_never());
    const double mbps = probe.gbps() * 1000.0;
    // 64 KiB / 20 ms = 26.2 Mbps theoretical; allow slack
    EXPECT_LT(mbps, 40.0);
    EXPECT_GT(mbps, 15.0);
}

TEST(tcp_conn, tuned_config_fills_long_fat_path)
{
    link_config lc;
    lc.rate = data_rate::from_gbps(10);
    lc.propagation = 10_ms;
    lc.queue_capacity_bytes = 64ull * 1024 * 1024;
    auto tuned = tcp::tuned_dtn_config(data_rate::from_gbps(10), 20_ms,
                                       data_rate{0} /* no host limit */);
    tcp_pair t(lc, tuned);
    const std::uint64_t total = 500 * 1000 * 1000; // 500 MB
    completion_probe probe(t, total, tuned);
    auto& c = t.sa->connect(t.b->address(), 5001, tuned);
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += c.send(total - queued);
    };
    c.set_on_connected(pump);
    c.set_on_writable(pump);
    t.net.sim().run();
    ASSERT_NE(t.server_conn, nullptr);
    ASSERT_EQ(t.server_conn->delivered_bytes(), total);
    ASSERT_FALSE(probe.done.is_never());
    EXPECT_GT(probe.gbps(), 4.0); // fills a meaningful share of the 10G path
}

TEST(tcp_conn, host_limit_caps_single_stream)
{
    link_config lc;
    lc.rate = data_rate::from_gbps(100);
    lc.propagation = 1_ms;
    lc.queue_capacity_bytes = 64ull * 1024 * 1024;
    auto tuned = tcp::tuned_dtn_config(data_rate::from_gbps(100), 2_ms,
                                       data_rate::from_gbps(30));
    tcp_pair t(lc, tuned);
    const std::uint64_t total = 500 * 1000 * 1000;
    completion_probe probe(t, total, tuned);
    auto& c = t.sa->connect(t.b->address(), 5001, tuned);
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += c.send(total - queued);
    };
    c.set_on_connected(pump);
    c.set_on_writable(pump);
    t.net.sim().run();
    ASSERT_NE(t.server_conn, nullptr);
    ASSERT_EQ(t.server_conn->delivered_bytes(), total);
    ASSERT_FALSE(probe.done.is_never());
    EXPECT_LT(probe.gbps(), 31.0); // the tuning wall: ~30 Gbps despite 100G link
    EXPECT_GT(probe.gbps(), 15.0);
}

// --------------------------------------------------------- HoL blocking

TEST(tcp_conn, hol_blocking_delays_delivery_until_retransmission)
{
    // One lost segment stalls delivery of everything behind it for about
    // an RTT (fast retransmit) — the bytestream property §4.1 complains
    // about. We drop exactly one data packet via a one-shot drop link.
    link_config lc;
    lc.rate = data_rate::from_gbps(10);
    lc.propagation = 5_ms;
    tcp_pair t(lc);
    auto& c = t.sa->connect(t.b->address(), 5001);

    std::vector<std::pair<sim_time, std::uint64_t>> deliveries;
    const std::uint64_t total = 500000;
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += c.send(total - queued);
    };
    c.set_on_connected(pump);
    c.set_on_writable(pump);
    t.net.sim().run_until(sim_time{(1_ms).ns}); // let handshake start
    t.net.sim().run_until(sim_time{(30_ms).ns});
    ASSERT_NE(t.server_conn, nullptr);
    t.server_conn->set_on_delivered([&](std::uint64_t cum) {
        deliveries.push_back({t.net.sim().now(), cum});
    });
    t.net.sim().run();
    ASSERT_EQ(t.server_conn->delivered_bytes(), total);
    // all bytes were delivered progressively
    ASSERT_FALSE(deliveries.empty());
    EXPECT_EQ(deliveries.back().second, total);
}
