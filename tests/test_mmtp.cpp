// Unit/functional tests for the MMTP core: stack demux, sender (modes,
// fragmentation, pacing, backpressure reaction), receiver (delivery,
// duplicates, NAK-based recovery), and the DTN buffer service.
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "mmtp/stack.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::core;
using namespace mmtp::netsim;
using namespace mmtp::literals;

namespace {

daq::daq_message make_msg(std::uint64_t seq, std::uint32_t size, std::uint64_t ts_ns = 0,
                          std::uint32_t experiment = wire::experiments::iceberg)
{
    daq::daq_message m;
    m.experiment = wire::make_experiment_id(experiment, 0);
    m.sequence = seq;
    m.timestamp_ns = ts_ns;
    m.size_bytes = size;
    return m;
}

/// host pair with MMTP stacks on both ends.
struct mmtp_pair {
    network net;
    host* a;
    host* b;
    std::unique_ptr<stack> sa;
    std::unique_ptr<stack> sb;

    explicit mmtp_pair(link_config cfg = {}, std::uint64_t seed = 21) : net(seed)
    {
        a = &net.add_host("a");
        b = &net.add_host("b");
        net.connect(*a, *b, cfg);
        net.compute_routes();
        sa = std::make_unique<stack>(*a, net.ids());
        sb = std::make_unique<stack>(*b, net.ids());
    }
};

} // namespace

// ----------------------------------------------------------------- stack

TEST(mmtp_stack, data_and_control_demux)
{
    mmtp_pair t;
    int data = 0, naks = 0;
    t.sb->set_data_sink([&](delivered_datagram&&) { data++; });
    t.sb->set_nak_handler(
        [&](const wire::nak_body&, wire::experiment_id, wire::ipv4_addr) { naks++; });

    wire::header h;
    h.experiment = 5;
    t.sa->send_datagram(t.b->address(), h, {}, 100);

    wire::nak_body nak;
    nak.requester = t.a->address();
    nak.ranges = {{1, 2}};
    byte_writer w;
    serialize(nak, w);
    t.sa->send_control(t.b->address(), 5, wire::control_type::nak, w.take());

    t.net.sim().run();
    EXPECT_EQ(data, 1);
    EXPECT_EQ(naks, 1);
    EXPECT_EQ(t.sb->stats().data_in, 1u);
    EXPECT_EQ(t.sb->stats().control_in, 1u);
}

TEST(mmtp_stack, l2_datagrams_reach_sink)
{
    mmtp_pair t;
    int got = 0;
    t.sb->set_data_sink([&](delivered_datagram&& d) {
        got++;
        EXPECT_TRUE(d.over_l2);
    });
    wire::header h;
    h.experiment = 9;
    t.sa->send_datagram_l2(0, h, {}, 50);
    t.net.sim().run();
    EXPECT_EQ(got, 1);
}

// ---------------------------------------------------------------- sender

TEST(mmtp_sender, fragments_large_messages)
{
    mmtp_pair t;
    std::uint64_t datagrams = 0, bytes = 0;
    t.sb->set_data_sink([&](delivered_datagram&& d) {
        datagrams++;
        bytes += d.total_payload_bytes;
        EXPECT_LE(d.total_payload_bytes, 8192u);
        ASSERT_TRUE(d.hdr.timestamp_ns.has_value());
        EXPECT_EQ(*d.hdr.timestamp_ns, 777u);
    });
    sender_config cfg;
    sender tx(*t.sa, t.b->address(), cfg);
    tx.send_message(make_msg(0, 20000, 777));
    t.net.sim().run();
    EXPECT_EQ(datagrams, 3u); // 8192 + 8192 + 3616
    EXPECT_EQ(bytes, 20000u);
    EXPECT_EQ(tx.stats().messages, 1u);
    EXPECT_EQ(tx.stats().datagrams, 3u);
}

TEST(mmtp_sender, inline_payload_rides_in_first_fragments)
{
    mmtp_pair t;
    std::vector<std::vector<std::uint8_t>> payloads;
    t.sb->set_data_sink(
        [&](delivered_datagram&& d) { payloads.push_back(std::move(d.payload)); });
    sender_config cfg;
    cfg.max_datagram_payload = 4;
    sender tx(*t.sa, t.b->address(), cfg);
    auto m = make_msg(0, 10);
    m.inline_payload = {1, 2, 3, 4, 5, 6};
    tx.send_message(m);
    t.net.sim().run();
    ASSERT_EQ(payloads.size(), 3u);
    EXPECT_EQ(payloads[0], (std::vector<std::uint8_t>{1, 2, 3, 4}));
    EXPECT_EQ(payloads[1], (std::vector<std::uint8_t>{5, 6}));
    EXPECT_TRUE(payloads[2].empty()); // all-virtual tail
}

TEST(mmtp_sender, pacing_spreads_datagrams)
{
    mmtp_pair t;
    std::vector<sim_time> arrivals;
    t.sb->set_data_sink(
        [&](delivered_datagram&& d) { arrivals.push_back(d.received); });
    sender_config cfg;
    cfg.pace = data_rate::from_mbps(80); // 8000-byte datagrams: 800 us each
    cfg.max_datagram_payload = 8000;
    sender tx(*t.sa, t.b->address(), cfg);
    for (int i = 0; i < 4; ++i) tx.send_message(make_msg(i, 8000));
    t.net.sim().run();
    ASSERT_EQ(arrivals.size(), 4u);
    for (std::size_t i = 1; i < arrivals.size(); ++i) {
        const auto gap = arrivals[i] - arrivals[i - 1];
        EXPECT_NEAR(static_cast<double>(gap.ns), 800e3, 50e3) << i;
    }
}

TEST(mmtp_sender, backpressure_scales_pace_down_then_recovers)
{
    mmtp_pair t;
    sender_config cfg;
    cfg.pace = data_rate::from_mbps(100);
    cfg.backpressure_hold = 10_ms;
    cfg.min_pace_fraction = 0.1;
    sender tx(*t.sa, t.b->address(), cfg);

    EXPECT_EQ(tx.effective_pace().bits_per_sec, 100000000u);

    // deliver a backpressure control message to host a
    wire::backpressure_body bp;
    bp.level = 255;
    byte_writer w;
    serialize(bp, w);
    t.sb->send_control(t.a->address(), 0, wire::control_type::backpressure, w.take());
    // Recovery is event-driven now, so stop inside the hold to observe
    // the suppressed pace.
    t.net.sim().run_until(t.net.sim().now() + 1_ms);

    EXPECT_EQ(tx.stats().backpressure_signals, 1u);
    EXPECT_EQ(tx.stats().bp_decreases, 1u);
    EXPECT_EQ(tx.stats().bp_floor_hits, 1u);
    EXPECT_NEAR(static_cast<double>(tx.effective_pace().bits_per_sec), 10000000.0, 1e6);

    // after the hold expires, additive recovery restores the full pace
    t.net.sim().run_until(t.net.sim().now() + 20_ms);
    EXPECT_EQ(tx.effective_pace().bits_per_sec, 100000000u);
    EXPECT_FALSE(tx.suppressed());
    EXPECT_EQ(tx.stats().bp_recoveries, 1u);
    EXPECT_GE(tx.stats().bp_recovery_steps, 6u); // 0.1 -> 1.0 in 0.15 steps
    EXPECT_GT(tx.stats().suppressed_ns, 0u);
}

TEST(mmtp_sender, weaker_signal_does_not_relax_stronger_suppression)
{
    // Regression (PR 4): the sender used to let the *latest* signal win —
    // a level-64 signal arriving while a level-255 suppression was in
    // force overwrote both the pace scale and the hold, quadrupling the
    // pace of a sender the network had just told to slow to the floor.
    mmtp_pair t;
    sender_config cfg;
    cfg.pace = data_rate::from_mbps(100);
    cfg.backpressure_hold = 10_ms;
    cfg.min_pace_fraction = 0.1;
    sender tx(*t.sa, t.b->address(), cfg);

    auto signal = [&](std::uint8_t level) {
        wire::backpressure_body bp;
        bp.level = level;
        byte_writer w;
        serialize(bp, w);
        t.sb->send_control(t.a->address(), 0, wire::control_type::backpressure,
                           w.take());
    };

    signal(255); // strongest possible: pace pinned at the floor
    t.net.sim().run_until(t.net.sim().now() + 1_ms);
    const auto floor_pace = tx.effective_pace().bits_per_sec;
    EXPECT_NEAR(static_cast<double>(floor_pace), 10e6, 1e6);

    signal(64); // later but weaker: must not raise the pace
    t.net.sim().run_until(t.net.sim().now() + 1_ms);
    EXPECT_EQ(tx.stats().backpressure_signals, 2u);
    EXPECT_EQ(tx.stats().bp_decreases, 1u); // the weaker signal cut nothing
    EXPECT_EQ(tx.effective_pace().bits_per_sec, floor_pace);
    EXPECT_TRUE(tx.suppressed());

    // The weaker signal still counts as congestion evidence: it extends
    // the quiet period (max of expiries), after which additive recovery
    // restores the configured pace exactly once.
    t.net.sim().run_until(t.net.sim().now() + 30_ms);
    EXPECT_EQ(tx.effective_pace().bits_per_sec, 100000000u);
    EXPECT_FALSE(tx.suppressed());
    EXPECT_EQ(tx.stats().bp_recoveries, 1u);
}

TEST(mmtp_sender, drive_schedules_source_messages)
{
    mmtp_pair t;
    std::uint64_t got = 0;
    t.sb->set_data_sink([&](delivered_datagram&&) { got++; });
    sender_config cfg;
    sender tx(*t.sa, t.b->address(), cfg);
    daq::steady_source src(wire::make_experiment_id(6, 0), 1000, 10_us, sim_time{0}, 25);
    EXPECT_EQ(tx.drive(src), 25u);
    t.net.sim().run();
    EXPECT_EQ(got, 25u);
}

// -------------------------------------------------------------- receiver

namespace {

/// a → b where a runs a buffer service (with local sequencing) and b a
/// receiver; loss injected on the a→b link only.
struct recovery_rig {
    network net;
    host* src;
    host* dst;
    std::unique_ptr<stack> s_src;
    std::unique_ptr<stack> s_dst;
    std::unique_ptr<buffer_service> svc;
    std::unique_ptr<receiver> rx;

    explicit recovery_rig(double loss, std::uint64_t seed = 33,
                          receiver_config rcfg = {})
        : net(seed)
    {
        src = &net.add_host("src");
        dst = &net.add_host("dst");
        link_config forward;
        forward.rate = data_rate::from_gbps(10);
        forward.propagation = 500_us;
        forward.drop_probability = loss;
        net.connect_simplex(*src, *dst, forward);
        link_config back = forward;
        back.drop_probability = 0.0; // NAKs themselves survive
        net.connect_simplex(*dst, *src, back);
        net.compute_routes();

        s_src = std::make_unique<stack>(*src, net.ids());
        s_dst = std::make_unique<stack>(*dst, net.ids());

        buffer_service_config bcfg;
        bcfg.next_hop = dst->address();
        bcfg.assign_sequence_locally = true;
        svc = std::make_unique<buffer_service>(*s_src, bcfg);

        rcfg.nak_retry = 3_ms;
        rx = std::make_unique<receiver>(*s_dst, rcfg);
    }

    /// Injects `n` messages into the buffer service as if they had
    /// arrived from a sensor.
    void feed(std::uint64_t n, std::uint32_t size = 1000)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            delivered_datagram d;
            d.hdr.experiment = wire::make_experiment_id(wire::experiments::iceberg, 0);
            d.hdr.m.set(wire::feature::timestamped);
            d.hdr.timestamp_ns = static_cast<std::uint64_t>(net.sim().now().ns);
            d.total_payload_bytes = size;
            svc->relay(d);
        }
    }
};

} // namespace

TEST(mmtp_receiver, lossless_delivery_no_naks)
{
    recovery_rig rig(0.0);
    rig.feed(100);
    rig.net.sim().run();
    EXPECT_EQ(rig.rx->stats().datagrams, 100u);
    EXPECT_EQ(rig.rx->stats().naks_sent, 0u);
    EXPECT_EQ(rig.rx->stats().duplicates, 0u);
    EXPECT_EQ(rig.rx->outstanding_gaps(), 0u);
}

TEST(mmtp_receiver, recovers_all_loss_from_buffer)
{
    recovery_rig rig(0.05); // 5% loss
    rig.feed(1000);
    rig.net.sim().run();
    // everything eventually delivered exactly once
    EXPECT_EQ(rig.rx->stats().datagrams, 1000u);
    EXPECT_GT(rig.rx->stats().recovered, 10u);
    EXPECT_GT(rig.rx->stats().naks_sent, 0u);
    EXPECT_EQ(rig.rx->stats().given_up, 0u);
    EXPECT_EQ(rig.rx->outstanding_gaps(), 0u);
    EXPECT_EQ(rig.svc->stats().nak_requests, rig.rx->stats().naks_sent);
    EXPECT_EQ(rig.svc->stats().unavailable, 0u);
}

TEST(mmtp_receiver, recovery_latency_scales_with_buffer_rtt)
{
    recovery_rig rig(0.05);
    rig.feed(1000);
    rig.net.sim().run();
    // RTT to buffer is ~1 ms; recovery should take a few ms (grace +
    // RTT), not the tens of ms an end-to-end scheme would need.
    const auto p50 = rig.rx->stats().recovery_latency_us.percentile(50);
    EXPECT_GT(p50, 500u);
    EXPECT_LT(p50, 20000u);
}

TEST(mmtp_receiver, gives_up_when_buffer_cannot_help)
{
    // Buffer with zero retention: NAKs find nothing; receiver abandons
    // after max attempts and reports the loss.
    network net(44);
    auto& src = net.add_host("src");
    auto& dst = net.add_host("dst");
    link_config fwd;
    fwd.propagation = 100_us;
    net.connect(src, dst, fwd);
    net.compute_routes();
    stack s_src(src, net.ids());
    stack s_dst(dst, net.ids());

    buffer_service_config bcfg;
    bcfg.next_hop = dst.address();
    bcfg.assign_sequence_locally = true;
    bcfg.buffer.retention = sim_duration{0}; // nothing survives
    buffer_service svc(s_src, bcfg);

    receiver_config rcfg;
    rcfg.nak_retry = 1_ms;
    rcfg.max_nak_attempts = 3;
    receiver rx(s_dst, rcfg);
    std::vector<std::uint64_t> lost;
    rx.set_on_loss([&](wire::experiment_id, std::uint16_t, std::uint64_t s) {
        lost.push_back(s);
    });

    // Manually deliver sequence 0 and 2, skipping 1 (simulated loss).
    for (std::uint64_t s : {0ull, 1ull, 2ull}) {
        delivered_datagram d;
        d.hdr.experiment = wire::make_experiment_id(6, 0);
        d.total_payload_bytes = 100;
        svc.relay(d);
        (void)s;
    }
    // drop the middle relayed packet by intercepting: easier — use the
    // fact that zero-retention buffer can't retransmit; force a gap by
    // delivering a crafted out-of-order datagram instead:
    net.sim().run();
    // All three arrived (no link loss), so no gap and no give-up.
    EXPECT_EQ(rx.stats().given_up, 0u);

    // Now inject a datagram with a sequence that leaves a gap (seq 5).
    wire::header h;
    h.experiment = wire::make_experiment_id(6, 0);
    h.m.set(wire::feature::sequencing).set(wire::feature::retransmission);
    h.sequencing = wire::sequencing_field{5, 0};
    h.retransmission = wire::retransmission_field{src.address()};
    s_src.send_datagram(dst.address(), h, {}, 100);
    net.sim().run();
    // gaps 3..4 were NAKed 3 times, buffer had nothing, receiver gave up
    EXPECT_EQ(rx.stats().given_up, 2u);
    EXPECT_EQ((std::vector<std::uint64_t>{3, 4}), lost);
    EXPECT_GT(svc.stats().unavailable, 0u);
}

TEST(mmtp_receiver, duplicate_datagrams_counted_not_delivered_twice)
{
    mmtp_pair t;
    receiver rx(*t.sb);
    int delivered = 0;
    rx.set_on_datagram([&](const delivered_datagram&) { delivered++; });

    wire::header h;
    h.experiment = wire::make_experiment_id(6, 0);
    h.m.set(wire::feature::sequencing);
    h.sequencing = wire::sequencing_field{0, 0};
    t.sa->send_datagram(t.b->address(), h, {}, 100);
    t.sa->send_datagram(t.b->address(), h, {}, 100); // same sequence again
    t.net.sim().run();
    EXPECT_EQ(delivered, 1);
    EXPECT_EQ(rx.stats().duplicates, 1u);
}

TEST(mmtp_receiver, destination_timeliness_check)
{
    link_config slow_path;
    slow_path.propagation = 5_ms; // transit clearly exceeds the budget
    mmtp_pair t(slow_path);
    receiver rx(*t.sb);

    wire::header h;
    h.experiment = wire::make_experiment_id(6, 0);
    h.m.set(wire::feature::timeliness).set(wire::feature::timestamped);
    wire::timeliness_field tf;
    tf.deadline_us = 1; // 1 us budget: will be exceeded in flight
    h.timeliness = tf;
    h.timestamp_ns = 0;
    t.sa->send_datagram(t.b->address(), h, {}, 100);
    t.net.sim().run();
    EXPECT_EQ(rx.stats().datagrams, 1u);
    EXPECT_EQ(rx.stats().aged_on_arrival, 1u);
    EXPECT_GT(rx.stats().age_us.max(), 0u);
}

// --------------------------------------------------------- buffer service

TEST(buffer_service, relays_and_buffers)
{
    recovery_rig rig(0.0);
    rig.feed(10, 2000);
    rig.net.sim().run();
    EXPECT_EQ(rig.svc->stats().relayed, 10u);
    EXPECT_EQ(rig.svc->stats().relayed_bytes, 20000u);
    EXPECT_EQ(rig.svc->buffer().entries(), 10u);
    EXPECT_EQ(rig.rx->stats().datagrams, 10u);
}

TEST(buffer_service, local_sequencing_is_contiguous_per_experiment)
{
    recovery_rig rig(0.0);
    std::vector<std::uint64_t> seqs;
    rig.rx->set_on_datagram([&](const delivered_datagram& d) {
        ASSERT_TRUE(d.hdr.sequencing.has_value());
        seqs.push_back(d.hdr.sequencing->sequence);
    });
    rig.feed(5);
    rig.net.sim().run();
    EXPECT_EQ(seqs, (std::vector<std::uint64_t>{0, 1, 2, 3, 4}));
}

TEST(buffer_service, advertises_buffer)
{
    mmtp_pair t;
    int adverts = 0;
    t.sb->set_advert_handler([&](const wire::buffer_advert_body& b) {
        adverts++;
        EXPECT_EQ(b.buffer_addr, t.a->address());
        EXPECT_GT(b.capacity_bytes, 0u);
    });
    buffer_service_config bcfg;
    bcfg.next_hop = t.b->address();
    buffer_service svc(*t.sa, bcfg);
    svc.advertise(t.b->address());
    t.net.sim().run();
    EXPECT_EQ(adverts, 1);
}
