// Unit tests for src/daq: Table-1 profiles, WIB frame codec, LArTPC
// synthesis, trigger/supernova/alert message sources.
#include "daq/alerts.hpp"
#include "daq/message.hpp"
#include "daq/profiles.hpp"
#include "daq/trigger.hpp"
#include "daq/wib.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::daq;

// -------------------------------------------------------------- profiles

TEST(profiles, table1_rates_match_paper)
{
    const auto& t1 = table1_profiles();
    ASSERT_EQ(t1.size(), 5u);
    EXPECT_DOUBLE_EQ(cms_l1_profile().daq_rate.gbps(), 63000.0);
    EXPECT_DOUBLE_EQ(dune_profile().daq_rate.gbps(), 120000.0);
    EXPECT_DOUBLE_EQ(ecce_profile().daq_rate.gbps(), 100000.0);
    EXPECT_DOUBLE_EQ(mu2e_profile().daq_rate.gbps(), 160.0);
    EXPECT_DOUBLE_EQ(vera_rubin_profile().daq_rate.gbps(), 400.0);
}

TEST(profiles, message_rate_consistent_with_daq_rate)
{
    const auto p = mu2e_profile();
    const double mps = p.messages_per_second();
    EXPECT_NEAR(mps * p.message_bytes * 8.0,
                static_cast<double>(p.daq_rate.bits_per_sec), 1.0);
}

TEST(profiles, interval_times_rate_recovers_profile)
{
    for (const auto& p : table1_profiles()) {
        const auto gap = p.message_interval(1.0);
        // one stream emits size/interval bytes/s; times streams = rate
        const double per_stream_bps = p.message_bytes * 8.0 / gap.seconds();
        EXPECT_NEAR(per_stream_bps * p.streams,
                    static_cast<double>(p.daq_rate.bits_per_sec),
                    static_cast<double>(p.daq_rate.bits_per_sec) * 0.01)
            << p.name;
    }
}

TEST(profiles, scaling)
{
    const auto p = dune_profile().scaled(0.001);
    EXPECT_NEAR(p.daq_rate.gbps(), 120.0, 0.01);
}

// ------------------------------------------------------------------- wib

TEST(wib, frame_size_constant)
{
    wib_frame f;
    EXPECT_EQ(f.serialize().size(), wib_frame_bytes);
}

TEST(wib, round_trip)
{
    wib_frame f;
    f.version = 2;
    f.crate = 3;
    f.slot = 4;
    f.fiber = 1;
    f.timestamp = 0x123456789abcdef0ull;
    for (std::size_t i = 0; i < wib_channels; ++i)
        f.adc[i] = static_cast<std::uint16_t>(i * 7 % 4096);
    const auto bytes = f.serialize();
    const auto parsed = wib_frame::parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, f);
}

TEST(wib, crc_detects_corruption)
{
    wib_frame f;
    f.timestamp = 42;
    auto bytes = f.serialize();
    bytes[20] ^= 0x40;
    EXPECT_FALSE(wib_frame::parse(bytes).has_value());
}

TEST(wib, wrong_size_rejected)
{
    wib_frame f;
    auto bytes = f.serialize();
    bytes.pop_back();
    EXPECT_FALSE(wib_frame::parse(bytes).has_value());
}

TEST(wib, adc_clamped_to_12_bits)
{
    wib_frame f;
    f.adc[0] = 0xffff;
    const auto bytes = f.serialize();
    const auto parsed = wib_frame::parse(bytes);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->adc[0], 0x0fffu);
}

TEST(lartpc, pedestal_and_noise_without_activity)
{
    lartpc_synth::config cfg;
    cfg.activity = 0.0;
    lartpc_synth synth(rng(3), cfg);
    wib_frame f;
    double sum = 0;
    int n = 0;
    for (int k = 0; k < 50; ++k) {
        synth.fill(f);
        for (auto v : f.adc) {
            sum += v;
            n++;
        }
    }
    EXPECT_NEAR(sum / n, cfg.pedestal, 1.0);
}

TEST(lartpc, activity_raises_signal)
{
    lartpc_synth::config quiet_cfg;
    quiet_cfg.activity = 0.0;
    lartpc_synth quiet(rng(4), quiet_cfg);
    lartpc_synth::config busy_cfg;
    busy_cfg.activity = 0.5;
    lartpc_synth busy(rng(4), busy_cfg);
    wib_frame fq, fb;
    double sq = 0, sb = 0;
    for (int k = 0; k < 50; ++k) {
        quiet.fill(fq);
        busy.fill(fb);
        for (auto v : fq.adc) sq += v;
        for (auto v : fb.adc) sb += v;
    }
    EXPECT_GT(sb, sq * 1.05);
}

// --------------------------------------------------------------- message

TEST(daq_header, round_trip)
{
    daq_header h;
    h.experiment = wire::make_experiment_id(wire::experiments::dune, 3);
    h.sequence = 77;
    h.timestamp_ns = 123456789;
    h.record_count = 9;
    h.flags = 0x8001;
    byte_writer w;
    h.serialize(w);
    EXPECT_EQ(w.size(), daq_header::wire_bytes);
    const auto parsed = daq_header::parse(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, h);
    EXPECT_FALSE(daq_header::parse(w.view().first(10)).has_value());
}

TEST(steady_source, cadence_and_limit)
{
    using namespace mmtp::literals;
    steady_source src(42, 1000, 10_us, sim_time{5000}, 3);
    auto a = src.next();
    auto b = src.next();
    auto c = src.next();
    auto d = src.next();
    ASSERT_TRUE(a && b && c);
    EXPECT_FALSE(d.has_value());
    EXPECT_EQ(a->at.ns, 5000);
    EXPECT_EQ(b->at.ns, 15000);
    EXPECT_EQ(c->at.ns, 25000);
    EXPECT_EQ(a->msg.sequence, 0u);
    EXPECT_EQ(c->msg.sequence, 2u);
    EXPECT_EQ(a->msg.size_bytes, 1000u);
    EXPECT_EQ(a->msg.timestamp_ns, 5000u);
}

TEST(composite_source, time_ordered_merge)
{
    using namespace mmtp::literals;
    composite_source mix;
    mix.add(std::make_unique<steady_source>(1, 10, 30_us, sim_time{0}, 3));
    mix.add(std::make_unique<steady_source>(2, 10, 20_us, sim_time{5000}, 4));
    std::vector<std::int64_t> times;
    std::vector<std::uint32_t> exps;
    while (auto tm = mix.next()) {
        times.push_back(tm->at.ns);
        exps.push_back(tm->msg.experiment);
    }
    ASSERT_EQ(times.size(), 7u);
    EXPECT_TRUE(std::is_sorted(times.begin(), times.end()));
    EXPECT_EQ(times.front(), 0);
    EXPECT_EQ(exps.front(), 1u);
}

// --------------------------------------------------------------- trigger

TEST(iceberg_stream, message_shape)
{
    iceberg_stream::config cfg;
    cfg.frames_per_record = 10;
    cfg.record_limit = 5;
    iceberg_stream src(rng(7), cfg);
    int n = 0;
    std::int64_t prev = -1;
    while (auto tm = src.next()) {
        n++;
        EXPECT_EQ(tm->msg.size_bytes, iceberg_stream::message_bytes(10));
        EXPECT_GT(tm->at.ns, prev);
        prev = tm->at.ns;
        EXPECT_EQ(wire::experiment_of(tm->msg.experiment), wire::experiments::iceberg);
        // inline payload starts with a parseable shared DAQ header
        const auto dh = daq_header::parse(tm->msg.inline_payload);
        ASSERT_TRUE(dh.has_value());
        EXPECT_EQ(dh->record_count, 10);
    }
    EXPECT_EQ(n, 5);
}

TEST(iceberg_stream, materialized_frames_parse_and_crc_check)
{
    iceberg_stream::config cfg;
    cfg.frames_per_record = 4;
    cfg.record_limit = 2;
    cfg.materialize_frames = true;
    iceberg_stream src(rng(11), cfg);
    auto tm = src.next();
    ASSERT_TRUE(tm.has_value());
    const auto& payload = tm->msg.inline_payload;
    ASSERT_EQ(payload.size(), daq_header::wire_bytes + 4 * wib_frame_bytes);
    for (int i = 0; i < 4; ++i) {
        const auto frame = wib_frame::parse(std::span<const std::uint8_t>(payload).subspan(
            daq_header::wire_bytes + i * wib_frame_bytes, wib_frame_bytes));
        ASSERT_TRUE(frame.has_value()) << "frame " << i;
        EXPECT_EQ(frame->timestamp, static_cast<std::uint64_t>(tm->at.ns) / wib_tick_ns + i);
    }
}

TEST(iceberg_stream, rate_approximates_profile)
{
    // default config: ~5656-byte records / 4.2 us ≈ 10.8 Gbps
    iceberg_stream::config cfg;
    cfg.record_limit = 1000;
    iceberg_stream src(rng(13), cfg);
    std::uint64_t bytes = 0;
    sim_time last{};
    while (auto tm = src.next()) {
        bytes += tm->msg.size_bytes;
        last = tm->at;
    }
    const double gbps = bytes * 8.0 / sim_duration{last.ns}.seconds() / 1e9;
    EXPECT_NEAR(gbps, 10.8, 1.0);
}

TEST(supernova_source, burst_raises_rate_100x)
{
    using namespace mmtp::literals;
    supernova_source::config cfg;
    cfg.quiet_interval = 1_ms;
    cfg.burst_onset = sim_time{(100_ms).ns};
    cfg.burst_duration = 50_ms;
    cfg.burst_multiplier = 100;
    cfg.message_limit = 10000;
    supernova_source src(cfg);
    std::uint64_t quiet = 0, burst = 0;
    while (auto tm = src.next()) {
        if (src.in_burst(tm->at))
            burst++;
        else if (tm->at.ns < cfg.burst_onset.ns)
            quiet++;
        // flag carried in the shared DAQ header
        const auto dh = daq_header::parse(tm->msg.inline_payload);
        ASSERT_TRUE(dh.has_value());
        EXPECT_EQ(dh->flags != 0, src.in_burst(tm->at));
    }
    EXPECT_NEAR(static_cast<double>(quiet), 100.0, 2.0);  // 100 ms at 1/ms
    EXPECT_NEAR(static_cast<double>(burst), 5000.0, 60.0); // 50 ms at 100/ms
}

// ---------------------------------------------------------------- alerts

TEST(alert_burst, visit_structure_and_peak_rate)
{
    using namespace mmtp::literals;
    alert_burst_source::config cfg;
    cfg.alerts_per_visit = 100;
    cfg.visit_limit = 2;
    cfg.mean_alert_bytes = 100000;
    cfg.intra_burst_gap = 10_us;
    alert_burst_source src(rng(17), cfg);
    int n = 0;
    std::vector<std::int64_t> times;
    while (auto tm = src.next()) {
        n++;
        times.push_back(tm->at.ns);
        EXPECT_GE(tm->msg.size_bytes, daq_header::wire_bytes);
    }
    EXPECT_EQ(n, 200);
    // second visit starts at the visit interval
    EXPECT_EQ(times[100], cfg.visit_interval.ns);
    // burst rate: 100 KB / 10 us = 80 Gbps nominal
    EXPECT_NEAR(src.burst_rate().gbps(), 80.0, 0.01);
}

TEST(supernova_alert, emits_exactly_once_with_parseable_body)
{
    supernova_alert_source::alert_body body;
    body.ra_udeg = -123456;
    body.dec_udeg = 654321;
    body.confidence_permille = 950;
    const auto exp = wire::make_experiment_id(wire::experiments::dune, 0);
    supernova_alert_source src(exp, sim_time{777}, body);
    auto tm = src.next();
    ASSERT_TRUE(tm.has_value());
    EXPECT_FALSE(src.next().has_value());
    EXPECT_EQ(tm->at.ns, 777);
    const auto parsed = supernova_alert_source::alert_body::parse(tm->msg.inline_payload);
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->ra_udeg, body.ra_udeg);
    EXPECT_EQ(parsed->dec_udeg, body.dec_udeg);
    EXPECT_EQ(parsed->confidence_permille, body.confidence_permille);
}
