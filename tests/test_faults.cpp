// Fault-injection tests: link up/down semantics (in-flight vs queued),
// dropped_down accounting, corruption bursts, node blackouts, flap-storm
// determinism, the failure-aware control plane (health monitor +
// capacity planner reroutes), receiver NAK backoff and buffer failover,
// and the sender's epoch-bumping reroute.
#include "control/health_monitor.hpp"
#include "control/planner.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/fault.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"

#include <gtest/gtest.h>

#include <tuple>
#include <vector>

using namespace mmtp;
using namespace mmtp::core;
using namespace mmtp::netsim;
using namespace mmtp::literals;

namespace {

packet make_pkt(std::uint64_t id, std::uint64_t size)
{
    packet p;
    p.id = id;
    p.virtual_payload = size;
    return p;
}

class counting_sink final : public node {
public:
    using node::node;
    void receive(packet&&, unsigned) override { arrivals++; }
    std::uint64_t arrivals{0};
};

class corruption_sink final : public node {
public:
    using node::node;
    void receive(packet&& p, unsigned) override
    {
        arrivals++;
        if (p.corrupted) corrupted++;
    }
    std::uint64_t arrivals{0};
    std::uint64_t corrupted{0};
};

} // namespace

// ------------------------------------------------- link down semantics

// A packet already in the serializer when the link fails is on the wire:
// it completes and is delivered. Packets queued behind it stall until
// repair, then resume — nothing is silently lost from the queue.
TEST(fault_link, down_mid_serialization_delivers_in_flight_stalls_queued)
{
    network net(5);
    auto& sink = net.emplace<counting_sink>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10); // 1000 B = 800 ns serialization
    cfg.propagation = sim_duration{100};
    const auto port = net.connect_simplex(src, sink, cfg);
    auto& l = src.egress(port);

    fault_scheduler faults(net.sim());
    for (int i = 0; i < 3; ++i) l.send(make_pkt(i + 1, 1000));
    faults.fail_link_at(l, sim_time{400}); // mid-first-packet

    net.sim().run_until(sim_time{1000000});
    EXPECT_FALSE(l.up());
    EXPECT_EQ(sink.arrivals, 1u); // the in-flight packet landed
    EXPECT_EQ(l.queue_depth_packets(), 2u);
    EXPECT_EQ(l.stats().dropped_down, 0u); // queued before the failure

    faults.repair_link_at(l, sim_time{2000000});
    net.sim().run();
    EXPECT_TRUE(l.up());
    EXPECT_EQ(sink.arrivals, 3u); // queue drained after repair
    EXPECT_EQ(l.stats().tx_packets, 3u);
    EXPECT_EQ(faults.stats().link_downs, 1u);
    EXPECT_EQ(faults.stats().link_ups, 1u);
}

TEST(fault_link, send_while_down_is_counted_dropped_down)
{
    network net(5);
    auto& sink = net.emplace<counting_sink>("sink");
    auto& src = net.add_host("src");
    const auto port = net.connect_simplex(src, sink, link_config{});
    auto& l = src.egress(port);

    l.set_up(false);
    for (int i = 0; i < 4; ++i) l.send(make_pkt(i + 1, 500));
    net.sim().run();
    EXPECT_EQ(sink.arrivals, 0u);
    EXPECT_EQ(l.stats().dropped_down, 4u);
    EXPECT_EQ(l.stats().dropped_down_bytes, 2000u);
    EXPECT_EQ(l.queue_depth_packets(), 0u); // refused before the queue

    l.set_up(true);
    l.send(make_pkt(9, 500));
    net.sim().run();
    EXPECT_EQ(sink.arrivals, 1u);
}

TEST(fault_link, corruption_burst_overrides_then_restores_ber)
{
    network net(17);
    auto& sink = net.emplace<corruption_sink>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10);
    cfg.propagation = sim_duration{100};
    const auto port = net.connect_simplex(src, sink, cfg);
    auto& l = src.egress(port);

    fault_scheduler faults(net.sim());
    // BER high enough that every 1000 B packet inside the window is
    // corrupted (per-packet prob = min(1, ber * bits) = 1).
    faults.corruption_burst(l, sim_time{100000}, sim_duration{100000}, 1.0);

    // One packet before, several inside, one after the window.
    auto send_at = [&](std::int64_t at_ns, std::uint64_t id) {
        net.sim().schedule_at(sim_time{at_ns}, [&l, id] { l.send(make_pkt(id, 1000)); });
    };
    send_at(10000, 1);
    for (std::int64_t i = 0; i < 5; ++i) send_at(120000 + i * 2000, 10 + i);
    send_at(300000, 2);
    net.sim().run();

    EXPECT_EQ(sink.arrivals, 7u);
    EXPECT_EQ(sink.corrupted, 5u); // exactly the burst-window packets
    EXPECT_EQ(l.config().bit_error_rate, 0.0); // restored
    EXPECT_EQ(faults.stats().corruption_bursts, 1u);
}

// ------------------------------------------------------- node blackout

// Blackout gates ingress only: arriving packets are dropped and counted,
// while packets already queued on the node's own egress links keep
// draining (a powered-off host's last DMA burst is already in the NIC).
TEST(fault_node, blackout_drops_ingress_but_egress_drains)
{
    network net(9);
    auto& mid = net.emplace<counting_sink>("mid");
    auto& far = net.emplace<counting_sink>("far");
    auto& src = net.add_host("src");
    link_config slow;
    slow.rate = data_rate{8ull * 1000 * 1000}; // 1 ms per 1000 B packet
    const auto to_mid = net.connect_simplex(src, mid, link_config{});
    const auto to_far = net.connect_simplex(mid, far, slow);

    // Queue three packets on mid's egress, then power mid off while they
    // are still draining; also keep sending toward mid while it is dark.
    for (int i = 0; i < 3; ++i) mid.egress(to_far).send(make_pkt(i + 1, 1000));
    fault_scheduler faults(net.sim());
    faults.blackout_window(mid, sim_time{500000}, sim_duration{5000000});
    for (int i = 0; i < 4; ++i) {
        net.sim().schedule_at(sim_time{1000000 + i * 100000}, [&src, to_mid, i] {
            src.egress(to_mid).send(make_pkt(100 + i, 1000));
        });
    }
    net.sim().run();

    EXPECT_EQ(far.arrivals, 3u);          // egress kept draining
    EXPECT_EQ(mid.blackout_dropped(), 4u); // ingress gated
    EXPECT_EQ(mid.arrivals, 0u);
    EXPECT_EQ(faults.stats().node_blackouts, 1u);
    EXPECT_EQ(faults.stats().node_restores, 1u);

    // Restored: ingress works again.
    src.egress(to_mid).send(make_pkt(200, 1000));
    net.sim().run();
    EXPECT_EQ(mid.arrivals, 1u);
    EXPECT_EQ(mid.blackout_dropped(), 4u);
}

// -------------------------------------------------- flap determinism

namespace {

/// One seeded run of a flap storm + corruption burst over a lossy link;
/// returns every externally observable number.
auto run_flap_storm(std::uint64_t seed)
{
    network net(seed);
    auto& sink = net.emplace<corruption_sink>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10);
    cfg.propagation = 2_us;
    cfg.drop_probability = 0.1;
    const auto port = net.connect_simplex(src, sink, cfg);
    auto& l = src.egress(port);

    fault_scheduler faults(net.sim());
    faults.flap_link(l, sim_time{100000}, sim_duration{150000}, sim_duration{250000}, 4);
    faults.corruption_burst(l, sim_time{700000}, sim_duration{200000}, 1e-5);

    for (std::int64_t i = 0; i < 2000; ++i) {
        net.sim().schedule_at(sim_time{i * 1000},
                              [&l, i] { l.send(make_pkt(i + 1, 1000)); });
    }
    net.sim().run();

    const auto& ls = l.stats();
    const auto& qs = l.queue_statistics();
    return std::make_tuple(sink.arrivals, sink.corrupted, ls.tx_packets, ls.tx_bytes,
                           ls.dropped_random, ls.dropped_down, ls.dropped_down_bytes,
                           ls.corrupted, ls.busy.ns, qs.enqueued, qs.dequeued,
                           qs.dropped, net.sim().now().ns);
}

} // namespace

// Two identical seeded runs of a flap storm must agree on every counter
// and on the final simulation clock — faults are engine events, so a
// fault scenario is exactly as reproducible as a fault-free one.
TEST(fault_determinism, flap_storm_identical_across_runs)
{
    const auto a = run_flap_storm(1234);
    const auto b = run_flap_storm(1234);
    EXPECT_EQ(a, b);

    // Sanity: the storm actually bit — both drop classes occurred.
    EXPECT_GT(std::get<5>(a), 0u); // dropped_down
    EXPECT_GT(std::get<4>(a), 0u); // dropped_random
    EXPECT_GT(std::get<0>(a), 0u); // and traffic still got through
}

// --------------------------------------------- failure-aware planner

TEST(fault_planner, reroute_releases_and_readmits_budgets_exactly)
{
    control::capacity_planner p;
    p.register_link("daq", data_rate::from_gbps(100));
    p.register_link("wan-a", data_rate::from_gbps(10));
    p.register_link("wan-b", data_rate::from_gbps(10));

    const auto rate = data_rate::from_gbps(8);
    const auto flow = p.admit({"daq", "wan-a"}, rate);
    ASSERT_TRUE(flow.has_value());
    ASSERT_TRUE(p.register_backup_path(*flow, {"daq", "wan-b"}));
    EXPECT_EQ(p.committed("wan-a").bits_per_sec, rate.bits_per_sec);
    EXPECT_EQ(p.committed("wan-b").bits_per_sec, 0u);

    std::vector<std::pair<control::flow_id, bool>> events;
    p.set_reroute_handler([&](const control::admission& f, bool ok) {
        events.push_back({f.id, ok});
    });

    p.handle_link_down("wan-a");
    // Old path fully released, backup path fully committed — exactly once.
    EXPECT_EQ(p.committed("wan-a").bits_per_sec, 0u);
    EXPECT_EQ(p.committed("wan-b").bits_per_sec, rate.bits_per_sec);
    EXPECT_EQ(p.committed("daq").bits_per_sec, rate.bits_per_sec);
    EXPECT_EQ(p.available("wan-a").bits_per_sec, 0u); // down => nothing admittable
    ASSERT_EQ(events.size(), 1u);
    EXPECT_EQ(events[0], (std::pair<control::flow_id, bool>{*flow, true}));
    ASSERT_NE(p.flow(*flow), nullptr);
    EXPECT_EQ(p.flow(*flow)->path, (std::vector<control::link_id>{"daq", "wan-b"}));
    EXPECT_EQ(p.stats().flows_rerouted, 1u);
    EXPECT_EQ(p.stats().flows_stranded, 0u);

    // Repair reopens the budget but does not move the flow back.
    p.handle_link_up("wan-a");
    EXPECT_GT(p.available("wan-a").bits_per_sec, 0u);
    EXPECT_EQ(p.flow(*flow)->path, (std::vector<control::link_id>{"daq", "wan-b"}));
    EXPECT_EQ(p.stats().link_repairs, 1u);

    // Admission control stayed intact throughout: no phantom commitments.
    p.release(*flow);
    EXPECT_EQ(p.committed("daq").bits_per_sec, 0u);
    EXPECT_EQ(p.committed("wan-b").bits_per_sec, 0u);
}

TEST(fault_planner, flow_strands_when_backup_has_no_room)
{
    control::capacity_planner p;
    p.register_link("wan-a", data_rate::from_gbps(10));
    p.register_link("wan-b", data_rate::from_gbps(10));

    // Fill the backup so the rerouted flow cannot fit.
    const auto squatter = p.admit({"wan-b"}, data_rate::from_gbps(6));
    ASSERT_TRUE(squatter.has_value());
    const auto victim = p.admit({"wan-a"}, data_rate::from_gbps(8));
    ASSERT_TRUE(victim.has_value());
    ASSERT_TRUE(p.register_backup_path(*victim, {"wan-b"}));

    std::vector<bool> outcomes;
    p.set_reroute_handler(
        [&](const control::admission&, bool ok) { outcomes.push_back(ok); });
    p.handle_link_down("wan-a");

    // Admission control held: the flow was evicted, not overbooked.
    EXPECT_EQ(outcomes, (std::vector<bool>{false}));
    EXPECT_EQ(p.flow(*victim), nullptr);
    EXPECT_EQ(p.committed("wan-a").bits_per_sec, 0u);
    EXPECT_EQ(p.committed("wan-b").bits_per_sec, data_rate::from_gbps(6).bits_per_sec);
    EXPECT_EQ(p.stats().flows_stranded, 1u);

    // And a down link rejects fresh admissions outright.
    EXPECT_FALSE(p.admit({"wan-a"}, data_rate::from_gbps(1)).has_value());
}

// ------------------------------------------------------ health monitor

TEST(fault_health, transitions_drive_planner_then_listeners)
{
    network net(3);
    auto& sink = net.emplace<counting_sink>("sink");
    auto& src = net.add_host("src");
    const auto port = net.connect_simplex(src, sink, link_config{});
    auto& l = src.egress(port);

    control::capacity_planner planner;
    planner.register_link("wan", data_rate::from_gbps(10));
    ASSERT_TRUE(planner.admit({"wan"}, data_rate::from_gbps(4)).has_value());

    control::health_monitor hm(net.sim(), planner);
    hm.watch("wan", l);

    std::vector<std::uint64_t> available_at_listener;
    hm.add_listener([&](const control::link_id& id, bool up, sim_time) {
        EXPECT_EQ(id, "wan");
        (void)up;
        // Listeners run after the planner: budgets already reflect the event.
        available_at_listener.push_back(planner.available("wan").bits_per_sec);
    });

    fault_scheduler faults(net.sim());
    faults.fail_link_at(l, sim_time{1000});
    faults.repair_link_at(l, sim_time{5000});
    net.sim().run();

    ASSERT_EQ(hm.history().size(), 2u);
    EXPECT_FALSE(hm.history()[0].up);
    EXPECT_EQ(hm.history()[0].at.ns, 1000);
    EXPECT_TRUE(hm.history()[1].up);
    EXPECT_EQ(hm.history()[1].at.ns, 5000);
    EXPECT_EQ(hm.stats().downs_observed, 1u);
    EXPECT_EQ(hm.stats().ups_observed, 1u);
    ASSERT_EQ(available_at_listener.size(), 2u);
    EXPECT_EQ(available_at_listener[0], 0u); // down: budget gone
    EXPECT_GT(available_at_listener[1], 0u); // repaired: budget back
}

// --------------------------------------------------- receiver backoff

// The n-th NAK retry waits base * 2^(n-1), capped: with base 3 ms and a
// 10 ms cap the gap between NAKs must run 3, 6, 10, 10 ms. The times are
// read off the buffer-side stack, so this also pins the check scheduler
// (wake-ups land exactly when a gap becomes due).
TEST(fault_receiver, nak_retries_back_off_exponentially_to_cap)
{
    network net(31);
    auto& src = net.add_host("src");
    auto& dst = net.add_host("dst");
    net.connect(src, dst, link_config{});
    net.compute_routes();
    stack s_src(src, net.ids());
    stack s_dst(dst, net.ids());

    std::vector<sim_time> nak_times;
    s_src.set_nak_handler([&](const wire::nak_body&, wire::experiment_id, wire::ipv4_addr) {
        nak_times.push_back(net.sim().now()); // observe, never answer
    });

    receiver_config rcfg;
    rcfg.nak_retry = 3_ms;
    rcfg.nak_retry_cap = 10_ms;
    rcfg.max_nak_attempts = 5;
    rcfg.failover_attempts = 0; // no fallback in this rig
    receiver rx(s_dst, rcfg);

    // Sequences 0..9 with 5 missing; the buffer address points at src.
    for (std::uint64_t seq = 0; seq < 10; ++seq) {
        if (seq == 5) continue;
        wire::header h;
        h.experiment = wire::make_experiment_id(wire::experiments::iceberg, 0);
        h.m.set(wire::feature::sequencing).set(wire::feature::retransmission);
        h.sequencing = wire::sequencing_field{seq, 0};
        h.retransmission = wire::retransmission_field{src.address()};
        s_src.send_datagram(dst.address(), h, {}, 100);
    }
    net.sim().run();

    ASSERT_EQ(nak_times.size(), 5u); // max_nak_attempts, then give up
    const auto d1 = (nak_times[1] - nak_times[0]).ns;
    const auto d2 = (nak_times[2] - nak_times[1]).ns;
    const auto d3 = (nak_times[3] - nak_times[2]).ns;
    const auto d4 = (nak_times[4] - nak_times[3]).ns;
    EXPECT_EQ(d1, 3000000);  // base
    EXPECT_EQ(d2, 6000000);  // base * 2
    EXPECT_EQ(d3, 10000000); // base * 4 = 12 ms, capped at 10
    EXPECT_EQ(d4, 10000000); // stays at the cap
    EXPECT_EQ(rx.stats().nak_retries, 4u);
    EXPECT_EQ(rx.stats().given_up, 1u);
    EXPECT_EQ(rx.stats().buffer_failovers, 0u);
    EXPECT_EQ(rx.outstanding_gaps(), 0u); // abandoned gap was resolved
}

// ---------------------------------------------------- buffer failover

// The primary buffer suffers a blackout; after failover_attempts
// unanswered NAKs the stream retargets the fallback buffer (learned from
// the primary's advert) and recovers everything — given_up stays 0.
TEST(fault_receiver, nak_failover_to_secondary_buffer_after_blackout)
{
    network net(77);
    auto& primary = net.add_host("primary");
    auto& dst = net.add_host("dst");
    auto& secondary = net.add_host("secondary");
    link_config lossy;
    lossy.rate = data_rate::from_gbps(10);
    lossy.propagation = 500_us;
    lossy.drop_probability = 0.05;
    net.connect_simplex(primary, dst, lossy);
    link_config back = lossy;
    back.drop_probability = 0.0;
    net.connect_simplex(dst, primary, back);
    net.connect(dst, secondary, link_config{});
    net.compute_routes();

    stack s_primary(primary, net.ids());
    stack s_dst(dst, net.ids());
    stack s_secondary(secondary, net.ids());

    buffer_service_config pcfg;
    pcfg.next_hop = dst.address();
    pcfg.assign_sequence_locally = true;
    pcfg.secondary_buffer = secondary.address();
    buffer_service primary_svc(s_primary, pcfg);

    buffer_service_config scfg;
    scfg.tap_only = true;
    buffer_service secondary_svc(s_secondary, scfg);

    receiver_config rcfg;
    rcfg.nak_retry = 3_ms;
    rcfg.max_nak_attempts = 6;
    rcfg.failover_attempts = 2;
    receiver rx(s_dst, rcfg);
    // The fallback address is learned from the primary's own advert.
    s_dst.set_advert_handler([&](const wire::buffer_advert_body& a) {
        if (a.secondary_addr != 0) rx.set_fallback_buffer(a.secondary_addr);
    });
    primary_svc.advertise(dst.address());

    // Feed both buffers the same stream; the primary relays it (lossily)
    // toward dst, the secondary only stores.
    constexpr std::uint64_t n = 400;
    for (std::uint64_t i = 0; i < n; ++i) {
        delivered_datagram d;
        d.hdr.experiment = wire::make_experiment_id(wire::experiments::iceberg, 0);
        d.hdr.m.set(wire::feature::timestamped);
        d.hdr.timestamp_ns = 0;
        d.total_payload_bytes = 1000;
        primary_svc.relay(d);
        secondary_svc.relay(d);
    }

    // Power the primary off before any NAK can reach it. Its egress
    // queue keeps draining (blackout gates ingress only), so the data
    // burst itself still crosses the lossy link.
    fault_scheduler faults(net.sim());
    faults.blackout_node(primary, sim_time{1000});
    net.sim().run();

    EXPECT_EQ(rx.fallback_buffer(), secondary.address());
    EXPECT_EQ(rx.stats().buffer_failovers, 1u);
    EXPECT_GT(rx.stats().nak_retries, 0u);
    EXPECT_EQ(rx.stats().given_up, 0u);
    EXPECT_EQ(rx.stats().datagrams, n); // everything delivered exactly once
    EXPECT_EQ(rx.outstanding_gaps(), 0u);
    EXPECT_GT(secondary_svc.stats().retransmitted, 0u);
    EXPECT_GT(primary.blackout_dropped(), 0u); // the ignored NAKs
    EXPECT_EQ(primary_svc.stats().nak_requests, 0u);
}

// ----------------------------------------------------- sender reroute

TEST(fault_sender, reroute_redirects_and_bumps_epoch)
{
    network net(13);
    auto& a = net.add_host("a");
    auto& b = net.add_host("b");
    auto& c = net.add_host("c");
    net.connect(a, b, link_config{});
    net.connect(a, c, link_config{});
    net.compute_routes();
    stack sa(a, net.ids());
    stack sb(b, net.ids());
    stack sc(c, net.ids());

    std::vector<std::uint16_t> b_epochs, c_epochs;
    sb.set_data_sink([&](delivered_datagram&& d) {
        ASSERT_TRUE(d.hdr.sequencing.has_value());
        b_epochs.push_back(d.hdr.sequencing->epoch);
    });
    sc.set_data_sink([&](delivered_datagram&& d) {
        ASSERT_TRUE(d.hdr.sequencing.has_value());
        c_epochs.push_back(d.hdr.sequencing->epoch);
    });

    sender_config cfg;
    cfg.origin_mode.set(wire::feature::sequencing);
    sender tx(sa, b.address(), cfg);

    daq::daq_message m;
    m.experiment = wire::make_experiment_id(wire::experiments::dune, 0);
    m.size_bytes = 500;
    tx.send_message(m);
    net.sim().run();

    tx.reroute(c.address()); // control plane moved the flow
    tx.send_message(m);
    net.sim().run();

    EXPECT_EQ(tx.stats().reroutes, 1u);
    EXPECT_EQ(tx.epoch(), 1u);
    EXPECT_EQ(b_epochs, (std::vector<std::uint16_t>{0})); // pre-reroute
    EXPECT_EQ(c_epochs, (std::vector<std::uint16_t>{1})); // post-reroute
}

// -------------------------------------------------- hook re-entrancy

// A lifecycle hook may clear its own node's hooks or register new ones
// while dispatch is walking the hook list — a restore hook re-arming the
// next storm window, a teardown hook removing itself. Dispatch iterating
// the live vector invalidated under either mutation; the contract is
// snapshot semantics: everything registered when the event fired runs
// exactly once, additions wait for the next event, removals do not abort
// the current round.
TEST(fault_hooks, mid_fire_clear_and_register_are_safe)
{
    network net(1);
    auto& n = net.add_host("dtn");
    fault_scheduler faults(net.sim());

    int first = 0, second = 0, late = 0;
    faults.on_blackout(n, [&] {
        first++;
        faults.clear_hooks(n); // drops BOTH registered blackout hooks mid-fire
    });
    faults.on_blackout(n, [&] {
        second++; // removal must not abort the round
        faults.on_blackout(n, [&] { late++; });
    });

    faults.blackout_node(n, sim_time{1000});
    faults.restore_node(n, sim_time{2000});
    net.sim().run();
    EXPECT_EQ(first, 1);
    EXPECT_EQ(second, 1);
    EXPECT_EQ(late, 0); // registered mid-fire: waits for the next blackout

    faults.blackout_node(n, sim_time{3000});
    net.sim().run();
    EXPECT_EQ(first, 1); // cleared: the original hooks never fire again
    EXPECT_EQ(second, 1);
    EXPECT_EQ(late, 1);
}

// A restore hook that clears a *different* node's hooks while that node
// has pending events must not disturb the current dispatch either.
TEST(fault_hooks, hook_may_clear_another_nodes_hooks)
{
    network net(2);
    auto& a = net.add_host("a");
    auto& b = net.add_host("b");
    fault_scheduler faults(net.sim());

    int a_fired = 0, b_fired = 0;
    faults.on_blackout(a, [&] {
        a_fired++;
        faults.clear_hooks(b);
    });
    faults.on_blackout(b, [&] { b_fired++; });

    // a blacks out first and disarms b's hooks before b's own blackout.
    faults.blackout_node(a, sim_time{1000});
    faults.blackout_node(b, sim_time{2000});
    net.sim().run();
    EXPECT_EQ(a_fired, 1);
    EXPECT_EQ(b_fired, 0);
    EXPECT_EQ(faults.stats().node_blackouts, 2u); // the event still fired
}

// ------------------------------------------------ duplication pruning

TEST(fault_duplication, remove_subscriber_stops_cloning)
{
    pnet::duplication_stage dup;
    dup.add_subscriber(7, 0x0a000001);
    dup.add_subscriber(7, 0x0a000002);
    EXPECT_EQ(dup.subscriber_count(7), 2u);

    EXPECT_TRUE(dup.remove_subscriber(7, 0x0a000001));
    EXPECT_EQ(dup.subscriber_count(7), 1u);
    EXPECT_FALSE(dup.remove_subscriber(7, 0x0a000001)); // already gone
    EXPECT_FALSE(dup.remove_subscriber(8, 0x0a000002)); // unknown stream
    EXPECT_TRUE(dup.remove_subscriber(7, 0x0a000002));
    EXPECT_EQ(dup.subscriber_count(7), 0u);
}
