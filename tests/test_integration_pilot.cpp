// Integration tests: the full pilot-study testbed (Fig. 4) — sensor over
// L2 through the DAQ switch to DTN1, in-network mode upgrade at the
// Tofino2-class element, lossy WAN with NAK recovery from DTN1, age
// tracking at both elements, timeliness check at DTN2.
#include "daq/trigger.hpp"
#include "scenario/pilot.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::scenario;
using namespace mmtp::literals;

namespace {

void drive_iceberg(pilot_testbed& tb, std::uint64_t records,
                   std::uint32_t frames_per_record = 10)
{
    daq::iceberg_stream::config cfg;
    cfg.record_limit = records;
    cfg.frames_per_record = frames_per_record;
    daq::iceberg_stream src(tb.net.fork_rng(), cfg);
    tb.sensor_tx->drive(src);
}

} // namespace

TEST(pilot, lossless_end_to_end_delivery)
{
    pilot_config cfg;
    auto tb = make_pilot(cfg);
    drive_iceberg(*tb, 500);
    tb->net.sim().run();

    EXPECT_EQ(tb->dtn1_svc->stats().relayed, 500u);
    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 500u);
    EXPECT_EQ(tb->dtn2_rx->stats().naks_sent, 0u);
    EXPECT_EQ(tb->dtn2_rx->stats().given_up, 0u);
    EXPECT_EQ(tb->dtn2_rx->outstanding_gaps(), 0u);
}

TEST(pilot, mode_upgraded_in_network_not_at_endpoints)
{
    pilot_config cfg;
    auto tb = make_pilot(cfg);

    // capture the modes seen at DTN2
    std::vector<wire::mode> modes_seen;
    tb->dtn2_rx->set_on_datagram([&](const core::delivered_datagram& d) {
        modes_seen.push_back(d.hdr.m);
    });
    drive_iceberg(*tb, 10);
    tb->net.sim().run();

    ASSERT_EQ(modes_seen.size(), 10u);
    for (const auto& m : modes_seen) {
        // the sensor sent mode 0 (+timestamp); the Tofino2 upgraded it
        EXPECT_TRUE(m.has(wire::feature::sequencing));
        EXPECT_TRUE(m.has(wire::feature::retransmission));
        EXPECT_TRUE(m.has(wire::feature::timeliness));
        // campus boundary stripped the in-network signalling bits
        EXPECT_FALSE(m.has(wire::feature::backpressure));
    }
    // the switch performed the transitions
    EXPECT_EQ(tb->tofino2->state().counter("mode_transitions"), 10u);
}

TEST(pilot, sequences_assigned_by_element_match_buffer_prediction)
{
    pilot_config cfg;
    cfg.wan_loss = 0.02;
    auto tb = make_pilot(cfg);
    drive_iceberg(*tb, 800);
    tb->net.sim().run();

    // With 2% WAN loss every record still arrives exactly once, because
    // NAKs hit DTN1's buffer whose mirrored counters matched the
    // element-assigned sequence numbers.
    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 800u);
    EXPECT_GT(tb->dtn2_rx->stats().recovered, 0u);
    EXPECT_EQ(tb->dtn2_rx->stats().given_up, 0u);
    EXPECT_EQ(tb->dtn1_svc->stats().unavailable, 0u);
}

TEST(pilot, recovery_from_dtn_buffer_under_heavy_loss)
{
    pilot_config cfg;
    cfg.wan_loss = 0.10;
    auto tb = make_pilot(cfg);
    drive_iceberg(*tb, 1000);
    tb->net.sim().run();

    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 1000u);
    EXPECT_GT(tb->dtn2_rx->stats().recovered, 50u);
    EXPECT_EQ(tb->dtn2_rx->outstanding_gaps(), 0u);
}

TEST(pilot, ages_accumulate_and_deadline_violations_notify_dtn1)
{
    pilot_config cfg;
    cfg.wan_delay = 20_ms;   // long WAN
    cfg.deadline_us = 1000;  // 1 ms budget: every packet will age out
    auto tb = make_pilot(cfg);
    drive_iceberg(*tb, 50);
    tb->net.sim().run();

    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 50u);
    EXPECT_EQ(tb->dtn2_rx->stats().aged_on_arrival, 50u);
    // age stage at the Alveo saw the violations and notified DTN1
    EXPECT_GT(tb->alveo_rx->state().counter("aged_packets"), 0u);
    EXPECT_EQ(tb->deadline_notifications, 50u);
}

TEST(pilot, no_deadline_violations_with_generous_budget)
{
    pilot_config cfg;
    cfg.wan_delay = 1_ms;
    cfg.deadline_us = 1000000; // 1 s
    auto tb = make_pilot(cfg);
    drive_iceberg(*tb, 100);
    tb->net.sim().run();
    EXPECT_EQ(tb->dtn2_rx->stats().aged_on_arrival, 0u);
    EXPECT_EQ(tb->deadline_notifications, 0u);
    // ages were still tracked
    EXPECT_GT(tb->dtn2_rx->stats().age_us.count(), 0u);
}

TEST(pilot, dtn_local_sequencing_ablation_also_recovers)
{
    pilot_config cfg;
    cfg.wan_loss = 0.05;
    cfg.sequence_at_dtn = true; // ablation: host-side sequencing
    auto tb = make_pilot(cfg);
    drive_iceberg(*tb, 500);
    tb->net.sim().run();
    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 500u);
    EXPECT_EQ(tb->dtn2_rx->stats().given_up, 0u);
    // the element performed no mode transitions in this configuration
    EXPECT_EQ(tb->tofino2->state().counter("mode_transitions"), 0u);
}

TEST(pilot, throughput_saturates_wan_link)
{
    // The pilot "saturates 100 GbE links" — drive the sensor at ~43 Gbps
    // x 3 slices... keep it single-stream here: expect goodput close to
    // the offered load with no loss.
    pilot_config cfg;
    auto tb = make_pilot(cfg);

    daq::iceberg_stream::config scfg;
    scfg.record_limit = 20000;
    scfg.trigger_interval = sim_duration{500}; // 5656B/0.5us ≈ 90 Gbps
    daq::iceberg_stream src(tb->net.fork_rng(), scfg);
    tb->sensor_tx->drive(src);

    tb->net.sim().run();
    ASSERT_EQ(tb->dtn2_rx->stats().datagrams, 20000u);
    const double secs = tb->net.sim().now().seconds();
    const double gbps = static_cast<double>(tb->dtn2_rx->stats().bytes) * 8.0 / secs / 1e9;
    EXPECT_GT(gbps, 60.0); // saturating territory on the 100G path
}

TEST(pilot, in_network_duplication_to_subscriber)
{
    pilot_config cfg;
    auto tb = make_pilot(cfg);

    // add a researcher host hanging off the tofino2 and subscribe it
    auto& researcher = tb->net.add_host("researcher");
    tb->net.connect(*tb->tofino2, researcher, netsim::link_config{});
    tb->net.compute_routes();
    core::stack r_stack(researcher, tb->net.ids());
    std::uint64_t got = 0;
    r_stack.set_data_sink([&](core::delivered_datagram&&) { got++; });
    tb->duplication->add_subscriber(wire::experiments::iceberg, researcher.address());

    // duplication only applies to streams whose mode allows it: add a
    // rule (to the table that runs just before the duplication stage)
    // activating the duplication bit for iceberg traffic
    pnet::mode_rule rule;
    rule.experiment = wire::experiments::iceberg;
    rule.set_bits = wire::feature_bit(wire::feature::duplication);
    tb->dup_mode_stage->add_rule(rule);

    drive_iceberg(*tb, 100);
    tb->net.sim().run();
    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 100u); // primary unaffected
    EXPECT_EQ(got, 100u);                            // subscriber got copies
    EXPECT_EQ(tb->tofino2->stats().clones, 100u);
}
