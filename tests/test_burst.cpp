// Burst-vs-single-packet determinism: the burst pipeline is a pure
// mechanical transform (fewer engine events, same virtual-time work), so
// a same-seed run must produce byte-identical telemetry at any burst
// size. These tests drive a noisy, congested host → switch → host chain
// at burst {1, 8, 32} and compare the full metrics CSV (links + switch;
// engine event counts are excluded — they change by design), the sink's
// delivery order, and every per-packet flight-recorder timeline.
#include "common/trace.hpp"
#include "netsim/link.hpp"
#include "netsim/network.hpp"
#include "pnet/element.hpp"
#include "pnet/stages.hpp"
#include "telemetry/metrics.hpp"
#include "wire/build.hpp"

#include <gtest/gtest.h>

#include <cinttypes>
#include <cstdio>
#include <map>
#include <string>
#include <vector>

using namespace mmtp;
using namespace mmtp::netsim;
using namespace mmtp::pnet;
using namespace mmtp::literals;

namespace {

wire::header seq_header(std::uint64_t seq)
{
    wire::header h;
    h.experiment = wire::make_experiment_id(6, 0);
    h.m.set(wire::feature::sequencing);
    h.sequencing = wire::sequencing_field{seq, 0};
    return h;
}

/// Drip-feeds packets onto the first link at a fixed virtual spacing.
/// At burst == 1 each packet gets its own injection event (the classic
/// path); at burst > 1 one event hands over `burst` pre-stamped packets.
/// Packet k enters the link at (k+1)·spacing either way.
struct feeder {
    network* net;
    node* src;
    wire::ipv4_addr from, to;
    unsigned burst;
    std::uint64_t total;
    sim_duration spacing;
    std::uint64_t sent{0};

    void fire()
    {
        const sim_time now = net->sim().now();
        auto& out = src->egress(0);
        unsigned b = 0;
        for (; b < burst && sent < total; ++b, ++sent) {
            packet p;
            p.id = net->ids().next();
            // Varying payloads vary the serialization time, so bursts
            // interleave queueing and cut-through commitments.
            const std::uint64_t payload = 64 + (sent % 7) * 128;
            p.headers = wire::build_mmtp_over_ipv4(0x02, from, to,
                                                   seq_header(sent), payload);
            p.virtual_payload = payload;
            const sim_time at = now + sim_duration{static_cast<std::int64_t>(b) * spacing.ns};
            p.created = at;
            if (burst > 1)
                out.send_at(at, std::move(p));
            else
                out.send(std::move(p));
        }
        if (sent < total)
            net->sim().schedule_in(sim_duration{static_cast<std::int64_t>(b) * spacing.ns},
                                   [this] { fire(); });
    }
};

std::string fingerprint_records(const trace::flight_recorder& rec,
                                std::uint64_t max_packet_id)
{
    // Raw ring order differs at burst > 1 (stage-major emission); the
    // invariant is each packet's own timeline. Rebuild per-id, in id
    // order, so the rendering is canonical.
    std::string out;
    char line[160];
    for (std::uint64_t id = 1; id <= max_packet_id; ++id) {
        for (const auto& r : rec.packet_events(id)) {
            std::snprintf(line, sizeof line,
                          "id=%" PRIu64 " t=%" PRId64 " site=%s hop=%d why=%d arg=%" PRIu64 "\n",
                          r.packet_id, r.at_ns, rec.site_name(r.site).c_str(),
                          static_cast<int>(r.kind), static_cast<int>(r.why), r.arg);
            out += line;
        }
    }
    return out;
}

/// One full run at the given burst size; returns every byte of telemetry
/// the run produced (metrics CSV + delivery order + trace timelines).
std::string run_chain(unsigned burst)
{
    network net(1234);
    auto& a = net.add_host("a");
    auto& sw = net.emplace<programmable_switch>("sw");
    auto& b = net.add_host("b");
    sw.set_id_source(&net.ids());

    link_config noisy; // 10G / 1 us defaults: spacing below saturates it
    noisy.burst = burst;
    noisy.drop_probability = 0.02;
    noisy.bit_error_rate = 1e-7;
    const auto [a_out, _r1] = net.connect(a, sw, noisy);
    link_config clean;
    clean.burst = burst;
    const auto [sw_out, _r2] = net.connect(sw, b, clean);
    net.compute_routes();
    // A real (if idle) stage so bursts run the stage-major pipeline loop.
    sw.add_stage(std::make_shared<duplication_stage>());

    trace::flight_recorder rec;
    trace::scoped_recorder install(rec);
    a.egress(a_out).set_trace_site(rec.site("a-sw"));
    sw.egress(sw_out).set_trace_site(rec.site("sw-b"));

    std::string delivery; // arrival order + payload fingerprint at the sink
    b.set_protocol_handler(wire::ipproto_mmtp,
                           [&](packet&& p, const wire::ipv4_header&, std::size_t) {
                               char line[64];
                               std::snprintf(line, sizeof line, "%" PRIu64 ":%" PRIu64 "\n",
                                             p.id, p.wire_size());
                               delivery += line;
                           });

    feeder f{&net, &a, a.address(), b.address(), burst, 400, 100_ns};
    net.sim().schedule_in(f.spacing, [&f] { f.fire(); });
    net.sim().run();

    telemetry::metrics_registry reg;
    telemetry::register_link_metrics(reg, "a-sw", a.egress(a_out));
    telemetry::register_link_metrics(reg, "sw-b", sw.egress(sw_out));
    telemetry::register_element_metrics(reg, "sw", sw);

    return reg.to_csv() + "--- delivery ---\n" + delivery + "--- traces ---\n"
        + fingerprint_records(rec, net.ids().next());
}

} // namespace

TEST(burst_determinism, metrics_identical_across_burst_sizes)
{
    const std::string at1 = run_chain(1);
    const std::string at8 = run_chain(8);
    const std::string at32 = run_chain(32);

    // Sanity: the run actually moved traffic into the telemetry.
    EXPECT_NE(at1.find("link_tx_packets"), std::string::npos);
    // The delivery section must not be empty (sink saw packets).
    EXPECT_EQ(at1.find("--- delivery ---\n--- traces ---"), std::string::npos);
    EXPECT_EQ(at1, at8);
    EXPECT_EQ(at8, at32);
}

// The burst fast path must also agree with itself under zero noise and
// no congestion (pure cut-through: every packet commits with zero wait).
TEST(burst_determinism, cut_through_identical_across_burst_sizes)
{
    auto quiet = [](unsigned burst) {
        network net(99);
        auto& a = net.add_host("a");
        auto& sw = net.emplace<programmable_switch>("sw");
        auto& b = net.add_host("b");
        sw.set_id_source(&net.ids());
        link_config fast;
        fast.rate = data_rate::from_gbps(100);
        fast.burst = burst;
        const auto [a_out, _r1] = net.connect(a, sw, fast);
        const auto [sw_out, _r2] = net.connect(sw, b, fast);
        net.compute_routes();

        std::string delivery;
        b.set_protocol_handler(wire::ipproto_mmtp,
                               [&](packet&& p, const wire::ipv4_header&, std::size_t) {
                                   char line[64];
                                   std::snprintf(line, sizeof line, "%" PRIu64 "\n", p.id);
                                   delivery += line;
                               });

        feeder f{&net, &a, a.address(), b.address(), burst, 100, sim_duration{2000}};
        net.sim().schedule_in(f.spacing, [&f] { f.fire(); });
        net.sim().run();

        telemetry::metrics_registry reg;
        telemetry::register_link_metrics(reg, "a-sw", a.egress(a_out));
        telemetry::register_link_metrics(reg, "sw-b", sw.egress(sw_out));
        telemetry::register_element_metrics(reg, "sw", sw);
        return reg.to_csv() + delivery;
    };

    const std::string at1 = quiet(1);
    EXPECT_NE(at1.find("link_tx_packets"), std::string::npos);
    EXPECT_EQ(at1, quiet(8));
    EXPECT_EQ(at1, quiet(32));
}
