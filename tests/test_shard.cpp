// The sharded simulation engine: the scheduler seam, the barrier-
// synchronous control plane, epoch-boundary edge cases (zero-latency
// cuts rejected, mailbox ties broken by (arrival, shard, seq)), and
// whole-drill determinism at shards ∈ {1, 2, 4} — threaded or inline.
#include "netsim/network.hpp"
#include "netsim/shard.hpp"
#include "scenario/chaos.hpp"
#include "scenario/dsl.hpp"
#include "scenario/soak.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>
#include <vector>

using namespace mmtp;
using namespace mmtp::netsim;

namespace {

/// Records every delivery (time, packet id, ingress port) in order.
class sink_node : public node {
public:
    using node::node;

    struct arrival {
        std::int64_t at_ns;
        std::uint64_t id;
        unsigned port;
    };
    std::vector<arrival> arrivals;

    void receive(packet&& p, unsigned ingress_port) override
    {
        arrivals.push_back({sim().now().ns, p.id, ingress_port});
    }
};

packet make_packet(std::uint64_t id)
{
    packet p;
    p.id = id;
    return p;
}

} // namespace

// ------------------------------------------------- the scheduler seam

// Every component now schedules through scheduler&; the concrete engine
// must behave identically through the virtual seam.
TEST(scheduler_seam, engine_through_base_reference)
{
    engine eng;
    scheduler& sched = eng;
    EXPECT_EQ(sched.as_engine(), &eng);

    std::vector<int> order;
    sched.schedule_at(sim_time{200}, [&] { order.push_back(2); });
    sched.schedule_at(sim_time{100}, [&] {
        order.push_back(1);
        // now() through the seam tracks the running event's time.
        EXPECT_EQ(sched.now().ns, 100);
    });
    sched.schedule_in(sim_duration{300}, task_class::control,
                      [&] { order.push_back(3); });
    eng.run();
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    // The task-class tag survived the type-erased hand-off.
    EXPECT_EQ(eng.profile().executed_by_class[static_cast<std::size_t>(
                  task_class::control)],
              1u);
}

TEST(scheduler_seam, cancellable_timers_through_base_reference)
{
    engine eng;
    scheduler& sched = eng;
    bool fired = false;
    auto h = sched.schedule_cancellable_in(sim_duration{500}, task_class::timer,
                                           [&] { fired = true; });
    EXPECT_TRUE(h.active());
    EXPECT_TRUE(sched.cancel(h));
    eng.run();
    EXPECT_FALSE(fired);
    // A stale handle cancels as a no-op.
    EXPECT_FALSE(sched.cancel(h));
}

// ------------------------------------------ the barrier control plane

TEST(barrier_scheduler, runs_tasks_in_time_then_schedule_order)
{
    barrier_scheduler ctl;
    std::vector<int> order;
    std::vector<std::int64_t> times;
    auto log = [&](int tag) {
        return [&, tag] {
            order.push_back(tag);
            times.push_back(ctl.now().ns);
        };
    };
    ctl.schedule_at(sim_time{300}, log(3));
    ctl.schedule_at(sim_time{100}, log(1));
    ctl.schedule_at(sim_time{100}, log(2)); // same instant: schedule order
    ctl.schedule_at(sim_time{900}, log(4));

    sim_time at;
    ASSERT_TRUE(ctl.peek(at));
    EXPECT_EQ(at.ns, 100);
    // Only tasks at <= limit run; now() is pinned to each task's time.
    EXPECT_EQ(ctl.run_due(sim_time{300}), 3u);
    EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
    EXPECT_EQ(times, (std::vector<std::int64_t>{100, 100, 300}));
    EXPECT_FALSE(ctl.empty());
    EXPECT_EQ(ctl.run_due(sim_time{1000}), 1u);
    EXPECT_TRUE(ctl.empty());
}

TEST(barrier_scheduler, cancellation_is_generation_checked)
{
    barrier_scheduler ctl;
    bool fired = false;
    auto h = ctl.schedule_cancellable_in(sim_duration{100}, task_class::timer,
                                         [&] { fired = true; });
    EXPECT_TRUE(ctl.cancel(h));
    EXPECT_FALSE(ctl.cancel(h)); // stale
    EXPECT_EQ(ctl.run_due(sim_time{1000}), 0u);
    EXPECT_FALSE(fired);
    EXPECT_TRUE(ctl.empty());
}

// -------------------------------------------- epoch-boundary edge cases

// A cut link's propagation delay is the conservative lookahead; zero
// would let one shard inject events into another's running epoch.
TEST(shard_partition, zero_latency_cut_links_are_rejected)
{
    network net(1, /*shards=*/2);
    auto& a = net.add_host("a");
    net.set_domain(1);
    auto& b = net.add_host("b");

    link_config zero_prop;
    zero_prop.propagation = sim_duration{0};
    EXPECT_THROW(net.connect_simplex(a, b, zero_prop), std::invalid_argument);

    // The same config is fine within one shard...
    net.set_domain(0);
    auto& c = net.add_host("c");
    EXPECT_NO_THROW(net.connect_simplex(a, c, zero_prop));
    // ...and across the cut once it carries real delay.
    link_config with_prop;
    with_prop.propagation = sim_duration{1000};
    EXPECT_NO_THROW(net.connect_simplex(a, b, with_prop));
    EXPECT_EQ(net.coordinator().lookahead().ns, 1000);
}

// Mail staged by different shards for the same destination must be
// inserted in (arrival time, source shard, mailbox seq) order — the
// tie-break that makes sharded runs thread-interleaving-proof.
TEST(shard_mailboxes, ties_break_by_arrival_then_shard_then_seq)
{
    shard_coordinator coord(3);
    sink_node sink(coord.shard(0), "sink", 0x0a000001u, 0x02ull);

    // Stage deliberately out of order: a later shard first, then an
    // earlier shard twice at the same instant, then an earlier time.
    coord.post_arrival(2, 0, sim_time{100}, make_packet(21), sink, 4);
    coord.post_arrival(1, 0, sim_time{100}, make_packet(11), sink, 5);
    coord.post_arrival(1, 0, sim_time{100}, make_packet(12), sink, 6);
    coord.post_arrival(1, 0, sim_time{50}, make_packet(13), sink, 7);
    coord.run();

    ASSERT_EQ(sink.arrivals.size(), 4u);
    EXPECT_EQ(sink.arrivals[0].id, 13u); // earliest arrival first
    EXPECT_EQ(sink.arrivals[1].id, 11u); // then shard 1 before shard 2...
    EXPECT_EQ(sink.arrivals[2].id, 12u); // ...in mailbox-seq order
    EXPECT_EQ(sink.arrivals[3].id, 21u);
    EXPECT_EQ(sink.arrivals[0].at_ns, 50);
    EXPECT_EQ(sink.arrivals[3].at_ns, 100);
    EXPECT_EQ(coord.scaling().cross_shard_messages, 4u);
}

// Without cut links the lookahead is unbounded: the whole run is one
// epoch, which is also the single-shard degenerate case.
TEST(shard_epochs, no_cut_links_means_one_epoch)
{
    shard_coordinator coord(2);
    int fired = 0;
    coord.shard(0).schedule_at(sim_time{100}, [&] { fired++; });
    coord.shard(1).schedule_at(sim_time{200}, [&] { fired++; });
    coord.run();
    EXPECT_EQ(fired, 2);
    EXPECT_EQ(coord.scaling().epochs, 1u);
}

TEST(shard_epochs, cut_lookahead_bounds_epochs)
{
    scenario::chaos_config cfg;
    cfg.shards = 3;
    auto tb = scenario::make_chaos(cfg);
    tb->net.coordinator().run();
    const auto& sc = tb->net.coordinator().scaling();
    // The drill spans ~10 ms of virtual time with a 1 us lookahead:
    // conservative epochs must have advanced in many small steps, and
    // traffic crossed the cuts.
    EXPECT_GT(sc.epochs, 100u);
    EXPECT_GT(sc.cross_shard_messages, 0u);
}

// --------------------------------------------------- drill determinism

TEST(shard_determinism, chaos_identical_at_1_2_and_4_shards)
{
    for (unsigned shards : {1u, 2u, 4u}) {
        scenario::chaos_config cfg = scenario::kill_revive_config();
        cfg.shards = shards;
        const auto a = scenario::run_chaos_drill(cfg);
        const auto b = scenario::run_chaos_drill(cfg);
        EXPECT_EQ(a.csv, b.csv) << "shards=" << shards;
        EXPECT_EQ(a.metrics_csv, b.metrics_csv) << "shards=" << shards;
        // Sharding must not change what the drill proves, only where it
        // runs: the full kill-and-revive story stays green.
        EXPECT_TRUE(a.recovered) << "shards=" << shards;
        EXPECT_TRUE(a.recovered2) << "shards=" << shards;
        EXPECT_EQ(a.rx.given_up, 0u) << "shards=" << shards;
    }
}

TEST(shard_determinism, soak_identical_at_1_2_and_4_shards)
{
    for (unsigned shards : {1u, 2u, 4u}) {
        scenario::soak_config cfg = scenario::soak_smoke_config();
        cfg.shards = shards;
        const auto a = scenario::run_soak_drill(cfg);
        const auto b = scenario::run_soak_drill(cfg);
        EXPECT_EQ(a.csv, b.csv) << "shards=" << shards;
        EXPECT_EQ(a.metrics_csv, b.metrics_csv) << "shards=" << shards;
        EXPECT_TRUE(a.all_delivered) << "shards=" << shards;
        EXPECT_TRUE(a.all_experiments_complete) << "shards=" << shards;
    }
}

// The epoch algorithm and its results are identical whether shards run
// on worker threads or inline on the coordinator thread.
TEST(shard_determinism, threaded_and_inline_runs_are_identical)
{
    auto run_mode = [](bool threads) {
        scenario::chaos_config cfg = scenario::kill_revive_config();
        cfg.shards = 3;
        auto tb = scenario::make_chaos(cfg);
        tb->net.coordinator().set_threading(threads);
        tb->net.coordinator().run();
        auto r = scenario::summarize_chaos(*tb);
        return r.csv + r.metrics_csv + r.hop_timeline;
    };
    EXPECT_EQ(run_mode(false), run_mode(true));
}

// ------------------------------------------------- the DSL shards knob

TEST(shard_dsl, engine_section_sets_shards_everywhere)
{
    const auto out = scenario::parse_scenario("[scenario]\n"
                                              "topology = soak\n"
                                              "\n"
                                              "[engine]\n"
                                              "shards = 4\n");
    ASSERT_TRUE(out) << out.error.to_string();
    EXPECT_EQ(out.spec->shards(), 4u);
    EXPECT_EQ(out.spec->soak.shards, 4u);
}

TEST(shard_dsl, out_of_range_shards_fail_with_line_number)
{
    const auto out = scenario::parse_scenario("[scenario]\n"
                                              "topology = chaos\n"
                                              "[engine]\n"
                                              "shards = 65\n");
    EXPECT_FALSE(out);
    EXPECT_EQ(out.error.line, 4u);
    EXPECT_NE(out.error.message.find("shards"), std::string::npos);

    const auto zero = scenario::parse_scenario("[scenario]\n"
                                               "topology = chaos\n"
                                               "[engine]\n"
                                               "shards = 0\n");
    EXPECT_FALSE(zero);
    EXPECT_EQ(zero.error.line, 4u);
}

TEST(shard_dsl, render_parse_render_fixed_point_keeps_shards)
{
    scenario::scenario_spec spec;
    spec.topology = "chaos";
    spec.set_shards(2);
    const auto text = scenario::render_scenario(spec);
    EXPECT_NE(text.find("[engine]"), std::string::npos);
    EXPECT_NE(text.find("shards = 2"), std::string::npos);
    const auto parsed = scenario::parse_scenario(text);
    ASSERT_TRUE(parsed) << parsed.error.to_string();
    EXPECT_EQ(parsed.spec->shards(), 2u);
    EXPECT_EQ(scenario::render_scenario(*parsed.spec), text);
}
