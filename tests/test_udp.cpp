// Unit tests for the UDP baseline stack.
#include "netsim/network.hpp"
#include "udp/udp.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::netsim;

namespace {

struct udp_pair {
    network net{1};
    host* a;
    host* b;
    std::unique_ptr<udp::stack> sa;
    std::unique_ptr<udp::stack> sb;

    explicit udp_pair(link_config cfg = {})
    {
        a = &net.add_host("a");
        b = &net.add_host("b");
        net.connect(*a, *b, cfg);
        net.compute_routes();
        sa = std::make_unique<udp::stack>(*a, net.ids());
        sb = std::make_unique<udp::stack>(*b, net.ids());
    }
};

} // namespace

TEST(udp, send_receive_with_content)
{
    udp_pair t;
    auto& tx = t.sa->open(1111);
    auto& rx = t.sb->open(2222);

    std::vector<udp::datagram> got;
    rx.set_on_receive([&](udp::datagram&& d) { got.push_back(std::move(d)); });

    tx.send_to(t.b->address(), 2222, {1, 2, 3, 4, 5});
    t.net.sim().run();

    ASSERT_EQ(got.size(), 1u);
    EXPECT_EQ(got[0].payload, (std::vector<std::uint8_t>{1, 2, 3, 4, 5}));
    EXPECT_EQ(got[0].total_payload_bytes, 5u);
    EXPECT_EQ(got[0].src, t.a->address());
    EXPECT_EQ(got[0].src_port, 1111);
}

TEST(udp, virtual_payload_counts_in_size_only)
{
    udp_pair t;
    auto& tx = t.sa->open(1111);
    auto& rx = t.sb->open(2222);
    std::uint64_t total = 0;
    rx.set_on_receive([&](udp::datagram&& d) { total = d.total_payload_bytes; });
    tx.send_to(t.b->address(), 2222, {9, 9}, 5000);
    t.net.sim().run();
    EXPECT_EQ(total, 5002u);
}

TEST(udp, port_demux_unknown_port_dropped)
{
    udp_pair t;
    auto& tx = t.sa->open(1111);
    auto& rx = t.sb->open(2222);
    int got = 0;
    rx.set_on_receive([&](udp::datagram&&) { got++; });
    tx.send_to(t.b->address(), 3333, {1}); // nobody listens on 3333
    tx.send_to(t.b->address(), 2222, {1});
    t.net.sim().run();
    EXPECT_EQ(got, 1);
}

TEST(udp, no_reliability_on_lossy_link)
{
    link_config cfg;
    cfg.drop_probability = 0.5;
    udp_pair t(cfg);
    auto& tx = t.sa->open(1111);
    auto& rx = t.sb->open(2222);
    int got = 0;
    rx.set_on_receive([&](udp::datagram&&) { got++; });
    for (int i = 0; i < 1000; ++i) tx.send_to(t.b->address(), 2222, {}, 100);
    t.net.sim().run();
    EXPECT_GT(got, 350);
    EXPECT_LT(got, 650); // no retransmission: about half arrive
    EXPECT_EQ(tx.stats().sent, 1000u);
    EXPECT_EQ(rx.stats().received, static_cast<std::uint64_t>(got));
}

TEST(udp, corrupted_datagrams_never_surface)
{
    link_config cfg;
    cfg.bit_error_rate = 1e-4; // ~55% corruption for 700-byte packets
    udp_pair t(cfg);
    auto& tx = t.sa->open(1111);
    auto& rx = t.sb->open(2222);
    int got = 0;
    rx.set_on_receive([&](udp::datagram&&) { got++; });
    for (int i = 0; i < 500; ++i) tx.send_to(t.b->address(), 2222, {}, 700);
    t.net.sim().run();
    EXPECT_LT(got, 400);
    EXPECT_EQ(t.b->drops().corrupted, 500u - static_cast<std::uint64_t>(got));
}
