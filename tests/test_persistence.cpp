// Persistence tests (§6 challenge 2, "data comes back from disk"):
// durable_store seal/crash/recover semantics, buffer_service
// crash-and-revive with NAK repair served from archive-recovered
// records, fault-hook interplay (blackout/restore lifecycle driving the
// software crash/revive), archive_reader hardening against malformed
// input, and run_recorder/run_replayer round trips.
#include "common/rng.hpp"
#include "daq/archive.hpp"
#include "dtn/durable_store.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "netsim/fault.hpp"
#include "netsim/network.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/run_recorder.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::core;
using namespace mmtp::netsim;
using namespace mmtp::literals;

namespace {

dtn::buffered_datagram make_buffered(std::uint64_t seq, wire::experiment_id exp,
                                     std::uint16_t epoch = 0, std::size_t payload_len = 16)
{
    dtn::buffered_datagram d;
    d.sequence = seq;
    d.epoch = epoch;
    d.experiment = exp;
    d.timestamp_ns = seq * 100;
    d.size_bytes = 1000;
    d.inline_payload.resize(payload_len);
    for (std::size_t i = 0; i < payload_len; ++i)
        d.inline_payload[i] = static_cast<std::uint8_t>(seq + i);
    return d;
}

} // namespace

// ------------------------------------------------ durable_store basics

// Sealing happens at chunk granularity: with chunk_records = 4, records
// become durable four at a time, and a crash loses exactly the open tail.
TEST(durable_store, crash_loses_exactly_the_unsealed_tail)
{
    daq::archive_limits limits;
    limits.chunk_records = 4;
    dtn::durable_store store(limits);
    const auto exp = wire::make_experiment_id(wire::experiments::dune, 0);

    for (std::uint64_t i = 0; i < 10; ++i) EXPECT_TRUE(store.append(make_buffered(i, exp)));
    EXPECT_EQ(store.durable_records(), 8u); // two sealed chunks
    EXPECT_EQ(store.open_records(), 2u);    // the vulnerable tail

    EXPECT_EQ(store.crash(), 2u);
    EXPECT_TRUE(store.crashed());
    EXPECT_EQ(store.stats().tail_lost, 2u);
    EXPECT_EQ(store.stats().crashes, 1u);

    // Appends are refused (and counted) while crashed.
    EXPECT_FALSE(store.append(make_buffered(99, exp)));
    EXPECT_EQ(store.stats().rejected, 1u);

    const auto rec = store.recover();
    ASSERT_EQ(rec.records.size(), 8u);
    for (std::uint64_t i = 0; i < 8; ++i) {
        EXPECT_EQ(rec.records[i].sequence, i);
        EXPECT_EQ(rec.records[i].experiment, exp);
        EXPECT_EQ(rec.records[i].inline_payload, make_buffered(i, exp).inline_payload);
    }
    // No journal was sealed, so next-sequence derives from the records.
    ASSERT_EQ(rec.next_sequences.count(exp), 1u);
    EXPECT_EQ(rec.next_sequences.at(exp), 8u);
    EXPECT_FALSE(store.crashed());
    EXPECT_EQ(store.stats().recovered, 8u);
    EXPECT_EQ(store.stats().recoveries, 1u);
}

// seal() is the explicit durability point: everything appended before it
// survives a crash regardless of chunk boundaries, and the sequence
// journal rides along.
TEST(durable_store, seal_makes_partial_chunks_and_journal_durable)
{
    daq::archive_limits limits;
    limits.chunk_records = 64; // far larger than the append count
    dtn::durable_store store(limits);
    const auto exp = wire::make_experiment_id(wire::experiments::iceberg, 2);

    for (std::uint64_t i = 0; i < 5; ++i) store.append(make_buffered(i, exp, 3));
    store.note_sequence(exp, 500); // mirrors a counter far ahead of the records
    EXPECT_EQ(store.open_records(), 5u);
    store.seal();
    EXPECT_EQ(store.durable_records(), 5u);
    EXPECT_EQ(store.open_records(), 0u);

    // Appends and journal updates after the seal are lost by the crash.
    store.append(make_buffered(5, exp, 3));
    store.note_sequence(exp, 600);
    EXPECT_EQ(store.crash(), 1u);

    const auto rec = store.recover();
    ASSERT_EQ(rec.records.size(), 5u);
    EXPECT_EQ(rec.records[0].epoch, 3u); // epoch round-trips via the payload prefix
    // Journalled 500 beats max(sequence)+1 = 5; the unsealed 600 is gone.
    EXPECT_EQ(rec.next_sequences.at(exp), 500u);
}

// Recovery compaction: recover() re-seeds the fresh writer with the
// surviving records, so a second crash right after recovery still finds
// them on disk — revive is not a one-shot.
TEST(durable_store, survives_repeated_crash_recover_cycles)
{
    daq::archive_limits limits;
    limits.chunk_records = 4;
    dtn::durable_store store(limits);
    const auto exp = wire::make_experiment_id(1, 0);

    for (std::uint64_t i = 0; i < 8; ++i) store.append(make_buffered(i, exp));
    EXPECT_EQ(store.crash(), 0u); // 8 = two full chunks, nothing open
    EXPECT_EQ(store.recover().records.size(), 8u);

    // Keep accumulating into the recovered store, crash again.
    for (std::uint64_t i = 8; i < 12; ++i) store.append(make_buffered(i, exp));
    EXPECT_EQ(store.crash(), 0u);
    const auto rec = store.recover();
    EXPECT_EQ(rec.records.size(), 12u);
    EXPECT_EQ(rec.next_sequences.at(exp), 12u);
    EXPECT_EQ(store.stats().crashes, 2u);
    EXPECT_EQ(store.stats().recoveries, 2u);

    // crash() on an already-crashed store is a no-op; recover() on a
    // healthy store returns nothing and changes nothing.
    store.crash();
    store.crash();
    EXPECT_EQ(store.stats().crashes, 3u);
    store.recover();
    const auto empty = store.recover();
    EXPECT_TRUE(empty.records.empty());
    EXPECT_EQ(store.stats().recoveries, 3u);
}

// Per-experiment isolation: records and journal entries recover under
// their own experiment ids.
TEST(durable_store, recovery_keeps_experiments_separate)
{
    daq::archive_limits limits;
    limits.chunk_records = 2;
    dtn::durable_store store(limits);
    const auto a = wire::make_experiment_id(1, 0);
    const auto b = wire::make_experiment_id(2, 0);
    for (std::uint64_t i = 0; i < 4; ++i) store.append(make_buffered(i, a));
    for (std::uint64_t i = 100; i < 102; ++i) store.append(make_buffered(i, b, 7));
    store.crash();
    const auto rec = store.recover();
    ASSERT_EQ(rec.records.size(), 6u);
    EXPECT_EQ(rec.next_sequences.at(a), 4u);
    EXPECT_EQ(rec.next_sequences.at(b), 102u);
    std::uint64_t from_b = 0;
    for (const auto& d : rec.records) {
        if (d.experiment != b) continue;
        from_b++;
        EXPECT_EQ(d.epoch, 7u);
    }
    EXPECT_EQ(from_b, 2u);
}

// ---------------------------- buffer_service crash / revive, end to end

// The archive-served-repair proof: every record the service relays is
// persisted; the service then crashes (in-memory buffer wiped) and
// revives *before* the receiver's NAKs arrive — so every retransmission
// it serves can only have come from archive-recovered records, with the
// sequence/epoch state intact. chunk_records divides the record count
// exactly, so nothing is in the unsealed tail and nothing is lost.
TEST(persistence_service, nak_repair_served_from_archive_after_revive)
{
    network net(5);
    auto& primary = net.add_host("primary");
    auto& dst = net.add_host("dst");
    link_config lossy;
    lossy.rate = data_rate::from_gbps(10);
    lossy.propagation = 500_us;
    lossy.drop_probability = 0.05;
    net.connect_simplex(primary, dst, lossy);
    link_config back = lossy;
    back.drop_probability = 0.0;
    net.connect_simplex(dst, primary, back);
    net.compute_routes();

    stack s_primary(primary, net.ids());
    stack s_dst(dst, net.ids());

    daq::archive_limits limits;
    limits.chunk_records = 8; // 200 records = 25 full chunks, all sealed
    dtn::durable_store store(limits);

    buffer_service_config pcfg;
    pcfg.next_hop = dst.address();
    pcfg.assign_sequence_locally = true;
    pcfg.persist = &store;
    buffer_service svc(s_primary, pcfg);

    receiver_config rcfg;
    rcfg.nak_retry = 3_ms;
    rcfg.max_nak_attempts = 6;
    rcfg.failover_attempts = 0;
    receiver rx(s_dst, rcfg);

    constexpr std::uint64_t n = 200;
    for (std::uint64_t i = 0; i < n; ++i) {
        delivered_datagram d;
        d.hdr.experiment = wire::make_experiment_id(wire::experiments::iceberg, 0);
        d.hdr.m.set(wire::feature::timestamped);
        d.hdr.timestamp_ns = 0;
        d.total_payload_bytes = 1000;
        svc.relay(d);
    }

    // Crash and revive in the window between the data burst and the
    // first NAK (which arrives after reorder grace + the return RTT).
    net.sim().schedule_at(sim_time{800000}, [&svc] { svc.crash(); });
    net.sim().schedule_at(sim_time{900000}, [&svc] {
        EXPECT_EQ(svc.buffer().entries(), 0u); // memory really was wiped
        EXPECT_EQ(svc.revive(), 200u);
        EXPECT_EQ(svc.buffer().entries(), 200u);
    });
    net.sim().run();

    // Repairs happened, and only the archive could have supplied them.
    EXPECT_GT(svc.stats().nak_requests, 0u);
    EXPECT_GT(svc.stats().retransmitted, 0u);
    EXPECT_EQ(svc.stats().unavailable, 0u);
    EXPECT_EQ(svc.stats().persisted, n);
    EXPECT_EQ(svc.stats().crashes, 1u);
    EXPECT_EQ(svc.stats().tail_lost, 0u);
    EXPECT_EQ(svc.stats().recovered_records, n);
    EXPECT_EQ(svc.stats().revivals, 1u);

    // Loss actually occurred and everything was recovered exactly once.
    EXPECT_GT(rx.stats().recovered, 0u);
    EXPECT_EQ(rx.stats().datagrams, n);
    EXPECT_EQ(rx.stats().duplicates, 0u);
    EXPECT_EQ(rx.stats().given_up, 0u);
    EXPECT_EQ(rx.outstanding_gaps(), 0u);
}

// With a coarser chunk (64 records over 200 appends) the crash drops the
// 8-record unsealed tail. Delivery accounting must stay exact: every
// sequence is either delivered or given up, never both, never neither —
// and any give-up traces back to a NAK the revived buffer could not
// serve (counted `unavailable`), not to silent loss.
TEST(persistence_service, unsealed_tail_loss_is_bounded_and_accounted)
{
    network net(5);
    auto& primary = net.add_host("primary");
    auto& dst = net.add_host("dst");
    link_config lossy;
    lossy.rate = data_rate::from_gbps(10);
    lossy.propagation = 500_us;
    lossy.drop_probability = 0.05;
    net.connect_simplex(primary, dst, lossy);
    link_config back = lossy;
    back.drop_probability = 0.0;
    net.connect_simplex(dst, primary, back);
    net.compute_routes();

    stack s_primary(primary, net.ids());
    stack s_dst(dst, net.ids());

    daq::archive_limits limits;
    limits.chunk_records = 64; // 200 = 3 sealed chunks + 8-record tail
    dtn::durable_store store(limits);

    buffer_service_config pcfg;
    pcfg.next_hop = dst.address();
    pcfg.assign_sequence_locally = true;
    pcfg.persist = &store;
    buffer_service svc(s_primary, pcfg);

    receiver_config rcfg;
    rcfg.nak_retry = 3_ms;
    rcfg.max_nak_attempts = 6;
    rcfg.failover_attempts = 0;
    receiver rx(s_dst, rcfg);

    constexpr std::uint64_t n = 200;
    for (std::uint64_t i = 0; i < n; ++i) {
        delivered_datagram d;
        d.hdr.experiment = wire::make_experiment_id(wire::experiments::iceberg, 0);
        d.hdr.m.set(wire::feature::timestamped);
        d.hdr.timestamp_ns = 0;
        d.total_payload_bytes = 1000;
        svc.relay(d);
    }
    net.sim().schedule_at(sim_time{800000}, [&svc] { svc.crash(); });
    net.sim().schedule_at(sim_time{900000}, [&svc] { svc.revive(); });
    net.sim().run();

    EXPECT_EQ(svc.stats().tail_lost, 8u);
    EXPECT_EQ(svc.stats().recovered_records, n - 8);
    // Exactly-once accounting over the whole sequence space.
    EXPECT_EQ(rx.stats().datagrams + rx.stats().given_up, n);
    EXPECT_EQ(rx.stats().duplicates, 0u);
    EXPECT_EQ(rx.outstanding_gaps(), 0u);
    // A give-up can only stem from a NAKed sequence the buffer no longer
    // had (it fell in the lost tail); the buffer reported each refusal.
    if (rx.stats().given_up > 0) {
        EXPECT_GT(svc.stats().unavailable, 0u);
    }
}

// ------------------------------------- fault hooks driving crash/revive

namespace {

/// The fault-hook interplay rig: primary buffer (persisted, relaying
/// over a lossy span), duplication-fed secondary tap holding a partial
/// copy, receiver with failover. The blackout hook crashes the primary's
/// software; the restore hook revives it from the archive and
/// re-advertises, which fails the receiver back.
struct hook_rig {
    network net;
    host* primary;
    host* dst;
    host* secondary;
    std::unique_ptr<stack> s_primary, s_dst, s_secondary;
    dtn::durable_store store;
    std::unique_ptr<buffer_service> svc, tap;
    std::unique_ptr<receiver> rx;
    fault_scheduler faults;

    static daq::archive_limits store_limits()
    {
        daq::archive_limits l;
        l.chunk_records = 8;
        return l;
    }

    explicit hook_rig(std::uint64_t seed)
        : net(seed), store(store_limits()), faults(net.sim())
    {
        primary = &net.add_host("primary");
        dst = &net.add_host("dst");
        secondary = &net.add_host("secondary");
        link_config lossy;
        lossy.rate = data_rate::from_gbps(10);
        lossy.propagation = 500_us;
        lossy.drop_probability = 0.05;
        net.connect_simplex(*primary, *dst, lossy);
        link_config back = lossy;
        back.drop_probability = 0.0;
        net.connect_simplex(*dst, *primary, back);
        net.connect(*dst, *secondary, link_config{});
        net.compute_routes();

        s_primary = std::make_unique<stack>(*primary, net.ids());
        s_dst = std::make_unique<stack>(*dst, net.ids());
        s_secondary = std::make_unique<stack>(*secondary, net.ids());

        buffer_service_config pcfg;
        pcfg.next_hop = dst->address();
        pcfg.assign_sequence_locally = true;
        pcfg.secondary_buffer = secondary->address();
        pcfg.persist = &store;
        svc = std::make_unique<buffer_service>(*s_primary, pcfg);

        buffer_service_config scfg;
        scfg.tap_only = true;
        tap = std::make_unique<buffer_service>(*s_secondary, scfg);

        receiver_config rcfg;
        rcfg.nak_retry = 3_ms;
        rcfg.nak_retry_cap = 40_ms;
        rcfg.max_nak_attempts = 8;
        rcfg.failover_attempts = 2;
        rx = std::make_unique<receiver>(*s_dst, rcfg);
        s_dst->set_advert_handler([this](const wire::buffer_advert_body& a) {
            if (a.secondary_addr != 0) rx->set_fallback_buffer(a.secondary_addr);
            rx->note_buffer_available(a.buffer_addr);
        });
        svc->advertise(dst->address());
    }

    /// Feeds `n` messages to the primary; the tap sees all of them
    /// except sequences [hole_first, hole_last] — losses in that range
    /// are recoverable only from the (revived) primary.
    void feed(std::uint64_t n, std::uint64_t hole_first, std::uint64_t hole_last)
    {
        for (std::uint64_t i = 0; i < n; ++i) {
            delivered_datagram d;
            d.hdr.experiment = wire::make_experiment_id(wire::experiments::iceberg, 0);
            d.hdr.m.set(wire::feature::timestamped);
            d.hdr.timestamp_ns = 0;
            d.total_payload_bytes = 1000;
            svc->relay(d);
            if (i < hole_first || i > hole_last) tap->relay(d);
        }
    }
};

} // namespace

// Kill-and-revive through the fault scheduler's lifecycle hooks: the
// blackout crashes the primary mid-run, the receiver fails over to the
// partial tap, backs off on the tap's unavailable range, and — restored
// mid-backoff — fails back to the revived primary, which serves the
// hole from archive-recovered records. Zero loss, zero duplicates.
TEST(persistence_hooks, restore_mid_nak_backoff_fails_back_and_repairs_from_archive)
{
    hook_rig rig(5);
    rig.faults.on_blackout(*rig.primary, [&rig] { rig.svc->crash(); });
    rig.faults.on_restore(*rig.primary,
                          [&rig] { rig.svc->revive(rig.dst->address()); });

    constexpr std::uint64_t n = 300;
    rig.feed(n, 100, 149); // the tap never saw sequences 100..149

    // Blackout before any NAK can arrive; restore while the receiver is
    // deep in backoff against the tap's unavailable range.
    rig.faults.blackout_node(*rig.primary, sim_time{1000});
    rig.faults.restore_node(*rig.primary, sim_time{40000000});
    rig.net.sim().run();

    // Fault lifecycle fired exactly once each way.
    EXPECT_EQ(rig.faults.stats().node_blackouts, 1u);
    EXPECT_EQ(rig.faults.stats().node_restores, 1u);
    EXPECT_EQ(rig.svc->stats().crashes, 1u);
    EXPECT_EQ(rig.svc->stats().revivals, 1u);
    EXPECT_GT(rig.svc->stats().recovered_records, 0u);

    // The receiver failed over to the tap, then failed back on the
    // revived primary's re-advertisement.
    EXPECT_EQ(rig.rx->stats().buffer_failovers, 1u);
    EXPECT_EQ(rig.rx->stats().buffer_failbacks, 1u);

    // The tap repaired what it had; the hole was repaired by the revived
    // primary from the archive (its NAK handling all post-revive: every
    // pre-revive NAK hit a blacked-out node).
    EXPECT_GT(rig.tap->stats().retransmitted, 0u);
    EXPECT_GT(rig.tap->stats().unavailable, 0u);
    EXPECT_GT(rig.svc->stats().nak_requests, 0u);
    EXPECT_GT(rig.svc->stats().retransmitted, 0u);

    EXPECT_EQ(rig.rx->stats().datagrams, n);
    EXPECT_EQ(rig.rx->stats().duplicates, 0u);
    EXPECT_EQ(rig.rx->stats().given_up, 0u);
    EXPECT_EQ(rig.rx->outstanding_gaps(), 0u);
    EXPECT_GT(rig.primary->blackout_dropped(), 0u); // the backed-off NAKs
}

// Blackout arriving while a retransmission is in flight: the blackout
// gates ingress only, so a repair already handed to the primary's egress
// still lands and fills its gap — once. Later repairs come from the tap
// after failover. Nothing is lost or duplicated across the transition.
TEST(persistence_hooks, blackout_during_in_flight_retransmission_loses_nothing)
{
    hook_rig rig(5);
    rig.faults.on_blackout(*rig.primary, [&rig] { rig.svc->crash(); });

    constexpr std::uint64_t n = 300;
    rig.feed(n, n, n); // no hole: the tap holds everything

    // First NAK round reaches the primary at ~1.2 ms (grace + RTT) and
    // its repairs are serialized immediately; the blackout lands right
    // behind the NAK, while repairs are still draining out the egress.
    rig.faults.blackout_node(*rig.primary, sim_time{1400000});
    rig.net.sim().run();

    // The primary answered the first round before dying.
    EXPECT_GT(rig.svc->stats().nak_requests, 0u);
    EXPECT_GT(rig.svc->stats().retransmitted, 0u);
    EXPECT_EQ(rig.svc->stats().crashes, 1u);

    // Whatever the dead primary could no longer repair failed over.
    EXPECT_EQ(rig.rx->stats().buffer_failovers, 1u);
    EXPECT_GT(rig.tap->stats().retransmitted, 0u);

    EXPECT_EQ(rig.rx->stats().datagrams, n);
    EXPECT_EQ(rig.rx->stats().duplicates, 0u);
    EXPECT_EQ(rig.rx->stats().given_up, 0u);
    EXPECT_EQ(rig.rx->outstanding_gaps(), 0u);
}

// Double blackout / double restore are idempotent end to end: the
// fault stats count genuine transitions only, and the lifecycle hooks
// (and hence crash/revive) fire once per genuine transition.
TEST(persistence_hooks, double_blackout_and_restore_are_idempotent)
{
    hook_rig rig(5);
    std::uint64_t blackouts = 0, restores = 0;
    rig.faults.on_blackout(*rig.primary, [&] {
        blackouts++;
        rig.svc->crash();
    });
    rig.faults.on_restore(*rig.primary, [&] {
        restores++;
        rig.svc->revive(rig.dst->address());
    });

    rig.feed(100, 100, 100);
    rig.faults.blackout_node(*rig.primary, sim_time{1000});
    rig.faults.blackout_node(*rig.primary, sim_time{2000});  // already dark
    rig.faults.restore_node(*rig.primary, sim_time{20000000});
    rig.faults.restore_node(*rig.primary, sim_time{21000000}); // already up
    rig.net.sim().run();

    EXPECT_EQ(blackouts, 1u);
    EXPECT_EQ(restores, 1u);
    EXPECT_EQ(rig.faults.stats().node_blackouts, 1u);
    EXPECT_EQ(rig.faults.stats().node_restores, 1u);
    EXPECT_EQ(rig.svc->stats().crashes, 1u);
    EXPECT_EQ(rig.svc->stats().revivals, 1u);
    // Stat identity: every blackout was eventually restored.
    EXPECT_EQ(rig.faults.stats().node_blackouts, rig.faults.stats().node_restores);
    EXPECT_EQ(rig.rx->stats().given_up, 0u);
    EXPECT_EQ(rig.rx->stats().datagrams, 100u);
    EXPECT_EQ(rig.rx->stats().duplicates, 0u);
}

// ------------------------------------- archive_reader input hardening

namespace {

/// A small but structurally rich blob: two datasets, multiple chunks,
/// file and dataset attributes.
std::vector<std::uint8_t> make_fuzz_blob()
{
    daq::archive_limits limits;
    limits.chunk_records = 4;
    daq::archive_writer w(limits);
    const auto a = wire::make_experiment_id(1, 0);
    const auto b = wire::make_experiment_id(2, 3);
    w.set_attribute("facility", "fuzz-site");
    for (std::uint64_t i = 0; i < 10; ++i) {
        daq::archived_record r;
        r.sequence = i;
        r.timestamp_ns = i * 10;
        r.size_bytes = 64;
        r.payload.assign(i, static_cast<std::uint8_t>(i));
        w.append(a, r);
        if (i < 3) w.append(b, std::move(r));
    }
    w.set_dataset_attribute(a, "detector", "fuzz-tpc");
    return w.finalize();
}

/// Exercises every read path of an opened reader; the fuzz contract is
/// only "no crash, no OOB" — values are unconstrained.
void drain_reader(const daq::archive_reader& r)
{
    for (const auto id : r.dataset_ids()) {
        const auto all = r.read_all(id);
        (void)all;
        (void)r.read_at(id, 0);
        (void)r.read_at(id, r.record_count(id));
        (void)r.dataset_attribute(id, "detector");
    }
    (void)r.attribute("facility");
    (void)r.attributes();
}

} // namespace

// Every single-byte corruption either fails open() or yields a reader
// whose reads complete without crashing (the per-chunk CRC catches data
// corruption; index/superblock corruption must fail closed).
TEST(archive_fuzz, every_single_byte_flip_is_handled)
{
    const auto blob = make_fuzz_blob();
    for (std::size_t i = 0; i < blob.size(); ++i) {
        auto mutated = blob;
        mutated[i] ^= 0xff;
        const auto r = daq::archive_reader::open(std::move(mutated));
        if (r.has_value()) drain_reader(*r);
    }
}

// Truncation at every possible length fails closed: the index footer
// lives at the end, so no proper prefix is a valid archive.
TEST(archive_fuzz, every_truncation_fails_closed)
{
    const auto blob = make_fuzz_blob();
    for (std::size_t len = 0; len < blob.size(); ++len) {
        auto truncated = blob;
        truncated.resize(len);
        EXPECT_FALSE(daq::archive_reader::open(std::move(truncated)).has_value())
            << "prefix of length " << len << " opened";
    }
}

// Seeded random mutations (1-8 bytes per round, arbitrary values,
// including the length-bearing index fields): open + drain never
// crashes or reads out of bounds.
TEST(archive_fuzz, random_multibyte_mutations_never_crash)
{
    const auto blob = make_fuzz_blob();
    rng r(4242);
    for (int round = 0; round < 4000; ++round) {
        auto mutated = blob;
        const auto edits = static_cast<std::size_t>(r.uniform_int(1, 8));
        for (std::size_t e = 0; e < edits; ++e) {
            const auto at = static_cast<std::size_t>(
                r.uniform_int(0, static_cast<std::uint32_t>(mutated.size() - 1)));
            mutated[at] = static_cast<std::uint8_t>(r.uniform_int(0, 255));
        }
        const auto reader = daq::archive_reader::open(std::move(mutated));
        if (reader.has_value()) drain_reader(*reader);
    }
}

// Adversarial tiny inputs: empty, magic-only, and a superblock whose
// index offset points at every possible position (in and out of range).
TEST(archive_fuzz, hostile_superblocks_fail_closed)
{
    EXPECT_FALSE(daq::archive_reader::open({}).has_value());

    const auto blob = make_fuzz_blob();
    auto header_only = blob;
    header_only.resize(18); // magic + version + index offset, nothing else
    EXPECT_FALSE(daq::archive_reader::open(std::move(header_only)).has_value());

    for (std::uint64_t off = 0; off < blob.size() + 16; ++off) {
        auto mutated = blob;
        for (int i = 0; i < 8; ++i) // big-endian patch of the index offset
            mutated[10 + i] = static_cast<std::uint8_t>(off >> (56 - 8 * i));
        const auto r = daq::archive_reader::open(std::move(mutated));
        if (r.has_value()) drain_reader(*r);
    }
}

// --------------------------------------------- run recorder / replayer

TEST(run_record, metrics_and_report_round_trip_byte_identical)
{
    telemetry::metrics_registry reg;
    reg.get_counter("persistence_demo", {{"phase", "revive"}}).inc(123456789);
    reg.get_gauge("another_metric").set(-7);
    reg.get_counter("zero_counter"); // zero-valued rows must round-trip too
    const auto live_csv = reg.to_csv();

    telemetry::run_recorder rec("unit", 99);
    rec.capture_metrics(reg);
    rec.capture_report("report,line\n1,2\n");
    auto blob = rec.finalize();

    auto rep = telemetry::run_replayer::open(std::move(blob));
    ASSERT_TRUE(rep.has_value());
    EXPECT_TRUE(rep->verify());
    EXPECT_EQ(rep->scenario(), "unit");
    EXPECT_EQ(rep->seed(), 99u);
    EXPECT_EQ(rep->metrics_csv(), live_csv);
    EXPECT_EQ(rep->report_csv(), "report,line\n1,2\n");
}

// The wire-event ring and its interned site table round-trip through the
// archive: replayed events match what was emitted, and a rebuilt flight
// recorder renders the identical timeline. (Events are emitted directly
// on the recorder object, so this holds even when MMTP_TRACING is 0.)
TEST(run_record, wire_events_and_sites_round_trip)
{
    trace::flight_recorder fr(64);
    const auto s1 = fr.site("wan-primary");
    const auto s2 = fr.site("rx");
    fr.emit(1000, s1, trace::hop::link_enqueue, 42, 1500, trace::reason::none);
    fr.emit(2000, s1, trace::hop::link_drop, 42, 1500, trace::reason::queue_full);
    fr.emit(3000, s2, trace::hop::mmtp_deliver, 43, 7, trace::reason::none);

    telemetry::run_recorder rec("unit", 1);
    rec.capture_trace(fr);
    auto blob = rec.finalize();

    auto rep = telemetry::run_replayer::open(std::move(blob));
    ASSERT_TRUE(rep.has_value());
    EXPECT_TRUE(rep->verify());

    const auto events = rep->wire_events();
    ASSERT_EQ(events.size(), 3u);
    EXPECT_EQ(events[0].at_ns, 1000);
    EXPECT_EQ(events[0].packet_id, 42u);
    EXPECT_EQ(events[0].site, s1);
    EXPECT_EQ(events[1].kind, trace::hop::link_drop);
    EXPECT_EQ(events[1].why, trace::reason::queue_full);
    EXPECT_EQ(events[2].arg, 7u);

    trace::flight_recorder rebuilt(64);
    rep->rebuild_flight_recorder(rebuilt);
    EXPECT_EQ(rebuilt.site_name(s1), "wan-primary");
    EXPECT_EQ(rebuilt.site_name(s2), "rx");
    EXPECT_EQ(rebuilt.format_timeline(rebuilt.events()),
              fr.format_timeline(fr.events()));
}

TEST(run_record, malformed_recordings_fail_closed)
{
    EXPECT_FALSE(telemetry::run_replayer::open({}).has_value());
    EXPECT_FALSE(
        telemetry::run_replayer::open({0xde, 0xad, 0xbe, 0xef}).has_value());

    telemetry::run_recorder rec("unit", 1);
    telemetry::metrics_registry reg;
    reg.get_counter("m").inc();
    rec.capture_metrics(reg);
    auto blob = rec.finalize();
    blob.resize(blob.size() / 2);
    EXPECT_FALSE(telemetry::run_replayer::open(std::move(blob)).has_value());
}
