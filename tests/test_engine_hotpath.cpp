// Regression tests pinned to the zero-copy engine rework: deterministic
// event ordering across the heap/slab replacement, per-band queue drop
// accounting, and link stats reconciliation after the tx/loss split.
// These lock in observable behaviour the rest of the repo (and every
// seeded integration run) depends on.
#include "common/inline_task.hpp"
#include "netsim/engine.hpp"
#include "netsim/fault.hpp"
#include "netsim/network.hpp"
#include "netsim/queue.hpp"

#include <gtest/gtest.h>

#include <vector>

using namespace mmtp;
using namespace mmtp::netsim;
using namespace mmtp::literals;

namespace {

packet make_pkt(std::uint64_t id, std::uint64_t size)
{
    packet p;
    p.id = id;
    p.virtual_payload = size;
    return p;
}

/// Minimal sink node that counts arrivals.
class counting_sink final : public node {
public:
    using node::node;
    void receive(packet&& p, unsigned) override
    {
        arrivals++;
        if (p.corrupted) corrupted++;
    }
    std::uint64_t arrivals{0};
    std::uint64_t corrupted{0};
};

} // namespace

// -------------------------------------------------- engine determinism

// Events scheduled for the same instant must run in insertion order even
// when interleaved with earlier/later timestamps. This pins the (time,
// seq) contract the d-ary heap must honour despite not being a stable
// structure on its own.
TEST(engine_determinism, same_timestamp_keeps_insertion_order)
{
    engine e;
    std::vector<int> order;
    // Interleave three timestamps so heap sifts cross same-time groups.
    for (int i = 0; i < 32; ++i) {
        e.schedule_at(sim_time{200}, [&order, i] { order.push_back(200 + i); });
        e.schedule_at(sim_time{100}, [&order, i] { order.push_back(100 + i); });
        e.schedule_at(sim_time{300}, [&order, i] { order.push_back(300 + i); });
    }
    e.run();
    ASSERT_EQ(order.size(), 96u);
    for (int i = 0; i < 32; ++i) {
        EXPECT_EQ(order[i], 100 + i);
        EXPECT_EQ(order[32 + i], 200 + i);
        EXPECT_EQ(order[64 + i], 300 + i);
    }
}

// A callback that schedules at the current instant runs after everything
// already queued for that instant (its seq is larger), in this same run.
TEST(engine_determinism, reentrant_same_time_runs_last)
{
    engine e;
    std::vector<int> order;
    e.schedule_at(sim_time{10}, [&] {
        order.push_back(0);
        e.schedule_at(sim_time{10}, [&] { order.push_back(2); });
    });
    e.schedule_at(sim_time{10}, [&] { order.push_back(1); });
    e.run();
    EXPECT_EQ(order, (std::vector<int>{0, 1, 2}));
    EXPECT_EQ(e.now().ns, 10);
}

// run_until is inclusive: events at exactly `until` execute.
TEST(engine_determinism, run_until_executes_events_at_boundary)
{
    engine e;
    int hits = 0;
    e.schedule_at(sim_time{1000}, [&] { hits++; });
    e.schedule_at(sim_time{1001}, [&] { hits += 100; });
    EXPECT_EQ(e.run_until(sim_time{1000}), 1u);
    EXPECT_EQ(hits, 1);
    EXPECT_EQ(e.now().ns, 1000);
    EXPECT_EQ(e.pending(), 1u);
}

// When the queue drains before `until`, the clock still advances to
// `until` — callers rely on this to stitch consecutive run_until calls.
TEST(engine_determinism, run_until_advances_clock_when_idle)
{
    engine e;
    e.schedule_at(sim_time{5}, [] {});
    e.run_until(sim_time{700});
    EXPECT_EQ(e.now().ns, 700);
    EXPECT_TRUE(e.empty());
}

// The slab recycles slots through a free list; hammer schedule/run cycles
// to make sure recycled slots never reorder or lose events.
TEST(engine_determinism, slot_recycling_preserves_order)
{
    engine e;
    std::uint64_t executed = 0;
    std::uint64_t last = 0;
    for (int round = 0; round < 50; ++round) {
        for (std::uint64_t i = 0; i < 100; ++i) {
            const std::uint64_t tag = round * 100 + i;
            e.schedule_in(sim_duration{static_cast<std::int64_t>(i % 7)},
                          [&, tag] { executed++; last = tag; });
        }
        e.run();
    }
    EXPECT_EQ(executed, 5000u);
    // Final event of the final round: the largest delay (6 ns) with the
    // highest insertion index i satisfying i % 7 == 6, i.e. i == 97.
    EXPECT_EQ(last, 4997u);
}

// The engine's hottest closure shape (this-pointer + moved packet) must
// stay within inline_task's buffer — compile-time guard against capture
// growth silently reintroducing per-event allocations.
TEST(engine_determinism, hot_closures_stay_inline)
{
    packet p = make_pkt(1, 1000);
    auto arrival = [q = std::move(p), n = (void*)nullptr]() mutable { (void)q; };
    static_assert(inline_task::stored_inline<decltype(arrival)>);
    SUCCEED();
}

// ------------------------------------------------- queue drop accounting

TEST(queue_stats, per_band_drop_accounting)
{
    // Band = low bit of packet id; 1000-byte capacity per band.
    priority_queue_disc q(2, 1000, [](const packet& p) {
        return static_cast<unsigned>(p.id & 1);
    });

    EXPECT_TRUE(q.enqueue(make_pkt(0, 600))); // band 0
    EXPECT_TRUE(q.enqueue(make_pkt(1, 900))); // band 1
    EXPECT_FALSE(q.enqueue(make_pkt(2, 600))); // band 0 full -> drop
    EXPECT_FALSE(q.enqueue(make_pkt(3, 200))); // band 1 full -> drop
    EXPECT_TRUE(q.enqueue(make_pkt(4, 300))); // band 0 fits again

    EXPECT_EQ(q.band_dropped(0), 1u);
    EXPECT_EQ(q.band_dropped_bytes(0), 600u);
    EXPECT_EQ(q.band_dropped(1), 1u);
    EXPECT_EQ(q.band_dropped_bytes(1), 200u);
    // Aggregate stats reconcile with the per-band view.
    EXPECT_EQ(q.stats().dropped, 2u);
    EXPECT_EQ(q.stats().dropped_bytes, 800u);
    EXPECT_EQ(q.stats().enqueued, 3u);
}

TEST(queue_stats, peak_bytes_tracks_high_water_mark)
{
    drop_tail_queue q(10000);
    EXPECT_TRUE(q.enqueue(make_pkt(1, 4000)));
    EXPECT_TRUE(q.enqueue(make_pkt(2, 5000)));
    EXPECT_EQ(q.stats().peak_bytes, 9000u);
    packet out;
    EXPECT_TRUE(q.dequeue_into(out));
    EXPECT_TRUE(q.dequeue_into(out));
    EXPECT_EQ(q.byte_depth(), 0u);
    // Peak is sticky.
    EXPECT_EQ(q.stats().peak_bytes, 9000u);
    EXPECT_TRUE(q.enqueue(make_pkt(3, 1000)));
    EXPECT_EQ(q.stats().peak_bytes, 9000u);
}

TEST(queue_stats, would_accept_matches_enqueue_outcome)
{
    drop_tail_queue q(1000);
    packet big = make_pkt(1, 800);
    EXPECT_TRUE(q.would_accept(big));
    EXPECT_TRUE(q.enqueue(std::move(big)));
    packet more = make_pkt(2, 300);
    EXPECT_FALSE(q.would_accept(more));
    EXPECT_FALSE(q.enqueue(std::move(more)));
}

// --------------------------------------------- link stats reconciliation

// With random loss enabled, every packet the serializer dequeued is
// accounted exactly once: tx_packets + dropped_random == dequeued, and
// the sink sees exactly tx_packets arrivals (no corruption configured).
TEST(link_stats, tx_and_random_drops_reconcile_with_dequeues)
{
    network net(7);
    auto& sink = net.emplace<counting_sink>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10);
    cfg.propagation = 1_us;
    cfg.drop_probability = 0.25;
    const auto port = net.connect_simplex(src, sink, cfg);

    constexpr std::uint64_t n = 2000;
    for (std::uint64_t i = 0; i < n; ++i)
        src.egress(port).send(make_pkt(i + 1, 1000));
    net.sim().run();

    const auto& ls = src.egress(port).stats();
    const auto& qs = src.egress(port).queue_statistics();
    EXPECT_EQ(qs.dequeued, n);
    EXPECT_EQ(ls.tx_packets + ls.dropped_random, qs.dequeued);
    EXPECT_EQ(ls.tx_bytes + ls.dropped_random_bytes, n * 1000);
    EXPECT_EQ(sink.arrivals, ls.tx_packets);
    EXPECT_EQ(sink.corrupted, 0u);
    // With p=0.25 over 2000 trials, both outcomes must occur.
    EXPECT_GT(ls.dropped_random, 0u);
    EXPECT_GT(ls.tx_packets, 0u);
    // Lost packets still occupied the serializer: busy covers all dequeues.
    EXPECT_EQ(ls.busy.ns, static_cast<std::int64_t>(n) * 800); // 800 ns/kB at 10G
}

// The reconciliation identity must survive fault injection: down-drops
// happen before the queue (their own counter), so with a flap storm and
// random loss active it still holds that every dequeued packet is either
// tx'd or randomly dropped — and every send() is accounted exactly once.
TEST(link_stats, reconciliation_holds_with_faults_active)
{
    network net(11);
    auto& sink = net.emplace<counting_sink>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10);
    cfg.propagation = 1_us;
    cfg.drop_probability = 0.15;
    const auto port = net.connect_simplex(src, sink, cfg);
    auto& l = src.egress(port);

    fault_scheduler faults(net.sim());
    faults.flap_link(l, sim_time{100000}, sim_duration{150000}, sim_duration{250000}, 4);

    constexpr std::uint64_t n = 2000;
    for (std::uint64_t i = 0; i < n; ++i) {
        net.sim().schedule_at(sim_time{static_cast<std::int64_t>(i) * 1000},
                              [&l, i] { l.send(make_pkt(i + 1, 1000)); });
    }
    net.sim().run();

    const auto& ls = l.stats();
    const auto& qs = l.queue_statistics();
    // The storm bit: some sends were refused, some dequeues were lost.
    EXPECT_GT(ls.dropped_down, 0u);
    EXPECT_GT(ls.dropped_random, 0u);
    // PR-1 identity, unchanged by faults: dequeued splits into tx + random.
    EXPECT_EQ(ls.tx_packets + ls.dropped_random, qs.dequeued);
    EXPECT_EQ(ls.tx_bytes + ls.dropped_random_bytes, qs.dequeued * 1000);
    // Down-drops are refused pre-queue: enqueues + passthroughs account
    // for exactly the sends that were not refused, and nothing stranded.
    EXPECT_EQ(qs.enqueued + ls.dropped_down, n);
    EXPECT_EQ(qs.dropped, 0u);
    EXPECT_EQ(l.queue_depth_packets(), 0u); // final repair drained it
    EXPECT_EQ(ls.dropped_down_bytes, ls.dropped_down * 1000);
    EXPECT_EQ(sink.arrivals, ls.tx_packets);
}

// The idle-link cut-through must be invisible in the statistics: a lone
// packet through an empty queue still counts as enqueued and dequeued.
TEST(link_stats, cutthrough_keeps_queue_stats_consistent)
{
    network net(3);
    auto& sink = net.emplace<counting_sink>("sink");
    auto& src = net.add_host("src");
    link_config cfg;
    cfg.rate = data_rate::from_gbps(10);
    cfg.propagation = sim_duration::zero();
    const auto port = net.connect_simplex(src, sink, cfg);

    src.egress(port).send(make_pkt(1, 1250));
    net.sim().run();
    src.egress(port).send(make_pkt(2, 1250)); // serializer idle again
    net.sim().run();

    const auto& qs = src.egress(port).queue_statistics();
    EXPECT_EQ(qs.enqueued, 2u);
    EXPECT_EQ(qs.dequeued, 2u);
    EXPECT_EQ(qs.dropped, 0u);
    EXPECT_EQ(qs.peak_bytes, 1250u);
    EXPECT_EQ(sink.arrivals, 2u);
    EXPECT_EQ(net.sim().now().ns, 2000); // 1 us serialization each
}
