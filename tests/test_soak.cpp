// Soak-scale tests (ctest label `soak`): the facility drill itself —
// five concurrent experiments over shared spans and DTNs under the
// fault-and-overload storm — plus the counter-width and bounded-growth
// properties that only matter at soak scale: u48 sequence rollover into
// the u16 stream epoch, the full 24-bit cfg_data width, multi-million
// sequence gaps, register-cell collision freedom for the facility
// stream set, and receiver stream retirement.
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "pnet/element.hpp"
#include "pnet/stages.hpp"
#include "scenario/soak.hpp"
#include "wire/build.hpp"
#include "wire/header.hpp"

#include <gtest/gtest.h>

#include <array>
#include <memory>
#include <set>
#include <string>

using namespace mmtp;
using namespace mmtp::core;
using namespace mmtp::netsim;
using namespace mmtp::literals;

// ------------------------------------------------------ the soak drill

// The acceptance run: 5 experiments × 4 slices × 500 messages with the
// full storm script, ending whole — everything delivered exactly once,
// zero give-ups, every control-plane layer demonstrably exercised — and
// byte-identical telemetry on a same-seed rerun even though every
// hot-path lookup underneath is hashed.
TEST(soak_drill, smoke_run_is_whole_and_deterministic)
{
    const auto cfg = scenario::soak_smoke_config();
    const auto r = scenario::run_soak_drill(cfg);

    // Wholeness: every message of every experiment, exactly once.
    EXPECT_EQ(r.messages_sent, 10000u);
    EXPECT_EQ(r.delivered, r.messages_sent);
    EXPECT_TRUE(r.all_delivered);
    EXPECT_TRUE(r.all_experiments_complete);
    ASSERT_EQ(r.delivered_by_experiment.size(), scenario::soak_experiments);
    for (const auto& [exp, n] : r.delivered_by_experiment)
        EXPECT_EQ(n, cfg.slices_per_experiment * cfg.messages_per_stream)
            << "experiment " << exp;
    EXPECT_EQ(r.rx.duplicates, 0u);
    EXPECT_EQ(r.rx.given_up, 0u);

    // The storm actually bit, and recovery answered it.
    EXPECT_GT(r.wan_primary.corrupted, 0u);
    EXPECT_GT(r.wan_backup.corrupted, 0u);
    EXPECT_GT(r.rx.recovered, 0u);
    EXPECT_TRUE(r.rerouted_all_trunks);
    EXPECT_EQ(r.planner.flows_rerouted, scenario::soak_experiments);
    EXPECT_TRUE(r.recovered_after_reroute);

    // DTN2 kill-and-revive: in-memory state died, the durable store's
    // sealed chunks came back.
    EXPECT_EQ(r.dtn2.crashes, 1u);
    EXPECT_EQ(r.dtn2.revivals, 1u);
    EXPECT_GT(r.dtn2.recovered_records, 0u);
    EXPECT_GT(r.dtn2.relayed, 0u); // the duplication tap received clones

    // All five closed-loop engines reacted in the same run as the fault
    // subsystem (the drill's integration claim).
    EXPECT_GT(r.loss_triggers, 0u);
    EXPECT_EQ(r.health_triggers, scenario::soak_experiments);
    EXPECT_GE(r.reconfigs_committed, scenario::soak_experiments);
    EXPECT_GT(r.restores, 0u);

    // Churn ran against the pressure gate and the deferred queue drained
    // fully: requests = releases, parked = admitted, nothing leaked.
    EXPECT_GT(r.churn_requests, 0u);
    EXPECT_EQ(r.churn_released, r.churn_requests);
    EXPECT_GT(r.planner.admissions_deferred, 0u);
    EXPECT_EQ(r.planner.deferred_admitted, r.planner.admissions_deferred);

    // Bounded growth: every completed stream retired, every pressure
    // suppression record pruned.
    EXPECT_EQ(r.streams_retired, r.streams_seen);
    EXPECT_EQ(r.streams_live_at_end, 0u);
    EXPECT_GT(r.signals_pruned, 0u);

    // Same seed, same bytes — the determinism contract of DESIGN.md §14.
    const auto rerun = scenario::run_soak_drill(cfg);
    EXPECT_EQ(r.csv, rerun.csv);
    EXPECT_EQ(r.metrics_csv, rerun.metrics_csv);
}

// ------------------------------------------------- sequencing rollover

namespace {

pnet::packet_context make_ctx(const wire::header& h)
{
    pnet::packet_context ctx;
    ctx.pkt.headers = wire::build_mmtp_over_ipv4(0x02, 0x0a000001, 0x0a000002, h, 512);
    ctx.pkt.virtual_payload = 512;
    ctx.pkt.id = 1;
    EXPECT_TRUE(pnet::parse_context(ctx));
    return ctx;
}

} // namespace

// The element's sequence register is a u64 cell split 48/16 on the wire:
// the low 48 bits are the sequence, the high 16 the stream epoch. At
// soak message counts the 48-bit space is still far away, so the
// boundary is probed by synthetic fast-forward: park the cell one short
// of 2^48 and let two packets cross it. The sequence must wrap to 0
// exactly as the epoch increments — not saturate, not bleed into the
// epoch bits.
TEST(counter_width, sequencing_u48_rolls_over_into_epoch)
{
    pnet::mode_transition_stage stage;
    pnet::mode_rule r;
    r.match_any_experiment = true;
    r.set_bits = wire::feature_bit(wire::feature::sequencing);
    stage.add_rule(r);

    pnet::element_state st;
    const auto id = wire::make_experiment_id(wire::experiments::cms_l1, 0);
    st.create_register("mode_seq", pnet::mode_transition_stage::seq_register_cells);
    st.reg("mode_seq", pnet::mode_transition_stage::seq_cell_of(id)) =
        (1ull << 48) - 1; // fast-forward to the last u48 sequence

    wire::header h;
    h.experiment = id;
    h.m.set(wire::feature::timestamped);
    h.timestamp_ns = 0;

    auto last = make_ctx(h);
    stage.process(last, st);
    ASSERT_TRUE(last.mmtp->sequencing.has_value());
    EXPECT_EQ(last.mmtp->sequencing->sequence, 0xffffffffffffull);
    EXPECT_EQ(last.mmtp->sequencing->epoch, 0u);

    auto wrapped = make_ctx(h);
    stage.process(wrapped, st);
    ASSERT_TRUE(wrapped.mmtp->sequencing.has_value());
    EXPECT_EQ(wrapped.mmtp->sequencing->sequence, 0u);
    EXPECT_EQ(wrapped.mmtp->sequencing->epoch, 1u);
}

// ------------------------------------------------------- cfg_data width

// cfg_data is 24 bits on the wire. Every defined feature bit must
// round-trip through serialize/parse at once (alongside a full-width
// cfg_id), and any of the reserved upper bits must fail parse closed —
// a truncating cast in either direction would pass narrower tests.
TEST(counter_width, cfg_data_full_24_bit_round_trip)
{
    static_assert(wire::known_feature_mask < (1u << 24));

    wire::header h;
    h.m.cfg_id = 0xff;
    h.m.cfg_data = wire::known_feature_mask;
    h.experiment = wire::make_experiment_id(wire::experiments::vera_rubin, 0xfff);
    h.sequencing = wire::sequencing_field{0xffffffffffffull, 0xffff};
    h.retransmission = wire::retransmission_field{0x0a0000ff};
    h.timeliness = wire::timeliness_field{1000, 2000, 0, 0x0a000010};
    h.pacing = wire::pacing_field{40000};
    h.control = wire::control_type::nak;
    h.timestamp_ns = 0xffffffffffffffffull;
    ASSERT_TRUE(h.consistent());

    byte_writer w;
    ASSERT_TRUE(wire::serialize(h, w));
    const auto parsed = wire::parse(w.view());
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(parsed->m.cfg_id, 0xffu);
    EXPECT_EQ(parsed->m.cfg_data, wire::known_feature_mask);
    EXPECT_EQ(parsed->experiment, h.experiment);
    ASSERT_TRUE(parsed->sequencing.has_value());
    EXPECT_EQ(parsed->sequencing->sequence, 0xffffffffffffull);
    EXPECT_EQ(parsed->sequencing->epoch, 0xffffu);

    // Reserved bits up to the top of the 24-bit field fail closed.
    // serialize() itself refuses them, so corrupt the wire bytes: the
    // big-endian u24 cfg_data occupies bytes 1..3 of the core header.
    for (std::uint32_t bit = 9; bit < 24; ++bit) {
        wire::header plain;
        plain.experiment = h.experiment;
        byte_writer bw;
        ASSERT_TRUE(wire::serialize(plain, bw));
        auto bytes = bw.take();
        bytes[1 + (2 - bit / 8)] |= static_cast<std::uint8_t>(1u << (bit % 8));
        EXPECT_FALSE(wire::parse(bytes).has_value()) << "bit " << bit;
    }
}

// --------------------------------------------- receiver counter widths

namespace {

struct rx_rig {
    rx_rig(std::uint64_t seed, receiver_config cfg)
        : net(seed), src(net.add_host("src")), dst(net.add_host("dst"))
    {
        net.connect(src, dst, link_config{});
        net.compute_routes();
        s_src = std::make_unique<stack>(src, net.ids());
        s_dst = std::make_unique<stack>(dst, net.ids());
        rx = std::make_unique<receiver>(*s_dst, cfg);
    }

    void send(wire::experiment_id exp, std::uint64_t seq, std::uint16_t epoch,
              bool recoverable = true)
    {
        wire::header h;
        h.experiment = exp;
        h.m.set(wire::feature::sequencing);
        h.sequencing = wire::sequencing_field{seq, epoch};
        if (recoverable) {
            h.m.set(wire::feature::retransmission);
            h.retransmission = wire::retransmission_field{src.address()};
        }
        s_src->send_datagram(dst.address(), h, {}, 100);
    }

    network net;
    host& src;
    host& dst;
    std::unique_ptr<stack> s_src;
    std::unique_ptr<stack> s_dst;
    std::unique_ptr<receiver> rx;
};

} // namespace

// The stream epoch is u16 and part of the stream key: epoch 65535 and
// epoch 0 of the same experiment are distinct sequence spaces, so the
// same sequence number in each is two deliveries, not a duplicate.
TEST(counter_width, stream_epoch_u16_extremes_are_distinct_streams)
{
    receiver_config cfg;
    cfg.timing.max_attempts = 1;
    rx_rig rig(7, cfg);

    const auto exp = wire::make_experiment_id(wire::experiments::dune, 0);
    rig.send(exp, 0, 0, false);
    rig.send(exp, 0, 0xffff, false);
    rig.net.sim().run();

    EXPECT_EQ(rig.rx->stats().datagrams, 2u);
    EXPECT_EQ(rig.rx->stats().duplicates, 0u);
    EXPECT_EQ(rig.rx->stream_count(), 2u);
}

// A multi-million-sequence gap: the receiver's interval accounting must
// stay O(ranges) and its counters exact when sequence 9 999 999 lands
// right after sequence 0. With an unanswered buffer and a single NAK
// attempt the whole gap is abandoned — given_up must count precisely
// 9 999 998 sequences, with no 32-bit truncation anywhere.
TEST(counter_width, multi_million_sequence_gap_counts_exactly)
{
    receiver_config cfg;
    cfg.timing.reorder_grace = sim_duration{100000};
    cfg.timing.retry_base = 1_ms;
    cfg.timing.max_attempts = 1;
    cfg.timing.failover_attempts = 0;
    rx_rig rig(11, cfg);
    // Observe NAKs at the src-side stack, never answer them.
    std::uint64_t nak_ranges = 0;
    rig.s_src->set_nak_handler(
        [&](const wire::nak_body& b, wire::experiment_id, wire::ipv4_addr) {
            nak_ranges += b.ranges.size();
        });

    const auto exp = wire::make_experiment_id(wire::experiments::mu2e, 3);
    rig.send(exp, 0, 0);
    rig.send(exp, 9999999, 0);
    rig.net.sim().run();

    EXPECT_EQ(rig.rx->stats().datagrams, 2u);
    EXPECT_GT(nak_ranges, 0u);
    EXPECT_EQ(rig.rx->stats().given_up, 9999998u);
    EXPECT_EQ(rig.rx->outstanding_gaps(), 0u);
}

// ------------------------------------------------------ register cells

// The facility stream set — experiments 1..6, a dozen slices each — must
// map to pairwise-distinct sequence register cells; an alias would merge
// two live streams' counters (see seq_cell_of's prime-modulus note).
TEST(soak_streams, seq_register_cells_collision_free)
{
    std::set<std::size_t> cells;
    for (std::uint32_t exp = 1; exp <= 6; ++exp)
        for (std::uint32_t slice = 0; slice < 12; ++slice) {
            const auto id = wire::make_experiment_id(exp, slice);
            EXPECT_TRUE(
                cells.insert(pnet::mode_transition_stage::seq_cell_of(id)).second)
                << "experiment " << exp << " slice " << slice;
        }
    EXPECT_EQ(cells.size(), 72u);
}

// ---------------------------------------------------- stream retirement

// prune_idle retires only streams that are both complete and idle: a
// stream with an outstanding gap survives every sweep until the gap
// resolves, then retires like the rest. Retirement frees the dedup
// state, so long-running facilities don't grow one stream_state per
// (experiment, epoch) forever.
TEST(stream_retirement, prune_retires_complete_idle_streams_only)
{
    receiver_config cfg;
    cfg.timing.reorder_grace = sim_duration{100000};
    cfg.timing.retry_base = 5_ms;
    cfg.timing.max_attempts = 8;
    cfg.timing.failover_attempts = 0;
    rx_rig rig(23, cfg);

    const auto complete = wire::make_experiment_id(wire::experiments::ecce, 0);
    const auto gappy = wire::make_experiment_id(wire::experiments::ecce, 1);
    for (std::uint64_t s = 0; s < 3; ++s) rig.send(complete, s, 0, false);
    rig.send(gappy, 0, 0);
    rig.send(gappy, 2, 0); // sequence 1 missing, NAKs pending for a while
    rig.net.sim().run_until(sim_time{2000000});

    EXPECT_EQ(rig.rx->stream_count(), 2u);
    // Only the complete stream qualifies; the gappy one is mid-recovery.
    EXPECT_EQ(rig.rx->prune_idle(sim_duration{1000000}), 1u);
    EXPECT_EQ(rig.rx->stream_count(), 1u);
    EXPECT_EQ(rig.rx->stats().streams_retired, 1u);

    // The late retransmission closes the gap; now it retires too.
    rig.send(gappy, 1, 0);
    rig.net.sim().run_until(sim_time{20000000});
    EXPECT_EQ(rig.rx->outstanding_gaps(), 0u);
    EXPECT_EQ(rig.rx->prune_idle(sim_duration{1000000}), 1u);
    EXPECT_EQ(rig.rx->stream_count(), 0u);
    EXPECT_EQ(rig.rx->stats().streams_retired, 2u);
    EXPECT_EQ(rig.rx->stats().duplicates, 0u);
}

// ------------------------------------------------ suppression pruning

// The DTN's per-source pressure-suppression records are pruned by
// poll_pressure once they are outside the live engagement and their
// timing.hold quiet period has elapsed — the other unbounded-growth fix
// at soak scale (churning upstream sources would otherwise accrete one
// record each, forever).
TEST(stream_retirement, buffer_signal_records_prune_after_release)
{
    network net(3);
    auto& dtn = net.add_host("dtn");
    std::array<host*, 2> peers{};
    for (std::size_t i = 0; i < peers.size(); ++i) {
        peers[i] = &net.add_host("peer" + std::to_string(i));
        net.connect(dtn, *peers[i], link_config{});
    }
    net.compute_routes();
    stack st(dtn, net.ids());

    buffer_service_config cfg;
    cfg.tap_only = true;
    cfg.timing.hold = 1_ms;
    cfg.buffer.retention = 1_ms; // occupancy decays quickly
    cfg.occupancy_high_bytes = 1000;
    cfg.occupancy_low_bytes = 500;
    buffer_service svc(st, cfg);

    // Cross the high watermark; each distinct source arriving while
    // engaged gets one signal and one suppression record.
    std::uint64_t seq = 0;
    for (int round = 0; round < 2; ++round)
        for (std::size_t i = 0; i < peers.size(); ++i) {
            delivered_datagram d;
            d.hdr.experiment = wire::make_experiment_id(wire::experiments::cms_l1, 0);
            d.hdr.m.set(wire::feature::sequencing);
            d.hdr.sequencing = wire::sequencing_field{seq++, 0};
            d.src = peers[i]->address();
            d.total_payload_bytes = 600;
            svc.relay(d);
        }
    net.sim().run();
    EXPECT_TRUE(svc.pressure_engaged());
    EXPECT_EQ(svc.stats().pressure_signals, peers.size());
    EXPECT_EQ(svc.stats().signals_pruned, 0u);

    // By 5 ms the retention horizon emptied the buffer: the poll releases
    // pressure, and with every hold long expired the records all go.
    net.sim().schedule_at(sim_time{5000000}, [&] { svc.poll_pressure(); });
    net.sim().run();
    EXPECT_FALSE(svc.pressure_engaged());
    EXPECT_EQ(svc.stats().pressure_releases, 1u);
    EXPECT_EQ(svc.stats().signals_pruned, peers.size());
}
