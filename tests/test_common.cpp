// Unit tests for src/common: byte codecs, rng, crc32c, histogram,
// interval_set, and the unit types.
#include "common/bytes.hpp"
#include "common/crc32c.hpp"
#include "common/histogram.hpp"
#include "common/interval_set.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"

#include <gtest/gtest.h>

#include <limits>

using namespace mmtp;
using namespace mmtp::literals;

// ---------------------------------------------------------------- bytes

TEST(bytes, round_trip_all_widths)
{
    byte_writer w;
    w.u8(0xab);
    w.u16(0x1234);
    w.u24(0xabcdef);
    w.u32(0xdeadbeef);
    w.u48(0x0000123456789abcull);
    w.u64(0x1122334455667788ull);

    byte_reader r(w.view());
    EXPECT_EQ(r.u8(), 0xab);
    EXPECT_EQ(r.u16(), 0x1234);
    EXPECT_EQ(r.u24(), 0xabcdefu);
    EXPECT_EQ(r.u32(), 0xdeadbeefu);
    EXPECT_EQ(r.u48(), 0x123456789abcull);
    EXPECT_EQ(r.u64(), 0x1122334455667788ull);
    EXPECT_FALSE(r.failed());
    EXPECT_EQ(r.remaining(), 0u);
}

TEST(bytes, u24_masks_high_bits)
{
    byte_writer w;
    w.u24(0xff123456);
    byte_reader r(w.view());
    EXPECT_EQ(r.u24(), 0x123456u);
}

TEST(bytes, reader_overrun_is_sticky_and_returns_zero)
{
    const std::uint8_t data[2] = {0xff, 0xff};
    byte_reader r(std::span<const std::uint8_t>(data, 2));
    EXPECT_EQ(r.u32(), 0u);
    EXPECT_TRUE(r.failed());
    // subsequent reads also fail, even ones that would fit
    EXPECT_EQ(r.u8(), 0u);
    EXPECT_TRUE(r.failed());
}

TEST(bytes, bytes_view_and_skip)
{
    byte_writer w;
    const std::uint8_t src[4] = {1, 2, 3, 4};
    w.bytes(src);
    w.zeros(2);
    byte_reader r(w.view());
    auto v = r.bytes(3);
    ASSERT_EQ(v.size(), 3u);
    EXPECT_EQ(v[2], 3);
    r.skip(3);
    EXPECT_FALSE(r.failed());
    r.skip(1);
    EXPECT_TRUE(r.failed());
}

TEST(bytes, patch_u16)
{
    byte_writer w;
    w.u16(0);
    w.u8(7);
    w.patch_u16(0, 0xbeef);
    byte_reader r(w.view());
    EXPECT_EQ(r.u16(), 0xbeef);
}

// ------------------------------------------------------------------ rng

TEST(rng, deterministic_for_same_seed)
{
    rng a(123), b(123);
    for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(rng, different_seeds_diverge)
{
    rng a(1), b(2);
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) same++;
    EXPECT_LT(same, 2);
}

TEST(rng, uniform_in_unit_interval)
{
    rng r(7);
    for (int i = 0; i < 1000; ++i) {
        const double u = r.uniform();
        EXPECT_GE(u, 0.0);
        EXPECT_LT(u, 1.0);
    }
}

TEST(rng, uniform_int_bounds_inclusive)
{
    rng r(9);
    bool saw_lo = false, saw_hi = false;
    for (int i = 0; i < 2000; ++i) {
        const auto v = r.uniform_int(5, 8);
        EXPECT_GE(v, 5u);
        EXPECT_LE(v, 8u);
        saw_lo |= v == 5;
        saw_hi |= v == 8;
    }
    EXPECT_TRUE(saw_lo);
    EXPECT_TRUE(saw_hi);
}

TEST(rng, chance_extremes)
{
    rng r(11);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(rng, chance_mid_probability_reasonable)
{
    rng r(13);
    int hits = 0;
    for (int i = 0; i < 10000; ++i)
        if (r.chance(0.3)) hits++;
    EXPECT_NEAR(hits / 10000.0, 0.3, 0.03);
}

TEST(rng, exponential_mean)
{
    rng r(17);
    double sum = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) sum += r.exponential(5.0);
    EXPECT_NEAR(sum / n, 5.0, 0.25);
}

TEST(rng, normal_moments)
{
    rng r(19);
    double sum = 0, sq = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i) {
        const double v = r.normal(10.0, 2.0);
        sum += v;
        sq += v * v;
    }
    const double mean = sum / n;
    const double var = sq / n - mean * mean;
    EXPECT_NEAR(mean, 10.0, 0.1);
    EXPECT_NEAR(var, 4.0, 0.3);
}

TEST(rng, fork_is_independent)
{
    rng a(21);
    rng b = a.fork();
    // forked stream should not mirror the parent
    int same = 0;
    for (int i = 0; i < 64; ++i)
        if (a.next() == b.next()) same++;
    EXPECT_LT(same, 2);
}

// --------------------------------------------------------------- crc32c

TEST(crc32c, known_vector_rfc3720)
{
    // CRC-32C of 32 zero bytes = 0x8a9136aa (RFC 3720 test vector)
    std::vector<std::uint8_t> zeros(32, 0);
    EXPECT_EQ(crc32c(zeros), 0x8a9136aau);
}

TEST(crc32c, known_vector_ones)
{
    std::vector<std::uint8_t> ones(32, 0xff);
    EXPECT_EQ(crc32c(ones), 0x62a8ab43u);
}

TEST(crc32c, incremental_matches_oneshot)
{
    std::vector<std::uint8_t> data;
    rng r(23);
    for (int i = 0; i < 300; ++i) data.push_back(static_cast<std::uint8_t>(r.next()));

    auto state = crc32c_init();
    state = crc32c_update(state, std::span<const std::uint8_t>(data).first(100));
    state = crc32c_update(state, std::span<const std::uint8_t>(data).subspan(100));
    EXPECT_EQ(crc32c_finish(state), crc32c(data));
}

TEST(crc32c, detects_single_bit_flip)
{
    std::vector<std::uint8_t> data(64, 0x5a);
    const auto before = crc32c(data);
    data[20] ^= 0x01;
    EXPECT_NE(crc32c(data), before);
}

// ------------------------------------------------------------ histogram

TEST(histogram, empty)
{
    histogram h;
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.percentile(50), 0u);
    EXPECT_EQ(h.mean(), 0.0);
}

TEST(histogram, exact_small_values)
{
    histogram h;
    for (std::uint64_t v = 0; v < 64; ++v) h.record(v);
    EXPECT_EQ(h.min(), 0u);
    EXPECT_EQ(h.max(), 63u);
    EXPECT_EQ(h.percentile(0), 0u);
    EXPECT_EQ(h.percentile(100), 63u);
    EXPECT_NEAR(h.mean(), 31.5, 0.001);
}

TEST(histogram, percentile_bounded_relative_error)
{
    histogram h;
    rng r(29);
    std::vector<std::uint64_t> values;
    for (int i = 0; i < 10000; ++i) {
        const auto v = r.uniform_int(1, 1000000);
        values.push_back(v);
        h.record(v);
    }
    std::sort(values.begin(), values.end());
    for (double p : {10.0, 50.0, 90.0, 99.0}) {
        const auto exact = values[static_cast<std::size_t>(p / 100.0 * (values.size() - 1))];
        const auto approx = h.percentile(p);
        EXPECT_NEAR(static_cast<double>(approx), static_cast<double>(exact),
                    static_cast<double>(exact) * 0.05 + 2.0)
            << "p=" << p;
    }
}

TEST(histogram, merge)
{
    histogram a, b;
    a.record(10);
    b.record(1000);
    a.merge(b);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.min(), 10u);
    EXPECT_EQ(a.max(), 1000u);
}

TEST(histogram, reset)
{
    histogram h;
    h.record(42);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.max(), 0u);
}

// Regression: percentile() must clamp estimates into [min, max] — the
// bucket midpoint of a lone large sample can otherwise exceed the
// largest value ever recorded (log buckets are wide at the top).
TEST(histogram, percentile_clamped_to_observed_range)
{
    histogram h;
    h.record(1000000); // one sample, bucket midpoint != value
    for (double p : {0.0, 50.0, 99.9, 100.0}) {
        EXPECT_EQ(h.percentile(p), 1000000u) << "p=" << p;
    }

    histogram pair;
    pair.record(100);
    pair.record(1048575); // top of a wide bucket
    EXPECT_GE(pair.percentile(99), 100u);
    EXPECT_LE(pair.percentile(99), 1048575u);
    EXPECT_GE(pair.percentile(1), 100u);
}

// Regression: p outside [0, 100] — including NaN, which fails every
// comparison — must behave like the nearest valid percentile instead of
// indexing out of range or invoking UB in the float → int cast.
TEST(histogram, percentile_out_of_range_p)
{
    histogram h;
    for (std::uint64_t v = 1; v <= 100; ++v) h.record(v);
    EXPECT_EQ(h.percentile(-5.0), h.percentile(0.0));
    EXPECT_EQ(h.percentile(250.0), h.percentile(100.0));
    const double nan = std::numeric_limits<double>::quiet_NaN();
    EXPECT_EQ(h.percentile(nan), h.percentile(0.0));
}

// --------------------------------------------------------- interval_set

TEST(interval_set, insert_and_contains)
{
    interval_set s;
    s.insert(10, 20);
    EXPECT_TRUE(s.contains(10));
    EXPECT_TRUE(s.contains(19));
    EXPECT_FALSE(s.contains(20));
    EXPECT_FALSE(s.contains(9));
}

TEST(interval_set, merging_adjacent_and_overlapping)
{
    interval_set s;
    s.insert(0, 10);
    s.insert(10, 20); // touching: must merge
    EXPECT_EQ(s.interval_count(), 1u);
    s.insert(15, 30); // overlapping
    EXPECT_EQ(s.interval_count(), 1u);
    EXPECT_TRUE(s.covers(0, 30));
    s.insert(40, 50);
    EXPECT_EQ(s.interval_count(), 2u);
    s.insert(25, 45); // bridges the gap
    EXPECT_EQ(s.interval_count(), 1u);
    EXPECT_TRUE(s.covers(0, 50));
}

TEST(interval_set, erase_splits)
{
    interval_set s;
    s.insert(0, 100);
    s.erase(40, 60);
    EXPECT_EQ(s.interval_count(), 2u);
    EXPECT_TRUE(s.covers(0, 40));
    EXPECT_FALSE(s.contains(40));
    EXPECT_FALSE(s.contains(59));
    EXPECT_TRUE(s.covers(60, 100));
    EXPECT_EQ(s.covered(), 80u);
}

TEST(interval_set, next_missing)
{
    interval_set s;
    EXPECT_EQ(s.next_missing(5), 5u);
    s.insert(5, 10);
    EXPECT_EQ(s.next_missing(5), 10u);
    EXPECT_EQ(s.next_missing(7), 10u);
    EXPECT_EQ(s.next_missing(10), 10u);
    s.insert(10, 12);
    EXPECT_EQ(s.next_missing(5), 12u);
}

TEST(interval_set, gaps)
{
    interval_set s;
    s.insert(10, 20);
    s.insert(30, 40);
    const auto g = s.gaps(0, 50);
    ASSERT_EQ(g.size(), 3u);
    EXPECT_EQ(g[0].first, 0u);
    EXPECT_EQ(g[0].second, 10u);
    EXPECT_EQ(g[1].first, 20u);
    EXPECT_EQ(g[1].second, 30u);
    EXPECT_EQ(g[2].first, 40u);
    EXPECT_EQ(g[2].second, 50u);
}

TEST(interval_set, gaps_none_when_covered)
{
    interval_set s;
    s.insert(0, 100);
    EXPECT_TRUE(s.gaps(0, 100).empty());
    EXPECT_TRUE(s.gaps(20, 30).empty());
}

// Property test: random inserts/erases tracked against a reference bitmap.
TEST(interval_set, random_ops_match_reference_bitmap)
{
    constexpr std::uint64_t universe = 512;
    interval_set s;
    std::vector<bool> ref(universe, false);
    rng r(31);
    for (int op = 0; op < 2000; ++op) {
        const auto a = r.uniform_int(0, universe - 1);
        const auto b = r.uniform_int(0, universe);
        const auto lo = a < b ? a : b;
        const auto hi = a < b ? b : a;
        if (r.chance(0.6)) {
            s.insert(lo, hi);
            for (auto i = lo; i < hi; ++i) ref[i] = true;
        } else {
            s.erase(lo, hi);
            for (auto i = lo; i < hi; ++i) ref[i] = false;
        }
    }
    std::uint64_t ref_covered = 0;
    for (std::uint64_t i = 0; i < universe; ++i) {
        EXPECT_EQ(s.contains(i), static_cast<bool>(ref[i])) << "at " << i;
        if (ref[i]) ref_covered++;
    }
    EXPECT_EQ(s.covered(), ref_covered);
    // next_missing agrees with the reference
    for (std::uint64_t i = 0; i < universe; ++i) {
        std::uint64_t expect = i;
        while (expect < universe && ref[expect]) expect++;
        EXPECT_EQ(s.next_missing(i), expect) << "from " << i;
    }
}

// ---------------------------------------------------------------- units

TEST(units, transmission_time)
{
    const auto rate = data_rate::from_gbps(100);
    // 1250 bytes = 10000 bits at 100 Gbps = 100 ns
    EXPECT_EQ(rate.transmission_time(1250).ns, 100);
}

TEST(units, transmission_time_zero_rate_is_huge)
{
    const data_rate rate{0};
    EXPECT_GT(rate.transmission_time(1).ns, 1'000'000'000'000ll);
}

TEST(units, literals)
{
    EXPECT_EQ((5_ms).ns, 5'000'000);
    EXPECT_EQ((2_s).ns, 2'000'000'000);
    EXPECT_EQ((10_gbps).bits_per_sec, 10'000'000'000ull);
    EXPECT_EQ(1_mib, 1024ull * 1024);
}

TEST(units, time_arithmetic)
{
    const sim_time t{1000};
    const auto t2 = t + 5_us;
    EXPECT_EQ(t2.ns, 6000);
    EXPECT_EQ((t2 - t).ns, 5000);
    EXPECT_TRUE(sim_time::never().is_never());
    EXPECT_LT(t, t2);
}
