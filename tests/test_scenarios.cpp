// Parameterized sweeps over the assembled scenarios: the pilot testbed
// must deliver every record exactly once across a grid of loss rates,
// delays and seeds (the core reliability invariant), alerts must beat
// bulk under every congestion level when deadline-aware queueing is on,
// and telemetry helpers must agree with first-principles arithmetic.
#include "daq/trigger.hpp"
#include "scenario/pilot.hpp"
#include "scenario/today.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/report.hpp"

#include <fstream>
#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::scenario;
using namespace mmtp::literals;

// ------------------------------------------------ pilot reliability sweep

struct pilot_case {
    double loss;
    std::int64_t delay_ms;
    std::uint64_t seed;
};

class pilot_sweep : public ::testing::TestWithParam<pilot_case> {};

TEST_P(pilot_sweep, every_record_delivered_exactly_once)
{
    const auto p = GetParam();
    pilot_config cfg;
    cfg.seed = p.seed;
    cfg.wan_loss = p.loss;
    cfg.wan_delay = sim_duration{p.delay_ms * 1'000'000};
    auto tb = make_pilot(cfg);

    daq::iceberg_stream::config scfg;
    scfg.record_limit = 600;
    daq::iceberg_stream src(tb->net.fork_rng(), scfg);
    tb->sensor_tx->drive(src);
    tb->net.sim().run();

    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 600u)
        << "loss=" << p.loss << " delay=" << p.delay_ms << " seed=" << p.seed;
    EXPECT_EQ(tb->dtn2_rx->stats().given_up, 0u);
    EXPECT_EQ(tb->dtn2_rx->outstanding_gaps(), 0u);
    EXPECT_EQ(tb->dtn1_svc->stats().unavailable, 0u);
    // conservation: deliveries = relayed, duplicates filtered out
    EXPECT_EQ(tb->dtn1_svc->stats().relayed, 600u);
}

INSTANTIATE_TEST_SUITE_P(
    loss_delay_seed_grid, pilot_sweep,
    ::testing::Values(pilot_case{0.0, 1, 1}, pilot_case{0.0, 50, 2},
                      pilot_case{0.01, 1, 3}, pilot_case{0.01, 20, 4},
                      pilot_case{0.05, 5, 5}, pilot_case{0.05, 20, 6},
                      pilot_case{0.10, 10, 7}, pilot_case{0.02, 50, 8},
                      pilot_case{0.01, 20, 9}, pilot_case{0.01, 20, 10}));

// ------------------------------------------- recovery latency is flat-ish

TEST(pilot_properties, recovery_latency_tracks_buffer_rtt_not_loss_rate)
{
    std::vector<std::uint64_t> p50s;
    for (const double loss : {0.01, 0.05}) {
        pilot_config cfg;
        cfg.wan_loss = loss;
        cfg.wan_delay = 5_ms;
        auto tb = make_pilot(cfg);
        daq::iceberg_stream::config scfg;
        scfg.record_limit = 2000;
        daq::iceberg_stream src(tb->net.fork_rng(), scfg);
        tb->sensor_tx->drive(src);
        tb->net.sim().run();
        ASSERT_EQ(tb->dtn2_rx->stats().given_up, 0u);
        p50s.push_back(tb->dtn2_rx->stats().recovery_latency_us.percentile(50));
    }
    // both around one buffer RTT (10 ms) + grace; within 3x of each other
    for (const auto p50 : p50s) {
        EXPECT_GT(p50, 5000u);
        EXPECT_LT(p50, 40000u);
    }
    const auto lo = std::min(p50s[0], p50s[1]);
    const auto hi = std::max(p50s[0], p50s[1]);
    EXPECT_LT(hi, lo * 3);
}

TEST(pilot_properties, ages_scale_with_wan_delay)
{
    std::uint64_t age_short = 0, age_long = 0;
    for (const auto delay : {2_ms, 40_ms}) {
        pilot_config cfg;
        cfg.wan_delay = delay;
        cfg.deadline_us = 1000000;
        auto tb = make_pilot(cfg);
        daq::iceberg_stream::config scfg;
        scfg.record_limit = 100;
        daq::iceberg_stream src(tb->net.fork_rng(), scfg);
        tb->sensor_tx->drive(src);
        tb->net.sim().run();
        const auto p50 = tb->dtn2_rx->stats().age_us.percentile(50);
        if (delay.ns == (2_ms).ns)
            age_short = p50;
        else
            age_long = p50;
    }
    EXPECT_GT(age_long, age_short + 30000); // ~38 ms more one-way delay
}

TEST(pilot_properties, duplicates_suppressed_under_spurious_nak_retry)
{
    // an aggressively short NAK retry forces duplicate retransmissions;
    // the receiver must still deliver exactly once.
    pilot_config cfg;
    cfg.wan_loss = 0.05;
    cfg.wan_delay = 10_ms;
    auto tb = make_pilot(cfg);
    // NOTE: receiver was built by make_pilot with the policy-suggested
    // retry; rebuild it with a too-short retry.
    core::receiver_config rcfg;
    rcfg.nak_retry = 2_ms; // << 20 ms buffer RTT: guaranteed spurious NAKs
    rcfg.max_nak_attempts = 50;
    tb->dtn2_rx = std::make_unique<core::receiver>(*tb->dtn2_stack, rcfg);

    daq::iceberg_stream::config scfg;
    scfg.record_limit = 1000;
    daq::iceberg_stream src(tb->net.fork_rng(), scfg);
    tb->sensor_tx->drive(src);
    tb->net.sim().run();

    EXPECT_EQ(tb->dtn2_rx->stats().datagrams, 1000u); // exactly once
    EXPECT_GT(tb->dtn2_rx->stats().duplicates, 0u);   // spurious rtx arrived
    EXPECT_EQ(tb->dtn2_rx->stats().given_up, 0u);
}

// --------------------------------------------------------- today sweeps

class today_loss_sweep : public ::testing::TestWithParam<double> {};

TEST_P(today_loss_sweep, wan_tcp_transfer_reliable)
{
    today_config cfg;
    cfg.wan_delay = 5_ms;
    cfg.wan_loss = GetParam();
    auto tb = make_today(cfg);
    const std::uint64_t total = 3 * 1000 * 1000;
    tcp::connection* at_storage = nullptr;
    tb->storage_tcp->listen(today_testbed::storage_port, tb->wan_tcp_config(),
                            [&](tcp::connection& c) { at_storage = &c; });
    auto& conn = tb->dtn1_tcp->connect(tb->storage->address(),
                                       today_testbed::storage_port,
                                       tb->wan_tcp_config());
    std::uint64_t queued = 0;
    auto pump = [&] {
        if (queued < total) queued += conn.send(total - queued);
    };
    conn.set_on_connected(pump);
    conn.set_on_writable(pump);
    tb->net.sim().run();
    ASSERT_NE(at_storage, nullptr);
    EXPECT_EQ(at_storage->delivered_bytes(), total) << "loss=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(losses, today_loss_sweep,
                         ::testing::Values(0.0, 1e-4, 1e-3, 5e-3, 2e-2));

// -------------------------------------------------------------- telemetry

TEST(telemetry, transfer_tracker_fct_and_goodput)
{
    netsim::engine eng;
    telemetry::transfer_tracker t(eng, 1000);
    EXPECT_FALSE(t.complete());
    eng.schedule_at(sim_time{500}, [] {});
    eng.run();
    t.on_delivered(400);
    EXPECT_FALSE(t.complete());
    eng.schedule_at(sim_time{1000}, [] {});
    eng.run();
    t.on_delivered(1000);
    ASSERT_TRUE(t.complete());
    EXPECT_EQ(t.fct()->ns, 1000);
    // 1000 bytes over 1 us = 8 Gbps
    EXPECT_NEAR(t.goodput()->gbps(), 8.0, 0.01);
    // later deliveries don't move the completion time
    t.on_delivered(2000);
    EXPECT_EQ(t.fct()->ns, 1000);
}

TEST(telemetry, message_latency_tracker)
{
    netsim::engine eng;
    telemetry::message_latency_tracker t(eng);
    eng.schedule_at(sim_time{5000}, [] {});
    eng.run();
    t.on_arrival(2000); // sent at 2 us, arrived at 5 us -> 3 us
    EXPECT_EQ(t.latency_us().max(), 3u);
    EXPECT_EQ(t.latency_us().count(), 1u);
}

TEST(telemetry, rate_sampler_measures_counter_slope)
{
    netsim::engine eng;
    std::uint64_t counter = 0;
    telemetry::rate_sampler sampler(eng, [&] { return counter; }, 1_ms);
    sampler.start(sim_time{(10_ms).ns});
    // feed 125 bytes per 1 ms = 1 Mbps
    for (int i = 1; i <= 10; ++i) {
        eng.schedule_at(sim_time{i * 1'000'000 - 1}, [&] { counter += 125; });
    }
    eng.run();
    ASSERT_GE(sampler.samples().size(), 9u);
    EXPECT_NEAR(sampler.mean_mbps(), 1.0, 0.15);
    EXPECT_NEAR(sampler.peak_mbps(), 1.0, 0.15);
}

TEST(telemetry, table_renders_and_writes_csv)
{
    telemetry::table t("unit");
    t.set_columns({"a", "b"});
    t.add_row({"1", "2"});
    t.add_row({"3", "4"});
    EXPECT_EQ(t.row_count(), 2u);
    const std::string path = "/tmp/mmtp_test_table.csv";
    ASSERT_TRUE(t.write_csv(path));
    std::ifstream in(path);
    std::string line;
    std::getline(in, line);
    EXPECT_EQ(line, "a,b");
    std::getline(in, line);
    EXPECT_EQ(line, "1,2");
}

TEST(telemetry, format_helpers)
{
    EXPECT_EQ(telemetry::fmt_rate(500.0), "500.00 Mbps");
    EXPECT_EQ(telemetry::fmt_rate(2500.0), "2.50 Gbps");
    EXPECT_EQ(telemetry::fmt_duration_us(12.0), "12.0 us");
    EXPECT_EQ(telemetry::fmt_duration_us(2500.0), "2.500 ms");
    EXPECT_EQ(telemetry::fmt_duration_us(3.2e6), "3.200 s");
    EXPECT_EQ(telemetry::fmt_count(42), "42");
    EXPECT_EQ(telemetry::fmt_double(3.14159, 3), "3.142");
}
