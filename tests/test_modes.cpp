// test_modes — runtime mode shifting, end to end.
//
// Covers the epoch-versioned make-before-break machinery at three
// levels: the mode_transition_stage's epoch rule matching (every ordered
// pair of pilot modes, with a transition mid-stream), the policy
// engine's posture state machine (plan/install/commit/abort, hysteresis
// inputs), and the shapeshift drill as the closed loop end to end
// (everything delivered across ≥1 runtime shift, byte-identical
// same-seed reruns). Also pins the timing_profile alias contract the
// control plane's suggested_nak_retry flows through.
#include "control/policy.hpp"
#include "control/policy_engine.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/network.hpp"
#include "pnet/element.hpp"
#include "pnet/stages.hpp"
#include "scenario/shapeshift.hpp"
#include "wire/build.hpp"

#include <gtest/gtest.h>

#include <string>
#include <vector>

using namespace mmtp;
using namespace mmtp::netsim;
using namespace mmtp::pnet;
using namespace mmtp::literals;

namespace {

packet_context make_ctx(const wire::header& h)
{
    packet_context ctx;
    ctx.pkt.headers = wire::build_mmtp_over_ipv4(0x02, 0x0a000001, 0x0a000002, h, 1000);
    ctx.pkt.virtual_payload = 1000;
    ctx.pkt.id = 1;
    ctx.now = sim_time::zero();
    EXPECT_TRUE(parse_context(ctx));
    return ctx;
}

/// An origin-mode data header for the test stream, stamped with `epoch`.
wire::header origin_header(std::uint8_t epoch)
{
    wire::header h;
    h.experiment = wire::make_experiment_id(6, 0);
    h.m.set(wire::feature::timestamped);
    h.m.cfg_id = epoch;
    h.timestamp_ns = 0;
    return h;
}

// --- the three pilot modes, as feature-bit sets -------------------------

struct pilot_mode {
    const char* name;
    std::uint32_t bits;
};

constexpr std::uint32_t bit(wire::feature f) { return wire::feature_bit(f); }

const pilot_mode kIdentification{"identification", 0};
const pilot_mode kWanReliable{"wan_reliable",
                              bit(wire::feature::sequencing)
                                  | bit(wire::feature::retransmission)
                                  | bit(wire::feature::timeliness)
                                  | bit(wire::feature::backpressure)};
const pilot_mode kDestinationCheck{"destination_check", bit(wire::feature::timeliness)};

const pilot_mode kPilotModes[] = {kIdentification, kWanReliable, kDestinationCheck};

/// Every feature bit the mode rules manage in this matrix.
constexpr std::uint32_t kManagedBits = bit(wire::feature::sequencing)
    | bit(wire::feature::retransmission) | bit(wire::feature::timeliness)
    | bit(wire::feature::backpressure) | bit(wire::feature::pacing);

/// The rule that shifts an origin-mode datagram into `m`.
mode_rule rule_for(const pilot_mode& m)
{
    mode_rule r;
    r.experiment = 6;
    r.set_bits = m.bits;
    r.clear_bits = kManagedBits & ~m.bits;
    if ((m.bits & bit(wire::feature::retransmission)) != 0) r.buffer_addr = 0x0a000042;
    if ((m.bits & bit(wire::feature::timeliness)) != 0) {
        r.deadline_us = 9000;
        r.notify_addr = 0x0a000043;
    }
    return r;
}

/// Asserts the processed packet carries exactly `m`'s managed bits —
/// never a blend of two epochs' modes.
void expect_exact_mode(const packet_context& ctx, const pilot_mode& m,
                       std::uint8_t epoch)
{
    ASSERT_TRUE(ctx.mmtp.has_value());
    EXPECT_EQ(ctx.mmtp->m.cfg_id, epoch) << "epoch restamped in flight";
    EXPECT_EQ(ctx.mmtp->m.cfg_data & kManagedBits, m.bits)
        << "packet under epoch " << unsigned(epoch) << " is not exactly mode "
        << m.name;
    EXPECT_TRUE(ctx.mmtp->consistent());
}

} // namespace

// ------------------------------------------------- ordered-pair matrix

/// For every ordered pair (from, to) of pilot modes: run a stream under
/// `from` (epoch 0), install `to` as epoch 1 mid-stream, and check the
/// make-before-break invariants — in-flight epoch-0 datagrams keep
/// getting epoch-0 treatment, epoch-1 datagrams get exactly epoch-1
/// treatment, sequence numbers stay continuous (no drop, no dup), and
/// retiring epoch 0 leaves stragglers untouched rather than misclassified.
TEST(mode_matrix, every_ordered_pair_shifts_mid_stream)
{
    for (const auto& from : kPilotModes) {
        for (const auto& to : kPilotModes) {
            SCOPED_TRACE(std::string(from.name) + " -> " + to.name);
            mode_transition_stage stage;
            element_state st;

            stage.install_epoch(0, {rule_for(from)}, &st);
            ASSERT_TRUE(stage.has_epoch(0));

            // Sequences are assigned from a shared register, continuous
            // across epochs: every fresh assignment must be the next
            // integer — a repeat would be a duplicate, a skip a drop.
            std::uint64_t expected_seq = 0;
            auto process = [&](std::uint8_t epoch, const pilot_mode& m) {
                auto ctx = make_ctx(origin_header(epoch));
                stage.process(ctx, st);
                expect_exact_mode(ctx, m, epoch);
                if ((m.bits & bit(wire::feature::sequencing)) != 0) {
                    ASSERT_TRUE(ctx.mmtp->sequencing.has_value());
                    EXPECT_EQ(ctx.mmtp->sequencing->sequence, expected_seq++);
                }
            };

            for (int i = 0; i < 4; ++i) process(0, from);

            // Make: epoch 1 goes live ahead of epoch 0.
            stage.install_epoch(1, {rule_for(to)}, &st);
            ASSERT_TRUE(stage.has_epoch(1));
            ASSERT_TRUE(stage.has_epoch(0)) << "old epoch must survive the install";

            // Both epochs in flight, interleaved: each datagram gets its
            // own epoch's treatment.
            for (int i = 0; i < 3; ++i) {
                process(1, to);
                process(0, from);
            }

            // Break: after the drain window the old epoch is retired.
            EXPECT_EQ(stage.retire_epoch(0, &st), 1u);
            EXPECT_FALSE(stage.has_epoch(0));
            process(1, to);

            // A post-retirement epoch-0 straggler matches nothing: it
            // passes through in origin mode, never misclassified into
            // the new epoch's mode.
            auto straggler = make_ctx(origin_header(0));
            stage.process(straggler, st);
            EXPECT_EQ(straggler.mmtp->m.cfg_data & kManagedBits, 0u);
            EXPECT_FALSE(straggler.mmtp->sequencing.has_value());

            EXPECT_EQ(st.counter("mode_shifts"), 2u);
            EXPECT_EQ(st.counter("epochs_retired"), 1u);
        }
    }
}

// ------------------------------------------------- policy engine (unit)

namespace {

/// A minimal control-plane fixture: one switch on a daq→wan path, no
/// traffic — just the engine, the map, and an attached mode stage.
struct engine_fixture {
    network net{1};
    pnet::programmable_switch* sw;
    netsim::host* buf_host;
    std::shared_ptr<mode_transition_stage> stage;
    control::resource_map rmap;
    control::policy_inputs pin;

    engine_fixture()
    {
        buf_host = &net.add_host("dtn");
        sw = &net.emplace<pnet::programmable_switch>("sw", pnet::tofino2_profile());
        stage = std::make_shared<mode_transition_stage>();
        sw->add_stage(stage);
        rmap.add({control::resource_kind::retransmission_buffer, buf_host->address(),
                  "dtn-buffer", 1ull << 30, 1_s, "site"});
        rmap.add({control::resource_kind::programmable_switch, sw->address(), "sw", 0,
                  sim_duration::zero(), "site"});
        pin.experiment = 6;
        pin.segments = {
            {control::path_segment::kind::daq, sim_duration{1000},
             data_rate::from_gbps(100), false, 0},
            {control::path_segment::kind::wan, 1_ms, data_rate::from_gbps(10), true,
             sw->address()},
        };
        pin.recovery_buffer = buf_host->address();
    }

    control::policy_engine_config config(control::mode_preset preset)
    {
        control::policy_engine_config c;
        c.preset = preset;
        c.inputs = pin;
        c.poll_until = sim_time::zero(); // no polls: requests are manual
        c.drain_window = 2_ms;
        return c;
    }
};

} // namespace

TEST(policy_engine, static_preset_matches_compile_modes_and_aborts_requests)
{
    engine_fixture f;
    control::policy_engine pe(f.net.sim(), f.rmap,
                              f.config(control::mode_preset::static_preset));
    pe.attach_element(*f.sw, f.stage);
    pe.start();

    // The static preset is compile_modes() verbatim.
    const auto direct = control::compile_modes(f.pin, f.rmap);
    EXPECT_EQ(to_string(pe.current().origin_mode), to_string(direct.origin_mode));
    EXPECT_EQ(pe.current().deadline_us, direct.deadline_us);
    EXPECT_EQ(pe.current().suggested_nak_retry.ns, direct.suggested_nak_retry.ns);
    EXPECT_EQ(pe.current().transitions.size(), direct.transitions.size());

    // Installed as epoch-agnostic rules — the pre-reconfiguration shape.
    EXPECT_GE(f.stage->rule_count(), 1u);
    EXPECT_FALSE(f.stage->has_epoch(0));

    // A static engine never reconfigures: requests abort.
    EXPECT_FALSE(pe.request(control::posture::buffered));
    EXPECT_EQ(pe.stats().reconfigs_aborted, 1u);
    EXPECT_EQ(pe.epoch(), 0u);

    f.net.sim().run();
    EXPECT_EQ(pe.stats().polls, 0u); // static engines do not poll
}

TEST(policy_engine, epoch_lifecycle_make_before_break)
{
    engine_fixture f;
    control::policy_engine pe(f.net.sim(), f.rmap,
                              f.config(control::mode_preset::closed_loop));
    pe.attach_element(*f.sw, f.stage);
    pe.start();

    // Closed-loop epoch 0 rules match their epoch exactly.
    EXPECT_TRUE(f.stage->has_epoch(0));
    const auto baseline_deadline = pe.current().deadline_us;
    ASSERT_GT(baseline_deadline, 0u);

    // relaxed: same shape, deadline scaled up.
    ASSERT_TRUE(pe.request(control::posture::relaxed));
    EXPECT_EQ(pe.epoch(), 1u);
    EXPECT_TRUE(f.stage->has_epoch(1));
    EXPECT_TRUE(f.stage->has_epoch(0)) << "make before break";
    EXPECT_EQ(pe.current().deadline_us, baseline_deadline * 4);
    EXPECT_EQ(pe.pending_commits(), 1u);

    // Same posture again: duplicate, aborted.
    EXPECT_FALSE(pe.request(control::posture::relaxed));
    EXPECT_EQ(pe.stats().reconfigs_aborted, 1u);

    // buffered escalates past relaxed and drops the deadline entirely.
    ASSERT_TRUE(pe.request(control::posture::buffered));
    EXPECT_EQ(pe.epoch(), 2u);
    EXPECT_EQ(pe.current().deadline_us, 0u);
    EXPECT_EQ(pe.pending_commits(), 2u);

    // Explicit requests may also de-escalate (only the automatic
    // triggers are escalate-only): back to relaxed under a fourth epoch.
    ASSERT_TRUE(pe.request(control::posture::relaxed));
    EXPECT_EQ(pe.epoch(), 3u);
    EXPECT_EQ(pe.current().deadline_us, baseline_deadline * 4);

    // Drain windows elapse: the old epochs' rules are retired, the
    // newest survives.
    f.net.sim().run();
    EXPECT_EQ(pe.pending_commits(), 0u);
    EXPECT_FALSE(f.stage->has_epoch(0));
    EXPECT_FALSE(f.stage->has_epoch(1));
    EXPECT_FALSE(f.stage->has_epoch(2));
    EXPECT_TRUE(f.stage->has_epoch(3));

    EXPECT_EQ(pe.stats().reconfigs_planned, 4u); // aborted plans count too
    EXPECT_EQ(pe.stats().reconfigs_installed, 4u); // start + 3 shifts
    EXPECT_EQ(pe.stats().reconfigs_committed, 3u);
    EXPECT_EQ(pe.stats().reconfigs_aborted, 1u);
    EXPECT_EQ(f.sw->state().counter("mode_shifts"), 4u);
    EXPECT_EQ(f.sw->state().counter("epochs_retired"), 3u);
}

// --------------------------------------------- shapeshift drill (e2e)

TEST(shapeshift, runtime_shift_delivers_everything_exactly_once)
{
    scenario::shapeshift_config cfg;
    const auto r = scenario::run_shapeshift_drill(cfg);

    // The injected degradation forced at least one full runtime shift.
    EXPECT_GE(r.ctl.reconfigs_committed, 1u);
    EXPECT_GE(r.mode_shifts, 1u);
    EXPECT_GE(r.epochs_retired, 1u);
    EXPECT_EQ(r.ctl.reconfigs_aborted, 0u);
    EXPECT_GE(r.ctl.loss_triggers, 1u);

    // No drop, no dup, no tail loss — despite the burst.
    EXPECT_TRUE(r.all_delivered);
    EXPECT_EQ(r.delivered, r.messages_sent);
    EXPECT_EQ(r.rx.duplicates, 0u);
    EXPECT_EQ(r.rx.given_up, 0u);
    EXPECT_GT(r.wan.corrupted, 0u) << "the burst must actually bite";

    // Deliveries span multiple epochs, and only epochs the engine
    // actually minted — a stray cfg_id would be a mixed-epoch delivery.
    EXPECT_GE(r.delivered_by_epoch.size(), 2u);
    std::uint64_t total = 0;
    for (const auto& [epoch, count] : r.delivered_by_epoch) {
        EXPECT_LE(epoch, r.final_epoch);
        total += count;
    }
    EXPECT_EQ(total, r.delivered);

    // The loop came back down after the burst.
    EXPECT_GE(r.ctl.restores, 1u);
    EXPECT_EQ(r.final_posture, "baseline");
}

TEST(shapeshift, same_seed_reruns_are_byte_identical)
{
    scenario::shapeshift_config cfg;
    const auto a = scenario::run_shapeshift_drill(cfg);
    const auto b = scenario::run_shapeshift_drill(cfg);
    EXPECT_EQ(a.csv, b.csv);
    EXPECT_EQ(a.metrics_csv, b.metrics_csv);
    EXPECT_EQ(a.reconfig_timeline, b.reconfig_timeline);
}

TEST(shapeshift, clean_run_never_reconfigures)
{
    scenario::shapeshift_config cfg;
    cfg.burst_ber = 0.0; // degradation disabled
    const auto r = scenario::run_shapeshift_drill(cfg);
    EXPECT_TRUE(r.all_delivered);
    EXPECT_EQ(r.ctl.reconfigs_planned, 0u);
    EXPECT_EQ(r.ctl.reconfigs_committed, 0u);
    EXPECT_EQ(r.final_epoch, 0u);
    EXPECT_EQ(r.final_posture, "baseline");
    EXPECT_EQ(r.delivered_by_epoch.size(), 1u);
    EXPECT_EQ(r.delivered_by_epoch.count(0), 1u);
}

// ------------------------------------------------ timing profile aliases

TEST(timing_profile, deprecated_aliases_track_shared_profile)
{
    core::receiver_config rc;
    rc.nak_retry = 7_ms;
    EXPECT_EQ(rc.timing.retry_base.ns, (7_ms).ns);
    rc.timing.max_attempts = 9;
    EXPECT_EQ(rc.max_nak_attempts, 9u);

    // Copies rebind the aliases to their own profile.
    core::receiver_config copy = rc;
    copy.nak_retry = 1_ms;
    EXPECT_EQ(rc.timing.retry_base.ns, (7_ms).ns);
    EXPECT_EQ(copy.timing.retry_base.ns, (1_ms).ns);
    EXPECT_EQ(copy.max_nak_attempts, 9u);

    core::sender_config sc;
    sc.backpressure_hold = 3_ms;
    EXPECT_EQ(sc.timing.hold.ns, (3_ms).ns);
    core::sender_config sc2;
    sc2 = sc;
    sc2.timing.hold = 4_ms;
    EXPECT_EQ(sc2.backpressure_hold.ns, (4_ms).ns);
    EXPECT_EQ(sc.backpressure_hold.ns, (3_ms).ns);
}
