// Unit tests for src/pnet: parser/deparser, the four in-network MMTP
// programs (mode transition, age update, backpressure, duplication), the
// timeliness band classifier, and end-to-end forwarding through a
// programmable switch.
#include "netsim/network.hpp"
#include "pnet/element.hpp"
#include "pnet/stages.hpp"
#include "wire/build.hpp"

#include <gtest/gtest.h>

using namespace mmtp;
using namespace mmtp::netsim;
using namespace mmtp::pnet;
using namespace mmtp::literals;

namespace {

packet make_mmtp_packet(const wire::header& h, wire::ipv4_addr src, wire::ipv4_addr dst,
                        std::uint64_t payload = 1000)
{
    packet p;
    p.headers = wire::build_mmtp_over_ipv4(0x02, src, dst, h, payload);
    p.virtual_payload = payload;
    p.id = 1;
    return p;
}

packet_context make_ctx(const wire::header& h, wire::ipv4_addr src, wire::ipv4_addr dst,
                        sim_time now = sim_time::zero())
{
    packet_context ctx;
    ctx.pkt = make_mmtp_packet(h, src, dst);
    ctx.now = now;
    EXPECT_TRUE(parse_context(ctx));
    return ctx;
}

wire::header basic_header(std::uint32_t experiment_num = 6, std::uint32_t slice = 0)
{
    wire::header h;
    h.experiment = wire::make_experiment_id(experiment_num, slice);
    h.m.set(wire::feature::timestamped);
    h.timestamp_ns = 0;
    return h;
}

wire::header timed_header(std::uint64_t ts_ns, std::uint32_t deadline_us,
                          wire::ipv4_addr notify = 0)
{
    auto h = basic_header(6);
    h.timestamp_ns = ts_ns;
    h.m.set(wire::feature::timeliness);
    wire::timeliness_field t;
    t.deadline_us = deadline_us;
    t.notify_addr = notify;
    h.timeliness = t;
    return h;
}

} // namespace

// ------------------------------------------------------- parse / deparse

TEST(context, parses_mmtp_over_ipv4)
{
    auto ctx = make_ctx(basic_header(), 0x0a000001, 0x0a000002);
    ASSERT_TRUE(ctx.ip.has_value());
    ASSERT_TRUE(ctx.mmtp.has_value());
    EXPECT_FALSE(ctx.mmtp_over_l2);
    EXPECT_EQ(ctx.ip->dst, 0x0a000002u);
}

TEST(context, parses_mmtp_over_l2)
{
    packet_context ctx;
    ctx.pkt.headers = wire::build_mmtp_over_l2(0x02, 0x03, basic_header());
    ASSERT_TRUE(parse_context(ctx));
    EXPECT_TRUE(ctx.mmtp_over_l2);
    ASSERT_TRUE(ctx.mmtp.has_value());
    EXPECT_FALSE(ctx.ip.has_value());
}

TEST(context, non_mmtp_passes_through_opaque)
{
    packet_context ctx;
    byte_writer w;
    wire::eth_header eth;
    eth.ethertype = wire::ethertype_ipv4;
    serialize(eth, w);
    wire::ipv4_header ip;
    ip.protocol = wire::ipproto_tcp;
    ip.src = 1;
    ip.dst = 2;
    serialize(ip, w);
    w.u32(0xdeadbeef); // opaque L4 bytes
    ctx.pkt.headers = w.take();
    ASSERT_TRUE(parse_context(ctx));
    EXPECT_FALSE(ctx.mmtp.has_value());
    ASSERT_TRUE(ctx.ip.has_value());

    // deparse with dirty headers must preserve the opaque L4 bytes
    const auto before = ctx.pkt.headers;
    ctx.headers_dirty = true;
    deparse_context(ctx);
    EXPECT_EQ(ctx.pkt.headers, before);
}

TEST(context, deparse_reflects_header_rewrite)
{
    auto ctx = make_ctx(basic_header(), 0x0a000001, 0x0a000002);
    ctx.mmtp->m.set(wire::feature::timeliness);
    wire::timeliness_field t;
    t.deadline_us = 777;
    ctx.mmtp->timeliness = t;
    ctx.headers_dirty = true;
    deparse_context(ctx);

    packet_context ctx2;
    ctx2.pkt = std::move(ctx.pkt);
    ASSERT_TRUE(parse_context(ctx2));
    ASSERT_TRUE(ctx2.mmtp->timeliness.has_value());
    EXPECT_EQ(ctx2.mmtp->timeliness->deadline_us, 777u);
}

TEST(context, dst_override_rewrites_ip)
{
    auto ctx = make_ctx(basic_header(), 0x0a000001, 0x0a000002);
    ctx.headers_dirty = true;
    ctx.dst_override = 0x0a0000ff;
    deparse_context(ctx);
    packet_context ctx2;
    ctx2.pkt = std::move(ctx.pkt);
    ASSERT_TRUE(parse_context(ctx2));
    EXPECT_EQ(ctx2.ip->dst, 0x0a0000ffu);
}

TEST(context, control_body_only_for_control_messages)
{
    auto data_ctx = make_ctx(basic_header(), 1, 2);
    data_ctx.pkt.payload = {1, 2, 3};
    EXPECT_TRUE(data_ctx.control_body().empty());

    wire::header ch;
    ch.m.set(wire::feature::control);
    ch.control = wire::control_type::subscribe;
    auto ctl_ctx = make_ctx(ch, 1, 2);
    ctl_ctx.pkt.payload = {1, 2, 3};
    EXPECT_EQ(ctl_ctx.control_body().size(), 3u);
}

// ------------------------------------------------------- element state

TEST(element_state, registers_and_counters)
{
    element_state st;
    st.create_register("r", 4);
    st.reg("r", 2) = 99;
    EXPECT_EQ(st.reg("r", 2), 99u);
    EXPECT_THROW(st.reg("missing"), std::out_of_range);
    EXPECT_THROW(st.reg("r", 10), std::out_of_range);
    st.bump("c");
    st.bump("c", 4);
    EXPECT_EQ(st.counter("c"), 5u);
    EXPECT_EQ(st.counter("zzz"), 0u);
}

// ---------------------------------------------------- mode transitions

TEST(mode_transition, upgrades_mode_and_assigns_sequences)
{
    mode_transition_stage stage;
    mode_rule rule;
    rule.experiment = 6;
    rule.set_bits = wire::feature_bit(wire::feature::sequencing)
        | wire::feature_bit(wire::feature::retransmission)
        | wire::feature_bit(wire::feature::timeliness);
    rule.buffer_addr = 0x0a000042;
    rule.deadline_us = 9000;
    rule.notify_addr = 0x0a000043;
    stage.add_rule(rule);

    element_state st;
    st.element_addr = 0x0a000099;

    for (std::uint64_t i = 0; i < 3; ++i) {
        auto ctx = make_ctx(basic_header(6), 1, 2);
        stage.process(ctx, st);
        ASSERT_TRUE(ctx.headers_dirty);
        ASSERT_TRUE(ctx.mmtp->sequencing.has_value());
        EXPECT_EQ(ctx.mmtp->sequencing->sequence, i); // counts up per packet
        ASSERT_TRUE(ctx.mmtp->retransmission.has_value());
        EXPECT_EQ(ctx.mmtp->retransmission->buffer_addr, 0x0a000042u);
        ASSERT_TRUE(ctx.mmtp->timeliness.has_value());
        EXPECT_EQ(ctx.mmtp->timeliness->deadline_us, 9000u);
        EXPECT_EQ(ctx.mmtp->timeliness->notify_addr, 0x0a000043u);
    }
    EXPECT_EQ(st.counter("mode_transitions"), 3u);
}

TEST(mode_transition, existing_sequence_not_renumbered)
{
    mode_transition_stage stage;
    mode_rule rule;
    rule.match_any_experiment = true;
    rule.set_bits = wire::feature_bit(wire::feature::sequencing);
    stage.add_rule(rule);

    element_state st;
    auto h = basic_header(6);
    h.m.set(wire::feature::sequencing);
    h.sequencing = wire::sequencing_field{555, 1};
    auto ctx = make_ctx(h, 1, 2);
    stage.process(ctx, st);
    EXPECT_EQ(ctx.mmtp->sequencing->sequence, 555u); // retransmissions keep numbers
}

TEST(mode_transition, clear_bits_strip_fields)
{
    mode_transition_stage stage;
    mode_rule rule;
    rule.match_any_experiment = true;
    rule.clear_bits = wire::feature_bit(wire::feature::retransmission)
        | wire::feature_bit(wire::feature::backpressure);
    stage.add_rule(rule);

    element_state st;
    auto h = basic_header(6);
    h.m.set(wire::feature::retransmission).set(wire::feature::backpressure);
    h.retransmission = wire::retransmission_field{7};
    auto ctx = make_ctx(h, 1, 2);
    stage.process(ctx, st);
    EXPECT_FALSE(ctx.mmtp->m.has(wire::feature::retransmission));
    EXPECT_FALSE(ctx.mmtp->retransmission.has_value());
    EXPECT_FALSE(ctx.mmtp->m.has(wire::feature::backpressure));
    EXPECT_TRUE(ctx.mmtp->consistent());
}

TEST(mode_transition, wrong_experiment_not_matched)
{
    mode_transition_stage stage;
    mode_rule rule;
    rule.experiment = 99;
    rule.set_bits = wire::feature_bit(wire::feature::sequencing);
    stage.add_rule(rule);

    element_state st;
    auto ctx = make_ctx(basic_header(6), 1, 2);
    stage.process(ctx, st);
    EXPECT_FALSE(ctx.headers_dirty);
    EXPECT_FALSE(ctx.mmtp->sequencing.has_value());
}

TEST(mode_transition, require_bits_gate)
{
    mode_transition_stage stage;
    mode_rule rule;
    rule.match_any_experiment = true;
    rule.require_bits = wire::feature_bit(wire::feature::sequencing);
    rule.set_bits = wire::feature_bit(wire::feature::timeliness);
    rule.deadline_us = 5;
    stage.add_rule(rule);

    element_state st;
    auto ctx = make_ctx(basic_header(6), 1, 2); // no sequencing
    stage.process(ctx, st);
    EXPECT_FALSE(ctx.mmtp->timeliness.has_value());

    auto h = basic_header(6);
    h.m.set(wire::feature::sequencing);
    h.sequencing = wire::sequencing_field{0, 0};
    auto ctx2 = make_ctx(h, 1, 2);
    stage.process(ctx2, st);
    EXPECT_TRUE(ctx2.mmtp->timeliness.has_value());
}

TEST(mode_transition, control_messages_untouched)
{
    mode_transition_stage stage;
    mode_rule rule;
    rule.match_any_experiment = true;
    rule.set_bits = wire::feature_bit(wire::feature::sequencing);
    stage.add_rule(rule);
    element_state st;

    wire::header ch;
    ch.m.set(wire::feature::control);
    ch.control = wire::control_type::nak;
    auto ctx = make_ctx(ch, 1, 2);
    stage.process(ctx, st);
    EXPECT_FALSE(ctx.mmtp->sequencing.has_value());
}

// ------------------------------------------------------------ age update

TEST(age_update, computes_age_from_timestamp)
{
    age_update_stage stage;
    element_state st;
    auto ctx = make_ctx(timed_header(0, 10000), 1, 2, sim_time{(3_ms).ns});
    stage.process(ctx, st);
    EXPECT_EQ(ctx.mmtp->timeliness->age_us, 3000u);
    EXPECT_FALSE(ctx.mmtp->timeliness->aged());
    EXPECT_TRUE(ctx.emissions.empty());
}

TEST(age_update, sets_aged_flag_and_notifies_once)
{
    age_update_stage stage;
    element_state st;
    st.element_addr = 0x0a000050;
    auto ctx = make_ctx(timed_header(0, 1000, 0x0a000060), 1, 2, sim_time{(5_ms).ns});
    stage.process(ctx, st);
    EXPECT_TRUE(ctx.mmtp->timeliness->aged());
    EXPECT_TRUE(ctx.mmtp->timeliness->notified());
    ASSERT_EQ(ctx.emissions.size(), 1u);
    EXPECT_EQ(ctx.emissions[0].dst, 0x0a000060u);
    EXPECT_EQ(st.counter("aged_packets"), 1u);
    EXPECT_EQ(st.counter("deadline_notifications"), 1u);

    // a downstream element sees the notified flag: no duplicate alarm
    age_update_stage stage2;
    packet_context rebuilt;
    rebuilt.pkt.headers = wire::build_mmtp_over_ipv4(0x02, 1, 2, *ctx.mmtp, 0);
    rebuilt.now = sim_time{(6_ms).ns};
    ASSERT_TRUE(parse_context(rebuilt));
    stage2.process(rebuilt, st);
    EXPECT_TRUE(rebuilt.emissions.empty());
}

TEST(age_update, drop_aged_policy)
{
    age_config cfg;
    cfg.drop_aged = true;
    cfg.emit_notifications = false;
    age_update_stage stage(cfg);
    element_state st;
    auto ctx = make_ctx(timed_header(0, 100), 1, 2, sim_time{(1_ms).ns});
    stage.process(ctx, st);
    EXPECT_TRUE(ctx.drop);
    EXPECT_EQ(st.counter("aged_drops"), 1u);
}

TEST(age_update, zero_deadline_means_no_budget_check)
{
    age_update_stage stage;
    element_state st;
    auto ctx = make_ctx(timed_header(0, 0), 1, 2, sim_time{(100_ms).ns});
    stage.process(ctx, st);
    EXPECT_FALSE(ctx.mmtp->timeliness->aged());
    EXPECT_TRUE(ctx.emissions.empty());
}

// ---------------------------------------------------------- duplication

TEST(duplication, clones_to_subscribers)
{
    duplication_stage stage;
    stage.add_subscriber(6, 0x0a000070);
    stage.add_subscriber(6, 0x0a000071);
    stage.add_subscriber(6, 0x0a000071); // duplicate add ignored
    EXPECT_EQ(stage.subscriber_count(6), 2u);

    element_state st;
    auto h = basic_header(6);
    h.m.set(wire::feature::duplication);
    auto ctx = make_ctx(h, 1, 0x0a000070); // primary dst is also a subscriber
    stage.process(ctx, st);
    ASSERT_EQ(ctx.clones.size(), 1u); // primary not duplicated to itself
    EXPECT_EQ(ctx.clones[0], 0x0a000071u);
}

TEST(duplication, no_duplication_bit_no_clones)
{
    duplication_stage stage;
    stage.add_subscriber(6, 0x0a000070);
    element_state st;
    auto ctx = make_ctx(basic_header(6), 1, 2);
    stage.process(ctx, st);
    EXPECT_TRUE(ctx.clones.empty());
}

TEST(duplication, consumes_subscribe_control)
{
    duplication_stage stage;
    element_state st;
    st.element_addr = 0x0a000099;

    wire::subscribe_body body;
    body.experiment = wire::make_experiment_id(6, 0);
    body.subscriber = 0x0a000072;
    byte_writer w;
    serialize(body, w);

    wire::header ch;
    ch.m.set(wire::feature::control);
    ch.control = wire::control_type::subscribe;
    auto ctx = make_ctx(ch, 1, 0x0a000099);
    auto bytes = w.take();
    ctx.pkt.payload = bytes;
    stage.process(ctx, st);
    EXPECT_TRUE(ctx.drop); // consumed
    EXPECT_EQ(stage.subscriber_count(6), 1u);

    // subscribe addressed to a different element is forwarded, not eaten
    auto ctx2 = make_ctx(ch, 1, 0x0a000098);
    ctx2.pkt.payload = bytes;
    stage.process(ctx2, st);
    EXPECT_FALSE(ctx2.drop);
    EXPECT_EQ(stage.subscriber_count(6), 1u);
}

// ------------------------------------------------------ band classifier

TEST(classifier, bands)
{
    // control -> 0
    wire::header ch;
    ch.m.set(wire::feature::control);
    ch.control = wire::control_type::nak;
    EXPECT_EQ(timeliness_band_of(make_mmtp_packet(ch, 1, 2)), 0u);
    // timeliness data -> 0
    EXPECT_EQ(timeliness_band_of(make_mmtp_packet(timed_header(0, 100), 1, 2)), 0u);
    // plain DAQ data -> 1
    EXPECT_EQ(timeliness_band_of(make_mmtp_packet(basic_header(), 1, 2)), 1u);
    // non-MMTP -> 2
    packet p;
    byte_writer w;
    wire::eth_header eth;
    eth.ethertype = wire::ethertype_ipv4;
    serialize(eth, w);
    wire::ipv4_header ip;
    ip.protocol = wire::ipproto_tcp;
    serialize(ip, w);
    p.headers = w.take();
    EXPECT_EQ(timeliness_band_of(p), 2u);
}

// -------------------------------------------- switch end-to-end behaviour

namespace {

struct switched_net {
    network net{3};
    host* a;
    host* b;
    programmable_switch* sw;

    switched_net()
    {
        a = &net.add_host("a");
        sw = &net.emplace<programmable_switch>("sw");
        b = &net.add_host("b");
        sw->set_id_source(&net.ids());
        net.connect(*a, *sw, link_config{});
        net.connect(*sw, *b, link_config{});
        net.compute_routes();
    }
};

} // namespace

TEST(programmable_switch, forwards_and_counts)
{
    switched_net t;
    int got = 0;
    t.b->set_protocol_handler(wire::ipproto_mmtp,
                              [&](packet&&, const wire::ipv4_header&, std::size_t) {
                                  got++;
                              });
    auto p = make_mmtp_packet(basic_header(), t.a->address(), t.b->address());
    t.a->send_ipv4(std::move(p), t.b->address());
    t.net.sim().run();
    EXPECT_EQ(got, 1);
    EXPECT_EQ(t.sw->stats().forwarded, 1u);
}

TEST(programmable_switch, pipeline_latency_applied)
{
    switched_net t;
    sim_time arrival{};
    t.b->set_protocol_handler(wire::ipproto_mmtp,
                              [&](packet&&, const wire::ipv4_header&, std::size_t) {
                                  arrival = t.net.sim().now();
                              });
    auto p = make_mmtp_packet(basic_header(), t.a->address(), t.b->address(), 0);
    const auto wire_bytes = p.wire_size();
    t.a->send_ipv4(std::move(p), t.b->address());
    t.net.sim().run();
    // two links at defaults (10G, 1 us prop) + 400 ns pipeline
    const auto tx = link_config{}.rate.transmission_time(wire_bytes);
    EXPECT_EQ(arrival.ns, 2 * (tx.ns + 1000) + 400);
}

TEST(programmable_switch, drops_corrupted_frames)
{
    switched_net t;
    auto p = make_mmtp_packet(basic_header(), t.a->address(), t.b->address());
    p.corrupted = true;
    t.sw->receive(std::move(p), 0);
    t.net.sim().run();
    EXPECT_EQ(t.sw->stats().dropped_corrupted, 1u);
}

TEST(programmable_switch, unroutable_counted)
{
    switched_net t;
    auto p = make_mmtp_packet(basic_header(), t.a->address(), 0xdeadbeef);
    t.sw->receive(std::move(p), 0);
    t.net.sim().run();
    EXPECT_EQ(t.sw->stats().dropped_unroutable, 1u);
}

TEST(programmable_switch, duplication_stage_clones_in_network)
{
    network net(4);
    auto& a = net.add_host("a");
    auto& sw = net.emplace<programmable_switch>("sw");
    auto& b = net.add_host("b");
    auto& c = net.add_host("c");
    sw.set_id_source(&net.ids());
    net.connect(a, sw, link_config{});
    net.connect(sw, b, link_config{});
    net.connect(sw, c, link_config{});
    net.compute_routes();

    auto dup = std::make_shared<duplication_stage>();
    dup->add_subscriber(6, c.address());
    sw.add_stage(dup);

    int got_b = 0, got_c = 0;
    std::uint64_t id_b = 0, id_c = 0;
    b.set_protocol_handler(wire::ipproto_mmtp,
                           [&](packet&& p, const wire::ipv4_header&, std::size_t) {
                               got_b++;
                               id_b = p.id;
                           });
    c.set_protocol_handler(wire::ipproto_mmtp,
                           [&](packet&& p, const wire::ipv4_header& ip, std::size_t) {
                               got_c++;
                               id_c = p.id;
                               EXPECT_EQ(ip.dst, c.address());
                           });

    auto h = basic_header(6);
    h.m.set(wire::feature::duplication);
    auto p = make_mmtp_packet(h, a.address(), b.address());
    p.id = net.ids().next();
    a.send_ipv4(std::move(p), b.address());
    net.sim().run();
    EXPECT_EQ(got_b, 1);
    EXPECT_EQ(got_c, 1);
    EXPECT_NE(id_b, id_c); // clone got a fresh id
    EXPECT_EQ(sw.stats().clones, 1u);
}

TEST(programmable_switch, l2_uplink_forwarding)
{
    network net(5);
    auto& sensor = net.add_host("sensor");
    auto& sw = net.emplace<programmable_switch>("sw");
    auto& dtn = net.add_host("dtn");
    sw.set_id_source(&net.ids());
    const auto [s2sw, _x] = net.connect(sensor, sw, link_config{});
    const auto [sw2dtn, _y] = net.connect(sw, dtn, link_config{});
    (void)_x;
    (void)_y;
    sw.set_l2_uplink(sw2dtn);
    net.compute_routes();

    int got = 0;
    dtn.set_ethertype_handler(wire::ethertype_mmtp, [&](packet&&, std::size_t) { got++; });

    packet p;
    p.headers = wire::build_mmtp_over_l2(sensor.mac(), 0, basic_header());
    p.id = net.ids().next();
    sensor.send_l2(std::move(p), s2sw);
    net.sim().run();
    EXPECT_EQ(got, 1);
}

TEST(backpressure, signal_emitted_above_threshold_and_rate_limited)
{
    network net(6);
    auto& a = net.add_host("a");
    auto& sw = net.emplace<programmable_switch>("sw");
    auto& b = net.add_host("b");
    sw.set_id_source(&net.ids());
    net.connect(a, sw, link_config{});
    // slow egress so the queue builds
    link_config slow;
    slow.rate = data_rate::from_mbps(100);
    slow.queue_capacity_bytes = 10ull * 1024 * 1024;
    net.connect(sw, b, slow);
    net.compute_routes();

    backpressure_config cfg;
    cfg.low_watermark_bytes = 8000;
    cfg.high_watermark_bytes = 10000;
    cfg.min_interval = 10_ms; // strict rate limiting for the test
    sw.add_stage(std::make_shared<backpressure_stage>(sw, cfg));

    int signals = 0;
    a.set_protocol_handler(
        wire::ipproto_mmtp, [&](packet&& p, const wire::ipv4_header&, std::size_t off) {
            const auto h =
                wire::parse(std::span<const std::uint8_t>(p.headers).subspan(off));
            ASSERT_TRUE(h.has_value());
            if (h->control == wire::control_type::backpressure) signals++;
        });

    auto h = basic_header(6);
    h.m.set(wire::feature::backpressure);
    for (int i = 0; i < 100; ++i) {
        auto p = make_mmtp_packet(h, a.address(), b.address(), 5000);
        p.id = net.ids().next();
        a.send_ipv4(std::move(p), b.address());
    }
    net.sim().run();
    EXPECT_GE(signals, 1);
    EXPECT_LE(signals, 3); // rate limited, not one per packet
}

TEST(backpressure, no_signal_without_feature_bit)
{
    network net(7);
    auto& a = net.add_host("a");
    auto& sw = net.emplace<programmable_switch>("sw");
    auto& b = net.add_host("b");
    sw.set_id_source(&net.ids());
    net.connect(a, sw, link_config{});
    link_config slow;
    slow.rate = data_rate::from_mbps(100);
    slow.queue_capacity_bytes = 10ull * 1024 * 1024;
    net.connect(sw, b, slow);
    net.compute_routes();

    backpressure_config cfg;
    cfg.low_watermark_bytes = 500;
    cfg.high_watermark_bytes = 1000;
    sw.add_stage(std::make_shared<backpressure_stage>(sw, cfg));

    int signals = 0;
    a.set_protocol_handler(wire::ipproto_mmtp,
                           [&](packet&&, const wire::ipv4_header&, std::size_t) {
                               signals++;
                           });
    for (int i = 0; i < 50; ++i) {
        auto p = make_mmtp_packet(basic_header(6), a.address(), b.address(), 5000);
        p.id = net.ids().next();
        a.send_ipv4(std::move(p), b.address());
    }
    net.sim().run();
    EXPECT_EQ(signals, 0);
}
