#include "daq/message.hpp"

namespace mmtp::daq {

void daq_header::serialize(byte_writer& w) const
{
    w.u32(experiment);
    w.u64(sequence);
    w.u64(timestamp_ns);
    w.u16(record_count);
    w.u16(flags);
}

std::optional<daq_header> daq_header::parse(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    daq_header h;
    h.experiment = r.u32();
    h.sequence = r.u64();
    h.timestamp_ns = r.u64();
    h.record_count = r.u16();
    h.flags = r.u16();
    if (r.failed()) return std::nullopt;
    return h;
}

steady_source::steady_source(wire::experiment_id experiment, std::uint32_t size_bytes,
                             sim_duration interval, sim_time start,
                             std::uint64_t count_limit)
    : experiment_(experiment),
      size_bytes_(size_bytes),
      interval_(interval),
      at_(start),
      limit_(count_limit)
{
}

std::optional<timed_message> steady_source::next()
{
    if (limit_ != 0 && emitted_ >= limit_) return std::nullopt;
    timed_message tm;
    tm.at = at_;
    tm.msg.experiment = experiment_;
    tm.msg.sequence = emitted_;
    tm.msg.timestamp_ns = static_cast<std::uint64_t>(at_.ns);
    tm.msg.size_bytes = size_bytes_;
    emitted_++;
    at_ = at_ + interval_;
    return tm;
}

void composite_source::add(std::unique_ptr<message_source> src)
{
    slot s;
    s.src = std::move(src);
    s.head = s.src->next();
    slots_.push_back(std::move(s));
}

std::optional<timed_message> composite_source::next()
{
    slot* best = nullptr;
    for (auto& s : slots_) {
        if (!s.head) continue;
        if (!best || s.head->at < best->head->at) best = &s;
    }
    if (!best) return std::nullopt;
    auto out = std::move(*best->head);
    best->head = best->src->next();
    return out;
}

} // namespace mmtp::daq
