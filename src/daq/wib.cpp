#include "daq/wib.hpp"

#include "common/bytes.hpp"
#include "common/crc32c.hpp"

namespace mmtp::daq {

std::vector<std::uint8_t> wib_frame::serialize() const
{
    byte_writer w(wib_frame_bytes);
    w.u8(version);
    w.u8(crate);
    w.u8(slot);
    w.u8(fiber);
    w.u32(0); // reserved
    w.u64(timestamp);
    for (const auto sample : adc) w.u16(sample & 0x0fff);
    const auto crc = crc32c(w.view());
    w.u32(crc);
    return w.take();
}

std::optional<wib_frame> wib_frame::parse(std::span<const std::uint8_t> data)
{
    if (data.size() != wib_frame_bytes) return std::nullopt;
    const auto body = data.first(wib_frame_bytes - 4);
    byte_reader r(data);
    wib_frame f;
    f.version = r.u8();
    f.crate = r.u8();
    f.slot = r.u8();
    f.fiber = r.u8();
    r.skip(4);
    f.timestamp = r.u64();
    for (auto& sample : f.adc) sample = r.u16();
    const auto crc = r.u32();
    if (r.failed()) return std::nullopt;
    if (crc != crc32c(body)) return std::nullopt;
    return f;
}

lartpc_synth::lartpc_synth(rng r, config cfg) : rng_(r), cfg_(cfg) {}

lartpc_synth::lartpc_synth(rng r) : lartpc_synth(r, config{}) {}

void lartpc_synth::fill(wib_frame& frame)
{
    for (std::size_t ch = 0; ch < wib_channels; ++ch) {
        // New ionization pulse?
        if (rng_.chance(cfg_.activity)) {
            pulse_level_[ch] +=
                rng_.exponential(cfg_.pulse_amplitude_mean);
        }
        const double noise = rng_.normal(0.0, cfg_.noise_sigma);
        double v = cfg_.pedestal + pulse_level_[ch] + noise;
        if (v < 0) v = 0;
        if (v > 4095) v = 4095;
        frame.adc[ch] = static_cast<std::uint16_t>(v);
        pulse_level_[ch] *= (1.0 - cfg_.pulse_decay);
        if (pulse_level_[ch] < 0.01) pulse_level_[ch] = 0.0;
    }
}

} // namespace mmtp::daq
