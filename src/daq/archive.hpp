// archive.hpp — HDF5-style archival container for DAQ data (§6 (2)).
//
// The paper's future work asks how on-path or end-site resources can
// "transcode into other formats, such as HDF5 which is ubiquitously used
// for storage in scientific computing". This module is the storage-side
// substrate for that: a self-describing chunked container with the
// HDF5 properties that matter for DAQ archiving —
//   * a superblock with magic, version and a root index offset,
//   * per-experiment datasets of fixed-format records,
//   * chunked layout with per-chunk CRC32C (like HDF5's Fletcher filter),
//   * string attributes attached to the file and each dataset,
//   * an index footer so readers can open without scanning.
// It is not the HDF5 wire format (substitution documented in DESIGN.md);
// it is format-shaped the same way, and round-trips losslessly.
#pragma once

#include "common/bytes.hpp"
#include "daq/message.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmtp::daq {

/// One archived record: the transport-level metadata plus payload bytes.
struct archived_record {
    std::uint64_t sequence{0};
    std::uint64_t timestamp_ns{0};
    std::uint32_t size_bytes{0}; // original message size (payload may be smaller)
    std::vector<std::uint8_t> payload;

    bool operator==(const archived_record&) const = default;
};

struct archive_limits {
    /// Records per chunk before the chunk is sealed and checksummed.
    std::uint32_t chunk_records{256};
    /// Largest accepted record payload in bytes (0 = unlimited). An
    /// oversized append is rejected — returned false and counted — so a
    /// runaway producer cannot grow chunks without bound.
    std::uint32_t max_record_bytes{0};
    /// Cap on records per dataset, expressed in sealed chunks
    /// (0 = unlimited): once a dataset holds chunk_records *
    /// max_chunks_per_dataset records, further appends to it are
    /// rejected. finalize() therefore never emits more than
    /// max_chunks_per_dataset chunks for any dataset.
    std::uint32_t max_chunks_per_dataset{0};
    /// Cap on distinct datasets created by append (0 = unlimited);
    /// appends that would create one more are rejected.
    std::uint32_t max_datasets{0};
};

/// Append-path accounting: every rejected record is counted under the
/// limit that refused it (nothing is dropped silently).
struct archive_writer_stats {
    std::uint64_t appended{0};
    std::uint64_t rejected_oversize{0};
    std::uint64_t rejected_chunk_cap{0};
    std::uint64_t rejected_dataset_cap{0};
    std::uint64_t chunks_sealed{0};
};

/// Serializes datasets of archived_records into a single byte blob.
class archive_writer {
public:
    explicit archive_writer(archive_limits limits = {});

    /// File-level attribute (e.g. "facility" -> "dune-far-site").
    void set_attribute(const std::string& key, const std::string& value);

    /// Appends a record to the dataset of `experiment` (created lazily).
    /// Returns false — and counts the rejection — when an archive_limits
    /// cap refuses it; the writer stays usable either way.
    bool append(wire::experiment_id experiment, archived_record r);

    /// Seals every open chunk now (the durability point a crash cannot
    /// take back), without finalizing. Chunks sealed early may hold
    /// fewer than chunk_records records; readers do not care.
    void seal_open_chunks();

    /// Drops every record still in an open (unsealed) chunk — the model
    /// of a crash losing the buffered tail that never reached disk.
    /// Returns how many records were discarded.
    std::uint64_t discard_open_chunks();

    /// Dataset-level attribute.
    void set_dataset_attribute(wire::experiment_id experiment, const std::string& key,
                               const std::string& value);

    /// Seals all chunks, writes the index footer, returns the blob.
    /// The writer is spent afterwards.
    std::vector<std::uint8_t> finalize();

    std::uint64_t records_written() const { return records_; }
    /// Records currently durable (inside sealed chunks).
    std::uint64_t sealed_records() const;
    /// Records still in open chunks (lost if discard_open_chunks runs).
    std::uint64_t open_records() const;
    const archive_writer_stats& stats() const { return stats_; }

private:
    struct dataset {
        std::vector<std::uint8_t> sealed_chunks; // serialized, checksummed
        std::vector<std::pair<std::uint64_t, std::uint64_t>> chunk_spans; // offset,len
        std::vector<std::uint32_t> chunk_counts;
        std::vector<archived_record> open_chunk;
        std::map<std::string, std::string> attributes;
        std::uint64_t record_count{0};
    };

    void seal_chunk(dataset& ds);

    archive_limits limits_;
    std::map<wire::experiment_id, dataset> datasets_;
    std::map<std::string, std::string> attributes_;
    std::uint64_t records_{0};
    archive_writer_stats stats_;
};

/// Parses a blob produced by archive_writer; validates magic, version and
/// every chunk checksum up front.
class archive_reader {
public:
    /// Returns std::nullopt on malformed input or checksum mismatch.
    static std::optional<archive_reader> open(std::vector<std::uint8_t> blob);

    std::vector<wire::experiment_id> dataset_ids() const;
    std::uint64_t record_count(wire::experiment_id experiment) const;

    /// All records of a dataset, in append order.
    std::vector<archived_record> read_all(wire::experiment_id experiment) const;

    /// Random access by dataset-relative index (chunk-granular seek).
    std::optional<archived_record> read_at(wire::experiment_id experiment,
                                           std::uint64_t index) const;

    std::optional<std::string> attribute(const std::string& key) const;
    std::optional<std::string> dataset_attribute(wire::experiment_id experiment,
                                                 const std::string& key) const;
    /// All file-level attributes (for journal-style metadata scans).
    const std::map<std::string, std::string>& attributes() const { return attributes_; }

private:
    archive_reader() = default;

    struct chunk_ref {
        std::uint64_t offset;
        std::uint64_t length;
        std::uint32_t records;
    };
    struct dataset_view {
        std::vector<chunk_ref> chunks;
        std::map<std::string, std::string> attributes;
        std::uint64_t record_count{0};
    };

    std::vector<archived_record> parse_chunk(const chunk_ref& c) const;

    std::vector<std::uint8_t> blob_;
    std::map<wire::experiment_id, dataset_view> datasets_;
    std::map<std::string, std::string> attributes_;
};

constexpr std::uint64_t archive_magic = 0x4d4d545041524348ull; // "MMTPARCH"
constexpr std::uint16_t archive_version = 1;

} // namespace mmtp::daq
