// profiles.hpp — experiment workload profiles (Table 1 of the paper).
//
// Each experiment has a known, capacity-planned data acquisition rate
// (§2): the rate is set by sensor precision, ADC frequency/precision and
// expected event counts. A profile captures that "well-known shape" —
// aggregate rate, message size, and how many parallel sensor streams
// produce it — and benches time-scale it onto simulated links.
#pragma once

#include "common/units.hpp"
#include "wire/ids.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mmtp::daq {

struct experiment_profile {
    std::string name;
    std::uint32_t experiment; // wire::experiments::* number
    data_rate daq_rate;       // aggregate acquisition rate (Table 1)
    std::uint32_t message_bytes; // typical DAQ message (frame) size
    std::uint32_t streams;       // parallel sensor streams / links
    std::string note;

    /// Messages per second across all streams at the full DAQ rate.
    double messages_per_second() const
    {
        return static_cast<double>(daq_rate.bits_per_sec)
            / (8.0 * static_cast<double>(message_bytes));
    }

    /// Inter-message gap for one stream at `scale` of the full rate.
    sim_duration message_interval(double scale = 1.0) const
    {
        const double per_stream = messages_per_second() * scale / streams;
        return sim_duration{static_cast<std::int64_t>(1e9 / per_stream)};
    }

    /// Profile with the aggregate rate scaled by `factor` (benches run
    /// time-scaled replicas of the Table 1 rates on simulated links).
    experiment_profile scaled(double factor) const;
};

/// The five experiments of Table 1, with DAQ rates as published.
const std::vector<experiment_profile>& table1_profiles();

experiment_profile cms_l1_profile();     // 63 Tbps
experiment_profile dune_profile();       // 120 Tbps
experiment_profile ecce_profile();       // 100 Tbps
experiment_profile mu2e_profile();       // 160 Gbps
experiment_profile vera_rubin_profile(); // 400 Gbps

/// The ICEBERG DUNE prototype used in the pilot study (§5.4): a single
/// LArTPC readout chain that comfortably fits a 100 GbE path.
experiment_profile iceberg_profile();

} // namespace mmtp::daq
