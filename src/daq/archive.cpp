#include "daq/archive.hpp"

#include "common/crc32c.hpp"

namespace mmtp::daq {

namespace {

void write_string(byte_writer& w, const std::string& s)
{
    w.u16(static_cast<std::uint16_t>(s.size()));
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::optional<std::string> read_string(byte_reader& r)
{
    const auto n = r.u16();
    const auto bytes = r.bytes(n);
    if (r.failed()) return std::nullopt;
    return std::string(reinterpret_cast<const char*>(bytes.data()), bytes.size());
}

void write_attributes(byte_writer& w, const std::map<std::string, std::string>& attrs)
{
    w.u16(static_cast<std::uint16_t>(attrs.size()));
    for (const auto& [k, v] : attrs) {
        write_string(w, k);
        write_string(w, v);
    }
}

std::optional<std::map<std::string, std::string>> read_attributes(byte_reader& r)
{
    std::map<std::string, std::string> out;
    const auto n = r.u16();
    if (r.failed()) return std::nullopt; // truncated count must fail closed
    for (std::uint16_t i = 0; i < n; ++i) {
        auto k = read_string(r);
        auto v = read_string(r);
        if (!k || !v) return std::nullopt;
        out[*k] = *v;
    }
    return out;
}

} // namespace

// ----------------------------------------------------------- writer

archive_writer::archive_writer(archive_limits limits) : limits_(limits) {}

void archive_writer::set_attribute(const std::string& key, const std::string& value)
{
    attributes_[key] = value;
}

void archive_writer::set_dataset_attribute(wire::experiment_id experiment,
                                           const std::string& key,
                                           const std::string& value)
{
    datasets_[experiment].attributes[key] = value;
}

bool archive_writer::append(wire::experiment_id experiment, archived_record r)
{
    if (limits_.max_record_bytes != 0 && r.payload.size() > limits_.max_record_bytes) {
        stats_.rejected_oversize++;
        return false;
    }
    auto it = datasets_.find(experiment);
    if (it == datasets_.end()) {
        if (limits_.max_datasets != 0 && datasets_.size() >= limits_.max_datasets) {
            stats_.rejected_dataset_cap++;
            return false;
        }
        it = datasets_.try_emplace(experiment).first;
    }
    auto& ds = it->second;
    if (limits_.max_chunks_per_dataset != 0
        && ds.record_count >= static_cast<std::uint64_t>(limits_.max_chunks_per_dataset)
                * limits_.chunk_records) {
        stats_.rejected_chunk_cap++;
        return false;
    }
    ds.open_chunk.push_back(std::move(r));
    ds.record_count++;
    records_++;
    stats_.appended++;
    if (ds.open_chunk.size() >= limits_.chunk_records) seal_chunk(ds);
    return true;
}

void archive_writer::seal_open_chunks()
{
    for (auto& [id, ds] : datasets_) seal_chunk(ds);
}

std::uint64_t archive_writer::discard_open_chunks()
{
    std::uint64_t dropped = 0;
    for (auto& [id, ds] : datasets_) {
        dropped += ds.open_chunk.size();
        ds.record_count -= ds.open_chunk.size();
        records_ -= ds.open_chunk.size();
        ds.open_chunk.clear();
    }
    return dropped;
}

std::uint64_t archive_writer::sealed_records() const
{
    std::uint64_t n = 0;
    for (const auto& [id, ds] : datasets_)
        for (const auto c : ds.chunk_counts) n += c;
    return n;
}

std::uint64_t archive_writer::open_records() const
{
    std::uint64_t n = 0;
    for (const auto& [id, ds] : datasets_) n += ds.open_chunk.size();
    return n;
}

void archive_writer::seal_chunk(dataset& ds)
{
    if (ds.open_chunk.empty()) return;
    byte_writer w;
    w.u32(static_cast<std::uint32_t>(ds.open_chunk.size()));
    for (const auto& rec : ds.open_chunk) {
        w.u64(rec.sequence);
        w.u64(rec.timestamp_ns);
        w.u32(rec.size_bytes);
        w.u32(static_cast<std::uint32_t>(rec.payload.size()));
        w.bytes(rec.payload);
    }
    const auto body = w.take();
    const auto crc = crc32c(body);

    const std::uint64_t offset = ds.sealed_chunks.size();
    byte_writer chunk;
    chunk.u32(crc);
    chunk.bytes(body);
    const auto bytes = chunk.take();
    ds.sealed_chunks.insert(ds.sealed_chunks.end(), bytes.begin(), bytes.end());
    ds.chunk_spans.push_back({offset, bytes.size()});
    ds.chunk_counts.push_back(static_cast<std::uint32_t>(ds.open_chunk.size()));
    ds.open_chunk.clear();
    stats_.chunks_sealed++;
}

std::vector<std::uint8_t> archive_writer::finalize()
{
    for (auto& [id, ds] : datasets_) seal_chunk(ds);

    byte_writer w;
    // superblock: magic, version, placeholder for index offset
    w.u64(archive_magic);
    w.u16(archive_version);
    const std::size_t index_offset_pos = w.size();
    w.u64(0); // patched below (we patch via rebuild: byte_writer lacks u64 patch)

    // dataset chunk payloads, recording absolute offsets
    std::map<wire::experiment_id, std::uint64_t> base_offsets;
    for (auto& [id, ds] : datasets_) {
        base_offsets[id] = w.size();
        w.bytes(ds.sealed_chunks);
    }

    const std::uint64_t index_offset = w.size();
    // index: file attributes, then datasets
    write_attributes(w, attributes_);
    w.u32(static_cast<std::uint32_t>(datasets_.size()));
    for (auto& [id, ds] : datasets_) {
        w.u32(id);
        w.u64(ds.record_count);
        write_attributes(w, ds.attributes);
        w.u32(static_cast<std::uint32_t>(ds.chunk_spans.size()));
        for (std::size_t i = 0; i < ds.chunk_spans.size(); ++i) {
            w.u64(base_offsets[id] + ds.chunk_spans[i].first);
            w.u64(ds.chunk_spans[i].second);
            w.u32(ds.chunk_counts[i]);
        }
    }

    auto blob = w.take();
    // patch the index offset (big-endian u64 at index_offset_pos)
    for (int i = 0; i < 8; ++i)
        blob[index_offset_pos + i] =
            static_cast<std::uint8_t>(index_offset >> (8 * (7 - i)));
    datasets_.clear();
    return blob;
}

// ----------------------------------------------------------- reader

std::optional<archive_reader> archive_reader::open(std::vector<std::uint8_t> blob)
{
    archive_reader out;
    out.blob_ = std::move(blob);

    byte_reader r(out.blob_);
    if (r.u64() != archive_magic) return std::nullopt;
    if (r.u16() != archive_version) return std::nullopt;
    const auto index_offset = r.u64();
    if (r.failed() || index_offset >= out.blob_.size()) return std::nullopt;

    byte_reader idx(std::span<const std::uint8_t>(out.blob_).subspan(index_offset));
    auto attrs = read_attributes(idx);
    if (!attrs) return std::nullopt;
    out.attributes_ = std::move(*attrs);

    const auto n_datasets = idx.u32();
    if (idx.failed()) return std::nullopt;
    for (std::uint32_t d = 0; d < n_datasets; ++d) {
        const auto id = idx.u32();
        dataset_view view;
        view.record_count = idx.u64();
        if (idx.failed()) return std::nullopt; // fail closed before attr parse
        auto ds_attrs = read_attributes(idx);
        if (!ds_attrs) return std::nullopt;
        view.attributes = std::move(*ds_attrs);
        const auto n_chunks = idx.u32();
        if (idx.failed()) return std::nullopt; // huge n_chunks from garbage
        std::uint64_t indexed = 0;
        for (std::uint32_t c = 0; c < n_chunks; ++c) {
            chunk_ref ref;
            ref.offset = idx.u64();
            ref.length = idx.u64();
            ref.records = idx.u32();
            if (idx.failed()) return std::nullopt;
            // overflow-safe span check: offset + length can wrap in u64
            if (ref.length > out.blob_.size()
                || ref.offset > out.blob_.size() - ref.length)
                return std::nullopt;
            if (ref.length < 8) return std::nullopt; // crc + record count minimum
            indexed += ref.records;
            view.chunks.push_back(ref);
        }
        // the index must agree with itself: chunk record counts sum to
        // the dataset's declared record_count
        if (indexed != view.record_count) return std::nullopt;
        out.datasets_[id] = std::move(view);
    }
    if (idx.failed()) return std::nullopt;

    // validate every chunk checksum up front (HDF5's filter check)
    for (const auto& [id, view] : out.datasets_) {
        for (const auto& c : view.chunks) {
            byte_reader cr(
                std::span<const std::uint8_t>(out.blob_).subspan(c.offset, c.length));
            const auto crc = cr.u32();
            const auto body = cr.bytes(c.length - 4);
            if (cr.failed() || crc32c(body) != crc) return std::nullopt;
        }
    }
    return out;
}

std::vector<wire::experiment_id> archive_reader::dataset_ids() const
{
    std::vector<wire::experiment_id> out;
    for (const auto& [id, view] : datasets_) out.push_back(id);
    return out;
}

std::uint64_t archive_reader::record_count(wire::experiment_id experiment) const
{
    auto it = datasets_.find(experiment);
    return it == datasets_.end() ? 0 : it->second.record_count;
}

std::vector<archived_record> archive_reader::parse_chunk(const chunk_ref& c) const
{
    std::vector<archived_record> out;
    byte_reader r(std::span<const std::uint8_t>(blob_).subspan(c.offset, c.length));
    r.skip(4); // crc, validated at open()
    const auto n = r.u32();
    if (r.failed() || n != c.records) return {}; // body disagrees with index
    for (std::uint32_t i = 0; i < n; ++i) {
        archived_record rec;
        rec.sequence = r.u64();
        rec.timestamp_ns = r.u64();
        rec.size_bytes = r.u32();
        const auto payload_len = r.u32();
        const auto payload = r.bytes(payload_len);
        rec.payload.assign(payload.begin(), payload.end());
        if (r.failed()) return {};
        out.push_back(std::move(rec));
    }
    return out;
}

std::vector<archived_record> archive_reader::read_all(wire::experiment_id experiment) const
{
    std::vector<archived_record> out;
    auto it = datasets_.find(experiment);
    if (it == datasets_.end()) return out;
    for (const auto& c : it->second.chunks) {
        auto records = parse_chunk(c);
        out.insert(out.end(), std::make_move_iterator(records.begin()),
                   std::make_move_iterator(records.end()));
    }
    return out;
}

std::optional<archived_record> archive_reader::read_at(wire::experiment_id experiment,
                                                       std::uint64_t index) const
{
    auto it = datasets_.find(experiment);
    if (it == datasets_.end()) return std::nullopt;
    std::uint64_t base = 0;
    for (const auto& c : it->second.chunks) {
        if (index < base + c.records) {
            auto records = parse_chunk(c);
            const auto within = index - base;
            if (within >= records.size()) return std::nullopt;
            return records[within];
        }
        base += c.records;
    }
    return std::nullopt;
}

std::optional<std::string> archive_reader::attribute(const std::string& key) const
{
    auto it = attributes_.find(key);
    if (it == attributes_.end()) return std::nullopt;
    return it->second;
}

std::optional<std::string> archive_reader::dataset_attribute(
    wire::experiment_id experiment, const std::string& key) const
{
    auto it = datasets_.find(experiment);
    if (it == datasets_.end()) return std::nullopt;
    auto kit = it->second.attributes.find(key);
    if (kit == it->second.attributes.end()) return std::nullopt;
    return kit->second;
}

} // namespace mmtp::daq
