// wib.hpp — WIB-style LArTPC readout frames.
//
// DUNE front-end electronics (Warm Interface Boards) emit fixed-size,
// time-stamped frames carrying one ADC sample for each wire channel of a
// detector slice. This codec reproduces the properties the transport
// cares about — fixed size, monotonic 64-bit timestamps, slice tagging,
// CRC-protected payload — without copying the (proprietary-ish) DUNE
// field layout bit-for-bit. See DESIGN.md "Substitutions".
//
// Frame layout (big-endian):
//   u8  version        u8  crate      u8  slot       u8  fiber
//   u32 reserved
//   u64 timestamp      (sampling ticks, 16 ns/tick at 62.5 MHz)
//   u16 adc[channels]  (12-bit samples, top 4 bits zero)
//   u32 crc32c         (over everything above)
#pragma once

#include "common/rng.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mmtp::daq {

constexpr std::size_t wib_channels = 256;
constexpr std::size_t wib_header_bytes = 16;
constexpr std::size_t wib_frame_bytes = wib_header_bytes + wib_channels * 2 + 4;
/// Sampling period: 16 ns (62.5 MHz), as in DUNE's readout clock.
constexpr std::uint64_t wib_tick_ns = 16;

struct wib_frame {
    std::uint8_t version{1};
    std::uint8_t crate{0};
    std::uint8_t slot{0};
    std::uint8_t fiber{0};
    std::uint64_t timestamp{0}; // readout-clock ticks
    std::array<std::uint16_t, wib_channels> adc{};

    /// Serializes including the trailing CRC32C.
    std::vector<std::uint8_t> serialize() const;

    /// Parses and CRC-checks; std::nullopt on size or CRC mismatch.
    static std::optional<wib_frame> parse(std::span<const std::uint8_t> data);

    bool operator==(const wib_frame&) const = default;
};

/// Synthesizes LArTPC-like waveforms: a noisy pedestal with occasional
/// exponentially-decaying ionization pulses. `activity` is the per-channel
/// per-frame probability of a new pulse — cranked up by orders of
/// magnitude during a supernova burst.
class lartpc_synth {
public:
    struct config {
        std::uint16_t pedestal{900};
        double noise_sigma{3.5};
        double activity{0.002};
        double pulse_amplitude_mean{600.0};
        double pulse_decay{0.35}; // per-sample decay factor toward 0
    };

    lartpc_synth(rng r, config cfg);
    explicit lartpc_synth(rng r);

    /// Fills `frame.adc` for the next sample instant and advances state.
    void fill(wib_frame& frame);

    void set_activity(double a) { cfg_.activity = a; }
    const config& get_config() const { return cfg_; }

private:
    rng rng_;
    config cfg_;
    std::array<double, wib_channels> pulse_level_{};
};

} // namespace mmtp::daq
