#include "daq/profiles.hpp"

namespace mmtp::daq {

experiment_profile experiment_profile::scaled(double factor) const
{
    experiment_profile p = *this;
    p.daq_rate = data_rate{static_cast<std::uint64_t>(
        static_cast<double>(daq_rate.bits_per_sec) * factor)};
    return p;
}

experiment_profile cms_l1_profile()
{
    return {"CMS L1 Trigger", wire::experiments::cms_l1, data_rate{63000000000000ull},
            8192, 512, "high-energy physics; accelerator-driven"};
}

experiment_profile dune_profile()
{
    return {"DUNE", wire::experiments::dune, data_rate{120000000000000ull},
            5632, 600, "accelerator- and natural-neutrino-driven; 4 detector modules"};
}

experiment_profile ecce_profile()
{
    return {"ECCE detector", wire::experiments::ecce, data_rate{100000000000000ull},
            8192, 512, "electron-ion collider detector"};
}

experiment_profile mu2e_profile()
{
    return {"Mu2e", wire::experiments::mu2e, data_rate{160000000000ull},
            4096, 40, "DAQ data carried directly over Ethernet frames (§4)"};
}

experiment_profile vera_rubin_profile()
{
    return {"Vera Rubin", wire::experiments::vera_rubin, data_rate{400000000000ull},
            8192, 21, "telescope; nightly 30 TB capture + 5.4 Gbps alert bursts"};
}

experiment_profile iceberg_profile()
{
    // One LArTPC readout chain: WIB-like frames (see wib.hpp) at a
    // cadence that produces ~10 Gbps — the pilot aggregates chains to
    // saturate 100 GbE.
    return {"ICEBERG", wire::experiments::iceberg, data_rate{10000000000ull},
            5632, 1, "DUNE prototype LArTPC used in the pilot study"};
}

const std::vector<experiment_profile>& table1_profiles()
{
    static const std::vector<experiment_profile> profiles = {
        cms_l1_profile(), dune_profile(), ecce_profile(), mu2e_profile(),
        vera_rubin_profile()};
    return profiles;
}

} // namespace mmtp::daq
