// trigger.hpp — trigger records and the ICEBERG/DUNE message streams.
//
// The DAQ stage "identif[ies] interesting data in the DAQ stream — such
// as evidence of particle collisions — then a time window of such
// readings is sent over the WAN" (§1). A trigger_record is that window:
// a batch of WIB frames for one trigger decision.
//
// iceberg_stream reproduces the pilot's data source (1): the ICEBERG
// DUNE-prototype LArTPC readout. supernova_source reproduces source (2):
// synthetic DUNE data simulating neutrino generation by different
// physical events, including a supernova burst whose onset multiplies
// detector activity for tens of seconds (§3's DUNE → Vera Rubin scenario).
#pragma once

#include "common/rng.hpp"
#include "daq/message.hpp"
#include "daq/wib.hpp"

#include <memory>

namespace mmtp::daq {

/// A trigger record: `frame_count` consecutive WIB frames for one slice.
struct trigger_record {
    std::uint64_t trigger_id{0};
    std::uint64_t t0_ticks{0};
    std::uint32_t frame_count{0};
    std::uint8_t crate{0}, slot{0}, fiber{0};
};

/// Streams trigger records from a synthetic LArTPC as daq_messages.
/// Message size = daq_header + frame_count * wib_frame_bytes; by default
/// frames are virtual bulk (size-accurate, content-free). With
/// `materialize_frames`, real WIB frames are synthesized into the inline
/// payload (used by tests and the HDF5-style archival example).
class iceberg_stream final : public message_source {
public:
    struct config {
        std::uint32_t slice{0};
        std::uint32_t frames_per_record{10};
        /// Trigger cadence; the default yields ~10 Gbps with 10 frames.
        sim_duration trigger_interval{sim_duration{4200}};
        std::uint64_t record_limit{0}; // 0 = unbounded
        bool materialize_frames{false};
        lartpc_synth::config synth{};
    };

    iceberg_stream(rng r, config cfg);

    std::optional<timed_message> next() override;

    static std::uint32_t message_bytes(std::uint32_t frames_per_record)
    {
        return static_cast<std::uint32_t>(daq_header::wire_bytes
                                          + frames_per_record * wib_frame_bytes);
    }

private:
    config cfg_;
    lartpc_synth synth_;
    sim_time at_{sim_time::zero()};
    std::uint64_t emitted_{0};
};

/// Low steady single-detector rate that jumps by `burst_multiplier` for
/// `burst_duration` starting at `burst_onset` — the shape of a supernova
/// neutrino burst sweeping through DUNE.
class supernova_source final : public message_source {
public:
    struct config {
        wire::experiment_id experiment{0};
        std::uint32_t message_bytes{5632};
        sim_duration quiet_interval{sim_duration{1000000}}; // 1 ms
        sim_time burst_onset{sim_time::never()};
        sim_duration burst_duration{sim_duration{10000000000}}; // 10 s
        std::uint32_t burst_multiplier{100};
        std::uint64_t message_limit{0};
    };

    explicit supernova_source(config cfg) : cfg_(cfg) {}

    std::optional<timed_message> next() override;

    /// True while `t` falls inside the configured burst window.
    bool in_burst(sim_time t) const;

private:
    config cfg_;
    sim_time at_{sim_time::zero()};
    std::uint64_t emitted_{0};
};

} // namespace mmtp::daq
