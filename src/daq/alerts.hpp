// alerts.hpp — alert streams for integrated research infrastructure.
//
// Two alert workloads from the paper:
//
//  * Vera Rubin's alert distribution (§2.1): alongside the nightly 30 TB
//    capture, an alert stream "expected to burst to 5.4 Gbps" fans out
//    interesting observations to telescopes and researchers within
//    milliseconds. Modeled as periodic visit bursts of ~100 KB alerts.
//
//  * DUNE → Vera Rubin supernova early warning (§3, Req 10): a single
//    tiny, maximally latency-critical message carrying the inferred
//    photon arrival direction, emitted when the neutrino burst is
//    detected (neutrinos escape the collapsing star before photons).
#pragma once

#include "common/rng.hpp"
#include "daq/message.hpp"

namespace mmtp::daq {

/// Periodic alert bursts: every `visit_interval`, `alerts_per_visit`
/// messages of lognormal-ish size are emitted back-to-back.
class alert_burst_source final : public message_source {
public:
    struct config {
        wire::experiment_id experiment{0};
        sim_duration visit_interval{sim_duration{39000000000}}; // 39 s cadence
        std::uint32_t alerts_per_visit{10000};
        std::uint32_t mean_alert_bytes{100000};
        std::uint64_t visit_limit{0};
        /// Spacing of alerts inside a burst (source-side serialization).
        sim_duration intra_burst_gap{sim_duration{10000}}; // 10 us
    };

    alert_burst_source(rng r, config cfg);

    std::optional<timed_message> next() override;

    /// Peak rate of one burst, for capacity planning checks.
    data_rate burst_rate() const;

private:
    rng rng_;
    config cfg_;
    sim_time visit_start_{sim_time::zero()};
    std::uint64_t visit_{0};
    std::uint32_t within_{0};
    std::uint64_t seq_{0};
};

/// Supernova direction alert: one small urgent message at `onset`.
/// The payload is a real serialized body (right ascension/declination in
/// micro-degrees and a confidence) so integration tests can check
/// content end-to-end.
class supernova_alert_source final : public message_source {
public:
    struct alert_body {
        std::int32_t ra_udeg{0};
        std::int32_t dec_udeg{0};
        std::uint16_t confidence_permille{0};

        std::vector<std::uint8_t> serialize(wire::experiment_id experiment,
                                            std::uint64_t timestamp_ns) const;
        static std::optional<alert_body> parse(std::span<const std::uint8_t> payload);
    };

    supernova_alert_source(wire::experiment_id experiment, sim_time onset, alert_body body);

    std::optional<timed_message> next() override;

private:
    wire::experiment_id experiment_;
    sim_time onset_;
    alert_body body_;
    bool emitted_{false};
};

} // namespace mmtp::daq
