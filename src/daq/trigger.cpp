#include "daq/trigger.hpp"

namespace mmtp::daq {

iceberg_stream::iceberg_stream(rng r, config cfg)
    : cfg_(cfg), synth_(r, cfg.synth)
{
}

std::optional<timed_message> iceberg_stream::next()
{
    if (cfg_.record_limit != 0 && emitted_ >= cfg_.record_limit) return std::nullopt;

    timed_message tm;
    tm.at = at_;
    tm.msg.experiment =
        wire::make_experiment_id(wire::experiments::iceberg, cfg_.slice);
    tm.msg.sequence = emitted_;
    tm.msg.timestamp_ns = static_cast<std::uint64_t>(at_.ns);
    tm.msg.size_bytes = message_bytes(cfg_.frames_per_record);

    byte_writer w;
    daq_header dh;
    dh.experiment = tm.msg.experiment;
    dh.sequence = emitted_;
    dh.timestamp_ns = tm.msg.timestamp_ns;
    dh.record_count = static_cast<std::uint16_t>(cfg_.frames_per_record);
    dh.serialize(w);

    if (cfg_.materialize_frames) {
        wib_frame f;
        f.crate = 1;
        f.slot = static_cast<std::uint8_t>(cfg_.slice >> 2);
        f.fiber = static_cast<std::uint8_t>(cfg_.slice & 3);
        for (std::uint32_t i = 0; i < cfg_.frames_per_record; ++i) {
            f.timestamp = static_cast<std::uint64_t>(at_.ns) / wib_tick_ns + i;
            synth_.fill(f);
            const auto bytes = f.serialize();
            w.bytes(bytes);
        }
    }
    tm.msg.inline_payload = w.take();

    emitted_++;
    at_ = at_ + cfg_.trigger_interval;
    return tm;
}

bool supernova_source::in_burst(sim_time t) const
{
    if (cfg_.burst_onset.is_never()) return false;
    return t >= cfg_.burst_onset && t < cfg_.burst_onset + cfg_.burst_duration;
}

std::optional<timed_message> supernova_source::next()
{
    if (cfg_.message_limit != 0 && emitted_ >= cfg_.message_limit) return std::nullopt;

    timed_message tm;
    tm.at = at_;
    tm.msg.experiment = cfg_.experiment;
    tm.msg.sequence = emitted_;
    tm.msg.timestamp_ns = static_cast<std::uint64_t>(at_.ns);
    tm.msg.size_bytes = cfg_.message_bytes;
    // Flag burst messages so downstream (alert generation) can react.
    byte_writer w;
    daq_header dh;
    dh.experiment = cfg_.experiment;
    dh.sequence = emitted_;
    dh.timestamp_ns = tm.msg.timestamp_ns;
    dh.record_count = 1;
    dh.flags = in_burst(at_) ? 1 : 0;
    dh.serialize(w);
    tm.msg.inline_payload = w.take();

    emitted_++;
    const auto step = in_burst(at_)
        ? sim_duration{cfg_.quiet_interval.ns / cfg_.burst_multiplier}
        : cfg_.quiet_interval;
    at_ = at_ + step;
    return tm;
}

} // namespace mmtp::daq
