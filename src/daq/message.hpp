// message.hpp — the DAQ message abstraction and message sources.
//
// DAQ traffic "consists of discrete, time-stamped messages with
// well-defined boundaries" (§1, Req 7). A daq_message is one such unit:
// the transports (udp/tcp/mmtp) consume messages from a message_source
// and are agnostic to what detector produced them.
//
// Every message begins with the shared top-level DAQ header (Req 9 —
// "DUNE's four detectors each have specific headers but they all share a
// top-level DAQ header"); detector-specific content follows.
#pragma once

#include "common/bytes.hpp"
#include "common/units.hpp"
#include "wire/ids.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

namespace mmtp::daq {

/// Shared top-level DAQ header, 24 bytes on the wire:
///   u32 experiment_id   u64 sequence   u64 timestamp_ns   u16 record_count
///   u16 flags
struct daq_header {
    wire::experiment_id experiment{0};
    std::uint64_t sequence{0};
    std::uint64_t timestamp_ns{0};
    std::uint16_t record_count{0};
    std::uint16_t flags{0};

    static constexpr std::size_t wire_bytes = 24;

    void serialize(byte_writer& w) const;
    static std::optional<daq_header> parse(std::span<const std::uint8_t> data);

    bool operator==(const daq_header&) const = default;
};

/// One transport-layer message produced by an instrument.
struct daq_message {
    wire::experiment_id experiment{0}; // includes the slice (Req 8)
    std::uint64_t sequence{0};
    std::uint64_t timestamp_ns{0}; // source clock at digitization
    std::uint32_t size_bytes{0};   // total message size incl. daq_header
    /// Real content bytes (alerts, tests); may be shorter than
    /// size_bytes — the remainder is virtual bulk data.
    std::vector<std::uint8_t> inline_payload;
};

struct timed_message {
    sim_time at;
    daq_message msg;
};

/// Pull-based generator: each call returns the next message and the time
/// it leaves the instrument. Sources are deterministic given their rng.
class message_source {
public:
    virtual ~message_source() = default;
    virtual std::optional<timed_message> next() = 0;
};

/// Fixed-size messages at a fixed cadence — the "regular shape (size and
/// arrival rate)" of DAQ elephant flows (§1).
class steady_source final : public message_source {
public:
    steady_source(wire::experiment_id experiment, std::uint32_t size_bytes,
                  sim_duration interval, sim_time start = sim_time::zero(),
                  std::uint64_t count_limit = 0);

    std::optional<timed_message> next() override;

private:
    wire::experiment_id experiment_;
    std::uint32_t size_bytes_;
    sim_duration interval_;
    sim_time at_;
    std::uint64_t limit_;
    std::uint64_t emitted_{0};
};

/// Merges several sources into one time-ordered stream.
class composite_source final : public message_source {
public:
    void add(std::unique_ptr<message_source> src);
    std::optional<timed_message> next() override;

private:
    struct slot {
        std::unique_ptr<message_source> src;
        std::optional<timed_message> head;
    };
    std::vector<slot> slots_;
};

} // namespace mmtp::daq
