#include "daq/alerts.hpp"

namespace mmtp::daq {

alert_burst_source::alert_burst_source(rng r, config cfg) : rng_(r), cfg_(cfg) {}

data_rate alert_burst_source::burst_rate() const
{
    const double bytes_per_sec = static_cast<double>(cfg_.mean_alert_bytes)
        / cfg_.intra_burst_gap.seconds();
    return data_rate{static_cast<std::uint64_t>(bytes_per_sec * 8.0)};
}

std::optional<timed_message> alert_burst_source::next()
{
    if (cfg_.visit_limit != 0 && visit_ >= cfg_.visit_limit) return std::nullopt;

    timed_message tm;
    tm.at = visit_start_ + cfg_.intra_burst_gap * static_cast<std::int64_t>(within_);
    tm.msg.experiment = cfg_.experiment;
    tm.msg.sequence = seq_++;
    tm.msg.timestamp_ns = static_cast<std::uint64_t>(tm.at.ns);
    // Alert sizes vary around the mean (serialized image cutouts differ);
    // clamp to [mean/4, mean*4] to keep the distribution realistic.
    const double factor = 0.25 + rng_.exponential(0.75);
    double sz = static_cast<double>(cfg_.mean_alert_bytes) * (factor > 4.0 ? 4.0 : factor);
    tm.msg.size_bytes = static_cast<std::uint32_t>(sz);
    if (tm.msg.size_bytes < daq_header::wire_bytes)
        tm.msg.size_bytes = daq_header::wire_bytes;

    byte_writer w;
    daq_header dh;
    dh.experiment = cfg_.experiment;
    dh.sequence = tm.msg.sequence;
    dh.timestamp_ns = tm.msg.timestamp_ns;
    dh.record_count = 1;
    dh.serialize(w);
    tm.msg.inline_payload = w.take();

    if (++within_ >= cfg_.alerts_per_visit) {
        within_ = 0;
        visit_++;
        visit_start_ = visit_start_ + cfg_.visit_interval;
    }
    return tm;
}

std::vector<std::uint8_t> supernova_alert_source::alert_body::serialize(
    wire::experiment_id experiment, std::uint64_t timestamp_ns) const
{
    byte_writer w;
    daq_header dh;
    dh.experiment = experiment;
    dh.sequence = 0;
    dh.timestamp_ns = timestamp_ns;
    dh.record_count = 1;
    dh.flags = 0x8000; // alert flag
    dh.serialize(w);
    w.u32(static_cast<std::uint32_t>(ra_udeg));
    w.u32(static_cast<std::uint32_t>(dec_udeg));
    w.u16(confidence_permille);
    return w.take();
}

std::optional<supernova_alert_source::alert_body> supernova_alert_source::alert_body::parse(
    std::span<const std::uint8_t> payload)
{
    if (payload.size() < daq_header::wire_bytes + 10) return std::nullopt;
    byte_reader r(payload.subspan(daq_header::wire_bytes));
    alert_body b;
    b.ra_udeg = static_cast<std::int32_t>(r.u32());
    b.dec_udeg = static_cast<std::int32_t>(r.u32());
    b.confidence_permille = r.u16();
    if (r.failed()) return std::nullopt;
    return b;
}

supernova_alert_source::supernova_alert_source(wire::experiment_id experiment,
                                               sim_time onset, alert_body body)
    : experiment_(experiment), onset_(onset), body_(body)
{
}

std::optional<timed_message> supernova_alert_source::next()
{
    if (emitted_) return std::nullopt;
    emitted_ = true;
    timed_message tm;
    tm.at = onset_;
    tm.msg.experiment = experiment_;
    tm.msg.sequence = 0;
    tm.msg.timestamp_ns = static_cast<std::uint64_t>(onset_.ns);
    tm.msg.inline_payload =
        body_.serialize(experiment_, tm.msg.timestamp_ns);
    tm.msg.size_bytes = static_cast<std::uint32_t>(tm.msg.inline_payload.size());
    return tm;
}

} // namespace mmtp::daq
