#include "tcp/cc.hpp"

#include <cmath>

namespace mmtp::tcp {

namespace {

class reno final : public congestion_control {
public:
    explicit reno(cc_config cfg)
        : cfg_(cfg), cwnd_(cfg.init_cwnd_bytes), ssthresh_(cfg.max_cwnd_bytes)
    {
    }

    void on_ack(std::uint64_t newly_acked, sim_time) override
    {
        if (cwnd_ < ssthresh_) {
            // slow start: one MSS per acked MSS
            cwnd_ += newly_acked;
        } else {
            // congestion avoidance: ~one MSS per RTT (per-ACK increment)
            const std::uint64_t inc = (static_cast<std::uint64_t>(cfg_.mss) * cfg_.mss) / cwnd_;
            cwnd_ += inc > 0 ? inc : 1;
        }
        if (cwnd_ > cfg_.max_cwnd_bytes) cwnd_ = cfg_.max_cwnd_bytes;
    }

    void on_loss(sim_time) override
    {
        ssthresh_ = cwnd_ / 2;
        if (ssthresh_ < 2ull * cfg_.mss) ssthresh_ = 2ull * cfg_.mss;
        cwnd_ = ssthresh_;
    }

    void on_timeout(sim_time) override
    {
        ssthresh_ = cwnd_ / 2;
        if (ssthresh_ < 2ull * cfg_.mss) ssthresh_ = 2ull * cfg_.mss;
        cwnd_ = cfg_.mss;
    }

    std::uint64_t cwnd() const override { return cwnd_; }
    std::string name() const override { return "reno"; }

private:
    cc_config cfg_;
    std::uint64_t cwnd_;
    std::uint64_t ssthresh_;
};

/// CUBIC (RFC 8312-flavoured): window growth is a cubic function of time
/// since the last loss, anchored at the pre-loss window w_max.
class cubic final : public congestion_control {
public:
    explicit cubic(cc_config cfg)
        : cfg_(cfg), cwnd_(cfg.init_cwnd_bytes), ssthresh_(cfg.max_cwnd_bytes)
    {
    }

    void on_rtt_sample(sim_duration rtt) override
    {
        // HyStart-lite: in slow start, a delay increase of max(1 ms,
        // min_rtt/8) over the observed floor signals queue build-up;
        // exit slow start before overshooting the bottleneck buffer.
        if (min_rtt_.ns == 0 || rtt < min_rtt_) min_rtt_ = rtt;
        if (cwnd_ < ssthresh_) {
            const auto thresh = min_rtt_.ns / 8 > 1'000'000 ? min_rtt_.ns / 8 : 1'000'000;
            if (rtt.ns > min_rtt_.ns + thresh) ssthresh_ = cwnd_;
        }
    }

    void on_ack(std::uint64_t newly_acked, sim_time now) override
    {
        if (cwnd_ < ssthresh_) {
            cwnd_ += newly_acked;
            if (cwnd_ > cfg_.max_cwnd_bytes) cwnd_ = cfg_.max_cwnd_bytes;
            return;
        }
        if (epoch_start_.is_never()) {
            epoch_start_ = now;
            if (w_max_ == 0) w_max_ = cwnd_;
            const double wmax_mss = static_cast<double>(w_max_) / cfg_.mss;
            const double cw_mss = static_cast<double>(cwnd_) / cfg_.mss;
            k_ = std::cbrt(wmax_mss * beta_ / c_);
            if (cw_mss > wmax_mss) k_ = 0.0;
        }
        const double t = (now - epoch_start_).seconds();
        const double target_mss =
            c_ * std::pow(t - k_, 3.0) + static_cast<double>(w_max_) / cfg_.mss;
        std::uint64_t target = static_cast<std::uint64_t>(
            target_mss > 1.0 ? target_mss * cfg_.mss : cfg_.mss);
        if (target > cwnd_) {
            // approach the cubic target over the next RTT (per-ACK share)
            const std::uint64_t inc =
                ((target - cwnd_) * newly_acked) / (cwnd_ ? cwnd_ : 1);
            cwnd_ += inc > 0 ? inc : 1;
        } else {
            const std::uint64_t inc = (static_cast<std::uint64_t>(cfg_.mss) * cfg_.mss)
                / (100 * (cwnd_ ? cwnd_ : 1));
            cwnd_ += inc; // TCP-friendly floor growth
        }
        if (cwnd_ > cfg_.max_cwnd_bytes) cwnd_ = cfg_.max_cwnd_bytes;
    }

    void on_loss(sim_time) override
    {
        w_max_ = cwnd_;
        cwnd_ = static_cast<std::uint64_t>(static_cast<double>(cwnd_) * (1.0 - beta_));
        if (cwnd_ < 2ull * cfg_.mss) cwnd_ = 2ull * cfg_.mss;
        ssthresh_ = cwnd_;
        epoch_start_ = sim_time::never();
    }

    void on_timeout(sim_time) override
    {
        w_max_ = cwnd_;
        ssthresh_ = cwnd_ / 2;
        if (ssthresh_ < 2ull * cfg_.mss) ssthresh_ = 2ull * cfg_.mss;
        cwnd_ = cfg_.mss;
        epoch_start_ = sim_time::never();
    }

    std::uint64_t cwnd() const override { return cwnd_; }
    std::string name() const override { return "cubic"; }

private:
    static constexpr double c_ = 0.4;
    static constexpr double beta_ = 0.3; // CUBIC's multiplicative decrease

    cc_config cfg_;
    std::uint64_t cwnd_;
    std::uint64_t ssthresh_;
    std::uint64_t w_max_{0};
    double k_{0.0};
    sim_time epoch_start_{sim_time::never()};
    sim_duration min_rtt_{sim_duration::zero()};
};

} // namespace

std::unique_ptr<congestion_control> make_reno(cc_config cfg)
{
    return std::make_unique<reno>(cfg);
}

std::unique_ptr<congestion_control> make_cubic(cc_config cfg)
{
    return std::make_unique<cubic>(cfg);
}

std::unique_ptr<congestion_control> make_cc(cc_kind kind, cc_config cfg)
{
    switch (kind) {
    case cc_kind::cubic: return make_cubic(cfg);
    case cc_kind::reno: default: return make_reno(cfg);
    }
}

} // namespace mmtp::tcp
