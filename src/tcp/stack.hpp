// stack.hpp — per-host TCP demultiplexer.
//
// One stack per host: it claims IPv4 protocol 6, demuxes inbound segments
// to connections by (local port, remote addr, remote port), and spawns
// passive connections for listeners — the way DTN transfer tools accept
// parallel streams.
#pragma once

#include "netsim/host.hpp"
#include "tcp/connection.hpp"

#include <functional>
#include <map>
#include <memory>

namespace mmtp::tcp {

class stack {
public:
    using accept_cb = std::function<void(connection&)>;

    stack(netsim::host& h, netsim::packet_id_source& ids);

    /// Active open toward (addr, port). The connection is owned by the
    /// stack; the reference stays valid until the stack is destroyed.
    connection& connect(wire::ipv4_addr remote_addr, std::uint16_t remote_port,
                        tcp_config cfg = {});

    /// Passive open: segments to `port` from unknown peers create
    /// connections with `cfg`; `on_accept` runs before any data arrives.
    void listen(std::uint16_t port, tcp_config cfg, accept_cb on_accept);

    std::size_t connection_count() const { return conns_.size(); }

private:
    struct conn_key {
        std::uint16_t local_port;
        wire::ipv4_addr remote_addr;
        std::uint16_t remote_port;
        auto operator<=>(const conn_key&) const = default;
    };
    struct listener {
        tcp_config cfg;
        accept_cb on_accept;
    };

    void on_packet(netsim::packet&& p, const wire::ipv4_header& ip, std::size_t offset);
    std::uint16_t alloc_port();

    netsim::host& host_;
    netsim::packet_id_source& ids_;
    std::map<conn_key, std::unique_ptr<connection>> conns_;
    std::map<std::uint16_t, listener> listeners_;
    std::uint16_t next_ephemeral_{49152};
};

} // namespace mmtp::tcp
