#include "tcp/stack.hpp"

namespace mmtp::tcp {

stack::stack(netsim::host& h, netsim::packet_id_source& ids) : host_(h), ids_(ids)
{
    host_.set_protocol_handler(
        wire::ipproto_tcp,
        [this](netsim::packet&& p, const wire::ipv4_header& ip, std::size_t offset) {
            on_packet(std::move(p), ip, offset);
        });
}

std::uint16_t stack::alloc_port()
{
    return next_ephemeral_++;
}

connection& stack::connect(wire::ipv4_addr remote_addr, std::uint16_t remote_port,
                           tcp_config cfg)
{
    const auto local_port = alloc_port();
    auto conn = std::make_unique<connection>(host_, ids_, cfg, local_port, remote_addr,
                                             remote_port);
    auto& ref = *conn;
    conns_[conn_key{local_port, remote_addr, remote_port}] = std::move(conn);
    ref.connect();
    return ref;
}

void stack::listen(std::uint16_t port, tcp_config cfg, accept_cb on_accept)
{
    listeners_[port] = listener{cfg, std::move(on_accept)};
}

void stack::on_packet(netsim::packet&& p, const wire::ipv4_header& ip, std::size_t offset)
{
    const auto seg = segment_header::parse(
        std::span<const std::uint8_t>(p.headers).subspan(offset));
    if (!seg) return;

    // Payload length = everything beyond the parsed headers.
    const std::uint64_t hdr_total = offset + seg->wire_size();
    std::uint64_t payload_len = p.virtual_payload + p.payload.size();
    if (p.headers.size() > hdr_total) payload_len += p.headers.size() - hdr_total;

    const conn_key key{seg->dst_port, ip.src, seg->src_port};
    auto it = conns_.find(key);
    if (it == conns_.end()) {
        // New connection? Only for SYNs to a listening port.
        if (!seg->has(tcp_flag::syn) || seg->has(tcp_flag::ack)) return;
        auto lit = listeners_.find(seg->dst_port);
        if (lit == listeners_.end()) return;
        auto conn = std::make_unique<connection>(host_, ids_, lit->second.cfg,
                                                 seg->dst_port, ip.src, seg->src_port);
        auto& ref = *conn;
        conns_[key] = std::move(conn);
        if (lit->second.on_accept) lit->second.on_accept(ref);
        ref.begin_passive(*seg);
        return;
    }
    it->second->handle_segment(*seg, payload_len);
}

} // namespace mmtp::tcp
