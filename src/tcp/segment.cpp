#include "tcp/segment.hpp"

namespace mmtp::tcp {

void segment_header::serialize(byte_writer& w) const
{
    w.u16(src_port);
    w.u16(dst_port);
    w.u64(seq);
    w.u64(ack);
    w.u8(flags);
    w.u32(window);
    const auto n = sacks.size() > max_sack_blocks ? max_sack_blocks : sacks.size();
    w.u8(static_cast<std::uint8_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
        w.u64(sacks[i].start);
        w.u64(sacks[i].end);
    }
}

std::optional<segment_header> segment_header::parse(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    segment_header h;
    h.src_port = r.u16();
    h.dst_port = r.u16();
    h.seq = r.u64();
    h.ack = r.u64();
    h.flags = r.u8();
    h.window = r.u32();
    const auto n = r.u8();
    if (n > max_sack_blocks) return std::nullopt;
    for (std::size_t i = 0; i < n; ++i) {
        sack_block b;
        b.start = r.u64();
        b.end = r.u64();
        if (b.end <= b.start) return std::nullopt;
        h.sacks.push_back(b);
    }
    if (r.failed()) return std::nullopt;
    return h;
}

} // namespace mmtp::tcp
