#include "tcp/connection.hpp"

#include "netsim/engine.hpp"
#include "wire/lower.hpp"

namespace mmtp::tcp {

tcp_config tuned_dtn_config(data_rate path_rate, sim_duration rtt, data_rate host_limit)
{
    tcp_config cfg;
    cfg.cc = cc_kind::cubic;
    const double bdp = static_cast<double>(path_rate.bits_per_sec) / 8.0 * rtt.seconds();
    cfg.send_buffer_bytes = static_cast<std::uint64_t>(bdp * 2.0) + 1 * 1024 * 1024;
    cfg.recv_buffer_bytes = cfg.send_buffer_bytes;
    cfg.init_cwnd_bytes = 10ull * cfg.mss;
    cfg.host_limit = host_limit;
    return cfg;
}

connection::connection(netsim::host& h, netsim::packet_id_source& ids, tcp_config cfg,
                       std::uint16_t local_port, wire::ipv4_addr remote_addr,
                       std::uint16_t remote_port)
    : host_(h),
      eng_(h.sim()),
      ids_(ids),
      cfg_(cfg),
      local_port_(local_port),
      remote_addr_(remote_addr),
      remote_port_(remote_port)
{
    cc_config ccc;
    ccc.mss = cfg_.mss;
    ccc.init_cwnd_bytes = cfg_.init_cwnd_bytes;
    cc_ = make_cc(cfg_.cc, ccc);
    rwnd_ = cfg_.recv_buffer_bytes; // assume a peer like us until told
}

sim_duration connection::rto() const
{
    sim_duration base = cfg_.initial_rto;
    if (srtt_) {
        base = *srtt_ + 4 * rttvar_;
        if (base < cfg_.min_rto) base = cfg_.min_rto;
    }
    // exponential backoff on consecutive timeouts
    for (std::uint32_t i = 0; i < rto_backoff_ && base.ns < 60'000'000'000; ++i)
        base = base * 2;
    return base;
}

void connection::rtt_sample(sim_duration sample)
{
    if (!srtt_) {
        srtt_ = sample;
        rttvar_ = sample / 2;
    } else {
        const auto err = sim_duration{std::abs(sample.ns - srtt_->ns)};
        rttvar_ = sim_duration{(3 * rttvar_.ns + err.ns) / 4};
        srtt_ = sim_duration{(7 * srtt_->ns + sample.ns) / 8};
    }
    stats_.last_srtt = *srtt_;
    cc_->on_rtt_sample(sample);
}

void connection::connect()
{
    state_ = state::syn_sent;
    emit(0, 0, flag_bit(tcp_flag::syn), false);
    snd_nxt_ = 1;
    stream_end_ = 1 + app_written_;
    arm_rto();
}

void connection::begin_passive(const segment_header& syn)
{
    rcv_nxt_ = syn.seq + 1;
    irs_consumed_ = rcv_nxt_;
    rwnd_ = syn.window;
    state_ = state::syn_received;
    emit(0, 0, flag_bit(tcp_flag::syn) | flag_bit(tcp_flag::ack), false);
    snd_nxt_ = 1;
    stream_end_ = 1 + app_written_;
    arm_rto();
}

std::uint64_t connection::send(std::uint64_t bytes)
{
    const std::uint64_t queued = state_ == state::closed
        ? app_written_
        : (stream_end_ > snd_una_ ? stream_end_ - snd_una_ : 0);
    const std::uint64_t room =
        cfg_.send_buffer_bytes > queued ? cfg_.send_buffer_bytes - queued : 0;
    const std::uint64_t accepted = bytes < room ? bytes : room;
    app_written_ += accepted;
    if (state_ != state::closed) stream_end_ = 1 + app_written_;
    maybe_send_data();
    return accepted;
}

void connection::close()
{
    fin_queued_ = true;
    maybe_send_data();
}

std::uint64_t connection::inflight() const
{
    const std::uint64_t outstanding = snd_nxt_ - snd_una_;
    const std::uint64_t sacked = sacked_.covered();
    return outstanding > sacked ? outstanding - sacked : 0;
}

std::uint64_t connection::effective_window() const
{
    const std::uint64_t w = cc_->cwnd();
    return w < rwnd_ ? w : rwnd_;
}

std::uint32_t connection::advertised_window() const
{
    // App consumes delivered bytes instantly, so only out-of-order bytes
    // occupy the receive buffer.
    const std::uint64_t ooo = received_.covered();
    const std::uint64_t free_bytes =
        cfg_.recv_buffer_bytes > ooo ? cfg_.recv_buffer_bytes - ooo : 0;
    return free_bytes > 0xffffffffull ? 0xffffffffu
                                      : static_cast<std::uint32_t>(free_bytes);
}

std::vector<sack_block> connection::current_sacks() const
{
    std::vector<sack_block> out;
    for (const auto& [s, e] : received_.intervals()) {
        if (e <= rcv_nxt_) continue;
        out.push_back({s > rcv_nxt_ ? s : rcv_nxt_, e});
        if (out.size() >= max_sack_blocks) break;
    }
    return out;
}

void connection::emit(std::uint64_t seq, std::uint64_t len, std::uint8_t flags,
                      bool retransmission)
{
    segment_header seg;
    seg.src_port = local_port_;
    seg.dst_port = remote_port_;
    seg.seq = seq;
    seg.ack = rcv_nxt_;
    seg.flags = flags;
    if (state_ != state::closed && rcv_nxt_ > 0) seg.flags |= flag_bit(tcp_flag::ack);
    seg.window = advertised_window();
    seg.sacks = current_sacks();

    netsim::packet p = host_.make_ipv4_packet(wire::ipproto_tcp, remote_addr_);
    byte_writer w;
    seg.serialize(w);
    const auto hdr_bytes = w.take();
    p.headers.insert(p.headers.end(), hdr_bytes.begin(), hdr_bytes.end());
    p.virtual_payload = len;
    p.id = ids_.next();
    p.created = eng_.now();
    p.flow_id = (static_cast<std::uint64_t>(local_port_) << 16) | remote_port_;

    stats_.segments_sent++;
    if (len > 0) {
        stats_.bytes_sent += len;
        if (retransmission) {
            stats_.retransmitted_segments++;
        } else if (timing_.size() < max_timing_probes && seq >= snd_high_) {
            // Karn's algorithm: only time data on its first transmission
            // (seq below snd_high_ means a post-RTO resend of old data).
            timing_.push_back({seq + len, eng_.now()});
        }
        const auto end = seq + len;
        if (end > snd_high_) snd_high_ = end;
    }
    host_.send_ipv4(std::move(p), remote_addr_);
}

void connection::send_ack_now()
{
    ack_generation_++;
    ack_scheduled_ = false;
    segs_since_ack_ = 0;
    emit(snd_nxt_, 0, flag_bit(tcp_flag::ack), false);
}

void connection::maybe_send_data()
{
    if (state_ != state::established && state_ != state::fin_sent) return;

    const auto now = eng_.now();
    // End-host processing ceiling: the leaky bucket says when the host
    // can next push a segment through its stack (§4.1's tuning wall).
    if (cfg_.host_limit.bits_per_sec != 0 && host_ready_ > now) {
        if (!send_pending_) {
            send_pending_ = true;
            eng_.schedule_at(host_ready_, [this] {
                send_pending_ = false;
                maybe_send_data();
            });
        }
        return;
    }

    bool sent_any = false;
    while (true) {
        const std::uint64_t wnd = effective_window();
        const std::uint64_t used = inflight();
        if (used >= wnd) break;
        const std::uint64_t budget = wnd - used;

        std::uint64_t seq = 0;
        std::uint64_t len = 0;
        bool is_rtx = false;

        if (in_recovery_) {
            if (rtx_cursor_ < snd_una_) rtx_cursor_ = snd_una_;
            // RFC 6675-flavoured loss inference: only data *below the
            // highest SACKed block* is considered lost; unsacked data
            // above it may simply still be in flight.
            std::uint64_t high = recovery_point_ < snd_nxt_ ? recovery_point_ : snd_nxt_;
            if (!sacked_.intervals().empty()) {
                const auto highest_sacked_start = sacked_.intervals().rbegin()->first;
                if (highest_sacked_start < high) high = highest_sacked_start;
            } else {
                // no SACK info: classic fast retransmit repairs only the
                // segment at snd_una
                const auto una_seg = snd_una_ + cfg_.mss;
                if (una_seg < high) high = una_seg;
            }
            const auto gaps = sacked_.gaps(rtx_cursor_, high);
            if (!gaps.empty()) {
                seq = gaps.front().first;
                len = gaps.front().second - gaps.front().first;
                if (len > cfg_.mss) len = cfg_.mss;
                if (len > budget) len = budget;
                is_rtx = true;
                rtx_cursor_ = seq + len;
            }
        }
        if (len == 0) {
            // new data; in the post-RTO resend region, skip over ranges
            // the peer already SACKed
            if (snd_nxt_ < snd_high_ && sacked_.contains(snd_nxt_)) {
                snd_nxt_ = sacked_.next_missing(snd_nxt_);
                continue;
            }
            const std::uint64_t avail =
                stream_end_ > snd_nxt_ ? stream_end_ - snd_nxt_ : 0;
            if (avail == 0) {
                if (fin_queued_ && !fin_sent_ && snd_nxt_ == stream_end_) {
                    fin_sent_ = true;
                    state_ = state::fin_sent;
                    emit(snd_nxt_, 0, flag_bit(tcp_flag::fin) | flag_bit(tcp_flag::ack),
                         false);
                    snd_nxt_ += 1; // FIN consumes one sequence number
                    arm_rto();
                }
                break;
            }
            seq = snd_nxt_;
            len = avail < cfg_.mss ? avail : cfg_.mss;
            if (len > budget) len = budget;
            // do not run into a SACKed range
            auto it = sacked_.intervals().upper_bound(snd_nxt_);
            if (it != sacked_.intervals().end() && it->first < snd_nxt_ + len)
                len = it->first - snd_nxt_;
            if (len == 0) break;
            snd_nxt_ += len;
        }

        emit(seq, len, flag_bit(tcp_flag::ack), is_rtx);
        sent_any = true;

        if (cfg_.host_limit.bits_per_sec != 0) {
            const auto cost = cfg_.host_limit.transmission_time(len);
            host_ready_ = (host_ready_ > now ? host_ready_ : now) + cost;
            if (host_ready_ > now) {
                if (!send_pending_) {
                    send_pending_ = true;
                    eng_.schedule_at(host_ready_, [this] {
                        send_pending_ = false;
                        maybe_send_data();
                    });
                }
                break;
            }
        }
    }
    if (sent_any) arm_rto();
}

void connection::arm_rto()
{
    const auto gen = ++rto_generation_;
    if (snd_una_ >= snd_nxt_) return; // nothing outstanding
    eng_.schedule_in(rto(), [this, gen] {
        if (gen != rto_generation_) return;
        on_rto();
    });
}

void connection::on_rto()
{
    if (snd_una_ >= snd_nxt_) return;
    stats_.timeouts++;
    rto_backoff_++;
    cc_->on_timeout(eng_.now());
    timing_.clear();
    in_recovery_ = false;
    dupacks_ = 0;

    if (state_ == state::syn_sent) {
        emit(0, 0, flag_bit(tcp_flag::syn), true);
        arm_rto();
        return;
    }
    if (state_ == state::syn_received) {
        emit(0, 0, flag_bit(tcp_flag::syn) | flag_bit(tcp_flag::ack), true);
        arm_rto();
        return;
    }

    // Go-back-N with SACK memory: rewind snd_nxt and let slow start
    // resend from the cumulative-ack point, skipping ranges the peer has
    // already SACKed (the resend path in maybe_send_data consults
    // sacked_), so only genuinely missing data crosses the wire again.
    snd_nxt_ = snd_una_;
    if (fin_sent_) fin_sent_ = false; // FIN will be re-emitted after the data
    if (state_ == state::fin_sent) state_ = state::established;
    stats_.retransmitted_segments++; // count the rewind as repair work
    maybe_send_data();
    arm_rto();
}

void connection::enter_established()
{
    state_ = state::established;
    stream_end_ = 1 + app_written_;
    if (on_connected_) on_connected_();
    maybe_send_data();
}

void connection::deliver_in_order()
{
    const auto before = rcv_nxt_;
    auto next = received_.next_missing(rcv_nxt_);
    if (next > rcv_nxt_) {
        received_.erase(0, next);
        rcv_nxt_ = next;
    }
    if (rcv_nxt_ == before) return;

    std::uint64_t new_app = rcv_nxt_ - before;
    if (remote_fin_ && rcv_nxt_ > remote_fin_seq_) {
        new_app -= 1; // the FIN itself is not app data
        if (state_ == state::fin_sent || fin_queued_) state_ = state::done;
        if (on_closed_) on_closed_();
    }
    delivered_app_ += new_app;
    if (on_delivered_ && new_app > 0) on_delivered_(delivered_app_);
}

void connection::process_ack(const segment_header& seg)
{
    rwnd_ = seg.window;
    for (const auto& b : seg.sacks) {
        if (b.start >= snd_una_) sacked_.insert(b.start, b.end);
    }

    if (seg.ack > snd_nxt_) {
        if (seg.ack > snd_high_) return; // acking data never sent: ignore
        // After a go-back-N rewind, acks may cover pre-rewind data the
        // peer already holds; fast-forward instead of resending it.
        snd_nxt_ = seg.ack;
    }

    if (seg.ack > snd_una_) {
        const std::uint64_t newly = seg.ack - snd_una_;
        snd_una_ = seg.ack;
        stats_.bytes_acked += newly;
        sacked_.erase(0, snd_una_);
        dupacks_ = 0;
        rto_backoff_ = 0;

        // sample from the newest probe the ack covers (stretch-ack safe)
        std::optional<sim_time> sent_at;
        while (!timing_.empty() && timing_.front().first <= seg.ack) {
            sent_at = timing_.front().second;
            timing_.pop_front();
        }
        if (sent_at) rtt_sample(eng_.now() - *sent_at);

        if (in_recovery_) {
            if (snd_una_ >= recovery_point_) {
                in_recovery_ = false;
            } else if (rtx_cursor_ < snd_una_) {
                rtx_cursor_ = snd_una_; // partial ack: keep repairing
            }
        } else {
            cc_->on_ack(newly, eng_.now());
        }

        if (snd_una_ >= snd_nxt_)
            rto_generation_++; // everything acked: cancel timer
        else
            arm_rto();
        if (on_writable_) on_writable_();
    } else if (seg.ack == snd_una_ && snd_nxt_ > snd_una_) {
        dupacks_++;
        if (dupacks_ == 3 && !in_recovery_) {
            stats_.fast_retransmits++;
            cc_->on_loss(eng_.now());
            in_recovery_ = true;
            // NewReno-style: recovery lasts until everything sent so far
            // is acknowledged, preventing repeated window collapses from
            // one loss burst.
            recovery_point_ = snd_high_;
            rtx_cursor_ = snd_una_;
            timing_.clear(); // Karn: don't time retransmitted data
        }
    }
    maybe_send_data();
}

void connection::handle_segment(const segment_header& seg, std::uint64_t payload_len)
{
    if (seg.has(tcp_flag::rst)) {
        state_ = state::done;
        if (on_closed_) on_closed_();
        return;
    }

    switch (state_) {
    case state::syn_sent:
        if (seg.has(tcp_flag::syn) && seg.has(tcp_flag::ack) && seg.ack >= 1) {
            rcv_nxt_ = seg.seq + 1;
            irs_consumed_ = rcv_nxt_;
            snd_una_ = seg.ack;
            rwnd_ = seg.window;
            rto_generation_++;
            rto_backoff_ = 0;
            enter_established();
            send_ack_now();
        }
        return;
    case state::syn_received:
        if (seg.has(tcp_flag::ack) && seg.ack >= 1) {
            snd_una_ = seg.ack > snd_una_ ? seg.ack : snd_una_;
            rto_generation_++;
            rto_backoff_ = 0;
            enter_established();
            // fall through to normal processing of any piggybacked data
            break;
        }
        return;
    case state::closed:
    case state::done:
        return;
    case state::established:
    case state::fin_sent:
        break;
    }

    if (seg.has(tcp_flag::ack)) process_ack(seg);

    bool need_immediate_ack = false;
    if (payload_len > 0) {
        const std::uint64_t seg_end = seg.seq + payload_len;
        if (seg_end <= rcv_nxt_) {
            need_immediate_ack = true; // stale duplicate
        } else if (seg.seq > rcv_nxt_ + cfg_.recv_buffer_bytes) {
            need_immediate_ack = true; // beyond our buffer: drop
        } else {
            const bool in_order = seg.seq <= rcv_nxt_;
            received_.insert(seg.seq, seg_end);
            deliver_in_order();
            if (!in_order || !received_.empty()) need_immediate_ack = true;
            segs_since_ack_++;
        }
    }
    if (seg.has(tcp_flag::fin)) {
        remote_fin_ = true;
        remote_fin_seq_ = seg.seq + payload_len;
        received_.insert(remote_fin_seq_, remote_fin_seq_ + 1);
        deliver_in_order();
        need_immediate_ack = true;
    }

    if (payload_len == 0 && !seg.has(tcp_flag::fin)) return; // pure ack

    if (need_immediate_ack || segs_since_ack_ >= 2) {
        send_ack_now();
    } else if (!ack_scheduled_) {
        ack_scheduled_ = true;
        const auto gen = ++ack_generation_;
        eng_.schedule_in(cfg_.delayed_ack, [this, gen] {
            if (gen != ack_generation_ || !ack_scheduled_) return;
            send_ack_now();
        });
    }
}

} // namespace mmtp::tcp
