// connection.hpp — TCP connection state machine (baseline transport).
//
// Implements the behaviour the paper's §4 describes DAQ transfers relying
// on today: bytestream, handshake, sliding window with flow control,
// Reno/CUBIC congestion control, RTO + fast retransmit with SACK, and a
// per-stream end-host processing ceiling (`host_limit`) that reproduces
// the observed ~30 Gbps single-stream / ~55 Gbps testbed limits (§4.1).
//
// The stream payload is virtual (byte counts, not bytes): the benches
// measure throughput, FCT and delivery latency, none of which depend on
// payload content. Message delineation on top of the bytestream — and
// therefore head-of-line blocking — is observable through the
// `on_delivered` callback, which reports cumulative *in-order* bytes.
#pragma once

#include "common/interval_set.hpp"
#include "common/units.hpp"
#include "netsim/host.hpp"
#include "netsim/packet.hpp"
#include "tcp/cc.hpp"
#include "tcp/segment.hpp"

#include <deque>
#include <functional>
#include <map>
#include <optional>

namespace mmtp::tcp {

struct tcp_config {
    std::uint32_t mss{8900}; // jumbo frames (§2.1), leaving header room in a 9000 MTU
    std::uint64_t send_buffer_bytes{256 * 1024};
    std::uint64_t recv_buffer_bytes{256 * 1024};
    cc_kind cc{cc_kind::cubic};
    std::uint64_t init_cwnd_bytes{10 * 8900};
    sim_duration min_rto{sim_duration{200000000}};     // 200 ms (Linux)
    sim_duration initial_rto{sim_duration{1000000000}}; // 1 s pre-RTT-sample
    sim_duration delayed_ack{sim_duration{500000}};     // 500 us
    /// Per-stream end-host processing ceiling; 0 = unlimited. Models the
    /// DTN tuning wall: a single heavily-tuned stream tops out around
    /// 30-55 Gbps regardless of link rate (§4.1).
    data_rate host_limit{0};
};

/// A tuned-DTN profile: CUBIC, buffers sized to 2x the path BDP, jumbo
/// MSS, and the single-stream host ceiling (default 30 Gbps as per [46]).
tcp_config tuned_dtn_config(data_rate path_rate, sim_duration rtt,
                            data_rate host_limit = data_rate::from_gbps(30));

struct connection_stats {
    std::uint64_t bytes_sent{0};
    std::uint64_t bytes_acked{0};
    std::uint64_t segments_sent{0};
    std::uint64_t retransmitted_segments{0};
    std::uint64_t fast_retransmits{0};
    std::uint64_t timeouts{0};
    sim_duration last_srtt{sim_duration::zero()};
};

class connection {
public:
    enum class state {
        closed,
        syn_sent,
        syn_received,
        established,
        fin_sent,
        done,
    };

    connection(netsim::host& h, netsim::packet_id_source& ids, tcp_config cfg,
               std::uint16_t local_port, wire::ipv4_addr remote_addr,
               std::uint16_t remote_port);

    /// Active open (client). Passive connections are created by the
    /// stack on an inbound SYN and never call connect().
    void connect();

    /// Appends `bytes` of (virtual) stream data; they are transmitted as
    /// the window allows. Returns bytes accepted (send-buffer bound).
    std::uint64_t send(std::uint64_t bytes);

    /// Half-close after everything queued so far is delivered.
    void close();

    state current_state() const { return state_; }
    const connection_stats& stats() const { return stats_; }
    /// Cumulative in-order application bytes handed up so far.
    std::uint64_t delivered_bytes() const { return delivered_app_; }
    std::uint64_t acked_bytes() const { return stats_.bytes_acked; }
    std::uint64_t cwnd_bytes() const { return cc_->cwnd(); }

    /// Cumulative in-order bytes available to the application.
    void set_on_delivered(std::function<void(std::uint64_t)> cb)
    {
        on_delivered_ = std::move(cb);
    }
    void set_on_connected(std::function<void()> cb) { on_connected_ = std::move(cb); }
    void set_on_closed(std::function<void()> cb) { on_closed_ = std::move(cb); }
    /// Invoked when more send-buffer space opens (write-ready signal).
    void set_on_writable(std::function<void()> cb) { on_writable_ = std::move(cb); }

    /// Called by the stack for each inbound segment of this connection.
    void handle_segment(const segment_header& seg, std::uint64_t payload_len);

    std::uint16_t local_port() const { return local_port_; }
    wire::ipv4_addr remote_addr() const { return remote_addr_; }
    std::uint16_t remote_port() const { return remote_port_; }

    /// Marks this connection as passively opened (stack use).
    void begin_passive(const segment_header& syn);

private:
    void emit(std::uint64_t seq, std::uint64_t len, std::uint8_t flags, bool retransmission);
    void send_ack_now();
    void maybe_send_data();
    void enter_established();
    void arm_rto();
    void on_rto();
    void rtt_sample(sim_duration sample);
    std::uint64_t inflight() const;
    std::uint64_t effective_window() const;
    std::uint32_t advertised_window() const;
    std::vector<sack_block> current_sacks() const;
    void deliver_in_order();
    void process_ack(const segment_header& seg);
    sim_duration rto() const;

    netsim::host& host_;
    netsim::scheduler& eng_;
    netsim::packet_id_source& ids_;
    tcp_config cfg_;
    std::uint16_t local_port_;
    wire::ipv4_addr remote_addr_;
    std::uint16_t remote_port_;
    std::unique_ptr<congestion_control> cc_;

    state state_{state::closed};

    // --- sender ---
    std::uint64_t snd_una_{0};
    std::uint64_t snd_nxt_{0};
    std::uint64_t snd_high_{0}; // highest sequence ever sent (Karn guard)
    std::uint64_t app_written_{0}; // total bytes the app has queued
    std::uint64_t stream_end_{0};  // app_written_ in sequence space
    bool fin_queued_{false};
    bool fin_sent_{false};
    std::uint64_t rwnd_{0};
    interval_set sacked_;
    std::uint32_t dupacks_{0};
    bool in_recovery_{false};
    std::uint64_t recovery_point_{0};
    std::uint64_t rtx_cursor_{0}; // next gap to repair during recovery

    // host processing ceiling (leaky bucket)
    sim_time host_ready_{sim_time::zero()};
    bool send_pending_{false};

    // RTO machinery
    std::uint64_t rto_generation_{0};
    std::uint32_t rto_backoff_{0};
    std::optional<sim_duration> srtt_;
    sim_duration rttvar_{sim_duration::zero()};
    // RTT probes: (end_seq, sent_at) for first transmissions only
    // (Karn's rule); bounded like a TCP-timestamps implementation.
    std::deque<std::pair<std::uint64_t, sim_time>> timing_;
    static constexpr std::size_t max_timing_probes = 32;

    // --- receiver ---
    std::uint64_t rcv_nxt_{0};
    std::uint64_t irs_consumed_{0}; // SYN-consumed offset for accounting
    std::uint64_t delivered_app_{0};
    interval_set received_;
    bool remote_fin_{false};
    std::uint64_t remote_fin_seq_{0};
    std::uint32_t segs_since_ack_{0};
    bool ack_scheduled_{false};
    std::uint64_t ack_generation_{0};

    connection_stats stats_;
    std::function<void(std::uint64_t)> on_delivered_;
    std::function<void()> on_connected_;
    std::function<void()> on_closed_;
    std::function<void()> on_writable_;
};

} // namespace mmtp::tcp
