// segment.hpp — TCP segment header codec for the baseline stack.
//
// This is the simulator's TCP, faithful where it matters for DAQ-path
// behaviour (sequence space, cumulative ACK + SACK, flags, windows) and
// simplified where it does not: sequence/ack numbers are carried as
// 64-bit stream offsets (standing in for 32-bit numbers + PAWS-style
// unwrapping, which tuned DTN stacks handle anyway), the advertised
// window is 32-bit (16-bit window + window scaling), and checksums are
// elided because the simulator models corruption at the link layer.
//
// Layout (big-endian), 26 bytes + 16*sack_count:
//   u16 src_port   u16 dst_port
//   u64 seq        u64 ack
//   u8  flags      u32 window
//   u8  sack_count, then sack_count x { u64 start, u64 end }
#pragma once

#include "common/bytes.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mmtp::tcp {

enum class tcp_flag : std::uint8_t {
    fin = 1u << 0,
    syn = 1u << 1,
    rst = 1u << 2,
    ack = 1u << 3,
};

constexpr std::uint8_t flag_bit(tcp_flag f) { return static_cast<std::uint8_t>(f); }

struct sack_block {
    std::uint64_t start{0};
    std::uint64_t end{0};
    bool operator==(const sack_block&) const = default;
};

constexpr std::size_t max_sack_blocks = 4;

struct segment_header {
    std::uint16_t src_port{0};
    std::uint16_t dst_port{0};
    std::uint64_t seq{0};
    std::uint64_t ack{0};
    std::uint8_t flags{0};
    std::uint32_t window{0};
    std::vector<sack_block> sacks;

    bool has(tcp_flag f) const { return (flags & flag_bit(f)) != 0; }
    void set(tcp_flag f) { flags |= flag_bit(f); }

    std::size_t wire_size() const { return 26 + sacks.size() * 16; }

    void serialize(byte_writer& w) const;
    static std::optional<segment_header> parse(std::span<const std::uint8_t> data);

    bool operator==(const segment_header&) const = default;
};

} // namespace mmtp::tcp
