// cc.hpp — congestion-control algorithms for the TCP baseline.
//
// Two algorithms cover today's DTN practice: Reno/NewReno (the classical
// behaviour the paper's §4 complaints are calibrated against) and CUBIC
// (the Linux default used on tuned DTNs). Both operate on a cwnd in
// bytes. The interface is event-driven so connection.cpp stays free of
// algorithm detail.
#pragma once

#include "common/units.hpp"

#include <cstdint>
#include <memory>
#include <string>

namespace mmtp::tcp {

class congestion_control {
public:
    virtual ~congestion_control() = default;

    virtual void on_ack(std::uint64_t newly_acked_bytes, sim_time now) = 0;
    /// RTT sample feedback (HyStart-style slow-start exit); default no-op.
    virtual void on_rtt_sample(sim_duration) {}
    /// Triple-dupack style loss (fast retransmit entry).
    virtual void on_loss(sim_time now) = 0;
    /// Retransmission timeout: collapse to one segment.
    virtual void on_timeout(sim_time now) = 0;

    virtual std::uint64_t cwnd() const = 0;
    virtual std::string name() const = 0;
};

struct cc_config {
    std::uint32_t mss{8960};
    std::uint64_t init_cwnd_bytes{10 * 8960};
    std::uint64_t max_cwnd_bytes{1ull << 40};
};

std::unique_ptr<congestion_control> make_reno(cc_config cfg);
std::unique_ptr<congestion_control> make_cubic(cc_config cfg);

enum class cc_kind { reno, cubic };

std::unique_ptr<congestion_control> make_cc(cc_kind kind, cc_config cfg);

} // namespace mmtp::tcp
