// report.hpp — console table and CSV emitters for the bench harness.
//
// Every bench prints the same rows/series the paper's evaluation reports,
// through this one table type, so outputs stay uniform and greppable.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

namespace mmtp::telemetry {

class table {
public:
    explicit table(std::string title) : title_(std::move(title)) {}

    void set_columns(std::vector<std::string> names) { columns_ = std::move(names); }
    void add_row(std::vector<std::string> cells) { rows_.push_back(std::move(cells)); }

    /// Renders aligned columns to stdout.
    void print() const;

    /// Renders the table as CSV text. Deterministic: identical rows
    /// produce identical bytes, which is how chaos drills verify that
    /// two same-seed runs emit byte-identical telemetry.
    std::string csv() const;

    /// Writes a CSV file; returns false on I/O failure.
    bool write_csv(const std::string& path) const;

    std::size_t row_count() const { return rows_.size(); }

private:
    std::string title_;
    std::vector<std::string> columns_;
    std::vector<std::vector<std::string>> rows_;
};

/// Formats helpers used across benches.
std::string fmt_rate(double mbps);
std::string fmt_duration_us(double us);
std::string fmt_count(std::uint64_t n);
std::string fmt_double(double v, int decimals = 2);

} // namespace mmtp::telemetry
