// run_recorder.hpp — full-run record/replay through the archive container.
//
// SimBricks-style capture: after a deterministic run finishes, the
// recorder archives everything the run observed — the flight recorder's
// wire-event ring (with its interned site table), the metrics registry
// snapshot, and the human-readable report — into one archive blob. The
// replayer reopens the blob and re-drives consumers without re-running
// the simulation: it re-renders the metrics CSV byte-identically,
// replays wire events in order, and can rebuild a flight_recorder whose
// format_timeline output matches the live run's. Recorded runs become a
// corpus: offline analysis, regression diffs, and perf baselines all
// read the same blobs (ROADMAP: "record full runs — wire traffic +
// telemetry — into archives for deterministic replay").
//
// Capture is strictly post-run — the recorder never touches the engine,
// so recording cannot perturb the simulation it records.
#pragma once

#include "common/trace.hpp"
#include "daq/archive.hpp"
#include "telemetry/metrics.hpp"

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

namespace mmtp::telemetry {

/// Reserved dataset ids (top of the experiment-id space; real experiment
/// ids are (exp << 12) | slice with exp <= 15, nowhere near these).
constexpr wire::experiment_id run_ds_wire = 0xffff0001;
constexpr wire::experiment_id run_ds_metrics = 0xffff0002;
constexpr wire::experiment_id run_ds_report = 0xffff0003;
constexpr wire::experiment_id run_ds_sites = 0xffff0004;

/// One replayed wire event (a trace::record, archive-round-tripped).
struct replayed_event {
    std::int64_t at_ns{0};
    std::uint64_t packet_id{0};
    std::uint64_t arg{0};
    std::uint32_t site{0};
    trace::hop kind{trace::hop::link_enqueue};
    trace::reason why{trace::reason::none};
};

class run_recorder {
public:
    run_recorder(const std::string& scenario, std::uint64_t seed);

    /// Archives the surviving ring events and the full site table.
    void capture_trace(const trace::flight_recorder& fr);

    /// Archives a metrics snapshot (row order = snapshot order, which is
    /// already the canonical sorted order).
    void capture_metrics(const metrics_registry& reg);

    /// Archives the rendered report/summary text verbatim.
    void capture_report(const std::string& csv);

    /// Seals everything into the blob. The recorder is spent afterwards.
    std::vector<std::uint8_t> finalize();

private:
    daq::archive_writer writer_;
    std::uint64_t wire_events_{0};
    std::uint64_t metrics_rows_{0};
};

class run_replayer {
public:
    /// nullopt on malformed blobs (delegates to archive_reader's checks).
    static std::optional<run_replayer> open(std::vector<std::uint8_t> blob);

    std::string scenario() const;
    std::uint64_t seed() const;

    /// Re-renders the recorded metrics snapshot as the canonical
    /// `metric,field,value` CSV — byte-identical to the live run's.
    std::string metrics_csv() const;

    /// The recorded report text (empty if none was captured).
    std::string report_csv() const;

    /// Replays every recorded wire event, oldest first.
    void replay_wire(const std::function<void(const replayed_event&)>& fn) const;
    std::vector<replayed_event> wire_events() const;

    /// Rebuilds a flight recorder from the recording: re-interns the
    /// site table in id order and re-emits every event, so
    /// format_timeline / message_timeline behave as they did live.
    /// `fr` must be freshly constructed with capacity >= the event count.
    void rebuild_flight_recorder(trace::flight_recorder& fr) const;

    /// Integrity check: recorded counts match the archived attributes.
    bool verify() const;

private:
    explicit run_replayer(daq::archive_reader reader) : reader_(std::move(reader)) {}

    daq::archive_reader reader_;
};

} // namespace mmtp::telemetry
