// recorder.hpp — measurement helpers shared by tests, examples, benches.
//
// transfer_tracker turns byte-delivery callbacks into flow-completion
// times; message_latency_tracker turns per-datagram timestamps into
// latency distributions; rate_sampler turns cumulative counters into a
// throughput time series.
#pragma once

#include "common/histogram.hpp"
#include "common/units.hpp"
#include "netsim/scheduler.hpp"

#include <algorithm>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

namespace mmtp::telemetry {

/// Tracks one transfer of a known size: feed cumulative delivered bytes,
/// read the flow-completion time once everything landed.
class transfer_tracker {
public:
    transfer_tracker(netsim::scheduler& eng, std::uint64_t expected_bytes)
        : eng_(eng), expected_(expected_bytes), started_(eng.now())
    {
    }

    void on_delivered(std::uint64_t cumulative_bytes)
    {
        // The counter is cumulative: a reporter that resets (component
        // restart) or reports out of order must never move delivery
        // accounting backwards — or un-complete a finished transfer.
        if (cumulative_bytes < delivered_) regressions_++;
        delivered_ = std::max(delivered_, cumulative_bytes);
        if (!completed_ && delivered_ >= expected_) completed_ = eng_.now();
    }

    bool complete() const { return completed_.has_value(); }
    std::uint64_t delivered() const { return delivered_; }
    std::uint64_t expected() const { return expected_; }
    /// Times on_delivered() saw the cumulative counter go backwards.
    std::uint64_t regressions() const { return regressions_; }

    /// Flow completion time (start of tracking -> last byte).
    std::optional<sim_duration> fct() const
    {
        if (!completed_) return std::nullopt;
        return *completed_ - started_;
    }

    /// Average goodput over the FCT.
    std::optional<data_rate> goodput() const
    {
        const auto t = fct();
        if (!t || t->ns <= 0) return std::nullopt;
        return data_rate{static_cast<std::uint64_t>(
            static_cast<double>(expected_) * 8.0 / t->seconds())};
    }

private:
    netsim::scheduler& eng_;
    std::uint64_t expected_;
    sim_time started_;
    std::uint64_t delivered_{0};
    std::uint64_t regressions_{0};
    std::optional<sim_time> completed_;
};

/// Source-timestamp → arrival-latency distribution (µs).
class message_latency_tracker {
public:
    explicit message_latency_tracker(netsim::scheduler& eng) : eng_(eng) {}

    void on_arrival(std::uint64_t source_timestamp_ns)
    {
        const auto lat_ns = eng_.now().ns - static_cast<std::int64_t>(source_timestamp_ns);
        // A timestamp from the future (clock skew, corrupted header)
        // must not enter the distribution as a fake 0 µs sample — that
        // silently drags every percentile down. Count it instead.
        if (lat_ns < 0) {
            negative_latency_++;
            return;
        }
        latency_us_.record(static_cast<std::uint64_t>(lat_ns / 1000));
    }

    const histogram& latency_us() const { return latency_us_; }
    /// Arrivals whose source timestamp was in the future (excluded from
    /// the distribution).
    std::uint64_t negative_latency() const { return negative_latency_; }

private:
    netsim::scheduler& eng_;
    histogram latency_us_;
    std::uint64_t negative_latency_{0};
};

/// Measures time-to-recover after an injected fault: from the instant
/// the fault fires, a deterministic periodic probe evaluates a health
/// predicate and records the first instant it holds again. Probes ride
/// the simulation engine, so the measurement is byte-identical across
/// runs with the same seed and fault script.
class recovery_tracker {
public:
    using health_fn = std::function<bool()>;

    recovery_tracker(netsim::scheduler& eng, sim_duration probe_interval)
        : eng_(eng), interval_(probe_interval)
    {
    }

    /// Schedules probing of `healthy` starting at `fault_at` (the fault
    /// instant) and gives up at `deadline` if health never returns.
    void arm(sim_time fault_at, health_fn healthy, sim_time deadline);

    bool recovered() const { return recovered_at_.has_value(); }
    std::optional<sim_duration> time_to_recover() const
    {
        if (!recovered_at_) return std::nullopt;
        return *recovered_at_ - fault_at_;
    }
    std::uint64_t probes() const { return probes_; }
    /// True once probing stopped at the deadline without health returning.
    bool gave_up() const { return gave_up_; }

private:
    void probe();

    netsim::scheduler& eng_;
    sim_duration interval_;
    health_fn healthy_;
    sim_time fault_at_{sim_time::zero()};
    sim_time deadline_{sim_time::zero()};
    std::optional<sim_time> recovered_at_;
    std::uint64_t probes_{0};
    bool gave_up_{false};
};

/// Periodically samples a cumulative byte counter into Mbps readings.
class rate_sampler {
public:
    using counter_fn = std::function<std::uint64_t()>;

    rate_sampler(netsim::scheduler& eng, counter_fn counter, sim_duration interval)
        : eng_(eng), counter_(std::move(counter)), interval_(interval)
    {
    }

    /// Starts sampling until `until`.
    void start(sim_time until);

    struct sample {
        sim_time at;
        double mbps;
    };
    const std::vector<sample>& samples() const { return samples_; }

    double peak_mbps() const;
    double mean_mbps() const;

private:
    void tick(sim_time until);

    netsim::scheduler& eng_;
    counter_fn counter_;
    sim_duration interval_;
    std::uint64_t last_value_{0};
    std::vector<sample> samples_;
};

} // namespace mmtp::telemetry
