// metrics.hpp — central metrics registry.
//
// One registry per scenario collects every number worth reporting:
// owned counters/gauges/histograms that components bump directly, and
// pull-model probes that read a component's existing stats struct at
// snapshot time (so instrumenting a subsystem never adds work to its
// hot path). Metrics are identified by a name plus optional labels;
// snapshots render to CSV or JSON with rows sorted by (metric, field),
// and every exported value is an integer — same-seed runs produce
// byte-identical snapshots.
#pragma once

#include "common/histogram.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace mmtp::netsim {
class engine;
class link;
class shard_coordinator;
class priority_queue_disc;
} // namespace mmtp::netsim
namespace mmtp::control {
class capacity_planner;
class health_monitor;
class policy_engine;
} // namespace mmtp::control
namespace mmtp::pnet {
class programmable_switch;
} // namespace mmtp::pnet
namespace mmtp::core {
class buffer_service;
class receiver;
class sender;
class stack;
} // namespace mmtp::core

namespace mmtp::telemetry {

/// Label set attached to a metric name, rendered canonically as
/// `name{k1=v1,k2=v2}` in registration order.
using metric_labels = std::vector<std::pair<std::string, std::string>>;

/// Monotonic event count.
class counter {
public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    std::uint64_t value() const { return value_; }

private:
    std::uint64_t value_{0};
};

/// Point-in-time level (queue depths, committed rates).
class gauge {
public:
    void set(std::int64_t v) { value_ = v; }
    void add(std::int64_t by) { value_ += by; }
    std::int64_t value() const { return value_; }

private:
    std::int64_t value_{0};
};

class metrics_registry {
public:
    using probe_fn = std::function<std::uint64_t()>;

    /// Renders `name{k1=v1,...}`; the identity metrics are keyed by.
    static std::string key_of(const std::string& name, const metric_labels& labels);

    // Owned instruments: created on first use, shared on repeat lookups.
    counter& get_counter(const std::string& name, const metric_labels& labels = {});
    gauge& get_gauge(const std::string& name, const metric_labels& labels = {});
    histogram& get_histogram(const std::string& name, const metric_labels& labels = {});

    /// Pull-model probe sampled at snapshot time. Re-registering a key
    /// replaces its probe (components may re-wire across phases).
    void add_probe(const std::string& name, const metric_labels& labels, probe_fn fn);

    /// One snapshot row: `metric` is the labeled key, `field` is "value"
    /// for scalars or the statistic name for histograms.
    struct row {
        std::string metric;
        std::string field;
        std::int64_t value;
    };
    /// All rows, sorted by (metric, field). Probes are sampled here.
    std::vector<row> snapshot() const;

    /// `metric,field,value` lines (with header), sorted — byte-identical
    /// across same-seed runs.
    std::string to_csv() const;
    /// `{"metric": {"field": value, ...}, ...}`, sorted, integers only.
    std::string to_json() const;

private:
    std::map<std::string, counter> counters_;
    std::map<std::string, gauge> gauges_;
    std::map<std::string, histogram> histograms_;
    std::map<std::string, probe_fn> probes_;
};

// --- standard probes -----------------------------------------------------
//
// Adapters exposing each subsystem's stats struct through the registry.
// They capture a pointer to the component, which must outlive the
// registry's last snapshot.

/// engine_events{class=...} per task_class, plus engine_events_total.
/// Dispatch wall time is deliberately NOT exported (nondeterministic);
/// read it from engine::profile().wall_seconds directly.
void register_engine_metrics(metrics_registry& reg, const netsim::engine& eng);

/// Coordinator variant: identical to the engine form when the run is
/// single-sharded (so existing telemetry stays byte-for-byte), and adds
/// a {shard=i} label per engine plus coordinator totals when sharded.
void register_engine_metrics(metrics_registry& reg, const netsim::shard_coordinator& coord);

/// link_tx_packets/bytes, link_drops{reason=...}, link_queue_depth_bytes.
void register_link_metrics(metrics_registry& reg, const std::string& link_name,
                           const netsim::link& l);

/// planner_flows, planner_reroutes/stranded/failures/repairs, plus
/// planner_committed_bps{link=...} for each named link budget.
void register_planner_metrics(metrics_registry& reg, const control::capacity_planner& p,
                              const std::vector<std::string>& links);

/// health_downs/ups observed.
void register_health_metrics(metrics_registry& reg, const control::health_monitor& hm);

/// policy_reconfigs{phase=planned|installed|committed|aborted}, trigger
/// counters, policy_epoch and policy_posture gauges for one engine.
void register_policy_engine_metrics(metrics_registry& reg,
                                    const control::policy_engine& pe);

/// Same probes under `...{engine=name}` labels — for scenarios running
/// one policy engine per experiment over a shared registry (the soak).
void register_policy_engine_metrics(metrics_registry& reg, const std::string& name,
                                    const control::policy_engine& pe);

/// element_forwarded/dropped/clones/emissions plus the element's named
/// pipeline counters (mode_transitions, mode_shifts, epochs_retired,
/// backpressure_*) under canonical `element_*{element=...}` keys.
void register_element_metrics(metrics_registry& reg, const std::string& element_name,
                              const pnet::programmable_switch& sw);

/// stack_data_in/control_in/malformed/sent for one host's stack.
void register_stack_metrics(metrics_registry& reg, const std::string& host,
                            const core::stack& st);

/// sender_messages/datagrams/bytes/backpressure_signals/reroutes.
void register_sender_metrics(metrics_registry& reg, const std::string& host,
                             const core::sender& s);

/// receiver_datagrams/bytes/duplicates/recovered/naks_sent/nak_retries/
/// buffer_failovers/given_up.
void register_receiver_metrics(metrics_registry& reg, const std::string& host,
                               const core::receiver& r);

/// buffer_relayed/retransmitted/nak_requests/unavailable, plus occupancy
/// and storage-pressure watermark counters.
void register_buffer_metrics(metrics_registry& reg, const std::string& host,
                             const core::buffer_service& b);

/// pq_enqueued/dequeued/dropped/shed{link=...} plus per-band drop/shed
/// counters for one priority egress queue (overload observability).
void register_priority_queue_metrics(metrics_registry& reg, const std::string& link_name,
                                     const netsim::priority_queue_disc& q);

} // namespace mmtp::telemetry
