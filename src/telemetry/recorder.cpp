#include "telemetry/recorder.hpp"

namespace mmtp::telemetry {

void recovery_tracker::arm(sim_time fault_at, health_fn healthy, sim_time deadline)
{
    fault_at_ = fault_at;
    deadline_ = deadline;
    healthy_ = std::move(healthy);
    recovered_at_.reset();
    probes_ = 0;
    gave_up_ = false;
    // First probe one interval after the fault: the fault instant itself
    // is unhealthy by definition.
    eng_.schedule_at(fault_at + interval_, netsim::task_class::timer, [this] { probe(); });
}

void recovery_tracker::probe()
{
    probes_++;
    if (healthy_ && healthy_()) {
        recovered_at_ = eng_.now();
        return;
    }
    if (eng_.now() + interval_ > deadline_) {
        gave_up_ = true;
        return;
    }
    eng_.schedule_in(interval_, netsim::task_class::timer, [this] { probe(); });
}

void rate_sampler::start(sim_time until)
{
    last_value_ = counter_();
    tick(until);
}

void rate_sampler::tick(sim_time until)
{
    eng_.schedule_in(interval_, netsim::task_class::timer, [this, until] {
        const auto now = eng_.now();
        const auto value = counter_();
        const double bits = static_cast<double>(value - last_value_) * 8.0;
        samples_.push_back(sample{now, bits / interval_.seconds() / 1e6});
        last_value_ = value;
        if (now < until) tick(until);
    });
}

double rate_sampler::peak_mbps() const
{
    double best = 0.0;
    for (const auto& s : samples_)
        if (s.mbps > best) best = s.mbps;
    return best;
}

double rate_sampler::mean_mbps() const
{
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& s : samples_) sum += s.mbps;
    return sum / static_cast<double>(samples_.size());
}

} // namespace mmtp::telemetry
