#include "telemetry/recorder.hpp"

namespace mmtp::telemetry {

void rate_sampler::start(sim_time until)
{
    last_value_ = counter_();
    tick(until);
}

void rate_sampler::tick(sim_time until)
{
    eng_.schedule_in(interval_, [this, until] {
        const auto now = eng_.now();
        const auto value = counter_();
        const double bits = static_cast<double>(value - last_value_) * 8.0;
        samples_.push_back(sample{now, bits / interval_.seconds() / 1e6});
        last_value_ = value;
        if (now < until) tick(until);
    });
}

double rate_sampler::peak_mbps() const
{
    double best = 0.0;
    for (const auto& s : samples_)
        if (s.mbps > best) best = s.mbps;
    return best;
}

double rate_sampler::mean_mbps() const
{
    if (samples_.empty()) return 0.0;
    double sum = 0.0;
    for (const auto& s : samples_) sum += s.mbps;
    return sum / static_cast<double>(samples_.size());
}

} // namespace mmtp::telemetry
