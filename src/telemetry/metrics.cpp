#include "telemetry/metrics.hpp"

#include "control/health_monitor.hpp"
#include "control/planner.hpp"
#include "control/policy_engine.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "mmtp/stack.hpp"
#include "netsim/engine.hpp"
#include "netsim/link.hpp"
#include "netsim/shard.hpp"

#include <algorithm>

namespace mmtp::telemetry {

std::string metrics_registry::key_of(const std::string& name, const metric_labels& labels)
{
    if (labels.empty()) return name;
    std::string key = name + "{";
    bool first = true;
    for (const auto& [k, v] : labels) {
        if (!first) key += ",";
        first = false;
        key += k + "=" + v;
    }
    key += "}";
    return key;
}

counter& metrics_registry::get_counter(const std::string& name, const metric_labels& labels)
{
    return counters_[key_of(name, labels)];
}

gauge& metrics_registry::get_gauge(const std::string& name, const metric_labels& labels)
{
    return gauges_[key_of(name, labels)];
}

histogram& metrics_registry::get_histogram(const std::string& name,
                                           const metric_labels& labels)
{
    return histograms_[key_of(name, labels)];
}

void metrics_registry::add_probe(const std::string& name, const metric_labels& labels,
                                 probe_fn fn)
{
    probes_[key_of(name, labels)] = std::move(fn);
}

std::vector<metrics_registry::row> metrics_registry::snapshot() const
{
    std::vector<row> rows;
    for (const auto& [key, c] : counters_)
        rows.push_back({key, "value", static_cast<std::int64_t>(c.value())});
    for (const auto& [key, g] : gauges_)
        rows.push_back({key, "value", g.value()});
    for (const auto& [key, fn] : probes_)
        rows.push_back({key, "value", static_cast<std::int64_t>(fn())});
    for (const auto& [key, h] : histograms_) {
        rows.push_back({key, "count", static_cast<std::int64_t>(h.count())});
        rows.push_back({key, "min", static_cast<std::int64_t>(h.min())});
        rows.push_back({key, "max", static_cast<std::int64_t>(h.max())});
        rows.push_back({key, "p50", static_cast<std::int64_t>(h.percentile(50))});
        rows.push_back({key, "p90", static_cast<std::int64_t>(h.percentile(90))});
        rows.push_back({key, "p99", static_cast<std::int64_t>(h.percentile(99))});
    }
    std::sort(rows.begin(), rows.end(), [](const row& a, const row& b) {
        if (a.metric != b.metric) return a.metric < b.metric;
        return a.field < b.field;
    });
    return rows;
}

std::string metrics_registry::to_csv() const
{
    std::string out = "metric,field,value\n";
    for (const auto& r : snapshot())
        out += r.metric + "," + r.field + "," + std::to_string(r.value) + "\n";
    return out;
}

std::string metrics_registry::to_json() const
{
    const auto rows = snapshot();
    std::string out = "{";
    std::string open_metric;
    for (std::size_t i = 0; i < rows.size(); ++i) {
        const auto& r = rows[i];
        if (r.metric != open_metric) {
            if (!open_metric.empty()) out += "},";
            out += "\"" + r.metric + "\":{";
            open_metric = r.metric;
        } else {
            out += ",";
        }
        out += "\"" + r.field + "\":" + std::to_string(r.value);
    }
    if (!open_metric.empty()) out += "}";
    out += "}";
    return out;
}

// --- standard probes -----------------------------------------------------

void register_engine_metrics(metrics_registry& reg, const netsim::engine& eng)
{
    const netsim::engine* e = &eng;
    for (std::size_t i = 0; i < netsim::task_class_count; ++i) {
        const auto tc = static_cast<netsim::task_class>(i);
        reg.add_probe("engine_events", {{"class", netsim::task_class_name(tc)}},
                      [e, i] { return e->profile().executed_by_class[i]; });
    }
    reg.add_probe("engine_events_total", {}, [e] { return e->profile().executed; });
    reg.add_probe("engine_timers_cancelled", {},
                  [e] { return e->profile().timers_cancelled; });
}

void register_engine_metrics(metrics_registry& reg, const netsim::shard_coordinator& coord)
{
    // Single shard: exactly the historical engine probes — snapshots stay
    // byte-identical with pre-shard telemetry.
    if (!coord.multi()) {
        register_engine_metrics(reg, coord.shard(0));
        return;
    }
    for (unsigned s = 0; s < coord.shard_count(); ++s) {
        const netsim::engine* e = &coord.shard(s);
        const std::string shard = std::to_string(s);
        for (std::size_t i = 0; i < netsim::task_class_count; ++i) {
            const auto tc = static_cast<netsim::task_class>(i);
            reg.add_probe("engine_events",
                          {{"class", netsim::task_class_name(tc)}, {"shard", shard}},
                          [e, i] { return e->profile().executed_by_class[i]; });
        }
        reg.add_probe("engine_events_total", {{"shard", shard}},
                      [e] { return e->profile().executed; });
        reg.add_probe("engine_timers_cancelled", {{"shard", shard}},
                      [e] { return e->profile().timers_cancelled; });
    }
    // Deterministic coordinator counters only — critical-path/serial wall
    // seconds stay out of byte-compared snapshots (read via scaling()).
    const netsim::shard_coordinator* c = &coord;
    reg.add_probe("shard_epochs", {}, [c] { return c->scaling().epochs; });
    reg.add_probe("shard_cross_messages", {},
                  [c] { return c->scaling().cross_shard_messages; });
}

void register_link_metrics(metrics_registry& reg, const std::string& link_name,
                           const netsim::link& l)
{
    const netsim::link* lk = &l;
    const metric_labels base{{"link", link_name}};
    reg.add_probe("link_tx_packets", base, [lk] { return lk->stats().tx_packets; });
    reg.add_probe("link_tx_bytes", base, [lk] { return lk->stats().tx_bytes; });
    reg.add_probe("link_corrupted", base, [lk] { return lk->stats().corrupted; });
    reg.add_probe("link_queue_depth_bytes", base, [lk] { return lk->queue_depth_bytes(); });
    reg.add_probe("link_drops", {{"link", link_name}, {"reason", "random_loss"}},
                  [lk] { return lk->stats().dropped_random; });
    reg.add_probe("link_drops", {{"link", link_name}, {"reason", "oversize"}},
                  [lk] { return lk->stats().dropped_oversize; });
    reg.add_probe("link_drops", {{"link", link_name}, {"reason", "link_down"}},
                  [lk] { return lk->stats().dropped_down; });
    reg.add_probe("link_drops", {{"link", link_name}, {"reason", "queue_full"}},
                  [lk] { return lk->queue_statistics().dropped; });
}

void register_planner_metrics(metrics_registry& reg, const control::capacity_planner& p,
                              const std::vector<std::string>& links)
{
    const control::capacity_planner* pl = &p;
    reg.add_probe("planner_flows", {}, [pl] { return pl->flow_count(); });
    reg.add_probe("planner_link_failures", {}, [pl] { return pl->stats().link_failures; });
    reg.add_probe("planner_link_repairs", {}, [pl] { return pl->stats().link_repairs; });
    reg.add_probe("planner_flows_rerouted", {},
                  [pl] { return pl->stats().flows_rerouted; });
    reg.add_probe("planner_flows_stranded", {},
                  [pl] { return pl->stats().flows_stranded; });
    // Metric names mirror the stats-struct fields (subsystem prefix +
    // field), the convention every other adapter follows.
    reg.add_probe("planner_admissions_denied_pressure", {},
                  [pl] { return pl->stats().admissions_denied_pressure; });
    reg.add_probe("planner_admissions_deferred", {},
                  [pl] { return pl->stats().admissions_deferred; });
    reg.add_probe("planner_deferred_admitted", {},
                  [pl] { return pl->stats().deferred_admitted; });
    for (const auto& id : links) {
        reg.add_probe("planner_committed_bps", {{"link", id}},
                      [pl, id] { return pl->committed(id).bits_per_sec; });
        reg.add_probe("planner_available_bps", {{"link", id}},
                      [pl, id] { return pl->available(id).bits_per_sec; });
    }
}

void register_health_metrics(metrics_registry& reg, const control::health_monitor& hm)
{
    const control::health_monitor* h = &hm;
    reg.add_probe("health_links_watched", {}, [h] { return h->stats().links_watched; });
    reg.add_probe("health_downs_observed", {}, [h] { return h->stats().downs_observed; });
    reg.add_probe("health_ups_observed", {}, [h] { return h->stats().ups_observed; });
}

namespace {
void register_policy_engine_probes(metrics_registry& reg, const metric_labels& base,
                                   const control::policy_engine& pe)
{
    const control::policy_engine* p = &pe;
    auto with = [&base](const char* k, const char* v) {
        metric_labels l = base;
        l.emplace_back(k, v);
        return l;
    };
    reg.add_probe("policy_reconfigs", with("phase", "planned"),
                  [p] { return p->stats().reconfigs_planned; });
    reg.add_probe("policy_reconfigs", with("phase", "installed"),
                  [p] { return p->stats().reconfigs_installed; });
    reg.add_probe("policy_reconfigs", with("phase", "committed"),
                  [p] { return p->stats().reconfigs_committed; });
    reg.add_probe("policy_reconfigs", with("phase", "aborted"),
                  [p] { return p->stats().reconfigs_aborted; });
    reg.add_probe("policy_polls", base, [p] { return p->stats().polls; });
    reg.add_probe("policy_triggers", with("signal", "loss"),
                  [p] { return p->stats().loss_triggers; });
    reg.add_probe("policy_triggers", with("signal", "backpressure"),
                  [p] { return p->stats().backpressure_triggers; });
    reg.add_probe("policy_triggers", with("signal", "occupancy"),
                  [p] { return p->stats().occupancy_triggers; });
    reg.add_probe("policy_triggers", with("signal", "health"),
                  [p] { return p->stats().health_triggers; });
    reg.add_probe("policy_restores", base, [p] { return p->stats().restores; });
    reg.add_probe("policy_epoch", base, [p] { return p->epoch(); });
    reg.add_probe("policy_posture", base,
                  [p] { return static_cast<std::uint64_t>(p->current_posture()); });
    reg.add_probe("policy_pending_commits", base, [p] { return p->pending_commits(); });
}
} // namespace

void register_policy_engine_metrics(metrics_registry& reg,
                                    const control::policy_engine& pe)
{
    register_policy_engine_probes(reg, {}, pe);
}

void register_policy_engine_metrics(metrics_registry& reg, const std::string& name,
                                    const control::policy_engine& pe)
{
    register_policy_engine_probes(reg, {{"engine", name}}, pe);
}

void register_element_metrics(metrics_registry& reg, const std::string& element_name,
                              const pnet::programmable_switch& sw)
{
    const pnet::programmable_switch* s = &sw;
    const metric_labels base{{"element", element_name}};
    reg.add_probe("element_forwarded", base, [s] { return s->stats().forwarded; });
    reg.add_probe("element_clones", base, [s] { return s->stats().clones; });
    reg.add_probe("element_emissions", base, [s] { return s->stats().emissions; });
    reg.add_probe("element_dropped", {{"element", element_name}, {"reason", "corrupted"}},
                  [s] { return s->stats().dropped_corrupted; });
    reg.add_probe("element_dropped", {{"element", element_name}, {"reason", "malformed"}},
                  [s] { return s->stats().dropped_malformed; });
    reg.add_probe("element_dropped", {{"element", element_name}, {"reason", "pipeline"}},
                  [s] { return s->stats().dropped_by_pipeline; });
    reg.add_probe("element_dropped", {{"element", element_name}, {"reason", "unroutable"}},
                  [s] { return s->stats().dropped_unroutable; });
    // Named pipeline counters (P4-style): exported under one canonical
    // key family instead of each scenario inventing its own row names.
    for (const char* ctr :
         {"mode_transitions", "mode_shifts", "epochs_retired", "backpressure_engagements",
          "backpressure_signals", "backpressure_suppressed", "backpressure_escalations",
          "aged_packets", "aged_drops", "deadline_notifications", "duplicated",
          "subscriptions"}) {
        reg.add_probe(std::string("element_") + ctr, base,
                      [s, ctr] { return s->state().counter(ctr); });
    }
}

void register_stack_metrics(metrics_registry& reg, const std::string& host,
                            const core::stack& st)
{
    const core::stack* s = &st;
    const metric_labels base{{"host", host}};
    reg.add_probe("stack_data_in", base, [s] { return s->stats().data_in; });
    reg.add_probe("stack_control_in", base, [s] { return s->stats().control_in; });
    reg.add_probe("stack_malformed", base, [s] { return s->stats().malformed; });
    reg.add_probe("stack_control_parse_errors", base,
                  [s] { return s->stats().control_parse_errors; });
    reg.add_probe("stack_sent", base, [s] { return s->stats().sent; });
}

void register_sender_metrics(metrics_registry& reg, const std::string& host,
                             const core::sender& s)
{
    const core::sender* sp = &s;
    const metric_labels base{{"host", host}};
    reg.add_probe("sender_messages", base, [sp] { return sp->stats().messages; });
    reg.add_probe("sender_datagrams", base, [sp] { return sp->stats().datagrams; });
    reg.add_probe("sender_bytes", base, [sp] { return sp->stats().bytes; });
    reg.add_probe("sender_backpressure_signals", base,
                  [sp] { return sp->stats().backpressure_signals; });
    reg.add_probe("sender_bp_decreases", base, [sp] { return sp->stats().bp_decreases; });
    reg.add_probe("sender_bp_floor_hits", base, [sp] { return sp->stats().bp_floor_hits; });
    reg.add_probe("sender_bp_recovery_steps", base,
                  [sp] { return sp->stats().bp_recovery_steps; });
    reg.add_probe("sender_bp_recoveries", base,
                  [sp] { return sp->stats().bp_recoveries; });
    reg.add_probe("sender_suppressed_ns", base,
                  [sp] { return sp->stats().suppressed_ns; });
    reg.add_probe("sender_effective_pace_bps", base,
                  [sp] { return sp->effective_pace().bits_per_sec; });
    reg.add_probe("sender_reroutes", base, [sp] { return sp->stats().reroutes; });
    reg.add_probe("sender_origin_mode_updates", base,
                  [sp] { return sp->stats().origin_mode_updates; });
}

void register_receiver_metrics(metrics_registry& reg, const std::string& host,
                               const core::receiver& r)
{
    const core::receiver* rp = &r;
    const metric_labels base{{"host", host}};
    reg.add_probe("receiver_datagrams", base, [rp] { return rp->stats().datagrams; });
    reg.add_probe("receiver_bytes", base, [rp] { return rp->stats().bytes; });
    reg.add_probe("receiver_duplicates", base, [rp] { return rp->stats().duplicates; });
    reg.add_probe("receiver_recovered", base, [rp] { return rp->stats().recovered; });
    reg.add_probe("receiver_naks_sent", base, [rp] { return rp->stats().naks_sent; });
    reg.add_probe("receiver_nak_retries", base, [rp] { return rp->stats().nak_retries; });
    reg.add_probe("receiver_buffer_failovers", base,
                  [rp] { return rp->stats().buffer_failovers; });
    reg.add_probe("receiver_buffer_failbacks", base,
                  [rp] { return rp->stats().buffer_failbacks; });
    reg.add_probe("receiver_given_up", base, [rp] { return rp->stats().given_up; });
    reg.add_probe("receiver_mode_shifts_seen", base,
                  [rp] { return rp->stats().mode_shifts_seen; });
    reg.add_probe("receiver_streams", base, [rp] { return rp->stream_count(); });
    reg.add_probe("receiver_streams_retired", base,
                  [rp] { return rp->stats().streams_retired; });
}

void register_buffer_metrics(metrics_registry& reg, const std::string& host,
                             const core::buffer_service& b)
{
    const core::buffer_service* bp = &b;
    const metric_labels base{{"host", host}};
    reg.add_probe("buffer_relayed", base, [bp] { return bp->stats().relayed; });
    reg.add_probe("buffer_relayed_bytes", base, [bp] { return bp->stats().relayed_bytes; });
    reg.add_probe("buffer_nak_requests", base, [bp] { return bp->stats().nak_requests; });
    reg.add_probe("buffer_retransmitted", base,
                  [bp] { return bp->stats().retransmitted; });
    reg.add_probe("buffer_unavailable", base, [bp] { return bp->stats().unavailable; });
    reg.add_probe("buffer_bytes_used", base, [bp] { return bp->buffer().bytes_used(); });
    reg.add_probe("buffer_pressure_engaged", base,
                  [bp] { return bp->pressure_engaged() ? 1u : 0u; });
    reg.add_probe("buffer_pressure_engagements", base,
                  [bp] { return bp->stats().pressure_engagements; });
    reg.add_probe("buffer_pressure_releases", base,
                  [bp] { return bp->stats().pressure_releases; });
    reg.add_probe("buffer_pressure_signals", base,
                  [bp] { return bp->stats().pressure_signals; });
    reg.add_probe("buffer_signals_pruned", base,
                  [bp] { return bp->stats().signals_pruned; });
    reg.add_probe("buffer_retransmit_dedup", base,
                  [bp] { return bp->stats().retransmit_dedup; });
    reg.add_probe("buffer_retransmit_queue_peak", base,
                  [bp] { return bp->stats().retransmit_queue_peak; });
    reg.add_probe("buffer_persisted", base, [bp] { return bp->stats().persisted; });
    reg.add_probe("buffer_persist_rejected", base,
                  [bp] { return bp->stats().persist_rejected; });
    reg.add_probe("buffer_crashes", base, [bp] { return bp->stats().crashes; });
    reg.add_probe("buffer_tail_lost", base, [bp] { return bp->stats().tail_lost; });
    reg.add_probe("buffer_recovered_records", base,
                  [bp] { return bp->stats().recovered_records; });
    reg.add_probe("buffer_revivals", base, [bp] { return bp->stats().revivals; });
}

void register_priority_queue_metrics(metrics_registry& reg, const std::string& link_name,
                                     const netsim::priority_queue_disc& q)
{
    const netsim::priority_queue_disc* qp = &q;
    const metric_labels base{{"link", link_name}};
    reg.add_probe("pq_enqueued", base, [qp] { return qp->stats().enqueued; });
    reg.add_probe("pq_dequeued", base, [qp] { return qp->stats().dequeued; });
    reg.add_probe("pq_dropped", base, [qp] { return qp->stats().dropped; });
    reg.add_probe("pq_shed", base, [qp] { return qp->stats().shed; });
    reg.add_probe("pq_shed_bytes", base, [qp] { return qp->stats().shed_bytes; });
    reg.add_probe("pq_peak_bytes", base, [qp] { return qp->stats().peak_bytes; });
    for (unsigned b = 0; b < q.band_count(); ++b) {
        const metric_labels bl{{"link", link_name}, {"band", std::to_string(b)}};
        reg.add_probe("pq_band_dropped", bl, [qp, b] { return qp->band_dropped(b); });
        reg.add_probe("pq_band_shed", bl, [qp, b] { return qp->band_shed(b); });
        reg.add_probe("pq_band_shed_bytes", bl,
                      [qp, b] { return qp->band_shed_bytes(b); });
    }
}

} // namespace mmtp::telemetry
