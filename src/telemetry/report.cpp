#include "telemetry/report.hpp"

#include <cstdio>
#include <fstream>

namespace mmtp::telemetry {

void table::print() const
{
    std::printf("\n== %s ==\n", title_.c_str());
    std::vector<std::size_t> widths(columns_.size(), 0);
    for (std::size_t c = 0; c < columns_.size(); ++c) widths[c] = columns_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c)
            if (row[c].size() > widths[c]) widths[c] = row[c].size();

    auto print_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < widths.size(); ++c) {
            const std::string& v = c < cells.size() ? cells[c] : std::string{};
            std::printf("%-*s  ", static_cast<int>(widths[c]), v.c_str());
        }
        std::printf("\n");
    };
    print_row(columns_);
    std::string sep;
    for (std::size_t c = 0; c < widths.size(); ++c) {
        sep.append(widths[c], '-');
        sep.append("  ");
    }
    std::printf("%s\n", sep.c_str());
    for (const auto& row : rows_) print_row(row);
}

std::string table::csv() const
{
    std::string out;
    auto write_row = [&](const std::vector<std::string>& cells) {
        for (std::size_t c = 0; c < cells.size(); ++c) {
            if (c) out.push_back(',');
            out.append(cells[c]);
        }
        out.push_back('\n');
    };
    write_row(columns_);
    for (const auto& row : rows_) write_row(row);
    return out;
}

bool table::write_csv(const std::string& path) const
{
    std::ofstream out(path);
    if (!out) return false;
    out << csv();
    return static_cast<bool>(out);
}

std::string fmt_rate(double mbps)
{
    char buf[64];
    if (mbps >= 1000.0)
        std::snprintf(buf, sizeof buf, "%.2f Gbps", mbps / 1000.0);
    else
        std::snprintf(buf, sizeof buf, "%.2f Mbps", mbps);
    return buf;
}

std::string fmt_duration_us(double us)
{
    char buf[64];
    if (us >= 1e6)
        std::snprintf(buf, sizeof buf, "%.3f s", us / 1e6);
    else if (us >= 1e3)
        std::snprintf(buf, sizeof buf, "%.3f ms", us / 1e3);
    else
        std::snprintf(buf, sizeof buf, "%.1f us", us);
    return buf;
}

std::string fmt_count(std::uint64_t n)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%llu", static_cast<unsigned long long>(n));
    return buf;
}

std::string fmt_double(double v, int decimals)
{
    char buf[64];
    std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
    return buf;
}

} // namespace mmtp::telemetry
