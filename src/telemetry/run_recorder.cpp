#include "telemetry/run_recorder.hpp"

#include "common/bytes.hpp"

#include <cstdlib>

namespace mmtp::telemetry {

namespace {

void put_string(byte_writer& w, const std::string& s)
{
    w.u16(static_cast<std::uint16_t>(s.size()));
    w.bytes(std::span<const std::uint8_t>(
        reinterpret_cast<const std::uint8_t*>(s.data()), s.size()));
}

std::string get_string(byte_reader& r)
{
    const auto n = r.u16();
    const auto b = r.bytes(n);
    if (r.failed()) return {};
    return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

} // namespace

// ------------------------------------------------------------- recorder

run_recorder::run_recorder(const std::string& scenario, std::uint64_t seed)
{
    writer_.set_attribute("scenario", scenario);
    writer_.set_attribute("seed", std::to_string(seed));
}

void run_recorder::capture_trace(const trace::flight_recorder& fr)
{
    for (std::uint32_t id = 0; id < fr.site_count(); ++id) {
        const auto& name = fr.site_name(id);
        daq::archived_record rec;
        rec.sequence = id;
        rec.payload.assign(name.begin(), name.end());
        rec.size_bytes = static_cast<std::uint32_t>(rec.payload.size());
        writer_.append(run_ds_sites, std::move(rec));
    }
    for (const auto& ev : fr.events()) {
        byte_writer w;
        w.u32(ev.site);
        w.u8(static_cast<std::uint8_t>(ev.kind));
        w.u8(static_cast<std::uint8_t>(ev.why));
        w.u64(ev.packet_id);
        w.u64(ev.arg);
        daq::archived_record rec;
        rec.sequence = wire_events_;
        rec.timestamp_ns = static_cast<std::uint64_t>(ev.at_ns);
        rec.payload = w.take();
        rec.size_bytes = static_cast<std::uint32_t>(rec.payload.size());
        writer_.append(run_ds_wire, std::move(rec));
        wire_events_++;
    }
    writer_.set_attribute("wire_events", std::to_string(wire_events_));
    writer_.set_attribute("sites", std::to_string(fr.site_count()));
}

void run_recorder::capture_metrics(const metrics_registry& reg)
{
    for (const auto& row : reg.snapshot()) {
        byte_writer w;
        put_string(w, row.metric);
        put_string(w, row.field);
        w.u64(static_cast<std::uint64_t>(row.value)); // two's complement
        daq::archived_record rec;
        rec.sequence = metrics_rows_;
        rec.payload = w.take();
        rec.size_bytes = static_cast<std::uint32_t>(rec.payload.size());
        writer_.append(run_ds_metrics, std::move(rec));
        metrics_rows_++;
    }
    writer_.set_attribute("metrics_rows", std::to_string(metrics_rows_));
}

void run_recorder::capture_report(const std::string& csv)
{
    daq::archived_record rec;
    rec.sequence = 0;
    rec.payload.assign(csv.begin(), csv.end());
    rec.size_bytes = static_cast<std::uint32_t>(rec.payload.size());
    writer_.append(run_ds_report, std::move(rec));
}

std::vector<std::uint8_t> run_recorder::finalize() { return writer_.finalize(); }

// ------------------------------------------------------------- replayer

std::optional<run_replayer> run_replayer::open(std::vector<std::uint8_t> blob)
{
    auto reader = daq::archive_reader::open(std::move(blob));
    if (!reader) return std::nullopt;
    return run_replayer(std::move(*reader));
}

std::string run_replayer::scenario() const
{
    return reader_.attribute("scenario").value_or("");
}

std::uint64_t run_replayer::seed() const
{
    const auto s = reader_.attribute("seed").value_or("0");
    return std::strtoull(s.c_str(), nullptr, 10);
}

std::string run_replayer::metrics_csv() const
{
    std::string out = "metric,field,value\n";
    for (const auto& rec : reader_.read_all(run_ds_metrics)) {
        byte_reader r(rec.payload);
        const auto metric = get_string(r);
        const auto field = get_string(r);
        const auto value = static_cast<std::int64_t>(r.u64());
        if (r.failed()) continue;
        out += metric;
        out += ',';
        out += field;
        out += ',';
        out += std::to_string(value);
        out += '\n';
    }
    return out;
}

std::string run_replayer::report_csv() const
{
    const auto recs = reader_.read_all(run_ds_report);
    if (recs.empty()) return {};
    return std::string(recs.front().payload.begin(), recs.front().payload.end());
}

std::vector<replayed_event> run_replayer::wire_events() const
{
    std::vector<replayed_event> out;
    for (const auto& rec : reader_.read_all(run_ds_wire)) {
        byte_reader r(rec.payload);
        replayed_event ev;
        ev.at_ns = static_cast<std::int64_t>(rec.timestamp_ns);
        ev.site = r.u32();
        ev.kind = static_cast<trace::hop>(r.u8());
        ev.why = static_cast<trace::reason>(r.u8());
        ev.packet_id = r.u64();
        ev.arg = r.u64();
        if (r.failed()) continue;
        out.push_back(ev);
    }
    return out;
}

void run_replayer::replay_wire(const std::function<void(const replayed_event&)>& fn) const
{
    for (const auto& ev : wire_events()) fn(ev);
}

void run_replayer::rebuild_flight_recorder(trace::flight_recorder& fr) const
{
    for (const auto& rec : reader_.read_all(run_ds_sites)) {
        if (rec.sequence == 0) continue; // slot 0 is the reserved unnamed site
        fr.site(std::string(rec.payload.begin(), rec.payload.end()));
    }
    for (const auto& ev : wire_events())
        fr.emit(ev.at_ns, ev.site, ev.kind, ev.packet_id, ev.arg, ev.why);
}

bool run_replayer::verify() const
{
    const auto want_events = reader_.attribute("wire_events");
    const auto want_rows = reader_.attribute("metrics_rows");
    if (want_events
        && std::strtoull(want_events->c_str(), nullptr, 10)
            != reader_.record_count(run_ds_wire))
        return false;
    if (want_rows
        && std::strtoull(want_rows->c_str(), nullptr, 10)
            != reader_.record_count(run_ds_metrics))
        return false;
    return true;
}

} // namespace mmtp::telemetry
