#include "common/interval_set.hpp"

namespace mmtp {

void interval_set::insert(std::uint64_t start, std::uint64_t end)
{
    if (start >= end) return;
    // Find the first interval that could overlap or touch [start, end).
    auto it = m_.upper_bound(start);
    if (it != m_.begin()) {
        auto prev = std::prev(it);
        if (prev->second >= start) { // overlaps or touches on the left
            start = prev->first;
            if (prev->second > end) end = prev->second;
            it = m_.erase(prev);
        }
    }
    while (it != m_.end() && it->first <= end) { // absorb on the right
        if (it->second > end) end = it->second;
        it = m_.erase(it);
    }
    m_[start] = end;
}

void interval_set::erase(std::uint64_t start, std::uint64_t end)
{
    if (start >= end) return;
    auto it = m_.lower_bound(start);
    if (it != m_.begin()) {
        auto prev = std::prev(it);
        if (prev->second > start) it = prev;
    }
    while (it != m_.end() && it->first < end) {
        const auto s = it->first;
        const auto e = it->second;
        it = m_.erase(it);
        if (s < start) m_[s] = start;
        if (e > end) {
            m_[end] = e;
            break;
        }
    }
}

bool interval_set::contains(std::uint64_t value) const
{
    auto it = m_.upper_bound(value);
    if (it == m_.begin()) return false;
    return std::prev(it)->second > value;
}

bool interval_set::covers(std::uint64_t start, std::uint64_t end) const
{
    if (start >= end) return true;
    auto it = m_.upper_bound(start);
    if (it == m_.begin()) return false;
    return std::prev(it)->second >= end;
}

std::uint64_t interval_set::next_missing(std::uint64_t from) const
{
    auto it = m_.upper_bound(from);
    if (it == m_.begin()) return from;
    auto prev = std::prev(it);
    return prev->second > from ? prev->second : from;
}

std::vector<std::pair<std::uint64_t, std::uint64_t>> interval_set::gaps(
    std::uint64_t start, std::uint64_t end) const
{
    std::vector<std::pair<std::uint64_t, std::uint64_t>> out;
    if (start >= end) return out;
    std::uint64_t cursor = start;
    for (const auto& [s, e] : m_) {
        if (e <= cursor) continue;
        if (s >= end) break;
        if (s > cursor) out.push_back({cursor, s < end ? s : end});
        if (e > cursor) cursor = e;
        if (cursor >= end) break;
    }
    if (cursor < end) out.push_back({cursor, end});
    return out;
}

std::uint64_t interval_set::covered() const
{
    std::uint64_t total = 0;
    for (const auto& [s, e] : m_) total += e - s;
    return total;
}

} // namespace mmtp
