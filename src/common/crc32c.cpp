#include "common/crc32c.hpp"

#include <array>

namespace mmtp {

namespace {

constexpr std::uint32_t kPoly = 0x82f63b78u; // reflected CRC-32C polynomial

std::array<std::uint32_t, 256> make_table()
{
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t c = i;
        for (int k = 0; k < 8; ++k)
            c = (c & 1) ? (kPoly ^ (c >> 1)) : (c >> 1);
        t[i] = c;
    }
    return t;
}

const std::array<std::uint32_t, 256>& table()
{
    static const auto t = make_table();
    return t;
}

} // namespace

std::uint32_t crc32c_init()
{
    return 0xffffffffu;
}

std::uint32_t crc32c_update(std::uint32_t state, std::span<const std::uint8_t> data)
{
    const auto& t = table();
    for (std::uint8_t b : data)
        state = t[(state ^ b) & 0xffu] ^ (state >> 8);
    return state;
}

std::uint32_t crc32c_finish(std::uint32_t state)
{
    return state ^ 0xffffffffu;
}

std::uint32_t crc32c(std::span<const std::uint8_t> data)
{
    return crc32c_finish(crc32c_update(crc32c_init(), data));
}

} // namespace mmtp
