// bytes.hpp — bounds-checked big-endian (network order) byte codecs.
//
// All wire formats in this library serialize through byte_writer and parse
// through byte_reader. Readers never throw: out-of-bounds reads set a
// sticky failure flag that callers check once at the end of a parse.
#pragma once

#include <cstdint>
#include <cstddef>
#include <span>
#include <vector>

namespace mmtp {

/// Appends big-endian integers to a growable byte vector.
class byte_writer {
public:
    byte_writer() = default;
    explicit byte_writer(std::size_t reserve_bytes) { buf_.reserve(reserve_bytes); }

    void u8(std::uint8_t v) { buf_.push_back(v); }
    void u16(std::uint16_t v);
    void u24(std::uint32_t v); // low 24 bits
    void u32(std::uint32_t v);
    void u48(std::uint64_t v); // low 48 bits
    void u64(std::uint64_t v);
    void bytes(std::span<const std::uint8_t> src);
    /// Appends `n` zero bytes (padding).
    void zeros(std::size_t n);

    std::size_t size() const { return buf_.size(); }
    std::span<const std::uint8_t> view() const { return buf_; }
    std::vector<std::uint8_t> take() { return std::move(buf_); }

    /// Overwrites a previously written big-endian u16 at `offset`
    /// (used for length fields back-patched after the payload is known).
    void patch_u16(std::size_t offset, std::uint16_t v);

private:
    std::vector<std::uint8_t> buf_;
};

/// Reads big-endian integers out of a fixed byte span.
/// Any out-of-bounds read sets failed() and returns 0.
class byte_reader {
public:
    explicit byte_reader(std::span<const std::uint8_t> data) : data_(data) {}

    std::uint8_t u8();
    std::uint16_t u16();
    std::uint32_t u24();
    std::uint32_t u32();
    std::uint64_t u48();
    std::uint64_t u64();
    /// Returns a view of the next `n` bytes and advances; empty view on failure.
    std::span<const std::uint8_t> bytes(std::size_t n);
    void skip(std::size_t n);

    std::size_t remaining() const { return data_.size() - pos_; }
    std::size_t position() const { return pos_; }
    bool failed() const { return failed_; }

private:
    bool ensure(std::size_t n);

    std::span<const std::uint8_t> data_;
    std::size_t pos_{0};
    bool failed_{false};
};

} // namespace mmtp
