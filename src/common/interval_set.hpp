// interval_set.hpp — ordered set of disjoint half-open [start, end)
// intervals over uint64. Used by TCP reassembly/SACK scoreboards and by
// the MMTP receiver's loss detector (gap tracking for NAKs).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <utility>
#include <vector>

namespace mmtp {

class interval_set {
public:
    /// Inserts [start, end), merging with neighbours. No-op if start>=end.
    void insert(std::uint64_t start, std::uint64_t end);

    /// Removes [start, end) from the set.
    void erase(std::uint64_t start, std::uint64_t end);

    /// True if `value` lies inside some interval.
    bool contains(std::uint64_t value) const;

    /// True if all of [start, end) is covered.
    bool covers(std::uint64_t start, std::uint64_t end) const;

    /// End of the interval starting at or covering `from`, i.e. the first
    /// missing value >= from.
    std::uint64_t next_missing(std::uint64_t from) const;

    /// Gaps within [start, end) not covered by the set.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> gaps(std::uint64_t start,
                                                              std::uint64_t end) const;

    /// Total covered length.
    std::uint64_t covered() const;

    bool empty() const { return m_.empty(); }
    std::size_t interval_count() const { return m_.size(); }
    void clear() { m_.clear(); }

    /// Iteration over intervals (start, end), ascending.
    const std::map<std::uint64_t, std::uint64_t>& intervals() const { return m_; }

private:
    std::map<std::uint64_t, std::uint64_t> m_; // start -> end
};

} // namespace mmtp
