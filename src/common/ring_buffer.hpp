// ring_buffer.hpp — growable FIFO over a circular array.
//
// std::deque allocates and frees a fixed-size chunk every few elements as
// a push_back/pop_front stream crosses chunk boundaries, which put a
// steady trickle of heap traffic in the link egress queues. This ring
// buffer reuses one power-of-two array: in steady state (depth below
// capacity) enqueue/dequeue never allocate. Growth doubles the array and
// unrolls the ring; elements only need to be movable.
#pragma once

#include <cstddef>
#include <memory>
#include <utility>

namespace mmtp {

template <typename T>
class ring_buffer {
    static_assert(alignof(T) <= alignof(std::max_align_t),
                  "over-aligned element types are not supported");

public:
    ring_buffer() = default;

    ring_buffer(ring_buffer&& o) noexcept
        : buf_(std::move(o.buf_)), cap_(o.cap_), head_(o.head_), size_(o.size_)
    {
        o.cap_ = o.head_ = o.size_ = 0;
    }

    ring_buffer& operator=(ring_buffer&& o) noexcept
    {
        if (this != &o) {
            destroy_all();
            buf_ = std::move(o.buf_);
            cap_ = o.cap_;
            head_ = o.head_;
            size_ = o.size_;
            o.cap_ = o.head_ = o.size_ = 0;
        }
        return *this;
    }

    ring_buffer(const ring_buffer&) = delete;
    ring_buffer& operator=(const ring_buffer&) = delete;

    ~ring_buffer() { destroy_all(); }

    bool empty() const noexcept { return size_ == 0; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return cap_; }

    T& front() noexcept { return *slot(head_); }
    const T& front() const noexcept { return *slot(head_); }

    /// Element `i` positions behind the front (0 == front). Undefined
    /// when i >= size(). Lets queue disciplines scan for an eviction
    /// victim without draining the ring.
    T& at(std::size_t i) noexcept { return *slot((head_ + i) & (cap_ - 1)); }
    const T& at(std::size_t i) const noexcept { return *slot((head_ + i) & (cap_ - 1)); }

    void push_back(T&& v)
    {
        if (size_ == cap_) grow();
        ::new (static_cast<void*>(slot((head_ + size_) & (cap_ - 1)))) T(std::move(v));
        ++size_;
    }

    void push_back(const T& v)
    {
        if (size_ == cap_) grow();
        ::new (static_cast<void*>(slot((head_ + size_) & (cap_ - 1)))) T(v);
        ++size_;
    }

    /// Removes and returns the oldest element by move. Undefined when empty.
    T pop_front()
    {
        T* p = slot(head_);
        T out = std::move(*p);
        p->~T();
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
        return out;
    }

    /// Move-assigns the oldest element into `out` (one move, no
    /// temporary). Undefined when empty.
    void pop_front_into(T& out)
    {
        T* p = slot(head_);
        out = std::move(*p);
        p->~T();
        head_ = (head_ + 1) & (cap_ - 1);
        --size_;
    }

private:
    T* slot(std::size_t i) const noexcept
    {
        return reinterpret_cast<T*>(buf_.get() + i * sizeof(T));
    }

    void grow()
    {
        const std::size_t ncap = cap_ ? cap_ * 2 : 8;
        // operator new[] aligns to max_align_t, sufficient for any T queued.
        auto nbuf = std::make_unique<unsigned char[]>(ncap * sizeof(T));
        auto* arr = reinterpret_cast<T*>(nbuf.get());
        for (std::size_t i = 0; i < size_; ++i) {
            T* src = slot((head_ + i) & (cap_ - 1));
            ::new (static_cast<void*>(arr + i)) T(std::move(*src));
            src->~T();
        }
        buf_ = std::move(nbuf);
        cap_ = ncap;
        head_ = 0;
    }

    void destroy_all()
    {
        for (std::size_t i = 0; i < size_; ++i) slot((head_ + i) & (cap_ - 1))->~T();
        size_ = 0;
    }

    std::unique_ptr<unsigned char[]> buf_;
    std::size_t cap_{0};
    std::size_t head_{0};
    std::size_t size_{0};
};

} // namespace mmtp
