// small_bytes.hpp — byte buffer with inline small-buffer storage.
//
// Serialized protocol headers in this library are short (Ethernet + IPv4
// + MMTP tops out around 60 bytes), yet the simulator used to keep them
// in std::vector — one heap allocation per packet plus a pointer chase on
// every parse. small_bytes stores up to `inline_capacity` bytes directly
// inside the object (so a packet's header bytes travel with the packet
// through queues and event closures without touching the heap) and spills
// to the heap only for oversized buffers. The API is the subset of
// std::vector<uint8_t> the codebase uses; it converts implicitly to
// std::span via the ranges constructor.
#pragma once

#include <cstdint>
#include <cstddef>
#include <cstring>
#include <initializer_list>
#include <iterator>
#include <span>
#include <vector>

namespace mmtp {

class small_bytes {
public:
    /// Largest buffer stored without allocating. Covers every real
    /// header stack the wire layer builds (see wire::max_header_size).
    static constexpr std::size_t inline_capacity = 64;

    small_bytes() noexcept : data_(sbo_), size_(0), cap_(inline_capacity) {}

    small_bytes(const small_bytes& o) : small_bytes() { assign(o.data_, o.size_); }

    small_bytes(small_bytes&& o) noexcept : small_bytes() { steal(o); }

    small_bytes(std::span<const std::uint8_t> src) : small_bytes()
    {
        assign(src.data(), src.size());
    }

    small_bytes(const std::vector<std::uint8_t>& v) : small_bytes()
    {
        assign(v.data(), v.size());
    }

    small_bytes(std::initializer_list<std::uint8_t> il) : small_bytes()
    {
        assign(il.begin(), il.size());
    }

    ~small_bytes()
    {
        if (data_ != sbo_) delete[] data_;
    }

    small_bytes& operator=(const small_bytes& o)
    {
        if (this != &o) assign(o.data_, o.size_);
        return *this;
    }

    small_bytes& operator=(small_bytes&& o) noexcept
    {
        if (this != &o) {
            if (data_ != sbo_) delete[] data_;
            data_ = sbo_;
            cap_ = inline_capacity;
            size_ = 0;
            steal(o);
        }
        return *this;
    }

    small_bytes& operator=(const std::vector<std::uint8_t>& v)
    {
        assign(v.data(), v.size());
        return *this;
    }

    small_bytes& operator=(std::vector<std::uint8_t>&& v)
    {
        assign(v.data(), v.size()); // bytes are copied; the vector is freed
        v.clear();
        return *this;
    }

    small_bytes& operator=(std::span<const std::uint8_t> s)
    {
        assign(s.data(), s.size());
        return *this;
    }

    std::uint8_t* data() noexcept { return data_; }
    const std::uint8_t* data() const noexcept { return data_; }
    std::size_t size() const noexcept { return size_; }
    std::size_t capacity() const noexcept { return cap_; }
    bool empty() const noexcept { return size_ == 0; }
    bool is_inline() const noexcept { return data_ == sbo_; }

    std::uint8_t* begin() noexcept { return data_; }
    std::uint8_t* end() noexcept { return data_ + size_; }
    const std::uint8_t* begin() const noexcept { return data_; }
    const std::uint8_t* end() const noexcept { return data_ + size_; }

    std::uint8_t& operator[](std::size_t i) noexcept { return data_[i]; }
    std::uint8_t operator[](std::size_t i) const noexcept { return data_[i]; }

    void clear() noexcept { size_ = 0; }

    void reserve(std::size_t n)
    {
        if (n > cap_) grow(n);
    }

    /// Grows zero-filled; shrinking keeps the buffer.
    void resize(std::size_t n)
    {
        if (n > cap_) grow(n);
        if (n > size_) std::memset(data_ + size_, 0, n - size_);
        size_ = n;
    }

    void push_back(std::uint8_t b)
    {
        if (size_ == cap_) grow(size_ + 1);
        data_[size_++] = b;
    }

    /// Appends `n` bytes; `src` must not alias this buffer.
    void append(const std::uint8_t* src, std::size_t n)
    {
        if (size_ + n > cap_) grow(size_ + n);
        std::memcpy(data_ + size_, src, n);
        size_ += n;
    }

    void append(std::span<const std::uint8_t> src) { append(src.data(), src.size()); }

    /// std::vector-style range insert (the sources must not alias this
    /// buffer). Returns the iterator to the first inserted byte.
    template <typename It>
    std::uint8_t* insert(const std::uint8_t* pos, It first, It last)
    {
        const std::size_t at = static_cast<std::size_t>(pos - data_);
        const std::size_t n = static_cast<std::size_t>(std::distance(first, last));
        if (size_ + n > cap_) grow(size_ + n);
        std::memmove(data_ + at + n, data_ + at, size_ - at);
        std::uint8_t* out = data_ + at;
        for (std::uint8_t* d = out; first != last; ++first, ++d)
            *d = static_cast<std::uint8_t>(*first);
        size_ += n;
        return out;
    }

    std::span<const std::uint8_t> view() const noexcept { return {data_, size_}; }

    friend bool operator==(const small_bytes& a, const small_bytes& b) noexcept
    {
        return a.size_ == b.size_ && std::memcmp(a.data_, b.data_, a.size_) == 0;
    }

    friend bool operator==(const small_bytes& a, const std::vector<std::uint8_t>& b) noexcept
    {
        return a.size_ == b.size() && std::memcmp(a.data_, b.data(), a.size_) == 0;
    }

    friend bool operator==(const std::vector<std::uint8_t>& a, const small_bytes& b) noexcept
    {
        return b == a;
    }

private:
    void assign(const std::uint8_t* src, std::size_t n)
    {
        if (n > cap_) grow_discard(n);
        std::memcpy(data_, src, n);
        size_ = n;
    }

    void steal(small_bytes& o) noexcept
    {
        if (o.data_ != o.sbo_) {
            data_ = o.data_;
            cap_ = o.cap_;
            size_ = o.size_;
            o.data_ = o.sbo_;
            o.cap_ = inline_capacity;
            o.size_ = 0;
        } else {
            std::memcpy(sbo_, o.sbo_, o.size_);
            size_ = o.size_;
            o.size_ = 0;
        }
    }

    void grow(std::size_t need)
    {
        std::size_t cap = cap_ * 2;
        if (cap < need) cap = need;
        auto* nd = new std::uint8_t[cap];
        std::memcpy(nd, data_, size_);
        if (data_ != sbo_) delete[] data_;
        data_ = nd;
        cap_ = cap;
    }

    void grow_discard(std::size_t need)
    {
        std::size_t cap = cap_ * 2;
        if (cap < need) cap = need;
        auto* nd = new std::uint8_t[cap];
        if (data_ != sbo_) delete[] data_;
        data_ = nd;
        cap_ = cap;
    }

    std::uint8_t* data_;
    std::size_t size_;
    std::size_t cap_;
    alignas(8) std::uint8_t sbo_[inline_capacity];
};

} // namespace mmtp
