#include "common/histogram.hpp"

#include <bit>
#include <limits>

namespace mmtp {

namespace {
constexpr int kSubBucketBits = 6; // 64 sub-buckets per octave
constexpr std::size_t kSubBuckets = 1u << kSubBucketBits;
// 64 octaves x 64 sub-buckets comfortably covers the uint64 range.
constexpr std::size_t kBucketCount = 64 * kSubBuckets;
} // namespace

histogram::histogram() : buckets_(kBucketCount, 0) {}

std::size_t histogram::bucket_for(std::uint64_t value)
{
    if (value < kSubBuckets) return static_cast<std::size_t>(value);
    const int msb = 63 - std::countl_zero(value);
    const int octave = msb - kSubBucketBits + 1;
    const std::uint64_t sub = value >> octave; // in [kSubBuckets/2? .. kSubBuckets)
    return static_cast<std::size_t>(octave) * kSubBuckets + static_cast<std::size_t>(sub);
}

std::uint64_t histogram::bucket_midpoint(std::size_t bucket)
{
    const std::size_t octave = bucket / kSubBuckets;
    const std::uint64_t sub = bucket % kSubBuckets;
    if (octave == 0) return sub;
    const std::uint64_t lo = sub << octave;
    const std::uint64_t width = 1ull << octave;
    return lo + width / 2;
}

void histogram::record(std::uint64_t value)
{
    buckets_[bucket_for(value)]++;
    count_++;
    sum_ += value;
    if (count_ == 1 || value < min_) min_ = value;
    if (value > max_) max_ = value;
}

void histogram::merge(const histogram& other)
{
    for (std::size_t i = 0; i < kBucketCount; ++i) buckets_[i] += other.buckets_[i];
    if (other.count_ > 0) {
        if (count_ == 0 || other.min_ < min_) min_ = other.min_;
        if (other.max_ > max_) max_ = other.max_;
    }
    count_ += other.count_;
    sum_ += other.sum_;
}

double histogram::mean() const
{
    if (count_ == 0) return 0.0;
    return static_cast<double>(sum_) / static_cast<double>(count_);
}

std::uint64_t histogram::percentile(double p) const
{
    if (count_ == 0) return 0;
    if (!(p >= 0.0)) p = 0.0; // also catches NaN (comparisons are false)
    if (p > 100.0) p = 100.0;
    const auto target = static_cast<std::uint64_t>(p / 100.0 * static_cast<double>(count_ - 1)) + 1;
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < kBucketCount; ++i) {
        seen += buckets_[i];
        if (seen >= target) {
            // clamp the estimate into the observed range
            auto v = bucket_midpoint(i);
            if (v < min_) v = min_;
            if (v > max_) v = max_;
            return v;
        }
    }
    return max_;
}

void histogram::reset()
{
    buckets_.assign(kBucketCount, 0);
    count_ = sum_ = min_ = max_ = 0;
}

} // namespace mmtp
