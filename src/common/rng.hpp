// rng.hpp — deterministic pseudo-random source (xoshiro256**).
//
// Everything stochastic in the library (loss, jitter, workload activity)
// draws from an rng seeded explicitly by the caller, so simulations and
// benches reproduce bit-for-bit across runs and machines.
#pragma once

#include <cstdint>
#include <array>

namespace mmtp {

/// xoshiro256** 1.0 by Blackman & Vigna, seeded via splitmix64.
class rng {
public:
    explicit rng(std::uint64_t seed);

    /// Uniform over the whole 64-bit range.
    std::uint64_t next();

    /// Uniform real in [0, 1).
    double uniform();

    /// Uniform integer in [lo, hi] (inclusive); requires lo <= hi.
    std::uint64_t uniform_int(std::uint64_t lo, std::uint64_t hi);

    /// True with probability p (p clamped to [0, 1]).
    bool chance(double p);

    /// Exponential with the given mean (> 0).
    double exponential(double mean);

    /// Standard normal via Box–Muller, scaled to (mean, stddev).
    double normal(double mean, double stddev);

    /// Forks an independently-seeded child stream (for per-component rngs).
    rng fork();

private:
    std::array<std::uint64_t, 4> s_{};
    bool have_spare_normal_{false};
    double spare_normal_{0.0};
};

} // namespace mmtp
