// histogram.hpp — log-bucketed latency/size histogram with percentile
// queries, used by telemetry and every bench that reports distributions.
#pragma once

#include <cstdint>
#include <cstddef>
#include <vector>

namespace mmtp {

/// Records non-negative 64-bit samples into ~log-spaced buckets
/// (HdrHistogram-style: 64 sub-buckets per power of two) and answers
/// percentile queries with bounded relative error.
class histogram {
public:
    histogram();

    void record(std::uint64_t value);
    void merge(const histogram& other);

    std::uint64_t count() const { return count_; }
    std::uint64_t min() const { return count_ ? min_ : 0; }
    std::uint64_t max() const { return max_; }
    double mean() const;

    /// Value at percentile p in [0, 100]. Returns 0 for an empty histogram.
    std::uint64_t percentile(double p) const;

    void reset();

private:
    static std::size_t bucket_for(std::uint64_t value);
    static std::uint64_t bucket_midpoint(std::size_t bucket);

    std::vector<std::uint64_t> buckets_;
    std::uint64_t count_{0};
    std::uint64_t sum_{0};
    std::uint64_t min_{0};
    std::uint64_t max_{0};
};

} // namespace mmtp
