#include "common/bytes.hpp"

namespace mmtp {

void byte_writer::u16(std::uint16_t v)
{
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void byte_writer::u24(std::uint32_t v)
{
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void byte_writer::u32(std::uint32_t v)
{
    buf_.push_back(static_cast<std::uint8_t>(v >> 24));
    buf_.push_back(static_cast<std::uint8_t>(v >> 16));
    buf_.push_back(static_cast<std::uint8_t>(v >> 8));
    buf_.push_back(static_cast<std::uint8_t>(v));
}

void byte_writer::u48(std::uint64_t v)
{
    for (int shift = 40; shift >= 0; shift -= 8)
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void byte_writer::u64(std::uint64_t v)
{
    for (int shift = 56; shift >= 0; shift -= 8)
        buf_.push_back(static_cast<std::uint8_t>(v >> shift));
}

void byte_writer::bytes(std::span<const std::uint8_t> src)
{
    buf_.insert(buf_.end(), src.begin(), src.end());
}

void byte_writer::zeros(std::size_t n)
{
    buf_.insert(buf_.end(), n, 0);
}

void byte_writer::patch_u16(std::size_t offset, std::uint16_t v)
{
    if (offset + 2 > buf_.size()) return;
    buf_[offset] = static_cast<std::uint8_t>(v >> 8);
    buf_[offset + 1] = static_cast<std::uint8_t>(v);
}

bool byte_reader::ensure(std::size_t n)
{
    if (failed_ || pos_ + n > data_.size()) {
        failed_ = true;
        return false;
    }
    return true;
}

std::uint8_t byte_reader::u8()
{
    if (!ensure(1)) return 0;
    return data_[pos_++];
}

std::uint16_t byte_reader::u16()
{
    if (!ensure(2)) return 0;
    std::uint16_t v = static_cast<std::uint16_t>(
        (static_cast<std::uint16_t>(data_[pos_]) << 8) | data_[pos_ + 1]);
    pos_ += 2;
    return v;
}

std::uint32_t byte_reader::u24()
{
    if (!ensure(3)) return 0;
    std::uint32_t v = (static_cast<std::uint32_t>(data_[pos_]) << 16)
        | (static_cast<std::uint32_t>(data_[pos_ + 1]) << 8)
        | data_[pos_ + 2];
    pos_ += 3;
    return v;
}

std::uint32_t byte_reader::u32()
{
    if (!ensure(4)) return 0;
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 4;
    return v;
}

std::uint64_t byte_reader::u48()
{
    if (!ensure(6)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 6; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 6;
    return v;
}

std::uint64_t byte_reader::u64()
{
    if (!ensure(8)) return 0;
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) v = (v << 8) | data_[pos_ + i];
    pos_ += 8;
    return v;
}

std::span<const std::uint8_t> byte_reader::bytes(std::size_t n)
{
    if (!ensure(n)) return {};
    auto view = data_.subspan(pos_, n);
    pos_ += n;
    return view;
}

void byte_reader::skip(std::size_t n)
{
    if (!ensure(n)) return;
    pos_ += n;
}

} // namespace mmtp
