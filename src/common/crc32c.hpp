// crc32c.hpp — CRC-32C (Castagnoli), used for payload integrity checks in
// DAQ frames and for the simulator's corruption model (a corrupted packet
// is one whose recomputed CRC no longer matches).
#pragma once

#include <cstdint>
#include <span>

namespace mmtp {

/// CRC-32C of `data` (initial value and final xor per RFC 3720).
std::uint32_t crc32c(std::span<const std::uint8_t> data);

/// Incremental form: feed chunks, passing the previous return value as
/// `state`; start with crc32c_init() and finish with crc32c_finish().
std::uint32_t crc32c_init();
std::uint32_t crc32c_update(std::uint32_t state, std::span<const std::uint8_t> data);
std::uint32_t crc32c_finish(std::uint32_t state);

} // namespace mmtp
