// inline_task.hpp — move-only void() callable with a large inline buffer.
//
// std::function heap-allocates any capture bigger than two or three
// pointers and requires copyability, so the engine's event closures —
// which capture a whole moved packet — both allocated and deep-copied.
// inline_task stores captures up to `inline_capacity` bytes in place
// (sized so `this` + a moved netsim::packet fits with headroom) and only
// falls back to the heap for oversized or throwing-move captures. Moves
// are always noexcept: inline targets relocate via their (nothrow) move
// constructor, heap targets by pointer steal.
#pragma once

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

namespace mmtp {

class inline_task {
public:
    /// Bytes of in-place capture storage. netsim's hottest closure —
    /// a link arrival capturing {link*, packet} — is ~168 bytes; 192
    /// leaves room for a couple of extra captured words.
    static constexpr std::size_t inline_capacity = 192;

    inline_task() noexcept = default;
    inline_task(std::nullptr_t) noexcept {}

    template <typename F,
              typename D = std::remove_cvref_t<F>,
              typename = std::enable_if_t<!std::is_same_v<D, inline_task> &&
                                          std::is_invocable_r_v<void, D&>>>
    inline_task(F&& f)
    {
        if constexpr (fits_inline<D>) {
            ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
            ops_ = &inline_ops<D>;
        } else {
            ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
            ops_ = &heap_ops<D>;
        }
    }

    inline_task(inline_task&& o) noexcept : ops_(o.ops_)
    {
        if (ops_) {
            ops_->relocate(o.buf_, buf_);
            o.ops_ = nullptr;
        }
    }

    inline_task& operator=(inline_task&& o) noexcept
    {
        if (this != &o) {
            if (ops_) ops_->destroy(buf_);
            ops_ = o.ops_;
            if (ops_) {
                ops_->relocate(o.buf_, buf_);
                o.ops_ = nullptr;
            }
        }
        return *this;
    }

    inline_task(const inline_task&) = delete;
    inline_task& operator=(const inline_task&) = delete;

    ~inline_task()
    {
        if (ops_) ops_->destroy(buf_);
    }

    explicit operator bool() const noexcept { return ops_ != nullptr; }

    /// Destroys the current target (if any) and constructs a new one in
    /// place from `f` — one capture move, no intermediate inline_task.
    template <typename F, typename D = std::remove_cvref_t<F>>
    void emplace(F&& f)
    {
        if constexpr (std::is_same_v<D, inline_task>) {
            *this = std::forward<F>(f); // move-only: lvalues won't compile
        } else {
            static_assert(std::is_invocable_r_v<void, D&>);
            if (ops_) ops_->destroy(buf_);
            if constexpr (fits_inline<D>) {
                ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
                ops_ = &inline_ops<D>;
            } else {
                ::new (static_cast<void*>(buf_)) D*(new D(std::forward<F>(f)));
                ops_ = &heap_ops<D>;
            }
        }
    }

    /// Invokes the target. Undefined when empty.
    void operator()() { ops_->invoke(buf_); }

    /// Invokes the target in place, then destroys it, leaving *this
    /// empty. Saves the move-out that operator() callers need when the
    /// task lives in shared storage. Undefined when empty; the storage
    /// must stay valid for the duration of the call.
    void run_and_reset()
    {
        const ops_t* o = ops_;
        o->run_destroy(buf_);
        ops_ = nullptr;
    }

    /// Destroys the target without invoking it, leaving *this empty.
    /// No-op when already empty. Lets a scheduler drop a cancelled
    /// closure's captures immediately instead of at slot reuse.
    void reset() noexcept
    {
        if (ops_) {
            ops_->destroy(buf_);
            ops_ = nullptr;
        }
    }

    /// True when a capture of type F would be stored without allocating.
    template <typename F>
    static constexpr bool stored_inline =
        sizeof(std::remove_cvref_t<F>) <= inline_capacity &&
        alignof(std::remove_cvref_t<F>) <= alignof(std::max_align_t) &&
        std::is_nothrow_move_constructible_v<std::remove_cvref_t<F>>;

private:
    template <typename D>
    static constexpr bool fits_inline = stored_inline<D>;

    struct ops_t {
        void (*invoke)(void*);
        /// Invoke followed by destruction, fused into one indirect call
        /// (the per-event fast path in netsim::engine::step()).
        void (*run_destroy)(void*);
        /// Move-constructs dst from src, then destroys src.
        void (*relocate)(void* src, void* dst) noexcept;
        void (*destroy)(void*) noexcept;
    };

    template <typename D>
    static constexpr ops_t inline_ops{
        [](void* p) { (*std::launder(static_cast<D*>(p)))(); },
        [](void* p) {
            D* f = std::launder(static_cast<D*>(p));
            (*f)();
            f->~D();
        },
        [](void* src, void* dst) noexcept {
            D* s = std::launder(static_cast<D*>(src));
            ::new (dst) D(std::move(*s));
            s->~D();
        },
        [](void* p) noexcept { std::launder(static_cast<D*>(p))->~D(); },
    };

    template <typename D>
    static constexpr ops_t heap_ops{
        [](void* p) { (**std::launder(static_cast<D**>(p)))(); },
        [](void* p) {
            D* f = *std::launder(static_cast<D**>(p));
            (*f)();
            delete f;
        },
        [](void* src, void* dst) noexcept {
            ::new (dst) D*(*std::launder(static_cast<D**>(src)));
        },
        [](void* p) noexcept { delete *std::launder(static_cast<D**>(p)); },
    };

    alignas(std::max_align_t) unsigned char buf_[inline_capacity];
    const ops_t* ops_{nullptr};
};

} // namespace mmtp
