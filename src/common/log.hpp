// log.hpp — minimal leveled logger. Off by default so tests/benches stay
// quiet; examples enable info-level narration.
#pragma once

#include <cstdio>
#include <string>

namespace mmtp {

enum class log_level { off, error, warn, info, debug };

/// Global log threshold; messages above it are dropped.
void set_log_level(log_level level);
log_level get_log_level();

namespace detail {
void log_line(log_level level, const std::string& msg);
}

/// printf-style logging helpers.
template <typename... Args>
void log_error(const char* fmt, Args... args)
{
    if (get_log_level() < log_level::error) return;
    char buf[1024];
    std::snprintf(buf, sizeof buf, fmt, args...);
    detail::log_line(log_level::error, buf);
}

template <typename... Args>
void log_warn(const char* fmt, Args... args)
{
    if (get_log_level() < log_level::warn) return;
    char buf[1024];
    std::snprintf(buf, sizeof buf, fmt, args...);
    detail::log_line(log_level::warn, buf);
}

template <typename... Args>
void log_info(const char* fmt, Args... args)
{
    if (get_log_level() < log_level::info) return;
    char buf[1024];
    std::snprintf(buf, sizeof buf, fmt, args...);
    detail::log_line(log_level::info, buf);
}

template <typename... Args>
void log_debug(const char* fmt, Args... args)
{
    if (get_log_level() < log_level::debug) return;
    char buf[1024];
    std::snprintf(buf, sizeof buf, fmt, args...);
    detail::log_line(log_level::debug, buf);
}

inline void log_error(const char* msg) { log_error("%s", msg); }
inline void log_warn(const char* msg) { log_warn("%s", msg); }
inline void log_info(const char* msg) { log_info("%s", msg); }
inline void log_debug(const char* msg) { log_debug("%s", msg); }

} // namespace mmtp
