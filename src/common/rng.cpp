#include "common/rng.hpp"

#include <cmath>

namespace mmtp {

namespace {

std::uint64_t splitmix64(std::uint64_t& x)
{
    x += 0x9e3779b97f4a7c15ull;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

std::uint64_t rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

rng::rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto& word : s_) word = splitmix64(x);
}

std::uint64_t rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double rng::uniform()
{
    // 53 high bits -> double in [0, 1)
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::uint64_t rng::uniform_int(std::uint64_t lo, std::uint64_t hi)
{
    const std::uint64_t span = hi - lo + 1;
    if (span == 0) return next(); // full range
    return lo + next() % span;
}

bool rng::chance(double p)
{
    if (p <= 0.0) return false;
    if (p >= 1.0) return true;
    return uniform() < p;
}

double rng::exponential(double mean)
{
    double u = uniform();
    // avoid log(0)
    if (u <= 0.0) u = 0x1.0p-53;
    return -mean * std::log(u);
}

double rng::normal(double mean, double stddev)
{
    if (have_spare_normal_) {
        have_spare_normal_ = false;
        return mean + stddev * spare_normal_;
    }
    double u1 = uniform();
    double u2 = uniform();
    if (u1 <= 0.0) u1 = 0x1.0p-53;
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * 3.14159265358979323846 * u2;
    spare_normal_ = r * std::sin(theta);
    have_spare_normal_ = true;
    return mean + stddev * r * std::cos(theta);
}

rng rng::fork()
{
    return rng(next() ^ 0xa5a5a5a55a5a5a5aull);
}

} // namespace mmtp
