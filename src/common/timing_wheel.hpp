// timing_wheel.hpp — hierarchical timing wheel for high-churn timers.
//
// A d-ary heap pays O(log n) per push/pop; at millions of pending timers
// (sender pacing, receiver RTO/NAK backoff, drain windows, policy polls)
// that log is the dominant scheduling cost. The classic answer (Varghese
// & Lauck) is a hashed hierarchical wheel: four levels of 256 slots, each
// level covering 256× the span of the one below, with per-level occupancy
// bitmaps so advancing skips empty slots in O(1) instead of ticking
// through them. Push is O(1); each timer cascades down at most
// `levels - 1` times on its way to dispatch.
//
// Ordering contract: the wheel delivers keys in exactly (at, seq) order —
// the same total order a stable min-heap would produce. Entries that land
// in the same level-0 tick are sorted by (at, seq) when the tick is
// reached, and a late push behind the prepared tick is inserted into its
// sorted position, so callers (netsim::engine) can interleave wheel and
// heap events without ever breaking the same-instant FIFO guarantee.
//
// Keys beyond the wheel horizon (2^(8·levels) ticks ≈ 73 minutes at the
// default 1.024 µs resolution) are rejected at push; the caller keeps
// those sparse far-future events in its heap.
#pragma once

#include "common/units.hpp"

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

namespace mmtp {

/// Key must expose `sim_time at` and `std::uint64_t seq`.
template <typename Key>
class timing_wheel {
public:
    static constexpr unsigned slot_bits = 8;
    static constexpr unsigned slots_per_level = 1u << slot_bits; // 256
    static constexpr unsigned levels = 4;

    /// Level-0 tick is 2^resolution_bits ns (default ~1 µs): fine enough
    /// that protocol timers rarely share a tick, coarse enough that the
    /// 73-minute horizon covers every recurring timer class.
    explicit timing_wheel(unsigned resolution_bits = 10) : res_bits_(resolution_bits) {}

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    /// Inserts `k`. Returns false when `k.at` lies beyond the wheel
    /// horizon measured from the wheel's current position — the caller
    /// must keep such keys elsewhere (netsim::engine uses its heap).
    /// `now` re-anchors a drained wheel, so long wheel-idle stretches
    /// never shrink the usable horizon.
    bool push(const Key& k, sim_time now)
    {
        if (size_ == 0) {
            const std::uint64_t now_tick = tick_of(now);
            if (now_tick > current_tick_) current_tick_ = now_tick;
            due_.clear();
            due_idx_ = 0;
        }
        if (!place(k)) return false;
        size_++;
        return true;
    }

    /// The key pop() would return next; nullptr when empty. May advance
    /// the wheel position and cascade slots (amortized O(1) per entry).
    const Key* peek()
    {
        if (size_ == 0) return nullptr;
        while (due_idx_ == due_.size()) refill();
        return &due_[due_idx_];
    }

    /// Removes and returns the next key. Call peek() first (undefined
    /// when empty; peek() prepares the due list pop() consumes).
    Key pop()
    {
        Key k = due_[due_idx_++];
        size_--;
        if (due_idx_ == due_.size()) {
            due_.clear();
            due_idx_ = 0;
        }
        return k;
    }

private:
    static bool sooner(const Key& a, const Key& b)
    {
        if (a.at != b.at) return a.at < b.at;
        return a.seq < b.seq;
    }

    std::uint64_t tick_of(sim_time t) const
    {
        return static_cast<std::uint64_t>(t.ns) >> res_bits_;
    }

    /// Places `k` in the due list (at or behind the current tick) or the
    /// level whose slot prefix first differs from the current position.
    /// Returns false beyond the horizon. Does not touch size_.
    bool place(const Key& k)
    {
        const std::uint64_t at_tick = tick_of(k.at);
        if (at_tick <= current_tick_) {
            // Same or earlier tick than the wheel position: it belongs in
            // the (sorted) due list. Late same-instant pushes land here.
            auto it = std::lower_bound(due_.begin() + static_cast<std::ptrdiff_t>(due_idx_),
                                       due_.end(), k, sooner);
            due_.insert(it, k);
            return true;
        }
        const std::uint64_t diff = at_tick ^ current_tick_;
        unsigned level;
        if ((diff >> slot_bits) == 0)
            level = 0;
        else if ((diff >> (2 * slot_bits)) == 0)
            level = 1;
        else if ((diff >> (3 * slot_bits)) == 0)
            level = 2;
        else if ((diff >> (4 * slot_bits)) == 0)
            level = 3;
        else
            return false; // beyond horizon
        const auto slot =
            static_cast<unsigned>((at_tick >> (level * slot_bits)) & (slots_per_level - 1));
        slots_[level][slot].push_back(k);
        occ_[level][slot >> 6] |= 1ull << (slot & 63);
        return true;
    }

    /// Advances to the next occupied tick and fills due_. size_ > 0.
    void refill()
    {
        due_.clear();
        due_idx_ = 0;
        for (;;) {
            // Next occupied level-0 slot strictly ahead within the window.
            const auto cur0 = static_cast<unsigned>(current_tick_ & (slots_per_level - 1));
            const int s = next_occupied(0, cur0 + 1);
            if (s >= 0) {
                current_tick_ =
                    (current_tick_ & ~static_cast<std::uint64_t>(slots_per_level - 1))
                    | static_cast<unsigned>(s);
                auto& v = slots_[0][s];
                occ_[0][s >> 6] &= ~(1ull << (s & 63));
                due_.swap(v);
                std::sort(due_.begin(), due_.end(), sooner);
                return;
            }
            // Level-0 window exhausted: cascade the next occupied slot of
            // the lowest level that has one. Cascaded entries re-place
            // into lower levels — or straight into due_ when they sit
            // exactly on the new window start.
            if (!cascade(1) && !cascade(2) && !cascade(3)) return; // unreachable when size_ > 0
            if (due_idx_ < due_.size()) return;
        }
    }

    /// Jumps the wheel position to the next occupied slot of `level` and
    /// re-places its entries one level down. False when the level has no
    /// occupied slot ahead in its current window.
    bool cascade(unsigned level)
    {
        const auto cur =
            static_cast<unsigned>((current_tick_ >> (level * slot_bits)) & (slots_per_level - 1));
        const int s = next_occupied(level, cur + 1);
        if (s < 0) return false;
        const std::uint64_t keep_mask =
            ~((1ull << ((level + 1) * slot_bits)) - 1); // keep bits above this level
        current_tick_ = (current_tick_ & keep_mask)
            | (static_cast<std::uint64_t>(s) << (level * slot_bits));
        auto& v = slots_[level][s];
        occ_[level][s >> 6] &= ~(1ull << (s & 63));
        for (const Key& k : v) place(k); // always succeeds: still within horizon
        v.clear();
        return true;
    }

    /// First occupied slot index >= from at `level`; -1 when none.
    int next_occupied(unsigned level, unsigned from) const
    {
        if (from >= slots_per_level) return -1;
        unsigned word = from >> 6;
        std::uint64_t m = occ_[level][word] & (~0ull << (from & 63));
        for (;;) {
            if (m != 0) return static_cast<int>(word * 64 + std::countr_zero(m));
            if (++word == slots_per_level / 64) return -1;
            m = occ_[level][word];
        }
    }

    unsigned res_bits_;
    std::uint64_t current_tick_{0};
    std::size_t size_{0};
    // Entries at or behind the wheel position, sorted by (at, seq);
    // due_idx_ is the consumed prefix (pop() takes from the front).
    std::vector<Key> due_;
    std::size_t due_idx_{0};
    std::vector<Key> slots_[levels][slots_per_level];
    std::uint64_t occ_[levels][slots_per_level / 64]{};
};

} // namespace mmtp
