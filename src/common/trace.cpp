#include "common/trace.hpp"

#include <algorithm>
#include <cstdio>
#include <unordered_set>

namespace mmtp::trace {

const char* hop_name(hop k)
{
    switch (k) {
    case hop::link_enqueue: return "link_enqueue";
    case hop::link_dequeue: return "link_dequeue";
    case hop::link_drop: return "link_drop";
    case hop::link_corrupt: return "link_corrupt";
    case hop::link_down: return "link_down";
    case hop::link_up: return "link_up";
    case hop::sw_mode_rewrite: return "mode_rewrite";
    case hop::sw_seq_insert: return "seq_insert";
    case hop::sw_age_update: return "age_update";
    case hop::sw_clone: return "clone";
    case hop::sw_backpressure: return "backpressure";
    case hop::sw_drop: return "pipeline_drop";
    case hop::mmtp_send: return "send";
    case hop::mmtp_deliver: return "deliver";
    case hop::mmtp_nak: return "nak";
    case hop::mmtp_retransmit: return "retransmit";
    case hop::mmtp_failover: return "failover";
    case hop::mmtp_giveup: return "give_up";
    case hop::mmtp_drop: return "endpoint_drop";
    case hop::ctl_reconfig_planned: return "reconfig_planned";
    case hop::ctl_reconfig_installed: return "reconfig_installed";
    case hop::ctl_reconfig_committed: return "reconfig_committed";
    case hop::ctl_reconfig_aborted: return "reconfig_aborted";
    }
    return "?";
}

const char* reason_name(reason r)
{
    switch (r) {
    case reason::none: return "";
    case reason::queue_full: return "queue_full";
    case reason::oversize: return "oversize";
    case reason::link_down: return "link_down";
    case reason::random_loss: return "random_loss";
    case reason::corrupted: return "corrupted";
    case reason::malformed: return "malformed";
    case reason::pipeline: return "pipeline";
    case reason::unroutable: return "unroutable";
    case reason::deadline_shed: return "deadline_shed";
    }
    return "?";
}

namespace {
std::size_t round_up_pow2(std::size_t n)
{
    std::size_t p = 1;
    while (p < n) p <<= 1;
    return p;
}
} // namespace

flight_recorder::flight_recorder(std::size_t capacity)
    : ring_(round_up_pow2(capacity < 2 ? 2 : capacity)), mask_(ring_.size() - 1)
{
    site_names_.push_back("?"); // site 0: unnamed
}

std::uint32_t flight_recorder::site(const std::string& name)
{
    for (std::uint32_t i = 0; i < site_names_.size(); ++i)
        if (site_names_[i] == name) return i;
    site_names_.push_back(name);
    return static_cast<std::uint32_t>(site_names_.size() - 1);
}

const std::string& flight_recorder::site_name(std::uint32_t id) const
{
    return site_names_[id < site_names_.size() ? id : 0];
}

std::vector<record> flight_recorder::events() const
{
    std::vector<record> out;
    const std::uint64_t n = head_ < ring_.size() ? head_ : ring_.size();
    out.reserve(n);
    for (std::uint64_t i = head_ - n; i < head_; ++i) out.push_back(ring_[i & mask_]);
    return out;
}

void flight_recorder::absorb(const flight_recorder& other)
{
    // Re-intern the other ring's site table (slot 0 stays "unnamed").
    std::vector<std::uint32_t> remap(other.site_count(), 0);
    for (std::uint32_t i = 1; i < other.site_count(); ++i)
        remap[i] = site(other.site_name(i));

    std::vector<record> merged = events();
    merged.reserve(merged.size() + other.events().size());
    for (record r : other.events()) {
        r.site = r.site < remap.size() ? remap[r.site] : 0;
        merged.push_back(r);
    }
    // Stable: equal timestamps keep this-ring-before-other-ring order, so
    // absorbing shards in index order is deterministic.
    std::stable_sort(merged.begin(), merged.end(),
                     [](const record& a, const record& b) { return a.at_ns < b.at_ns; });

    const std::size_t keep = merged.size() < ring_.size() ? merged.size() : ring_.size();
    const std::size_t skip = merged.size() - keep; // shed oldest on overflow
    for (std::size_t i = 0; i < keep; ++i) ring_[i] = merged[skip + i];
    head_ = keep;
}

std::vector<record> flight_recorder::packet_events(std::uint64_t packet_id) const
{
    std::vector<record> out;
    for (const auto& r : events())
        if (r.packet_id == packet_id) out.push_back(r);
    return out;
}

std::vector<record> flight_recorder::message_timeline(std::uint64_t seq) const
{
    const auto all = events();

    // Pass 1: collect every packet id bound to the sequence. Binding
    // records appear before any dependent binding (a clone record follows
    // its parent's seq-insert in the same pipeline pass; a retransmit
    // binds its fresh id at emission), so one ordered pass converges.
    std::unordered_set<std::uint64_t> ids;
    for (const auto& r : all) {
        switch (r.kind) {
        case hop::sw_seq_insert:
        case hop::mmtp_retransmit:
        case hop::mmtp_deliver:
            if (r.arg == seq && r.packet_id != 0) ids.insert(r.packet_id);
            break;
        case hop::sw_clone:
            if (ids.count(r.arg)) ids.insert(r.packet_id);
            break;
        default:
            break;
        }
    }

    // Pass 2: keep records for bound packets plus stream-scoped records
    // that name (or cover) the sequence.
    std::vector<record> out;
    for (const auto& r : all) {
        bool keep = r.packet_id != 0 && ids.count(r.packet_id) != 0;
        switch (r.kind) {
        case hop::mmtp_nak:
        case hop::mmtp_giveup:
            keep = seq >= range_start(r.arg) && seq < range_start(r.arg) + range_len(r.arg);
            break;
        case hop::mmtp_failover:
            keep = true;
            break;
        default:
            break;
        }
        if (keep) out.push_back(r);
    }
    return out;
}

bool flight_recorder::traversed(std::uint64_t seq, std::uint32_t site_id,
                                std::int64_t after_ns) const
{
    for (const auto& r : message_timeline(seq)) {
        if (r.site != site_id || r.at_ns < after_ns) continue;
        if (r.kind == hop::link_enqueue || r.kind == hop::link_dequeue) return true;
    }
    return false;
}

std::string flight_recorder::format_timeline(const std::vector<record>& evs) const
{
    std::string out;
    char line[192];
    char arg[64];
    for (const auto& r : evs) {
        const char* why = reason_name(r.why);
        if (r.kind == hop::mmtp_nak || r.kind == hop::mmtp_giveup)
            std::snprintf(arg, sizeof arg, "seq=[%llu,+%llu)",
                          static_cast<unsigned long long>(range_start(r.arg)),
                          static_cast<unsigned long long>(range_len(r.arg)));
        else
            std::snprintf(arg, sizeof arg, "%llu", static_cast<unsigned long long>(r.arg));
        std::snprintf(line, sizeof line, "%12lld ns  %-14s %-13s pkt=%-8llu arg=%s%s%s\n",
                      static_cast<long long>(r.at_ns), site_name(r.site).c_str(),
                      hop_name(r.kind), static_cast<unsigned long long>(r.packet_id), arg,
                      *why ? " reason=" : "", why);
        out += line;
    }
    return out;
}

} // namespace mmtp::trace
