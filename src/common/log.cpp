#include "common/log.hpp"

namespace mmtp {

namespace {
log_level g_level = log_level::off;

const char* level_tag(log_level level)
{
    switch (level) {
    case log_level::error: return "ERROR";
    case log_level::warn: return "WARN ";
    case log_level::info: return "INFO ";
    case log_level::debug: return "DEBUG";
    default: return "?";
    }
}
} // namespace

void set_log_level(log_level level) { g_level = level; }
log_level get_log_level() { return g_level; }

namespace detail {
void log_line(log_level level, const std::string& msg)
{
    std::fprintf(stderr, "[%s] %s\n", level_tag(level), msg.c_str());
}
} // namespace detail

} // namespace mmtp
