// dary_heap.hpp — d-ary min-heap with move-out pop.
//
// std::priority_queue exposes only a const top(), which forces callers to
// *copy* the top element before pop() — ruinous when elements own buffers
// (the simulation engine's event closures capture whole packets). This
// heap's pop_move() moves the minimum out instead. A fan-out of 4 keeps
// the tree shallower than a binary heap and sifts touch fewer cache lines
// per level, which measurably helps once elements are hundreds of bytes.
//
// Ordering: `Less(a, b)` returns true when `a` must come out before `b`.
// The heap itself is not stable; callers that need FIFO among equals must
// encode a sequence number in the comparison (as netsim::engine does).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

namespace mmtp {

template <typename T, typename Less, unsigned Arity = 4>
class dary_heap {
    static_assert(Arity >= 2, "a heap needs at least binary fan-out");

public:
    dary_heap() = default;
    explicit dary_heap(Less less) : less_(std::move(less)) {}

    bool empty() const { return v_.empty(); }
    std::size_t size() const { return v_.size(); }
    void reserve(std::size_t n) { v_.reserve(n); }

    /// The element pop_move() would return next. Undefined when empty.
    const T& top() const { return v_.front(); }

    void push(T value)
    {
        v_.push_back(std::move(value));
        sift_up(v_.size() - 1);
    }

    /// Removes and returns the minimum by move. Undefined when empty.
    T pop_move()
    {
        T out = std::move(v_.front());
        if (v_.size() == 1) {
            v_.pop_back();
            return out;
        }
        // Hole-based sift-down: drop the last element into the vacated
        // root, moving children up instead of swapping (one move per
        // level instead of three).
        T x = std::move(v_.back());
        v_.pop_back();
        const std::size_t n = v_.size();
        std::size_t i = 0;
        for (;;) {
            const std::size_t first = i * Arity + 1;
            if (first >= n) break;
            std::size_t best = first;
            const std::size_t end = first + Arity < n ? first + Arity : n;
            for (std::size_t c = first + 1; c < end; ++c)
                if (less_(v_[c], v_[best])) best = c;
            if (!less_(v_[best], x)) break;
            v_[i] = std::move(v_[best]);
            i = best;
        }
        v_[i] = std::move(x);
        return out;
    }

private:
    void sift_up(std::size_t i)
    {
        T x = std::move(v_[i]);
        while (i > 0) {
            const std::size_t parent = (i - 1) / Arity;
            if (!less_(x, v_[parent])) break;
            v_[i] = std::move(v_[parent]);
            i = parent;
        }
        v_[i] = std::move(x);
    }

    std::vector<T> v_;
    Less less_;
};

} // namespace mmtp
