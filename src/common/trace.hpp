// trace.hpp — per-packet flight recorder (hop-by-hop trace spans).
//
// Every layer a datagram crosses — link queues, programmable-element
// stages, MMTP endpoints — can emit a fixed-size span record into one
// shared ring. Records carry the simulated timestamp, an interned *site*
// id (which link / element / endpoint), a hop kind, an optional drop
// reason and one 64-bit kind-specific argument (bytes, sequence number,
// address, packed NAK range). The ring is preallocated, so emitting on
// the PR-1 packet hot path performs zero allocations; when no recorder
// is installed the emit helper is a single pointer test, and with
// MMTP_TRACING defined to 0 it compiles away entirely.
//
// Joining records into a *message* timeline works through binding
// events: a sequence-insert or retransmit record binds a packet id to a
// sequence number, and a clone record binds a clone's fresh packet id to
// its parent's. message_timeline() chases those bindings so the timeline
// of one DAQ message spans the original datagram, its in-network clones
// and any retransmitted copies — which is how the chaos drill shows a
// failed-over message crossing the backup WAN span.
#pragma once

#include "common/units.hpp"

#include <cstdint>
#include <limits>
#include <string>
#include <type_traits>
#include <vector>

#ifndef MMTP_TRACING
#define MMTP_TRACING 1
#endif

namespace mmtp::trace {

/// What happened at the site. Grouped by emitting layer.
enum class hop : std::uint8_t {
    // netsim link / egress queue
    link_enqueue,   // accepted into the egress queue (arg = wire bytes)
    link_dequeue,   // handed to the serializer (arg = wire bytes)
    link_drop,      // lost at the link (reason says why, arg = wire bytes)
    link_corrupt,   // corruption process fired; delivered-but-poisoned
    link_down,      // span went down; serializer stalls (arg = queued pkts)
    link_up,        // span repaired; serializer restarts
    // pnet match-action stages
    sw_mode_rewrite, // mode transition applied (arg = new cfg_data bits)
    sw_seq_insert,   // sequence number assigned (arg = sequence) [binding]
    sw_age_update,   // age field updated (arg = age_us)
    sw_clone,        // duplication clone created (arg = parent packet id) [binding]
    sw_backpressure, // backpressure signal relayed toward source (arg = level)
    sw_drop,         // dropped inside the element (reason says why)
    // MMTP endpoints
    mmtp_send,       // datagram left the sender (arg = payload bytes)
    mmtp_deliver,    // delivered to the application (arg = sequence) [binding]
    mmtp_nak,        // NAK range sent (arg = packed range)
    mmtp_retransmit, // buffer re-sent a sequence (arg = sequence) [binding]
    mmtp_failover,   // stream retargeted at fallback buffer (arg = its addr)
    mmtp_giveup,     // range abandoned as unrecoverable (arg = packed range)
    mmtp_drop,       // endpoint discarded a payload (reason says why)
    // control-plane reconfiguration spans (packet_id = 0, arg = epoch)
    ctl_reconfig_planned,   // engine decided to re-plan (arg = new epoch)
    ctl_reconfig_installed, // new epoch's rules live on the elements
    ctl_reconfig_committed, // drain window over; old epoch retired
    ctl_reconfig_aborted,   // plan dropped (duplicate / no-op / superseded)
};

/// Why a *_drop record was emitted.
enum class reason : std::uint8_t {
    none,
    queue_full,
    oversize,
    link_down,
    random_loss,
    corrupted,
    malformed,
    pipeline,
    unroutable,
    deadline_shed,
};

const char* hop_name(hop k);
const char* reason_name(reason r);

/// One fixed-size flight-recorder record (32 bytes, trivially copyable).
struct record {
    std::int64_t at_ns{0};
    std::uint64_t packet_id{0};
    std::uint64_t arg{0};
    std::uint32_t site{0};
    hop kind{hop::link_enqueue};
    reason why{reason::none};
    std::uint16_t pad_{0};
};
static_assert(sizeof(record) == 32);
static_assert(std::is_trivially_copyable_v<record>);

/// Packs a [start, start+len) sequence range into one argument word
/// (48-bit start, 16-bit length — matches the wire's 48-bit sequences).
constexpr std::uint64_t pack_range(std::uint64_t start, std::uint64_t len)
{
    return (len << 48) | (start & 0xffffffffffffull);
}
constexpr std::uint64_t range_start(std::uint64_t packed) { return packed & 0xffffffffffffull; }
constexpr std::uint64_t range_len(std::uint64_t packed) { return packed >> 48; }

/// Fixed-capacity overwrite-oldest ring of trace records, plus the site
/// name table. Emitting is allocation-free; every query is a cold path.
class flight_recorder {
public:
    /// Capacity is rounded up to a power of two (default 64Ki records,
    /// 2 MiB). All storage is allocated here, never on the emit path.
    explicit flight_recorder(std::size_t capacity = 1u << 16);

    /// Interns `name` and returns its site id (idempotent per name).
    /// Site 0 is reserved for "unnamed". Wiring-time only — allocates.
    std::uint32_t site(const std::string& name);
    const std::string& site_name(std::uint32_t id) const;
    /// Number of interned sites including the reserved "unnamed" slot 0
    /// (ids are dense: 0 .. site_count()-1) — lets a run recorder archive
    /// the whole table for faithful replay.
    std::uint32_t site_count() const { return static_cast<std::uint32_t>(site_names_.size()); }

    void emit(std::int64_t at_ns, std::uint32_t site_id, hop kind,
              std::uint64_t packet_id, std::uint64_t arg, reason why) noexcept
    {
        record& r = ring_[head_ & mask_];
        r.at_ns = at_ns;
        r.packet_id = packet_id;
        r.arg = arg;
        r.site = site_id;
        r.kind = kind;
        r.why = why;
        head_++;
    }

    std::size_t capacity() const { return ring_.size(); }
    /// Total records ever emitted (monotonic, past any overwrites).
    std::uint64_t emitted() const { return head_; }
    /// Records lost to ring overwrite.
    std::uint64_t overwritten() const
    {
        return head_ > ring_.size() ? head_ - ring_.size() : 0;
    }

    /// Surviving records, oldest first.
    std::vector<record> events() const;

    /// Surviving records for one packet id, oldest first.
    std::vector<record> packet_events(std::uint64_t packet_id) const;

    /// The full journey of the message carrying sequence number `seq`:
    /// every record for any packet bound to the sequence (via seq-insert,
    /// retransmit or deliver records), their clones (chased through
    /// clone-binding records), plus stream-scoped records whose packed
    /// range covers the sequence (NAK, give-up) and failover records.
    std::vector<record> message_timeline(std::uint64_t seq) const;

    /// True when `seq`'s timeline contains a link-layer record at `site_id`
    /// no earlier than `after_ns` — "this message traversed the backup
    /// span after the fault".
    bool traversed(std::uint64_t seq, std::uint32_t site_id,
                   std::int64_t after_ns = std::numeric_limits<std::int64_t>::min()) const;

    /// Renders records as an aligned, deterministic text table.
    std::string format_timeline(const std::vector<record>& events) const;

    /// Merges another recorder's surviving records into this ring
    /// (post-run, cold path): `other`'s site names are re-interned here,
    /// its records remapped and the combined set stable-sorted by
    /// timestamp. The sharded runner gives each shard its own ring and
    /// absorbs them after the run, so cross-shard timelines join up.
    /// Oldest records are shed if the merge exceeds capacity; emitted()
    /// afterwards counts surviving records only.
    void absorb(const flight_recorder& other);

private:
    std::vector<record> ring_;
    std::uint64_t mask_{0};
    std::uint64_t head_{0};
    std::vector<std::string> site_names_;
};

// --- global installation -----------------------------------------------
//
// Each simulation thread observes through at most one recorder at a
// time. The pointer is thread_local: a single-threaded run behaves as
// before (one process-wide recorder), while a sharded run gives every
// shard worker its own recorder — emits stay lock-free and race-free,
// and the coordinator merges per-shard rings deterministically after the
// run (netsim::shard_coordinator::set_recorder). Components read the
// installed pointer on every emit, so installation can happen after
// wiring. scoped_recorder un-installs on destruction, keeping sequential
// scenarios (tests, reruns) independent.

namespace detail {
inline thread_local flight_recorder* g_recorder = nullptr;
} // namespace detail

inline flight_recorder* recorder() noexcept { return detail::g_recorder; }
inline void install(flight_recorder* r) noexcept { detail::g_recorder = r; }
inline bool active() noexcept { return detail::g_recorder != nullptr; }

/// Hot-path emit: one pointer test when tracing is compiled in and no
/// recorder installed; a literal no-op when MMTP_TRACING is 0.
inline void emit(sim_time at, std::uint32_t site_id, hop kind, std::uint64_t packet_id,
                 std::uint64_t arg = 0, reason why = reason::none) noexcept
{
#if MMTP_TRACING
    if (flight_recorder* r = detail::g_recorder)
        r->emit(at.ns, site_id, kind, packet_id, arg, why);
#else
    (void)at;
    (void)site_id;
    (void)kind;
    (void)packet_id;
    (void)arg;
    (void)why;
#endif
}

/// Burst-path amortization: hoist the recorder pointer once per burst
/// and emit through it unchecked (`if (rec) rec->emit(...)`). Constant
/// nullptr when tracing is compiled out, so guarded emits fold away.
inline flight_recorder* burst_recorder() noexcept
{
#if MMTP_TRACING
    return detail::g_recorder;
#else
    return nullptr;
#endif
}

class scoped_recorder {
public:
    explicit scoped_recorder(flight_recorder& r) { install(&r); }
    ~scoped_recorder() { install(nullptr); }
    scoped_recorder(const scoped_recorder&) = delete;
    scoped_recorder& operator=(const scoped_recorder&) = delete;
};

} // namespace mmtp::trace
