// units.hpp — simulated time, data-rate and data-size value types.
//
// The whole library runs on a simulated clock: `sim_time` is a signed
// nanosecond count since simulation start. Rates are bits per second.
// Strong types (rather than raw integers) keep bits, bytes, seconds and
// nanoseconds from being mixed up at interfaces.
#pragma once

#include <cstdint>
#include <compare>
#include <limits>

namespace mmtp {

/// Nanoseconds since the start of the simulation.
struct sim_time {
    std::int64_t ns{0};

    constexpr auto operator<=>(const sim_time&) const = default;

    static constexpr sim_time zero() { return sim_time{0}; }
    /// Sentinel meaning "never" / unset; larger than any real time.
    static constexpr sim_time never()
    {
        return sim_time{std::numeric_limits<std::int64_t>::max()};
    }
    constexpr bool is_never() const { return ns == never().ns; }

    constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
    constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
    constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }
};

/// A span of simulated time, also in nanoseconds.
struct sim_duration {
    std::int64_t ns{0};

    constexpr auto operator<=>(const sim_duration&) const = default;

    static constexpr sim_duration zero() { return sim_duration{0}; }
    constexpr double seconds() const { return static_cast<double>(ns) * 1e-9; }
    constexpr double millis() const { return static_cast<double>(ns) * 1e-6; }
    constexpr double micros() const { return static_cast<double>(ns) * 1e-3; }
};

constexpr sim_time operator+(sim_time t, sim_duration d) { return {t.ns + d.ns}; }
constexpr sim_time operator-(sim_time t, sim_duration d) { return {t.ns - d.ns}; }
constexpr sim_duration operator-(sim_time a, sim_time b) { return {a.ns - b.ns}; }
constexpr sim_duration operator+(sim_duration a, sim_duration b) { return {a.ns + b.ns}; }
constexpr sim_duration operator-(sim_duration a, sim_duration b) { return {a.ns - b.ns}; }
constexpr sim_duration operator*(sim_duration d, std::int64_t k) { return {d.ns * k}; }
constexpr sim_duration operator*(std::int64_t k, sim_duration d) { return {d.ns * k}; }
constexpr sim_duration operator/(sim_duration d, std::int64_t k) { return {d.ns / k}; }

namespace literals {
constexpr sim_duration operator""_ns(unsigned long long v) { return {static_cast<std::int64_t>(v)}; }
constexpr sim_duration operator""_us(unsigned long long v) { return {static_cast<std::int64_t>(v) * 1000}; }
constexpr sim_duration operator""_ms(unsigned long long v) { return {static_cast<std::int64_t>(v) * 1000000}; }
constexpr sim_duration operator""_s(unsigned long long v) { return {static_cast<std::int64_t>(v) * 1000000000}; }
} // namespace literals

/// Link or flow rate in bits per second.
struct data_rate {
    std::uint64_t bits_per_sec{0};

    constexpr auto operator<=>(const data_rate&) const = default;

    static constexpr data_rate from_gbps(double g)
    {
        return {static_cast<std::uint64_t>(g * 1e9)};
    }
    static constexpr data_rate from_mbps(double m)
    {
        return {static_cast<std::uint64_t>(m * 1e6)};
    }
    constexpr double gbps() const { return static_cast<double>(bits_per_sec) * 1e-9; }
    constexpr double mbps() const { return static_cast<double>(bits_per_sec) * 1e-6; }

    /// Time to serialize `bytes` onto a link of this rate.
    constexpr sim_duration transmission_time(std::uint64_t bytes) const
    {
        if (bits_per_sec == 0) return sim_duration{std::numeric_limits<std::int64_t>::max() / 2};
        // ns = bits * 1e9 / rate, computed without overflow for jumbo frames
        const auto bits = bytes * 8;
        return sim_duration{static_cast<std::int64_t>(
            (static_cast<__int128>(bits) * 1000000000) / bits_per_sec)};
    }
};

namespace literals {
constexpr data_rate operator""_gbps(unsigned long long v) { return {v * 1000000000ull}; }
constexpr data_rate operator""_mbps(unsigned long long v) { return {v * 1000000ull}; }
constexpr data_rate operator""_kbps(unsigned long long v) { return {v * 1000ull}; }
} // namespace literals

/// Convenience byte-size literals.
namespace literals {
constexpr std::uint64_t operator""_kib(unsigned long long v) { return v * 1024ull; }
constexpr std::uint64_t operator""_mib(unsigned long long v) { return v * 1024ull * 1024ull; }
constexpr std::uint64_t operator""_gib(unsigned long long v) { return v * 1024ull * 1024ull * 1024ull; }
} // namespace literals

} // namespace mmtp
