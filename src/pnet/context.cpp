#include "pnet/context.hpp"

#include "common/bytes.hpp"

namespace mmtp::pnet {

bool parse_context(packet_context& ctx)
{
    byte_reader r(ctx.pkt.headers);
    const auto eth = wire::parse_eth(r);
    if (!eth) return false;
    ctx.eth = *eth;

    if (eth->ethertype == wire::ethertype_mmtp) {
        // MMTP directly over L2 (Req 1).
        const auto h = wire::parse(std::span<const std::uint8_t>(ctx.pkt.headers)
                                       .subspan(r.position()));
        if (!h) return false;
        ctx.mmtp = h;
        ctx.mmtp_over_l2 = true;
        ctx.l4_offset = r.position();
        return true;
    }

    if (eth->ethertype == wire::ethertype_ipv4) {
        const auto ip = wire::parse_ipv4(r);
        if (!ip) return false;
        ctx.ip = ip;
        ctx.l4_offset = r.position();
        if (ip->protocol == wire::ipproto_mmtp) {
            const auto h = wire::parse(std::span<const std::uint8_t>(ctx.pkt.headers)
                                           .subspan(r.position()));
            if (!h) return false;
            ctx.mmtp = h;
        }
        return true;
    }

    // Unknown ethertype: forwarded opaque.
    ctx.l4_offset = r.position();
    return true;
}

void deparse_context(packet_context& ctx)
{
    if (!ctx.headers_dirty) return;

    if (ctx.dst_override && ctx.ip) ctx.ip->dst = *ctx.dst_override;

    byte_writer w(wire::max_header_size + wire::eth_header_size + wire::ipv4_header_size);
    serialize(ctx.eth, w);
    if (ctx.ip) serialize(*ctx.ip, w);

    if (ctx.mmtp) {
        // MMTP header is re-serialized from the (possibly rewritten)
        // struct; MMTP datagrams keep their payload in pkt.payload /
        // virtual_payload, so headers end here.
        serialize(*ctx.mmtp, w);
    } else {
        // Preserve the L4 header bytes of protocols we do not parse.
        const auto& old = ctx.pkt.headers;
        if (ctx.l4_offset < old.size())
            w.bytes(std::span<const std::uint8_t>(old).subspan(ctx.l4_offset));
    }
    ctx.pkt.headers = w.take();
}

} // namespace mmtp::pnet
