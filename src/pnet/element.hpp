// element.hpp — programmable network element (switch / FPGA NIC).
//
// A programmable_switch is a forwarding node that runs a pipeline of
// header-only stages over every packet. The pipeline abstraction is
// deliberately constrained to what Tofino-class P4 hardware supports:
// integer header-field arithmetic, register arrays, counters, packet
// cloning and synthesized small control packets — no payload access, no
// floating point, no unbounded loops.
#pragma once

#include "common/units.hpp"
#include "netsim/engine.hpp"
#include "netsim/node.hpp"
#include "pnet/context.hpp"

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

namespace mmtp::pnet {

/// Per-element mutable state available to stages (P4 registers/counters).
class element_state {
public:
    /// Creates (or resizes) a named register array of u64 cells.
    void create_register(const std::string& name, std::size_t cells);
    /// Access a cell; the register must exist and the index be in range.
    std::uint64_t& reg(const std::string& name, std::size_t index = 0);

    void bump(const std::string& counter, std::uint64_t by = 1) { counters_[counter] += by; }
    std::uint64_t counter(const std::string& name) const;

    wire::ipv4_addr element_addr{0};
    /// Interned flight-recorder site id for this element — stages read it
    /// to label the hop records they emit (0 = unnamed).
    std::uint32_t trace_site{0};

private:
    std::unordered_map<std::string, std::vector<std::uint64_t>> registers_;
    std::unordered_map<std::string, std::uint64_t> counters_;
};

/// A match-action stage. Stages run in order; each may rewrite headers,
/// drop, clone, or emit control packets via the context.
class pipeline_stage {
public:
    virtual ~pipeline_stage() = default;
    virtual void process(packet_context& ctx, element_state& state) = 0;

    /// Burst variant: one virtual call processes ctxs[0..n) in order.
    /// Already-dropped packets are skipped, which preserves the
    /// per-packet loop's first-drop-wins semantics (it breaks on drop, so
    /// later stages never see a dropped packet). Concrete stages override
    /// with a devirtualized loop; semantics must stay identical.
    virtual void process_burst(packet_context* ctxs, unsigned n, element_state& state)
    {
        for (unsigned i = 0; i < n; ++i)
            if (!ctxs[i].drop) process(ctxs[i], state);
    }

    virtual std::string name() const = 0;
};

/// Hardware profile: fixed pipeline latency and a tag for reports.
/// Values approximate the devices used in the paper's pilot (§5.4).
struct element_profile {
    std::string kind;
    sim_duration pipeline_latency{sim_duration{400}};
};

/// EdgeCore Tofino2-class switch: sub-microsecond pipeline.
element_profile tofino2_profile();
/// AMD Alveo (U280/U55C) smartNIC-class element: a little slower, but in
/// the pilot it is the element that fronts DTN buffers.
element_profile alveo_profile();

struct switch_stats {
    std::uint64_t forwarded{0};
    std::uint64_t dropped_corrupted{0};
    std::uint64_t dropped_malformed{0};
    std::uint64_t dropped_by_pipeline{0};
    std::uint64_t dropped_unroutable{0};
    std::uint64_t clones{0};
    std::uint64_t emissions{0};
};

class programmable_switch : public netsim::node {
public:
    programmable_switch(netsim::scheduler& eng, std::string name, wire::ipv4_addr addr,
                        wire::mac_addr mac, element_profile profile = tofino2_profile());

    void receive(netsim::packet&& p, unsigned ingress_port) override;

    /// Burst entry point: runs the whole burst through each stage before
    /// advancing (stage-major), so per-stage virtual dispatch is paid
    /// once per burst. Each packet is processed at its own arrival stamp
    /// (ctx.now = pkt.stamp) and forwarded via link::send_at at its exact
    /// classic-path egress time, so per-packet timelines and statistics
    /// match the per-packet path byte for byte.
    void receive_burst(netsim::packet* pkts, unsigned n, unsigned ingress_port) override;

    /// Appends a stage; runs after all previously added stages.
    void add_stage(std::shared_ptr<pipeline_stage> stage);

    element_state& state() { return state_; }
    const element_state& state() const { return state_; }
    const switch_stats& stats() const { return stats_; }
    const element_profile& profile() const { return profile_; }

    /// Port used for MMTP-over-L2 frames (DAQ networks are trees toward
    /// the first DTN, so a single upstream port suffices).
    void set_l2_uplink(unsigned port) { l2_uplink_ = port; }

    /// Supplies fresh packet ids for clones/emissions.
    void set_id_source(netsim::packet_id_source* ids) { ids_ = ids; }

private:
    void forward(netsim::packet&& p, wire::ipv4_addr dst, bool over_l2);
    /// Burst-path forwarding: egress at virtual time `now` + pipeline
    /// latency via link::send_at (classic-equivalent event when the
    /// egress link is not in burst mode).
    void forward_at(sim_time now, netsim::packet&& p, wire::ipv4_addr dst);
    /// Emissions / drop verdict / deparse / clones / primary forward for
    /// one burst packet — the tail of receive(), at ctx.now.
    void finalize_burst(packet_context& ctx);

    element_profile profile_;
    element_state state_;
    std::vector<std::shared_ptr<pipeline_stage>> stages_;
    switch_stats stats_;
    unsigned l2_uplink_{netsim::no_port};
    netsim::packet_id_source* ids_{nullptr};
    /// Scratch contexts for receive_burst, lazily sized to max_burst and
    /// reused (vectors keep their capacity) so bursts never allocate.
    std::unique_ptr<packet_context[]> ctx_scratch_;
};

} // namespace mmtp::pnet
