// stages.hpp — the MMTP in-network programs (§5.3–§5.4).
//
// Each stage is one self-contained match–action program that a real
// deployment would compile to P4:
//
//   mode_transition_stage  rewrites the transport mode at segment
//                          boundaries (the paper's headline mechanism)
//   age_update_stage       tracks the time budget, sets the `aged` flag,
//                          emits deadline-exceeded notifications
//   backpressure_stage     relays congestion signals toward the source
//   duplication_stage      mirrors streams toward subscribers
//
// All of them operate on headers and element registers only.
#pragma once

#include "pnet/element.hpp"
#include "wire/build.hpp"
#include "wire/control.hpp"

#include <optional>
#include <unordered_map>
#include <vector>

namespace mmtp::pnet {

/// Builds a small MMTP control datagram originating at this element.
netsim::packet make_control_packet(wire::ipv4_addr element_addr, wire::ipv4_addr dst,
                                   wire::experiment_id experiment, wire::control_type type,
                                   std::vector<std::uint8_t> body);

// ---------------------------------------------------------------------------

/// One mode-transition rule. A packet matches when its experiment number
/// equals `experiment` (or `match_any_experiment`), its stamped policy
/// epoch (header cfg_id) equals `epoch` (or `match_any_epoch`), and all
/// bits of `require_bits` are present in its current cfg_data.
struct mode_rule {
    std::uint32_t experiment{0};
    bool match_any_experiment{false};
    std::uint32_t require_bits{0};

    /// Policy epoch this rule belongs to. Setup-time static rules keep
    /// `match_any_epoch` (the pre-reconfiguration behaviour); rules
    /// installed through `install_epoch()` match exactly, so in-flight
    /// datagrams stamped under an older epoch keep hitting the older
    /// epoch's rules until that epoch is retired (make-before-break).
    std::uint8_t epoch{0};
    bool match_any_epoch{true};

    /// Feature bits to activate / deactivate.
    std::uint32_t set_bits{0};
    std::uint32_t clear_bits{0};

    /// Values for newly activated features.
    std::optional<wire::ipv4_addr> buffer_addr;      // retransmission
    std::optional<std::uint32_t> deadline_us;        // timeliness
    std::optional<wire::ipv4_addr> notify_addr;      // timeliness
    std::optional<std::uint32_t> pace_mbps;          // pacing
};

/// Rewrites the transport mode of matching MMTP data packets: the
/// "shape-shifting" step performed at segment boundaries (Fig. 3 ③).
/// When sequencing is activated, sequence numbers are assigned from a
/// per-experiment register array, as the pilot's elements do (§5.4).
class mode_transition_stage final : public pipeline_stage {
public:
    static constexpr std::size_t seq_register_cells = 1024;

    /// Register cell assigned to a stream's sequence counter. Indexing
    /// reduces modulo a *prime* below the register size: the experiment
    /// id packs (experiment << 12) | slice, and because 4096 is a
    /// multiple of a power-of-two register size, `id % 1024` collapses
    /// to `slice % 1024` — every experiment pair sharing a slice number
    /// would alias onto one counter, breaking per-stream sequencing and
    /// the DTN's mirrored-counter prediction the moment two experiments
    /// run concurrently. 4096 % 1021 = 12, so distinct experiments land
    /// 12 cells apart and the facility's stream set (experiments 1..6,
    /// a dozen slices each) is provably collision-free. Everything that
    /// mirrors the element's counters (scenario flush helpers) must use
    /// this, never a raw modulo.
    static constexpr std::size_t seq_cell_of(wire::experiment_id id)
    {
        constexpr std::size_t prime = 1021;
        static_assert(prime <= seq_register_cells);
        return static_cast<std::size_t>(id) % prime;
    }

    mode_transition_stage();
    void add_rule(mode_rule rule) { rules_.push_back(rule); }

    /// Installs a new epoch's rule set (make phase of make-before-break).
    /// Each rule is forced to match exactly `epoch`; the new rules are
    /// placed ahead of existing ones so they win the first-match walk for
    /// datagrams stamped with the new epoch, while older epochs keep
    /// matching their own rules. Bumps the per-element `mode_shifts`
    /// counter when `state` is given.
    void install_epoch(std::uint8_t epoch, std::vector<mode_rule> rules,
                       element_state* state = nullptr);

    /// Retires every rule of `epoch` (break phase, after the drain
    /// window). Returns the number of rules removed and bumps the
    /// per-element `epochs_retired` counter when any were.
    std::size_t retire_epoch(std::uint8_t epoch, element_state* state = nullptr);

    std::size_t rule_count() const { return rules_.size(); }
    bool has_epoch(std::uint8_t epoch) const;

    void process(packet_context& ctx, element_state& state) override;
    void process_burst(packet_context* ctxs, unsigned n, element_state& state) override;
    std::string name() const override { return "mode_transition"; }

private:
    std::vector<mode_rule> rules_;
};

// ---------------------------------------------------------------------------

struct age_config {
    /// Emit deadline_exceeded control messages to the header's notify
    /// address (once per datagram; the `notified` flag suppresses dups).
    bool emit_notifications{true};
    /// Drop datagrams that aged out (policy: stale DAQ data is useless
    /// for near-real-time analysis and only wastes downstream capacity).
    bool drop_aged{false};
};

/// Updates the age field of timeliness-mode packets from the source
/// timestamp, sets the `aged` flag when the budget is exceeded, and
/// notifies the configured address (§5.4 "age-sensitivity is handled
/// entirely in network elements").
class age_update_stage final : public pipeline_stage {
public:
    explicit age_update_stage(age_config cfg = {}) : cfg_(cfg) {}

    void process(packet_context& ctx, element_state& state) override;
    void process_burst(packet_context* ctxs, unsigned n, element_state& state) override;
    std::string name() const override { return "age_update"; }

private:
    age_config cfg_;
};

// ---------------------------------------------------------------------------

struct backpressure_config {
    /// Hysteresis watermarks on the egress queue depth (bytes). Signals
    /// engage when depth reaches `high_watermark_bytes` and only
    /// disengage once it falls back below `low_watermark_bytes` — the
    /// gap keeps a queue oscillating around one threshold from emitting
    /// a signal per data packet.
    std::uint64_t low_watermark_bytes{512 * 1024};
    std::uint64_t high_watermark_bytes{1 * 1024 * 1024};
    /// Minimum spacing between signals per source (rate limiting).
    sim_duration min_interval{sim_duration{100000}}; // 100 us
    /// Severity quantization: the 0..255 level is split into this many
    /// bands, and an already-signalled source is only re-signalled when
    /// the level *escalates* into a higher band. Keeps the signal stream
    /// O(watermark crossings + escalations), not O(packets).
    unsigned level_bands{8};
};

/// Watches the egress queue the packet is about to join; when it crosses
/// the high watermark and the packet's mode allows backpressure, sends a
/// backpressure control message to the packet's source (Fig. 3 ⑤→①).
/// Hysteresis + per-source escalation bands + a minimum signal interval
/// bound the emitted control traffic; there is no explicit release signal
/// — senders recover through their own quiet-period AIMD schedule.
class backpressure_stage final : public pipeline_stage {
public:
    backpressure_stage(programmable_switch& sw, backpressure_config cfg = {});

    void process(packet_context& ctx, element_state& state) override;
    void process_burst(packet_context* ctxs, unsigned n, element_state& state) override;
    std::string name() const override { return "backpressure"; }

private:
    struct source_state {
        sim_time last{};
        unsigned band{0};
    };
    struct port_state {
        bool engaged{false};
        std::unordered_map<wire::ipv4_addr, source_state> sources;
    };

    programmable_switch& sw_;
    backpressure_config cfg_;
    std::vector<port_state> ports_;
};

// ---------------------------------------------------------------------------

/// Duplicates data packets of subscribed experiments toward subscriber
/// addresses, and consumes in-band `subscribe` control messages addressed
/// to this element. This is how Vera Rubin-style alert streams reach
/// several downstream researchers directly (Fig. 3 ⑥, §2.1).
class duplication_stage final : public pipeline_stage {
public:
    void add_subscriber(std::uint32_t experiment, wire::ipv4_addr subscriber);

    /// Failure reaction: the control plane prunes a subscriber whose
    /// node went dark, so the element stops burning egress capacity on
    /// clones nobody receives. Returns true if the entry existed.
    bool remove_subscriber(std::uint32_t experiment, wire::ipv4_addr subscriber);

    void process(packet_context& ctx, element_state& state) override;
    void process_burst(packet_context* ctxs, unsigned n, element_state& state) override;
    std::string name() const override { return "duplication"; }

    std::size_t subscriber_count(std::uint32_t experiment) const;

private:
    std::unordered_map<std::uint32_t, std::vector<wire::ipv4_addr>> subs_;
};

// ---------------------------------------------------------------------------

/// Band classifier for priority egress queues: deadline-critical and
/// control traffic first (band 0), bulk DAQ next (band 1), everything
/// else last (band 2). Usable with netsim::priority_queue_disc; this is
/// the "explicit transport deadlines ... input to active queue
/// management" of §5.3.
unsigned timeliness_band_of(const netsim::packet& p);

constexpr unsigned timeliness_bands = 3;

/// Deadline slack (µs) for deadline-aware shedding in
/// netsim::priority_queue_disc: deadline minus accumulated age for
/// timeliness-mode data packets, INT64_MAX (never shed) for control
/// packets and anything without a deadline. Negative slack means the
/// packet is already past its deadline.
std::int64_t timeliness_slack_of(const netsim::packet& p);

} // namespace mmtp::pnet
