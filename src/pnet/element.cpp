#include "pnet/element.hpp"

#include "common/trace.hpp"
#include "netsim/link.hpp"

#include <cassert>
#include <stdexcept>

namespace mmtp::pnet {

void element_state::create_register(const std::string& name, std::size_t cells)
{
    registers_[name].resize(cells, 0);
}

std::uint64_t& element_state::reg(const std::string& name, std::size_t index)
{
    auto it = registers_.find(name);
    if (it == registers_.end())
        throw std::out_of_range("pnet register not created: " + name);
    return it->second.at(index);
}

std::uint64_t element_state::counter(const std::string& name) const
{
    auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second;
}

element_profile tofino2_profile()
{
    return element_profile{"tofino2", sim_duration{400}}; // ~400 ns pipeline
}

element_profile alveo_profile()
{
    return element_profile{"alveo", sim_duration{1500}}; // ~1.5 us FPGA datapath
}

programmable_switch::programmable_switch(netsim::scheduler& eng, std::string nm,
                                         wire::ipv4_addr addr, wire::mac_addr mc,
                                         element_profile profile)
    : node(eng, std::move(nm), addr, mc), profile_(std::move(profile))
{
    state_.element_addr = addr;
}

void programmable_switch::add_stage(std::shared_ptr<pipeline_stage> stage)
{
    stages_.push_back(std::move(stage));
}

void programmable_switch::receive(netsim::packet&& p, unsigned ingress_port)
{
    if (p.corrupted) {
        // Store-and-forward element: FCS fails, frame dropped here.
        stats_.dropped_corrupted++;
        trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_drop, p.id, 0,
                    trace::reason::corrupted);
        return;
    }
    if (p.hops > 64) { // loop backstop
        stats_.dropped_malformed++;
        trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_drop, p.id, 0,
                    trace::reason::malformed);
        return;
    }

    packet_context ctx;
    ctx.pkt = std::move(p);
    ctx.ingress_port = ingress_port;
    ctx.now = eng_.now();
    if (!parse_context(ctx)) {
        stats_.dropped_malformed++;
        trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                    trace::reason::malformed);
        return;
    }

    for (const auto& stage : stages_) {
        stage->process(ctx, state_);
        if (ctx.drop) break;
    }

    // Control messages synthesized by stages leave first (they are tiny
    // and time-critical: NAKs, backpressure, deadline notifications).
    for (auto& e : ctx.emissions) {
        stats_.emissions++;
        if (ids_) e.pkt.id = ids_->next();
        netsim::packet out = std::move(e.pkt);
        forward(std::move(out), e.dst, false);
    }

    if (ctx.drop) {
        stats_.dropped_by_pipeline++;
        trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                    trace::reason::pipeline);
        return;
    }

    deparse_context(ctx);

    // Clones (in-network duplication toward subscribers, Fig. 3 ⑥).
    for (const auto dst : ctx.clones) {
        netsim::packet copy = ctx.pkt; // deep copy of headers/payload
        if (ids_) copy.id = ids_->next();
        // Rewrite the clone's IPv4 destination.
        packet_context cc;
        cc.pkt = std::move(copy);
        if (parse_context(cc) && cc.ip) {
            cc.headers_dirty = true;
            cc.dst_override = dst;
            deparse_context(cc);
            stats_.clones++;
            // Binding record: ties the clone's fresh id to its parent's.
            trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_clone, cc.pkt.id,
                        ctx.pkt.id);
            forward(std::move(cc.pkt), dst, false);
        }
    }

    // Primary forwarding decision.
    const auto delay = profile_.pipeline_latency;
    if (ctx.mmtp_over_l2) {
        // DAQ-network L2 segment: one upstream port toward the first DTN.
        if (l2_uplink_ == netsim::no_port || l2_uplink_ >= port_count()) {
            stats_.dropped_unroutable++;
            trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                        trace::reason::unroutable);
            return;
        }
        auto pkt = std::move(ctx.pkt);
        const unsigned port = l2_uplink_;
        stats_.forwarded++;
        auto push = [this, port, moved = std::move(pkt)]() mutable {
            egress(port).send(std::move(moved));
        };
        static_assert(netsim::engine::action::stored_inline<decltype(push)>,
                      "switch egress closure must not heap-allocate");
        eng_.schedule_in(delay, netsim::task_class::pipeline, std::move(push));
        return;
    }
    if (!ctx.ip) {
        stats_.dropped_unroutable++;
        trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                    trace::reason::unroutable);
        return;
    }
    const auto dst = ctx.dst_override.value_or(ctx.ip->dst);
    forward(std::move(ctx.pkt), dst, false);
}

namespace {

/// Clears verdicts and parse results on a reused scratch context.
/// clear() (not reassignment) keeps clones/emissions capacity, so a
/// recycled context never re-allocates on the burst path.
void reset_context(packet_context& ctx)
{
    ctx.ip.reset();
    ctx.mmtp.reset();
    ctx.mmtp_over_l2 = false;
    ctx.l4_offset = 0;
    ctx.headers_dirty = false;
    ctx.drop = false;
    ctx.dst_override.reset();
    ctx.clones.clear();
    ctx.emissions.clear();
}

} // namespace

void programmable_switch::receive_burst(netsim::packet* pkts, unsigned n, unsigned ingress_port)
{
    if (!ctx_scratch_)
        ctx_scratch_ = std::make_unique<packet_context[]>(netsim::max_burst);
    packet_context* ctxs = ctx_scratch_.get();

    // Admission + parse, per packet at its own arrival stamp.
    unsigned m = 0;
    for (unsigned i = 0; i < n; ++i) {
        netsim::packet p = std::move(pkts[i]);
        if (p.corrupted) {
            stats_.dropped_corrupted++;
            trace::emit(p.stamp, state_.trace_site, trace::hop::sw_drop, p.id, 0,
                        trace::reason::corrupted);
            continue;
        }
        if (p.hops > 64) { // loop backstop
            stats_.dropped_malformed++;
            trace::emit(p.stamp, state_.trace_site, trace::hop::sw_drop, p.id, 0,
                        trace::reason::malformed);
            continue;
        }
        packet_context& ctx = ctxs[m];
        reset_context(ctx);
        ctx.pkt = std::move(p);
        ctx.ingress_port = ingress_port;
        ctx.now = ctx.pkt.stamp;
        if (!parse_context(ctx)) {
            stats_.dropped_malformed++;
            trace::emit(ctx.now, state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                        trace::reason::malformed);
            continue;
        }
        m++;
    }

    // Stage-major: the whole burst crosses each stage before the next.
    for (const auto& stage : stages_)
        stage->process_burst(ctxs, m, state_);

    for (unsigned i = 0; i < m; ++i)
        finalize_burst(ctxs[i]);
}

void programmable_switch::finalize_burst(packet_context& ctx)
{
    const sim_time now = ctx.now;

    for (auto& e : ctx.emissions) {
        stats_.emissions++;
        if (ids_) e.pkt.id = ids_->next();
        forward_at(now, std::move(e.pkt), e.dst);
    }

    if (ctx.drop) {
        stats_.dropped_by_pipeline++;
        trace::emit(now, state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                    trace::reason::pipeline);
        return;
    }

    deparse_context(ctx);

    for (const auto dst : ctx.clones) {
        netsim::packet copy = ctx.pkt; // deep copy of headers/payload
        if (ids_) copy.id = ids_->next();
        packet_context cc;
        cc.pkt = std::move(copy);
        if (parse_context(cc) && cc.ip) {
            cc.headers_dirty = true;
            cc.dst_override = dst;
            deparse_context(cc);
            stats_.clones++;
            trace::emit(now, state_.trace_site, trace::hop::sw_clone, cc.pkt.id, ctx.pkt.id);
            forward_at(now, std::move(cc.pkt), dst);
        }
    }

    if (ctx.mmtp_over_l2) {
        if (l2_uplink_ == netsim::no_port || l2_uplink_ >= port_count()) {
            stats_.dropped_unroutable++;
            trace::emit(now, state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                        trace::reason::unroutable);
            return;
        }
        stats_.forwarded++;
        egress(l2_uplink_).send_at(now + profile_.pipeline_latency, std::move(ctx.pkt));
        return;
    }
    if (!ctx.ip) {
        stats_.dropped_unroutable++;
        trace::emit(now, state_.trace_site, trace::hop::sw_drop, ctx.pkt.id, 0,
                    trace::reason::unroutable);
        return;
    }
    const auto dst = ctx.dst_override.value_or(ctx.ip->dst);
    forward_at(now, std::move(ctx.pkt), dst);
}

void programmable_switch::forward_at(sim_time now, netsim::packet&& p, wire::ipv4_addr dst)
{
    const unsigned port = route(dst);
    if (port == netsim::no_port || port >= port_count()) {
        stats_.dropped_unroutable++;
        trace::emit(now, state_.trace_site, trace::hop::sw_drop, p.id, 0,
                    trace::reason::unroutable);
        return;
    }
    stats_.forwarded++;
    egress(port).send_at(now + profile_.pipeline_latency, std::move(p));
}

void programmable_switch::forward(netsim::packet&& p, wire::ipv4_addr dst, bool /*over_l2*/)
{
    const unsigned port = route(dst);
    if (port == netsim::no_port || port >= port_count()) {
        stats_.dropped_unroutable++;
        trace::emit(eng_.now(), state_.trace_site, trace::hop::sw_drop, p.id, 0,
                    trace::reason::unroutable);
        return;
    }
    stats_.forwarded++;
    auto push = [this, port, moved = std::move(p)]() mutable {
        egress(port).send(std::move(moved));
    };
    static_assert(netsim::engine::action::stored_inline<decltype(push)>,
                  "switch egress closure must not heap-allocate");
    eng_.schedule_in(profile_.pipeline_latency, netsim::task_class::pipeline, std::move(push));
}

} // namespace mmtp::pnet
