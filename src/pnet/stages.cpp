#include "pnet/stages.hpp"

#include "common/bytes.hpp"
#include "common/trace.hpp"
#include "netsim/link.hpp"

#include <iterator>
#include <limits>

namespace mmtp::pnet {

netsim::packet make_control_packet(wire::ipv4_addr element_addr, wire::ipv4_addr dst,
                                   wire::experiment_id experiment, wire::control_type type,
                                   std::vector<std::uint8_t> body)
{
    wire::header h;
    h.m.set(wire::feature::control);
    h.experiment = experiment;
    h.control = type;

    netsim::packet p;
    p.headers = wire::build_mmtp_over_ipv4(/*src_mac=*/0, element_addr, dst, h, body.size());
    p.payload = std::move(body);
    return p;
}

// --------------------------------------------------------------------------
// mode_transition_stage

mode_transition_stage::mode_transition_stage() = default;

void mode_transition_stage::install_epoch(std::uint8_t epoch, std::vector<mode_rule> rules,
                                          element_state* state)
{
    for (auto& r : rules) {
        r.epoch = epoch;
        r.match_any_epoch = false;
    }
    // New-epoch rules go in front: they win the first-match walk for
    // datagrams stamped with the new epoch, and cannot shadow older
    // epochs because the epoch match is exact.
    rules_.insert(rules_.begin(), std::make_move_iterator(rules.begin()),
                  std::make_move_iterator(rules.end()));
    if (state != nullptr) state->bump("mode_shifts");
}

std::size_t mode_transition_stage::retire_epoch(std::uint8_t epoch, element_state* state)
{
    const auto before = rules_.size();
    std::erase_if(rules_, [epoch](const mode_rule& r) {
        return !r.match_any_epoch && r.epoch == epoch;
    });
    const auto removed = before - rules_.size();
    if (removed > 0 && state != nullptr) state->bump("epochs_retired");
    return removed;
}

bool mode_transition_stage::has_epoch(std::uint8_t epoch) const
{
    for (const auto& r : rules_)
        if (!r.match_any_epoch && r.epoch == epoch) return true;
    return false;
}

void mode_transition_stage::process(packet_context& ctx, element_state& state)
{
    if (!ctx.mmtp || ctx.mmtp->m.has(wire::feature::control)) return;
    auto& h = *ctx.mmtp;

    for (const auto& rule : rules_) {
        if (!rule.match_any_experiment
            && wire::experiment_of(h.experiment) != rule.experiment)
            continue;
        if (!rule.match_any_epoch && h.m.cfg_id != rule.epoch) continue;
        if ((h.m.cfg_data & rule.require_bits) != rule.require_bits) continue;

        const auto before = h.m.cfg_data;
        h.m.cfg_data = (h.m.cfg_data | rule.set_bits) & ~rule.clear_bits;
        if (h.m.cfg_data == before && rule.set_bits == 0 && rule.clear_bits == 0) continue;

        // Activate newly set features with the rule's parameters.
        if (h.m.has(wire::feature::sequencing) && !h.sequencing) {
            // Per-stream sequence counter in a register array, indexed by
            // the full experiment id (slices are independent streams,
            // Req 8) — the pilot's elements "add a sequence number to
            // loss-recoverable streams" (§5.4). As in real P4 hardware the
            // register is a hash-indexed array: concurrent streams must
            // not collide modulo its size for buffer prediction to hold —
            // seq_cell_of reduces modulo a prime so concurrent
            // experiments cannot systematically alias (see stages.hpp).
            state.create_register("mode_seq", seq_register_cells);
            auto& cell = state.reg("mode_seq", seq_cell_of(h.experiment));
            wire::sequencing_field f;
            f.sequence = cell & 0xffffffffffffull;
            f.epoch = static_cast<std::uint16_t>(cell >> 48);
            cell++;
            h.sequencing = f;
            // Binding record: ties this packet id to its sequence number.
            trace::emit(ctx.now, state.trace_site, trace::hop::sw_seq_insert, ctx.pkt.id,
                        f.sequence);
        }
        if (!h.m.has(wire::feature::sequencing)) h.sequencing.reset();

        if (h.m.has(wire::feature::retransmission) && !h.retransmission) {
            wire::retransmission_field f;
            f.buffer_addr = rule.buffer_addr.value_or(state.element_addr);
            h.retransmission = f;
        }
        if (!h.m.has(wire::feature::retransmission)) h.retransmission.reset();

        if (h.m.has(wire::feature::timeliness) && !h.timeliness) {
            wire::timeliness_field f;
            f.deadline_us = rule.deadline_us.value_or(0);
            f.age_us = 0;
            f.notify_addr = rule.notify_addr.value_or(0);
            h.timeliness = f;
        }
        if (!h.m.has(wire::feature::timeliness)) h.timeliness.reset();

        if (h.m.has(wire::feature::pacing) && !h.pacing) {
            wire::pacing_field f;
            f.pace_mbps = rule.pace_mbps.value_or(0);
            h.pacing = f;
        }
        if (!h.m.has(wire::feature::pacing)) h.pacing.reset();

        // Fields the endpoint emitted as zero-valued placeholders get
        // their values from the rule (the network fills in what the
        // source cannot know: buffer addresses, deadlines, paces).
        if (h.retransmission && h.retransmission->buffer_addr == 0 && rule.buffer_addr)
            h.retransmission->buffer_addr = *rule.buffer_addr;
        if (h.timeliness) {
            if (h.timeliness->deadline_us == 0 && rule.deadline_us)
                h.timeliness->deadline_us = *rule.deadline_us;
            if (h.timeliness->notify_addr == 0 && rule.notify_addr)
                h.timeliness->notify_addr = *rule.notify_addr;
        }
        if (h.pacing && h.pacing->pace_mbps == 0 && rule.pace_mbps)
            h.pacing->pace_mbps = *rule.pace_mbps;

        if (!h.m.has(wire::feature::timestamped)) h.timestamp_ns.reset();

        ctx.headers_dirty = true;
        state.bump("mode_transitions");
        trace::emit(ctx.now, state.trace_site, trace::hop::sw_mode_rewrite, ctx.pkt.id,
                    h.m.cfg_data);
        break; // first matching rule wins, P4-table style
    }
}

// --------------------------------------------------------------------------
// age_update_stage

void age_update_stage::process(packet_context& ctx, element_state& state)
{
    if (!ctx.mmtp || !ctx.mmtp->timeliness) return;
    if (ctx.mmtp->m.has(wire::feature::control)) return;
    auto& h = *ctx.mmtp;
    auto& t = *h.timeliness;

    // Age is measured against the source timestamp when present (DAQ
    // measurements are time-stamped, Req 7); otherwise the field keeps
    // whatever upstream elements accumulated.
    if (h.timestamp_ns) {
        const auto age_ns = ctx.now.ns - static_cast<std::int64_t>(*h.timestamp_ns);
        t.age_us = age_ns > 0 ? static_cast<std::uint32_t>(age_ns / 1000) : 0;
        ctx.headers_dirty = true;
        trace::emit(ctx.now, state.trace_site, trace::hop::sw_age_update, ctx.pkt.id,
                    t.age_us);
    }

    if (t.deadline_us > 0 && t.age_us > t.deadline_us) {
        if (!t.aged()) {
            t.set_aged();
            ctx.headers_dirty = true;
            state.bump("aged_packets");
        }
        if (cfg_.emit_notifications && !t.notified() && t.notify_addr != 0) {
            t.set_notified();
            ctx.headers_dirty = true;
            wire::deadline_exceeded_body body;
            body.sequence = h.sequencing ? h.sequencing->sequence : 0;
            body.epoch = h.sequencing ? h.sequencing->epoch : 0;
            body.age_us = t.age_us;
            body.deadline_us = t.deadline_us;
            body.where = state.element_addr;
            byte_writer w;
            serialize(body, w);
            ctx.emissions.push_back(emission{
                make_control_packet(state.element_addr, t.notify_addr, h.experiment,
                                    wire::control_type::deadline_exceeded, w.take()),
                t.notify_addr});
            state.bump("deadline_notifications");
        }
        if (cfg_.drop_aged) {
            ctx.drop = true;
            state.bump("aged_drops");
        }
    }
}

// --------------------------------------------------------------------------
// backpressure_stage

backpressure_stage::backpressure_stage(programmable_switch& sw, backpressure_config cfg)
    : sw_(sw), cfg_(cfg)
{
}

void backpressure_stage::process(packet_context& ctx, element_state& state)
{
    if (!ctx.mmtp || !ctx.mmtp->m.has(wire::feature::backpressure)) return;
    if (ctx.mmtp->m.has(wire::feature::control)) return;
    if (!ctx.ip) return;

    const auto dst = ctx.dst_override.value_or(ctx.ip->dst);
    const unsigned port = sw_.route(dst);
    if (port == netsim::no_port || port >= sw_.port_count()) return;

    const auto depth = sw_.egress(port).queue_depth_bytes();
    if (port >= ports_.size()) ports_.resize(port + 1);
    auto& ps = ports_[port];

    // Hysteresis: engage at the high watermark, disengage below the low
    // one. Between the watermarks an engaged port stays engaged and a
    // quiet port stays quiet.
    if (!ps.engaged) {
        if (depth < cfg_.high_watermark_bytes) return;
        ps.engaged = true;
        state.bump("backpressure_engagements");
    } else if (depth < cfg_.low_watermark_bytes) {
        ps.engaged = false;
        ps.sources.clear(); // next engagement re-signals every source
        return;
    }

    // Severity 0..255 over [low watermark, capacity].
    const auto capacity = sw_.egress(port).config().queue_capacity_bytes;
    const auto over = depth > cfg_.low_watermark_bytes ? depth - cfg_.low_watermark_bytes : 0;
    const auto room = capacity > cfg_.low_watermark_bytes
                          ? capacity - cfg_.low_watermark_bytes
                          : 1;
    std::uint64_t level = room ? (over * 255) / room : 255;
    if (level > 255) level = 255;
    const unsigned band_width = 256 / (cfg_.level_bands ? cfg_.level_bands : 1);
    const unsigned band = static_cast<unsigned>(level) / (band_width ? band_width : 1);

    const auto src = ctx.ip->src;
    auto it = ps.sources.find(src);
    if (it != ps.sources.end()) {
        // Already signalled this engagement: only escalations get
        // through, and no faster than min_interval.
        if (band <= it->second.band
            || (ctx.now - it->second.last).ns < cfg_.min_interval.ns) {
            state.bump("backpressure_suppressed");
            return;
        }
        state.bump("backpressure_escalations");
        it->second = source_state{ctx.now, band};
    } else {
        ps.sources.emplace(src, source_state{ctx.now, band});
    }

    wire::backpressure_body body;
    body.level = static_cast<std::uint8_t>(level);
    body.origin = state.element_addr;
    body.queue_depth_pkts = static_cast<std::uint32_t>(sw_.egress(port).queue_depth_packets());

    byte_writer w;
    serialize(body, w);
    ctx.emissions.push_back(emission{
        make_control_packet(state.element_addr, src, ctx.mmtp->experiment,
                            wire::control_type::backpressure, w.take()),
        src});
    state.bump("backpressure_signals");
    trace::emit(ctx.now, state.trace_site, trace::hop::sw_backpressure, ctx.pkt.id,
                body.level);
}

// --------------------------------------------------------------------------
// duplication_stage

void duplication_stage::add_subscriber(std::uint32_t experiment, wire::ipv4_addr subscriber)
{
    auto& v = subs_[experiment];
    for (auto a : v)
        if (a == subscriber) return;
    v.push_back(subscriber);
}

bool duplication_stage::remove_subscriber(std::uint32_t experiment,
                                          wire::ipv4_addr subscriber)
{
    auto it = subs_.find(experiment);
    if (it == subs_.end()) return false;
    auto& v = it->second;
    for (auto a = v.begin(); a != v.end(); ++a) {
        if (*a == subscriber) {
            v.erase(a);
            return true;
        }
    }
    return false;
}

std::size_t duplication_stage::subscriber_count(std::uint32_t experiment) const
{
    auto it = subs_.find(experiment);
    return it == subs_.end() ? 0 : it->second.size();
}

void duplication_stage::process(packet_context& ctx, element_state& state)
{
    if (!ctx.mmtp) return;
    auto& h = *ctx.mmtp;

    // In-band subscription addressed to this element.
    if (h.m.has(wire::feature::control) && h.control == wire::control_type::subscribe
        && ctx.ip && ctx.ip->dst == state.element_addr) {
        if (const auto body = wire::parse_subscribe(ctx.control_body())) {
            add_subscriber(wire::experiment_of(body->experiment), body->subscriber);
            state.bump("subscriptions");
        }
        ctx.drop = true; // consumed
        return;
    }

    if (h.m.has(wire::feature::control)) return;
    if (!h.m.has(wire::feature::duplication)) return;

    auto it = subs_.find(wire::experiment_of(h.experiment));
    if (it == subs_.end()) return;
    const auto primary_dst =
        ctx.dst_override.value_or(ctx.ip ? ctx.ip->dst : 0);
    for (const auto sub : it->second) {
        if (sub == primary_dst) continue;
        ctx.clones.push_back(sub);
    }
    if (!ctx.clones.empty()) state.bump("duplicated");
}

// --------------------------------------------------------------------------

namespace {
std::optional<wire::header> parse_mmtp_of(const netsim::packet& p)
{
    byte_reader r(p.headers);
    const auto eth = wire::parse_eth(r);
    if (!eth) return std::nullopt;
    if (eth->ethertype == wire::ethertype_ipv4) {
        const auto ip = wire::parse_ipv4(r);
        if (!ip || ip->protocol != wire::ipproto_mmtp) return std::nullopt;
    } else if (eth->ethertype != wire::ethertype_mmtp) {
        return std::nullopt;
    }
    const auto rest = std::span<const std::uint8_t>(p.headers).subspan(r.position());
    return wire::parse(rest);
}
} // namespace

unsigned timeliness_band_of(const netsim::packet& p)
{
    const auto h = parse_mmtp_of(p);
    if (!h) return 2;
    if (h->m.has(wire::feature::control)) return 0; // NAKs/notifications first
    if (h->m.has(wire::feature::timeliness)) return 0;
    return 1; // bulk DAQ
}

std::int64_t timeliness_slack_of(const netsim::packet& p)
{
    constexpr auto never = std::numeric_limits<std::int64_t>::max();
    const auto h = parse_mmtp_of(p);
    if (!h) return never;
    if (h->m.has(wire::feature::control)) return never; // control is never shed
    if (!h->timeliness || h->timeliness->deadline_us == 0) return never;
    return static_cast<std::int64_t>(h->timeliness->deadline_us)
           - static_cast<std::int64_t>(h->timeliness->age_us);
}

// Burst overrides: same loop the pipeline_stage default runs, but the
// process() calls are qualified — resolved statically inside these final
// classes — so the per-packet virtual dispatch collapses to one indirect
// call per stage per burst and the stage bodies can inline.
void mode_transition_stage::process_burst(packet_context* ctxs, unsigned n, element_state& state)
{
    for (unsigned i = 0; i < n; ++i)
        if (!ctxs[i].drop) mode_transition_stage::process(ctxs[i], state);
}

void age_update_stage::process_burst(packet_context* ctxs, unsigned n, element_state& state)
{
    for (unsigned i = 0; i < n; ++i)
        if (!ctxs[i].drop) age_update_stage::process(ctxs[i], state);
}

void backpressure_stage::process_burst(packet_context* ctxs, unsigned n, element_state& state)
{
    for (unsigned i = 0; i < n; ++i)
        if (!ctxs[i].drop) backpressure_stage::process(ctxs[i], state);
}

void duplication_stage::process_burst(packet_context* ctxs, unsigned n, element_state& state)
{
    for (unsigned i = 0; i < n; ++i)
        if (!ctxs[i].drop) duplication_stage::process(ctxs[i], state);
}

} // namespace mmtp::pnet
