// context.hpp — per-packet view given to pipeline stages.
//
// This is the P4 analogy: the parser lifts the header bytes into typed
// structs; stages read/modify *headers and metadata only* (payload bytes
// are deliberately not reachable from here, matching the paper's
// restriction of in-network processing to header processing); the
// deparser re-serializes modified headers back onto the packet.
#pragma once

#include "common/units.hpp"
#include "netsim/packet.hpp"
#include "wire/header.hpp"
#include "wire/lower.hpp"

#include <optional>
#include <vector>

namespace mmtp::pnet {

/// A control message synthesized by a stage (NAK relay, backpressure,
/// deadline-exceeded notification); the element routes it to `dst`.
struct emission {
    netsim::packet pkt;
    wire::ipv4_addr dst{0};
};

struct packet_context {
    netsim::packet pkt;
    unsigned ingress_port{0};
    sim_time now{sim_time::zero()};

    // Parsed headers. `mmtp` is set when the packet carries an MMTP
    // datagram, either directly on L2 or over IPv4 proto 253.
    wire::eth_header eth{};
    std::optional<wire::ipv4_header> ip;
    std::optional<wire::header> mmtp;
    bool mmtp_over_l2{false};
    /// Byte offset of the L4/MMTP payload in pkt.headers (preserved
    /// verbatim for protocols the element does not understand).
    std::size_t l4_offset{0};
    /// True when a stage modified eth/ip/mmtp and the deparser must
    /// re-serialize (otherwise original bytes are forwarded untouched).
    bool headers_dirty{false};

    // Verdicts.
    bool drop{false};
    /// Overrides the IPv4 destination used for forwarding (and written
    /// back into the header by the deparser).
    std::optional<wire::ipv4_addr> dst_override;
    /// Duplicate the packet toward these destinations (Fig. 3 ⑥).
    std::vector<wire::ipv4_addr> clones;
    /// Control messages to inject.
    std::vector<emission> emissions;

    /// Body bytes of an MMTP *control* message. Control bodies are small
    /// fixed-format structures — protocol headers in all but name — so
    /// exposing them here does not violate the header-only restriction.
    /// Empty span for data packets.
    std::span<const std::uint8_t> control_body() const
    {
        if (!mmtp || !mmtp->control) return {};
        return pkt.payload;
    }
};

/// Parses pkt.headers into ctx. Returns false on malformed input
/// (the element then counts and drops the packet).
bool parse_context(packet_context& ctx);

/// Rewrites pkt.headers from the (possibly modified) structs when
/// headers_dirty; bytes from l4_offset onward are preserved unless the
/// packet is MMTP (whose header *is* the re-serialized part).
void deparse_context(packet_context& ctx);

} // namespace mmtp::pnet
