#include "udp/udp.hpp"

#include "common/bytes.hpp"
#include "netsim/engine.hpp"

namespace mmtp::udp {

stack::stack(netsim::host& h, netsim::packet_id_source& ids) : host_(h), ids_(ids)
{
    host_.set_protocol_handler(
        wire::ipproto_udp,
        [this](netsim::packet&& p, const wire::ipv4_header& ip, std::size_t offset) {
            on_packet(std::move(p), ip, offset);
        });
}

socket& stack::open(std::uint16_t port)
{
    auto s = std::unique_ptr<socket>(new socket(*this, port));
    auto& ref = *s;
    sockets_[port] = std::move(s);
    return ref;
}

void stack::on_packet(netsim::packet&& p, const wire::ipv4_header& ip, std::size_t offset)
{
    byte_reader r(std::span<const std::uint8_t>(p.headers).subspan(offset));
    const auto uh = wire::parse_udp(r);
    if (!uh) return;
    auto it = sockets_.find(uh->dst_port);
    if (it == sockets_.end()) return;
    socket& s = *it->second;

    datagram d;
    d.src = ip.src;
    d.src_port = uh->src_port;
    d.total_payload_bytes = p.payload.size() + p.virtual_payload;
    d.payload = std::move(p.payload);
    d.received = host_.sim().now();
    d.packet_id = p.id;
    s.stats_.received++;
    s.stats_.bytes_received += d.total_payload_bytes;
    if (s.on_receive_) s.on_receive_(std::move(d));
}

std::uint64_t socket::send_to(wire::ipv4_addr dst, std::uint16_t dst_port,
                              std::vector<std::uint8_t> content, std::uint64_t extra_virtual)
{
    auto& h = stack_.host();
    netsim::packet p = h.make_ipv4_packet(wire::ipproto_udp, dst);
    byte_writer w;
    wire::udp_header uh;
    uh.src_port = port_;
    uh.dst_port = dst_port;
    const std::uint64_t payload_total = content.size() + extra_virtual;
    uh.length = static_cast<std::uint16_t>(
        payload_total + wire::udp_header_size > 0xffff
            ? 0
            : payload_total + wire::udp_header_size);
    serialize(uh, w);
    const auto bytes = w.take();
    p.headers.insert(p.headers.end(), bytes.begin(), bytes.end());
    p.payload = std::move(content);
    p.virtual_payload = extra_virtual;
    p.id = stack_.ids_.next();
    p.created = h.sim().now();
    stats_.sent++;
    stats_.bytes_sent += payload_total;
    const auto id = p.id;
    h.send_ipv4(std::move(p), dst);
    return id;
}

} // namespace mmtp::udp
