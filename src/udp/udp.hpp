// udp.hpp — UDP baseline endpoints.
//
// Today's DAQ networks stream over UDP (DUNE) or bare Ethernet (Mu2e)
// inside the instrument (§4). This stack provides the UDP half of the
// Fig. 2 baseline: unreliable datagrams with port demultiplexing and no
// flow, congestion, or loss control.
#pragma once

#include "netsim/host.hpp"

#include <functional>
#include <map>

namespace mmtp::udp {

struct datagram {
    wire::ipv4_addr src{0};
    std::uint16_t src_port{0};
    /// Real content bytes (may be empty for bulk DAQ data).
    std::vector<std::uint8_t> payload;
    /// Total payload size including virtual bulk bytes.
    std::uint64_t total_payload_bytes{0};
    sim_time received{sim_time::zero()};
    std::uint64_t packet_id{0};
};

class stack;

class socket {
public:
    using receive_cb = std::function<void(datagram&&)>;

    void set_on_receive(receive_cb cb) { on_receive_ = std::move(cb); }

    /// Sends a datagram: `content` rides as real bytes, `extra_virtual`
    /// adds size-only bulk. Returns the packet id (for tracing).
    std::uint64_t send_to(wire::ipv4_addr dst, std::uint16_t dst_port,
                          std::vector<std::uint8_t> content,
                          std::uint64_t extra_virtual = 0);

    std::uint16_t port() const { return port_; }

    struct socket_stats {
        std::uint64_t sent{0};
        std::uint64_t received{0};
        std::uint64_t bytes_sent{0};
        std::uint64_t bytes_received{0};
    };
    const socket_stats& stats() const { return stats_; }

private:
    friend class stack;
    socket(stack& s, std::uint16_t port) : stack_(s), port_(port) {}

    stack& stack_;
    std::uint16_t port_;
    receive_cb on_receive_;
    socket_stats stats_;
};

class stack {
public:
    stack(netsim::host& h, netsim::packet_id_source& ids);

    /// Binds a socket to `port` (replaces any existing binding).
    socket& open(std::uint16_t port);

    netsim::host& host() { return host_; }

private:
    friend class socket;
    void on_packet(netsim::packet&& p, const wire::ipv4_header& ip, std::size_t offset);

    netsim::host& host_;
    netsim::packet_id_source& ids_;
    std::map<std::uint16_t, std::unique_ptr<socket>> sockets_;
};

} // namespace mmtp::udp
