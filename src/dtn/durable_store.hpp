// durable_store.hpp — archive-backed persistence for the DTN buffer.
//
// Models the paper's §6 challenge 2 ("data comes back from disk"): every
// datagram relayed through a DTN buffer node is also appended to an
// HDF5-style archive (daq::archive_writer). Sealed chunks are durable;
// the open tail is not. A modeled crash (crash()) finalizes what was
// sealed into an on-disk image and discards the tail; a later recover()
// reopens the image and hands back the surviving records plus the
// per-experiment sequence journal so a revived buffer_service can
// re-enter NAK repair with correct sequence/epoch state.
//
// The store is owned *outside* the buffer service (by the testbed or
// scenario) precisely because it models the disk: the service process
// dies in a blackout, the disk does not.
#pragma once

#include "daq/archive.hpp"
#include "dtn/buffer.hpp"

#include <cstdint>
#include <map>
#include <vector>

namespace mmtp::dtn {

struct durable_store_stats {
    std::uint64_t appended{0};
    std::uint64_t rejected{0}; // archive_limits refusals + appends while crashed
    std::uint64_t crashes{0};
    std::uint64_t tail_lost{0}; // records in unsealed chunks at crash time
    std::uint64_t recovered{0};
    std::uint64_t recoveries{0};
};

class durable_store {
public:
    explicit durable_store(daq::archive_limits limits = {}) : limits_(limits), writer_(limits) {}

    /// Appends one buffered datagram to the archive (epoch is carried as
    /// a u16 prefix inside the record payload). Returns false and counts
    /// when refused — by an archive cap or because the node is crashed.
    bool append(const buffered_datagram& d);

    /// Journals "next expected sequence" for an experiment. The journal
    /// becomes durable at the next seal() (it rides the archive's
    /// attribute table); between seals it can be lost like the tail.
    void note_sequence(wire::experiment_id experiment, std::uint64_t next);

    /// Durability point: seals open chunks and persists the sequence
    /// journal. What is sealed here survives any later crash.
    void seal();

    /// Models the node dying: the unsealed tail is dropped (returned as
    /// the loss count), sealed chunks + last-sealed journal become the
    /// crash image, and appends are refused until recover().
    std::uint64_t crash();

    struct recovery {
        std::vector<buffered_datagram> records;
        /// Highest journalled/derived next-sequence per experiment.
        std::map<wire::experiment_id, std::uint64_t> next_sequences;
    };

    /// Reopens the crash image, returns the surviving records and
    /// sequence journal, and re-seeds the (fresh) writer with them so
    /// the revived node keeps accumulating into the same store.
    recovery recover();

    bool crashed() const { return crashed_; }
    std::uint64_t durable_records() const { return writer_.sealed_records(); }
    std::uint64_t open_records() const { return writer_.open_records(); }
    const durable_store_stats& stats() const { return stats_; }

private:
    bool append_impl(const buffered_datagram& d);
    void write_journal();

    daq::archive_limits limits_;
    daq::archive_writer writer_;
    std::map<wire::experiment_id, std::uint64_t> journal_; // pending, durable at seal()
    std::map<wire::experiment_id, std::uint64_t> sealed_journal_;
    std::vector<std::uint8_t> image_; // crash image, set by crash()
    bool crashed_{false};
    durable_store_stats stats_;
};

} // namespace mmtp::dtn
