#include "dtn/buffer.hpp"

namespace mmtp::dtn {

void retransmission_buffer::store(buffered_datagram d, sim_time now)
{
    const key k{d.experiment, d.epoch, d.sequence};
    auto it = by_key_.find(k);
    if (it != by_key_.end()) {
        bytes_ -= it->second.size_bytes;
        by_key_.erase(it);
        // stale fifo entry is skipped lazily during eviction
    }
    d.stored_at = now;
    bytes_ += d.size_bytes;
    stats_.stored++;
    if (bytes_ > stats_.peak_bytes) stats_.peak_bytes = bytes_;
    by_key_[k] = std::move(d);
    fifo_.push_back(k);
    evict(now);
}

void retransmission_buffer::evict(sim_time now)
{
    // Retention-based eviction from the front (oldest first).
    while (!fifo_.empty()) {
        const auto& k = fifo_.front();
        auto it = by_key_.find(k);
        if (it == by_key_.end()) {
            fifo_.pop_front();
            continue; // stale
        }
        const bool too_old = (now - it->second.stored_at).ns > cfg_.retention.ns;
        const bool over_capacity = bytes_ > cfg_.capacity_bytes;
        if (!too_old && !over_capacity) break;
        bytes_ -= it->second.size_bytes;
        if (too_old)
            stats_.evicted_retention++;
        else
            stats_.evicted_capacity++;
        by_key_.erase(it);
        fifo_.pop_front();
    }
}

std::optional<buffered_datagram> retransmission_buffer::fetch(wire::experiment_id experiment,
                                                              std::uint16_t epoch,
                                                              std::uint64_t sequence,
                                                              sim_time now)
{
    evict(now);
    auto it = by_key_.find(key{experiment, epoch, sequence});
    if (it == by_key_.end()) {
        stats_.misses++;
        return std::nullopt;
    }
    stats_.hits++;
    return it->second;
}

std::vector<buffered_datagram> retransmission_buffer::fetch_range(
    wire::experiment_id experiment, std::uint16_t epoch, std::uint64_t first,
    std::uint64_t last, sim_time now)
{
    evict(now);
    std::vector<buffered_datagram> out;
    auto it = by_key_.lower_bound(key{experiment, epoch, first});
    for (; it != by_key_.end(); ++it) {
        if (it->first.experiment != experiment || it->first.epoch != epoch) break;
        if (it->first.sequence > last) break;
        stats_.hits++;
        out.push_back(it->second);
    }
    if (out.empty()) stats_.misses++;
    return out;
}

} // namespace mmtp::dtn
