#include "dtn/durable_store.hpp"

#include <cstdlib>
#include <string>

namespace mmtp::dtn {

namespace {

constexpr const char* journal_prefix = "seq.";

std::vector<std::uint8_t> encode_payload(const buffered_datagram& d)
{
    byte_writer w;
    w.u16(d.epoch);
    w.bytes(d.inline_payload);
    return w.take();
}

} // namespace

bool durable_store::append(const buffered_datagram& d)
{
    if (crashed_) {
        stats_.rejected++;
        return false;
    }
    if (!append_impl(d)) {
        stats_.rejected++;
        return false;
    }
    stats_.appended++;
    return true;
}

bool durable_store::append_impl(const buffered_datagram& d)
{
    daq::archived_record rec;
    rec.sequence = d.sequence;
    rec.timestamp_ns = d.timestamp_ns;
    rec.size_bytes = d.size_bytes;
    rec.payload = encode_payload(d);
    return writer_.append(d.experiment, std::move(rec));
}

void durable_store::note_sequence(wire::experiment_id experiment, std::uint64_t next)
{
    auto& slot = journal_[experiment];
    if (next > slot) slot = next;
}

void durable_store::write_journal()
{
    for (const auto& [id, next] : journal_) {
        auto& sealed = sealed_journal_[id];
        if (next > sealed) sealed = next;
    }
    for (const auto& [id, next] : sealed_journal_)
        writer_.set_attribute(journal_prefix + std::to_string(id), std::to_string(next));
}

void durable_store::seal()
{
    if (crashed_) return;
    writer_.seal_open_chunks();
    write_journal();
}

std::uint64_t durable_store::crash()
{
    if (crashed_) return 0;
    const auto tail = writer_.discard_open_chunks();
    stats_.tail_lost += tail;
    stats_.crashes++;
    // what was sealed — chunks and the last-sealed journal — is the disk
    // image the revived node comes back to
    for (const auto& [id, next] : sealed_journal_)
        writer_.set_attribute(journal_prefix + std::to_string(id), std::to_string(next));
    image_ = writer_.finalize();
    writer_ = daq::archive_writer(limits_);
    journal_.clear();
    crashed_ = true;
    return tail;
}

durable_store::recovery durable_store::recover()
{
    recovery out;
    if (!crashed_) return out;

    auto reader = daq::archive_reader::open(std::move(image_));
    image_.clear();
    sealed_journal_.clear();
    crashed_ = false;
    stats_.recoveries++;
    if (!reader) return out; // corrupt image: revive empty, fail closed

    for (const auto& [key, value] : reader->attributes()) {
        if (key.rfind(journal_prefix, 0) != 0) continue;
        const auto id = static_cast<wire::experiment_id>(
            std::strtoul(key.c_str() + 4, nullptr, 10));
        out.next_sequences[id] = std::strtoull(value.c_str(), nullptr, 10);
    }

    for (const auto id : reader->dataset_ids()) {
        for (auto& rec : reader->read_all(id)) {
            if (rec.payload.size() < 2) continue; // malformed: epoch prefix missing
            byte_reader r(rec.payload);
            buffered_datagram d;
            d.sequence = rec.sequence;
            d.epoch = r.u16();
            d.experiment = id;
            d.timestamp_ns = rec.timestamp_ns;
            d.size_bytes = rec.size_bytes;
            const auto body = r.bytes(rec.payload.size() - 2);
            if (r.failed()) continue;
            d.inline_payload.assign(body.begin(), body.end());
            auto& next = out.next_sequences[id];
            if (d.sequence + 1 > next) next = d.sequence + 1;
            out.records.push_back(std::move(d));
        }
    }

    // recovery compaction: the surviving records seed the fresh writer so
    // a second crash still finds them on disk
    for (const auto& d : out.records) append_impl(d);
    for (const auto& [id, next] : out.next_sequences) note_sequence(id, next);
    seal();

    stats_.recovered += out.records.size();
    return out;
}

} // namespace mmtp::dtn
