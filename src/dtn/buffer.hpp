// buffer.hpp — DTN retransmission buffer store.
//
// The pilot's DTN 1 "represents the processing and buffering stage in the
// DAQ network" (Fig. 4): it holds recently forwarded datagrams so that
// downstream receivers can recover loss from a *nearby* buffer instead of
// the source (§5.3's generalization of X.25 hop-by-hop behaviour, "closer
// to short-term publish-subscribe"). Entries age out by retention time
// and total capacity, newest kept.
#pragma once

#include "common/units.hpp"
#include "wire/ids.hpp"

#include <cstdint>
#include <deque>
#include <map>
#include <optional>
#include <vector>

namespace mmtp::dtn {

struct buffered_datagram {
    std::uint64_t sequence{0};
    std::uint16_t epoch{0};
    wire::experiment_id experiment{0};
    std::uint64_t timestamp_ns{0};
    std::uint32_t size_bytes{0};
    std::vector<std::uint8_t> inline_payload;
    sim_time stored_at{sim_time::zero()};
};

struct buffer_config {
    std::uint64_t capacity_bytes{512ull * 1024 * 1024};
    sim_duration retention{sim_duration{5000000000}}; // 5 s
};

struct buffer_stats {
    std::uint64_t stored{0};
    std::uint64_t evicted_capacity{0};
    std::uint64_t evicted_retention{0};
    std::uint64_t hits{0};
    std::uint64_t misses{0};
    std::uint64_t peak_bytes{0};
};

/// Keyed by (experiment, epoch, sequence); per-experiment streams.
class retransmission_buffer {
public:
    explicit retransmission_buffer(buffer_config cfg = {}) : cfg_(cfg) {}

    /// Stores a datagram (replacing any same-key entry), then evicts by
    /// retention and capacity.
    void store(buffered_datagram d, sim_time now);

    /// Looks up one datagram; counts hit/miss.
    std::optional<buffered_datagram> fetch(wire::experiment_id experiment,
                                           std::uint16_t epoch, std::uint64_t sequence,
                                           sim_time now);

    /// All stored datagrams in [first, last] for (experiment, epoch).
    std::vector<buffered_datagram> fetch_range(wire::experiment_id experiment,
                                               std::uint16_t epoch, std::uint64_t first,
                                               std::uint64_t last, sim_time now);

    /// Applies retention/capacity eviction now — lets occupancy-watermark
    /// pollers observe decay between stores.
    void sweep(sim_time now) { evict(now); }

    std::uint64_t bytes_used() const { return bytes_; }
    std::size_t entries() const { return by_key_.size(); }
    const buffer_stats& stats() const { return stats_; }
    const buffer_config& config() const { return cfg_; }

private:
    struct key {
        wire::experiment_id experiment;
        std::uint16_t epoch;
        std::uint64_t sequence;
        auto operator<=>(const key&) const = default;
    };

    void evict(sim_time now);

    buffer_config cfg_;
    std::map<key, buffered_datagram> by_key_;
    std::deque<key> fifo_; // insertion order for eviction
    std::uint64_t bytes_{0};
    buffer_stats stats_;
};

} // namespace mmtp::dtn
