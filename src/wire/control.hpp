// control.hpp — bodies of MMTP control messages (§5.3, §5.4).
//
// A control message is an MMTP datagram whose header has feature::control
// set; its payload is one of the bodies below, selected by the header's
// control_type field. Control messages are small, fixed-format, and —
// like everything in MMTP — parseable by header-only network elements.
#pragma once

#include "common/bytes.hpp"
#include "wire/header.hpp"

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

namespace mmtp::wire {

/// NAK: "retransmit these sequence ranges of epoch E to me".
/// Sent by a receiver to the nearest retransmission buffer (the address
/// carried in the retransmission extension field) — §5.4's loss recovery.
struct nak_body {
    std::uint16_t epoch{0};
    ipv4_addr requester{0}; // where to send the retransmitted data
    /// Inclusive [first, last] sequence ranges; at most 16 per NAK.
    struct range {
        std::uint64_t first{0};
        std::uint64_t last{0};
        bool operator==(const range&) const = default;
    };
    std::vector<range> ranges;

    bool operator==(const nak_body&) const = default;
};

constexpr std::size_t max_nak_ranges = 16;

/// Backpressure: relayed hop-by-hop toward the source (Fig. 3 ⑤→①).
/// `level` expresses severity 0-255; senders scale their pace by it.
struct backpressure_body {
    std::uint8_t level{0};
    ipv4_addr origin{0};          // element that observed congestion
    std::uint32_t queue_depth_pkts{0};

    bool operator==(const backpressure_body&) const = default;
};

/// Deadline-exceeded notification sent to the timeliness notify address.
struct deadline_exceeded_body {
    std::uint64_t sequence{0};
    std::uint16_t epoch{0};
    std::uint32_t age_us{0};
    std::uint32_t deadline_us{0};
    ipv4_addr where{0}; // element at which the violation was detected

    bool operator==(const deadline_exceeded_body&) const = default;
};

/// A retransmission buffer advertising itself to the control plane.
/// `secondary_addr` (0 = none) names an alternate buffer holding the
/// same streams — receivers fail NAKs over to it when the primary stops
/// answering ("another retransmission buffer becomes available", §5.1).
struct buffer_advert_body {
    ipv4_addr buffer_addr{0};
    std::uint64_t capacity_bytes{0};
    std::uint32_t retention_ms{0};
    ipv4_addr secondary_addr{0};

    bool operator==(const buffer_advert_body&) const = default;
};

/// Stream flush: tells receivers how far a stream's sequence space has
/// advanced, so loss of the *final* datagrams of a window (which no later
/// arrival would ever reveal) still triggers NAK recovery.
struct stream_flush_body {
    wire::experiment_id experiment{0};
    std::uint16_t epoch{0};
    std::uint64_t next_sequence{0}; // one past the highest assigned
    bool operator==(const stream_flush_body&) const = default;
};

/// Subscribe: ask a duplication-capable element to mirror a stream.
struct subscribe_body {
    experiment_id experiment{0};
    ipv4_addr subscriber{0};
    bool operator==(const subscribe_body&) const = default;
};

void serialize(const nak_body& b, byte_writer& w);
void serialize(const backpressure_body& b, byte_writer& w);
void serialize(const deadline_exceeded_body& b, byte_writer& w);
void serialize(const buffer_advert_body& b, byte_writer& w);
void serialize(const stream_flush_body& b, byte_writer& w);
void serialize(const subscribe_body& b, byte_writer& w);

std::optional<nak_body> parse_nak(std::span<const std::uint8_t> data);
std::optional<backpressure_body> parse_backpressure(std::span<const std::uint8_t> data);
std::optional<deadline_exceeded_body> parse_deadline_exceeded(std::span<const std::uint8_t> data);
std::optional<buffer_advert_body> parse_buffer_advert(std::span<const std::uint8_t> data);
std::optional<stream_flush_body> parse_stream_flush(std::span<const std::uint8_t> data);
std::optional<subscribe_body> parse_subscribe(std::span<const std::uint8_t> data);

} // namespace mmtp::wire
