#include "wire/control.hpp"

namespace mmtp::wire {

void serialize(const nak_body& b, byte_writer& w)
{
    w.u16(b.epoch);
    w.u32(b.requester);
    const auto n = b.ranges.size() > max_nak_ranges ? max_nak_ranges : b.ranges.size();
    w.u8(static_cast<std::uint8_t>(n));
    for (std::size_t i = 0; i < n; ++i) {
        w.u48(b.ranges[i].first);
        w.u48(b.ranges[i].last);
    }
}

std::optional<nak_body> parse_nak(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    nak_body b;
    b.epoch = r.u16();
    b.requester = r.u32();
    const auto n = r.u8();
    if (n > max_nak_ranges) return std::nullopt;
    for (std::size_t i = 0; i < n; ++i) {
        nak_body::range rg;
        rg.first = r.u48();
        rg.last = r.u48();
        if (rg.last < rg.first) return std::nullopt;
        b.ranges.push_back(rg);
    }
    if (r.failed()) return std::nullopt;
    return b;
}

void serialize(const backpressure_body& b, byte_writer& w)
{
    w.u8(b.level);
    w.u32(b.origin);
    w.u32(b.queue_depth_pkts);
}

std::optional<backpressure_body> parse_backpressure(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    backpressure_body b;
    b.level = r.u8();
    b.origin = r.u32();
    b.queue_depth_pkts = r.u32();
    if (r.failed()) return std::nullopt;
    return b;
}

void serialize(const deadline_exceeded_body& b, byte_writer& w)
{
    w.u48(b.sequence);
    w.u16(b.epoch);
    w.u32(b.age_us);
    w.u32(b.deadline_us);
    w.u32(b.where);
}

std::optional<deadline_exceeded_body> parse_deadline_exceeded(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    deadline_exceeded_body b;
    b.sequence = r.u48();
    b.epoch = r.u16();
    b.age_us = r.u32();
    b.deadline_us = r.u32();
    b.where = r.u32();
    if (r.failed()) return std::nullopt;
    return b;
}

void serialize(const buffer_advert_body& b, byte_writer& w)
{
    w.u32(b.buffer_addr);
    w.u64(b.capacity_bytes);
    w.u32(b.retention_ms);
    w.u32(b.secondary_addr);
}

std::optional<buffer_advert_body> parse_buffer_advert(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    buffer_advert_body b;
    b.buffer_addr = r.u32();
    b.capacity_bytes = r.u64();
    b.retention_ms = r.u32();
    b.secondary_addr = r.u32();
    if (r.failed()) return std::nullopt;
    return b;
}

void serialize(const stream_flush_body& b, byte_writer& w)
{
    w.u32(b.experiment);
    w.u16(b.epoch);
    w.u64(b.next_sequence);
}

std::optional<stream_flush_body> parse_stream_flush(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    stream_flush_body b;
    b.experiment = r.u32();
    b.epoch = r.u16();
    b.next_sequence = r.u64();
    if (r.failed()) return std::nullopt;
    return b;
}

void serialize(const subscribe_body& b, byte_writer& w)
{
    w.u32(b.experiment);
    w.u32(b.subscriber);
}

std::optional<subscribe_body> parse_subscribe(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    subscribe_body b;
    b.experiment = r.u32();
    b.subscriber = r.u32();
    if (r.failed()) return std::nullopt;
    return b;
}

} // namespace mmtp::wire
