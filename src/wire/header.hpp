// header.hpp — the MMTP wire header (§5.2).
//
// Layout (big-endian):
//
//   core header, always present (8 bytes):
//     u8  cfg_id          configuration identifier (the policy epoch)
//     u24 cfg_data        feature bits for the current segment
//     u32 experiment_id   experiment + instrument slice (Req 8)
//
//   then, for each feature bit set in cfg_data, a fixed-size extension
//   field, in the fixed order below (so the offset of every field is a
//   pure function of cfg_data — P4-parseable without loops):
//
//     sequencing      u48 seq, u16 epoch                        (8 bytes)
//     retransmission  u32 buffer IPv4                           (4 bytes)
//     timeliness      u32 deadline_us, u32 age_us, u16 flags,
//                     u32 notify IPv4                          (14 bytes)
//     pacing          u32 pace_mbps                             (4 bytes)
//     control         u8 control type                           (1 byte)
//     timestamped     u64 source timestamp ns                   (8 bytes)
//
// The payload (never inspected in-network) follows the header.
#pragma once

#include "common/bytes.hpp"
#include "wire/features.hpp"
#include "wire/ids.hpp"

#include <cstdint>
#include <optional>
#include <span>

namespace mmtp::wire {

/// IPv4 address in host byte order (the simulator's node addresses).
using ipv4_addr = std::uint32_t;

/// Timeliness flags (u16).
enum class timeliness_flag : std::uint16_t {
    /// Set by a network element when accumulated age exceeded the deadline
    /// by the time the packet reached that element (§5.4).
    aged = 1u << 0,
    /// A deadline-exceeded notification has already been emitted for this
    /// datagram (suppresses duplicate notifications downstream).
    notified = 1u << 1,
};

constexpr std::uint16_t timeliness_flag_bit(timeliness_flag f)
{
    return static_cast<std::uint16_t>(f);
}

struct sequencing_field {
    std::uint64_t sequence{0}; // 48 bits significant
    std::uint16_t epoch{0};
};

struct retransmission_field {
    ipv4_addr buffer_addr{0};
};

struct timeliness_field {
    std::uint32_t deadline_us{0}; // total age budget for the journey
    std::uint32_t age_us{0};      // accumulated so far, updated in-network
    std::uint16_t flags{0};
    ipv4_addr notify_addr{0};

    bool aged() const { return (flags & timeliness_flag_bit(timeliness_flag::aged)) != 0; }
    void set_aged() { flags |= timeliness_flag_bit(timeliness_flag::aged); }
    bool notified() const
    {
        return (flags & timeliness_flag_bit(timeliness_flag::notified)) != 0;
    }
    void set_notified() { flags |= timeliness_flag_bit(timeliness_flag::notified); }
};

struct pacing_field {
    std::uint32_t pace_mbps{0};
};

/// Control-message type carried when feature::control is set; the body
/// layout for each type lives in wire/control.hpp.
enum class control_type : std::uint8_t {
    nak = 1,               // request retransmission of sequence ranges
    backpressure = 2,      // slow-down signal relayed toward the source
    deadline_exceeded = 3, // timeliness violation notification
    buffer_advert = 4,     // a buffer announces itself (resource map)
    subscribe = 5,         // request in-network duplication of a stream
    stream_flush = 6,      // end-of-window marker: reveals tail loss
};

/// Parsed/composed MMTP header. Optional members mirror feature bits:
/// serialization requires that a member is present iff its bit is set.
struct header {
    mode m{};
    experiment_id experiment{0};

    std::optional<sequencing_field> sequencing;
    std::optional<retransmission_field> retransmission;
    std::optional<timeliness_field> timeliness;
    std::optional<pacing_field> pacing;
    std::optional<control_type> control;
    std::optional<std::uint64_t> timestamp_ns;

    /// Serialized size in bytes for this header's mode.
    std::size_t wire_size() const;

    /// True when every optional member matches its feature bit.
    bool consistent() const;
};

constexpr std::size_t core_header_size = 8;
/// Largest possible header (all features active).
constexpr std::size_t max_header_size = core_header_size + 8 + 4 + 14 + 4 + 1 + 8;

/// Serialized size implied by a mode alone.
std::size_t header_size_for(const mode& m);

/// Appends the header to `w`. Returns false (writing nothing) if the
/// header is inconsistent (optional members not matching feature bits).
bool serialize(const header& h, byte_writer& w);

/// Parses a header from the front of `data`. Returns std::nullopt on
/// truncation or reserved feature bits. Any cfg_id is accepted: it is
/// the policy epoch the datagram was stamped under, and all epochs use
/// the cfg-0 field layout.
std::optional<header> parse(std::span<const std::uint8_t> data);

/// Parses only the core header (cfg + experiment) without extensions —
/// what a minimal mode-0 element needs.
std::optional<header> parse_core(std::span<const std::uint8_t> data);

/// Creates default-valued extension fields for any feature bit of h.m
/// whose field is missing (and drops fields whose bit is clear), making
/// the header consistent for serialization. Endpoints use this when an
/// origin mode activates features whose values the *network* fills in.
void materialize_missing_fields(header& h);

} // namespace mmtp::wire
