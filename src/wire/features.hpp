// features.hpp — MMTP feature bits and transport modes.
//
// Per §5.2 of the paper, the core header carries an 8-bit configuration
// identifier and 24 bits of configuration data; together they form the
// transport *mode*. The configuration data bits activate protocol
// features for the current network segment; for each activated feature a
// fixed-size extension field follows the core header (in a fixed order).
#pragma once

#include <cstdint>
#include <string>

namespace mmtp::wire {

/// Feature bits within the 24-bit configuration-data field.
/// The bit order here is also the on-wire order of extension fields.
enum class feature : std::uint32_t {
    /// 48-bit sequence number + 16-bit stream epoch (loss detection).
    sequencing = 1u << 0,
    /// IPv4 address of the nearest upstream retransmission buffer;
    /// receivers NAK to this address instead of the source (Req 4, §5.3).
    retransmission = 1u << 1,
    /// Delivery deadline + accumulated age + violation-notify address
    /// (Req 3, §5.3-§5.4 "age-sensitivity").
    timeliness = 1u << 2,
    /// Sender pace in Mbps, set by the control plane for the segment.
    pacing = 1u << 3,
    /// Network elements may relay backpressure signals toward the source.
    backpressure = 1u << 4,
    /// Network elements may duplicate this stream toward subscribers.
    duplication = 1u << 5,
    /// Payload is encrypted by third-party software/hardware (Req 5);
    /// carried as a flag only — in-network elements never touch payload.
    encrypted = 1u << 6,
    /// This datagram is a control message (NAK, backpressure, ...).
    control = 1u << 7,
    /// 64-bit source timestamp in ns (message-based abstraction, Req 7).
    timestamped = 1u << 8,
};

constexpr std::uint32_t feature_bit(feature f) { return static_cast<std::uint32_t>(f); }

/// Mask of all bits defined above; any other cfg_data bit is reserved.
constexpr std::uint32_t known_feature_mask = 0x1ffu;

/// A transport mode: configuration identifier + activated feature bits.
/// cfg_id is the control plane's *policy epoch*: each installed
/// configuration is stamped with the epoch it was compiled under, and
/// in-network rules can match on it so in-flight datagrams finish under
/// the rules of the epoch they were sent in (make-before-break
/// reconfiguration).  Every epoch uses the cfg-0 field layout documented
/// above; the epoch versions *which rules apply*, not the wire format.
struct mode {
    std::uint8_t cfg_id{0};
    std::uint32_t cfg_data{0}; // 24 bits significant

    constexpr bool has(feature f) const { return (cfg_data & feature_bit(f)) != 0; }
    constexpr mode& set(feature f)
    {
        cfg_data |= feature_bit(f);
        return *this;
    }
    constexpr mode& clear(feature f)
    {
        cfg_data &= ~feature_bit(f);
        return *this;
    }

    constexpr bool operator==(const mode&) const = default;
};

/// The three pilot-study modes (§5.4).
namespace modes {
/// Mode 0: identification only — unreliable, sensor → first DTN.
constexpr mode identification{0, 0};

/// Mode 1: age-sensitive + recoverable-loss, DTN1 → DTN2 across the WAN.
constexpr mode wan_reliable{
    0,
    feature_bit(feature::sequencing) | feature_bit(feature::retransmission)
        | feature_bit(feature::timeliness) | feature_bit(feature::backpressure)};

/// Mode 2: timeliness check at the destination (age carried, no recovery).
constexpr mode destination_check{0, feature_bit(feature::timeliness)};
} // namespace modes

/// Human-readable rendering, e.g. "cfg0[seq,rtx,time]".
std::string to_string(const mode& m);

} // namespace mmtp::wire
