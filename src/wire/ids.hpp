// ids.hpp — experiment and instrument-slice identifiers.
//
// The 32-bit experiment-ID field of the core header identifies which
// experiment produced the data and, within a partitioned instrument,
// which slice (Req 8): the high 20 bits select the experiment and the low
// 12 bits the slice, allowing 4096 simultaneous partitions per instrument
// (DUNE's four detector modules, or per-researcher partitions).
#pragma once

#include <cstdint>

namespace mmtp::wire {

using experiment_id = std::uint32_t;

constexpr unsigned slice_bits = 12;
constexpr std::uint32_t slice_mask = (1u << slice_bits) - 1;

constexpr experiment_id make_experiment_id(std::uint32_t experiment, std::uint32_t slice)
{
    return (experiment << slice_bits) | (slice & slice_mask);
}

constexpr std::uint32_t experiment_of(experiment_id id) { return id >> slice_bits; }
constexpr std::uint32_t slice_of(experiment_id id) { return id & slice_mask; }

/// Well-known experiment numbers used throughout examples and benches
/// (matching Table 1 of the paper).
namespace experiments {
constexpr std::uint32_t cms_l1 = 1;
constexpr std::uint32_t dune = 2;
constexpr std::uint32_t ecce = 3;
constexpr std::uint32_t mu2e = 4;
constexpr std::uint32_t vera_rubin = 5;
constexpr std::uint32_t iceberg = 6; // DUNE prototype used in the pilot
} // namespace experiments

} // namespace mmtp::wire
