#include "wire/lower.hpp"

#include <cstdio>

namespace mmtp::wire {

void serialize(const eth_header& h, byte_writer& w)
{
    w.u48(h.dst);
    w.u48(h.src);
    w.u16(h.ethertype);
}

std::optional<eth_header> parse_eth(byte_reader& r)
{
    eth_header h;
    h.dst = r.u48();
    h.src = r.u48();
    h.ethertype = r.u16();
    if (r.failed()) return std::nullopt;
    return h;
}

void serialize(const ipv4_header& h, byte_writer& w)
{
    w.u8(0x45); // version 4, IHL 5
    w.u8(h.dscp);
    w.u16(h.total_length);
    w.u16(0); // identification
    w.u16(0x4000); // DF set, no fragmentation in DAQ paths
    w.u8(h.ttl);
    w.u8(h.protocol);
    w.u16(0); // checksum elided in the simulator (corruption modeled at L1)
    w.u32(h.src);
    w.u32(h.dst);
}

std::optional<ipv4_header> parse_ipv4(byte_reader& r)
{
    const auto ver_ihl = r.u8();
    if (r.failed() || ver_ihl != 0x45) return std::nullopt;
    ipv4_header h;
    h.dscp = r.u8();
    h.total_length = r.u16();
    r.skip(2); // identification
    const auto flags = r.u16();
    if ((flags & 0x2000) != 0) return std::nullopt; // MF set: unsupported
    h.ttl = r.u8();
    h.protocol = r.u8();
    r.skip(2); // checksum
    h.src = r.u32();
    h.dst = r.u32();
    if (r.failed()) return std::nullopt;
    return h;
}

void serialize(const udp_header& h, byte_writer& w)
{
    w.u16(h.src_port);
    w.u16(h.dst_port);
    w.u16(h.length);
    w.u16(0); // checksum elided
}

std::optional<udp_header> parse_udp(byte_reader& r)
{
    udp_header h;
    h.src_port = r.u16();
    h.dst_port = r.u16();
    h.length = r.u16();
    r.skip(2);
    if (r.failed()) return std::nullopt;
    return h;
}

std::string addr_to_string(ipv4_addr a)
{
    char buf[16];
    std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (a >> 24) & 0xff, (a >> 16) & 0xff,
                  (a >> 8) & 0xff, a & 0xff);
    return buf;
}

std::optional<ipv4_addr> addr_from_string(const std::string& s)
{
    unsigned a = 0, b = 0, c = 0, d = 0;
    char tail = 0;
    if (std::sscanf(s.c_str(), "%u.%u.%u.%u%c", &a, &b, &c, &d, &tail) != 4) return std::nullopt;
    if (a > 255 || b > 255 || c > 255 || d > 255) return std::nullopt;
    return (a << 24) | (b << 16) | (c << 8) | d;
}

} // namespace mmtp::wire
