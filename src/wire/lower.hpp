// lower.hpp — Ethernet / IPv4 / UDP codecs.
//
// MMTP must "operate across different types of networks ... in some cases
// directly over layer 2" (Req 1). These codecs let MMTP datagrams be
// carried either directly in an Ethernet frame (DAQ networks, like Mu2e
// does today) or inside IPv4 (WAN segments); TCP and UDP baselines reuse
// the same IPv4 codec.
#pragma once

#include "common/bytes.hpp"
#include "wire/header.hpp"

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <string>

namespace mmtp::wire {

using mac_addr = std::uint64_t; // low 48 bits significant

/// Experimental/private ethertype used when MMTP rides directly on L2
/// (0x88B5 is the IEEE "local experimental" ethertype).
constexpr std::uint16_t ethertype_mmtp = 0x88b5;
constexpr std::uint16_t ethertype_ipv4 = 0x0800;

/// IPv4 protocol numbers.
constexpr std::uint8_t ipproto_tcp = 6;
constexpr std::uint8_t ipproto_udp = 17;
/// RFC 3692 experimental protocol number carrying MMTP over IP.
constexpr std::uint8_t ipproto_mmtp = 253;

struct eth_header {
    mac_addr dst{0};
    mac_addr src{0};
    std::uint16_t ethertype{0};

    bool operator==(const eth_header&) const = default;
};

constexpr std::size_t eth_header_size = 14;

/// Simplified IPv4 header: fixed 20 bytes, no options, no fragmentation
/// (DAQ paths are MTU-engineered to avoid fragmentation, §2.1).
struct ipv4_header {
    std::uint8_t dscp{0};
    std::uint16_t total_length{0}; // header + payload
    std::uint8_t ttl{64};
    std::uint8_t protocol{0};
    ipv4_addr src{0};
    ipv4_addr dst{0};

    bool operator==(const ipv4_header&) const = default;
};

constexpr std::size_t ipv4_header_size = 20;

struct udp_header {
    std::uint16_t src_port{0};
    std::uint16_t dst_port{0};
    std::uint16_t length{0}; // header + payload

    bool operator==(const udp_header&) const = default;
};

constexpr std::size_t udp_header_size = 8;

void serialize(const eth_header& h, byte_writer& w);
void serialize(const ipv4_header& h, byte_writer& w);
void serialize(const udp_header& h, byte_writer& w);

std::optional<eth_header> parse_eth(byte_reader& r);
std::optional<ipv4_header> parse_ipv4(byte_reader& r);
std::optional<udp_header> parse_udp(byte_reader& r);

/// Renders 32-bit addresses as dotted quads for logs and reports.
std::string addr_to_string(ipv4_addr a);
/// Parses "a.b.c.d"; returns std::nullopt on malformed input.
std::optional<ipv4_addr> addr_from_string(const std::string& s);

} // namespace mmtp::wire
