// build.hpp — convenience builders for complete MMTP header stacks.
//
// Endpoints and network elements both need "eth + ipv4 + mmtp" and
// "eth + mmtp" byte sequences; these helpers keep that assembly in one
// place so header layout changes don't ripple through the codebase.
#pragma once

#include "wire/header.hpp"
#include "wire/lower.hpp"

#include <cstdint>
#include <vector>

namespace mmtp::wire {

/// Serialized Ethernet + IPv4(proto 253) + MMTP header stack.
/// `total_payload` is only used to fill the IPv4 length field.
std::vector<std::uint8_t> build_mmtp_over_ipv4(mac_addr src_mac, ipv4_addr src,
                                               ipv4_addr dst, const header& h,
                                               std::size_t total_payload,
                                               std::uint8_t dscp = 0);

/// Serialized Ethernet(ethertype 0x88B5) + MMTP header stack (Req 1).
std::vector<std::uint8_t> build_mmtp_over_l2(mac_addr src_mac, mac_addr dst_mac,
                                             const header& h);

} // namespace mmtp::wire
