#include "wire/header.hpp"

namespace mmtp::wire {

namespace {
constexpr std::size_t sequencing_size = 8;
constexpr std::size_t retransmission_size = 4;
constexpr std::size_t timeliness_size = 14;
constexpr std::size_t pacing_size = 4;
constexpr std::size_t control_size = 1;
constexpr std::size_t timestamp_size = 8;
} // namespace

std::string to_string(const mode& m)
{
    std::string s = "cfg" + std::to_string(m.cfg_id) + "[";
    bool first = true;
    auto add = [&](feature f, const char* name) {
        if (!m.has(f)) return;
        if (!first) s += ',';
        s += name;
        first = false;
    };
    add(feature::sequencing, "seq");
    add(feature::retransmission, "rtx");
    add(feature::timeliness, "time");
    add(feature::pacing, "pace");
    add(feature::backpressure, "bp");
    add(feature::duplication, "dup");
    add(feature::encrypted, "enc");
    add(feature::control, "ctl");
    add(feature::timestamped, "ts");
    s += ']';
    return s;
}

std::size_t header_size_for(const mode& m)
{
    std::size_t n = core_header_size;
    if (m.has(feature::sequencing)) n += sequencing_size;
    if (m.has(feature::retransmission)) n += retransmission_size;
    if (m.has(feature::timeliness)) n += timeliness_size;
    if (m.has(feature::pacing)) n += pacing_size;
    if (m.has(feature::control)) n += control_size;
    if (m.has(feature::timestamped)) n += timestamp_size;
    return n;
}

std::size_t header::wire_size() const
{
    return header_size_for(m);
}

bool header::consistent() const
{
    if (m.has(feature::sequencing) != sequencing.has_value()) return false;
    if (m.has(feature::retransmission) != retransmission.has_value()) return false;
    if (m.has(feature::timeliness) != timeliness.has_value()) return false;
    if (m.has(feature::pacing) != pacing.has_value()) return false;
    if (m.has(feature::control) != control.has_value()) return false;
    if (m.has(feature::timestamped) != timestamp_ns.has_value()) return false;
    return true;
}

bool serialize(const header& h, byte_writer& w)
{
    if (!h.consistent()) return false;
    if ((h.m.cfg_data & ~known_feature_mask) != 0) return false;

    w.u8(h.m.cfg_id);
    w.u24(h.m.cfg_data);
    w.u32(h.experiment);

    if (h.sequencing) {
        w.u48(h.sequencing->sequence);
        w.u16(h.sequencing->epoch);
    }
    if (h.retransmission) {
        w.u32(h.retransmission->buffer_addr);
    }
    if (h.timeliness) {
        w.u32(h.timeliness->deadline_us);
        w.u32(h.timeliness->age_us);
        w.u16(h.timeliness->flags);
        w.u32(h.timeliness->notify_addr);
    }
    if (h.pacing) {
        w.u32(h.pacing->pace_mbps);
    }
    if (h.control) {
        w.u8(static_cast<std::uint8_t>(*h.control));
    }
    if (h.timestamp_ns) {
        w.u64(*h.timestamp_ns);
    }
    return true;
}

std::optional<header> parse(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    header h;
    h.m.cfg_id = r.u8();
    h.m.cfg_data = r.u24();
    h.experiment = r.u32();
    if (r.failed()) return std::nullopt;
    // cfg_id carries the control plane's policy epoch; every epoch uses the
    // cfg-0 field layout, so any value parses.  Unknown feature bits still
    // make the extension region unparseable and must be rejected.
    if ((h.m.cfg_data & ~known_feature_mask) != 0) return std::nullopt;

    if (h.m.has(feature::sequencing)) {
        sequencing_field f;
        f.sequence = r.u48();
        f.epoch = r.u16();
        h.sequencing = f;
    }
    if (h.m.has(feature::retransmission)) {
        retransmission_field f;
        f.buffer_addr = r.u32();
        h.retransmission = f;
    }
    if (h.m.has(feature::timeliness)) {
        timeliness_field f;
        f.deadline_us = r.u32();
        f.age_us = r.u32();
        f.flags = r.u16();
        f.notify_addr = r.u32();
        h.timeliness = f;
    }
    if (h.m.has(feature::pacing)) {
        pacing_field f;
        f.pace_mbps = r.u32();
        h.pacing = f;
    }
    if (h.m.has(feature::control)) {
        h.control = static_cast<control_type>(r.u8());
    }
    if (h.m.has(feature::timestamped)) {
        h.timestamp_ns = r.u64();
    }
    if (r.failed()) return std::nullopt;
    return h;
}

void materialize_missing_fields(header& h)
{
    if (h.m.has(feature::sequencing)) {
        if (!h.sequencing) h.sequencing = sequencing_field{};
    } else {
        h.sequencing.reset();
    }
    if (h.m.has(feature::retransmission)) {
        if (!h.retransmission) h.retransmission = retransmission_field{};
    } else {
        h.retransmission.reset();
    }
    if (h.m.has(feature::timeliness)) {
        if (!h.timeliness) h.timeliness = timeliness_field{};
    } else {
        h.timeliness.reset();
    }
    if (h.m.has(feature::pacing)) {
        if (!h.pacing) h.pacing = pacing_field{};
    } else {
        h.pacing.reset();
    }
    if (h.m.has(feature::control)) {
        if (!h.control) h.control = static_cast<control_type>(0);
    } else {
        h.control.reset();
    }
    if (h.m.has(feature::timestamped)) {
        if (!h.timestamp_ns) h.timestamp_ns = 0;
    } else {
        h.timestamp_ns.reset();
    }
}

std::optional<header> parse_core(std::span<const std::uint8_t> data)
{
    byte_reader r(data);
    header h;
    h.m.cfg_id = r.u8();
    h.m.cfg_data = r.u24();
    h.experiment = r.u32();
    if (r.failed()) return std::nullopt;
    return h;
}

} // namespace mmtp::wire
