#include "wire/build.hpp"

#include "common/bytes.hpp"

namespace mmtp::wire {

std::vector<std::uint8_t> build_mmtp_over_ipv4(mac_addr src_mac, ipv4_addr src,
                                               ipv4_addr dst, const header& h,
                                               std::size_t total_payload, std::uint8_t dscp)
{
    byte_writer w(eth_header_size + ipv4_header_size + max_header_size);
    eth_header eth;
    eth.src = src_mac;
    eth.dst = 0;
    eth.ethertype = ethertype_ipv4;
    serialize(eth, w);

    ipv4_header ip;
    ip.dscp = dscp;
    ip.protocol = ipproto_mmtp;
    ip.src = src;
    ip.dst = dst;
    const std::size_t len = ipv4_header_size + h.wire_size() + total_payload;
    ip.total_length = len > 0xffff ? 0 : static_cast<std::uint16_t>(len);
    serialize(ip, w);

    serialize(h, w);
    return w.take();
}

std::vector<std::uint8_t> build_mmtp_over_l2(mac_addr src_mac, mac_addr dst_mac,
                                             const header& h)
{
    byte_writer w(eth_header_size + max_header_size);
    eth_header eth;
    eth.src = src_mac;
    eth.dst = dst_mac;
    eth.ethertype = ethertype_mmtp;
    serialize(eth, w);
    serialize(h, w);
    return w.take();
}

} // namespace mmtp::wire
