// dsl.hpp — the declarative scenario format and its driver.
//
// Every drill in this directory is a config struct plus a make_*()
// builder; until now the only way to *compose* one was to write C++.
// The DSL names the same knobs in a line-oriented text format — the
// Petri-net-parser approach the ROADMAP asks for: scenarios become
// data, and one binary replays any mix of topology, traffic, faults,
// overload profile and policy preset without recompiling.
//
// Grammar (no external deps, one pass, line-oriented):
//
//   # comment                      blank lines and '#' lines are skipped
//   [section]                      sections scope keys; duplicates are errors
//   key = value                    whitespace-trimmed on both sides
//
// Typed values carry unit suffixes mirroring common/units.hpp:
//   durations   500ns  250us  2ms  1s        (integer count + suffix)
//   rates       10gbps 400mbps 10kbps 9600bps
//   sizes       8192b  512kib  8mib  1gib
//   booleans    true/false  on/off  yes/no  1/0
//   fractions   bare decimals in [0, 1] (loss probability, BER)
//
// Every scenario names its `topology` — one of the six presets
// (pilot, today, chaos, overload, shapeshift, soak) — and only that
// topology's knobs are legal: the parser **fails closed** on unknown
// sections, unknown keys, malformed or out-of-range values and
// duplicated sections/keys, always reporting the offending line number.
// A parse either yields a fully-validated scenario_spec or an error;
// there is no partially-applied scenario.
#pragma once

#include "scenario/driver.hpp"

#include <cstdint>
#include <memory>
#include <optional>
#include <string>

namespace mmtp::scenario {

/// A parsed scenario: the topology name plus that topology's fully
/// populated config. Exactly one of the config members is meaningful
/// (the one `topology` names); the others stay default-constructed.
struct scenario_spec {
    std::string name;     // [scenario] name = ...
    std::string topology; // pilot | today | chaos | overload | shapeshift | soak
    /// The file's acceptance contract. false (default): the run must end
    /// whole — zero loss, zero duplicates, zero give-ups. true: loss is
    /// accepted (e.g. the status-quo pipeline has no recovery), but
    /// duplicates never are.
    bool lossy{false};

    pilot_driver::options pilot{};
    today_driver::options today{};
    chaos_config chaos{};
    overload_config overload{};
    shapeshift_config shapeshift{};
    soak_config soak{};

    std::uint64_t seed() const;
    void set_seed(std::uint64_t s);
    /// The burst knob of the active topology config.
    std::uint32_t link_burst() const;
    void set_link_burst(std::uint32_t b);
    /// The shard count of the active topology config ([engine] shards).
    std::uint32_t shards() const;
    void set_shards(std::uint32_t n);
};

/// Bounds for `[engine] shards` (parse fails closed outside them).
constexpr std::uint32_t max_shards = 64;

/// A line-anchored parse diagnostic. line is 1-based; 0 means the error
/// is about the file as a whole (e.g. a missing [scenario] section).
struct dsl_error {
    unsigned line{0};
    std::string message;

    std::string to_string() const
    {
        return "line " + std::to_string(line) + ": " + message;
    }
};

/// Outcome of a parse: either a validated spec or a diagnostic.
struct parse_outcome {
    std::optional<scenario_spec> spec;
    dsl_error error;

    explicit operator bool() const { return spec.has_value(); }
};

/// Parses scenario text. Never throws; malformed input of any shape
/// (including binary garbage) yields an error outcome.
parse_outcome parse_scenario(const std::string& text);

/// Reads and parses a scenario file (unreadable file => error outcome).
parse_outcome load_scenario_file(const std::string& path);

/// Renders a spec back to scenario text that parse_scenario() accepts
/// (used by the campaign generator; not guaranteed byte-identical to
/// the input it was parsed from — only semantically identical).
std::string render_scenario(const scenario_spec& spec);

/// Executes a parsed scenario through the standard driver interface by
/// delegating to the concrete driver the registry builds for the
/// spec's topology — scenario files run anywhere a driver runs
/// (run_example, the campaign runner, tests).
class dsl_driver : public driver {
public:
    explicit dsl_driver(scenario_spec spec);
    ~dsl_driver() override;

    std::string describe() const override;
    run_context build() override;
    telemetry::table report(telemetry::metrics_registry& reg) override;

    const scenario_spec& spec() const { return spec_; }
    /// The concrete driver executing the spec (valid after build()).
    driver& inner() { return *inner_; }

    /// Generic acceptance numbers, post-run: what was offered, what
    /// arrived, and the failure counters the campaign invariants gate
    /// on. Wholeness semantics follow the drill's own summary.
    struct acceptance {
        std::uint64_t expected{0};
        std::uint64_t delivered{0};
        std::uint64_t duplicates{0};
        std::uint64_t given_up{0};
        std::uint64_t outstanding_gaps{0};
        bool whole{false};
    };
    acceptance accept();

    /// The testbed's network, for structural invariants (per-link stats
    /// reconciliation). Valid after build().
    netsim::network& network();

private:
    scenario_spec spec_;
    std::unique_ptr<driver> inner_;
};

} // namespace mmtp::scenario
