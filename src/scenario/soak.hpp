// soak.hpp — the facility-scale soak: all five Table-1 experiments at
// once, over shared WAN spans and DTNs, under a scripted fault-and-
// overload storm.
//
// Every other drill exercises one subsystem against one stream. The
// soak is the integration claim of §2: "integrated research
// infrastructure" means CMS L1, DUNE, ECCE, Mu2e and Vera Rubin share
// the same spans, the same retransmission DTN, the same programmable
// element and the same capacity planner — concurrently, at millions of
// messages — and every control-plane layer stays correct while the
// fault subsystem and the closed-loop policy engines are active in the
// same run (the first drill to combine them):
//
//   cms ──┐
//   dune ─┤                       ┌── wan-primary ══╗
//   ecce ─┼─► DTN1 ──► Tofino ────┤                 ╠══► rx
//   mu2e ─┤  (buffer,  (5 mode    └── wan-backup ══╝  │
//   rubin ┘   relay)    stages,        ▲               │
//              ▲        duplication)   │  NAK return ──┘
//              │           │           │
//              │           ▼       planner + health
//       storage pressure  DTN2     (trunks + churn)
//       gates admissions  (tap,
//                          killed + revived mid-run)
//
// Five slices of load: (1) steady per-stream traffic — experiments ×
// slices × messages, timed emission chains, not an up-front schedule;
// (2) admission/teardown churn against the planner (admit_or_defer,
// hold, release) at hundreds of flows; (3) DTN1 storage-pressure
// engagement that gates the churn behind the planner's deferred queue
// and drains it on release; (4) a storm — a corruption burst on the
// primary span, a DTN2 kill-and-revive (blackout hooks + durable
// store), a hard primary-WAN failure rerouting all five trunks onto the
// backup, and a second burst on the now-active backup span; (5) five
// *independent* closed-loop policy engines, one per experiment, each
// owning its own mode_transition_stage on the shared element (epoch
// retirement is per-stage, so one experiment's commit can never retire
// another's rules).
//
// The run must end whole: zero duplicates, zero give-ups (every storm
// loss is NAK-recovered from DTN1), all completed streams retired by
// prune_idle, all pressure-suppression records pruned — and two
// same-seed runs produce byte-identical telemetry even though every
// hot-path table underneath is now hashed (soak_result::csv /
// metrics_csv; test_soak asserts both).
#pragma once

#include "control/health_monitor.hpp"
#include "control/planner.hpp"
#include "control/policy_engine.hpp"
#include "daq/profiles.hpp"
#include "dtn/durable_store.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/fault.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/report.hpp"

#include <array>
#include <map>
#include <memory>
#include <string>
#include <vector>

namespace mmtp::scenario {

/// The five concurrent experiments (Table 1 order).
inline constexpr std::size_t soak_experiments = 5;

struct soak_config {
    std::uint64_t seed{42};

    // --- traffic shape: experiments × slices × messages ---
    /// Parallel sensor slices per experiment (each is one sequence
    /// space: experiment_id = (number << 12) | slice).
    unsigned slices_per_experiment{4};
    /// Messages per slice stream. The default totals 5 × 4 × 50 000 =
    /// one million messages.
    std::uint64_t messages_per_stream{50000};
    std::uint32_t message_bytes{512};
    /// Per-stream emission gap. 2 µs × 20 streams × 512 B ≈ 41 Gbps
    /// offered onto the 100 Gbps WAN span.
    sim_duration message_interval{sim_duration{2000}};
    sim_time first_message{sim_time{100000}}; // 100 us
    /// Experiment mix: bit i enables Table-1 experiment i (cms, dune,
    /// ecce, mu2e, rubin). Disabled experiments keep their trunks,
    /// engines and mode stages — only their traffic is withheld, so the
    /// control plane still carries five tenants.
    std::uint32_t experiment_mask{0x1f};
    /// Per-experiment messages-per-stream override (0 = messages_per_stream)
    /// — the DSL's "rates/counts per experiment" knob.
    std::array<std::uint64_t, 5> experiment_messages{};
    /// Per-experiment emission-gap override (0 ns = message_interval).
    std::array<sim_duration, 5> experiment_interval{};

    // --- spans ---
    data_rate wan_rate{data_rate::from_gbps(100)};
    sim_duration wan_delay{sim_duration{1000000}}; // 1 ms one way
    std::uint64_t wan_queue_bytes{32ull * 1024 * 1024};

    // --- capacity plan: five trunks plus admission/teardown churn ---
    /// Rate each experiment's trunk is admitted at on {daq, wan-primary}
    /// (backup registered on {daq, wan-backup}).
    data_rate trunk_rate{data_rate::from_gbps(8)};
    /// Short-lived transfer requests: one admit_or_defer per interval,
    /// held for `churn_hold`, then released. ~100 live at peak, ~450
    /// admitted over the run — the planner's O(1) hot path at soak
    /// flow counts.
    sim_duration churn_interval{sim_duration{200000}};  // 200 us
    sim_duration churn_hold{sim_duration{20000000}};    // 20 ms
    data_rate churn_rate{data_rate{10000000}};          // 10 Mbps
    sim_time churn_until{sim_time{90000000}};           // 90 ms

    // --- DTN1: shared retransmission buffer + storage pressure ---
    std::uint64_t dtn1_capacity_bytes{1024ull * 1024 * 1024};
    /// Retention horizon; with ~41 Gbps flowing this holds ~102 MB, so
    /// the high watermark below engages early and stays engaged until
    /// the traffic tail decays — gating churn admissions for most of
    /// the run (the deferred queue drains at release).
    sim_duration dtn1_retention{sim_duration{20000000}}; // 20 ms
    std::uint64_t occupancy_high_bytes{96ull * 1024 * 1024};
    std::uint64_t occupancy_low_bytes{32ull * 1024 * 1024};
    /// Quiet period between storage-pressure signals per source.
    sim_duration pressure_hold{sim_duration{5000000}}; // 5 ms
    sim_duration pressure_poll{sim_duration{1000000}}; // 1 ms
    /// Records per archive chunk on DTN2's durable store.
    std::uint32_t persist_chunk_records{256};

    // --- the storm ---
    /// W1: corruption burst on the primary span (all five engines'
    /// loss triggers fire on the next poll).
    sim_time burst1_at{sim_time{20000000}};             // 20 ms
    sim_duration burst1_duration{sim_duration{2000000}}; // 2 ms
    double burst1_ber{2e-6};
    /// DTN2 (the duplication-fed tap) is killed and revived: blackout +
    /// crash() at down, feed repair + revive() + re-advertisement at up.
    sim_time dtn2_down_at{sim_time{30000000}}; // 30 ms
    sim_time dtn2_up_at{sim_time{40000000}};   // 40 ms
    /// W2: the primary WAN span fails hard — the health monitor drives
    /// the planner, all five trunks reroute onto wan-backup, the
    /// element's route flips. Repair does not move them back
    /// (make-before-break is the operator's call).
    sim_time wan_down_at{sim_time{45000000}}; // 45 ms
    sim_time wan_up_at{sim_time{55000000}};   // 55 ms
    /// W3: corruption burst on the backup span (now the active path).
    sim_time burst2_at{sim_time{70000000}};             // 70 ms
    sim_duration burst2_duration{sim_duration{2000000}}; // 2 ms
    double burst2_ber{2e-6};

    // --- closed-loop knobs (one engine per experiment) ---
    /// Preset all five engines run (closed_loop shifts modes on loss and
    /// health triggers; static_preset pins every epoch at 0).
    control::mode_preset policy{control::mode_preset::closed_loop};
    sim_duration poll_interval{sim_duration{1000000}}; // 1 ms
    sim_duration drain_window{sim_duration{2000000}};  // 2 ms
    std::uint64_t loss_degrade_threshold{8};
    unsigned restore_after_clean_polls{4};

    // --- receiver recovery ---
    std::uint32_t max_nak_attempts{10};
    std::uint32_t failover_attempts{4};

    // --- tail: flush, stream retirement, run horizon ---
    /// End-of-window flush, after the traffic tail (~100 ms) but well
    /// inside DTN1's retention so a revealed tail gap is recoverable.
    sim_time flush_at{sim_time{105000000}}; // 105 ms
    /// Periodic receiver prune: completed streams idle this long retire
    /// (must exceed the reorder/pacing horizon). The first sweep runs
    /// only after the flush markers have landed and their recovery has
    /// settled — a retired stream that later receives a flush marker
    /// would be resurrected as an all-gap ghost.
    sim_time prune_from{sim_time{118000000}};           // 118 ms
    sim_duration prune_interval{sim_duration{5000000}}; // 5 ms
    sim_duration prune_idle_after{sim_duration{10000000}}; // 10 ms
    /// Recovery probe after W2 (reroute wholeness).
    sim_duration probe_interval{sim_duration{500000}}; // 500 us
    /// Bounded horizon for every periodic chain (polls, prunes).
    sim_time end_at{sim_time{140000000}}; // 140 ms

    /// Packets per burst on every span (1 = classic per-packet path).
    std::uint32_t link_burst{1};
    /// Simulation shards. 1 (default) is the classic single-engine run,
    /// byte-identical with pre-shard telemetry. >1 partitions the soak
    /// by network domain — {sensors, dtn1, tofino, control} / {rx} /
    /// {dtn2} — with cut-link propagation bounding the lookahead.
    std::uint32_t shards{1};

    /// Messages the traffic loop will schedule under the mask/overrides.
    std::uint64_t expected_messages() const
    {
        std::uint64_t total = 0;
        for (std::size_t i = 0; i < 5; ++i) {
            if ((experiment_mask >> i & 1u) == 0) continue;
            const std::uint64_t per = experiment_messages[i] != 0
                ? experiment_messages[i]
                : messages_per_stream;
            total += static_cast<std::uint64_t>(slices_per_experiment) * per;
        }
        return total;
    }
};

/// CI-sized soak: same topology, same storm script, same control plane,
/// ~10 000 messages stretched over the same 100 ms span (ctest label
/// `soak`, sanitizer-friendly). Burst BERs and watermarks are rescaled
/// so every trigger still fires at the smaller packet rate.
soak_config soak_smoke_config();

struct soak_testbed {
    netsim::network net;
    soak_config cfg;

    std::array<netsim::host*, soak_experiments> sensors{};
    netsim::host* dtn1{nullptr};
    netsim::host* dtn2{nullptr};
    pnet::programmable_switch* tofino{nullptr};
    netsim::host* rx_host{nullptr};

    unsigned wan_primary_port{0};
    unsigned wan_backup_port{0};
    netsim::link* wan_primary{nullptr};
    netsim::link* wan_backup{nullptr};
    netsim::link* dtn2_feed{nullptr};

    std::array<std::unique_ptr<core::stack>, soak_experiments> sensor_stacks;
    std::array<std::unique_ptr<core::sender>, soak_experiments> senders;
    std::unique_ptr<core::stack> dtn1_stack;
    std::unique_ptr<core::buffer_service> dtn1_svc;
    std::unique_ptr<core::stack> dtn2_stack;
    std::unique_ptr<core::buffer_service> dtn2_svc;
    /// DTN2's modeled disk (survives the kill-and-revive cycle).
    std::unique_ptr<dtn::durable_store> dtn2_store;
    std::unique_ptr<core::stack> rx_stack;
    std::unique_ptr<core::receiver> rx;

    /// One mode stage per experiment, each owned by its own engine —
    /// epoch retirement is per-stage, so engines can never collide.
    std::array<std::shared_ptr<pnet::mode_transition_stage>, soak_experiments>
        mode_stages;
    std::shared_ptr<pnet::duplication_stage> duplication;
    std::array<std::unique_ptr<control::policy_engine>, soak_experiments> engines;

    control::capacity_planner planner;
    std::array<control::flow_id, soak_experiments> trunks{};
    std::unique_ptr<control::health_monitor> health;
    std::unique_ptr<netsim::fault_scheduler> faults;
    std::unique_ptr<telemetry::recovery_tracker> recovery;

    telemetry::metrics_registry metrics;

    std::uint64_t messages_scheduled{0};
    std::uint64_t churn_requests{0};
    std::uint64_t churn_released{0};
    /// Deliveries keyed by experiment *number* (concurrency evidence).
    std::map<std::uint32_t, std::uint64_t> delivered_by_experiment;
};

/// Builds the soak topology, wires the full control plane (planner +
/// health + five policy engines + pressure gating), and scripts the
/// traffic chains, the churn, the storm and the tail. Call
/// net.sim().run() (or use run_soak_drill) to execute.
std::unique_ptr<soak_testbed> make_soak(const soak_config& cfg);

struct soak_result {
    std::uint64_t messages_sent{0};
    std::uint64_t delivered{0};
    bool all_delivered{false};
    /// Per-experiment delivery counts (all five must be complete).
    std::map<std::uint32_t, std::uint64_t> delivered_by_experiment;
    bool all_experiments_complete{false};

    core::receiver_stats rx;
    core::buffer_service_stats dtn1;
    core::buffer_service_stats dtn2;
    netsim::link_stats wan_primary;
    netsim::link_stats wan_backup;
    control::planner_stats planner;
    control::health_stats health;
    netsim::fault_stats faults;

    /// Aggregated across the five per-experiment engines.
    std::uint64_t reconfigs_committed{0};
    std::uint64_t loss_triggers{0};
    std::uint64_t health_triggers{0};
    std::uint64_t restores{0};

    std::uint64_t streams_seen{0};
    std::uint64_t streams_retired{0};
    std::uint64_t streams_live_at_end{0};
    std::uint64_t signals_pruned{0};

    std::uint64_t churn_requests{0};
    std::uint64_t churn_released{0};

    bool rerouted_all_trunks{false};
    bool recovered_after_reroute{false};
    sim_duration time_to_recover{sim_duration::zero()};

    telemetry::table report{"soak drill"};
    std::string csv;
    std::string metrics_csv;
};

/// Summarizes an already-run testbed (drivers separate build/run/report).
soak_result summarize_soak(soak_testbed& tb);

/// Builds, runs to completion, and summarizes one soak.
soak_result run_soak_drill(const soak_config& cfg);

} // namespace mmtp::scenario
