// campaign.hpp — the randomized, invariant-checked campaign runner.
//
// A scenario file says what one run looks like; the campaign says what
// must be TRUE of every run. Each scenario is re-executed across the
// axis matrix — burst {1, wide} × policy {closed_loop, static} ×
// tracing {on, off} × persistence {on, off}, with axes a topology does
// not support collapsed — and every cell must uphold the protocol
// invariants the repo's tests prove one by one:
//
//   wholeness       delivered == expected, zero give-ups, zero
//                   outstanding gaps (unless the file declares lossy)
//   no duplicates   ever, lossy or not
//   reconciliation  per link: tx_packets + dropped_random == dequeued
//                   (the serializer accounts for every packet it pulls)
//   determinism     a same-seed rerun produces byte-identical report
//                   and metrics-registry CSV
//
// generate(seed) deterministically produces a random scenario_spec
// (own splitmix64 PRNG — no std distribution, so the sequence is
// identical across platforms), which makes
// `campaign_runner --random N --seed S` a reproducible fuzz campaign.
#pragma once

#include "scenario/dsl.hpp"

#include <cstdint>
#include <string>
#include <vector>

namespace mmtp::scenario::campaign {

/// One point of the axis matrix.
struct axes {
    std::uint32_t burst{1};
    bool closed_loop{true};
    bool trace{true};
    bool persist{true};
    /// Simulation shards (swept {1, 2} on the partitioned topologies —
    /// chaos and soak — collapsed to the spec's value elsewhere).
    std::uint32_t shards{1};

    std::string label() const;
};

struct cell_result {
    axes ax;
    bool passed{false};
    /// Human-readable invariant violations (empty when passed).
    std::vector<std::string> failures;
    dsl_driver::acceptance accepted;
};

struct outcome {
    std::string name;
    std::string topology;
    bool passed{false};
    std::vector<cell_result> cells;
};

struct options {
    /// Sweep the full axis matrix. When false the scenario runs one
    /// cell exactly as written (the fuzz campaign's mode — generated
    /// specs randomize the axes inside the spec itself).
    bool matrix{true};
    /// The wide value of the burst axis.
    std::uint32_t wide_burst{32};
};

/// The axis matrix for a spec: unsupported axes are collapsed to the
/// spec's own value (e.g. only chaos topologies sweep persistence, and
/// only while the kill-and-revive phase is off — a revive without an
/// archive has nothing to reload).
std::vector<axes> matrix_for(const scenario_spec& spec, const options& opt);

/// Applies one matrix point to a copy of the spec.
scenario_spec apply_axes(const scenario_spec& spec, const axes& ax);

/// Runs one cell (two same-seed executions for the determinism check)
/// and evaluates every invariant.
cell_result run_cell(const scenario_spec& spec, const axes& ax);

/// Runs a scenario across its whole matrix.
outcome run_scenario(const scenario_spec& spec, const options& opt = {});

/// Deterministically generates a random scenario: same seed, same spec,
/// on every platform. The result always parses back through
/// parse_scenario(render_scenario(spec)).
scenario_spec generate(std::uint64_t seed);

} // namespace mmtp::scenario::campaign
