#include "scenario/registry.hpp"

#include <algorithm>
#include <array>
#include <functional>

namespace mmtp::scenario::registry {

namespace {

struct entry {
    const char* name;
    std::unique_ptr<driver> (*make)(const scenario_spec&);
};

// Alphabetical, so names() needs no sort.
constexpr std::array<entry, 6> table{{
    {"chaos",
     [](const scenario_spec& s) -> std::unique_ptr<driver> {
         return std::make_unique<chaos_driver>(s.chaos);
     }},
    {"overload",
     [](const scenario_spec& s) -> std::unique_ptr<driver> {
         return std::make_unique<overload_driver>(s.overload);
     }},
    {"pilot",
     [](const scenario_spec& s) -> std::unique_ptr<driver> {
         return std::make_unique<pilot_driver>(s.pilot);
     }},
    {"shapeshift",
     [](const scenario_spec& s) -> std::unique_ptr<driver> {
         return std::make_unique<shapeshift_driver>(s.shapeshift);
     }},
    {"soak",
     [](const scenario_spec& s) -> std::unique_ptr<driver> {
         return std::make_unique<soak_driver>(s.soak);
     }},
    {"today",
     [](const scenario_spec& s) -> std::unique_ptr<driver> {
         return std::make_unique<today_driver>(s.today);
     }},
}};

} // namespace

bool known(const std::string& topology)
{
    return std::any_of(table.begin(), table.end(),
                       [&](const entry& e) { return topology == e.name; });
}

std::vector<std::string> names()
{
    std::vector<std::string> out;
    out.reserve(table.size());
    for (const auto& e : table) out.emplace_back(e.name);
    return out;
}

std::unique_ptr<driver> make(const scenario_spec& spec)
{
    for (const auto& e : table)
        if (spec.topology == e.name) return e.make(spec);
    return nullptr;
}

} // namespace mmtp::scenario::registry
