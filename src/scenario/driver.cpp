#include "scenario/driver.hpp"

#include "daq/message.hpp"
#include "daq/trigger.hpp"

#include <cstdio>

namespace mmtp::scenario {

int run_example(driver& d, driver* rerun)
{
    std::printf("%s\n", d.describe().c_str());
    d.run();

    telemetry::metrics_registry reg;
    auto t = d.report(reg);
    t.print();
    const auto snapshot = reg.to_csv();
    std::printf("\nmetrics snapshot:\n%s", snapshot.c_str());

    if (rerun != nullptr) {
        rerun->run();
        telemetry::metrics_registry reg2;
        const auto t2 = rerun->report(reg2);
        const bool identical = t.csv() == t2.csv() && snapshot == reg2.to_csv();
        std::printf("\nsame-seed rerun telemetry identical: %s\n",
                    identical ? "yes" : "NO — determinism broken");
        if (!identical) return 1;
    }
    return 0;
}

// --- pilot ---------------------------------------------------------------

pilot_driver::pilot_driver() : pilot_driver(options{}) {}
pilot_driver::pilot_driver(options opt) : opt_(std::move(opt)) {}

std::string pilot_driver::describe() const
{
    // Integer-only formatting: std::to_string(double) renders through
    // sprintf("%f"), whose decimal point is locale-dependent — the
    // determinism audit pins every banner to pure integer math.
    const auto loss_bp =
        static_cast<std::uint64_t>(opt_.pilot.wan_loss * 10000.0 + 0.5);
    return "pilot study (Fig. 4): " + std::to_string(opt_.records)
        + " ICEBERG trigger records, " + std::to_string(loss_bp / 100) + "."
        + std::to_string(loss_bp % 100 / 10) + std::to_string(loss_bp % 10)
        + "% WAN loss, " + std::to_string(opt_.pilot.wan_delay.ns / 1000000)
        + " ms WAN delay";
}

run_context pilot_driver::build()
{
    tb_ = make_pilot(opt_.pilot);
    daq::iceberg_stream::config icfg;
    icfg.record_limit = opt_.records;
    icfg.frames_per_record = opt_.frames_per_record;
    daq::iceberg_stream source(tb_->net.fork_rng(), icfg);
    records_driven_ = tb_->sensor_tx->drive(source);
    return run_context(tb_->net);
}

telemetry::table pilot_driver::report(telemetry::metrics_registry& reg)
{
    telemetry::register_engine_metrics(reg, tb_->net.coordinator());
    telemetry::register_stack_metrics(reg, "sensor", *tb_->sensor_stack);
    telemetry::register_stack_metrics(reg, "dtn1", *tb_->dtn1_stack);
    telemetry::register_stack_metrics(reg, "dtn2", *tb_->dtn2_stack);
    telemetry::register_sender_metrics(reg, "sensor", *tb_->sensor_tx);
    telemetry::register_receiver_metrics(reg, "dtn2", *tb_->dtn2_rx);
    telemetry::register_buffer_metrics(reg, "dtn1", *tb_->dtn1_svc);
    telemetry::register_element_metrics(reg, "tofino2", *tb_->tofino2);
    telemetry::register_element_metrics(reg, "alveo", *tb_->alveo_rx);

    telemetry::table t("pilot study");
    t.set_columns({"metric", "value"});
    auto row = [&](const char* name, std::uint64_t v) {
        t.add_row({name, telemetry::fmt_count(v)});
    };
    row("records_driven", records_driven_);
    row("dtn1_relayed", tb_->dtn1_svc->stats().relayed);
    row("mode_transitions", tb_->tofino2->state().counter("mode_transitions"));
    row("nak_requests_served", tb_->dtn1_svc->stats().nak_requests);
    row("retransmitted", tb_->dtn1_svc->stats().retransmitted);
    row("delivered", tb_->dtn2_rx->stats().datagrams);
    row("recovered", tb_->dtn2_rx->stats().recovered);
    row("duplicates", tb_->dtn2_rx->stats().duplicates);
    row("given_up", tb_->dtn2_rx->stats().given_up);
    row("aged_on_arrival", tb_->dtn2_rx->stats().aged_on_arrival);
    row("deadline_notifications", tb_->deadline_notifications);
    return t;
}

// --- today ---------------------------------------------------------------

today_driver::today_driver() : today_driver(options{}) {}
today_driver::today_driver(options opt) : opt_(std::move(opt)) {}

std::string today_driver::describe() const
{
    return "status-quo pipeline (Fig. 2): " + std::to_string(opt_.messages)
        + " UDP messages of " + std::to_string(opt_.message_bytes)
        + " B into the relay chain";
}

run_context today_driver::build()
{
    tb_ = make_today(opt_.today);
    daq::steady_source source(wire::make_experiment_id(wire::experiments::dune, 0),
                              opt_.message_bytes, opt_.message_interval,
                              sim_time::zero(), opt_.messages);
    bytes_scheduled_ = tb_->drive_sensor(source);
    return run_context(tb_->net);
}

telemetry::table today_driver::report(telemetry::metrics_registry& reg)
{
    telemetry::register_engine_metrics(reg, tb_->net.coordinator());

    telemetry::table t("status-quo pipeline");
    t.set_columns({"metric", "value"});
    t.add_row({"bytes_scheduled", telemetry::fmt_count(bytes_scheduled_)});
    t.add_row({"dtn1_received_bytes", telemetry::fmt_count(tb_->dtn1_received_bytes)});
    t.add_row(
        {"dtn1_received_datagrams", telemetry::fmt_count(tb_->dtn1_received_datagrams)});
    return t;
}

// --- chaos ---------------------------------------------------------------

std::string chaos_driver::describe() const
{
    return "chaos drill: " + std::to_string(cfg_.messages) + " messages of "
        + std::to_string(cfg_.message_bytes) + " B, WAN + buffer fault at "
        + std::to_string(cfg_.fault_at.ns / 1000000) + " ms";
}

run_context chaos_driver::build()
{
    tb_ = make_chaos(cfg_);
    return run_context(tb_->net);
}

const chaos_result& chaos_driver::result()
{
    if (!result_) result_ = summarize_chaos(*tb_);
    return *result_;
}

telemetry::table chaos_driver::report(telemetry::metrics_registry& reg)
{
    telemetry::register_engine_metrics(reg, tb_->net.coordinator());
    telemetry::register_link_metrics(reg, "wan-primary", *tb_->wan_primary);
    telemetry::register_link_metrics(reg, "wan-backup", *tb_->wan_backup);
    telemetry::register_link_metrics(reg, "buf1-feed", *tb_->buf1_feed);
    telemetry::register_planner_metrics(reg, tb_->planner,
                                        {"daq", "wan-primary", "wan-backup"});
    telemetry::register_health_metrics(reg, *tb_->health);
    telemetry::register_stack_metrics(reg, "rx", *tb_->rx_stack);
    telemetry::register_sender_metrics(reg, "src", *tb_->tx);
    telemetry::register_receiver_metrics(reg, "rx", *tb_->rx);
    telemetry::register_buffer_metrics(reg, "buf1", *tb_->buf1_svc);
    telemetry::register_buffer_metrics(reg, "buf2", *tb_->buf2_svc);
    return result().report;
}

// --- overload ------------------------------------------------------------

std::string overload_driver::describe() const
{
    // Offered Gbps in tenths, integer-only (bits per ns == Gbps).
    const std::uint64_t offered_dgbps = cfg_.message_interval.ns > 0
        ? (80ull * cfg_.message_bytes)
            / static_cast<std::uint64_t>(cfg_.message_interval.ns)
        : 0;
    return "overload drill: " + std::to_string(cfg_.messages) + " messages at "
        + std::to_string(offered_dgbps / 10) + "."
        + std::to_string(offered_dgbps % 10) + " Gbps offered over a "
        + std::to_string(cfg_.wan_rate.bits_per_sec / 1000000000) + " Gbps WAN";
}

run_context overload_driver::build()
{
    tb_ = make_overload(cfg_);
    return run_context(tb_->net);
}

const overload_result& overload_driver::result()
{
    if (!result_) result_ = summarize_overload(*tb_);
    return *result_;
}

telemetry::table overload_driver::report(telemetry::metrics_registry& reg)
{
    telemetry::register_engine_metrics(reg, tb_->net.coordinator());
    telemetry::register_link_metrics(reg, "wan", *tb_->wan);
    telemetry::register_priority_queue_metrics(reg, "wan", *tb_->wan_queue);
    telemetry::register_planner_metrics(reg, tb_->planner,
                                        {"daq", "wan", "dtn-storage"});
    telemetry::register_element_metrics(reg, "tofino", *tb_->tofino);
    telemetry::register_stack_metrics(reg, "src", *tb_->src_stack);
    telemetry::register_stack_metrics(reg, "rx", *tb_->rx_stack);
    telemetry::register_sender_metrics(reg, "src", *tb_->tx);
    telemetry::register_receiver_metrics(reg, "rx", *tb_->rx);
    telemetry::register_buffer_metrics(reg, "buf", *tb_->buf_svc);
    return result().report;
}

// --- soak ----------------------------------------------------------------

std::string soak_driver::describe() const
{
    const std::uint64_t total = static_cast<std::uint64_t>(soak_experiments)
        * cfg_.slices_per_experiment * cfg_.messages_per_stream;
    return "facility soak: 5 experiments x "
        + std::to_string(cfg_.slices_per_experiment) + " slices x "
        + std::to_string(cfg_.messages_per_stream) + " messages ("
        + std::to_string(total) + " total) under a fault-and-overload storm";
}

run_context soak_driver::build()
{
    tb_ = make_soak(cfg_);
    return run_context(tb_->net);
}

const soak_result& soak_driver::result()
{
    if (!result_) result_ = summarize_soak(*tb_);
    return *result_;
}

telemetry::table soak_driver::report(telemetry::metrics_registry& reg)
{
    telemetry::register_engine_metrics(reg, tb_->net.coordinator());
    telemetry::register_link_metrics(reg, "wan-primary", *tb_->wan_primary);
    telemetry::register_link_metrics(reg, "wan-backup", *tb_->wan_backup);
    telemetry::register_link_metrics(reg, "dtn2-feed", *tb_->dtn2_feed);
    telemetry::register_planner_metrics(reg, tb_->planner,
                                        {"daq", "wan-primary", "wan-backup"});
    telemetry::register_health_metrics(reg, *tb_->health);
    telemetry::register_element_metrics(reg, "tofino", *tb_->tofino);
    telemetry::register_stack_metrics(reg, "dtn1", *tb_->dtn1_stack);
    telemetry::register_stack_metrics(reg, "rx", *tb_->rx_stack);
    telemetry::register_receiver_metrics(reg, "rx", *tb_->rx);
    telemetry::register_buffer_metrics(reg, "dtn1", *tb_->dtn1_svc);
    telemetry::register_buffer_metrics(reg, "dtn2", *tb_->dtn2_svc);
    static const char* const engine_names[soak_experiments] = {"cms", "dune",
                                                               "ecce", "mu2e",
                                                               "rubin"};
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        telemetry::register_policy_engine_metrics(reg, engine_names[i],
                                                  *tb_->engines[i]);
        telemetry::register_sender_metrics(reg, engine_names[i],
                                           *tb_->senders[i]);
    }
    return result().report;
}

// --- shapeshift ----------------------------------------------------------

std::string shapeshift_driver::describe() const
{
    return "shapeshift drill: " + std::to_string(cfg_.messages) + " messages of "
        + std::to_string(cfg_.message_bytes) + " B, WAN corruption burst at "
        + std::to_string(cfg_.burst_at.ns / 1000000) + " ms answered by a runtime "
        + "mode shift";
}

run_context shapeshift_driver::build()
{
    tb_ = make_shapeshift(cfg_);
    return run_context(tb_->net);
}

const shapeshift_result& shapeshift_driver::result()
{
    if (!result_) result_ = summarize_shapeshift(*tb_);
    return *result_;
}

telemetry::table shapeshift_driver::report(telemetry::metrics_registry& reg)
{
    telemetry::register_engine_metrics(reg, tb_->net.coordinator());
    telemetry::register_link_metrics(reg, "wan", *tb_->wan);
    telemetry::register_policy_engine_metrics(reg, *tb_->policy_ctl);
    telemetry::register_element_metrics(reg, "tofino", *tb_->tofino);
    telemetry::register_stack_metrics(reg, "sensor", *tb_->sensor_stack);
    telemetry::register_stack_metrics(reg, "rx", *tb_->rx_stack);
    telemetry::register_sender_metrics(reg, "sensor", *tb_->tx);
    telemetry::register_receiver_metrics(reg, "rx", *tb_->rx);
    telemetry::register_buffer_metrics(reg, "dtn1", *tb_->dtn1_svc);
    return result().report;
}

} // namespace mmtp::scenario
