// registry.hpp — the one name → driver-factory table.
//
// Before the registry every example hard-coded which concrete driver it
// constructed; anything that wanted to run "a scenario by name" (the
// DSL, the campaign runner, a future CLI) would have re-grown its own
// dispatch switch. The registry names the six topology presets once:
// give it a scenario_spec and it builds the matching concrete driver,
// configured from the spec's config for that topology.
#pragma once

#include "scenario/dsl.hpp"

#include <memory>
#include <string>
#include <vector>

namespace mmtp::scenario::registry {

/// True when `topology` names a registered driver factory.
bool known(const std::string& topology);

/// The registered topology names, sorted.
std::vector<std::string> names();

/// Builds the concrete driver for spec.topology, configured from the
/// spec. Returns nullptr for an unknown topology (callers that parsed
/// the spec through the DSL never see that — the parser fails closed).
std::unique_ptr<driver> make(const scenario_spec& spec);

} // namespace mmtp::scenario::registry
