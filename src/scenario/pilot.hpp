// pilot.hpp — the pilot-study testbed (Fig. 4), assembled end to end.
//
// Topology (addresses/link rates configurable):
//
//   sensor ──L2──► DAQ switch ──L2──► DTN 1 (Alveo U280-class, buffer)
//                                       │ 100 GbE
//                                  Tofino2 switch   ← mode 0 → mode 1 here
//                                       │ "WAN" link (delay, loss)
//                                  Alveo U55C-class element  ← age check
//                                       │
//                                     DTN 2 (receiver, mode-2 checks)
//
// Three modes, as in §5.4: (1) unreliable sensor→DTN1; (2) age-sensitive,
// recoverable-loss DTN1→DTN2; (3) timeliness check at the destination.
// Mode changes happen entirely in network elements.
#pragma once

#include "control/policy.hpp"
#include "control/policy_engine.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"

#include <memory>

namespace mmtp::scenario {

struct pilot_config {
    std::uint64_t seed{42};
    /// Sensor→DTN1 (DAQ network) link rate.
    data_rate daq_rate{data_rate::from_gbps(100)};
    /// DTN1→DTN2 path rate (the pilot saturates 100 GbE).
    data_rate wan_rate{data_rate::from_gbps(100)};
    /// One-way WAN propagation delay (pilot: lab-local; benches sweep).
    sim_duration wan_delay{sim_duration{1000000}}; // 1 ms
    /// Per-packet drop probability on the WAN link (recoverable loss).
    double wan_loss{0.0};
    /// Age budget carried in mode 1; 0 = derive from the path (policy).
    std::uint32_t deadline_us{0};
    /// Deadline-aware priority queueing on the WAN egress.
    bool priority_queues{true};
    /// Elements emit deadline-exceeded notifications to DTN1.
    bool notifications{true};
    /// DTN1 assigns sequence numbers itself instead of the Tofino2
    /// (ablation; the pilot default is in-network assignment).
    bool sequence_at_dtn{false};
    /// Queue capacity on the WAN egress.
    std::uint64_t wan_queue_bytes{8ull * 1024 * 1024};
    /// Packets per burst on every span (1 = classic per-packet path;
    /// clamped to netsim::max_burst). Telemetry is byte-identical at any
    /// setting — the campaign runner sweeps this axis.
    std::uint32_t link_burst{1};
    /// Simulation shards (all nodes stay in domain 0 — the topology is
    /// too tightly coupled to cut — so extra shards idle; 1 = classic).
    std::uint32_t shards{1};
};

struct pilot_testbed {
    netsim::network net;
    pilot_config cfg;

    netsim::host* sensor{nullptr};
    netsim::host* dtn1{nullptr};
    netsim::host* dtn2{nullptr};

    pnet::programmable_switch* daq_switch{nullptr};
    pnet::programmable_switch* tofino2{nullptr};
    pnet::programmable_switch* alveo_rx{nullptr};

    std::unique_ptr<core::stack> sensor_stack;
    std::unique_ptr<core::sender> sensor_tx;
    std::unique_ptr<core::stack> dtn1_stack;
    std::unique_ptr<core::buffer_service> dtn1_svc;
    std::unique_ptr<core::stack> dtn2_stack;
    std::unique_ptr<core::receiver> dtn2_rx;

    std::shared_ptr<pnet::mode_transition_stage> mode_stage;
    /// Extra mode table evaluated just before duplication — rules here
    /// can activate the duplication bit for selected experiments.
    std::shared_ptr<pnet::mode_transition_stage> dup_mode_stage;
    /// Campus-boundary mode table on the Alveo in front of DTN2.
    std::shared_ptr<pnet::mode_transition_stage> campus_stage;
    std::shared_ptr<pnet::age_update_stage> tofino_age;
    std::shared_ptr<pnet::age_update_stage> alveo_age;
    std::shared_ptr<pnet::duplication_stage> duplication;

    /// The control plane: a policy engine running the static preset —
    /// the pilot is one preset of the runtime mode-shifting machinery,
    /// not a separate code path.
    std::unique_ptr<control::policy_engine> policy_ctl;
    /// The plan the engine compiled and installed (policy_ctl->current()).
    control::compiled_policy policy;

    /// Deadline notifications received back at DTN1.
    std::uint64_t deadline_notifications{0};
};

/// Builds and wires the whole pilot. The returned testbed owns
/// everything; run experiments by driving `sensor_tx` and the engine.
std::unique_ptr<pilot_testbed> make_pilot(const pilot_config& cfg);

} // namespace mmtp::scenario
