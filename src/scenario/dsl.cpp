#include "scenario/dsl.hpp"

#include "netsim/link.hpp"
#include "scenario/registry.hpp"

#include <fstream>
#include <functional>
#include <limits>
#include <set>
#include <sstream>
#include <stdexcept>
#include <utility>
#include <vector>

namespace mmtp::scenario {

namespace {

// --- lexical helpers (locale-independent by construction: every number
// is parsed and rendered with integer math — no strtod, no sprintf) ---

bool is_space(char c)
{
    return c == ' ' || c == '\t' || c == '\v' || c == '\f';
}

std::string trim(const std::string& s)
{
    std::size_t b = 0;
    std::size_t e = s.size();
    while (b < e && is_space(s[b])) ++b;
    while (e > b && is_space(s[e - 1])) --e;
    return s.substr(b, e - b);
}

/// Pure-decimal unsigned parse with overflow detection.
bool parse_count(const std::string& v, std::uint64_t& out)
{
    if (v.empty()) return false;
    std::uint64_t n = 0;
    for (char c : v) {
        if (c < '0' || c > '9') return false;
        const std::uint64_t d = static_cast<std::uint64_t>(c - '0');
        if (n > (std::numeric_limits<std::uint64_t>::max() - d) / 10) return false;
        n = n * 10 + d;
    }
    out = n;
    return true;
}

/// Splits "123abc" into digits and a lower-case alpha suffix; rejects
/// anything else (signs, interior spaces, mixed order).
bool split_suffix(const std::string& v, std::string& num, std::string& suffix)
{
    num.clear();
    suffix.clear();
    std::size_t i = 0;
    while (i < v.size() && v[i] >= '0' && v[i] <= '9') num.push_back(v[i++]);
    while (i < v.size()) {
        const char c = v[i++];
        if (c < 'a' || c > 'z') return false;
        suffix.push_back(c);
    }
    return !num.empty();
}

bool parse_scaled(const std::string& v,
                  std::initializer_list<std::pair<const char*, std::uint64_t>> units,
                  std::uint64_t limit, std::uint64_t& out, std::string& err,
                  const char* what)
{
    std::string num, suffix;
    if (!split_suffix(v, num, suffix) || suffix.empty()) {
        err = std::string("expected a ") + what + " (e.g. " + units.begin()->first
            + "), got '" + v + "'";
        return false;
    }
    std::uint64_t scale = 0;
    for (const auto& [name, s] : units)
        if (suffix == name) scale = s;
    if (scale == 0) {
        err = "unknown " + std::string(what) + " unit '" + suffix + "'";
        return false;
    }
    std::uint64_t n = 0;
    if (!parse_count(num, n) || (scale != 0 && n > limit / scale)) {
        err = std::string(what) + " out of range: '" + v + "'";
        return false;
    }
    out = n * scale;
    return true;
}

bool parse_duration_ns(const std::string& v, std::uint64_t& out, std::string& err)
{
    // Longest-match order not needed: suffixes are matched exactly.
    return parse_scaled(v,
                        {{"ns", 1ull},
                         {"us", 1000ull},
                         {"ms", 1000000ull},
                         {"s", 1000000000ull}},
                        std::uint64_t(std::numeric_limits<std::int64_t>::max()), out,
                        err, "duration");
}

bool parse_rate_bps(const std::string& v, std::uint64_t& out, std::string& err)
{
    return parse_scaled(v,
                        {{"bps", 1ull},
                         {"kbps", 1000ull},
                         {"mbps", 1000000ull},
                         {"gbps", 1000000000ull}},
                        std::numeric_limits<std::uint64_t>::max(), out, err, "rate");
}

bool parse_size_bytes(const std::string& v, std::uint64_t& out, std::string& err)
{
    return parse_scaled(v,
                        {{"b", 1ull},
                         {"kib", 1024ull},
                         {"mib", 1024ull * 1024},
                         {"gib", 1024ull * 1024 * 1024}},
                        std::numeric_limits<std::uint64_t>::max(), out, err, "size");
}

bool parse_bool(const std::string& v, bool& out)
{
    if (v == "true" || v == "on" || v == "yes" || v == "1") return out = true, true;
    if (v == "false" || v == "off" || v == "no" || v == "0")
        return (out = false), true;
    return false;
}

/// Fractions are plain decimals in [0, 1] ("0.02", "0.000002", "1").
/// Parsed digit by digit so the result is locale-independent.
bool parse_fraction(const std::string& v, double& out)
{
    std::size_t i = 0;
    std::uint64_t int_part = 0;
    bool any = false;
    while (i < v.size() && v[i] >= '0' && v[i] <= '9') {
        int_part = int_part * 10 + std::uint64_t(v[i++] - '0');
        if (int_part > 1) return false; // > 1 before the point
        any = true;
    }
    double frac = 0.0;
    if (i < v.size() && v[i] == '.') {
        ++i;
        double scale = 0.1;
        while (i < v.size() && v[i] >= '0' && v[i] <= '9') {
            frac += double(v[i++] - '0') * scale;
            scale *= 0.1;
            any = true;
        }
    }
    if (!any || i != v.size()) return false;
    out = double(int_part) + frac;
    return out >= 0.0 && out <= 1.0;
}

/// Renders a fraction as a plain decimal (12 digits, trailing zeros
/// trimmed) using integer math only.
std::string fmt_fraction(double v)
{
    const std::uint64_t scaled =
        static_cast<std::uint64_t>(v * 1e12 + 0.5); // v in [0,1] => fits
    std::string digits = std::to_string(scaled % 1000000000000ull);
    digits.insert(0, 12 - digits.size(), '0');
    while (digits.size() > 1 && digits.back() == '0') digits.pop_back();
    std::string out = std::to_string(scaled / 1000000000000ull);
    if (digits != "0") out += "." + digits;
    return out;
}

// --- the binding table: section/key -> typed setter + getter ------------
//
// One table describes a topology's whole keyspace; parse_scenario uses
// the setters, render_scenario the getters, so the two can never drift.

struct binding_table {
    using setter = std::function<std::string(const std::string&)>; // "" = ok
    using getter = std::function<std::string()>;
    struct entry {
        std::string key;
        setter set;
        getter get;
    };
    struct section_t {
        std::string name;
        std::vector<entry> entries;
    };
    std::vector<section_t> sections;

    void add(const char* sec, const char* key, setter s, getter g)
    {
        for (auto& sct : sections)
            if (sct.name == sec) {
                sct.entries.push_back({key, std::move(s), std::move(g)});
                return;
            }
        sections.push_back({sec, {{key, std::move(s), std::move(g)}}});
    }

    bool has_section(const std::string& sec) const
    {
        for (const auto& sct : sections)
            if (sct.name == sec) return true;
        return false;
    }

    const entry* find(const std::string& sec, const std::string& key) const
    {
        for (const auto& sct : sections)
            if (sct.name == sec)
                for (const auto& e : sct.entries)
                    if (e.key == key) return &e;
        return nullptr;
    }
};

template <class T>
void bind_count(binding_table& t, const char* sec, const char* key, T* f,
                std::uint64_t minv = 0,
                std::uint64_t maxv = std::numeric_limits<T>::max())
{
    t.add(
        sec, key,
        [f, minv, maxv](const std::string& v) -> std::string {
            std::uint64_t n = 0;
            if (!parse_count(v, n))
                return "expected a non-negative integer, got '" + v + "'";
            if (n < minv || n > maxv)
                return "value out of range [" + std::to_string(minv) + ", "
                    + std::to_string(maxv) + "]: " + v;
            *f = static_cast<T>(n);
            return {};
        },
        [f] { return std::to_string(static_cast<std::uint64_t>(*f)); });
}

void bind_bool(binding_table& t, const char* sec, const char* key, bool* f)
{
    t.add(
        sec, key,
        [f](const std::string& v) -> std::string {
            if (!parse_bool(v, *f)) return "expected a boolean, got '" + v + "'";
            return {};
        },
        [f] { return std::string(*f ? "true" : "false"); });
}

void bind_fraction(binding_table& t, const char* sec, const char* key, double* f)
{
    t.add(
        sec, key,
        [f](const std::string& v) -> std::string {
            if (!parse_fraction(v, *f))
                return "expected a fraction in [0, 1], got '" + v + "'";
            return {};
        },
        [f] { return fmt_fraction(*f); });
}

void bind_duration(binding_table& t, const char* sec, const char* key,
                   sim_duration* f, std::uint64_t min_ns = 0)
{
    t.add(
        sec, key,
        [f, min_ns](const std::string& v) -> std::string {
            std::uint64_t ns = 0;
            std::string err;
            if (!parse_duration_ns(v, ns, err)) return err;
            if (ns < min_ns)
                return "duration must be at least " + std::to_string(min_ns) + "ns";
            f->ns = static_cast<std::int64_t>(ns);
            return {};
        },
        [f] { return std::to_string(f->ns) + "ns"; });
}

void bind_time(binding_table& t, const char* sec, const char* key, sim_time* f)
{
    t.add(
        sec, key,
        [f](const std::string& v) -> std::string {
            std::uint64_t ns = 0;
            std::string err;
            if (!parse_duration_ns(v, ns, err)) return err;
            f->ns = static_cast<std::int64_t>(ns);
            return {};
        },
        [f] { return std::to_string(f->ns) + "ns"; });
}

void bind_rate(binding_table& t, const char* sec, const char* key, data_rate* f)
{
    t.add(
        sec, key,
        [f](const std::string& v) -> std::string {
            std::uint64_t bps = 0;
            std::string err;
            if (!parse_rate_bps(v, bps, err)) return err;
            if (bps == 0) return "rate must be positive";
            f->bits_per_sec = bps;
            return {};
        },
        [f] { return std::to_string(f->bits_per_sec) + "bps"; });
}

void bind_size(binding_table& t, const char* sec, const char* key, std::uint64_t* f,
               std::uint64_t minv = 0)
{
    t.add(
        sec, key,
        [f, minv](const std::string& v) -> std::string {
            std::uint64_t b = 0;
            std::string err;
            if (!parse_size_bytes(v, b, err)) return err;
            if (b < minv) return "size must be at least " + std::to_string(minv) + "b";
            *f = b;
            return {};
        },
        [f] { return std::to_string(*f) + "b"; });
}

void bind_preset(binding_table& t, const char* sec, const char* key,
                 control::mode_preset* f)
{
    t.add(
        sec, key,
        [f](const std::string& v) -> std::string {
            if (v == "static") {
                *f = control::mode_preset::static_preset;
                return {};
            }
            if (v == "closed_loop") {
                *f = control::mode_preset::closed_loop;
                return {};
            }
            return "expected 'static' or 'closed_loop', got '" + v + "'";
        },
        [f] {
            return std::string(*f == control::mode_preset::static_preset
                                   ? "static"
                                   : "closed_loop");
        });
}

/// Soak [experiments] value: "off" | "on" | "<count>" | "<count> @ <gap>".
void bind_experiment(binding_table& t, const char* key, std::size_t idx,
                     soak_config* cfg)
{
    t.add(
        "experiments", key,
        [idx, cfg](const std::string& v) -> std::string {
            const std::uint32_t bit = 1u << idx;
            if (v == "off") {
                cfg->experiment_mask &= ~bit;
                cfg->experiment_messages[idx] = 0;
                cfg->experiment_interval[idx] = sim_duration::zero();
                return {};
            }
            cfg->experiment_mask |= bit;
            if (v == "on") {
                cfg->experiment_messages[idx] = 0;
                cfg->experiment_interval[idx] = sim_duration::zero();
                return {};
            }
            std::string count_part = v;
            std::string gap_part;
            if (const auto at = v.find('@'); at != std::string::npos) {
                count_part = trim(v.substr(0, at));
                gap_part = trim(v.substr(at + 1));
            }
            std::uint64_t n = 0;
            if (!parse_count(count_part, n) || n == 0)
                return "expected 'off', 'on' or a message count (optionally "
                       "'<count> @ <gap>'), got '"
                    + v + "'";
            cfg->experiment_messages[idx] = n;
            cfg->experiment_interval[idx] = sim_duration::zero();
            if (!gap_part.empty()) {
                std::uint64_t ns = 0;
                std::string err;
                if (!parse_duration_ns(gap_part, ns, err)) return err;
                if (ns == 0) return "per-experiment gap must be positive";
                cfg->experiment_interval[idx].ns = static_cast<std::int64_t>(ns);
            }
            return {};
        },
        [idx, cfg]() -> std::string {
            if ((cfg->experiment_mask >> idx & 1u) == 0) return "off";
            if (cfg->experiment_messages[idx] == 0) return "on";
            std::string out = std::to_string(cfg->experiment_messages[idx]);
            if (cfg->experiment_interval[idx].ns != 0)
                out += " @ " + std::to_string(cfg->experiment_interval[idx].ns) + "ns";
            return out;
        });
}

/// Builds the keyspace of spec's topology. The table holds raw pointers
/// into `spec`, so it must not outlive it.
binding_table build_bindings(scenario_spec& spec)
{
    binding_table t;
    if (spec.topology == "pilot") {
        auto& o = spec.pilot;
        bind_count(t, "traffic", "records", &o.records, 1);
        bind_count(t, "traffic", "frames_per_record", &o.frames_per_record, 1);
        bind_rate(t, "links", "daq_rate", &o.pilot.daq_rate);
        bind_rate(t, "links", "wan_rate", &o.pilot.wan_rate);
        bind_duration(t, "links", "wan_delay", &o.pilot.wan_delay);
        bind_fraction(t, "links", "wan_loss", &o.pilot.wan_loss);
        bind_size(t, "links", "wan_queue", &o.pilot.wan_queue_bytes, 1);
        bind_count(t, "policy", "deadline_us", &o.pilot.deadline_us);
        bind_bool(t, "policy", "priority_queues", &o.pilot.priority_queues);
        bind_bool(t, "policy", "notifications", &o.pilot.notifications);
        bind_bool(t, "policy", "sequence_at_dtn", &o.pilot.sequence_at_dtn);
    } else if (spec.topology == "today") {
        auto& o = spec.today;
        bind_count(t, "traffic", "messages", &o.messages, 1);
        bind_count(t, "traffic", "message_bytes", &o.message_bytes, 1);
        bind_duration(t, "traffic", "message_interval", &o.message_interval, 1);
        bind_rate(t, "links", "daq_rate", &o.today.daq_rate);
        bind_rate(t, "links", "wan_rate", &o.today.wan_rate);
        bind_duration(t, "links", "wan_delay", &o.today.wan_delay);
        bind_fraction(t, "links", "wan_loss", &o.today.wan_loss);
        bind_rate(t, "links", "campus_rate", &o.today.campus_rate);
        bind_duration(t, "links", "campus_delay", &o.today.campus_delay);
        bind_size(t, "links", "wan_queue", &o.today.wan_queue_bytes, 1);
        bind_bool(t, "policy", "tuned", &o.today.tuned);
        bind_rate(t, "policy", "tcp_host_limit", &o.today.tcp_host_limit);
    } else if (spec.topology == "chaos") {
        auto& c = spec.chaos;
        bind_count(t, "traffic", "messages", &c.messages, 1);
        bind_count(t, "traffic", "message_bytes", &c.message_bytes, 1);
        bind_duration(t, "traffic", "message_interval", &c.message_interval, 1);
        bind_time(t, "traffic", "first_message", &c.first_message);
        bind_count(t, "traffic", "messages2", &c.messages2);
        bind_time(t, "traffic", "second_wave_at", &c.second_wave_at);
        bind_rate(t, "links", "wan_rate", &c.wan_rate);
        bind_duration(t, "links", "wan_delay", &c.wan_delay);
        bind_size(t, "links", "wan_queue", &c.wan_queue_bytes, 1);
        bind_time(t, "faults", "fault_at", &c.fault_at);
        bind_duration(t, "faults", "feed_cut_after", &c.feed_cut_after);
        bind_time(t, "faults", "fault2_at", &c.fault2_at);
        bind_time(t, "faults", "revive_at", &c.revive_at);
        bind_time(t, "faults", "burst_at", &c.burst_at);
        bind_duration(t, "faults", "burst_duration", &c.burst_duration);
        bind_fraction(t, "faults", "burst_ber", &c.burst_ber);
        bind_duration(t, "recovery", "nak_retry", &c.nak_retry, 1);
        bind_duration(t, "recovery", "nak_retry_cap", &c.nak_retry_cap, 1);
        bind_count(t, "recovery", "max_nak_attempts", &c.max_nak_attempts, 1);
        bind_count(t, "recovery", "failover_attempts", &c.failover_attempts, 1);
        bind_duration(t, "recovery", "probe_interval", &c.probe_interval, 1);
        bind_duration(t, "recovery", "probe_deadline", &c.probe_deadline, 1);
        bind_time(t, "recovery", "flush_at", &c.flush_at);
        bind_time(t, "recovery", "flush2_at", &c.flush2_at);
        bind_rate(t, "policy", "planned_rate", &c.planned_rate);
        bind_bool(t, "persistence", "persist", &c.persist);
        bind_count(t, "persistence", "chunk_records", &c.persist_chunk_records, 1);
        bind_bool(t, "trace", "enabled", &c.trace);
        bind_count(t, "trace", "capacity", &c.trace_capacity, 1);
        bind_bool(t, "trace", "record", &c.record);
    } else if (spec.topology == "overload") {
        auto& c = spec.overload;
        bind_count(t, "traffic", "messages", &c.messages, 1);
        bind_count(t, "traffic", "message_bytes", &c.message_bytes, 1);
        bind_duration(t, "traffic", "message_interval", &c.message_interval, 1);
        bind_time(t, "traffic", "first_message", &c.first_message);
        bind_rate(t, "links", "wan_rate", &c.wan_rate);
        bind_duration(t, "links", "wan_delay", &c.wan_delay);
        bind_size(t, "links", "band_bytes", &c.band_bytes, 1);
        bind_size(t, "overload", "bp_low", &c.bp_low_bytes, 1);
        bind_size(t, "overload", "bp_high", &c.bp_high_bytes, 1);
        bind_duration(t, "overload", "bp_min_interval", &c.bp_min_interval, 1);
        bind_count(t, "overload", "bp_level_bands", &c.bp_level_bands, 1);
        bind_rate(t, "overload", "pace", &c.pace);
        bind_fraction(t, "overload", "min_pace_fraction", &c.min_pace_fraction);
        bind_duration(t, "overload", "backpressure_hold", &c.backpressure_hold, 1);
        bind_fraction(t, "overload", "recovery_step_fraction",
                      &c.recovery_step_fraction);
        bind_duration(t, "overload", "recovery_interval", &c.recovery_interval, 1);
        bind_size(t, "overload", "buffer_capacity", &c.buffer_capacity_bytes, 1);
        bind_duration(t, "overload", "buffer_retention", &c.buffer_retention, 1);
        bind_rate(t, "overload", "retransmit_pace", &c.retransmit_pace);
        bind_size(t, "overload", "occupancy_high", &c.occupancy_high_bytes, 1);
        bind_size(t, "overload", "occupancy_low", &c.occupancy_low_bytes, 1);
        bind_duration(t, "overload", "pressure_poll", &c.pressure_poll, 1);
        bind_time(t, "overload", "poll_until", &c.poll_until);
        bind_time(t, "overload", "second_flow_at", &c.second_flow_at);
        bind_rate(t, "overload", "second_flow_rate", &c.second_flow_rate);
        bind_duration(t, "recovery", "nak_retry", &c.nak_retry, 1);
        bind_duration(t, "recovery", "nak_retry_cap", &c.nak_retry_cap, 1);
        bind_count(t, "recovery", "max_nak_attempts", &c.max_nak_attempts, 1);
        bind_duration(t, "recovery", "flush_check", &c.flush_check, 1);
        bind_duration(t, "recovery", "probe_interval", &c.probe_interval, 1);
        bind_duration(t, "recovery", "probe_deadline", &c.probe_deadline, 1);
        bind_count(t, "policy", "deadline_us", &c.deadline_us);
        bind_rate(t, "policy", "planned_rate", &c.planned_rate);
        bind_bool(t, "trace", "enabled", &c.trace);
        bind_count(t, "trace", "capacity", &c.trace_capacity, 1);
    } else if (spec.topology == "shapeshift") {
        auto& c = spec.shapeshift;
        bind_count(t, "traffic", "messages", &c.messages, 1);
        bind_count(t, "traffic", "message_bytes", &c.message_bytes, 1);
        bind_duration(t, "traffic", "message_interval", &c.message_interval, 1);
        bind_time(t, "traffic", "first_message", &c.first_message);
        bind_rate(t, "links", "wan_rate", &c.wan_rate);
        bind_duration(t, "links", "wan_delay", &c.wan_delay);
        bind_size(t, "links", "wan_queue", &c.wan_queue_bytes, 1);
        bind_time(t, "faults", "burst_at", &c.burst_at);
        bind_duration(t, "faults", "burst_duration", &c.burst_duration);
        bind_fraction(t, "faults", "burst_ber", &c.burst_ber);
        bind_preset(t, "policy", "preset", &c.policy);
        bind_duration(t, "policy", "poll_interval", &c.poll_interval, 1);
        bind_time(t, "policy", "poll_until", &c.poll_until);
        bind_duration(t, "policy", "drain_window", &c.drain_window, 1);
        bind_count(t, "policy", "loss_degrade_threshold",
                   &c.loss_degrade_threshold, 1);
        bind_count(t, "policy", "restore_after_clean_polls",
                   &c.restore_after_clean_polls, 1);
        bind_count(t, "policy", "deadline_us", &c.deadline_us);
        bind_time(t, "recovery", "flush_at", &c.flush_at);
        bind_bool(t, "trace", "enabled", &c.trace);
        bind_count(t, "trace", "capacity", &c.trace_capacity, 1);
    } else if (spec.topology == "soak") {
        auto& c = spec.soak;
        bind_count(t, "traffic", "slices_per_experiment",
                   &c.slices_per_experiment, 1);
        bind_count(t, "traffic", "messages_per_stream", &c.messages_per_stream, 1);
        bind_count(t, "traffic", "message_bytes", &c.message_bytes, 1);
        bind_duration(t, "traffic", "message_interval", &c.message_interval, 1);
        bind_time(t, "traffic", "first_message", &c.first_message);
        bind_experiment(t, "cms", 0, &c);
        bind_experiment(t, "dune", 1, &c);
        bind_experiment(t, "ecce", 2, &c);
        bind_experiment(t, "mu2e", 3, &c);
        bind_experiment(t, "rubin", 4, &c);
        bind_rate(t, "links", "wan_rate", &c.wan_rate);
        bind_duration(t, "links", "wan_delay", &c.wan_delay);
        bind_size(t, "links", "wan_queue", &c.wan_queue_bytes, 1);
        bind_time(t, "faults", "burst1_at", &c.burst1_at);
        bind_duration(t, "faults", "burst1_duration", &c.burst1_duration);
        bind_fraction(t, "faults", "burst1_ber", &c.burst1_ber);
        bind_time(t, "faults", "dtn2_down_at", &c.dtn2_down_at);
        bind_time(t, "faults", "dtn2_up_at", &c.dtn2_up_at);
        bind_time(t, "faults", "wan_down_at", &c.wan_down_at);
        bind_time(t, "faults", "wan_up_at", &c.wan_up_at);
        bind_time(t, "faults", "burst2_at", &c.burst2_at);
        bind_duration(t, "faults", "burst2_duration", &c.burst2_duration);
        bind_fraction(t, "faults", "burst2_ber", &c.burst2_ber);
        bind_preset(t, "policy", "preset", &c.policy);
        bind_duration(t, "policy", "poll_interval", &c.poll_interval, 1);
        bind_duration(t, "policy", "drain_window", &c.drain_window, 1);
        bind_count(t, "policy", "loss_degrade_threshold",
                   &c.loss_degrade_threshold, 1);
        bind_count(t, "policy", "restore_after_clean_polls",
                   &c.restore_after_clean_polls, 1);
        bind_size(t, "overload", "dtn1_capacity", &c.dtn1_capacity_bytes, 1);
        bind_duration(t, "overload", "dtn1_retention", &c.dtn1_retention, 1);
        bind_size(t, "overload", "occupancy_high", &c.occupancy_high_bytes, 1);
        bind_size(t, "overload", "occupancy_low", &c.occupancy_low_bytes, 1);
        bind_duration(t, "overload", "pressure_hold", &c.pressure_hold, 1);
        bind_duration(t, "overload", "pressure_poll", &c.pressure_poll, 1);
        bind_duration(t, "overload", "churn_interval", &c.churn_interval, 1);
        bind_duration(t, "overload", "churn_hold", &c.churn_hold, 1);
        bind_rate(t, "overload", "churn_rate", &c.churn_rate);
        bind_time(t, "overload", "churn_until", &c.churn_until);
        bind_rate(t, "overload", "trunk_rate", &c.trunk_rate);
        bind_count(t, "recovery", "max_nak_attempts", &c.max_nak_attempts, 1);
        bind_count(t, "recovery", "failover_attempts", &c.failover_attempts, 1);
        bind_time(t, "recovery", "flush_at", &c.flush_at);
        bind_time(t, "recovery", "prune_from", &c.prune_from);
        bind_duration(t, "recovery", "prune_interval", &c.prune_interval, 1);
        bind_duration(t, "recovery", "prune_idle_after", &c.prune_idle_after, 1);
        bind_duration(t, "recovery", "probe_interval", &c.probe_interval, 1);
        bind_time(t, "recovery", "end_at", &c.end_at);
        bind_count(t, "persistence", "chunk_records", &c.persist_chunk_records, 1);
    }
    return t;
}

} // namespace

// --- scenario_spec -------------------------------------------------------

std::uint64_t scenario_spec::seed() const
{
    if (topology == "today") return today.today.seed;
    if (topology == "chaos") return chaos.seed;
    if (topology == "overload") return overload.seed;
    if (topology == "shapeshift") return shapeshift.seed;
    if (topology == "soak") return soak.seed;
    return pilot.pilot.seed;
}

void scenario_spec::set_seed(std::uint64_t s)
{
    // Only the active topology's config matters; setting all six keeps
    // this free of topology dispatch.
    pilot.pilot.seed = s;
    today.today.seed = s;
    chaos.seed = s;
    overload.seed = s;
    shapeshift.seed = s;
    soak.seed = s;
}

std::uint32_t scenario_spec::link_burst() const
{
    if (topology == "today") return today.today.link_burst;
    if (topology == "chaos") return chaos.link_burst;
    if (topology == "overload") return overload.link_burst;
    if (topology == "shapeshift") return shapeshift.link_burst;
    if (topology == "soak") return soak.link_burst;
    return pilot.pilot.link_burst;
}

void scenario_spec::set_link_burst(std::uint32_t b)
{
    pilot.pilot.link_burst = b;
    today.today.link_burst = b;
    chaos.link_burst = b;
    overload.link_burst = b;
    shapeshift.link_burst = b;
    soak.link_burst = b;
}

std::uint32_t scenario_spec::shards() const
{
    if (topology == "today") return today.today.shards;
    if (topology == "chaos") return chaos.shards;
    if (topology == "overload") return overload.shards;
    if (topology == "shapeshift") return shapeshift.shards;
    if (topology == "soak") return soak.shards;
    return pilot.pilot.shards;
}

void scenario_spec::set_shards(std::uint32_t n)
{
    pilot.pilot.shards = n;
    today.today.shards = n;
    chaos.shards = n;
    overload.shards = n;
    shapeshift.shards = n;
    soak.shards = n;
}

// --- parsing -------------------------------------------------------------

parse_outcome parse_scenario(const std::string& text)
{
    parse_outcome out;
    scenario_spec spec;
    binding_table table;
    bool have_scenario_section = false;
    bool have_topology = false;
    std::string section;
    std::set<std::string> seen_sections;
    std::set<std::string> seen_keys;
    std::optional<std::uint64_t> staged_seed;
    std::optional<std::uint32_t> staged_burst;
    std::optional<std::uint32_t> staged_shards;

    auto fail = [&](unsigned ln, std::string msg) {
        out.spec.reset();
        out.error = dsl_error{ln, std::move(msg)};
        return out;
    };

    unsigned line_no = 0;
    std::size_t pos = 0;
    while (pos <= text.size()) {
        // Next line (the final line may lack a terminating newline).
        if (pos == text.size() && line_no > 0) break;
        const std::size_t nl = text.find('\n', pos);
        std::string raw = text.substr(pos, nl == std::string::npos ? nl : nl - pos);
        pos = nl == std::string::npos ? text.size() + 1 : nl + 1;
        ++line_no;

        if (!raw.empty() && raw.back() == '\r') raw.pop_back();
        if (const auto hash = raw.find('#'); hash != std::string::npos)
            raw.resize(hash);
        // NUL or other control bytes never appear in a well-formed file;
        // reject them rather than let them hide inside keys or values.
        for (char c : raw)
            if (static_cast<unsigned char>(c) < 0x20 && c != '\t')
                return fail(line_no, "control byte in input");
        const std::string line = trim(raw);
        if (line.empty()) continue;

        if (line.front() == '[') {
            if (line.back() != ']' || line.size() < 3)
                return fail(line_no, "unclosed or empty section header: '" + line
                                + "'");
            const std::string name = trim(line.substr(1, line.size() - 2));
            if (name.empty()) return fail(line_no, "empty section name");
            if (!seen_sections.insert(name).second)
                return fail(line_no, "duplicate section [" + name + "]");
            if (name == "scenario") {
                have_scenario_section = true;
            } else if (name == "engine") {
                // Simulation-runner knobs — topology-independent, like
                // [scenario] itself.
            } else {
                if (!have_topology)
                    return fail(line_no, "section [" + name
                                    + "] before [scenario] declares the topology");
                if (!table.has_section(name))
                    return fail(line_no, "unknown section [" + name
                                    + "] for topology '" + spec.topology + "'");
            }
            section = name;
            continue;
        }

        const auto eq = line.find('=');
        if (eq == std::string::npos)
            return fail(line_no, "expected 'key = value' or '[section]', got '"
                            + line + "'");
        const std::string key = trim(line.substr(0, eq));
        const std::string value = trim(line.substr(eq + 1));
        if (key.empty()) return fail(line_no, "empty key");
        if (section.empty())
            return fail(line_no, "'" + key + "' outside any section");
        if (value.empty()) return fail(line_no, "missing value for '" + key + "'");
        if (!seen_keys.insert(section + "." + key).second)
            return fail(line_no,
                        "duplicate key '" + key + "' in [" + section + "]");

        if (section == "scenario") {
            if (key == "name") {
                spec.name = value;
            } else if (key == "topology") {
                if (!registry::known(value)) {
                    std::string known_names;
                    for (const auto& n : registry::names())
                        known_names += (known_names.empty() ? "" : ", ") + n;
                    return fail(line_no, "unknown topology '" + value
                                    + "' (known: " + known_names + ")");
                }
                spec.topology = value;
                table = build_bindings(spec);
                have_topology = true;
            } else if (key == "seed") {
                std::uint64_t s = 0;
                if (!parse_count(value, s))
                    return fail(line_no, "expected an integer seed, got '" + value
                                    + "'");
                staged_seed = s;
            } else if (key == "lossy") {
                if (!parse_bool(value, spec.lossy))
                    return fail(line_no, "expected a boolean, got '" + value + "'");
            } else if (key == "link_burst") {
                std::uint64_t b = 0;
                if (!parse_count(value, b) || b < 1 || b > netsim::max_burst)
                    return fail(line_no, "link_burst must be in [1, "
                                    + std::to_string(netsim::max_burst) + "], got '"
                                    + value + "'");
                staged_burst = static_cast<std::uint32_t>(b);
            } else {
                return fail(line_no, "unknown key '" + key + "' in [scenario]");
            }
            continue;
        }

        if (section == "engine") {
            if (key == "shards") {
                std::uint64_t n = 0;
                if (!parse_count(value, n) || n < 1 || n > max_shards)
                    return fail(line_no, "shards must be in [1, "
                                    + std::to_string(max_shards) + "], got '"
                                    + value + "'");
                staged_shards = static_cast<std::uint32_t>(n);
            } else {
                return fail(line_no, "unknown key '" + key + "' in [engine]");
            }
            continue;
        }

        const auto* entry = table.find(section, key);
        if (entry == nullptr)
            return fail(line_no, "unknown key '" + key + "' in [" + section
                            + "] for topology '" + spec.topology + "'");
        if (const std::string err = entry->set(value); !err.empty())
            return fail(line_no, err);
    }

    if (!have_scenario_section) return fail(0, "missing [scenario] section");
    if (!have_topology)
        return fail(0, "missing 'topology' key in [scenario]");

    if (staged_seed) spec.set_seed(*staged_seed);
    if (staged_burst) spec.set_link_burst(*staged_burst);
    if (staged_shards) spec.set_shards(*staged_shards);
    out.spec = std::move(spec);
    return out;
}

parse_outcome load_scenario_file(const std::string& path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        parse_outcome out;
        out.error = dsl_error{0, "cannot open scenario file: " + path};
        return out;
    }
    std::ostringstream buf;
    buf << in.rdbuf();
    return parse_scenario(buf.str());
}

std::string render_scenario(const scenario_spec& spec)
{
    scenario_spec copy = spec; // bindings want mutable field pointers
    const binding_table table = build_bindings(copy);

    std::string out;
    out += "[scenario]\n";
    if (!copy.name.empty()) out += "name = " + copy.name + "\n";
    out += "topology = " + copy.topology + "\n";
    out += "seed = " + std::to_string(copy.seed()) + "\n";
    out += "lossy = " + std::string(copy.lossy ? "true" : "false") + "\n";
    out += "link_burst = " + std::to_string(copy.link_burst()) + "\n";
    out += "\n[engine]\n";
    out += "shards = " + std::to_string(copy.shards()) + "\n";
    for (const auto& sct : table.sections) {
        out += "\n[" + sct.name + "]\n";
        for (const auto& e : sct.entries) out += e.key + " = " + e.get() + "\n";
    }
    return out;
}

// --- dsl_driver ----------------------------------------------------------

dsl_driver::dsl_driver(scenario_spec spec) : spec_(std::move(spec))
{
    inner_ = registry::make(spec_);
    if (inner_ == nullptr)
        throw std::invalid_argument("dsl_driver: unknown topology '"
                                    + spec_.topology + "'");
}

dsl_driver::~dsl_driver() = default;

std::string dsl_driver::describe() const
{
    const std::string label = spec_.name.empty() ? spec_.topology : spec_.name;
    return "scenario '" + label + "': " + inner_->describe();
}

run_context dsl_driver::build()
{
    return inner_->build();
}

telemetry::table dsl_driver::report(telemetry::metrics_registry& reg)
{
    return inner_->report(reg);
}

dsl_driver::acceptance dsl_driver::accept()
{
    acceptance a;
    if (spec_.topology == "pilot") {
        auto& d = static_cast<pilot_driver&>(*inner_);
        const auto st = d.testbed().dtn2_rx->stats();
        a.expected = d.records_driven();
        a.delivered = st.datagrams;
        a.duplicates = st.duplicates;
        a.given_up = st.given_up;
        a.outstanding_gaps = d.testbed().dtn2_rx->outstanding_gaps();
    } else if (spec_.topology == "today") {
        auto& d = static_cast<today_driver&>(*inner_);
        // The status-quo pipeline has no sequencing: acceptance is byte
        // accounting at the first UDP hop (and the scenario is lossy).
        a.expected = d.bytes_scheduled();
        a.delivered = d.testbed().dtn1_received_bytes;
    } else if (spec_.topology == "chaos") {
        auto& d = static_cast<chaos_driver&>(*inner_);
        const auto& r = d.result();
        a.expected = r.messages_sent;
        a.delivered = r.rx.datagrams;
        a.duplicates = r.rx.duplicates;
        a.given_up = r.rx.given_up;
        a.outstanding_gaps = d.testbed().rx->outstanding_gaps();
    } else if (spec_.topology == "overload") {
        auto& d = static_cast<overload_driver&>(*inner_);
        const auto& r = d.result();
        a.expected = r.messages_sent;
        a.delivered = r.rx.datagrams;
        a.duplicates = r.rx.duplicates;
        a.given_up = r.rx.given_up;
        a.outstanding_gaps = d.testbed().rx->outstanding_gaps();
    } else if (spec_.topology == "shapeshift") {
        auto& d = static_cast<shapeshift_driver&>(*inner_);
        const auto& r = d.result();
        a.expected = r.messages_sent;
        a.delivered = r.delivered;
        a.duplicates = r.rx.duplicates;
        a.given_up = r.rx.given_up;
        a.outstanding_gaps = d.testbed().rx->outstanding_gaps();
    } else if (spec_.topology == "soak") {
        auto& d = static_cast<soak_driver&>(*inner_);
        const auto& r = d.result();
        a.expected = r.messages_sent;
        a.delivered = r.delivered;
        a.duplicates = r.rx.duplicates;
        a.given_up = r.rx.given_up;
        a.outstanding_gaps = d.testbed().rx->outstanding_gaps();
    }
    a.whole = a.delivered == a.expected && a.given_up == 0
        && a.outstanding_gaps == 0;
    return a;
}

netsim::network& dsl_driver::network()
{
    if (spec_.topology == "pilot")
        return static_cast<pilot_driver&>(*inner_).testbed().net;
    if (spec_.topology == "today")
        return static_cast<today_driver&>(*inner_).testbed().net;
    if (spec_.topology == "chaos")
        return static_cast<chaos_driver&>(*inner_).testbed().net;
    if (spec_.topology == "overload")
        return static_cast<overload_driver&>(*inner_).testbed().net;
    if (spec_.topology == "shapeshift")
        return static_cast<shapeshift_driver&>(*inner_).testbed().net;
    return static_cast<soak_driver&>(*inner_).testbed().net;
}

} // namespace mmtp::scenario
