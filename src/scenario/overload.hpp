// overload.hpp — the overload drill: 2× sustained offered load pushed
// through a pilot-style topology with every overload-control layer
// engaged at once.
//
// The paper argues capacity planning makes congestion rare (§4.1) and
// that MMTP therefore needs only lightweight reactions when it happens
// anyway (§5.3). The overload drill probes exactly that boundary: the
// source offers twice the WAN's rate for a sustained window, and the
// stack must degrade *predictably* instead of collapsing:
//
//     src ──► Tofino ════ wan (priority + deadline shedding) ════► rx
//              │  ▲
//              ▼  └ backpressure signals (hysteresis + escalation bands)
//             buf  (duplication-fed tap; storage watermarks gate the
//                   planner's admissions while occupancy is high)
//
// Four control loops close during the run:
//   1. the Tofino's backpressure stage watches the WAN egress queue and
//      signals the source across hysteresis watermarks (O(crossings)
//      signals, not O(packets));
//   2. the sender's AIMD schedule cuts its pace multiplicatively per
//      signal and recovers additively after a quiet period — the pace
//      returns to the configured rate by the end of the drill;
//   3. the WAN egress queue sheds the entry closest to its deadline
//      (never control, never retransmissions) when a band fills;
//   4. buf's occupancy watermarks gate the capacity planner: a scripted
//      second-flow admission is deferred while storage pressure is
//      engaged and admitted automatically once retention decay releases
//      it.
//
// Loss is recovered from buf via NAK (zero give-ups required); deadline
// misses — late arrivals plus shed/dropped originals — stay bounded and
// are the drill's headline number. Everything rides the simulation
// engine, so two same-seed runs produce byte-identical telemetry
// (overload_result::csv / metrics_csv), which is what test_overload
// asserts.
#pragma once

#include "common/trace.hpp"
#include "control/planner.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/network.hpp"
#include "netsim/queue.hpp"
#include "pnet/stages.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/report.hpp"

#include <functional>
#include <memory>
#include <string>

namespace mmtp::scenario {

struct overload_config {
    std::uint64_t seed{42};
    /// WAN span: the bottleneck the drill overloads.
    data_rate wan_rate{data_rate::from_gbps(10)};
    sim_duration wan_delay{sim_duration{1000000}}; // 1 ms one way
    /// Per-band byte capacity of the WAN's priority egress queue (also
    /// the capacity the backpressure stage scales severity against).
    std::uint64_t band_bytes{2ull * 1024 * 1024};
    /// Fixed-size DAQ messages offered at ~2× the WAN rate for a
    /// sustained window — the overload under test.
    std::uint32_t message_bytes{8192};
    std::uint64_t messages{5000};
    sim_duration message_interval{sim_duration{3300}}; // ~19.9 Gbps offered
    sim_time first_message{sim_time{100000}};          // 100 us
    /// Timeliness budget stamped by the Tofino's mode rule.
    std::uint32_t deadline_us{5000};
    /// Backpressure hysteresis on the WAN egress (engage at high,
    /// release below low) plus signal rate limiting.
    std::uint64_t bp_low_bytes{512 * 1024};
    std::uint64_t bp_high_bytes{1024 * 1024};
    sim_duration bp_min_interval{sim_duration{100000}}; // 100 us
    unsigned bp_level_bands{8};
    /// Sender pace (≈ the offered rate; pacing is not the bottleneck
    /// until backpressure scales it) and its AIMD schedule.
    data_rate pace{data_rate::from_gbps(20)};
    double min_pace_fraction{0.25};
    sim_duration backpressure_hold{sim_duration{2000000}};  // 2 ms
    double recovery_step_fraction{0.2};
    sim_duration recovery_interval{sim_duration{500000}};   // 500 us
    /// buf's storage and its occupancy watermarks (clones of every
    /// original land here; retention decay eventually releases pressure).
    /// Retention must outlive the whole recovery tail (gaps behind the
    /// load window retry on the NAK schedule above), and it also sets
    /// when occupancy decays below the low watermark.
    std::uint64_t buffer_capacity_bytes{64ull * 1024 * 1024};
    sim_duration buffer_retention{sim_duration{80000000}};  // 80 ms
    /// Repair traffic is paced below the WAN rate so recovery cannot
    /// re-overload the segment it is repairing.
    data_rate retransmit_pace{data_rate::from_gbps(8)};
    std::uint64_t occupancy_high_bytes{8ull * 1024 * 1024};
    std::uint64_t occupancy_low_bytes{4ull * 1024 * 1024};
    /// Cadence of buf's retention sweep / watermark re-check, and when
    /// to stop polling (bounds the run).
    sim_duration pressure_poll{sim_duration{1000000}}; // 1 ms
    sim_time poll_until{sim_time{150000000}};          // 150 ms
    /// A second flow asks for admission mid-overload: it must be
    /// deferred while buf's pressure gates the storage link and admitted
    /// once pressure releases.
    sim_time second_flow_at{sim_time{10000000}}; // 10 ms
    data_rate second_flow_rate{data_rate::from_gbps(1)};
    /// Receiver recovery knobs. Retransmissions ride the WAN's bulk band
    /// *behind* the deadline traffic, so a gap is often unfillable until
    /// the load window drains — the retry base must be generous or every
    /// retry just duplicates a retransmission already parked in band 1.
    sim_duration nak_retry{sim_duration{20000000}};     // 20 ms
    sim_duration nak_retry_cap{sim_duration{40000000}}; // 40 ms
    std::uint32_t max_nak_attempts{8};
    /// End-of-stream detection: once the sender has drained, a flush
    /// marker (re-checked at this cadence) reveals any tail loss.
    sim_duration flush_check{sim_duration{1000000}}; // 1 ms
    /// Recovery probing cadence and give-up horizon.
    sim_duration probe_interval{sim_duration{500000}};    // 500 us
    sim_duration probe_deadline{sim_duration{400000000}}; // 400 ms
    /// Rate the primary flow is admitted at.
    data_rate planned_rate{data_rate::from_gbps(8)};
    bool trace{true};
    std::size_t trace_capacity{1u << 18};
    /// Packets per burst on every span (1 = classic per-packet path).
    /// The WAN egress itself always runs per-packet regardless — its
    /// backpressure depth watcher must observe every transient depth.
    std::uint32_t link_burst{1};
    /// Simulation shards (all nodes stay in domain 0 — the topology is
    /// too tightly coupled to cut — so extra shards idle; 1 = classic).
    std::uint32_t shards{1};
};

struct overload_testbed {
    netsim::network net;
    overload_config cfg;

    netsim::host* src{nullptr};
    pnet::programmable_switch* tofino{nullptr};
    netsim::host* rx_host{nullptr};
    netsim::host* buf{nullptr};

    unsigned wan_port{0};
    netsim::link* wan{nullptr};
    /// The WAN's priority queue (owned by the link; raw pointer kept for
    /// per-band accounting).
    netsim::priority_queue_disc* wan_queue{nullptr};

    std::unique_ptr<core::stack> src_stack;
    std::unique_ptr<core::sender> tx;
    std::unique_ptr<core::stack> rx_stack;
    std::unique_ptr<core::receiver> rx;
    std::unique_ptr<core::stack> buf_stack;
    std::unique_ptr<core::buffer_service> buf_svc;

    std::shared_ptr<pnet::mode_transition_stage> mode_stage;
    std::shared_ptr<pnet::backpressure_stage> bp_stage;

    control::capacity_planner planner;
    control::flow_id flow{0};
    /// Simulated instant the deferred second flow was admitted
    /// (zero => never admitted).
    sim_time second_flow_admitted_at{sim_time::zero()};
    std::unique_ptr<telemetry::recovery_tracker> recovery;

    std::unique_ptr<trace::flight_recorder> tracer;
    std::unique_ptr<trace::scoped_recorder> tracer_install;
    telemetry::metrics_registry metrics;

    std::uint64_t messages_scheduled{0};
    bool flush_sent{false};
    /// Self-rescheduling scripts (flush watcher, pressure poll).
    std::function<void()> flush_watch;
    std::function<void()> pressure_poll;
};

/// Builds the drill topology, wires every overload-control loop, and
/// scripts the traffic, the deferred admission, the pressure polling and
/// the end-of-stream flush. Call net.sim().run() (or use
/// run_overload_drill) to execute.
std::unique_ptr<overload_testbed> make_overload(const overload_config& cfg);

struct overload_result {
    core::sender_stats tx;
    core::receiver_stats rx;
    core::buffer_service_stats buf;
    netsim::link_stats wan;
    netsim::queue_stats wan_queue;
    control::planner_stats planner;
    std::uint64_t messages_sent{0};
    /// Per-band WAN egress accounting (band 0 = deadline + control).
    std::uint64_t band0_dropped{0};
    std::uint64_t band0_shed{0};
    std::uint64_t band1_dropped{0};
    /// Tofino backpressure-stage counters.
    std::uint64_t bp_engagements{0};
    std::uint64_t bp_escalations{0};
    std::uint64_t bp_suppressed{0};
    std::uint64_t bp_signals{0};
    /// Deadline misses: arrivals past their budget plus deadline-band
    /// originals lost at the WAN egress (recovered copies carry no
    /// deadline, so nothing is counted twice).
    std::uint64_t missed_deadline{0};
    std::uint64_t miss_ppm{0};
    /// Effective sender pace at end of run (bits/sec) — the AIMD loop
    /// must have recovered it to the configured rate.
    std::uint64_t final_pace_bps{0};
    bool pace_recovered{false};
    /// Storage-pressure story.
    std::uint64_t pressure_engagements{0};
    std::uint64_t pressure_releases{0};
    bool second_flow_deferred{false};
    bool second_flow_admitted{false};
    sim_time second_flow_admitted_at{sim_time::zero()};
    bool recovered{false};
    sim_duration time_to_recover{sim_duration::zero()};
    std::uint64_t probes{0};

    /// Deterministic telemetry: integer-only table, its CSV bytes, and
    /// the metrics registry snapshot (same-seed runs are byte-identical).
    telemetry::table report{"overload drill"};
    std::string csv;
    std::string metrics_csv;

    /// Hop-by-hop story of the first deadline-shed packet's sequence:
    /// shed at the WAN egress, NAKed, recovered from buf
    /// (UINT64_MAX when nothing was shed or tracing was off).
    std::uint64_t traced_sequence{std::uint64_t(-1)};
    std::string hop_timeline;
};

/// Summarizes an already-run testbed (drivers separate build/run/report).
overload_result summarize_overload(overload_testbed& tb);

/// Builds, runs to completion, and summarizes one overload drill.
overload_result run_overload_drill(const overload_config& cfg);

} // namespace mmtp::scenario
