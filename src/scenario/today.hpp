// today.hpp — the status-quo pipeline of Fig. 2.
//
//   sensor ──UDP──► DTN1 ──TCP (tuned)──► storage DTN ──TCP──► campus
//
// UDP (or bare Ethernet) inside the DAQ network, then TCP termination and
// store-and-forward relaying at each stage — "several stages of
// connection termination, buffering, and protocol tuning" (§4). The
// testbed exposes each stage so benches can measure per-stage throughput,
// buffering, and end-to-end latency of the relay pipeline.
#pragma once

#include "daq/message.hpp"
#include "netsim/network.hpp"
#include "pnet/element.hpp"
#include "tcp/stack.hpp"
#include "udp/udp.hpp"

#include <memory>

namespace mmtp::scenario {

struct today_config {
    std::uint64_t seed{42};
    data_rate daq_rate{data_rate::from_gbps(100)};
    data_rate wan_rate{data_rate::from_gbps(100)};
    sim_duration wan_delay{sim_duration{10000000}}; // 10 ms one way
    double wan_loss{0.0};
    data_rate campus_rate{data_rate::from_gbps(100)};
    sim_duration campus_delay{sim_duration{5000000}}; // 5 ms one way
    /// Tuned DTN TCP (big buffers, CUBIC, host ceiling) vs stock config.
    bool tuned{true};
    /// Per-stream end-host ceiling for tuned TCP (§4.1: ~30 Gbps).
    data_rate tcp_host_limit{data_rate::from_gbps(30)};
    std::uint64_t wan_queue_bytes{32ull * 1024 * 1024};
    /// Packets per burst on every span (1 = classic per-packet path).
    std::uint32_t link_burst{1};
    /// Simulation shards (all nodes stay in domain 0 — the topology is
    /// too tightly coupled to cut — so extra shards idle; 1 = classic).
    std::uint32_t shards{1};
};

/// Pipes one TCP connection's delivered bytes into another (the
/// store-and-forward relay a storage DTN performs today).
class tcp_relay {
public:
    tcp_relay(tcp::connection& in, tcp::connection& out);

    std::uint64_t relayed() const { return relayed_; }

private:
    void pump();

    tcp::connection& in_;
    tcp::connection& out_;
    std::uint64_t relayed_{0};
};

struct today_testbed {
    netsim::network net;
    today_config cfg;

    netsim::host* sensor{nullptr};
    netsim::host* dtn1{nullptr};
    netsim::host* storage{nullptr};
    netsim::host* campus{nullptr};

    pnet::programmable_switch* border{nullptr};
    pnet::programmable_switch* storage_router{nullptr};

    std::unique_ptr<udp::stack> sensor_udp;
    std::unique_ptr<udp::stack> dtn1_udp;
    std::unique_ptr<tcp::stack> dtn1_tcp;
    std::unique_ptr<tcp::stack> storage_tcp;
    std::unique_ptr<tcp::stack> campus_tcp;

    /// UDP port DAQ data arrives on at DTN1.
    static constexpr std::uint16_t daq_port = 7000;
    /// TCP ports for the WAN and campus hops.
    static constexpr std::uint16_t storage_port = 5001;
    static constexpr std::uint16_t campus_port = 5002;

    /// The TCP config the WAN hop uses (derived from cfg).
    tcp::tcp_config wan_tcp_config() const;
    tcp::tcp_config campus_tcp_config() const;

    /// Schedules every message of `src` as UDP datagrams from the
    /// sensor toward DTN1 (splitting messages into MTU-sized datagrams).
    /// Returns total bytes scheduled.
    std::uint64_t drive_sensor(daq::message_source& src, std::uint64_t limit = 0);

    /// Bytes that arrived at DTN1 over UDP so far.
    std::uint64_t dtn1_received_bytes{0};
    std::uint64_t dtn1_received_datagrams{0};
};

std::unique_ptr<today_testbed> make_today(const today_config& cfg);

} // namespace mmtp::scenario
