#include "scenario/today.hpp"

namespace mmtp::scenario {

tcp_relay::tcp_relay(tcp::connection& in, tcp::connection& out) : in_(in), out_(out)
{
    in_.set_on_delivered([this](std::uint64_t) { pump(); });
    out_.set_on_writable([this] { pump(); });
    out_.set_on_connected([this] { pump(); });
}

void tcp_relay::pump()
{
    const std::uint64_t available = in_.delivered_bytes() - relayed_;
    if (available == 0) return;
    relayed_ += out_.send(available);
}

tcp::tcp_config today_testbed::wan_tcp_config() const
{
    if (!cfg.tuned) return tcp::tcp_config{}; // stock: 256 KiB buffers
    auto c = tcp::tuned_dtn_config(cfg.wan_rate, cfg.wan_delay * 2, cfg.tcp_host_limit);
    return c;
}

tcp::tcp_config today_testbed::campus_tcp_config() const
{
    if (!cfg.tuned) return tcp::tcp_config{};
    return tcp::tuned_dtn_config(cfg.campus_rate, cfg.campus_delay * 2,
                                 cfg.tcp_host_limit);
}

std::uint64_t today_testbed::drive_sensor(daq::message_source& src, std::uint64_t limit)
{
    constexpr std::uint64_t max_udp_payload = 8192;
    std::uint64_t total = 0;
    std::uint64_t n = 0;
    auto& eng = net.sim();
    auto* udp_stack = sensor_udp.get();
    const auto dst = dtn1->address();
    auto& sock = udp_stack->open(40000);

    while (limit == 0 || n < limit) {
        auto tm = src.next();
        if (!tm) break;
        n++;
        total += tm->msg.size_bytes;
        eng.schedule_at(tm->at, [this, &sock, dst, msg = std::move(tm->msg)] {
            std::uint64_t remaining = msg.size_bytes;
            std::span<const std::uint8_t> inline_left(msg.inline_payload);
            bool first = true;
            while (remaining > 0 || first) {
                first = false;
                const std::uint64_t chunk =
                    remaining < max_udp_payload ? remaining : max_udp_payload;
                const std::uint64_t take =
                    inline_left.size() < chunk ? inline_left.size() : chunk;
                std::vector<std::uint8_t> content(inline_left.begin(),
                                                  inline_left.begin() + take);
                inline_left = inline_left.subspan(take);
                sock.send_to(dst, daq_port, std::move(content), chunk - take);
                remaining -= chunk;
            }
        });
    }
    return total;
}

std::unique_ptr<today_testbed> make_today(const today_config& cfg)
{
    auto tb = std::make_unique<today_testbed>();
    tb->cfg = cfg;
    tb->net = netsim::network(cfg.seed, cfg.shards);
    auto& net = tb->net;

    tb->sensor = &net.add_host("sensor");
    tb->dtn1 = &net.add_host("dtn1");
    tb->border = &net.emplace<pnet::programmable_switch>("border-router");
    tb->storage_router = &net.emplace<pnet::programmable_switch>("storage-router");
    tb->storage = &net.add_host("storage");
    tb->campus = &net.add_host("campus");

    netsim::link_config daq_link;
    daq_link.rate = cfg.daq_rate;
    daq_link.propagation = sim_duration{500};
    daq_link.burst = cfg.link_burst;

    netsim::link_config border_link;
    border_link.rate = cfg.wan_rate;
    border_link.propagation = sim_duration{1000};
    border_link.queue_capacity_bytes = cfg.wan_queue_bytes;
    border_link.burst = cfg.link_burst;

    netsim::link_config wan_link = border_link;
    wan_link.propagation = cfg.wan_delay;
    wan_link.drop_probability = cfg.wan_loss;

    netsim::link_config campus_link;
    campus_link.rate = cfg.campus_rate;
    campus_link.propagation = cfg.campus_delay;
    campus_link.queue_capacity_bytes = cfg.wan_queue_bytes;
    campus_link.burst = cfg.link_burst;

    net.connect(*tb->sensor, *tb->dtn1, daq_link);
    net.connect(*tb->dtn1, *tb->border, border_link);
    // the WAN span (loss and delay live here)
    net.connect_simplex(*tb->border, *tb->storage_router, wan_link);
    netsim::link_config wan_back = border_link;
    wan_back.propagation = cfg.wan_delay;
    wan_back.drop_probability = cfg.wan_loss;
    net.connect_simplex(*tb->storage_router, *tb->border, wan_back);
    net.connect(*tb->storage_router, *tb->storage, border_link);
    // researcher access leg
    net.connect(*tb->storage, *tb->campus, campus_link);
    net.compute_routes();

    tb->sensor_udp = std::make_unique<udp::stack>(*tb->sensor, net.ids());
    tb->dtn1_udp = std::make_unique<udp::stack>(*tb->dtn1, net.ids());
    tb->dtn1_tcp = std::make_unique<tcp::stack>(*tb->dtn1, net.ids());
    tb->storage_tcp = std::make_unique<tcp::stack>(*tb->storage, net.ids());
    tb->campus_tcp = std::make_unique<tcp::stack>(*tb->campus, net.ids());

    // DAQ ingest counter at DTN1 (applications wire their own relay).
    auto& ingest = tb->dtn1_udp->open(today_testbed::daq_port);
    ingest.set_on_receive([tbp = tb.get()](udp::datagram&& d) {
        tbp->dtn1_received_bytes += d.total_payload_bytes;
        tbp->dtn1_received_datagrams++;
    });

    return tb;
}

} // namespace mmtp::scenario
