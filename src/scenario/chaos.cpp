#include "scenario/chaos.hpp"

#include "daq/message.hpp"

namespace mmtp::scenario {

namespace {
/// The drill's one stream: the ICEBERG experiment, slice 0.
constexpr wire::experiment_id drill_stream =
    wire::make_experiment_id(wire::experiments::iceberg, 0);

/// End-of-window flush: sequence numbers were assigned in-network, so
/// the marker reads the Tofino's own counter. Three copies: the marker
/// crosses the (post-fault) WAN like everything else.
void send_flush(chaos_testbed& tb)
{
    auto& st = tb.tofino->state();
    st.create_register("mode_seq", pnet::mode_transition_stage::seq_register_cells);
    const auto cell =
        st.reg("mode_seq", pnet::mode_transition_stage::seq_cell_of(drill_stream));
    wire::stream_flush_body body;
    body.experiment = drill_stream;
    body.epoch = static_cast<std::uint16_t>(cell >> 48);
    body.next_sequence = cell & 0xffffffffffffull;
    byte_writer w;
    serialize(body, w);
    for (int i = 0; i < 3; ++i) {
        tb.src_stack->send_control(
            tb.rx_host->address(), drill_stream, wire::control_type::stream_flush,
            std::vector<std::uint8_t>(w.view().begin(), w.view().end()));
    }
}
} // namespace

chaos_config kill_revive_config()
{
    chaos_config cfg;
    // Phase A is the classic drill (primary WAN + buf1 die at 2 ms,
    // receiver fails over to buf2). Phase B: buf2 dies, buf1 revives
    // from its archive, and a second wave rides a corruption burst that
    // only the revived buffer can repair.
    cfg.fault2_at = sim_time{25000000};      // 25 ms: blackout buf2
    cfg.revive_at = sim_time{30000000};      // 30 ms: buf1 reloads + re-adverts
    cfg.messages2 = 500;                     // 32..34 ms second wave
    cfg.second_wave_at = sim_time{32000000};
    cfg.burst_at = sim_time{32000000};       // 1 ms of backup-span corruption
    cfg.burst_duration = sim_duration{1000000};
    cfg.burst_ber = 2e-6;
    cfg.flush2_at = sim_time{36000000};
    // failover_attempts stays at the classic 2: phase A must fail over
    // to buf2 (~17 ms) well before buf2 itself dies at 25 ms. A
    // corrupted second-wave retransmission cannot re-fail the stream
    // over to the dead buf2, because the 5 ms NAK retry base puts every
    // second attempt past the 1 ms burst.
    return cfg;
}

std::unique_ptr<chaos_testbed> make_chaos(const chaos_config& cfg)
{
    auto tb = std::make_unique<chaos_testbed>();
    tb->cfg = cfg;
    tb->net = netsim::network(cfg.seed, cfg.shards);
    auto& net = tb->net;
    auto& eng = net.sim();

    // --- topology ---
    // Domains partition the drill for --shards=N: the send side and the
    // control plane stay together (0), the receiver (1) and the fallback
    // buffer (2) each get their own shard. With shards == 1 every domain
    // folds onto the one engine and nothing changes.
    tb->src = &net.add_host("src");
    tb->tofino =
        &net.emplace<pnet::programmable_switch>("tofino", pnet::tofino2_profile());
    net.set_domain(1);
    tb->rx_host = &net.add_host("rx");
    net.set_domain(0);
    tb->buf1 = &net.add_host("buf1");
    net.set_domain(2);
    tb->buf2 = &net.add_host("buf2");
    net.set_domain(0);
    tb->tofino->set_id_source(&net.ids());

    netsim::link_config clean;
    clean.rate = data_rate::from_gbps(100);
    clean.propagation = sim_duration{1000};
    clean.burst = cfg.link_burst;

    netsim::link_config wan;
    wan.rate = cfg.wan_rate;
    wan.propagation = cfg.wan_delay;
    wan.queue_capacity_bytes = cfg.wan_queue_bytes;
    wan.burst = cfg.link_burst;

    const auto [src_uplink_port, _s] = net.connect(*tb->src, *tb->tofino, clean);
    tb->wan_primary_port = net.connect_simplex(*tb->tofino, *tb->rx_host, wan);
    tb->wan_backup_port = net.connect_simplex(*tb->tofino, *tb->rx_host, wan);
    const unsigned nak_return_port =
        net.connect_simplex(*tb->rx_host, *tb->tofino, clean); // NAK return path
    const auto [buf1_feed_port, _a] = net.connect(*tb->tofino, *tb->buf1, clean);
    const auto [buf2_feed_port, buf2_uplink_port] = net.connect(*tb->tofino, *tb->buf2, clean);
    (void)_s;
    (void)_a;

    tb->wan_primary = &tb->tofino->egress(tb->wan_primary_port);
    tb->wan_backup = &tb->tofino->egress(tb->wan_backup_port);
    tb->buf1_feed = &tb->tofino->egress(buf1_feed_port);
    tb->buf2_feed = &tb->tofino->egress(buf2_feed_port);

    // --- observability: flight recorder sites + metrics registry ---
    if (cfg.trace) {
        tb->tracer = std::make_unique<trace::flight_recorder>(cfg.trace_capacity);
        tb->tracer_install = std::make_unique<trace::scoped_recorder>(*tb->tracer);
        auto& tr = *tb->tracer;
        tb->src->egress(src_uplink_port).set_trace_site(tr.site("src-daq"));
        tb->wan_primary->set_trace_site(tr.site("wan-primary"));
        tb->wan_backup->set_trace_site(tr.site("wan-backup"));
        tb->rx_host->egress(nak_return_port).set_trace_site(tr.site("nak-return"));
        tb->buf1_feed->set_trace_site(tr.site("buf1-feed"));
        tb->tofino->egress(buf2_feed_port).set_trace_site(tr.site("buf2-feed"));
        tb->buf2->egress(buf2_uplink_port).set_trace_site(tr.site("buf2-uplink"));
        tb->tofino->state().trace_site = tr.site("tofino");
        // Sharded runs: shard 0 emits into the main ring (inherited from
        // the caller's installed recorder); every other shard gets its
        // own, absorbed into the main ring after the run.
        for (unsigned s = 1; s < net.shard_count(); ++s) {
            tb->shard_tracers.push_back(
                std::make_unique<trace::flight_recorder>(cfg.trace_capacity));
            net.coordinator().set_recorder(s, tb->shard_tracers.back().get());
        }
    }

    net.compute_routes();
    // Pin the admitted path: data leaves the Tofino on the primary span
    // until the control plane says otherwise.
    tb->tofino->add_route(tb->rx_host->address(), tb->wan_primary_port);

    // --- in-network program ---
    tb->mode_stage = std::make_shared<pnet::mode_transition_stage>();
    pnet::mode_rule rule;
    rule.match_any_experiment = true;
    rule.set_bits = wire::feature_bit(wire::feature::sequencing)
        | wire::feature_bit(wire::feature::retransmission)
        | wire::feature_bit(wire::feature::duplication);
    rule.buffer_addr = tb->buf1->address();
    tb->mode_stage->add_rule(rule);

    tb->duplication = std::make_shared<pnet::duplication_stage>();
    tb->duplication->add_subscriber(wire::experiments::iceberg, tb->buf1->address());
    tb->duplication->add_subscriber(wire::experiments::iceberg, tb->buf2->address());

    tb->tofino->add_stage(tb->mode_stage);
    tb->tofino->add_stage(tb->duplication);

    // --- endpoints ---
    tb->src_stack = std::make_unique<core::stack>(*tb->src, net.ids());
    core::sender_config s_cfg;
    s_cfg.max_datagram_payload = cfg.message_bytes;
    tb->tx = std::make_unique<core::sender>(*tb->src_stack, tb->rx_host->address(), s_cfg);

    core::buffer_service_config b1;
    b1.tap_only = true;
    b1.secondary_buffer = tb->buf2->address();
    // buf1 writes through to its modeled disk by default; with the
    // kill-and-revive phase disabled the archive is simply never reread
    // (and persist = false skips the store entirely). A revive always
    // forces the store — there is nothing to reload without one.
    if (cfg.persist || cfg.revive_at.ns > 0) {
        daq::archive_limits persist_limits;
        persist_limits.chunk_records = cfg.persist_chunk_records;
        tb->buf1_store = std::make_unique<dtn::durable_store>(persist_limits);
        b1.persist = tb->buf1_store.get();
    }
    tb->buf1_stack = std::make_unique<core::stack>(*tb->buf1, net.ids());
    tb->buf1_svc = std::make_unique<core::buffer_service>(*tb->buf1_stack, b1);
    tb->buf1_svc->attach_as_sink();

    core::buffer_service_config b2;
    b2.tap_only = true;
    tb->buf2_stack = std::make_unique<core::stack>(*tb->buf2, net.ids_for(2));
    tb->buf2_svc = std::make_unique<core::buffer_service>(*tb->buf2_stack, b2);
    tb->buf2_svc->attach_as_sink();

    tb->rx_stack = std::make_unique<core::stack>(*tb->rx_host, net.ids_for(1));
    core::receiver_config r_cfg;
    r_cfg.nak_retry = cfg.nak_retry;
    r_cfg.nak_retry_cap = cfg.nak_retry_cap;
    r_cfg.max_nak_attempts = cfg.max_nak_attempts;
    r_cfg.failover_attempts = cfg.failover_attempts;
    tb->rx = std::make_unique<core::receiver>(*tb->rx_stack, r_cfg);
    // The fallback buffer is *learned*, not configured: buf1's advert
    // names buf2 as the secondary holding the same streams.
    tb->rx_stack->set_advert_handler([tbp = tb.get()](const wire::buffer_advert_body& a) {
        if (a.secondary_addr != 0) tbp->rx->set_fallback_buffer(a.secondary_addr);
        // A (re-)advertisement also announces the buffer is alive:
        // streams that failed over away from it fail back.
        tbp->rx->note_buffer_available(a.buffer_addr);
    });

    if (tb->tracer) {
        tb->tx->set_trace_site(tb->tracer->site("src"));
        tb->rx->set_trace_site(tb->tracer->site("rx"));
        tb->buf1_svc->set_trace_site(tb->tracer->site("buf1"));
        tb->buf2_svc->set_trace_site(tb->tracer->site("buf2"));
    }

    // --- failure-aware control plane ---
    auto& planner = tb->planner;
    planner.register_link("daq", data_rate::from_gbps(100));
    planner.register_link("wan-primary", cfg.wan_rate);
    planner.register_link("wan-backup", cfg.wan_rate);
    tb->flow = planner.admit({"daq", "wan-primary"}, cfg.planned_rate).value_or(0);
    planner.register_backup_path(tb->flow, {"daq", "wan-backup"});
    planner.set_reroute_handler(
        [tbp = tb.get()](const control::admission& flow, bool rerouted) {
            (void)flow;
            // Data-plane reaction: the re-admitted flow's traffic leaves
            // the Tofino on the backup span from this instant on.
            if (rerouted)
                tbp->tofino->add_route(tbp->rx_host->address(), tbp->wan_backup_port);
        });

    tb->health = std::make_unique<control::health_monitor>(eng, planner);
    tb->health->watch("wan-primary", *tb->wan_primary);
    tb->health->watch("buf1-feed", *tb->buf1_feed);
    tb->health->add_listener(
        [tbp = tb.get()](const control::link_id& id, bool up, sim_time) {
            // The buffer feed going dark means clones toward buf1 are
            // wasted egress capacity: prune the subscription.
            if (id == "buf1-feed" && !up)
                tbp->duplication->remove_subscriber(wire::experiments::iceberg,
                                                    tbp->buf1->address());
        });

    // --- metrics registry: every layer reports into one place ---
    telemetry::register_engine_metrics(tb->metrics, net.coordinator());
    telemetry::register_link_metrics(tb->metrics, "wan-primary", *tb->wan_primary);
    telemetry::register_link_metrics(tb->metrics, "wan-backup", *tb->wan_backup);
    telemetry::register_link_metrics(tb->metrics, "buf1-feed", *tb->buf1_feed);
    telemetry::register_planner_metrics(tb->metrics, planner,
                                        {"daq", "wan-primary", "wan-backup"});
    telemetry::register_health_metrics(tb->metrics, *tb->health);
    telemetry::register_stack_metrics(tb->metrics, "rx", *tb->rx_stack);
    telemetry::register_sender_metrics(tb->metrics, "src", *tb->tx);
    telemetry::register_receiver_metrics(tb->metrics, "rx", *tb->rx);
    telemetry::register_buffer_metrics(tb->metrics, "buf1", *tb->buf1_svc);
    telemetry::register_buffer_metrics(tb->metrics, "buf2", *tb->buf2_svc);

    // --- traffic, advert, flush ---
    daq::steady_source source(drill_stream, cfg.message_bytes, cfg.message_interval,
                              cfg.first_message, cfg.messages);
    tb->messages_scheduled = tb->tx->drive(source);
    if (cfg.messages2 > 0 && cfg.second_wave_at.ns > 0) {
        daq::steady_source wave2(drill_stream, cfg.message_bytes, cfg.message_interval,
                                 cfg.second_wave_at, cfg.messages2);
        tb->messages_scheduled += tb->tx->drive(wave2);
    }

    eng.schedule_at(sim_time{10000},
                    [tbp = tb.get()] { tbp->buf1_svc->advertise(tbp->rx_host->address()); });

    eng.schedule_at(cfg.flush_at, [tbp = tb.get()] { send_flush(*tbp); });
    if (cfg.flush2_at.ns > 0)
        eng.schedule_at(cfg.flush2_at, [tbp = tb.get()] { send_flush(*tbp); });

    // --- the fault script ---
    // Snapshot first (same instant, scheduled earlier => runs earlier):
    // datagrams delivered from here on were delivered despite the fault.
    // The snapshot reads receiver state, so it runs on the receiver's
    // engine (shard 0 — i.e. `eng` — when unsharded).
    net.engine_for(1).schedule_at(cfg.fault_at, [tbp = tb.get()] {
        tbp->datagrams_at_fault = tbp->rx->stats().datagrams;
    });
    tb->faults = std::make_unique<netsim::fault_scheduler>(eng);
    tb->faults->fail_link_at(*tb->wan_primary, cfg.fault_at);
    tb->faults->blackout_node(*tb->buf1, cfg.fault_at);
    // The feed span dies a beat later: until then clones and the first
    // NAK still reach the dead node and are dropped at its ingress.
    tb->faults->fail_link_at(*tb->buf1_feed, cfg.fault_at + cfg.feed_cut_after);

    // --- the kill-and-revive phase (ISSUE 7) ---
    if (cfg.revive_at.ns > 0) {
        // Software dies with the hardware: the blackout becomes a
        // genuine kill (in-memory buffer, counters and repair queue are
        // gone; the durable store drops its unsealed tail), the restore
        // a genuine revive (archive reload + re-advertisement).
        tb->faults->on_blackout(*tb->buf1,
                                [tbp = tb.get()] { tbp->buf1_svc->crash(); });
        tb->faults->on_restore(*tb->buf1, [tbp = tb.get()] {
            tbp->buf1_svc->revive(tbp->rx_host->address());
            // Rejoin the duplication group pruned at the feed cut, so
            // second-wave clones flow into the revived tap.
            tbp->duplication->add_subscriber(wire::experiments::iceberg,
                                             tbp->buf1->address());
        });

        if (cfg.fault2_at.ns > 0) {
            // The secondary dies too: from here on, only the revived
            // primary can answer NAKs.
            tb->faults->blackout_node(*tb->buf2, cfg.fault2_at);
            tb->faults->fail_link_at(*tb->buf2_feed, cfg.fault2_at);
            eng.schedule_at(cfg.fault2_at, [tbp = tb.get()] {
                tbp->duplication->remove_subscriber(wire::experiments::iceberg,
                                                    tbp->buf2->address());
            });
        }

        tb->faults->repair_link_at(*tb->buf1_feed, cfg.revive_at);
        tb->faults->restore_node(*tb->buf1, cfg.revive_at);

        if (cfg.burst_ber > 0 && cfg.burst_duration.ns > 0)
            tb->faults->corruption_burst(*tb->wan_backup, cfg.burst_at,
                                         cfg.burst_duration, cfg.burst_ber);
    }

    // --- recovery measurement ---
    // Both trackers probe receiver-owned state only, so they live on the
    // receiver's engine (identical to `eng` when unsharded).
    tb->recovery = std::make_unique<telemetry::recovery_tracker>(net.engine_for(1),
                                                                 cfg.probe_interval);
    tb->recovery->arm(
        cfg.fault_at,
        [tbp = tb.get()] {
            // Whole again: the stream failed over to the surviving
            // buffer and every known gap has been filled.
            return tbp->rx->stats().buffer_failovers >= 1
                && tbp->rx->outstanding_gaps() == 0;
        },
        cfg.fault_at + cfg.probe_deadline);

    if (cfg.revive_at.ns > 0 && cfg.fault2_at.ns > 0) {
        tb->recovery2 = std::make_unique<telemetry::recovery_tracker>(
            net.engine_for(1), cfg.probe_interval);
        const std::uint64_t total = cfg.messages + cfg.messages2;
        tb->recovery2->arm(
            cfg.fault2_at,
            [tbp = tb.get(), total] {
                // Whole again, the hard way: the stream failed *back* to
                // the revived primary, both waves arrived in full, and
                // no gap is outstanding.
                return tbp->rx->stats().buffer_failbacks >= 1
                    && tbp->rx->stats().datagrams >= total
                    && tbp->rx->outstanding_gaps() == 0;
            },
            cfg.fault2_at + cfg.probe_deadline);
    }

    return tb;
}

chaos_result summarize_chaos(chaos_testbed& tbr)
{
    auto* tb = &tbr;
    const auto& cfg = tb->cfg;
    chaos_result r;
    r.rx = tb->rx->stats();
    r.buf1 = tb->buf1_svc->stats();
    r.buf2 = tb->buf2_svc->stats();
    r.wan_primary = tb->wan_primary->stats();
    r.wan_backup = tb->wan_backup->stats();
    r.planner = tb->planner.stats();
    r.health = tb->health->stats();
    r.faults = tb->faults->stats();
    r.messages_sent = tb->messages_scheduled;
    r.datagrams_at_fault = tb->datagrams_at_fault;
    r.delivered_despite_failure = r.rx.datagrams - tb->datagrams_at_fault;
    r.stranded_in_primary_queue = tb->wan_primary->queue_depth_packets();
    r.buf1_blackout_dropped = tb->buf1->blackout_dropped();
    r.recovered = tb->recovery->recovered();
    r.time_to_recover = tb->recovery->time_to_recover().value_or(sim_duration::zero());
    r.probes = tb->recovery->probes();
    if (tb->recovery2) {
        r.recovered2 = tb->recovery2->recovered();
        r.time_to_recover2 =
            tb->recovery2->time_to_recover().value_or(sim_duration::zero());
        r.probes2 = tb->recovery2->probes();
    }

    auto& t = r.report;
    t.set_columns({"metric", "value"});
    auto row = [&](const char* name, std::uint64_t v) {
        t.add_row({name, telemetry::fmt_count(v)});
    };
    row("messages_sent", r.messages_sent);
    row("datagrams_delivered", r.rx.datagrams);
    row("datagrams_at_fault", r.datagrams_at_fault);
    row("delivered_despite_failure", r.delivered_despite_failure);
    row("duplicates", r.rx.duplicates);
    row("recovered_datagrams", r.rx.recovered);
    row("naks_sent", r.rx.naks_sent);
    row("nak_retries", r.rx.nak_retries);
    row("buffer_failovers", r.rx.buffer_failovers);
    row("given_up", r.rx.given_up);
    row("stranded_in_primary_queue", r.stranded_in_primary_queue);
    row("wan_primary_dropped_down", r.wan_primary.dropped_down);
    row("wan_backup_tx_packets", r.wan_backup.tx_packets);
    row("buf1_stored", r.buf1.relayed);
    row("buf2_stored", r.buf2.relayed);
    row("buf2_retransmitted", r.buf2.retransmitted);
    row("buf1_blackout_dropped", r.buf1_blackout_dropped);
    row("flows_rerouted", r.planner.flows_rerouted);
    row("flows_stranded", r.planner.flows_stranded);
    row("link_downs_observed", r.health.downs_observed);
    row("fault_link_downs", r.faults.link_downs);
    row("fault_node_blackouts", r.faults.node_blackouts);
    row("recovered", r.recovered ? 1 : 0);
    row("time_to_recover_ns",
        static_cast<std::uint64_t>(r.recovered ? r.time_to_recover.ns : 0));
    row("recovery_probes", r.probes);
    // Persistence / kill-and-revive phase (all zero in the classic drill
    // except buf1_persisted, which write-through always accumulates).
    row("buf1_persisted", r.buf1.persisted);
    row("buf1_persist_rejected", r.buf1.persist_rejected);
    row("buf1_crashes", r.buf1.crashes);
    row("buf1_tail_lost", r.buf1.tail_lost);
    row("buf1_recovered_records", r.buf1.recovered_records);
    row("buf1_revivals", r.buf1.revivals);
    row("buf1_retransmitted", r.buf1.retransmitted);
    row("buffer_failbacks", r.rx.buffer_failbacks);
    row("fault_node_restores", r.faults.node_restores);
    row("recovered2", r.recovered2 ? 1 : 0);
    row("time_to_recover2_ns",
        static_cast<std::uint64_t>(r.recovered2 ? r.time_to_recover2.ns : 0));
    row("recovery2_probes", r.probes2);
    r.csv = t.csv();

    r.metrics_csv = tb->metrics.to_csv();

    // Pick the first sequence the fallback buffer re-sent and render its
    // whole journey — the drill's proof that recovery crossed the backup
    // plane ("this message traversed the backup span after the fault").
    if (tb->tracer) {
        auto& tr = *tb->tracer;
        // Sharded runs recorded each shard into its own ring; join them
        // (in shard order — deterministic) before chasing the timeline.
        for (auto& shard_tr : tb->shard_tracers) tr.absorb(*shard_tr);
        tb->shard_tracers.clear();
        const auto buf2_site = tr.site("buf2");
        for (const auto& ev : tr.events()) {
            if (ev.kind == trace::hop::mmtp_retransmit && ev.site == buf2_site) {
                r.traced_sequence = ev.arg;
                break;
            }
        }
        if (r.traced_sequence != std::uint64_t(-1)) {
            r.hop_timeline = tr.format_timeline(tr.message_timeline(r.traced_sequence));
            r.traversed_backup =
                tr.traversed(r.traced_sequence, tr.site("wan-backup"), cfg.fault_at.ns);
        }
    }

    // Capture the finished run into an archive blob for replay. Strictly
    // post-run: the engine is idle, so recording cannot perturb the
    // simulation it records.
    if (cfg.record) {
        telemetry::run_recorder rec("chaos", cfg.seed);
        if (tb->tracer) rec.capture_trace(*tb->tracer);
        rec.capture_metrics(tb->metrics);
        rec.capture_report(r.csv);
        r.recording = rec.finalize();
    }
    return r;
}

chaos_result run_chaos_drill(const chaos_config& cfg)
{
    auto tb = make_chaos(cfg);
    tb->net.coordinator().run();
    return summarize_chaos(*tb);
}

} // namespace mmtp::scenario
