#include "scenario/overload.hpp"

#include "daq/message.hpp"

namespace mmtp::scenario {

namespace {
/// The drill's one stream: the ICEBERG experiment, slice 0.
constexpr wire::experiment_id drill_stream =
    wire::make_experiment_id(wire::experiments::iceberg, 0);
} // namespace

std::unique_ptr<overload_testbed> make_overload(const overload_config& cfg)
{
    auto tb = std::make_unique<overload_testbed>();
    tb->cfg = cfg;
    tb->net = netsim::network(cfg.seed, cfg.shards);
    auto& net = tb->net;
    auto& eng = net.sim();

    // --- topology ---
    tb->src = &net.add_host("src");
    tb->tofino =
        &net.emplace<pnet::programmable_switch>("tofino", pnet::tofino2_profile());
    tb->rx_host = &net.add_host("rx");
    tb->buf = &net.add_host("buf");
    tb->tofino->set_id_source(&net.ids());

    netsim::link_config clean;
    clean.rate = data_rate::from_gbps(100);
    clean.propagation = sim_duration{1000};
    clean.burst = cfg.link_burst;

    netsim::link_config wan;
    wan.rate = cfg.wan_rate;
    wan.propagation = cfg.wan_delay;
    wan.burst = cfg.link_burst;
    // The backpressure stage scales severity over [low watermark, this].
    wan.queue_capacity_bytes = cfg.band_bytes;

    const auto [src_uplink_port, _s] = net.connect(*tb->src, *tb->tofino, clean);
    // The WAN egress runs the MMTP-aware priority queue: deadline traffic
    // and control in band 0 (with deadline-aware shedding), bulk — which
    // includes buf's retransmissions — in band 1, never shed.
    auto pq = std::make_unique<netsim::priority_queue_disc>(
        pnet::timeliness_bands, cfg.band_bytes, pnet::timeliness_band_of,
        pnet::timeliness_slack_of);
    tb->wan_queue = pq.get();
    tb->wan_port = net.connect_simplex(*tb->tofino, *tb->rx_host, wan, std::move(pq));
    const unsigned nak_return_port =
        net.connect_simplex(*tb->rx_host, *tb->tofino, clean); // NAK return path
    const auto [buf_feed_port, buf_uplink_port] = net.connect(*tb->tofino, *tb->buf, clean);
    (void)_s;

    tb->wan = &tb->tofino->egress(tb->wan_port);

    // --- observability: flight recorder sites + metrics registry ---
    if (cfg.trace) {
        tb->tracer = std::make_unique<trace::flight_recorder>(cfg.trace_capacity);
        tb->tracer_install = std::make_unique<trace::scoped_recorder>(*tb->tracer);
        auto& tr = *tb->tracer;
        tb->src->egress(src_uplink_port).set_trace_site(tr.site("src-daq"));
        tb->wan->set_trace_site(tr.site("wan"));
        tb->rx_host->egress(nak_return_port).set_trace_site(tr.site("nak-return"));
        tb->tofino->egress(buf_feed_port).set_trace_site(tr.site("buf-feed"));
        tb->buf->egress(buf_uplink_port).set_trace_site(tr.site("buf-uplink"));
        tb->tofino->state().trace_site = tr.site("tofino");
        // The link only records tail drops itself; shed evictions get
        // their own drop record so a timeline shows *why* a sequence
        // needed recovery.
        tb->wan_queue->set_shed_observer(
            [&eng, site = tr.site("wan")](const netsim::packet& p, unsigned) {
                trace::emit(eng.now(), site, trace::hop::link_drop, p.id, p.wire_size(),
                            trace::reason::deadline_shed);
            });
    }

    net.compute_routes();

    // --- in-network program ---
    // The mode rule requires the backpressure bit, which only the
    // source's origin mode carries: buf's retransmissions keep their
    // plain (deadline-free) mode, ride band 1 and are never shed — a
    // recovered copy must not lose a second race it already lost.
    tb->mode_stage = std::make_shared<pnet::mode_transition_stage>();
    pnet::mode_rule rule;
    rule.match_any_experiment = true;
    rule.require_bits = wire::feature_bit(wire::feature::backpressure);
    rule.set_bits = wire::feature_bit(wire::feature::sequencing)
        | wire::feature_bit(wire::feature::retransmission)
        | wire::feature_bit(wire::feature::timeliness)
        | wire::feature_bit(wire::feature::duplication);
    rule.buffer_addr = tb->buf->address();
    rule.deadline_us = cfg.deadline_us;
    tb->mode_stage->add_rule(rule);

    auto duplication = std::make_shared<pnet::duplication_stage>();
    duplication->add_subscriber(wire::experiments::iceberg, tb->buf->address());

    pnet::backpressure_config bp;
    bp.low_watermark_bytes = cfg.bp_low_bytes;
    bp.high_watermark_bytes = cfg.bp_high_bytes;
    bp.min_interval = cfg.bp_min_interval;
    bp.level_bands = cfg.bp_level_bands;
    tb->bp_stage = std::make_shared<pnet::backpressure_stage>(*tb->tofino, bp);

    tb->tofino->add_stage(tb->mode_stage);
    tb->tofino->add_stage(std::make_shared<pnet::age_update_stage>());
    tb->tofino->add_stage(duplication);
    tb->tofino->add_stage(tb->bp_stage);

    // --- endpoints ---
    tb->src_stack = std::make_unique<core::stack>(*tb->src, net.ids());
    core::sender_config s_cfg;
    s_cfg.origin_mode.set(wire::feature::backpressure);
    s_cfg.max_datagram_payload = cfg.message_bytes;
    s_cfg.pace = cfg.pace;
    s_cfg.min_pace_fraction = cfg.min_pace_fraction;
    s_cfg.backpressure_hold = cfg.backpressure_hold;
    s_cfg.recovery_step_fraction = cfg.recovery_step_fraction;
    s_cfg.recovery_interval = cfg.recovery_interval;
    tb->tx = std::make_unique<core::sender>(*tb->src_stack, tb->rx_host->address(), s_cfg);

    core::buffer_service_config b;
    b.tap_only = true;
    b.buffer.capacity_bytes = cfg.buffer_capacity_bytes;
    b.buffer.retention = cfg.buffer_retention;
    b.occupancy_high_bytes = cfg.occupancy_high_bytes;
    b.occupancy_low_bytes = cfg.occupancy_low_bytes;
    b.retransmit_pace = cfg.retransmit_pace;
    tb->buf_stack = std::make_unique<core::stack>(*tb->buf, net.ids());
    tb->buf_svc = std::make_unique<core::buffer_service>(*tb->buf_stack, b);
    tb->buf_svc->attach_as_sink();

    tb->rx_stack = std::make_unique<core::stack>(*tb->rx_host, net.ids());
    core::receiver_config r_cfg;
    r_cfg.nak_retry = cfg.nak_retry;
    r_cfg.nak_retry_cap = cfg.nak_retry_cap;
    r_cfg.max_nak_attempts = cfg.max_nak_attempts;
    tb->rx = std::make_unique<core::receiver>(*tb->rx_stack, r_cfg);

    if (tb->tracer) {
        tb->tx->set_trace_site(tb->tracer->site("src"));
        tb->rx->set_trace_site(tb->tracer->site("rx"));
        tb->buf_svc->set_trace_site(tb->tracer->site("buf"));
        tb->src_stack->set_trace_site(tb->tracer->site("src"));
        tb->rx_stack->set_trace_site(tb->tracer->site("rx"));
        tb->buf_stack->set_trace_site(tb->tracer->site("buf"));
    }

    // --- overload-aware control plane ---
    auto& planner = tb->planner;
    planner.register_link("daq", data_rate::from_gbps(100));
    planner.register_link("wan", cfg.wan_rate);
    planner.register_link("dtn-storage", data_rate::from_gbps(40));
    tb->flow = planner.admit({"daq", "wan", "dtn-storage"}, cfg.planned_rate).value_or(0);

    // Storage watermarks gate the planner: while buf's occupancy is
    // between the high and low marks no *new* flow may book the DTN.
    tb->buf_svc->set_pressure_handler(
        [tbp = tb.get()](bool engaged, std::uint64_t /*bytes_used*/) {
            tbp->planner.set_admissible("dtn-storage", !engaged);
        });

    // A second flow asks for storage mid-overload: deferred while the
    // gate is closed, admitted automatically when retention decay
    // releases the pressure.
    eng.schedule_at(cfg.second_flow_at, [tbp = tb.get(), &eng] {
        const auto id = tbp->planner.admit_or_defer(
            {"daq", "dtn-storage"}, tbp->cfg.second_flow_rate,
            [tbp, &eng](control::flow_id) { tbp->second_flow_admitted_at = eng.now(); });
        if (id) tbp->second_flow_admitted_at = eng.now();
    });

    // Retention decay only shows at the next store; poll so pressure can
    // release after the load stops (bounded by poll_until).
    tb->pressure_poll = [tbp = tb.get(), &eng] {
        tbp->buf_svc->poll_pressure();
        if (eng.now().ns >= tbp->cfg.poll_until.ns) return;
        eng.schedule_in(tbp->cfg.pressure_poll, [tbp] { tbp->pressure_poll(); });
    };
    eng.schedule_at(cfg.first_message, [tbp = tb.get()] { tbp->pressure_poll(); });

    // --- metrics registry: every layer reports into one place ---
    telemetry::register_engine_metrics(tb->metrics, eng);
    telemetry::register_link_metrics(tb->metrics, "wan", *tb->wan);
    telemetry::register_priority_queue_metrics(tb->metrics, "wan", *tb->wan_queue);
    telemetry::register_planner_metrics(tb->metrics, planner,
                                        {"daq", "wan", "dtn-storage"});
    telemetry::register_stack_metrics(tb->metrics, "src", *tb->src_stack);
    telemetry::register_stack_metrics(tb->metrics, "rx", *tb->rx_stack);
    telemetry::register_sender_metrics(tb->metrics, "src", *tb->tx);
    telemetry::register_receiver_metrics(tb->metrics, "rx", *tb->rx);
    telemetry::register_buffer_metrics(tb->metrics, "buf", *tb->buf_svc);

    // --- traffic and end-of-stream flush ---
    daq::steady_source source(drill_stream, cfg.message_bytes, cfg.message_interval,
                              cfg.first_message, cfg.messages);
    tb->messages_scheduled = tb->tx->drive(source);

    // The sender drains late (AIMD holds it below the offered rate), so
    // the flush marker waits for the drain instead of a fixed instant:
    // sequence numbers were assigned in-network, so the marker reads the
    // Tofino's own counter. Three copies cross the WAN like everything
    // else.
    tb->flush_watch = [tbp = tb.get(), &eng] {
        if (tbp->flush_sent) return;
        if (tbp->tx->stats().datagrams < tbp->messages_scheduled) {
            eng.schedule_in(tbp->cfg.flush_check, [tbp] { tbp->flush_watch(); });
            return;
        }
        tbp->flush_sent = true;
        auto& st = tbp->tofino->state();
        st.create_register("mode_seq", pnet::mode_transition_stage::seq_register_cells);
        const auto cell = st.reg(
            "mode_seq", pnet::mode_transition_stage::seq_cell_of(drill_stream));
        wire::stream_flush_body body;
        body.experiment = drill_stream;
        body.epoch = static_cast<std::uint16_t>(cell >> 48);
        body.next_sequence = cell & 0xffffffffffffull;
        byte_writer w;
        serialize(body, w);
        for (int i = 0; i < 3; ++i) {
            tbp->src_stack->send_control(tbp->rx_host->address(), drill_stream,
                                         wire::control_type::stream_flush,
                                         std::vector<std::uint8_t>(w.view().begin(),
                                                                   w.view().end()));
        }
    };
    const sim_time load_end{cfg.first_message.ns
                            + static_cast<std::int64_t>(cfg.messages)
                                * cfg.message_interval.ns};
    eng.schedule_at(load_end, [tbp = tb.get()] { tbp->flush_watch(); });

    // --- recovery measurement ---
    // Whole again: the sender drained and recovered its pace, the flush
    // went out, and every gap the receiver knows about has been filled.
    tb->recovery = std::make_unique<telemetry::recovery_tracker>(eng, cfg.probe_interval);
    tb->recovery->arm(
        load_end,
        [tbp = tb.get()] {
            return tbp->flush_sent
                && tbp->tx->stats().datagrams >= tbp->messages_scheduled
                && !tbp->tx->suppressed() && tbp->rx->outstanding_gaps() == 0;
        },
        load_end + cfg.probe_deadline);

    return tb;
}

overload_result summarize_overload(overload_testbed& tbr)
{
    auto* tb = &tbr;
    overload_result r;
    r.tx = tb->tx->stats();
    r.rx = tb->rx->stats();
    r.buf = tb->buf_svc->stats();
    r.wan = tb->wan->stats();
    r.wan_queue = tb->wan_queue->stats();
    r.planner = tb->planner.stats();
    r.messages_sent = tb->messages_scheduled;
    r.band0_dropped = tb->wan_queue->band_dropped(0);
    r.band0_shed = tb->wan_queue->band_shed(0);
    r.band1_dropped = tb->wan_queue->band_dropped(1);
    const auto& st = tb->tofino->state();
    r.bp_engagements = st.counter("backpressure_engagements");
    r.bp_escalations = st.counter("backpressure_escalations");
    r.bp_suppressed = st.counter("backpressure_suppressed");
    r.bp_signals = st.counter("backpressure_signals");
    // Every shed/dropped band-0 packet was a deadline original (control
    // is never shed and would be the only other band-0 occupant); its
    // recovered copy carries no deadline, so the sum never counts a
    // message twice.
    r.missed_deadline = r.rx.aged_on_arrival + r.band0_shed + r.band0_dropped;
    r.miss_ppm =
        r.messages_sent ? (r.missed_deadline * 1000000ull) / r.messages_sent : 0;
    r.final_pace_bps = tb->tx->effective_pace().bits_per_sec;
    r.pace_recovered = !tb->tx->suppressed();
    r.pressure_engagements = r.buf.pressure_engagements;
    r.pressure_releases = r.buf.pressure_releases;
    r.second_flow_deferred = r.planner.admissions_deferred > 0;
    r.second_flow_admitted = tb->second_flow_admitted_at.ns != 0;
    r.second_flow_admitted_at = tb->second_flow_admitted_at;
    r.recovered = tb->recovery->recovered();
    r.time_to_recover = tb->recovery->time_to_recover().value_or(sim_duration::zero());
    r.probes = tb->recovery->probes();

    auto& t = r.report;
    t.set_columns({"metric", "value"});
    auto row = [&](const char* name, std::uint64_t v) {
        t.add_row({name, telemetry::fmt_count(v)});
    };
    row("messages_sent", r.messages_sent);
    row("datagrams_delivered", r.rx.datagrams);
    row("duplicates", r.rx.duplicates);
    row("recovered_datagrams", r.rx.recovered);
    row("naks_sent", r.rx.naks_sent);
    row("nak_retries", r.rx.nak_retries);
    row("given_up", r.rx.given_up);
    row("aged_on_arrival", r.rx.aged_on_arrival);
    row("band0_shed", r.band0_shed);
    row("band0_dropped", r.band0_dropped);
    row("band1_dropped", r.band1_dropped);
    row("missed_deadline", r.missed_deadline);
    row("miss_ppm", r.miss_ppm);
    row("bp_engagements", r.bp_engagements);
    row("bp_escalations", r.bp_escalations);
    row("bp_signals", r.bp_signals);
    row("bp_suppressed", r.bp_suppressed);
    row("sender_signals_honored", r.tx.backpressure_signals);
    row("sender_bp_decreases", r.tx.bp_decreases);
    row("sender_bp_floor_hits", r.tx.bp_floor_hits);
    row("sender_recovery_steps", r.tx.bp_recovery_steps);
    row("sender_recoveries", r.tx.bp_recoveries);
    row("sender_suppressed_ns", r.tx.suppressed_ns);
    row("final_pace_bps", r.final_pace_bps);
    row("pace_recovered", r.pace_recovered ? 1 : 0);
    row("buf_stored", r.buf.relayed);
    row("buf_retransmitted", r.buf.retransmitted);
    row("buf_unavailable", r.buf.unavailable);
    row("buf_retransmit_dedup", r.buf.retransmit_dedup);
    row("buf_retransmit_queue_peak", r.buf.retransmit_queue_peak);
    row("pressure_engagements", r.pressure_engagements);
    row("pressure_releases", r.pressure_releases);
    row("pressure_signals", r.buf.pressure_signals);
    row("second_flow_deferred", r.second_flow_deferred ? 1 : 0);
    row("second_flow_admitted", r.second_flow_admitted ? 1 : 0);
    row("second_flow_admitted_at_ns",
        static_cast<std::uint64_t>(r.second_flow_admitted_at.ns));
    row("planner_admissions_denied_pressure", r.planner.admissions_denied_pressure);
    row("recovered", r.recovered ? 1 : 0);
    row("time_to_recover_ns",
        static_cast<std::uint64_t>(r.recovered ? r.time_to_recover.ns : 0));
    row("recovery_probes", r.probes);
    r.csv = t.csv();

    r.metrics_csv = tb->metrics.to_csv();

    // Tell the first shed packet's story: its eviction at the WAN egress,
    // the NAK, and the recovered copy arriving from buf.
    if (tb->tracer) {
        auto& tr = *tb->tracer;
        const auto wan_site = tr.site("wan");
        std::uint64_t shed_pid = 0;
        for (const auto& ev : tr.events()) {
            if (ev.kind == trace::hop::link_drop && ev.site == wan_site
                && ev.why == trace::reason::deadline_shed) {
                shed_pid = ev.packet_id;
                break;
            }
        }
        if (shed_pid != 0) {
            for (const auto& ev : tr.events()) {
                if (ev.kind == trace::hop::sw_seq_insert && ev.packet_id == shed_pid) {
                    r.traced_sequence = ev.arg;
                    break;
                }
            }
        }
        if (r.traced_sequence != std::uint64_t(-1))
            r.hop_timeline = tr.format_timeline(tr.message_timeline(r.traced_sequence));
    }
    return r;
}

overload_result run_overload_drill(const overload_config& cfg)
{
    auto tb = make_overload(cfg);
    tb->net.coordinator().run();
    return summarize_overload(*tb);
}

} // namespace mmtp::scenario
