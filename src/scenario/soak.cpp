#include "scenario/soak.hpp"

#include "daq/message.hpp"

#include <algorithm>

namespace mmtp::scenario {

namespace {

/// Short labels for hosts and metric labels (Table 1 order, matching
/// daq::table1_profiles()).
constexpr const char* slugs[soak_experiments] = {"cms", "dune", "ecce", "mu2e",
                                                 "rubin"};

/// One slice stream's emission chain: each event sends one message and
/// schedules the next. A soak-scale run must NOT pre-schedule all of
/// its messages (a million closures parked in the heap before t=0);
/// the chain keeps exactly one pending event per live stream.
void schedule_stream_emission(soak_testbed* tb, std::size_t exp_idx,
                              wire::experiment_id stream, sim_time at,
                              std::uint64_t seq, std::uint64_t remaining)
{
    if (remaining == 0) return;
    tb->net.sim().schedule_at(at, [tb, exp_idx, stream, at, seq, remaining] {
        daq::daq_message m;
        m.experiment = stream;
        m.sequence = seq;
        m.timestamp_ns = static_cast<std::uint64_t>(at.ns);
        m.size_bytes = tb->cfg.message_bytes; // virtual bulk, no inline bytes
        tb->senders[exp_idx]->send_message(m);
        const sim_duration gap = tb->cfg.experiment_interval[exp_idx].ns != 0
            ? tb->cfg.experiment_interval[exp_idx]
            : tb->cfg.message_interval;
        schedule_stream_emission(tb, exp_idx, stream, at + gap, seq + 1,
                                 remaining - 1);
    });
}

/// Admission/teardown churn: one short-lived transfer request per tick,
/// held for churn_hold then released. Requests refused only by the
/// storage-pressure gate park in the planner's deferred queue and are
/// admitted (FIFO) when the gate reopens — their hold starts then.
/// Releasing a flow the planner already evicted (stranded when the
/// primary span died) is a harmless no-op.
void schedule_churn_tick(soak_testbed* tb, sim_time at)
{
    if (at.ns >= tb->cfg.churn_until.ns) return;
    tb->net.sim().schedule_at(at, [tb, at] {
        tb->churn_requests++;
        auto hold_then_release = [tb](control::flow_id fid) {
            tb->net.sim().schedule_in(tb->cfg.churn_hold, [tb, fid] {
                tb->planner.release(fid);
                tb->churn_released++;
            });
        };
        if (auto fid = tb->planner.admit_or_defer({"daq", "wan-primary"},
                                                  tb->cfg.churn_rate,
                                                  hold_then_release))
            hold_then_release(*fid);
        schedule_churn_tick(tb, at + tb->cfg.churn_interval);
    });
}

/// DTN1 occupancy sweep: decays retention, re-evaluates the watermarks
/// (pressure releases between stores only because of this), and prunes
/// expired signal-suppression records.
void schedule_pressure_poll(soak_testbed* tb, sim_time at)
{
    if (at.ns > tb->cfg.end_at.ns) return;
    tb->net.sim().schedule_at(at, [tb, at] {
        tb->dtn1_svc->poll_pressure();
        schedule_pressure_poll(tb, at + tb->cfg.pressure_poll);
    });
}

/// Receiver stream retirement: completed streams idle past the horizon
/// are dropped so per-stream state does not accumulate over a long run.
/// Prune mutates receiver state, so the chain runs on the receiver's
/// engine (the one engine when unsharded).
void schedule_prune(soak_testbed* tb, sim_time at)
{
    if (at.ns > tb->cfg.end_at.ns) return;
    tb->net.engine_for(1).schedule_at(at, [tb, at] {
        tb->rx->prune_idle(tb->cfg.prune_idle_after);
        schedule_prune(tb, at + tb->cfg.prune_interval);
    });
}

} // namespace

soak_config soak_smoke_config()
{
    soak_config cfg;
    // Same topology, storm script and control plane; 5 × 4 × 500 =
    // 10 000 messages stretched over the same ~100 ms span so every
    // storm window still lands mid-traffic.
    cfg.messages_per_stream = 500;
    cfg.message_interval = sim_duration{200000}; // 200 us -> ~410 Mbps
    // Rescale the DTN1 watermarks to the smaller footprint (steady
    // occupancy ~1 MB at the 20 ms retention) so pressure still engages
    // and gates the churn...
    cfg.occupancy_high_bytes = 768ull * 1024;
    cfg.occupancy_low_bytes = 256ull * 1024;
    // ...and the burst BERs so the loss triggers still clear threshold
    // (~100 packets per poll, roughly a third corrupted during a burst).
    cfg.burst1_ber = 1e-4;
    cfg.burst2_ber = 1e-4;
    cfg.churn_interval = sim_duration{500000}; // ~180 churn admissions
    // Archive chunks are per-slice datasets; at ~150 records per slice
    // before the DTN2 kill, a 256-record chunk never seals and the
    // crash would lose everything. 32-record chunks keep the revive
    // meaningful at smoke scale.
    cfg.persist_chunk_records = 32;
    return cfg;
}

std::unique_ptr<soak_testbed> make_soak(const soak_config& cfg)
{
    auto tb = std::make_unique<soak_testbed>();
    tb->cfg = cfg;
    tb->net = netsim::network(cfg.seed, cfg.shards);
    auto& net = tb->net;
    auto& eng = net.sim();
    const auto& profiles = daq::table1_profiles();

    // --- topology ---
    // Domains partition the soak for --shards=N: the whole send side and
    // the control plane stay together (0), the receiver (1) and the
    // duplication-fed DTN2 tap (2) each get their own shard. With
    // shards == 1 every domain folds onto the one engine.
    for (std::size_t i = 0; i < soak_experiments; ++i)
        tb->sensors[i] = &net.add_host(slugs[i]);
    tb->dtn1 = &net.add_host("dtn1");
    net.set_domain(2);
    tb->dtn2 = &net.add_host("dtn2");
    net.set_domain(0);
    tb->tofino =
        &net.emplace<pnet::programmable_switch>("tofino", pnet::tofino2_profile());
    net.set_domain(1);
    tb->rx_host = &net.add_host("rx");
    net.set_domain(0);
    tb->tofino->set_id_source(&net.ids());

    netsim::link_config clean;
    clean.rate = data_rate::from_gbps(100);
    clean.propagation = sim_duration{1000};
    clean.burst = cfg.link_burst;

    netsim::link_config wan;
    wan.rate = cfg.wan_rate;
    wan.propagation = cfg.wan_delay;
    wan.queue_capacity_bytes = cfg.wan_queue_bytes;
    wan.burst = cfg.link_burst;

    for (std::size_t i = 0; i < soak_experiments; ++i)
        net.connect(*tb->sensors[i], *tb->dtn1, clean);
    net.connect(*tb->dtn1, *tb->tofino, clean);
    tb->wan_primary_port = net.connect_simplex(*tb->tofino, *tb->rx_host, wan);
    tb->wan_backup_port = net.connect_simplex(*tb->tofino, *tb->rx_host, wan);
    netsim::link_config wan_return = clean;
    wan_return.propagation = cfg.wan_delay;
    net.connect_simplex(*tb->rx_host, *tb->tofino, wan_return); // NAK return
    const auto [dtn2_feed_port, dtn2_uplink_port] =
        net.connect(*tb->tofino, *tb->dtn2, clean);
    (void)dtn2_uplink_port;

    tb->wan_primary = &tb->tofino->egress(tb->wan_primary_port);
    tb->wan_backup = &tb->tofino->egress(tb->wan_backup_port);
    tb->dtn2_feed = &tb->tofino->egress(dtn2_feed_port);

    net.compute_routes();
    // Pin the admitted path: data leaves the Tofino on the primary span
    // until the control plane says otherwise.
    tb->tofino->add_route(tb->rx_host->address(), tb->wan_primary_port);

    // --- in-network program ---
    // One mode stage per experiment. Each stage is programmed by its own
    // policy engine, so retire_epoch (which removes by epoch number
    // alone) can only ever touch that experiment's rules — five engines
    // minting epochs independently cannot collide.
    for (auto& stage : tb->mode_stages) {
        stage = std::make_shared<pnet::mode_transition_stage>();
        tb->tofino->add_stage(stage);
    }
    // Engine-compiled plans do not speak duplication, so a static,
    // epoch-agnostic rule marks every data packet after its engine stage
    // has sequenced it; the duplication stage then clones it (sequencing
    // intact) into the DTN2 tap.
    auto dup_mark = std::make_shared<pnet::mode_transition_stage>();
    {
        pnet::mode_rule mark;
        mark.match_any_experiment = true;
        mark.set_bits = wire::feature_bit(wire::feature::duplication);
        dup_mark->add_rule(mark);
    }
    tb->tofino->add_stage(dup_mark);
    tb->duplication = std::make_shared<pnet::duplication_stage>();
    for (const auto& p : profiles)
        tb->duplication->add_subscriber(p.experiment, tb->dtn2->address());
    tb->tofino->add_stage(tb->duplication);
    tb->tofino->add_stage(std::make_shared<pnet::age_update_stage>());

    // --- failure-aware capacity plan: five trunks + churn target ---
    auto& planner = tb->planner;
    planner.register_link("daq", data_rate::from_gbps(100));
    planner.register_link("wan-primary", cfg.wan_rate);
    planner.register_link("wan-backup", cfg.wan_rate);
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        tb->trunks[i] =
            planner.admit({"daq", "wan-primary"}, cfg.trunk_rate).value_or(0);
        planner.register_backup_path(tb->trunks[i], {"daq", "wan-backup"});
    }
    planner.set_reroute_handler(
        [tbp = tb.get()](const control::admission&, bool rerouted) {
            // Data-plane reaction, once per rerouted trunk (idempotent):
            // traffic leaves on the backup span from this instant on.
            if (rerouted)
                tbp->tofino->add_route(tbp->rx_host->address(),
                                       tbp->wan_backup_port);
        });

    tb->health = std::make_unique<control::health_monitor>(eng, planner);
    tb->health->watch("wan-primary", *tb->wan_primary);

    // --- five closed-loop policy engines over one shared element ---
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        control::resource_map rmap;
        rmap.add({control::resource_kind::retransmission_buffer,
                  tb->dtn1->address(), "dtn1-buffer", cfg.dtn1_capacity_bytes,
                  cfg.dtn1_retention, "facility"});
        rmap.add({control::resource_kind::programmable_switch,
                  tb->tofino->address(), "tofino", 0, sim_duration::zero(),
                  "facility"});

        control::policy_inputs pin;
        pin.experiment = profiles[i].experiment;
        pin.segments = {
            {control::path_segment::kind::daq, sim_duration{1000},
             data_rate::from_gbps(100), false, 0},
            {control::path_segment::kind::wan, cfg.wan_delay, cfg.wan_rate, true,
             tb->tofino->address()},
        };
        pin.recovery_buffer = tb->dtn1->address();

        control::policy_engine_config pe_cfg;
        pe_cfg.preset = cfg.policy;
        pe_cfg.inputs = pin;
        pe_cfg.poll_interval = cfg.poll_interval;
        pe_cfg.poll_until = cfg.end_at;
        pe_cfg.drain_window = cfg.drain_window;
        pe_cfg.loss_degrade_threshold = cfg.loss_degrade_threshold;
        pe_cfg.restore_after_clean_polls = cfg.restore_after_clean_polls;
        tb->engines[i] =
            std::make_unique<control::policy_engine>(eng, rmap, pe_cfg);
        tb->engines[i]->attach_element(*tb->tofino, tb->mode_stages[i]);
        // Watch both spans: the storm degrades the primary first and the
        // backup (by then the active path) later.
        tb->engines[i]->watch_loss(*tb->wan_primary);
        tb->engines[i]->watch_loss(*tb->wan_backup);
        tb->engines[i]->subscribe_health(*tb->health);
        tb->engines[i]->start(); // epoch 0: this experiment's baseline
    }

    // --- endpoints ---
    // DTN1: the shared on-path buffer/relay for all five experiments,
    // with storage-pressure watermarks gating planner admissions.
    tb->dtn1_stack = std::make_unique<core::stack>(*tb->dtn1, net.ids());
    core::buffer_service_config b1;
    b1.next_hop = tb->rx_host->address();
    b1.buffer.capacity_bytes = cfg.dtn1_capacity_bytes;
    b1.buffer.retention = cfg.dtn1_retention;
    b1.secondary_buffer = tb->dtn2->address();
    b1.occupancy_high_bytes = cfg.occupancy_high_bytes;
    b1.occupancy_low_bytes = cfg.occupancy_low_bytes;
    b1.timing.hold = cfg.pressure_hold;
    tb->dtn1_svc = std::make_unique<core::buffer_service>(*tb->dtn1_stack, b1);
    tb->dtn1_svc->attach_as_sink();
    tb->dtn1_svc->set_pressure_handler(
        [tbp = tb.get()](bool engaged, std::uint64_t) {
            // Storage pressure closes the shared DAQ link for *new*
            // admissions; existing flows keep their budgets. Deferred
            // churn requests drain (FIFO) when this reopens.
            tbp->planner.set_admissible("daq", !engaged);
        });

    // DTN2: duplication-fed tap with a durable store; killed and
    // revived mid-run by the storm.
    tb->dtn2_stack = std::make_unique<core::stack>(*tb->dtn2, net.ids_for(2));
    core::buffer_service_config b2;
    b2.tap_only = true;
    daq::archive_limits persist_limits;
    persist_limits.chunk_records = cfg.persist_chunk_records;
    tb->dtn2_store = std::make_unique<dtn::durable_store>(persist_limits);
    b2.persist = tb->dtn2_store.get();
    tb->dtn2_svc = std::make_unique<core::buffer_service>(*tb->dtn2_stack, b2);
    tb->dtn2_svc->attach_as_sink();

    // One receiver terminates all five experiments' slices. The NAK
    // retry base follows the compiled suggestion (identical for all
    // five engines: same path), floored at 4 ms so a retry can never
    // race its own in-flight retransmission into a duplicate.
    tb->rx_stack = std::make_unique<core::stack>(*tb->rx_host, net.ids_for(1));
    core::receiver_config r_cfg;
    r_cfg.timing.retry_base = sim_duration{std::max<std::int64_t>(
        tb->engines[0]->current().suggested_nak_retry.ns, 4000000)};
    r_cfg.timing.retry_cap = sim_duration{16000000};
    r_cfg.timing.max_attempts = cfg.max_nak_attempts;
    r_cfg.timing.failover_attempts = cfg.failover_attempts;
    tb->rx = std::make_unique<core::receiver>(*tb->rx_stack, r_cfg);
    tb->rx->set_on_datagram([tbp = tb.get()](const core::delivered_datagram& d) {
        tbp->delivered_by_experiment[wire::experiment_of(d.hdr.experiment)]++;
    });
    tb->rx_stack->set_advert_handler(
        [tbp = tb.get()](const wire::buffer_advert_body& a) {
            if (a.secondary_addr != 0) tbp->rx->set_fallback_buffer(a.secondary_addr);
            tbp->rx->note_buffer_available(a.buffer_addr);
        });

    // Sensors: one sender per experiment, origin mode stamped by that
    // experiment's engine (epoch 0 now; every install re-stamps it).
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        tb->sensor_stacks[i] =
            std::make_unique<core::stack>(*tb->sensors[i], net.ids());
        core::sender_config s_cfg;
        s_cfg.origin_mode = tb->engines[i]->current().origin_mode;
        s_cfg.max_datagram_payload = cfg.message_bytes;
        tb->senders[i] = std::make_unique<core::sender>(
            *tb->sensor_stacks[i], tb->dtn1->address(), s_cfg);
        tb->engines[i]->set_origin_handler(
            [tbp = tb.get(), i](const control::compiled_policy&, wire::mode m) {
                tbp->senders[i]->set_origin_mode(m);
            });
    }

    // --- metrics registry: every layer reports into one place ---
    telemetry::register_engine_metrics(tb->metrics, net.coordinator());
    telemetry::register_link_metrics(tb->metrics, "wan-primary", *tb->wan_primary);
    telemetry::register_link_metrics(tb->metrics, "wan-backup", *tb->wan_backup);
    telemetry::register_link_metrics(tb->metrics, "dtn2-feed", *tb->dtn2_feed);
    telemetry::register_planner_metrics(tb->metrics, planner,
                                        {"daq", "wan-primary", "wan-backup"});
    telemetry::register_health_metrics(tb->metrics, *tb->health);
    telemetry::register_element_metrics(tb->metrics, "tofino", *tb->tofino);
    telemetry::register_stack_metrics(tb->metrics, "dtn1", *tb->dtn1_stack);
    telemetry::register_stack_metrics(tb->metrics, "rx", *tb->rx_stack);
    telemetry::register_receiver_metrics(tb->metrics, "rx", *tb->rx);
    telemetry::register_buffer_metrics(tb->metrics, "dtn1", *tb->dtn1_svc);
    telemetry::register_buffer_metrics(tb->metrics, "dtn2", *tb->dtn2_svc);
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        telemetry::register_policy_engine_metrics(tb->metrics, slugs[i],
                                                  *tb->engines[i]);
        telemetry::register_sender_metrics(tb->metrics, slugs[i], *tb->senders[i]);
    }

    // --- traffic: experiments × slices emission chains ---
    // The mask and per-experiment overrides shape the mix; everything
    // else (trunks, engines, mode stages) stays five-wide regardless.
    std::size_t stream_idx = 0;
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        if ((cfg.experiment_mask >> i & 1u) == 0) continue;
        const std::uint64_t per = cfg.experiment_messages[i] != 0
            ? cfg.experiment_messages[i]
            : cfg.messages_per_stream;
        for (unsigned s = 0; s < cfg.slices_per_experiment; ++s) {
            const auto stream = wire::make_experiment_id(profiles[i].experiment, s);
            // Stagger stream starts by 250 ns so t=first_message is not
            // a 20-packet collision burst.
            const sim_time start{cfg.first_message.ns
                                 + static_cast<std::int64_t>(stream_idx) * 250};
            schedule_stream_emission(tb.get(), i, stream, start, 0, per);
            ++stream_idx;
        }
    }
    tb->messages_scheduled = cfg.expected_messages();

    eng.schedule_at(sim_time{10000}, [tbp = tb.get()] {
        tbp->dtn1_svc->advertise(tbp->rx_host->address());
    });

    // --- churn, pressure sweeps, stream retirement ---
    schedule_churn_tick(tb.get(), sim_time{1000000});
    schedule_pressure_poll(tb.get(), sim_time{cfg.pressure_poll.ns});
    schedule_prune(tb.get(), cfg.prune_from);

    // --- the storm ---
    tb->faults = std::make_unique<netsim::fault_scheduler>(eng);
    // W1: corruption burst on the primary span; every engine's loss
    // trigger fires on its next poll and degrades to buffered.
    tb->faults->corruption_burst(*tb->wan_primary, cfg.burst1_at,
                                 cfg.burst1_duration, cfg.burst1_ber);
    // DTN2 kill and revive: software dies with the hardware (crash()
    // wipes in-memory state, the durable store loses its unsealed tail),
    // and the revive reloads the archive and re-advertises.
    tb->faults->on_blackout(*tb->dtn2,
                            [tbp = tb.get()] { tbp->dtn2_svc->crash(); });
    // The restore hook fires on DTN2's shard; the duplication stage
    // lives on the Tofino's. Unsharded, one hook does both (the classic
    // ordering); sharded, the re-subscription runs as its own shard-0
    // event at the same instant so neither shard touches the other's
    // state.
    const bool split_restore = net.shard_count() > 1;
    tb->faults->on_restore(*tb->dtn2, [tbp = tb.get(), split_restore] {
        tbp->dtn2_svc->revive(tbp->rx_host->address());
        if (split_restore) return;
        for (const auto& p : daq::table1_profiles())
            tbp->duplication->add_subscriber(p.experiment, tbp->dtn2->address());
    });
    if (split_restore) {
        eng.schedule_at(cfg.dtn2_up_at, [tbp = tb.get()] {
            for (const auto& p : daq::table1_profiles())
                tbp->duplication->add_subscriber(p.experiment, tbp->dtn2->address());
        });
    }
    tb->faults->blackout_node(*tb->dtn2, cfg.dtn2_down_at);
    tb->faults->fail_link_at(*tb->dtn2_feed, cfg.dtn2_down_at);
    eng.schedule_at(cfg.dtn2_down_at, [tbp = tb.get()] {
        for (const auto& p : daq::table1_profiles())
            tbp->duplication->remove_subscriber(p.experiment, tbp->dtn2->address());
    });
    tb->faults->repair_link_at(*tb->dtn2_feed, cfg.dtn2_up_at);
    tb->faults->restore_node(*tb->dtn2, cfg.dtn2_up_at);
    // W2: the primary span fails hard. The health monitor drives the
    // planner: five trunks reroute onto wan-backup (the route flips via
    // the reroute handler), live churn flows without backups strand.
    tb->faults->fail_link_at(*tb->wan_primary, cfg.wan_down_at);
    tb->faults->repair_link_at(*tb->wan_primary, cfg.wan_up_at);
    // W3: corruption burst on the backup span — by now the active path.
    tb->faults->corruption_burst(*tb->wan_backup, cfg.burst2_at,
                                 cfg.burst2_duration, cfg.burst2_ber);

    // --- end-of-window flush + reroute recovery measurement ---
    eng.schedule_at(cfg.flush_at, [tbp = tb.get()] { tbp->dtn1_svc->flush(); });

    // The probe reads planner state (shard 0) *and* receiver state
    // (shard 1), so it runs on the coordinator's barrier-synchronous
    // control plane — between epochs, when every shard is quiescent.
    // Unsharded, control_plane() is the one engine: byte-identical.
    tb->recovery = std::make_unique<telemetry::recovery_tracker>(
        net.control_plane(), cfg.probe_interval);
    tb->recovery->arm(
        cfg.wan_down_at,
        [tbp = tb.get()] {
            // Whole again after W2: every trunk moved to its backup and
            // no gap is outstanding.
            return tbp->planner.stats().flows_rerouted >= soak_experiments
                && tbp->rx->outstanding_gaps() == 0;
        },
        cfg.end_at);

    return tb;
}

soak_result summarize_soak(soak_testbed& tbr)
{
    auto* tb = &tbr;
    const auto& cfg = tb->cfg;
    soak_result r;
    r.rx = tb->rx->stats();
    r.dtn1 = tb->dtn1_svc->stats();
    r.dtn2 = tb->dtn2_svc->stats();
    r.wan_primary = tb->wan_primary->stats();
    r.wan_backup = tb->wan_backup->stats();
    r.planner = tb->planner.stats();
    r.health = tb->health->stats();
    r.faults = tb->faults->stats();

    r.messages_sent = tb->messages_scheduled;
    r.delivered = r.rx.datagrams;
    r.delivered_by_experiment = tb->delivered_by_experiment;
    r.all_delivered = r.delivered == r.messages_sent && r.rx.duplicates == 0
        && r.rx.given_up == 0 && tb->rx->outstanding_gaps() == 0;
    // Completeness is judged against the configured mix: every enabled
    // experiment delivered its full quota, every disabled one nothing.
    std::size_t enabled = 0;
    bool quotas_met = true;
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        const auto num = daq::table1_profiles()[i].experiment;
        const auto it = r.delivered_by_experiment.find(num);
        const std::uint64_t got =
            it == r.delivered_by_experiment.end() ? 0 : it->second;
        if ((cfg.experiment_mask >> i & 1u) == 0) {
            quotas_met = quotas_met && got == 0;
            continue;
        }
        ++enabled;
        const std::uint64_t per = cfg.experiment_messages[i] != 0
            ? cfg.experiment_messages[i]
            : cfg.messages_per_stream;
        quotas_met = quotas_met
            && got == static_cast<std::uint64_t>(cfg.slices_per_experiment) * per;
    }
    r.all_experiments_complete =
        quotas_met && r.delivered_by_experiment.size() == enabled;

    for (const auto& pe : tb->engines) {
        const auto& s = pe->stats();
        r.reconfigs_committed += s.reconfigs_committed;
        r.loss_triggers += s.loss_triggers;
        r.health_triggers += s.health_triggers;
        r.restores += s.restores;
    }

    r.streams_seen = static_cast<std::uint64_t>(soak_experiments)
        * cfg.slices_per_experiment;
    r.streams_retired = r.rx.streams_retired;
    r.streams_live_at_end = tb->rx->stream_count();
    r.signals_pruned = r.dtn1.signals_pruned;
    r.churn_requests = tb->churn_requests;
    r.churn_released = tb->churn_released;
    r.rerouted_all_trunks = r.planner.flows_rerouted >= soak_experiments;
    r.recovered_after_reroute = tb->recovery->recovered();
    r.time_to_recover =
        tb->recovery->time_to_recover().value_or(sim_duration::zero());

    auto& t = r.report;
    t.set_columns({"metric", "value"});
    auto row = [&](const std::string& name, std::uint64_t v) {
        t.add_row({name, telemetry::fmt_count(v)});
    };
    row("messages_sent", r.messages_sent);
    row("delivered", r.delivered);
    row("all_delivered", r.all_delivered ? 1 : 0);
    row("all_experiments_complete", r.all_experiments_complete ? 1 : 0);
    for (std::size_t i = 0; i < soak_experiments; ++i) {
        const auto num = daq::table1_profiles()[i].experiment;
        auto it = r.delivered_by_experiment.find(num);
        row(std::string("delivered_") + slugs[i],
            it == r.delivered_by_experiment.end() ? 0 : it->second);
    }
    row("duplicates", r.rx.duplicates);
    row("recovered_datagrams", r.rx.recovered);
    row("naks_sent", r.rx.naks_sent);
    row("nak_retries", r.rx.nak_retries);
    row("given_up", r.rx.given_up);
    row("outstanding_gaps", tb->rx->outstanding_gaps());
    row("mode_shifts_seen", r.rx.mode_shifts_seen);
    row("streams_seen", r.streams_seen);
    row("streams_retired", r.streams_retired);
    row("streams_live_at_end", r.streams_live_at_end);
    row("wan_primary_corrupted", r.wan_primary.corrupted);
    row("wan_primary_dropped_down", r.wan_primary.dropped_down);
    row("wan_backup_corrupted", r.wan_backup.corrupted);
    row("wan_backup_tx_packets", r.wan_backup.tx_packets);
    row("dtn1_relayed", r.dtn1.relayed);
    row("dtn1_retransmitted", r.dtn1.retransmitted);
    row("dtn1_unavailable", r.dtn1.unavailable);
    row("pressure_engagements", r.dtn1.pressure_engagements);
    row("pressure_releases", r.dtn1.pressure_releases);
    row("pressure_signals", r.dtn1.pressure_signals);
    row("signals_pruned", r.signals_pruned);
    row("dtn2_stored", r.dtn2.relayed);
    row("dtn2_crashes", r.dtn2.crashes);
    row("dtn2_tail_lost", r.dtn2.tail_lost);
    row("dtn2_recovered_records", r.dtn2.recovered_records);
    row("dtn2_revivals", r.dtn2.revivals);
    row("churn_requests", r.churn_requests);
    row("churn_released", r.churn_released);
    row("flows_rerouted", r.planner.flows_rerouted);
    row("flows_stranded", r.planner.flows_stranded);
    row("admissions_deferred", r.planner.admissions_deferred);
    row("deferred_admitted", r.planner.deferred_admitted);
    row("reconfigs_committed", r.reconfigs_committed);
    row("loss_triggers", r.loss_triggers);
    row("health_triggers", r.health_triggers);
    row("restores", r.restores);
    for (std::size_t i = 0; i < soak_experiments; ++i)
        row(std::string("final_epoch_") + slugs[i], tb->engines[i]->epoch());
    row("element_mode_shifts", tb->tofino->state().counter("mode_shifts"));
    row("element_epochs_retired", tb->tofino->state().counter("epochs_retired"));
    row("link_downs_observed", r.health.downs_observed);
    row("fault_link_downs", r.faults.link_downs);
    row("fault_node_blackouts", r.faults.node_blackouts);
    row("fault_node_restores", r.faults.node_restores);
    row("rerouted_all_trunks", r.rerouted_all_trunks ? 1 : 0);
    row("recovered_after_reroute", r.recovered_after_reroute ? 1 : 0);
    row("time_to_recover_ns",
        static_cast<std::uint64_t>(r.recovered_after_reroute
                                       ? r.time_to_recover.ns
                                       : 0));
    r.csv = t.csv();
    r.metrics_csv = tb->metrics.to_csv();
    return r;
}

soak_result run_soak_drill(const soak_config& cfg)
{
    auto tb = make_soak(cfg);
    tb->net.coordinator().run();
    return summarize_soak(*tb);
}

} // namespace mmtp::scenario
