// chaos.hpp — the chaos drill: coordinated failure of the primary WAN
// path and the primary retransmission buffer, mid-transfer.
//
// The paper's robustness claim is layered: capacity-planned paths make
// congestion loss rare (§4.1), nearest-buffer recovery absorbs the loss
// that still happens (§5.1), and "another retransmission buffer becomes
// available" when the nearest one does not answer. The chaos drill
// exercises every layer at once:
//
//     src ──► Tofino ═══ wan-primary ═══► rx        (admitted path)
//              │ │  └─── wan-backup ───►            (registered backup)
//              │ └──► buf1  (primary tap buffer)    ← blacked out
//              └────► buf2  (secondary tap buffer)  ← advertised fallback
//
// At `fault_at`, the fault scheduler takes the primary WAN link down,
// severs the Tofino→buf1 feed, and powers buf1 off. The health monitor
// observes the transitions and drives the capacity planner, which
// releases the dead path's budgets and re-admits the flow onto the
// backup (repointing the Tofino's route via the reroute callback) while
// a health listener prunes buf1 from the duplication subscribers. The
// receiver's NAKs to buf1 go unanswered, back off exponentially, and
// fail over to buf2 — learned earlier from buf1's own advert. A
// recovery_tracker probes until the stream is whole again.
//
// Everything — faults, probes, recovery — rides the simulation engine,
// so two runs with the same config produce byte-identical telemetry
// (chaos_result::csv), which is what test_chaos asserts.
#pragma once

#include "common/trace.hpp"
#include "control/health_monitor.hpp"
#include "control/planner.hpp"
#include "dtn/durable_store.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/fault.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/recorder.hpp"
#include "telemetry/report.hpp"
#include "telemetry/run_recorder.hpp"

#include <memory>
#include <string>

namespace mmtp::scenario {

struct chaos_config {
    std::uint64_t seed{42};
    /// WAN span (both primary and backup).
    data_rate wan_rate{data_rate::from_gbps(10)};
    sim_duration wan_delay{sim_duration{1000000}}; // 1 ms one way
    std::uint64_t wan_queue_bytes{8ull * 1024 * 1024};
    /// Fixed-size DAQ messages, injected unpaced so the WAN egress queue
    /// holds a backlog when the fault hits (the stranded packets are the
    /// loss the drill must recover).
    std::uint32_t message_bytes{8192};
    std::uint64_t messages{1000};
    sim_duration message_interval{sim_duration{4000}}; // 4 us
    sim_time first_message{sim_time{100000}};          // 100 us
    /// The instant the primary WAN link and buf1 itself fail
    /// (mid-transfer with the defaults above).
    sim_time fault_at{sim_time{2000000}}; // 2 ms
    /// How long after `fault_at` the switch's feed span to buf1 is cut.
    /// The gap keeps the feed carrying traffic into the dead node for a
    /// moment — clones and the first NAK reach buf1 and are dropped at
    /// its ingress — before the control plane sees the span go dark.
    sim_duration feed_cut_after{sim_duration{3000000}}; // 3 ms
    /// End-of-window flush revealing any tail loss (after the last
    /// message has been injected).
    sim_time flush_at{sim_time{8000000}}; // 8 ms
    /// Recovery probing cadence and give-up horizon (after fault_at).
    sim_duration probe_interval{sim_duration{500000}};    // 500 us
    sim_duration probe_deadline{sim_duration{500000000}}; // 500 ms
    /// Receiver recovery knobs (base must exceed the rx→buffer RTT).
    sim_duration nak_retry{sim_duration{5000000}};      // 5 ms
    sim_duration nak_retry_cap{sim_duration{40000000}}; // 40 ms
    std::uint32_t max_nak_attempts{6};
    std::uint32_t failover_attempts{2};
    /// Rate the flow is admitted at (must fit the WAN budgets).
    data_rate planned_rate{data_rate::from_gbps(8)};
    /// Install a flight recorder and name every site, so the result can
    /// show a failed-over message's hop-by-hop timeline.
    bool trace{true};
    /// Ring capacity in records (rounded up to a power of two). The
    /// default holds the whole drill without overwrites.
    std::size_t trace_capacity{1u << 17};
    /// Packets per burst on every span (1 = classic per-packet path).
    std::uint32_t link_burst{1};
    /// Simulation shards. 1 (default) is the classic single-engine run,
    /// byte-identical with pre-shard telemetry. >1 partitions the drill
    /// by network domain — {src, tofino, buf1, control} / {rx} / {buf2}
    /// — with cut-link propagation bounding the conservative lookahead.
    std::uint32_t shards{1};
    /// Write buf1 through a durable store. Required (and forced) when
    /// revive_at > 0 — a revive without an archive has nothing to reload.
    bool persist{true};

    // --- kill-and-revive phase (disabled by default — zeros leave the
    // classic drill byte-identical; use kill_revive_config()) ---
    //
    // buf1 always writes through a durable_store; with revive_at == 0
    // that archive is simply never read back. When revive_at > 0 the
    // fault hooks make the blackout a genuine kill (buf1's in-memory
    // state dies, its unsealed archive tail is lost and counted) and the
    // restore a genuine revive (reload the archive, re-advertise, serve
    // NAKs for messages the — by then blacked-out — secondary never saw).
    /// Records per archive chunk on buf1's store (the seal granularity:
    /// smaller chunks = smaller unsealed-tail loss window).
    std::uint32_t persist_chunk_records{64};
    /// The secondary buffer (buf2) is blacked out and its feed cut here
    /// (0 = never) — from now on only a revived buf1 can answer NAKs.
    sim_time fault2_at{sim_time{0}};
    /// buf1 is restored here (0 = kill-and-revive phase disabled): its
    /// feed is repaired, the archive reloads, it re-advertises (the
    /// receiver fails *back*) and rejoins the duplication group.
    sim_time revive_at{sim_time{0}};
    /// Second traffic wave, injected after the revive; its losses are
    /// recoverable only from the revived buf1.
    std::uint64_t messages2{0};
    sim_time second_wave_at{sim_time{0}};
    /// Corruption burst on the backup WAN span during the second wave —
    /// the loss process the revived buffer repairs.
    sim_time burst_at{sim_time{0}};
    sim_duration burst_duration{sim_duration{0}};
    double burst_ber{0.0};
    /// End-of-window flush for the second wave (0 = none).
    sim_time flush2_at{sim_time{0}};
    /// Capture the finished run (trace + metrics + report) into
    /// chaos_result::recording for archive-based replay.
    bool record{false};
};

/// The chaos drill plus the kill-and-revive phase: buf2 dies at 25 ms,
/// buf1 revives from its archive at 30 ms, a 500-message second wave
/// rides a corruption burst on the backup span, and the drill ends whole
/// — 0 lost, 0 duplicated — with the revived buffer serving every repair.
chaos_config kill_revive_config();

struct chaos_testbed {
    netsim::network net;
    chaos_config cfg;

    netsim::host* src{nullptr};
    pnet::programmable_switch* tofino{nullptr};
    netsim::host* rx_host{nullptr};
    netsim::host* buf1{nullptr};
    netsim::host* buf2{nullptr};

    unsigned wan_primary_port{0};
    unsigned wan_backup_port{0};
    netsim::link* wan_primary{nullptr};
    netsim::link* wan_backup{nullptr};
    netsim::link* buf1_feed{nullptr};
    netsim::link* buf2_feed{nullptr};

    /// buf1's modeled disk: owned here (not by the service) so it
    /// survives the crash()/revive() cycle, like a disk survives a
    /// power cut.
    std::unique_ptr<dtn::durable_store> buf1_store;

    std::unique_ptr<core::stack> src_stack;
    std::unique_ptr<core::sender> tx;
    std::unique_ptr<core::stack> rx_stack;
    std::unique_ptr<core::receiver> rx;
    std::unique_ptr<core::stack> buf1_stack;
    std::unique_ptr<core::buffer_service> buf1_svc;
    std::unique_ptr<core::stack> buf2_stack;
    std::unique_ptr<core::buffer_service> buf2_svc;

    std::shared_ptr<pnet::mode_transition_stage> mode_stage;
    std::shared_ptr<pnet::duplication_stage> duplication;

    control::capacity_planner planner;
    control::flow_id flow{0};
    std::unique_ptr<control::health_monitor> health;
    std::unique_ptr<netsim::fault_scheduler> faults;
    std::unique_ptr<telemetry::recovery_tracker> recovery;
    /// Second tracker: armed at fault2_at, healthy when every message of
    /// both waves has been delivered and no gap is outstanding.
    std::unique_ptr<telemetry::recovery_tracker> recovery2;

    /// Flight recorder (installed for the testbed's lifetime when
    /// cfg.trace) and the run's metrics registry.
    std::unique_ptr<trace::flight_recorder> tracer;
    std::unique_ptr<trace::scoped_recorder> tracer_install;
    /// Sharded runs only: one ring per shard > 0 (shard 0 emits into
    /// `tracer`); summarize_chaos absorbs them into `tracer` so
    /// cross-shard timelines join up.
    std::vector<std::unique_ptr<trace::flight_recorder>> shard_tracers;
    telemetry::metrics_registry metrics;

    std::uint64_t messages_scheduled{0};
    std::uint64_t datagrams_at_fault{0};
};

/// Builds the drill topology, wires the failure-aware control plane, and
/// scripts the traffic, the fault and the flush. Call net.sim().run()
/// (or use run_chaos_drill) to execute.
std::unique_ptr<chaos_testbed> make_chaos(const chaos_config& cfg);

struct chaos_result {
    core::receiver_stats rx;
    core::buffer_service_stats buf1;
    core::buffer_service_stats buf2;
    netsim::link_stats wan_primary;
    netsim::link_stats wan_backup;
    control::planner_stats planner;
    control::health_stats health;
    netsim::fault_stats faults;
    std::uint64_t messages_sent{0};
    std::uint64_t datagrams_at_fault{0};
    /// Datagrams the application received after the fault instant — the
    /// drill's "delivered despite failure" headline number.
    std::uint64_t delivered_despite_failure{0};
    /// Packets stranded in the dead primary link's queue at end of run.
    std::uint64_t stranded_in_primary_queue{0};
    std::uint64_t buf1_blackout_dropped{0};
    bool recovered{false};
    sim_duration time_to_recover{sim_duration::zero()};
    std::uint64_t probes{0};
    /// Kill-and-revive phase outcome (false/zero when disabled).
    bool recovered2{false};
    sim_duration time_to_recover2{sim_duration::zero()};
    std::uint64_t probes2{0};

    /// The run's telemetry as a table (integer cells only, so rendering
    /// is deterministic) and its CSV bytes for run-to-run comparison.
    telemetry::table report{"chaos drill"};
    std::string csv;

    /// Hop-by-hop story of one failed-over message (the first sequence
    /// buf2 retransmitted): rendered timeline, whether it crossed the
    /// backup WAN span after the fault, and the sequence itself
    /// (UINT64_MAX when tracing was off or nothing failed over).
    std::uint64_t traced_sequence{std::uint64_t(-1)};
    std::string hop_timeline;
    bool traversed_backup{false};
    /// Metrics registry snapshot (integer-only, deterministic bytes).
    std::string metrics_csv;

    /// Archive blob capturing the whole run — wire events, metrics,
    /// report — when chaos_config::record was set (else empty). Feed it
    /// to telemetry::run_replayer to re-derive metrics_csv byte-for-byte.
    std::vector<std::uint8_t> recording;
};

/// Summarizes an already-run testbed (drivers separate build/run/report).
chaos_result summarize_chaos(chaos_testbed& tb);

/// Builds, runs to completion, and summarizes one chaos drill.
chaos_result run_chaos_drill(const chaos_config& cfg);

} // namespace mmtp::scenario
