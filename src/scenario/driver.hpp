// driver.hpp — the common scenario-driver interface.
//
// Every scenario in this directory follows the same life cycle: build a
// testbed (topology + control plane + scripted traffic), drain the
// simulation engine, then report deterministic telemetry. Before this
// interface each example re-implemented that skeleton; `driver` names
// it once:
//
//   describe()   one-line banner for logs and example output
//   build()      constructs the testbed and scripts its events; returns
//                a run_context naming the simulation run() will drain.
//                (Scenarios own their network — and therefore their
//                engines — so build *produces* the context rather than
//                receiving one.)
//   run()        builds on first call, then drains the simulation
//   report(reg)  registers the scenario's standard probes into `reg`
//                and returns the headline table (requires run())
//
// run_example() is the shared example main(): banner, run, report,
// metrics snapshot, and an optional same-seed rerun that checks the
// telemetry bytes are identical.
#pragma once

#include "scenario/chaos.hpp"
#include "scenario/overload.hpp"
#include "scenario/pilot.hpp"
#include "scenario/shapeshift.hpp"
#include "scenario/soak.hpp"
#include "scenario/today.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

#include <memory>
#include <optional>
#include <string>

namespace mmtp::scenario {

/// What build() hands back: the simulation to drain. Always the
/// scenario network's shard coordinator — a thin pass-through around the
/// single engine in unsharded runs, the epoch-synchronized engine fleet
/// under --shards=N. Value-semantic handle; the driver's testbed owns
/// the network.
class run_context {
public:
    run_context() = default;
    explicit run_context(netsim::network& net) : coord_(&net.coordinator()) {}
    explicit run_context(netsim::shard_coordinator& c) : coord_(&c) {}

    bool valid() const { return coord_ != nullptr; }
    netsim::shard_coordinator& coordinator() { return *coord_; }
    /// Shard 0's engine (the only one when unsharded).
    netsim::engine& sim() { return coord_->shard(0); }
    /// Drains the simulation; returns events executed.
    std::uint64_t run() { return coord_->run(); }

private:
    netsim::shard_coordinator* coord_{nullptr};
};

class driver {
public:
    virtual ~driver() = default;

    /// One-line human description of the scenario.
    virtual std::string describe() const = 0;

    /// Constructs the testbed and scripts its traffic/faults; returns
    /// the run_context that run() drains. Idempotence is the caller's
    /// job — use prepare()/run() unless you need the context directly.
    virtual run_context build() = 0;

    /// Builds exactly once (so a testbed can be customised before run).
    void prepare()
    {
        if (!ctx_.valid()) ctx_ = build();
    }

    /// Runs the scenario to completion (builds first if needed).
    void run()
    {
        prepare();
        ctx_.run();
    }

    bool built() const { return ctx_.valid(); }

    /// The simulation handle (valid after prepare()).
    run_context& context() { return ctx_; }

    /// Registers the scenario's standard probes into `reg` and returns
    /// the headline report table. Requires run().
    virtual telemetry::table report(telemetry::metrics_registry& reg) = 0;

protected:
    run_context ctx_;
};

/// Shared example skeleton: prints describe(), runs, prints the report
/// table and the metrics snapshot. When `rerun` names a second, freshly
/// constructed driver of the same configuration, it is run too and the
/// telemetry bytes compared — the determinism check every drill example
/// used to hand-roll. Returns 0 on success (and byte-identical reruns).
int run_example(driver& d, driver* rerun = nullptr);

// --- concrete drivers ----------------------------------------------------

/// The §5.4 pilot: ICEBERG trigger records through the Fig. 4 testbed.
class pilot_driver : public driver {
public:
    struct options {
        pilot_config pilot{};
        std::uint64_t records{1000};
        std::uint32_t frames_per_record{10};
    };
    pilot_driver();
    explicit pilot_driver(options opt);

    std::string describe() const override;
    run_context build() override;
    telemetry::table report(telemetry::metrics_registry& reg) override;

    pilot_testbed& testbed() { return *tb_; }
    /// Records the ICEBERG source actually produced (valid after build()).
    std::uint64_t records_driven() const { return records_driven_; }

private:
    options opt_;
    std::unique_ptr<pilot_testbed> tb_;
    std::uint64_t records_driven_{0};
};

/// The status-quo pipeline of Fig. 2 (UDP ingest stage).
class today_driver : public driver {
public:
    struct options {
        today_config today{};
        std::uint32_t message_bytes{5000};
        std::uint64_t messages{200};
        sim_duration message_interval{sim_duration{10000}}; // 10 us
    };
    today_driver();
    explicit today_driver(options opt);

    std::string describe() const override;
    run_context build() override;
    telemetry::table report(telemetry::metrics_registry& reg) override;

    today_testbed& testbed() { return *tb_; }
    /// UDP payload bytes scheduled at the sensor (valid after build()).
    std::uint64_t bytes_scheduled() const { return bytes_scheduled_; }

private:
    options opt_;
    std::unique_ptr<today_testbed> tb_;
    std::uint64_t bytes_scheduled_{0};
};

/// Coordinated WAN + buffer failure mid-transfer (chaos drill).
class chaos_driver : public driver {
public:
    explicit chaos_driver(chaos_config cfg = {}) : cfg_(cfg) {}

    std::string describe() const override;
    run_context build() override;
    telemetry::table report(telemetry::metrics_registry& reg) override;

    chaos_testbed& testbed() { return *tb_; }
    /// Summarized once after run(); report() fills it.
    const chaos_result& result();

private:
    chaos_config cfg_;
    std::unique_ptr<chaos_testbed> tb_;
    std::optional<chaos_result> result_;
};

/// 2× sustained offered load with every overload-control layer engaged.
class overload_driver : public driver {
public:
    explicit overload_driver(overload_config cfg = {}) : cfg_(cfg) {}

    std::string describe() const override;
    run_context build() override;
    telemetry::table report(telemetry::metrics_registry& reg) override;

    overload_testbed& testbed() { return *tb_; }
    const overload_result& result();

private:
    overload_config cfg_;
    std::unique_ptr<overload_testbed> tb_;
    std::optional<overload_result> result_;
};

/// Facility-scale soak: five concurrent experiments over shared spans
/// and DTNs under a fault-and-overload storm.
class soak_driver : public driver {
public:
    explicit soak_driver(soak_config cfg = {}) : cfg_(cfg) {}

    std::string describe() const override;
    run_context build() override;
    telemetry::table report(telemetry::metrics_registry& reg) override;

    soak_testbed& testbed() { return *tb_; }
    const soak_result& result();

private:
    soak_config cfg_;
    std::unique_ptr<soak_testbed> tb_;
    std::optional<soak_result> result_;
};

/// Mid-run WAN degradation answered by a runtime mode shift.
class shapeshift_driver : public driver {
public:
    explicit shapeshift_driver(shapeshift_config cfg = {}) : cfg_(cfg) {}

    std::string describe() const override;
    run_context build() override;
    telemetry::table report(telemetry::metrics_registry& reg) override;

    shapeshift_testbed& testbed() { return *tb_; }
    const shapeshift_result& result();

private:
    shapeshift_config cfg_;
    std::unique_ptr<shapeshift_testbed> tb_;
    std::optional<shapeshift_result> result_;
};

} // namespace mmtp::scenario
