#include "scenario/pilot.hpp"

namespace mmtp::scenario {

std::unique_ptr<pilot_testbed> make_pilot(const pilot_config& cfg)
{
    auto tb = std::make_unique<pilot_testbed>();
    tb->cfg = cfg;
    tb->net = netsim::network(cfg.seed, cfg.shards);
    auto& net = tb->net;

    // --- nodes (Fig. 4) ---
    tb->sensor = &net.add_host("sensor");
    tb->daq_switch =
        &net.emplace<pnet::programmable_switch>("daq-switch", pnet::tofino2_profile());
    tb->dtn1 = &net.add_host("dtn1");
    tb->tofino2 =
        &net.emplace<pnet::programmable_switch>("tofino2", pnet::tofino2_profile());
    tb->alveo_rx =
        &net.emplace<pnet::programmable_switch>("alveo-u55c", pnet::alveo_profile());
    tb->dtn2 = &net.add_host("dtn2");

    tb->daq_switch->set_id_source(&net.ids());
    tb->tofino2->set_id_source(&net.ids());
    tb->alveo_rx->set_id_source(&net.ids());

    // --- links ---
    netsim::link_config daq_link;
    daq_link.rate = cfg.daq_rate;
    daq_link.propagation = sim_duration{500}; // sub-µs inside the rack
    daq_link.burst = cfg.link_burst;

    netsim::link_config clean_100g;
    clean_100g.rate = cfg.wan_rate;
    clean_100g.propagation = sim_duration{1000};
    clean_100g.queue_capacity_bytes = cfg.wan_queue_bytes;
    clean_100g.burst = cfg.link_burst;

    netsim::link_config wan_link = clean_100g;
    wan_link.propagation = cfg.wan_delay;
    wan_link.drop_probability = cfg.wan_loss;

    // sensor → DAQ switch → DTN1 (duplex so control can flow back)
    const auto [sensor_to_sw, _a] = net.connect(*tb->sensor, *tb->daq_switch, daq_link);
    (void)sensor_to_sw;
    const auto [sw_to_dtn1, _b] = net.connect(*tb->daq_switch, *tb->dtn1, daq_link);
    tb->daq_switch->set_l2_uplink(sw_to_dtn1);
    (void)_a;
    (void)_b;

    // DTN1 → Tofino2: clean 100G
    net.connect(*tb->dtn1, *tb->tofino2, clean_100g);
    // Tofino2 → Alveo: the lossy/delayed "WAN" span, optionally with a
    // deadline-aware priority egress queue at the Tofino2.
    if (cfg.priority_queues) {
        auto q = std::make_unique<netsim::priority_queue_disc>(
            pnet::timeliness_bands, cfg.wan_queue_bytes,
            [](const netsim::packet& p) { return pnet::timeliness_band_of(p); });
        net.connect_simplex(*tb->tofino2, *tb->alveo_rx, wan_link, std::move(q));
    } else {
        net.connect_simplex(*tb->tofino2, *tb->alveo_rx, wan_link);
    }
    // reverse path for NAKs/notifications (clean: control is tiny)
    netsim::link_config wan_back = clean_100g;
    wan_back.propagation = cfg.wan_delay;
    net.connect_simplex(*tb->alveo_rx, *tb->tofino2, wan_back);
    // Alveo → DTN2
    net.connect(*tb->alveo_rx, *tb->dtn2, clean_100g);

    net.compute_routes();

    // --- control plane: resources + mode policy ---
    control::resource_map rmap;
    rmap.add({control::resource_kind::retransmission_buffer, tb->dtn1->address(),
              "dtn1-buffer", 512ull * 1024 * 1024, sim_duration{5000000000}, "daq-site"});
    rmap.add({control::resource_kind::programmable_switch, tb->tofino2->address(),
              "tofino2", 0, sim_duration::zero(), "daq-site"});
    rmap.add({control::resource_kind::fpga_nic, tb->alveo_rx->address(), "alveo-u55c", 0,
              sim_duration::zero(), "receiving-site"});

    control::policy_inputs pin;
    pin.experiment = wire::experiments::iceberg;
    pin.segments = {
        {control::path_segment::kind::daq, sim_duration{1000}, cfg.daq_rate, false, 0},
        {control::path_segment::kind::wan, cfg.wan_delay, cfg.wan_rate, cfg.wan_loss > 0,
         tb->tofino2->address()},
        {control::path_segment::kind::campus, sim_duration{1000}, cfg.wan_rate, false,
         tb->alveo_rx->address()},
    };
    pin.recovery_buffer = tb->dtn1->address();
    pin.notify_addr = cfg.notifications ? tb->dtn1->address() : 0;

    // --- in-network programs ---
    tb->mode_stage = std::make_shared<pnet::mode_transition_stage>();
    pnet::age_config age_cfg;
    age_cfg.emit_notifications = cfg.notifications;
    tb->tofino_age = std::make_shared<pnet::age_update_stage>(age_cfg);
    tb->alveo_age = std::make_shared<pnet::age_update_stage>(age_cfg);
    tb->duplication = std::make_shared<pnet::duplication_stage>();

    tb->dup_mode_stage = std::make_shared<pnet::mode_transition_stage>();
    // Campus-boundary table (strip recovery, keep timeliness) runs on
    // the Alveo in front of DTN2.
    tb->campus_stage = std::make_shared<pnet::mode_transition_stage>();

    tb->tofino2->add_stage(tb->mode_stage);
    tb->tofino2->add_stage(tb->tofino_age);
    tb->tofino2->add_stage(tb->dup_mode_stage);
    tb->tofino2->add_stage(tb->duplication);
    tb->alveo_rx->add_stage(tb->alveo_age);
    tb->alveo_rx->add_stage(tb->campus_stage);

    // The pilot's one-shot setup is the policy engine's static preset:
    // compile once, install the rules on the attached boundary elements,
    // never reconfigure (§5.3 "pre-supposes knowledge of the network").
    control::policy_engine_config pe_cfg;
    pe_cfg.preset = control::mode_preset::static_preset;
    pe_cfg.inputs = pin;
    pe_cfg.deadline_override_us = cfg.deadline_us;
    tb->policy_ctl = std::make_unique<control::policy_engine>(net.sim(), rmap, pe_cfg);
    if (!cfg.sequence_at_dtn)
        tb->policy_ctl->attach_element(*tb->tofino2, tb->mode_stage);
    tb->policy_ctl->attach_element(*tb->alveo_rx, tb->campus_stage);
    tb->policy_ctl->start();
    tb->policy = tb->policy_ctl->current();

    // --- endpoints ---
    tb->sensor_stack = std::make_unique<core::stack>(*static_cast<netsim::host*>(tb->sensor),
                                                     net.ids());
    core::sender_config s_cfg;
    s_cfg.origin_mode = tb->policy.origin_mode; // mode 0
    tb->sensor_tx = std::make_unique<core::sender>(*tb->sensor_stack,
                                                   core::sender::l2_egress{0}, s_cfg);

    tb->dtn1_stack = std::make_unique<core::stack>(*tb->dtn1, net.ids());
    core::buffer_service_config b_cfg;
    b_cfg.next_hop = tb->dtn2->address();
    b_cfg.assign_sequence_locally = cfg.sequence_at_dtn;
    b_cfg.deadline_us = tb->policy.deadline_us;
    b_cfg.notify_addr = pin.notify_addr;
    tb->dtn1_svc = std::make_unique<core::buffer_service>(*tb->dtn1_stack, b_cfg);
    tb->dtn1_svc->attach_as_sink();
    tb->dtn1_stack->set_deadline_handler(
        [tbp = tb.get()](const wire::deadline_exceeded_body&) {
            tbp->deadline_notifications++;
        });

    tb->dtn2_stack = std::make_unique<core::stack>(*tb->dtn2, net.ids());
    core::receiver_config r_cfg;
    r_cfg.nak_retry = tb->policy.suggested_nak_retry;
    tb->dtn2_rx = std::make_unique<core::receiver>(*tb->dtn2_stack, r_cfg);

    return tb;
}

} // namespace mmtp::scenario
