#include "scenario/shapeshift.hpp"

#include "daq/message.hpp"

namespace mmtp::scenario {

namespace {
/// The drill's one stream: the ICEBERG experiment, slice 0.
constexpr wire::experiment_id drill_stream =
    wire::make_experiment_id(wire::experiments::iceberg, 0);
} // namespace

std::unique_ptr<shapeshift_testbed> make_shapeshift(const shapeshift_config& cfg)
{
    auto tb = std::make_unique<shapeshift_testbed>();
    tb->cfg = cfg;
    tb->net = netsim::network(cfg.seed, cfg.shards);
    auto& net = tb->net;
    auto& eng = net.sim();

    // --- topology ---
    tb->sensor = &net.add_host("sensor");
    tb->dtn1 = &net.add_host("dtn1");
    tb->tofino =
        &net.emplace<pnet::programmable_switch>("tofino", pnet::tofino2_profile());
    tb->rx_host = &net.add_host("rx");
    tb->tofino->set_id_source(&net.ids());

    netsim::link_config clean;
    clean.rate = data_rate::from_gbps(100);
    clean.propagation = sim_duration{1000};
    clean.burst = cfg.link_burst;

    netsim::link_config wan;
    wan.rate = cfg.wan_rate;
    wan.propagation = cfg.wan_delay;
    wan.queue_capacity_bytes = cfg.wan_queue_bytes;
    wan.burst = cfg.link_burst;

    net.connect(*tb->sensor, *tb->dtn1, clean);
    net.connect(*tb->dtn1, *tb->tofino, clean);
    const unsigned wan_port = net.connect_simplex(*tb->tofino, *tb->rx_host, wan);
    netsim::link_config wan_back = clean;
    wan_back.propagation = cfg.wan_delay;
    net.connect_simplex(*tb->rx_host, *tb->tofino, wan_back); // NAK return path
    tb->wan = &tb->tofino->egress(wan_port);

    net.compute_routes();

    // --- observability ---
    if (cfg.trace) {
        tb->tracer = std::make_unique<trace::flight_recorder>(cfg.trace_capacity);
        tb->tracer_install = std::make_unique<trace::scoped_recorder>(*tb->tracer);
        tb->wan->set_trace_site(tb->tracer->site("wan"));
        tb->tofino->state().trace_site = tb->tracer->site("tofino");
    }

    // --- in-network program ---
    tb->mode_stage = std::make_shared<pnet::mode_transition_stage>();
    tb->tofino->add_stage(tb->mode_stage);
    tb->tofino->add_stage(std::make_shared<pnet::age_update_stage>());

    // --- closed-loop control plane ---
    control::resource_map rmap;
    rmap.add({control::resource_kind::retransmission_buffer, tb->dtn1->address(),
              "dtn1-buffer", 512ull * 1024 * 1024, sim_duration{5000000000}, "daq-site"});
    rmap.add({control::resource_kind::programmable_switch, tb->tofino->address(),
              "tofino", 0, sim_duration::zero(), "daq-site"});

    control::policy_inputs pin;
    pin.experiment = wire::experiments::iceberg;
    pin.segments = {
        {control::path_segment::kind::daq, sim_duration{1000}, data_rate::from_gbps(100),
         false, 0},
        {control::path_segment::kind::wan, cfg.wan_delay, cfg.wan_rate, true,
         tb->tofino->address()},
    };
    pin.recovery_buffer = tb->dtn1->address();

    control::policy_engine_config pe_cfg;
    pe_cfg.preset = cfg.policy;
    pe_cfg.inputs = pin;
    pe_cfg.deadline_override_us = cfg.deadline_us;
    pe_cfg.poll_interval = cfg.poll_interval;
    pe_cfg.poll_until = cfg.poll_until;
    pe_cfg.drain_window = cfg.drain_window;
    pe_cfg.loss_degrade_threshold = cfg.loss_degrade_threshold;
    pe_cfg.restore_after_clean_polls = cfg.restore_after_clean_polls;
    tb->policy_ctl = std::make_unique<control::policy_engine>(eng, rmap, pe_cfg);
    tb->policy_ctl->attach_element(*tb->tofino, tb->mode_stage);
    tb->policy_ctl->watch_loss(*tb->wan);
    if (tb->tracer) tb->policy_ctl->set_trace_site(tb->tracer->site("ctl"));
    tb->policy_ctl->start(); // epoch 0: the baseline plan goes live
    const auto& plan = tb->policy_ctl->current();

    // --- endpoints ---
    tb->sensor_stack = std::make_unique<core::stack>(*tb->sensor, net.ids());
    core::sender_config s_cfg;
    s_cfg.origin_mode = plan.origin_mode; // mode 0, epoch 0
    s_cfg.max_datagram_payload = cfg.message_bytes;
    tb->tx = std::make_unique<core::sender>(*tb->sensor_stack, tb->dtn1->address(), s_cfg);

    tb->dtn1_stack = std::make_unique<core::stack>(*tb->dtn1, net.ids());
    core::buffer_service_config b_cfg;
    b_cfg.next_hop = tb->rx_host->address();
    b_cfg.deadline_us = plan.deadline_us;
    tb->dtn1_svc = std::make_unique<core::buffer_service>(*tb->dtn1_stack, b_cfg);
    tb->dtn1_svc->attach_as_sink();

    tb->rx_stack = std::make_unique<core::stack>(*tb->rx_host, net.ids());
    core::receiver_config r_cfg;
    r_cfg.timing.retry_base = plan.suggested_nak_retry;
    tb->rx = std::make_unique<core::receiver>(*tb->rx_stack, r_cfg);
    tb->rx->set_on_datagram([tbp = tb.get()](const core::delivered_datagram& d) {
        tbp->delivered_by_epoch[d.hdr.m.cfg_id]++;
    });

    // From now on, every install re-stamps the sender's origin mode with
    // the new epoch — new datagrams shift, in-flight ones finish under
    // the old epoch's rules (make before break).
    tb->policy_ctl->set_origin_handler(
        [tbp = tb.get()](const control::compiled_policy&, wire::mode origin) {
            tbp->tx->set_origin_mode(origin);
        });

    // --- the mid-run degradation ---
    tb->faults = std::make_unique<netsim::fault_scheduler>(eng);
    tb->faults->corruption_burst(*tb->wan, cfg.burst_at, cfg.burst_duration,
                                 cfg.burst_ber);

    // --- metrics registry ---
    telemetry::register_engine_metrics(tb->metrics, eng);
    telemetry::register_link_metrics(tb->metrics, "wan", *tb->wan);
    telemetry::register_policy_engine_metrics(tb->metrics, *tb->policy_ctl);
    telemetry::register_element_metrics(tb->metrics, "tofino", *tb->tofino);
    telemetry::register_stack_metrics(tb->metrics, "sensor", *tb->sensor_stack);
    telemetry::register_stack_metrics(tb->metrics, "rx", *tb->rx_stack);
    telemetry::register_sender_metrics(tb->metrics, "sensor", *tb->tx);
    telemetry::register_receiver_metrics(tb->metrics, "rx", *tb->rx);
    telemetry::register_buffer_metrics(tb->metrics, "dtn1", *tb->dtn1_svc);

    // --- traffic and end-of-window flush ---
    daq::steady_source source(drill_stream, cfg.message_bytes, cfg.message_interval,
                              cfg.first_message, cfg.messages);
    tb->messages_scheduled = tb->tx->drive(source);
    eng.schedule_at(cfg.flush_at, [tbp = tb.get()] { tbp->dtn1_svc->flush(); });

    return tb;
}

shapeshift_result summarize_shapeshift(shapeshift_testbed& tbr)
{
    auto* tb = &tbr;
    shapeshift_result r;
    r.tx = tb->tx->stats();
    r.rx = tb->rx->stats();
    r.buf = tb->dtn1_svc->stats();
    r.wan = tb->wan->stats();
    r.ctl = tb->policy_ctl->stats();
    r.messages_sent = tb->messages_scheduled;
    r.delivered = r.rx.datagrams;
    r.all_delivered = r.delivered == r.messages_sent && r.rx.given_up == 0
        && tb->rx->outstanding_gaps() == 0;
    const auto& st = tb->tofino->state();
    r.mode_shifts = st.counter("mode_shifts");
    r.epochs_retired = st.counter("epochs_retired");
    r.final_epoch = tb->policy_ctl->epoch();
    r.final_posture = control::posture_name(tb->policy_ctl->current_posture());
    r.rx_mode_shifts_seen = r.rx.mode_shifts_seen;
    r.rx_last_epoch = tb->rx->last_policy_epoch(drill_stream);
    r.delivered_by_epoch = tb->delivered_by_epoch;

    auto& t = r.report;
    t.set_columns({"metric", "value"});
    auto row = [&](const std::string& name, std::uint64_t v) {
        t.add_row({name, telemetry::fmt_count(v)});
    };
    row("messages_sent", r.messages_sent);
    row("delivered", r.delivered);
    row("all_delivered", r.all_delivered ? 1 : 0);
    row("duplicates", r.rx.duplicates);
    row("recovered_datagrams", r.rx.recovered);
    row("naks_sent", r.rx.naks_sent);
    row("given_up", r.rx.given_up);
    row("aged_on_arrival", r.rx.aged_on_arrival);
    row("wan_corrupted", r.wan.corrupted);
    row("reconfigs_planned", r.ctl.reconfigs_planned);
    row("reconfigs_installed", r.ctl.reconfigs_installed);
    row("reconfigs_committed", r.ctl.reconfigs_committed);
    row("reconfigs_aborted", r.ctl.reconfigs_aborted);
    row("loss_triggers", r.ctl.loss_triggers);
    row("restores", r.ctl.restores);
    row("polls", r.ctl.polls);
    row("element_mode_shifts", r.mode_shifts);
    row("element_epochs_retired", r.epochs_retired);
    row("final_epoch", r.final_epoch);
    t.add_row({"final_posture", r.final_posture});
    row("sender_origin_mode_updates", r.tx.origin_mode_updates);
    row("rx_mode_shifts_seen", r.rx_mode_shifts_seen);
    row("rx_last_epoch", r.rx_last_epoch);
    for (const auto& [epoch, count] : r.delivered_by_epoch)
        row("delivered_epoch_" + std::to_string(unsigned(epoch)), count);
    r.csv = t.csv();

    r.metrics_csv = tb->metrics.to_csv();

    // The reconfiguration story, span by span.
    if (tb->tracer) {
        std::vector<trace::record> spans;
        for (const auto& ev : tb->tracer->events()) {
            switch (ev.kind) {
            case trace::hop::ctl_reconfig_planned:
            case trace::hop::ctl_reconfig_installed:
            case trace::hop::ctl_reconfig_committed:
            case trace::hop::ctl_reconfig_aborted: spans.push_back(ev); break;
            default: break;
            }
        }
        r.reconfig_timeline = tb->tracer->format_timeline(spans);
    }
    return r;
}

shapeshift_result run_shapeshift_drill(const shapeshift_config& cfg)
{
    auto tb = make_shapeshift(cfg);
    tb->net.coordinator().run();
    return summarize_shapeshift(*tb);
}

} // namespace mmtp::scenario
