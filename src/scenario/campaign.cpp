#include "scenario/campaign.hpp"

#include "netsim/link.hpp"

#include <algorithm>

namespace mmtp::scenario::campaign {

namespace {

/// splitmix64 — tiny, well-mixed, and identical on every platform
/// (std:: distributions are not guaranteed cross-implementation).
struct rng {
    std::uint64_t state;

    std::uint64_t next()
    {
        std::uint64_t z = (state += 0x9e3779b97f4a7c15ull);
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
        return z ^ (z >> 31);
    }

    /// Uniform-ish integer in [lo, hi] (modulo bias is irrelevant here —
    /// the campaign needs coverage, not statistics).
    std::uint64_t range(std::uint64_t lo, std::uint64_t hi)
    {
        return lo + next() % (hi - lo + 1);
    }

    bool coin() { return (next() & 1u) != 0; }

    template <class T, std::size_t N>
    T pick(const T (&choices)[N])
    {
        return choices[next() % N];
    }
};

bool topology_sweeps_policy(const std::string& t)
{
    return t == "shapeshift" || t == "soak";
}

bool topology_sweeps_trace(const std::string& t)
{
    return t == "chaos" || t == "overload" || t == "shapeshift";
}

bool topology_sweeps_shards(const std::string& t)
{
    // Only the partitioned topologies (multi-domain node placement) have
    // anything to shard; everywhere else extra shards just idle.
    return t == "chaos" || t == "soak";
}

bool spec_sweeps_persist(const scenario_spec& s)
{
    // Only chaos has the persistence toggle, and a kill-and-revive
    // script forces it on (make_chaos creates the store regardless).
    return s.topology == "chaos" && s.chaos.revive_at.ns == 0;
}

/// The matrix point the spec itself encodes (collapsed-axis values).
axes axes_of(const scenario_spec& s)
{
    axes ax;
    ax.burst = s.link_burst();
    if (s.topology == "shapeshift")
        ax.closed_loop = s.shapeshift.policy == control::mode_preset::closed_loop;
    else if (s.topology == "soak")
        ax.closed_loop = s.soak.policy == control::mode_preset::closed_loop;
    if (s.topology == "chaos") ax.trace = s.chaos.trace;
    else if (s.topology == "overload") ax.trace = s.overload.trace;
    else if (s.topology == "shapeshift") ax.trace = s.shapeshift.trace;
    if (s.topology == "chaos") ax.persist = s.chaos.persist;
    ax.shards = s.shards();
    return ax;
}

} // namespace

std::string axes::label() const
{
    return "burst=" + std::to_string(burst)
        + " policy=" + (closed_loop ? "closed_loop" : "static")
        + " trace=" + (trace ? "on" : "off")
        + " persist=" + (persist ? "on" : "off")
        + " shards=" + std::to_string(shards);
}

std::vector<axes> matrix_for(const scenario_spec& spec, const options& opt)
{
    const axes base = axes_of(spec);
    if (!opt.matrix) return {base};

    const std::uint32_t bursts[] = {1, opt.wide_burst};
    const auto values = [](bool sweep, bool fixed) {
        return sweep ? std::vector<bool>{true, false} : std::vector<bool>{fixed};
    };
    const auto policies =
        values(topology_sweeps_policy(spec.topology), base.closed_loop);
    const auto traces = values(topology_sweeps_trace(spec.topology), base.trace);
    const auto persists = values(spec_sweeps_persist(spec), base.persist);
    const auto shard_counts = topology_sweeps_shards(spec.topology)
        ? std::vector<std::uint32_t>{1, 2}
        : std::vector<std::uint32_t>{base.shards};

    std::vector<axes> out;
    for (std::uint32_t b : bursts)
        for (bool pol : policies)
            for (bool tr : traces)
                for (bool pe : persists)
                    for (std::uint32_t sh : shard_counts) {
                        axes ax = base;
                        ax.burst = b;
                        ax.closed_loop = pol;
                        ax.trace = tr;
                        ax.persist = pe;
                        ax.shards = sh;
                        out.push_back(ax);
                    }
    return out;
}

scenario_spec apply_axes(const scenario_spec& spec, const axes& ax)
{
    scenario_spec s = spec;
    s.set_link_burst(ax.burst);
    const auto preset = ax.closed_loop ? control::mode_preset::closed_loop
                                       : control::mode_preset::static_preset;
    s.shapeshift.policy = preset;
    s.soak.policy = preset;
    s.chaos.trace = ax.trace;
    s.overload.trace = ax.trace;
    s.shapeshift.trace = ax.trace;
    if (spec_sweeps_persist(spec)) s.chaos.persist = ax.persist;
    s.set_shards(ax.shards);
    return s;
}

namespace {

struct run_capture {
    std::string report_csv;
    std::string metrics_csv;
    dsl_driver::acceptance accepted;
    std::vector<std::string> reconciliation_failures;
};

run_capture execute(const scenario_spec& spec)
{
    run_capture cap;
    dsl_driver d(spec);
    d.run();
    telemetry::metrics_registry reg;
    auto table = d.report(reg);
    cap.report_csv = table.csv();
    cap.metrics_csv = reg.to_csv();
    cap.accepted = d.accept();

    // Per-link stats reconciliation across the whole topology: every
    // packet the serializer dequeued either went onto the wire or was
    // dropped by the random-loss process (down-drops happen before the
    // queue, so faults never perturb the identity).
    const auto& nodes = d.network().nodes();
    for (std::size_t ni = 0; ni < nodes.size(); ++ni) {
        const auto& node = *nodes[ni];
        for (unsigned p = 0; p < node.port_count(); ++p) {
            const auto& ls = node.egress(p).stats();
            const auto& qs = node.egress(p).queue_statistics();
            if (ls.tx_packets + ls.dropped_random != qs.dequeued)
                cap.reconciliation_failures.push_back(
                    "link reconciliation broken at node " + std::to_string(ni)
                    + " port " + std::to_string(p) + ": tx "
                    + std::to_string(ls.tx_packets) + " + random_drops "
                    + std::to_string(ls.dropped_random) + " != dequeued "
                    + std::to_string(qs.dequeued));
        }
    }
    return cap;
}

} // namespace

cell_result run_cell(const scenario_spec& spec, const axes& ax)
{
    cell_result cell;
    cell.ax = ax;
    const scenario_spec s = apply_axes(spec, ax);

    const run_capture first = execute(s);
    cell.accepted = first.accepted;

    if (!spec.lossy && !first.accepted.whole)
        cell.failures.push_back(
            "not whole: delivered " + std::to_string(first.accepted.delivered)
            + " of " + std::to_string(first.accepted.expected) + ", given up "
            + std::to_string(first.accepted.given_up) + ", outstanding gaps "
            + std::to_string(first.accepted.outstanding_gaps));
    if (first.accepted.duplicates != 0)
        cell.failures.push_back("duplicates delivered: "
                                + std::to_string(first.accepted.duplicates));
    for (const auto& f : first.reconciliation_failures) cell.failures.push_back(f);

    // Same-seed rerun: the telemetry bytes must match exactly.
    const run_capture second = execute(s);
    if (second.report_csv != first.report_csv)
        cell.failures.push_back("report CSV differs between same-seed runs");
    if (second.metrics_csv != first.metrics_csv)
        cell.failures.push_back("metrics CSV differs between same-seed runs");

    cell.passed = cell.failures.empty();
    return cell;
}

outcome run_scenario(const scenario_spec& spec, const options& opt)
{
    outcome out;
    out.name = spec.name.empty() ? spec.topology : spec.name;
    out.topology = spec.topology;
    out.passed = true;
    for (const axes& ax : matrix_for(spec, opt)) {
        out.cells.push_back(run_cell(spec, ax));
        if (!out.cells.back().passed) out.passed = false;
    }
    return out;
}

// --- random scenario generation -----------------------------------------

scenario_spec generate(std::uint64_t seed)
{
    rng r{seed};
    scenario_spec s;
    s.name = "random-" + std::to_string(seed);

    // Soak appears less often: it is an order of magnitude more work
    // per run than the single-stream drills.
    static const char* const topologies[] = {"pilot", "today",      "chaos",
                                             "chaos", "shapeshift", "shapeshift",
                                             "overload", "soak"};
    s.topology = topologies[r.next() % 8];

    if (s.topology == "pilot") {
        auto& o = s.pilot;
        o.records = r.range(200, 1500);
        o.frames_per_record = static_cast<std::uint32_t>(r.range(4, 12));
        static const double losses[] = {0.0, 0.005, 0.01, 0.02};
        o.pilot.wan_loss = r.pick(losses);
        o.pilot.wan_delay = sim_duration{std::int64_t(r.range(1, 10)) * 1000000};
        o.pilot.priority_queues = r.coin();
        o.pilot.sequence_at_dtn = r.next() % 4 == 0;
    } else if (s.topology == "today") {
        auto& o = s.today;
        s.lossy = true; // no recovery in the status-quo pipeline
        o.messages = r.range(100, 300);
        o.message_bytes = static_cast<std::uint32_t>(r.range(2000, 8000));
        o.message_interval = sim_duration{std::int64_t(r.range(5, 20)) * 1000};
        static const double losses[] = {0.0, 0.001};
        o.today.wan_loss = r.pick(losses);
        o.today.tuned = r.coin();
    } else if (s.topology == "chaos") {
        auto& c = s.chaos;
        c.messages = r.range(400, 1200);
        c.message_bytes = static_cast<std::uint32_t>(r.range(2048, 8192));
        c.message_interval = sim_duration{std::int64_t(r.range(3, 6)) * 1000};
        // The fault must land mid-transfer and the flush after the tail.
        const std::int64_t span =
            std::int64_t(c.messages) * c.message_interval.ns;
        c.fault_at = sim_time{c.first_message.ns + span / 3};
        c.flush_at = sim_time{c.first_message.ns + span + 5000000};
        c.trace = r.coin();
        c.persist = r.coin();
    } else if (s.topology == "shapeshift") {
        auto& c = s.shapeshift;
        c.messages = r.range(800, 2500);
        c.message_interval = sim_duration{std::int64_t(r.range(3, 6)) * 1000};
        const std::int64_t span =
            std::int64_t(c.messages) * c.message_interval.ns;
        // The burst degrades the span while traffic is flowing.
        c.burst_at = sim_time{c.first_message.ns + span / 4};
        c.burst_duration = sim_duration{std::int64_t(r.range(1, 2)) * 1000000};
        static const double bers[] = {0.00001, 0.00002, 0.00003};
        c.burst_ber = r.pick(bers);
        const std::int64_t flush = c.first_message.ns + span + 1000000;
        if (flush > c.flush_at.ns) c.flush_at = sim_time{flush};
        if (c.flush_at.ns + 25000000 > c.poll_until.ns)
            c.poll_until = sim_time{c.flush_at.ns + 25000000};
        c.policy = r.coin() ? control::mode_preset::closed_loop
                            : control::mode_preset::static_preset;
        c.trace = r.coin();
    } else if (s.topology == "overload") {
        // The overload drill's control loops are tuned as a system;
        // the fuzz varies the offered window, not the loop constants.
        auto& c = s.overload;
        c.messages = r.range(4000, 6000);
        c.trace = r.coin();
    } else if (s.topology == "soak") {
        auto& c = s.soak;
        c = soak_smoke_config();
        c.slices_per_experiment = static_cast<unsigned>(r.range(2, 4));
        c.messages_per_stream = r.range(150, 400);
        c.message_interval = sim_duration{std::int64_t(r.range(150, 300)) * 1000};
        // Random non-empty experiment mix, with occasional per-experiment
        // count overrides.
        c.experiment_mask = static_cast<std::uint32_t>(r.range(1, 31));
        for (std::size_t i = 0; i < 5; ++i)
            if ((c.experiment_mask >> i & 1u) != 0 && r.next() % 4 == 0)
                c.experiment_messages[i] = r.range(100, 400);
        // Keep the flush/prune/end tail behind the slowest stream.
        std::uint64_t longest = 0;
        for (std::size_t i = 0; i < 5; ++i) {
            if ((c.experiment_mask >> i & 1u) == 0) continue;
            const std::uint64_t per = c.experiment_messages[i] != 0
                ? c.experiment_messages[i]
                : c.messages_per_stream;
            longest = std::max(longest, per);
        }
        const std::int64_t tail = c.first_message.ns
            + std::int64_t(longest) * c.message_interval.ns;
        if (tail + 5000000 > c.flush_at.ns) {
            c.flush_at = sim_time{tail + 5000000};
            c.prune_from = sim_time{c.flush_at.ns + 13000000};
            c.end_at = sim_time{c.prune_from.ns + 22000000};
            c.churn_until = sim_time{std::min(c.churn_until.ns, c.flush_at.ns)};
        }
        c.policy = r.coin() ? control::mode_preset::closed_loop
                            : control::mode_preset::static_preset;
    }

    s.set_seed(r.range(1, 1u << 20));
    static const std::uint32_t bursts[] = {1, 2, 4, 8, 16, 32};
    s.set_link_burst(r.pick(bursts));
    if (topology_sweeps_shards(s.topology)) {
        static const std::uint32_t shard_counts[] = {1, 2, 3, 4};
        s.set_shards(r.pick(shard_counts));
    }
    return s;
}

} // namespace mmtp::scenario::campaign
