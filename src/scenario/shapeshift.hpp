// shapeshift.hpp — the shape-shift drill: a WAN span degrades mid-run
// and the closed-loop policy engine shifts the stream's mode at runtime.
//
// The paper's headline claim is that transport should *shape-shift* —
// modes change while data is flowing, not just at setup (§5.3). This
// drill is the claim end to end:
//
//     sensor ──► DTN1 (buffer, relay) ──► Tofino ══ wan ══► rx
//                                           ▲               │
//                policy engine ─ installs ──┘     NAKs ─────┘
//                 (closed loop)
//
// The run starts in the baseline posture (epoch 0: age-sensitive +
// recoverable loss, compiled by the same `compile_modes` the pilot
// uses). At `burst_at` a corruption burst degrades the WAN span; the
// engine's loss trigger fires on the next poll and it shifts to the
// *buffered* posture — a new epoch whose rules drop the delivery
// deadline so nothing is shed or aged while the span is lossy. The
// shift is make-before-break: epoch 1 rules are installed ahead of
// epoch 0's, the sender re-stamps new datagrams with the new epoch
// (cfg_id), and epoch 0 is retired only after the drain window. When
// the burst ends, restore hysteresis returns the flow to baseline under
// a third epoch. Every corrupted datagram is recovered from DTN1 via
// NAK, so the drill ends with zero message loss despite the fault.
//
// Everything rides the simulation engine — faults, polls, reconfigs,
// recovery — so two same-seed runs produce byte-identical telemetry
// (shapeshift_result::csv / metrics_csv), which is what test_modes
// asserts.
#pragma once

#include "common/trace.hpp"
#include "control/policy_engine.hpp"
#include "mmtp/buffer_service.hpp"
#include "mmtp/receiver.hpp"
#include "mmtp/sender.hpp"
#include "netsim/fault.hpp"
#include "netsim/network.hpp"
#include "pnet/stages.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/report.hpp"

#include <map>
#include <memory>
#include <string>

namespace mmtp::scenario {

struct shapeshift_config {
    std::uint64_t seed{42};
    /// WAN span: the segment the drill degrades.
    data_rate wan_rate{data_rate::from_gbps(10)};
    sim_duration wan_delay{sim_duration{1000000}}; // 1 ms one way
    std::uint64_t wan_queue_bytes{8ull * 1024 * 1024};
    /// Fixed-size DAQ messages offered below the WAN rate (the drill
    /// probes mode agility, not overload).
    std::uint32_t message_bytes{4096};
    std::uint64_t messages{1500};
    sim_duration message_interval{sim_duration{4000}}; // 4 us ≈ 8.2 Gbps
    sim_time first_message{sim_time{100000}};          // 100 us
    /// The mid-run degradation: a corruption burst on the WAN span.
    sim_time burst_at{sim_time{2000000}};            // 2 ms
    sim_duration burst_duration{sim_duration{1500000}}; // 1.5 ms
    double burst_ber{2e-5}; // ≈ half of all datagrams corrupted
    /// Closed-loop knobs (see policy_engine_config for semantics).
    sim_duration poll_interval{sim_duration{500000}}; // 500 us
    sim_time poll_until{sim_time{40000000}};          // 40 ms
    sim_duration drain_window{sim_duration{2000000}}; // 2 ms
    std::uint64_t loss_degrade_threshold{8};
    unsigned restore_after_clean_polls{4};
    /// Explicit age budget (0 = derive from the path, as the pilot does).
    std::uint32_t deadline_us{0};
    /// End-of-window flush from DTN1 revealing tail loss.
    sim_time flush_at{sim_time{7000000}}; // 7 ms
    bool trace{true};
    std::size_t trace_capacity{1u << 17};
    /// Packets per burst on every span (1 = classic per-packet path).
    std::uint32_t link_burst{1};
    /// Simulation shards (all nodes stay in domain 0 — the topology is
    /// too tightly coupled to cut — so extra shards idle; 1 = classic).
    std::uint32_t shards{1};
    /// Policy preset the engine runs. closed_loop (default) answers the
    /// burst with a runtime mode shift; static_preset pins epoch 0 and
    /// leans on NAK recovery alone — the campaign runner sweeps both.
    control::mode_preset policy{control::mode_preset::closed_loop};
};

struct shapeshift_testbed {
    netsim::network net;
    shapeshift_config cfg;

    netsim::host* sensor{nullptr};
    netsim::host* dtn1{nullptr};
    pnet::programmable_switch* tofino{nullptr};
    netsim::host* rx_host{nullptr};

    netsim::link* wan{nullptr};

    std::unique_ptr<core::stack> sensor_stack;
    std::unique_ptr<core::sender> tx;
    std::unique_ptr<core::stack> dtn1_stack;
    std::unique_ptr<core::buffer_service> dtn1_svc;
    std::unique_ptr<core::stack> rx_stack;
    std::unique_ptr<core::receiver> rx;

    std::shared_ptr<pnet::mode_transition_stage> mode_stage;
    std::unique_ptr<control::policy_engine> policy_ctl;
    std::unique_ptr<netsim::fault_scheduler> faults;

    std::unique_ptr<trace::flight_recorder> tracer;
    std::unique_ptr<trace::scoped_recorder> tracer_install;
    telemetry::metrics_registry metrics;

    std::uint64_t messages_scheduled{0};
    /// Deliveries at rx keyed by the policy epoch (cfg_id) they arrived
    /// under — the per-epoch story the drill reports.
    std::map<std::uint8_t, std::uint64_t> delivered_by_epoch;
};

/// Builds the drill topology, wires the closed-loop engine to the WAN's
/// loss counters, and scripts the traffic, the burst and the flush.
/// Call net.sim().run() (or use run_shapeshift_drill) to execute.
std::unique_ptr<shapeshift_testbed> make_shapeshift(const shapeshift_config& cfg);

struct shapeshift_result {
    core::sender_stats tx;
    core::receiver_stats rx;
    core::buffer_service_stats buf;
    netsim::link_stats wan;
    control::policy_engine_stats ctl;
    std::uint64_t messages_sent{0};
    std::uint64_t delivered{0};
    bool all_delivered{false};
    /// Element-side epoch machinery counters (the Tofino).
    std::uint64_t mode_shifts{0};
    std::uint64_t epochs_retired{0};
    /// Where the control loop ended up.
    std::uint8_t final_epoch{0};
    std::string final_posture;
    /// Receiver-side cross-epoch observation.
    std::uint64_t rx_mode_shifts_seen{0};
    std::uint8_t rx_last_epoch{0};
    std::map<std::uint8_t, std::uint64_t> delivered_by_epoch;

    /// Deterministic telemetry: integer-only table, its CSV bytes, and
    /// the metrics registry snapshot (same-seed runs are byte-identical).
    telemetry::table report{"shapeshift drill"};
    std::string csv;
    std::string metrics_csv;

    /// The reconfiguration story as trace spans
    /// (planned → installed → committed per shift; empty without trace).
    std::string reconfig_timeline;
};

/// Summarizes an already-run testbed (drivers separate build/run/report).
shapeshift_result summarize_shapeshift(shapeshift_testbed& tb);

/// Builds, runs to completion, and summarizes one shape-shift drill.
shapeshift_result run_shapeshift_drill(const shapeshift_config& cfg);

} // namespace mmtp::scenario
