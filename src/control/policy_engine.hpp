// policy_engine.hpp — the closed-loop mode-shifting control plane.
//
// compile_modes() answers "which mode should each segment run in, given
// what we know at setup time". The policy engine owns that answer over
// the *lifetime* of a run: it holds the current compiled_policy,
// subscribes to the signals PRs 2–4 built (health-monitor transitions,
// backpressure engagements, buffer occupancy, link loss counters), and
// when a trigger fires it recompiles a per-segment plan for a new
// *posture* and installs it with epoch-versioned, make-before-break
// updates:
//
//   plan      a trigger picked a new posture; a fresh epoch number is
//             minted and the plan recompiled for it
//   install   the new epoch's rules go live on every attached element
//             ahead of the old ones; the sender's origin mode is
//             re-stamped with the new epoch (cfg_id), so *new* datagrams
//             shift while in-flight ones keep matching the old epoch's
//             rules — make before break
//   commit    after a drain window sized to flush the path, the old
//             epoch's rules are retired from the elements
//   abort     a plan that cannot apply (duplicate posture, static
//             preset) is dropped and counted
//
// The pilot's one-shot setup survives as `mode_preset::static_preset`:
// compile once, install as epoch-agnostic rules, never poll — one preset
// among several, not a separate code path.
#pragma once

#include "control/health_monitor.hpp"
#include "control/policy.hpp"
#include "control/resource_map.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/link.hpp"
#include "pnet/element.hpp"
#include "pnet/stages.hpp"

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

namespace mmtp::control {

/// Reconfiguration strategy.
enum class mode_preset : std::uint8_t {
    /// Compile once at start(), install epoch-agnostic rules, never
    /// reconfigure — the pilot's behaviour (§5.3).
    static_preset,
    /// Poll the subscribed signals and shift posture at runtime.
    closed_loop,
};

/// The adaptive postures the closed loop moves between.
enum class posture : std::uint8_t {
    /// The compiled static plan (age-sensitive + recoverable WAN).
    baseline,
    /// Degrade-to-buffered under loss: drop the delivery deadline so
    /// nothing is shed or aged while the span is lossy; keep sequencing,
    /// recovery and backpressure. Data arrives late rather than never.
    buffered,
    /// Relax-timeliness under backpressure: keep the mode shape but
    /// scale the deadline up, so queue-building traffic is not shed for
    /// lateness the congestion itself caused.
    relaxed,
};

const char* posture_name(posture p);

struct policy_engine_config {
    mode_preset preset{mode_preset::static_preset};
    /// Inputs handed to compile_modes() on every (re)compilation.
    policy_inputs inputs{};
    /// Exact deadline override (µs) applied after each compilation
    /// (0 = keep the compiled deadline). The pilot uses this.
    std::uint32_t deadline_override_us{0};

    // --- closed-loop knobs (ignored under static_preset) ---
    /// Signal sampling cadence.
    sim_duration poll_interval{sim_duration{1000000}}; // 1 ms
    /// Polling stops once the next poll would land past this instant;
    /// zero disables polling entirely (signals still arrive via the
    /// health monitor). A bounded horizon keeps the event queue finite.
    sim_time poll_until{sim_time::zero()};
    /// Make-before-break drain window: how long both epochs' rules stay
    /// installed before the old epoch is retired. Size it to cover the
    /// path flush time (in-flight datagrams stamped under the old epoch
    /// must reach their last mode-rewriting element within it).
    sim_duration drain_window{sim_duration{2000000}}; // 2 ms
    /// Loss events (corrupted + randomly dropped on watched links) per
    /// poll interval that trigger degrade-to-buffered.
    std::uint64_t loss_degrade_threshold{8};
    /// Backpressure engagements per poll interval that trigger
    /// relax-timeliness.
    std::uint64_t bp_relax_threshold{1};
    /// Watched buffer occupancy (bytes) that triggers relax-timeliness
    /// (0 disables the occupancy trigger).
    std::uint64_t occupancy_relax_bytes{0};
    /// Deadline multiplier of the relaxed posture.
    double relaxed_deadline_factor{4.0};
    /// Restore hysteresis: consecutive clean polls required before a
    /// degraded posture returns to baseline (prevents flapping when the
    /// fault is intermittent).
    unsigned restore_after_clean_polls{4};
};

struct policy_engine_stats {
    std::uint64_t polls{0};
    std::uint64_t reconfigs_planned{0};
    std::uint64_t reconfigs_installed{0};
    std::uint64_t reconfigs_committed{0};
    std::uint64_t reconfigs_aborted{0};
    std::uint64_t loss_triggers{0};
    std::uint64_t backpressure_triggers{0};
    std::uint64_t occupancy_triggers{0};
    std::uint64_t health_triggers{0};
    std::uint64_t restores{0};
};

class policy_engine {
public:
    policy_engine(netsim::scheduler& eng, resource_map map, policy_engine_config cfg);

    // --- wiring (before start()) -----------------------------------------
    /// Attaches a boundary element whose mode_transition_stage this
    /// engine programs. Rules compiled for the element's address are
    /// installed there; both references must outlive the engine.
    void attach_element(pnet::programmable_switch& sw,
                        std::shared_ptr<pnet::mode_transition_stage> stage);

    /// Called on start() and after every install with the active plan
    /// and the origin mode senders should stamp from now on (feature
    /// bits *and* cfg_id = the new epoch). Wire it to
    /// core::sender::set_origin_mode.
    using origin_handler = std::function<void(const compiled_policy&, wire::mode origin)>;
    void set_origin_handler(origin_handler cb) { origin_ = std::move(cb); }

    // --- signal subscriptions --------------------------------------------
    /// Counts corrupted + randomly dropped packets on `l` toward the
    /// loss trigger.
    void watch_loss(const netsim::link& l) { loss_links_.push_back(&l); }
    /// Counts `sw`'s backpressure engagements toward the relax trigger.
    void watch_backpressure(pnet::programmable_switch& sw)
    {
        bp_switches_.push_back(&sw);
    }
    /// Polls `probe` (current occupancy in bytes) for the relax trigger;
    /// typically `[&]{ return buf.buffer().bytes_used(); }`.
    void watch_occupancy(std::function<std::uint64_t()> probe)
    {
        occupancy_probes_.push_back(std::move(probe));
    }
    /// Reacts to link-health transitions: any watched link going down
    /// degrades to buffered immediately (no poll-interval lag); recovery
    /// is left to the restore hysteresis.
    void subscribe_health(health_monitor& hm);

    /// Interned flight-recorder site id for reconfig spans (0 = unnamed).
    void set_trace_site(std::uint32_t site) { trace_site_ = site; }

    // --- lifecycle --------------------------------------------------------
    /// Compiles and installs the initial (baseline) plan and, under
    /// closed_loop, starts the poll loop.
    void start();

    /// Requests a posture change now (the closed loop calls this; tests
    /// and scenarios may too). Returns true when a new epoch was
    /// installed; duplicate postures and static_preset engines abort.
    bool request(posture p);

    // --- observation ------------------------------------------------------
    const compiled_policy& current() const { return current_; }
    posture current_posture() const { return posture_; }
    /// Epoch of the currently installed plan (stamped into cfg_id).
    std::uint8_t epoch() const { return epoch_; }
    /// Installs whose drain window has not elapsed yet.
    unsigned pending_commits() const { return pending_commits_; }
    const policy_engine_stats& stats() const { return stats_; }

private:
    struct attached {
        pnet::programmable_switch* sw;
        std::shared_ptr<pnet::mode_transition_stage> stage;
    };

    compiled_policy compile_for(posture p) const;
    void install(const compiled_policy& plan, std::uint8_t new_epoch);
    void evaluate();
    void schedule_poll();
    std::uint64_t loss_total() const;
    std::uint64_t bp_total() const;
    std::uint64_t occupancy_now() const;

    netsim::scheduler& eng_;
    resource_map map_;
    policy_engine_config cfg_;
    std::vector<attached> elements_;
    origin_handler origin_;
    std::vector<const netsim::link*> loss_links_;
    std::vector<pnet::programmable_switch*> bp_switches_;
    std::vector<std::function<std::uint64_t()>> occupancy_probes_;

    compiled_policy current_;
    posture posture_{posture::baseline};
    std::uint8_t epoch_{0};
    unsigned pending_commits_{0};
    bool started_{false};
    bool link_down_{false};
    unsigned clean_polls_{0};
    std::uint64_t last_loss_{0};
    std::uint64_t last_bp_{0};
    std::uint32_t trace_site_{0};
    policy_engine_stats stats_;
};

} // namespace mmtp::control
