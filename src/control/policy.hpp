// policy.hpp — the mode-policy compiler.
//
// Given an end-to-end path described as ordered segments (DAQ network →
// WAN → campus), the resource map, and an end-to-end latency budget,
// compile_modes() decides which transport mode each segment runs in and
// emits the mode_transition rules to install on the boundary elements —
// the pilot's "simple 3-mode setup that pre-supposes knowledge of
// in-network resources at system start" (§5.3), generalized to N
// segments.
#pragma once

#include "control/resource_map.hpp"
#include "pnet/stages.hpp"
#include "wire/features.hpp"

#include <optional>
#include <vector>

namespace mmtp::control {

struct path_segment {
    enum class kind { daq, wan, campus };
    kind k{kind::wan};
    sim_duration one_way_latency{sim_duration::zero()};
    data_rate capacity{0};
    /// Loss possible on this segment (corruption on WANs, Fig. 2).
    bool lossy{false};
    /// Element at the *entry* of this segment that can rewrite modes
    /// (0 = none; the segment keeps the previous mode).
    wire::ipv4_addr boundary_element{0};
};

struct segment_mode_plan {
    wire::ipv4_addr element{0}; // where to install (0 = origin host)
    pnet::mode_rule rule;       // what the element should do
    wire::mode resulting_mode;  // mode on the segment after the rule
};

struct compiled_policy {
    wire::mode origin_mode;
    std::vector<segment_mode_plan> transitions;
    std::uint32_t deadline_us{0};
    /// Suggested receiver NAK retry (≳ RTT to the recovery buffer).
    sim_duration suggested_nak_retry{sim_duration::zero()};
};

struct policy_inputs {
    std::uint32_t experiment{0};
    std::vector<path_segment> segments;
    /// Buffer the WAN segment should recover from (usually the DTN at
    /// the DAQ/WAN boundary); 0 = take the map's nearest upstream buffer.
    wire::ipv4_addr recovery_buffer{0};
    /// Where deadline-exceeded notifications go (usually the source DTN).
    wire::ipv4_addr notify_addr{0};
    /// Slack multiplier on the path latency when deriving the deadline.
    double deadline_slack{3.0};
    /// Extra fixed allowance for processing/queueing.
    sim_duration deadline_allowance{sim_duration{2000000}}; // 2 ms
};

/// Compiles the per-segment modes. Mirrors the pilot: mode 0 in the DAQ
/// network, age-sensitive + recoverable-loss over the WAN, timeliness
/// check (with in-network features stripped) on the campus segment.
compiled_policy compile_modes(const policy_inputs& in, const resource_map& map);

} // namespace mmtp::control
