// resource_map.hpp — the in-network resource map (§6 challenge (1)).
//
// The paper "initially envisage[s] having a map of in-network
// programmable resources that DAQ workloads can use", shared between
// operators (e.g. piggy-backed on BGP). This registry is that map: a
// control-plane database of programmable elements and retransmission
// buffers, fed either statically (pre-supposed knowledge, as in the
// pilot) or from in-band buffer_advert messages.
#pragma once

#include "common/units.hpp"
#include "wire/control.hpp"
#include "wire/lower.hpp"

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

namespace mmtp::control {

enum class resource_kind {
    retransmission_buffer,
    programmable_switch,
    fpga_nic,
    dtn,
};

struct resource_record {
    resource_kind kind{resource_kind::programmable_switch};
    wire::ipv4_addr addr{0};
    std::string name;
    /// Buffer capacity (buffers) or pipeline capability tag (elements).
    std::uint64_t capacity_bytes{0};
    sim_duration retention{sim_duration::zero()};
    /// Operator/administrative domain the resource belongs to.
    std::string domain;
};

class resource_map {
public:
    void add(resource_record r);

    /// Ingests an in-band advertisement (from a buffer_service).
    void ingest_advert(const wire::buffer_advert_body& advert, const std::string& domain);

    const std::vector<resource_record>& records() const { return records_; }
    std::optional<resource_record> find(wire::ipv4_addr addr) const;

    /// The last buffer in `path` (ordered source → destination) before
    /// position `before_index` — i.e. the *nearest upstream* buffer a
    /// receiver at that position should NAK to (§5.1).
    std::optional<resource_record> nearest_upstream_buffer(
        const std::vector<wire::ipv4_addr>& path, std::size_t before_index) const;

    std::size_t count(resource_kind kind) const;

private:
    std::vector<resource_record> records_;
};

} // namespace mmtp::control
