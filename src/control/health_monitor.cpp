#include "control/health_monitor.hpp"

namespace mmtp::control {

void health_monitor::watch(const link_id& id, netsim::link& l)
{
    stats_.links_watched++;
    l.set_state_watcher([this, id](bool up) { on_transition(id, up); });
}

void health_monitor::on_transition(const link_id& id, bool up)
{
    history_.push_back({id, up, eng_.now()});
    if (up) {
        stats_.ups_observed++;
        planner_.handle_link_up(id);
    } else {
        stats_.downs_observed++;
        planner_.handle_link_down(id);
    }
    for (const auto& cb : listeners_) cb(id, up, eng_.now());
}

} // namespace mmtp::control
