// health_monitor.hpp — control-plane observation of data-plane faults.
//
// The capacity planner plans against link budgets; the health monitor is
// what tells it a budget just vanished. It subscribes to the up/down
// state watcher of every watched netsim link, timestamps each transition
// on the simulation clock, drives the planner's failure handling
// (release budgets, re-admit onto backup paths), and fans the event out
// to scenario-level listeners — which is where data-plane reactions
// (route repointing, duplication-subscriber pruning) are wired up.
#pragma once

#include "common/units.hpp"
#include "control/planner.hpp"
#include "netsim/scheduler.hpp"
#include "netsim/link.hpp"

#include <functional>
#include <vector>

namespace mmtp::control {

struct health_stats {
    std::uint64_t links_watched{0};
    std::uint64_t downs_observed{0};
    std::uint64_t ups_observed{0};
};

class health_monitor {
public:
    health_monitor(netsim::scheduler& eng, capacity_planner& planner)
        : eng_(eng), planner_(planner)
    {
    }

    /// Observes `l`'s state transitions under budget name `id`.
    /// Installs the link's (single) state watcher — the monitor must
    /// outlive the link's use of it.
    void watch(const link_id& id, netsim::link& l);

    struct transition {
        link_id id;
        bool up;
        sim_time at;
    };
    /// Every transition observed, in simulation order.
    const std::vector<transition>& history() const { return history_; }

    using listener = std::function<void(const link_id&, bool up, sim_time at)>;
    /// Listeners run after the planner has handled the event, so they
    /// observe post-reroute budget state.
    void add_listener(listener cb) { listeners_.push_back(std::move(cb)); }

    const health_stats& stats() const { return stats_; }

private:
    void on_transition(const link_id& id, bool up);

    netsim::scheduler& eng_;
    capacity_planner& planner_;
    std::vector<transition> history_;
    std::vector<listener> listeners_;
    health_stats stats_;
};

} // namespace mmtp::control
