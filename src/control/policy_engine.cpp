#include "control/policy_engine.hpp"

#include "common/trace.hpp"

namespace mmtp::control {

namespace {
/// Severity ordering for posture escalation: loss beats congestion.
int severity(posture p)
{
    switch (p) {
    case posture::baseline: return 0;
    case posture::relaxed: return 1;
    case posture::buffered: return 2;
    }
    return 0;
}
} // namespace

const char* posture_name(posture p)
{
    switch (p) {
    case posture::baseline: return "baseline";
    case posture::buffered: return "buffered";
    case posture::relaxed: return "relaxed";
    }
    return "?";
}

policy_engine::policy_engine(netsim::scheduler& eng, resource_map map,
                             policy_engine_config cfg)
    : eng_(eng), map_(std::move(map)), cfg_(std::move(cfg))
{
}

void policy_engine::attach_element(pnet::programmable_switch& sw,
                                   std::shared_ptr<pnet::mode_transition_stage> stage)
{
    elements_.push_back(attached{&sw, std::move(stage)});
}

void policy_engine::subscribe_health(health_monitor& hm)
{
    hm.add_listener([this](const link_id& /*id*/, bool up, sim_time /*at*/) {
        if (!started_ || cfg_.preset != mode_preset::closed_loop) return;
        link_down_ = !up;
        if (!up) {
            // A dead span is the loss signal at its strongest: degrade
            // immediately instead of waiting out the poll interval.
            stats_.health_triggers++;
            clean_polls_ = 0;
            if (severity(posture::buffered) > severity(posture_))
                request(posture::buffered);
        }
    });
}

std::uint64_t policy_engine::loss_total() const
{
    std::uint64_t total = 0;
    for (const auto* l : loss_links_)
        total += l->stats().corrupted + l->stats().dropped_random;
    return total;
}

std::uint64_t policy_engine::bp_total() const
{
    std::uint64_t total = 0;
    for (auto* sw : bp_switches_) total += sw->state().counter("backpressure_engagements");
    return total;
}

std::uint64_t policy_engine::occupancy_now() const
{
    std::uint64_t peak = 0;
    for (const auto& probe : occupancy_probes_) {
        const auto v = probe();
        if (v > peak) peak = v;
    }
    return peak;
}

compiled_policy policy_engine::compile_for(posture p) const
{
    // Every posture starts from a fresh static compilation — the presets
    // are transformations of the baseline plan, so segment topology
    // changes (new inputs) are picked up on the next shift too.
    compiled_policy plan = compile_modes(cfg_.inputs, map_);
    if (cfg_.deadline_override_us != 0) {
        plan.deadline_us = cfg_.deadline_override_us;
        for (auto& t : plan.transitions)
            if (t.rule.deadline_us) t.rule.deadline_us = cfg_.deadline_override_us;
    }

    switch (p) {
    case posture::baseline: break;
    case posture::buffered:
        // Trade timeliness for recovery: while the span is lossy no
        // datagram is aged, shed or notified about — sequencing,
        // retransmission and backpressure stay so everything is
        // eventually delivered from the buffer.
        plan.deadline_us = 0;
        for (auto& t : plan.transitions) {
            t.rule.set_bits &= ~wire::feature_bit(wire::feature::timeliness);
            t.rule.clear_bits |= wire::feature_bit(wire::feature::timeliness);
            t.rule.deadline_us.reset();
        }
        break;
    case posture::relaxed: {
        // Keep the mode shape but scale the deadline: under congestion
        // the queueing delay is self-inflicted, so shedding for lateness
        // would throw away data the path is about to deliver.
        const auto relaxed_us = static_cast<std::uint32_t>(
            static_cast<double>(plan.deadline_us) * cfg_.relaxed_deadline_factor);
        plan.deadline_us = relaxed_us;
        for (auto& t : plan.transitions)
            if (t.rule.deadline_us) t.rule.deadline_us = relaxed_us;
        break;
    }
    }

    // Recompute the per-segment resulting modes from the transformed
    // rules so reports and origin handlers see the posture's true shape.
    wire::mode current = plan.origin_mode;
    for (auto& t : plan.transitions) {
        current.cfg_data = (current.cfg_data | t.rule.set_bits) & ~t.rule.clear_bits;
        t.resulting_mode = current;
    }
    return plan;
}

void policy_engine::install(const compiled_policy& plan, std::uint8_t new_epoch)
{
    for (auto& el : elements_) {
        std::vector<pnet::mode_rule> rules;
        for (const auto& t : plan.transitions)
            if (t.element == el.sw->state().element_addr) rules.push_back(t.rule);
        el.stage->install_epoch(new_epoch, std::move(rules), &el.sw->state());
    }
    stats_.reconfigs_installed++;
    trace::emit(eng_.now(), trace_site_, trace::hop::ctl_reconfig_installed, 0, new_epoch);
    if (origin_) {
        wire::mode origin = plan.origin_mode;
        origin.cfg_id = new_epoch;
        origin_(plan, origin);
    }
}

void policy_engine::start()
{
    if (started_) return;
    started_ = true;
    current_ = compile_for(posture::baseline);
    posture_ = posture::baseline;

    if (cfg_.preset == mode_preset::static_preset) {
        // The pilot path: epoch-agnostic rules, installed once, no
        // polling — exactly what compile_modes() + add_rule() used to do.
        for (auto& el : elements_) {
            for (const auto& t : current_.transitions)
                if (t.element == el.sw->state().element_addr)
                    el.stage->add_rule(t.rule);
        }
        if (origin_) origin_(current_, current_.origin_mode);
        return;
    }

    install(current_, epoch_); // epoch 0
    last_loss_ = loss_total();
    last_bp_ = bp_total();
    schedule_poll();
}

void policy_engine::schedule_poll()
{
    if (cfg_.poll_until == sim_time::zero()) return;
    const auto next = eng_.now() + cfg_.poll_interval;
    if (next > cfg_.poll_until) return;
    eng_.schedule_in(cfg_.poll_interval, netsim::task_class::control,
                     [this] { evaluate(); });
}

void policy_engine::evaluate()
{
    stats_.polls++;

    const auto loss = loss_total();
    const auto bp = bp_total();
    const auto dloss = loss - last_loss_;
    const auto dbp = bp - last_bp_;
    last_loss_ = loss;
    last_bp_ = bp;

    const bool loss_stress = link_down_ || dloss >= cfg_.loss_degrade_threshold;
    const bool bp_stress = dbp >= cfg_.bp_relax_threshold
        || (cfg_.occupancy_relax_bytes > 0
            && occupancy_now() >= cfg_.occupancy_relax_bytes);

    if (loss_stress || bp_stress) {
        clean_polls_ = 0;
        if (loss_stress && !link_down_) stats_.loss_triggers++;
        if (bp_stress) {
            if (dbp >= cfg_.bp_relax_threshold)
                stats_.backpressure_triggers++;
            else
                stats_.occupancy_triggers++;
        }
        // Escalate only: loss demands buffered, congestion demands
        // relaxed; a weaker stress never downgrades a stronger posture.
        const posture demand = loss_stress ? posture::buffered : posture::relaxed;
        if (severity(demand) > severity(posture_)) request(demand);
    } else if (posture_ != posture::baseline) {
        // Restore-on-recovery with hysteresis: require a run of clean
        // polls so an intermittent fault cannot flap the configuration.
        if (++clean_polls_ >= cfg_.restore_after_clean_polls) {
            clean_polls_ = 0;
            stats_.restores++;
            request(posture::baseline);
        }
    }

    schedule_poll();
}

bool policy_engine::request(posture p)
{
    if (!started_) return false;
    stats_.reconfigs_planned++;
    const auto candidate = static_cast<std::uint8_t>(epoch_ + 1);
    trace::emit(eng_.now(), trace_site_, trace::hop::ctl_reconfig_planned, 0, candidate);

    if (cfg_.preset == mode_preset::static_preset || p == posture_) {
        // Static engines never shift; a duplicate posture is a no-op
        // plan. Either way the plan is dropped, visibly.
        stats_.reconfigs_aborted++;
        trace::emit(eng_.now(), trace_site_, trace::hop::ctl_reconfig_aborted, 0,
                    candidate);
        return false;
    }

    const auto plan = compile_for(p);
    const std::uint8_t old_epoch = epoch_;
    epoch_ = candidate;
    install(plan, epoch_);
    current_ = plan;
    posture_ = p;

    // Commit after the drain window: in-flight datagrams stamped with
    // the old epoch have flushed through every mode-rewriting element by
    // then, so its rules can be retired.
    pending_commits_++;
    eng_.schedule_in(cfg_.drain_window, netsim::task_class::control,
                     [this, old_epoch] {
                         for (auto& el : elements_)
                             el.stage->retire_epoch(old_epoch, &el.sw->state());
                         pending_commits_--;
                         stats_.reconfigs_committed++;
                         trace::emit(eng_.now(), trace_site_,
                                     trace::hop::ctl_reconfig_committed, 0, old_epoch);
                     });
    return true;
}

} // namespace mmtp::control
