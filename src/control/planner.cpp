#include "control/planner.hpp"

namespace mmtp::control {

void capacity_planner::register_link(const link_id& id, data_rate capacity, double headroom)
{
    link_budget b;
    b.capacity = capacity;
    double usable = static_cast<double>(capacity.bits_per_sec) * (1.0 - headroom);
    b.usable_bits = usable > 0 ? static_cast<std::uint64_t>(usable) : 0;
    links_[id] = b;
}

std::optional<flow_id> capacity_planner::admit(const std::vector<link_id>& path,
                                               data_rate rate)
{
    for (const auto& id : path) {
        auto it = links_.find(id);
        if (it == links_.end()) return std::nullopt; // unknown link
        if (it->second.committed_bits + rate.bits_per_sec > it->second.usable_bits)
            return std::nullopt;
    }
    return record(path, rate);
}

flow_id capacity_planner::admit_unchecked(const std::vector<link_id>& path, data_rate rate)
{
    return record(path, rate);
}

flow_id capacity_planner::record(const std::vector<link_id>& path, data_rate rate)
{
    for (const auto& id : path) {
        auto it = links_.find(id);
        if (it != links_.end()) it->second.committed_bits += rate.bits_per_sec;
    }
    const auto id = next_flow_++;
    flows_[id] = admission{id, rate, path};
    return id;
}

void capacity_planner::release(flow_id id)
{
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    for (const auto& lid : it->second.path) {
        auto lit = links_.find(lid);
        if (lit != links_.end()) {
            if (lit->second.committed_bits >= it->second.rate.bits_per_sec)
                lit->second.committed_bits -= it->second.rate.bits_per_sec;
            else
                lit->second.committed_bits = 0;
        }
    }
    flows_.erase(it);
}

data_rate capacity_planner::committed(const link_id& id) const
{
    auto it = links_.find(id);
    return it == links_.end() ? data_rate{0} : data_rate{it->second.committed_bits};
}

data_rate capacity_planner::available(const link_id& id) const
{
    auto it = links_.find(id);
    if (it == links_.end()) return data_rate{0};
    const auto& b = it->second;
    return data_rate{b.usable_bits > b.committed_bits ? b.usable_bits - b.committed_bits
                                                      : 0};
}

} // namespace mmtp::control
