#include "control/planner.hpp"

#include <algorithm>

namespace mmtp::control {

void capacity_planner::register_link(const link_id& id, data_rate capacity, double headroom)
{
    link_budget b;
    b.capacity = capacity;
    double usable = static_cast<double>(capacity.bits_per_sec) * (1.0 - headroom);
    b.usable_bits = usable > 0 ? static_cast<std::uint64_t>(usable) : 0;
    links_[id] = b;
}

std::optional<flow_id> capacity_planner::admit(const std::vector<link_id>& path,
                                               data_rate rate)
{
    for (const auto& id : path) {
        auto it = links_.find(id);
        if (it == links_.end()) return std::nullopt; // unknown link
        if (!it->second.up) return std::nullopt;     // failed link
        if (!it->second.admissible) {                // pressure-gated link
            stats_.admissions_denied_pressure++;
            return std::nullopt;
        }
        if (it->second.committed_bits + rate.bits_per_sec > it->second.usable_bits)
            return std::nullopt;
    }
    return record(path, rate);
}

bool capacity_planner::path_gated(const std::vector<link_id>& path) const
{
    for (const auto& id : path) {
        auto it = links_.find(id);
        if (it != links_.end() && it->second.up && !it->second.admissible) return true;
    }
    return false;
}

std::optional<flow_id> capacity_planner::admit_or_defer(const std::vector<link_id>& path,
                                                        data_rate rate, admit_cb on_admitted)
{
    if (const auto id = admit(path, rate)) return id;
    if (!path_gated(path)) return std::nullopt; // refused for capacity, not pressure
    stats_.admissions_deferred++;
    deferred_.push_back(deferred_admission{path, rate, std::move(on_admitted)});
    return std::nullopt;
}

void capacity_planner::set_admissible(const link_id& id, bool admissible)
{
    auto it = links_.find(id);
    if (it == links_.end() || it->second.admissible == admissible) return;
    it->second.admissible = admissible;
    if (admissible) retry_deferred();
}

bool capacity_planner::admissible(const link_id& id) const
{
    auto it = links_.find(id);
    return it != links_.end() && it->second.admissible;
}

void capacity_planner::retry_deferred()
{
    // FIFO with head-of-line blocking: requests behind one that still
    // cannot be admitted keep their place (admission order is part of
    // the capacity plan). The deque makes each admitted head O(1) to
    // retire, and a blocked head exits in O(1) — churn never rescans
    // the queue.
    while (!deferred_.empty()) {
        auto& head = deferred_.front();
        if (path_gated(head.path)) return;
        const auto id = admit(head.path, head.rate);
        if (!id) return;
        stats_.deferred_admitted++;
        auto cb = std::move(head.on_admitted);
        deferred_.pop_front();
        if (cb) cb(*id);
    }
}

flow_id capacity_planner::admit_unchecked(const std::vector<link_id>& path, data_rate rate)
{
    return record(path, rate);
}

flow_id capacity_planner::record(const std::vector<link_id>& path, data_rate rate)
{
    const auto id = next_flow_++;
    for (const auto& lid : path) {
        auto it = links_.find(lid);
        if (it != links_.end()) {
            it->second.committed_bits += rate.bits_per_sec;
            it->second.crossing[id]++;
        }
    }
    flows_[id] = admission{id, rate, path};
    return id;
}

void capacity_planner::uncommit(const admission& flow)
{
    for (const auto& lid : flow.path) {
        auto lit = links_.find(lid);
        if (lit != links_.end()) {
            if (lit->second.committed_bits >= flow.rate.bits_per_sec)
                lit->second.committed_bits -= flow.rate.bits_per_sec;
            else
                lit->second.committed_bits = 0;
            // Drop one crossing count per path hop — O(1) per hop, so
            // teardown cost does not grow with the link's population.
            auto& xs = lit->second.crossing;
            if (auto x = xs.find(flow.id); x != xs.end() && --x->second == 0)
                xs.erase(x);
        }
    }
}

void capacity_planner::release(flow_id id)
{
    auto it = flows_.find(id);
    if (it == flows_.end()) return;
    uncommit(it->second);
    backups_.erase(id);
    flows_.erase(it);
    // Freed capacity may unblock the deferred queue's head; the retry is
    // O(1) when it does not (head gated or still short on budget).
    retry_deferred();
}

const admission* capacity_planner::flow(flow_id id) const
{
    auto it = flows_.find(id);
    return it == flows_.end() ? nullptr : &it->second;
}

bool capacity_planner::register_backup_path(flow_id id, std::vector<link_id> backup)
{
    if (flows_.find(id) == flows_.end()) return false;
    backups_[id] = std::move(backup);
    return true;
}

bool capacity_planner::link_up(const link_id& id) const
{
    auto it = links_.find(id);
    return it != links_.end() && it->second.up;
}

void capacity_planner::handle_link_down(const link_id& id)
{
    auto lit = links_.find(id);
    if (lit == links_.end() || !lit->second.up) return;
    lit->second.up = false;
    stats_.link_failures++;

    // Incremental recomputation: the per-link crossing index already
    // names every affected flow — no full flow-table scan. Snapshot the
    // keys (reroutes mutate the index and budgets) and sort so reroute
    // callbacks fire in ascending flow-id order, exactly as the old
    // ordered-map scan did.
    std::vector<flow_id> affected;
    affected.reserve(lit->second.crossing.size());
    for (const auto& [fid, hops] : lit->second.crossing) affected.push_back(fid);
    std::sort(affected.begin(), affected.end());

    for (const auto fid : affected) {
        auto fit = flows_.find(fid);
        if (fit == flows_.end()) continue;
        // Release the whole old path — the failed link's budget must not
        // stay booked against a flow that no longer runs there.
        uncommit(fit->second);

        auto bit = backups_.find(fid);
        bool rerouted = false;
        if (bit != backups_.end()) {
            const auto& backup = bit->second;
            rerouted = !backup.empty();
            for (const auto& lid : backup) {
                auto l = links_.find(lid);
                if (l == links_.end() || !l->second.up
                    || l->second.committed_bits + fit->second.rate.bits_per_sec
                        > l->second.usable_bits) {
                    rerouted = false;
                    break;
                }
            }
            if (rerouted) {
                for (const auto& lid : backup) {
                    auto& b = links_[lid];
                    b.committed_bits += fit->second.rate.bits_per_sec;
                    b.crossing[fid]++;
                }
                fit->second.path = backup;
                backups_.erase(bit); // a backup protects against one failure
            }
        }

        if (rerouted) {
            stats_.flows_rerouted++;
            if (on_reroute_) on_reroute_(fit->second, true);
        } else {
            stats_.flows_stranded++;
            const admission evicted = fit->second;
            backups_.erase(fid);
            flows_.erase(fit);
            if (on_reroute_) on_reroute_(evicted, false);
        }
    }
}

void capacity_planner::handle_link_up(const link_id& id)
{
    auto lit = links_.find(id);
    if (lit == links_.end() || lit->second.up) return;
    lit->second.up = true;
    stats_.link_repairs++;
    retry_deferred(); // a parked request may have been waiting on this link
}

data_rate capacity_planner::committed(const link_id& id) const
{
    auto it = links_.find(id);
    return it == links_.end() ? data_rate{0} : data_rate{it->second.committed_bits};
}

data_rate capacity_planner::available(const link_id& id) const
{
    auto it = links_.find(id);
    if (it == links_.end()) return data_rate{0};
    const auto& b = it->second;
    if (!b.up) return data_rate{0};
    return data_rate{b.usable_bits > b.committed_bits ? b.usable_bits - b.committed_bits
                                                      : 0};
}

} // namespace mmtp::control
