#include "control/policy.hpp"

namespace mmtp::control {

compiled_policy compile_modes(const policy_inputs& in, const resource_map& map)
{
    compiled_policy out;
    out.origin_mode = wire::modes::identification;

    // Deadline: slack x total one-way path latency + fixed allowance.
    std::int64_t path_ns = 0;
    for (const auto& s : in.segments) path_ns += s.one_way_latency.ns;
    const double budget_ns =
        static_cast<double>(path_ns) * in.deadline_slack + static_cast<double>(in.deadline_allowance.ns);
    out.deadline_us = static_cast<std::uint32_t>(budget_ns / 1000.0);

    // Recovery buffer: explicit, or nearest upstream buffer in the map.
    wire::ipv4_addr buffer = in.recovery_buffer;
    if (buffer == 0) {
        std::vector<wire::ipv4_addr> addrs;
        for (const auto& s : in.segments) addrs.push_back(s.boundary_element);
        if (auto r = map.nearest_upstream_buffer(addrs, addrs.size())) buffer = r->addr;
    }

    wire::mode current = out.origin_mode;
    for (std::size_t i = 0; i < in.segments.size(); ++i) {
        const auto& seg = in.segments[i];
        if (seg.boundary_element == 0) continue;

        pnet::mode_rule rule;
        rule.experiment = in.experiment;
        wire::mode next = current;

        switch (seg.k) {
        case path_segment::kind::daq:
            // Inside the instrument: identification only (mode 0).
            break;
        case path_segment::kind::wan:
            // Crossing into the WAN: take up sequencing + recovery from
            // the nearest buffer + the age budget + backpressure.
            rule.set_bits = wire::feature_bit(wire::feature::sequencing)
                | wire::feature_bit(wire::feature::retransmission)
                | wire::feature_bit(wire::feature::timeliness)
                | wire::feature_bit(wire::feature::backpressure);
            rule.buffer_addr = buffer;
            rule.deadline_us = out.deadline_us;
            rule.notify_addr = in.notify_addr;
            next.cfg_data |= rule.set_bits;
            break;
        case path_segment::kind::campus:
            // Past the last lossy segment: in-network signalling is dead
            // weight, but sequencing + the buffer address must survive to
            // the destination — DTN 2 is the one that detects loss and
            // NAKs (§5.4). Keep timeliness for the destination check.
            rule.set_bits = wire::feature_bit(wire::feature::timeliness);
            rule.clear_bits = wire::feature_bit(wire::feature::backpressure)
                | wire::feature_bit(wire::feature::pacing);
            rule.deadline_us = out.deadline_us;
            rule.notify_addr = in.notify_addr;
            next.cfg_data = (next.cfg_data | rule.set_bits) & ~rule.clear_bits;
            break;
        }

        if (rule.set_bits != 0 || rule.clear_bits != 0) {
            out.transitions.push_back(segment_mode_plan{seg.boundary_element, rule, next});
            current = next;
        }
    }

    // NAK retry: a bit above the round trip from the receiver back to
    // the buffer (sum of lossy-and-later segment latencies, both ways).
    std::int64_t recovery_rtt_ns = 0;
    for (const auto& s : in.segments)
        if (s.k != path_segment::kind::daq) recovery_rtt_ns += 2 * s.one_way_latency.ns;
    out.suggested_nak_retry = sim_duration{recovery_rtt_ns + recovery_rtt_ns / 4
                                           + 1000000};
    return out;
}

} // namespace mmtp::control
