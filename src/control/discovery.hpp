// discovery.hpp — in-network resource discovery (§6, challenge 1).
//
// "We initially envisage having a map of in-network programmable
// resources that DAQ workloads can use. This map is shared between
// network operators — perhaps by piggy-backing on BGP messages — to
// describe their programmable infrastructure and its capabilities."
//
// This module implements that sketch: each administrative domain runs a
// `domain_directory` that collects the resources of its own domain (from
// static config and in-band buffer adverts) and gossips digests to peer
// domains on a BGP-like session (periodic, incremental, withdraw on
// expiry). Every directory converges to a global resource_map restricted
// to what each peer chose to export — the paper's "not necessarily
// abstracted from communicating peers or other network operators" (§4.2).
#pragma once

#include "control/resource_map.hpp"
#include "netsim/scheduler.hpp"

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

namespace mmtp::control {

/// One gossiped entry: a resource plus export metadata.
struct advertised_resource {
    resource_record record;
    /// Sequence number of the originating directory when last updated.
    std::uint64_t version{0};
    /// Hop count from the originator (loop/size damping, like AS_PATH).
    std::uint8_t path_length{0};
    bool withdrawn{false};

    bool operator==(const advertised_resource&) const = default;
};

struct directory_config {
    std::string domain;
    /// Gossip interval between peered directories.
    sim_duration gossip_interval{sim_duration{1000000000}}; // 1 s
    /// Entries not refreshed for this long are withdrawn.
    sim_duration holddown{sim_duration{10000000000}}; // 10 s
    /// Maximum AS_PATH-like propagation radius.
    std::uint8_t max_path_length{8};
};

/// Per-domain directory. Peering is in-process (the control plane runs
/// out-of-band of the simulated data network, as BGP sessions do);
/// gossip timing still runs on the simulation clock.
class domain_directory {
public:
    domain_directory(netsim::scheduler& eng, directory_config cfg);

    /// Adds/updates a resource this domain owns and exports.
    void publish(resource_record r);

    /// Ingests an in-band buffer advert (forwarded from a stack hook).
    void publish_advert(const wire::buffer_advert_body& advert);

    /// Withdraws a previously published resource by address.
    void withdraw(wire::ipv4_addr addr);

    /// Establishes a bidirectional peering; gossip starts immediately
    /// and repeats every gossip_interval.
    static void peer(domain_directory& a, domain_directory& b);

    /// The converged view: everything learned and not withdrawn/expired,
    /// local entries first.
    resource_map snapshot() const;

    /// All entries (incl. withdrawn) for diagnostics.
    const std::map<wire::ipv4_addr, advertised_resource>& entries() const
    {
        return table_;
    }

    const std::string& domain() const { return cfg_.domain; }

    /// Notification when a new (non-local) resource is learned.
    void set_on_learned(std::function<void(const resource_record&)> cb)
    {
        on_learned_ = std::move(cb);
    }

    struct directory_stats {
        std::uint64_t gossip_rounds{0};
        std::uint64_t updates_sent{0};
        std::uint64_t updates_received{0};
        std::uint64_t withdrawals{0};
        std::uint64_t expired{0};
    };
    const directory_stats& stats() const { return stats_; }

private:
    void gossip_to(domain_directory& peer);
    void receive(const std::vector<advertised_resource>& updates);
    void schedule_gossip();
    void expire_stale();

    netsim::scheduler& eng_;
    directory_config cfg_;
    std::uint64_t next_version_{1};
    std::map<wire::ipv4_addr, advertised_resource> table_;
    std::map<wire::ipv4_addr, sim_time> refreshed_;
    std::vector<domain_directory*> peers_;
    bool gossip_scheduled_{false};
    std::function<void(const resource_record&)> on_learned_;
    directory_stats stats_;
};

} // namespace mmtp::control
