// planner.hpp — capacity planning and flow admission.
//
// DAQ transfers run on capacity-planned, scheduled paths: "resource
// reservation and capacity planning forestall the potential harm from
// misbehaving peers" (§4.1), and the paper hypothesizes that MMTP
// therefore "does not require sophisticated congestion control" (§5.3).
// The planner is where that planning happens: links register budgets,
// flows are admitted against them, and the admitted rate becomes the
// sender's pace. The A2 ablation deliberately overbooks to probe the
// hypothesis's boundary.
#pragma once

#include "common/units.hpp"

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

namespace mmtp::control {

using link_id = std::string;
using flow_id = std::uint64_t;

struct admission {
    flow_id id{0};
    data_rate rate{0};
    std::vector<link_id> path;
};

struct planner_stats {
    std::uint64_t link_failures{0};
    std::uint64_t link_repairs{0};
    /// Flows moved onto their registered backup path after a failure.
    std::uint64_t flows_rerouted{0};
    /// Flows evicted because no backup existed or it had no room.
    std::uint64_t flows_stranded{0};
    /// Admissions refused because a path link was pressure-gated.
    std::uint64_t admissions_denied_pressure{0};
    /// Admission requests parked until a pressure gate reopened.
    std::uint64_t admissions_deferred{0};
    /// Parked requests admitted after the gate reopened.
    std::uint64_t deferred_admitted{0};
};

class capacity_planner {
public:
    /// Registers a link budget. `headroom` reserves a fraction for
    /// control traffic and burst absorption (default 5%).
    void register_link(const link_id& id, data_rate capacity, double headroom = 0.05);

    /// Admits `rate` along `path` if every link has room; returns the
    /// flow id, or std::nullopt and changes nothing.
    std::optional<flow_id> admit(const std::vector<link_id>& path, data_rate rate);

    /// Force-admits regardless of budgets (ablation A2's overbooking).
    flow_id admit_unchecked(const std::vector<link_id>& path, data_rate rate);

    void release(flow_id id);

    /// Committed rate on a link (admitted flows crossing it).
    data_rate committed(const link_id& id) const;
    /// Remaining admittable rate on a link (0 while the link is down).
    data_rate available(const link_id& id) const;

    std::size_t flow_count() const { return flows_.size(); }
    const admission* flow(flow_id id) const;

    // --- failure awareness (driven by control::health_monitor) ---

    /// Registers a standby path for an admitted flow; consulted when a
    /// link on its current path fails. Returns false for unknown flows.
    bool register_backup_path(flow_id id, std::vector<link_id> backup);

    /// Invoked after a failure is handled, once per affected flow.
    /// `rerouted` is true when the flow now runs on its backup path;
    /// false when it was stranded (budgets released, flow evicted).
    using reroute_cb = std::function<void(const admission& flow, bool rerouted)>;
    void set_reroute_handler(reroute_cb cb) { on_reroute_ = std::move(cb); }

    /// Marks the link down, releases the budgets of every flow crossing
    /// it along their whole path, and re-admits each onto its registered
    /// backup path — with admission control intact: a backup without
    /// room strands the flow rather than overbooking.
    void handle_link_down(const link_id& id);

    /// Marks the link admittable again. Flows do not move back
    /// automatically (make-before-break is the operator's call).
    void handle_link_up(const link_id& id);

    bool link_up(const link_id& id) const;

    // --- overload awareness (driven by DTN storage watermarks) ---

    /// Gates (admissible=false) or reopens (true) a link for *new*
    /// admissions. Unlike handle_link_down, existing flows keep their
    /// budgets — the resource still carries traffic, it just must not
    /// take on more until occupancy drains. Reopening retries deferred
    /// admissions in FIFO order.
    void set_admissible(const link_id& id, bool admissible);
    bool admissible(const link_id& id) const;

    /// Like admit(), but a request refused *only* because of pressure
    /// gating is parked and admitted automatically (FIFO, budgets
    /// permitting) once every gated link on its path reopens; `on_admitted`
    /// then receives the flow id. Returns the flow id when admitted
    /// immediately, std::nullopt when parked or refused outright.
    using admit_cb = std::function<void(flow_id)>;
    std::optional<flow_id> admit_or_defer(const std::vector<link_id>& path, data_rate rate,
                                          admit_cb on_admitted);

    const planner_stats& stats() const { return stats_; }

private:
    struct link_budget {
        data_rate capacity{0};
        std::uint64_t usable_bits{0};
        std::uint64_t committed_bits{0};
        bool up{true};
        bool admissible{true};
        /// Flows crossing this link, keyed by id with a per-path-hop
        /// count (a path may cross a link twice). Hashed so release()
        /// stays O(path) under soak churn instead of scanning every
        /// flow on the link; failure handling sorts its snapshot so
        /// reroute callbacks keep ascending-flow-id order.
        std::unordered_map<flow_id, std::uint32_t> crossing;
    };

    struct deferred_admission {
        std::vector<link_id> path;
        data_rate rate{0};
        admit_cb on_admitted;
    };

    flow_id record(const std::vector<link_id>& path, data_rate rate);
    void uncommit(const admission& flow);
    bool path_gated(const std::vector<link_id>& path) const;
    void retry_deferred();

    // Hot-path tables are hashed: per-packet-scale admit/release/lookup
    // must not pay O(log n) tree walks at soak flow counts. Nothing
    // iterates these containers — order-sensitive work (failure
    // handling) goes through the per-link `crossing` index instead, so
    // hash iteration order can never leak into telemetry.
    std::unordered_map<link_id, link_budget> links_;
    std::unordered_map<flow_id, admission> flows_;
    std::unordered_map<flow_id, std::vector<link_id>> backups_;
    std::deque<deferred_admission> deferred_;
    flow_id next_flow_{1};
    planner_stats stats_;
    reroute_cb on_reroute_;
};

} // namespace mmtp::control
