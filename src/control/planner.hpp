// planner.hpp — capacity planning and flow admission.
//
// DAQ transfers run on capacity-planned, scheduled paths: "resource
// reservation and capacity planning forestall the potential harm from
// misbehaving peers" (§4.1), and the paper hypothesizes that MMTP
// therefore "does not require sophisticated congestion control" (§5.3).
// The planner is where that planning happens: links register budgets,
// flows are admitted against them, and the admitted rate becomes the
// sender's pace. The A2 ablation deliberately overbooks to probe the
// hypothesis's boundary.
#pragma once

#include "common/units.hpp"

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

namespace mmtp::control {

using link_id = std::string;
using flow_id = std::uint64_t;

struct admission {
    flow_id id{0};
    data_rate rate{0};
    std::vector<link_id> path;
};

class capacity_planner {
public:
    /// Registers a link budget. `headroom` reserves a fraction for
    /// control traffic and burst absorption (default 5%).
    void register_link(const link_id& id, data_rate capacity, double headroom = 0.05);

    /// Admits `rate` along `path` if every link has room; returns the
    /// flow id, or std::nullopt and changes nothing.
    std::optional<flow_id> admit(const std::vector<link_id>& path, data_rate rate);

    /// Force-admits regardless of budgets (ablation A2's overbooking).
    flow_id admit_unchecked(const std::vector<link_id>& path, data_rate rate);

    void release(flow_id id);

    /// Committed rate on a link (admitted flows crossing it).
    data_rate committed(const link_id& id) const;
    /// Remaining admittable rate on a link.
    data_rate available(const link_id& id) const;

    std::size_t flow_count() const { return flows_.size(); }

private:
    struct link_budget {
        data_rate capacity{0};
        std::uint64_t usable_bits{0};
        std::uint64_t committed_bits{0};
    };

    flow_id record(const std::vector<link_id>& path, data_rate rate);

    std::map<link_id, link_budget> links_;
    std::map<flow_id, admission> flows_;
    flow_id next_flow_{1};
};

} // namespace mmtp::control
