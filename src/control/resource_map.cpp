#include "control/resource_map.hpp"

namespace mmtp::control {

void resource_map::add(resource_record r)
{
    for (auto& existing : records_) {
        if (existing.addr == r.addr) {
            existing = std::move(r);
            return;
        }
    }
    records_.push_back(std::move(r));
}

void resource_map::ingest_advert(const wire::buffer_advert_body& advert,
                                 const std::string& domain)
{
    resource_record r;
    r.kind = resource_kind::retransmission_buffer;
    r.addr = advert.buffer_addr;
    r.capacity_bytes = advert.capacity_bytes;
    r.retention = sim_duration{static_cast<std::int64_t>(advert.retention_ms) * 1000000};
    r.domain = domain;
    r.name = "advertised-buffer";
    add(std::move(r));
}

std::optional<resource_record> resource_map::find(wire::ipv4_addr addr) const
{
    for (const auto& r : records_)
        if (r.addr == addr) return r;
    return std::nullopt;
}

std::optional<resource_record> resource_map::nearest_upstream_buffer(
    const std::vector<wire::ipv4_addr>& path, std::size_t before_index) const
{
    std::optional<resource_record> best;
    for (std::size_t i = 0; i < path.size() && i < before_index; ++i) {
        if (auto r = find(path[i]);
            r && r->kind == resource_kind::retransmission_buffer) {
            best = r; // later matches are nearer the receiver
        }
    }
    return best;
}

std::size_t resource_map::count(resource_kind kind) const
{
    std::size_t n = 0;
    for (const auto& r : records_)
        if (r.kind == kind) ++n;
    return n;
}

} // namespace mmtp::control
