#include "control/discovery.hpp"

namespace mmtp::control {

domain_directory::domain_directory(netsim::scheduler& eng, directory_config cfg)
    : eng_(eng), cfg_(cfg)
{
}

void domain_directory::publish(resource_record r)
{
    r.domain = cfg_.domain;
    advertised_resource adv;
    adv.record = std::move(r);
    adv.version = next_version_++;
    adv.path_length = 0;
    table_[adv.record.addr] = adv;
    refreshed_[adv.record.addr] = eng_.now();
}

void domain_directory::publish_advert(const wire::buffer_advert_body& advert)
{
    resource_record r;
    r.kind = resource_kind::retransmission_buffer;
    r.addr = advert.buffer_addr;
    r.capacity_bytes = advert.capacity_bytes;
    r.retention = sim_duration{static_cast<std::int64_t>(advert.retention_ms) * 1000000};
    r.name = "advertised-buffer";
    publish(std::move(r));
}

void domain_directory::withdraw(wire::ipv4_addr addr)
{
    auto it = table_.find(addr);
    if (it == table_.end()) return;
    it->second.withdrawn = true;
    it->second.version = next_version_++;
    stats_.withdrawals++;
}

void domain_directory::peer(domain_directory& a, domain_directory& b)
{
    a.peers_.push_back(&b);
    b.peers_.push_back(&a);
    a.schedule_gossip();
    b.schedule_gossip();
}

void domain_directory::schedule_gossip()
{
    if (gossip_scheduled_) return;
    gossip_scheduled_ = true;
    eng_.schedule_in(cfg_.gossip_interval, [this] {
        gossip_scheduled_ = false;
        expire_stale();
        stats_.gossip_rounds++;
        for (auto* p : peers_) gossip_to(*p);
        if (!peers_.empty()) schedule_gossip();
    });
}

void domain_directory::expire_stale()
{
    const auto now = eng_.now();
    for (auto& [addr, adv] : table_) {
        if (adv.withdrawn) continue;
        if (adv.record.domain == cfg_.domain) {
            // local entries self-refresh
            refreshed_[addr] = now;
            continue;
        }
        auto it = refreshed_.find(addr);
        if (it != refreshed_.end() && (now - it->second).ns > cfg_.holddown.ns) {
            adv.withdrawn = true;
            stats_.expired++;
        }
    }
}

void domain_directory::gossip_to(domain_directory& peer)
{
    std::vector<advertised_resource> updates;
    for (const auto& [addr, adv] : table_) {
        if (adv.path_length >= cfg_.max_path_length) continue; // radius damping
        auto forwarded = adv;
        forwarded.path_length++;
        updates.push_back(std::move(forwarded));
    }
    if (updates.empty()) return;
    stats_.updates_sent += updates.size();
    peer.receive(updates);
}

void domain_directory::receive(const std::vector<advertised_resource>& updates)
{
    const auto now = eng_.now();
    for (const auto& upd : updates) {
        // never accept a foreign view of our own resources (split horizon)
        if (upd.record.domain == cfg_.domain) continue;
        stats_.updates_received++;

        auto it = table_.find(upd.record.addr);
        const bool is_new = it == table_.end();
        // Prefer: newer version; tie-break on shorter path (stability).
        // A re-announcement of the version we already hold is a
        // keepalive: it refreshes the holddown timer but changes nothing.
        if (!is_new) {
            const auto& cur = it->second;
            if (upd.version < cur.version) continue;
            if (upd.version == cur.version) {
                if (!cur.withdrawn && !upd.withdrawn) refreshed_[upd.record.addr] = now;
                if (upd.path_length >= cur.path_length) continue;
            }
        }
        const bool became_visible = (is_new || it->second.withdrawn) && !upd.withdrawn;
        table_[upd.record.addr] = upd;
        refreshed_[upd.record.addr] = now;
        if (became_visible && on_learned_) on_learned_(upd.record);
    }
}

resource_map domain_directory::snapshot() const
{
    resource_map out;
    // local entries first so find() prefers them on duplicate addresses
    for (const auto& [addr, adv] : table_) {
        if (adv.withdrawn) continue;
        if (adv.record.domain == cfg_.domain) out.add(adv.record);
    }
    for (const auto& [addr, adv] : table_) {
        if (adv.withdrawn) continue;
        if (adv.record.domain != cfg_.domain) out.add(adv.record);
    }
    return out;
}

} // namespace mmtp::control
