#include "netsim/network.hpp"

#include <deque>
#include <stdexcept>
#include <unordered_map>

namespace mmtp::netsim {

unsigned network::connect_simplex(node& a, node& b, const link_config& cfg,
                                  std::unique_ptr<queue_disc> q)
{
    // The ingress port at the destination only identifies where the
    // packet came in; use the destination's current link count as a
    // stable identifier (mirrors typical port numbering).
    const unsigned ingress_at_b = b.port_count();
    const unsigned sa = shard_of(a);
    const unsigned sb = shard_of(b);
    if (sa != sb && cfg.propagation.ns <= 0)
        throw std::invalid_argument("link " + a.name() + " -> " + b.name() +
                                    " crosses a shard cut with zero propagation "
                                    "delay; cut links need real delay (it is the "
                                    "conservative lookahead)");
    auto l = std::make_unique<link>(coord_->shard(sa), root_rng_.fork(), b, ingress_at_b,
                                    cfg, std::move(q));
    if (sa != sb) {
        coord_->note_cut_link(cfg.propagation);
        l->set_cross_shard(*coord_, sa, sb);
    }
    const unsigned port = a.attach_link(std::move(l));
    edges_.push_back(edge{&a, &b, port});
    return port;
}

std::pair<unsigned, unsigned> network::connect(node& a, node& b, const link_config& cfg)
{
    const unsigned pa = connect_simplex(a, b, cfg);
    const unsigned pb = connect_simplex(b, a, cfg);
    return {pa, pb};
}

void network::compute_routes()
{
    // Adjacency: node -> [(neighbour, egress port)]
    std::unordered_map<node*, std::vector<std::pair<node*, unsigned>>> adj;
    for (const auto& e : edges_) adj[e.from].push_back({e.to, e.from_port});

    for (const auto& src_owned : nodes_) {
        node* src = src_owned.get();
        // BFS from src; record for each reachable node the first hop port.
        std::unordered_map<node*, unsigned> first_hop;
        std::deque<node*> frontier;
        first_hop[src] = no_port;
        frontier.push_back(src);
        while (!frontier.empty()) {
            node* cur = frontier.front();
            frontier.pop_front();
            auto it = adj.find(cur);
            if (it == adj.end()) continue;
            for (const auto& [next, port] : it->second) {
                if (first_hop.count(next)) continue;
                first_hop[next] = (cur == src) ? port : first_hop[cur];
                frontier.push_back(next);
            }
        }
        for (const auto& [dst, port] : first_hop) {
            if (dst == src || port == no_port) continue;
            src->add_route(dst->address(), port);
        }
    }
}

node* network::find(const std::string& name)
{
    auto it = by_name_.find(name);
    return it == by_name_.end() ? nullptr : it->second;
}

node* network::find_addr(wire::ipv4_addr a)
{
    auto it = by_addr_.find(a);
    return it == by_addr_.end() ? nullptr : it->second;
}

} // namespace mmtp::netsim
