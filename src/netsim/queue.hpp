// queue.hpp — egress queue disciplines.
//
// Every link has an egress queue. `drop_tail_queue` is the plain FIFO
// used by non-programmable segments. `priority_queue_disc` is a
// multi-band strict-priority queue whose band classifier is injected by
// the caller — programmable elements use it with an MMTP-aware classifier
// to prioritize age-sensitive traffic (§5.3 "input to active queue
// management").
#pragma once

#include "netsim/packet.hpp"

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <vector>

namespace mmtp::netsim {

struct queue_stats {
    std::uint64_t enqueued{0};
    std::uint64_t dequeued{0};
    std::uint64_t dropped{0};
    std::uint64_t dropped_bytes{0};
    std::uint64_t peak_bytes{0};
};

/// Abstract queue discipline.
class queue_disc {
public:
    virtual ~queue_disc() = default;

    /// Returns false if the packet was dropped (queue full).
    virtual bool enqueue(packet&& p) = 0;
    virtual std::optional<packet> dequeue() = 0;

    virtual std::uint64_t byte_depth() const = 0;
    virtual std::size_t packet_depth() const = 0;
    bool empty() const { return packet_depth() == 0; }

    const queue_stats& stats() const { return stats_; }

protected:
    queue_stats stats_;
};

/// FIFO with a byte-capacity limit.
class drop_tail_queue final : public queue_disc {
public:
    explicit drop_tail_queue(std::uint64_t capacity_bytes)
        : capacity_bytes_(capacity_bytes)
    {
    }

    bool enqueue(packet&& p) override;
    std::optional<packet> dequeue() override;
    std::uint64_t byte_depth() const override { return bytes_; }
    std::size_t packet_depth() const override { return q_.size(); }

private:
    std::uint64_t capacity_bytes_;
    std::uint64_t bytes_{0};
    std::deque<packet> q_;
};

/// Strict-priority multi-band queue. The classifier maps a packet to a
/// band in [0, bands); band 0 is served first. Each band has its own
/// byte capacity; a packet that doesn't fit its band is dropped.
class priority_queue_disc final : public queue_disc {
public:
    using classifier = std::function<unsigned(const packet&)>;

    priority_queue_disc(unsigned bands, std::uint64_t per_band_capacity_bytes,
                        classifier classify);

    bool enqueue(packet&& p) override;
    std::optional<packet> dequeue() override;
    std::uint64_t byte_depth() const override;
    std::size_t packet_depth() const override;

    std::uint64_t band_depth_bytes(unsigned b) const { return bands_[b].bytes; }

private:
    struct band {
        std::deque<packet> q;
        std::uint64_t bytes{0};
    };
    std::vector<band> bands_;
    std::uint64_t per_band_capacity_;
    classifier classify_;
};

} // namespace mmtp::netsim
